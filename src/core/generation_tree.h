// The GFD generation tree (Section 5.1, Fig. 2): nodes are graph patterns
// organized by level (= number of pattern edges), deduplicated by
// canonical code (the paper's iso(Q) sets), each remembering its parent
// set P(Q) and the delta edge that created it (used by the parallel
// algorithm's incremental joins and by ParCover's group construction).
//
// VSpawn grows the tree level-wise: every frequent level-(i-1) pattern is
// extended by one edge -- a new out-/in-edge at some variable (possibly
// introducing one fresh variable) or a closing edge between existing
// variables -- with edge candidates drawn from the graph's frequent
// (source label, edge label, destination label) triples.
#ifndef GFD_CORE_GENERATION_TREE_H_
#define GFD_CORE_GENERATION_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "graph/stats.h"
#include "match/incremental.h"
#include "pattern/pattern.h"
#include "util/hash.h"

namespace gfd {

/// One pattern node of the generation tree.
struct TreeNode {
  Pattern pattern;
  int level = 0;                 ///< number of edges
  uint64_t support = 0;          ///< |Q(G,z)|, filled by the miner
  bool frequent = false;         ///< support >= sigma
  bool verified = false;         ///< support computed
  std::vector<int> parents;      ///< P(Q): parent node ids (merged on dedup)
  DeltaEdge delta{kNoVar, kNoVar, kWildcardLabel, kNoVar, kWildcardLabel};
};

/// Level-indexed pattern store with canonical-code deduplication.
class GenerationTree {
 public:
  /// Adds `p` at `level` (or merges `parent` into an existing isomorphic
  /// node). Returns the node id, and sets *created when a new node was
  /// allocated.
  int AddPattern(Pattern p, int level, int parent, const DeltaEdge& delta,
                 bool* created = nullptr);

  TreeNode& node(int id) { return nodes_[id]; }
  const TreeNode& node(int id) const { return nodes_[id]; }

  /// Node ids at a level (empty for levels never reached).
  const std::vector<int>& level(size_t i) const {
    static const std::vector<int> kEmpty;
    return i < levels_.size() ? levels_[i] : kEmpty;
  }

  size_t num_levels() const { return levels_.size(); }
  size_t size() const { return nodes_.size(); }

 private:
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<int>> levels_;
  std::unordered_map<std::vector<uint32_t>, int, VecHash> by_code_;
};

/// Seeds level 0 with single-node patterns: one per node label with
/// count >= sigma, plus the single wildcard node when wildcard upgrades
/// are enabled. Returns the new node ids.
std::vector<int> InitTree(GenerationTree& tree, const GraphStats& stats,
                          const DiscoveryConfig& cfg, DiscoveryStats& out);

/// Edge-label vocabulary for wildcard-upgraded spawning: labels connecting
/// at least cfg.wildcard_min_pairs distinct (src label, dst label) pairs.
std::vector<LabelId> WildcardEdgeLabels(const GraphStats& stats,
                                        const DiscoveryConfig& cfg);

/// VSpawn(i): extends every frequent level-(i-1) pattern by one edge.
/// Candidate edges come from `triples` (frequent concrete triples) and
/// `wildcard_labels` (edges attached to/from wildcard variables). New
/// patterns keep the parent's pivot (variable 0). Returns ids of nodes
/// newly created at level i; respects cfg.max_patterns_per_level.
std::vector<int> VSpawn(GenerationTree& tree, int level,
                        const std::vector<EdgeTriple>& triples,
                        const std::vector<LabelId>& wildcard_labels,
                        const DiscoveryConfig& cfg, DiscoveryStats& out);

}  // namespace gfd

#endif  // GFD_CORE_GENERATION_TREE_H_
