#include "core/cover.h"

#include <algorithm>

#include "gfd/problems.h"

namespace gfd {

std::vector<Gfd> SeqCover(std::vector<Gfd> sigma, CoverStats* stats) {
  CoverStats local;
  CoverStats& st = stats ? *stats : local;

  // Deduplicate syntactically identical GFDs.
  std::sort(sigma.begin(), sigma.end(), [](const Gfd& a, const Gfd& b) {
    if (a.pattern.NumEdges() != b.pattern.NumEdges()) {
      return a.pattern.NumEdges() > b.pattern.NumEdges();
    }
    if (a.lhs.size() != b.lhs.size()) return a.lhs.size() > b.lhs.size();
    if (!(a.rhs == b.rhs)) return a.rhs < b.rhs;
    if (!(a.lhs == b.lhs)) return a.lhs < b.lhs;
    return false;
  });
  size_t before = sigma.size();
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  st.removed += before - sigma.size();

  // Eliminate implied GFDs one at a time (most specific first), re-testing
  // against the surviving set, exactly like the relational-FD cover
  // algorithms the paper references.
  std::vector<bool> alive(sigma.size(), true);
  for (size_t i = 0; i < sigma.size(); ++i) {
    std::vector<Gfd> others;
    others.reserve(sigma.size() - 1);
    for (size_t j = 0; j < sigma.size(); ++j) {
      if (j != i && alive[j]) others.push_back(sigma[j]);
    }
    ++st.implication_tests;
    if (Implies(others, sigma[i])) {
      alive[i] = false;
      ++st.removed;
    }
  }
  std::vector<Gfd> cover;
  for (size_t i = 0; i < sigma.size(); ++i) {
    if (alive[i]) cover.push_back(std::move(sigma[i]));
  }
  return cover;
}

}  // namespace gfd
