#include "core/literal_pool.h"

#include <algorithm>
#include <unordered_map>

namespace gfd {

std::vector<AttrId> ResolveActiveAttrs(const GraphStats& stats,
                                       const DiscoveryConfig& cfg) {
  if (!cfg.active_attrs.empty()) return cfg.active_attrs;
  // Rank observed attributes by total occurrence count (sum of their value
  // frequencies) and keep the most used.
  std::vector<std::pair<uint64_t, AttrId>> ranked;
  for (AttrId a : stats.attr_keys()) {
    uint64_t total = 0;
    for (const auto& vf : stats.TopValues(a, static_cast<size_t>(-1))) {
      total += vf.count;
    }
    ranked.push_back({total, a});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<AttrId> gamma;
  for (size_t i = 0; i < ranked.size() && i < cfg.max_active_attrs; ++i) {
    gamma.push_back(ranked[i].second);
  }
  std::sort(gamma.begin(), gamma.end());
  return gamma;
}

std::vector<Literal> BuildLiteralPool(const Pattern& pattern,
                                      const std::vector<AttrId>& gamma,
                                      const GraphStats& stats,
                                      const DiscoveryConfig& cfg) {
  std::vector<Literal> pool;
  const size_t n = pattern.NumNodes();

  // Variable-variable literals first: they are the most general and power
  // rules like GFD1 of Fig. 8 (x.familyname = y.familyname).
  for (VarId x = 0; x < n; ++x) {
    for (VarId y = x + 1; y < n; ++y) {
      for (AttrId a : gamma) {
        pool.push_back(Literal::Vars(x, a, y, a));
        if (pool.size() >= DiscoveryConfig::kMaxPool) return pool;
        if (cfg.cross_attr_literals) {
          for (AttrId b : gamma) {
            if (b == a) continue;
            pool.push_back(Literal::Vars(x, a, y, b));
            if (pool.size() >= DiscoveryConfig::kMaxPool) return pool;
          }
        }
      }
    }
  }

  // Constant literals, most frequent values first (round-robin across
  // attributes so no attribute starves under the cap).
  struct ConstCand {
    uint64_t freq;
    VarId x;
    AttrId a;
    ValueId c;
  };
  std::vector<ConstCand> consts;
  for (VarId x = 0; x < n; ++x) {
    for (AttrId a : gamma) {
      for (const auto& vf : stats.TopValues(a, cfg.top_values_per_attr)) {
        consts.push_back({vf.count, x, a, vf.value});
      }
    }
  }
  std::sort(consts.begin(), consts.end(),
            [](const ConstCand& l, const ConstCand& r) {
              if (l.freq != r.freq) return l.freq > r.freq;
              if (l.x != r.x) return l.x < r.x;
              if (l.a != r.a) return l.a < r.a;
              return l.c < r.c;
            });
  for (const auto& cc : consts) {
    if (pool.size() >= DiscoveryConfig::kMaxPool) break;
    pool.push_back(Literal::Const(cc.x, cc.a, cc.c));
  }
  return pool;
}

std::vector<Literal> BuildLiteralPoolFromMatches(
    const Pattern& pattern, const std::vector<AttrId>& gamma,
    const std::vector<VarConstFreq>& constants, const DiscoveryConfig& cfg) {
  std::vector<Literal> pool;
  const size_t n = pattern.NumNodes();

  // Variable-variable literals first (see BuildLiteralPool).
  for (VarId x = 0; x < n; ++x) {
    for (VarId y = x + 1; y < n; ++y) {
      for (AttrId a : gamma) {
        pool.push_back(Literal::Vars(x, a, y, a));
        if (pool.size() >= DiscoveryConfig::kMaxPool) return pool;
        if (cfg.cross_attr_literals) {
          for (AttrId b : gamma) {
            if (b == a) continue;
            pool.push_back(Literal::Vars(x, a, y, b));
            if (pool.size() >= DiscoveryConfig::kMaxPool) return pool;
          }
        }
      }
    }
  }

  // Constants: per (variable, attribute) keep the top values by
  // *match-local* frequency; `constants` arrives sorted by count.
  std::unordered_map<uint64_t, size_t> taken;  // (var, attr) -> count used
  for (const auto& c : constants) {
    if (pool.size() >= DiscoveryConfig::kMaxPool) break;
    uint64_t key = (static_cast<uint64_t>(c.var) << 32) | c.attr;
    if (taken[key] >= cfg.top_values_per_attr) continue;
    ++taken[key];
    pool.push_back(Literal::Const(c.var, c.attr, c.value));
  }
  return pool;
}

}  // namespace gfd
