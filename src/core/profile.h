// Match profiles: the data structure that lets this miner "combine graph
// pattern mining and FD discovery in a single process" (the paper's
// Contribution 3). For each verified pattern Q we enumerate its matches
// ONCE and record, per match, the bitset of pool literals it satisfies
// (and the bitset of literals whose attributes are *present* at the
// matched nodes), grouped by pivot node. Every discovery-side question
// about Q then becomes a bitset scan:
//
//   supp(Q, G)          = number of pivot groups
//   supp(Q, X ∪ {l}, z) = #groups with some sat-mask ⊇ bits(X ∪ {l})
//   G |= Q(X -> l)       = no sat-mask with bits(X) ⊆ mask and l ∉ mask
//   Q(G, X', z) = 0      = no sat-mask ⊇ bits(X')  (NHSpawn's emptiness)
//
// so the entire literal tree of a pattern (all HSpawn levels) is mined
// from one isomorphism enumeration. The presence masks implement the
// paper's Open World Assumption discussion (Section 4.2): a literal
// combination only counts as a *negative* observation when the attributes
// involved actually exist on some match -- attribute absence is unknown
// data, not a counterexample.
#ifndef GFD_CORE_PROFILE_H_
#define GFD_CORE_PROFILE_H_

#include <bitset>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "gfd/literal.h"
#include "graph/property_graph.h"
#include "match/matcher.h"

namespace gfd {

/// Bitset over a pattern's literal pool.
using LitMask = std::bitset<DiscoveryConfig::kMaxPool>;

/// One profiled match: its pivot node, the literals it satisfies, and the
/// literals whose attributes are all present at its nodes.
struct ProfileRow {
  NodeId pivot;
  LitMask sat;
  LitMask present;
};

/// Materialized matches of one pattern (first phase of profiling).
struct MatchStore {
  std::vector<Match> matches;
  bool truncated = false;
};

/// Enumerates and stores up to `max_matches` matches of `cq` in `g`.
MatchStore EnumerateMatches(const PropertyGraph& g, const CompiledPattern& cq,
                            size_t max_matches);

/// Per (variable, attribute) constant frequencies observed *among the
/// stored matches* -- the paper's VSpawn collects literal constants from
/// the matches h(x-bar), not from global value statistics, which is what
/// makes locally frequent constants (e.g. an award name) available as
/// literals.
struct VarConstFreq {
  VarId var;
  AttrId attr;
  ValueId value;
  uint64_t count;
};
std::vector<VarConstFreq> CollectMatchConstants(
    const PropertyGraph& g, const MatchStore& store,
    const std::vector<AttrId>& gamma);

/// Computes the profile row of one match against a literal pool.
ProfileRow ProfileMatch(const PropertyGraph& g, const Match& m, NodeId pivot,
                        const std::vector<Literal>& pool);

/// Per-pattern match profile (see file comment).
class PatternProfile {
 public:
  PatternProfile() = default;

  /// Profiles pre-enumerated matches (EnumerateMatches ->
  /// CollectMatchConstants -> literal pool -> profile).
  PatternProfile(const PropertyGraph& g, const MatchStore& store,
                 VarId pivot, const std::vector<Literal>& pool);

  /// Builds a profile from rows, e.g. merged from distributed fragments.
  /// Rows need not be grouped.
  static PatternProfile FromRows(std::vector<ProfileRow> rows,
                                 size_t pool_size, bool truncated = false);

  /// |Q(G,z)|: distinct pivots with at least one match.
  uint64_t PatternSupport() const { return pivots_.size(); }

  /// |Q(G, set, z)|: pivots with some match satisfying every literal in
  /// `required`.
  uint64_t SupportOf(const LitMask& required) const;

  /// True iff some match satisfies all of `required` (early-exit variant
  /// of SupportOf() > 0).
  bool AnyMatchSatisfies(const LitMask& required) const;

  /// True iff some match has all attributes of `required` present (the
  /// OWA gate for negative discovery).
  bool AnyMatchPresents(const LitMask& required) const;

  /// G |= Q(X -> l): no match with X ⊆ sat-mask and l ∉ sat-mask.
  bool Satisfied(const LitMask& lhs, size_t rhs_bit) const;

  /// Distinct pivots, ascending.
  const std::vector<NodeId>& pivots() const { return pivots_; }

  /// Grouped rows: group i spans [offsets()[i], offsets()[i+1]).
  const std::vector<LitMask>& masks() const { return masks_; }
  const std::vector<LitMask>& presence() const { return presence_; }
  const std::vector<uint32_t>& offsets() const { return offsets_; }

  uint64_t num_matches() const { return masks_.size(); }
  bool truncated() const { return truncated_; }
  size_t pool_size() const { return pool_size_; }

 private:
  void GroupRows(std::vector<ProfileRow>& rows);

  std::vector<NodeId> pivots_;     // distinct pivots, ascending
  std::vector<uint32_t> offsets_;  // pivots_.size() + 1 entries
  std::vector<LitMask> masks_;     // sat-masks, grouped by pivot
  std::vector<LitMask> presence_;  // presence-masks, same order
  size_t pool_size_ = 0;
  bool truncated_ = false;
};

/// Bit positions of `lits` within `pool`; a literal absent from the pool
/// is an error (callers only combine pool literals).
LitMask MaskOf(const std::vector<Literal>& lits,
               const std::vector<Literal>& pool);

}  // namespace gfd

#endif  // GFD_CORE_PROFILE_H_
