// The literal-tree lattice miner (HSpawn + NHSpawn over one pattern's
// match profile), extracted so that SeqDis and the split-pipeline baseline
// (ParArab, Section 7 "baselines") share one implementation. ParDis mirrors
// the same decisions with distributed batch evaluation (see
// parallel/pardis.cc).
#ifndef GFD_CORE_LATTICE_H_
#define GFD_CORE_LATTICE_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/lattice_util.h"
#include "core/profile.h"
#include "core/seqdis.h"
#include "gfd/gfd.h"

namespace gfd {

/// Mines literal trees pattern by pattern, accumulating minimum frequent
/// GFDs (positive and negative) into a DiscoveryResult. Stateful across
/// patterns: the reduced-GFD filters need the GFDs found so far, so feed
/// patterns most-general-first.
class LiteralLatticeMiner {
 public:
  LiteralLatticeMiner(const DiscoveryConfig& cfg, DiscoveryResult& result)
      : cfg_(cfg), result_(result) {}

  /// Mines one pattern. `pattern_key` is any id unique per pattern (used
  /// to deduplicate negatives); `profile` must be built against `pool`.
  /// Returns false when the candidate budget tripped.
  bool MinePattern(int pattern_key, const Pattern& pattern,
                   const std::vector<Literal>& pool,
                   const PatternProfile& profile);

  /// Registers a negative GFD (used by NVSpawn, which lives outside the
  /// literal lattice). Applies the same dedup/reduction filters.
  void AddNegative(int pattern_key, Gfd phi, uint64_t base_supp);

 private:
  bool ChargeCandidate();
  void MineRhsTree(int pattern_key, const Pattern& pattern,
                   const std::vector<Literal>& pool,
                   const PatternProfile& profile, size_t r,
                   const LitMask& usable);
  void NHSpawn(int pattern_key, const Pattern& pattern,
               const std::vector<Literal>& pool,
               const PatternProfile& profile, const LitMask& x_mask,
               size_t r, const LitMask& usable, uint64_t base_supp);
  bool IsReducedAway(const Gfd& phi) const;
  void AddPositive(Gfd phi, uint64_t supp);

  const DiscoveryConfig& cfg_;
  DiscoveryResult& result_;
  std::map<RhsSig, std::vector<size_t>> by_rhs_;
  std::set<std::pair<int, std::vector<Literal>>> seen_negatives_;
};

}  // namespace gfd

#endif  // GFD_CORE_LATTICE_H_
