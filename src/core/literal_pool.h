// Literal pool construction for HSpawn (Section 5.1): the candidate
// literals of a pattern are drawn from the active attributes Gamma and the
// most frequent constants of the graph, plus variable-variable literals
// between pattern nodes.
#ifndef GFD_CORE_LITERAL_POOL_H_
#define GFD_CORE_LITERAL_POOL_H_

#include <vector>

#include "core/config.h"
#include "core/profile.h"
#include "gfd/literal.h"
#include "graph/stats.h"
#include "pattern/pattern.h"

namespace gfd {

/// Resolves the active attribute set Gamma: the configured one, or the
/// `max_active_attrs` most used attributes of the graph.
std::vector<AttrId> ResolveActiveAttrs(const GraphStats& stats,
                                       const DiscoveryConfig& cfg);

/// Builds the literal pool for `pattern`: first x.A = y.A (and x.A = y.B
/// when cross_attr_literals) for all variable pairs, then x.A = c with the
/// top values per attribute, capped at DiscoveryConfig::kMaxPool entries
/// (general-first order). The pool indexes literals for the bitset match
/// profiles.
std::vector<Literal> BuildLiteralPool(const Pattern& pattern,
                                      const std::vector<AttrId>& gamma,
                                      const GraphStats& stats,
                                      const DiscoveryConfig& cfg);

/// Match-driven pool (what the miner uses): constants are the per-variable
/// top values *among the pattern's matches* (see CollectMatchConstants in
/// profile.h), so locally frequent constants like an award's name make it
/// into the pool even when globally rare. `constants` must be sorted by
/// descending count.
std::vector<Literal> BuildLiteralPoolFromMatches(
    const Pattern& pattern, const std::vector<AttrId>& gamma,
    const std::vector<VarConstFreq>& constants, const DiscoveryConfig& cfg);

}  // namespace gfd

#endif  // GFD_CORE_LITERAL_POOL_H_
