#include "core/generation_tree.h"

#include <algorithm>

#include "pattern/canonical.h"

namespace gfd {

int GenerationTree::AddPattern(Pattern p, int level, int parent,
                               const DeltaEdge& delta, bool* created) {
  auto code = CanonicalCode(p, /*fix_pivot=*/true);
  auto it = by_code_.find(code);
  if (it != by_code_.end()) {
    // iso(Q) hit: merge the parent edge into P(Q).
    if (parent >= 0) {
      auto& ps = nodes_[it->second].parents;
      if (std::find(ps.begin(), ps.end(), parent) == ps.end()) {
        ps.push_back(parent);
      }
    }
    if (created) *created = false;
    return it->second;
  }
  int id = static_cast<int>(nodes_.size());
  TreeNode n;
  n.pattern = std::move(p);
  n.level = level;
  if (parent >= 0) n.parents.push_back(parent);
  n.delta = delta;
  nodes_.push_back(std::move(n));
  if (levels_.size() <= static_cast<size_t>(level)) {
    levels_.resize(level + 1);
  }
  levels_[level].push_back(id);
  by_code_.emplace(std::move(code), id);
  if (created) *created = true;
  return id;
}

std::vector<int> InitTree(GenerationTree& tree, const GraphStats& stats,
                          const DiscoveryConfig& cfg, DiscoveryStats& out) {
  std::vector<int> created_ids;
  // Concrete single-node patterns for labels frequent enough to matter.
  std::vector<LabelId> labels;
  for (LabelId l = 0; l < stats.num_labels(); ++l) {
    if (l != kWildcardLabel && stats.LabelCount(l) >= cfg.support_threshold) {
      labels.push_back(l);
    }
  }
  for (LabelId l : labels) {
    bool created = false;
    int id = tree.AddPattern(SingleNodePattern(l), 0, -1,
                             {kNoVar, kNoVar, kWildcardLabel, kNoVar,
                              kWildcardLabel},
                             &created);
    if (created) {
      ++out.patterns_spawned;
      created_ids.push_back(id);
    }
  }
  if (cfg.wildcard_upgrades) {
    bool created = false;
    int id = tree.AddPattern(SingleNodePattern(kWildcardLabel), 0, -1,
                             {kNoVar, kNoVar, kWildcardLabel, kNoVar,
                              kWildcardLabel},
                             &created);
    if (created) {
      ++out.patterns_spawned;
      created_ids.push_back(id);
    }
  }
  return created_ids;
}

std::vector<LabelId> WildcardEdgeLabels(const GraphStats& stats,
                                        const DiscoveryConfig& cfg) {
  std::unordered_map<LabelId, size_t> pair_counts;
  for (const auto& t : stats.edge_triples()) ++pair_counts[t.edge_label];
  std::vector<LabelId> out;
  for (const auto& [label, pairs] : pair_counts) {
    if (pairs >= cfg.wildcard_min_pairs) out.push_back(label);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

// Applies one extension move to `base`, registering the result.
void TryExtend(GenerationTree& tree, int level, int parent_id,
               const Pattern& base, VarId src, VarId dst, LabelId elabel,
               LabelId fresh_label, bool fresh_is_dst,
               const DiscoveryConfig& cfg, DiscoveryStats& out,
               std::vector<int>& created_ids, size_t& level_count) {
  Pattern p = base;
  DeltaEdge delta;
  delta.label = elabel;
  if (src == kNoVar || dst == kNoVar) {
    VarId fresh = p.AddNode(fresh_label);
    if (fresh_is_dst) {
      delta.src = src;
      delta.dst = fresh;
    } else {
      delta.src = fresh;
      delta.dst = dst;
    }
    delta.fresh_var = fresh;
    delta.fresh_label = fresh_label;
  } else {
    // Closing edge: skip if the identical pattern edge already exists
    // (pattern edges form a set).
    for (const auto& e : base.edges()) {
      if (e.src == src && e.dst == dst && e.label == elabel) return;
    }
    delta.src = src;
    delta.dst = dst;
    delta.fresh_var = kNoVar;
    delta.fresh_label = kWildcardLabel;
  }
  p.AddEdge(delta.src, delta.dst, elabel);

  if (level_count >= cfg.max_patterns_per_level) {
    out.level_cap_hit = true;
    return;
  }
  bool created = false;
  int id = tree.AddPattern(std::move(p), level, parent_id, delta, &created);
  if (created) {
    ++out.patterns_spawned;
    ++level_count;
    created_ids.push_back(id);
  }
}

}  // namespace

std::vector<int> VSpawn(GenerationTree& tree, int level,
                        const std::vector<EdgeTriple>& triples,
                        const std::vector<LabelId>& wildcard_labels,
                        const DiscoveryConfig& cfg, DiscoveryStats& out) {
  std::vector<int> created_ids;
  size_t level_count = 0;
  // Snapshot: AddPattern may grow the level vectors while we iterate.
  std::vector<int> parents = tree.level(level - 1);
  for (int pid : parents) {
    const TreeNode& parent = tree.node(pid);
    if (!parent.frequent) continue;  // Lemma 4(c): infrequent not extended
    const Pattern base = parent.pattern;  // copy: tree may reallocate
    const size_t n = base.NumNodes();
    const bool can_add_node = n < cfg.k;

    if (cfg.path_patterns_only) {
      // GCFD mode: grow a directed chain from the newest variable only.
      if (!can_add_node) continue;
      VarId tail = static_cast<VarId>(n - 1);
      LabelId tl = base.NodeLabel(tail);
      for (const auto& t : triples) {
        if (t.src_label == tl) {
          TryExtend(tree, level, pid, base, tail, kNoVar, t.edge_label,
                    t.dst_label, /*fresh_is_dst=*/true, cfg, out,
                    created_ids, level_count);
        }
      }
      continue;
    }

    for (VarId v = 0; v < n; ++v) {
      LabelId vl = base.NodeLabel(v);
      if (vl != kWildcardLabel) {
        for (const auto& t : triples) {
          // New out-edge v -> fresh(dst_label).
          if (t.src_label == vl && can_add_node) {
            TryExtend(tree, level, pid, base, v, kNoVar, t.edge_label,
                      t.dst_label, /*fresh_is_dst=*/true, cfg, out,
                      created_ids, level_count);
          }
          // New in-edge fresh(src_label) -> v.
          if (t.dst_label == vl && can_add_node) {
            TryExtend(tree, level, pid, base, kNoVar, v, t.edge_label,
                      t.src_label, /*fresh_is_dst=*/false, cfg, out,
                      created_ids, level_count);
          }
        }
      } else if (can_add_node) {
        // Wildcard variable: extend with wildcard endpoints over the
        // diverse edge labels (this grows  _ -e-> _  style patterns).
        for (LabelId el : wildcard_labels) {
          TryExtend(tree, level, pid, base, v, kNoVar, el, kWildcardLabel,
                    true, cfg, out, created_ids, level_count);
          TryExtend(tree, level, pid, base, kNoVar, v, el, kWildcardLabel,
                    false, cfg, out, created_ids, level_count);
        }
      }
    }

    // Closing edges between existing variables.
    for (VarId u = 0; u < n; ++u) {
      for (VarId v = 0; v < n; ++v) {
        if (u == v) continue;
        LabelId ul = base.NodeLabel(u), vl = base.NodeLabel(v);
        if (ul != kWildcardLabel && vl != kWildcardLabel) {
          for (const auto& t : triples) {
            if (t.src_label == ul && t.dst_label == vl) {
              TryExtend(tree, level, pid, base, u, v, t.edge_label,
                        kWildcardLabel, true, cfg, out, created_ids,
                        level_count);
            }
          }
        } else {
          for (LabelId el : wildcard_labels) {
            TryExtend(tree, level, pid, base, u, v, el, kWildcardLabel, true,
                      cfg, out, created_ids, level_count);
          }
        }
      }
    }
  }
  return created_ids;
}

}  // namespace gfd
