// SeqDis (Section 5.1): sequential discovery of all k-bounded minimum
// sigma-frequent GFDs, positive and negative, in a single integrated
// process. The lattice interleaves
//   - VSpawn: grow patterns edge by edge (generation_tree.h),
//   - HSpawn: grow LHS literal sets level-wise per (pattern, RHS literal),
//     evaluated against the pattern's match profile (profile.h),
//   - NVSpawn: zero-support patterns with frequent parents become negative
//     GFDs Q'(∅ -> false),
//   - NHSpawn: frequent validated positives extended by one literal with
//     Q(G, X', z) = 0 become negative GFDs Q(X' -> false),
// with the pruning rules of Lemma 4 (no trivial GFDs, stop an X branch
// once satisfied, never extend infrequent patterns) and reduced-GFD
// filtering via the << order.
#ifndef GFD_CORE_SEQDIS_H_
#define GFD_CORE_SEQDIS_H_

#include <functional>
#include <iterator>
#include <vector>

#include "core/config.h"
#include "gfd/gfd.h"
#include "graph/property_graph.h"

namespace gfd {

/// Output of a discovery run (before cover computation).
struct DiscoveryResult {
  std::vector<Gfd> positives;
  std::vector<Gfd> negatives;
  /// Support of each discovered GFD, parallel to positives/negatives
  /// (negatives carry the support of their base, Section 4.2).
  std::vector<uint64_t> positive_supports;
  std::vector<uint64_t> negative_supports;
  DiscoveryStats stats;

  size_t NumGfds() const { return positives.size() + negatives.size(); }

  /// positives ++ negatives, for validation / cover computation. Sized
  /// up front so the concatenation allocates exactly once.
  std::vector<Gfd> AllGfds() const& {
    std::vector<Gfd> all;
    all.reserve(NumGfds());
    all.insert(all.end(), positives.begin(), positives.end());
    all.insert(all.end(), negatives.begin(), negatives.end());
    return all;
  }

  /// Consuming overload: no Gfd is copied. Picked automatically on
  /// temporaries (`SeqDis(g, cfg).AllGfds()`) and via std::move when the
  /// result's vectors are no longer needed.
  std::vector<Gfd> AllGfds() && {
    std::vector<Gfd> all = std::move(positives);
    all.reserve(all.size() + negatives.size());
    std::move(negatives.begin(), negatives.end(), std::back_inserter(all));
    negatives.clear();
    return all;
  }

  /// Const-ref iteration over positives ++ negatives without
  /// materializing the concatenation. The callback returns false to stop.
  void ForEachGfd(const std::function<bool(const Gfd&)>& fn) const {
    for (const Gfd& phi : positives) {
      if (!fn(phi)) return;
    }
    for (const Gfd& phi : negatives) {
      if (!fn(phi)) return;
    }
  }
};

/// Runs sequential GFD discovery on `g`.
DiscoveryResult SeqDis(const PropertyGraph& g, const DiscoveryConfig& cfg);

/// Final reduced-GFD sweep: removes every GFD (positive or negative) that
/// some other discovered GFD reduces (<<). The << order is a strict
/// partial order, so the result is independent of discovery order --
/// sequential and parallel miners converge to the same output set.
void FinalizeReduced(DiscoveryResult& result);

}  // namespace gfd

#endif  // GFD_CORE_SEQDIS_H_
