// SeqDis (Section 5.1): sequential discovery of all k-bounded minimum
// sigma-frequent GFDs, positive and negative, in a single integrated
// process. The lattice interleaves
//   - VSpawn: grow patterns edge by edge (generation_tree.h),
//   - HSpawn: grow LHS literal sets level-wise per (pattern, RHS literal),
//     evaluated against the pattern's match profile (profile.h),
//   - NVSpawn: zero-support patterns with frequent parents become negative
//     GFDs Q'(∅ -> false),
//   - NHSpawn: frequent validated positives extended by one literal with
//     Q(G, X', z) = 0 become negative GFDs Q(X' -> false),
// with the pruning rules of Lemma 4 (no trivial GFDs, stop an X branch
// once satisfied, never extend infrequent patterns) and reduced-GFD
// filtering via the << order.
#ifndef GFD_CORE_SEQDIS_H_
#define GFD_CORE_SEQDIS_H_

#include <vector>

#include "core/config.h"
#include "gfd/gfd.h"
#include "graph/property_graph.h"

namespace gfd {

/// Output of a discovery run (before cover computation).
struct DiscoveryResult {
  std::vector<Gfd> positives;
  std::vector<Gfd> negatives;
  /// Support of each discovered GFD, parallel to positives/negatives
  /// (negatives carry the support of their base, Section 4.2).
  std::vector<uint64_t> positive_supports;
  std::vector<uint64_t> negative_supports;
  DiscoveryStats stats;

  /// positives ++ negatives, for validation / cover computation.
  std::vector<Gfd> AllGfds() const {
    std::vector<Gfd> all = positives;
    all.insert(all.end(), negatives.begin(), negatives.end());
    return all;
  }
};

/// Runs sequential GFD discovery on `g`.
DiscoveryResult SeqDis(const PropertyGraph& g, const DiscoveryConfig& cfg);

/// Final reduced-GFD sweep: removes every GFD (positive or negative) that
/// some other discovered GFD reduces (<<). The << order is a strict
/// partial order, so the result is independent of discovery order --
/// sequential and parallel miners converge to the same output set.
void FinalizeReduced(DiscoveryResult& result);

}  // namespace gfd

#endif  // GFD_CORE_SEQDIS_H_
