// Configuration of GFD discovery (the inputs of the discovery problem,
// Section 4.3, plus the practical knobs the paper describes in its
// "Remarks": active attributes Gamma, frequent-value selection, and
// bounded LHS growth).
#ifndef GFD_CORE_CONFIG_H_
#define GFD_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/ids.h"

namespace gfd {

/// Tunable parameters of GFD discovery. Defaults follow the paper's
/// experimental setup scaled to single-machine graphs.
struct DiscoveryConfig {
  /// Bound k on |x-bar| (number of pattern variables). The lattice runs for
  /// at most k^2 edge levels (Section 5.1).
  uint32_t k = 3;

  /// Support threshold sigma: keep GFDs with supp(phi, G) >= sigma.
  uint64_t support_threshold = 10;

  /// Active attributes Gamma. Empty = take up to `max_active_attrs` most
  /// used attributes from the graph.
  std::vector<AttrId> active_attrs;
  size_t max_active_attrs = 5;

  /// Per attribute, take this many most frequent values as literal
  /// constants (the paper uses 5).
  size_t top_values_per_attr = 5;

  /// Maximum number of literals in an LHS X. The paper's theoretical bound
  /// J = i*|Gamma|*(|Gamma|+1) is astronomically loose; real rules are
  /// short (all of Fig. 8 has |X| <= 2).
  size_t max_lhs_size = 2;

  /// Cap on the per-pattern literal pool (bitset width of the match
  /// profiles). Pools are filled general-first (variable literals, then
  /// constants by frequency), so the cap drops the least useful literals.
  static constexpr size_t kMaxPool = 128;

  /// Also generate x.A = y.B literals with A != B. Off by default: they
  /// explode the pool and real-world rules rarely need them.
  bool cross_attr_literals = false;

  /// Discover negative GFDs (NVSpawn / NHSpawn).
  bool discover_negative = true;

  /// Maximum |X'| of an NHSpawn negative (base LHS + 1). Longer
  /// combinations are overwhelmingly statistical accidents on real data;
  /// the paper's showcased negatives (Fig. 8) all have |X'| <= 2.
  size_t max_negative_lhs_size = 2;

  /// Spawn wildcard-upgraded patterns: for an edge label whose endpoint
  /// label pairs are diverse (>= wildcard_min_pairs distinct pairs), also
  /// mine  _ -e-> _  patterns (enables variable-only GFDs like GFD1 of
  /// Fig. 8).
  bool wildcard_upgrades = true;
  size_t wildcard_min_pairs = 3;

  /// Lemma 4 pruning. Disabled only by the ParGFDn ablation baseline.
  bool prune = true;

  /// Restrict VSpawn to directed path patterns (each extension appends an
  /// out-edge to the newest variable; no closing edges, no in-edges).
  /// This is the GCFD baseline of Section 7 -- CFDs with path patterns
  /// [He et al., SWIM'14] as a special case of GFDs.
  bool path_patterns_only = false;

  /// Safety budget on generated GFD candidates; when pruning is disabled
  /// the un-pruned search space is astronomically large and the run is
  /// declared failed once the budget trips (mirrors the paper's
  /// "ParGFDn fails to complete").
  uint64_t candidate_budget = std::numeric_limits<uint64_t>::max();

  /// Cap on materialized matches per pattern profile; patterns whose match
  /// count exceeds this are profiled on a truncated sample and flagged.
  size_t max_profile_matches = 4'000'000;

  /// Cap on patterns spawned per lattice level (keeps dense graphs
  /// tractable; counted in DiscoveryStats when it bites).
  size_t max_patterns_per_level = 256;
};

/// Counters reported by the miners (used by benches and tests).
struct DiscoveryStats {
  uint64_t patterns_spawned = 0;
  uint64_t patterns_frequent = 0;
  uint64_t patterns_zero_support = 0;
  uint64_t candidates_generated = 0;
  uint64_t candidates_validated = 0;
  uint64_t candidates_pruned_trivial = 0;
  uint64_t candidates_pruned_reduced = 0;
  uint64_t positives_found = 0;
  uint64_t negatives_found = 0;
  uint64_t profile_matches = 0;
  /// Largest per-pattern match store ever held (the integrated miner's
  /// peak working set; the split Arabesque-style pipeline instead retains
  /// *all* patterns' matches at once).
  uint64_t max_pattern_matches = 0;
  bool budget_exceeded = false;
  bool level_cap_hit = false;
};

}  // namespace gfd

#endif  // GFD_CORE_CONFIG_H_
