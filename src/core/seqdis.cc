#include "core/seqdis.h"

#include <algorithm>

#include "core/generation_tree.h"
#include "core/lattice.h"
#include "core/lattice_util.h"
#include "core/literal_pool.h"
#include "core/profile.h"
#include "gfd/problems.h"
#include "graph/stats.h"
#include "match/matcher.h"

namespace gfd {

namespace {

// The sequential discovery engine: VSpawn/NVSpawn + profile construction;
// literal mining is delegated to the shared LiteralLatticeMiner.
class Miner {
 public:
  Miner(const PropertyGraph& g, const DiscoveryConfig& cfg)
      : g_(g), cfg_(cfg), gstats_(g), lattice_(cfg_, result_) {}

  DiscoveryResult Run() {
    gamma_ = ResolveActiveAttrs(gstats_, cfg_);
    auto triples = gstats_.FrequentTriples(cfg_.support_threshold);
    auto wildcard_labels =
        cfg_.wildcard_upgrades ? WildcardEdgeLabels(gstats_, cfg_)
                               : std::vector<LabelId>{};

    // Level 0: single-node patterns; verify + mine their literal trees.
    auto l0 = InitTree(tree_, gstats_, cfg_, result_.stats);
    SortGeneralFirst(l0);
    for (int id : l0) ProcessPattern(id);

    // Levels 1..k^2: VSpawn then verify/mine each new pattern.
    const size_t max_level = cfg_.k * cfg_.k;
    for (size_t level = 1; level <= max_level && !Exhausted(); ++level) {
      auto spawned = VSpawn(tree_, static_cast<int>(level), triples,
                            wildcard_labels, cfg_, result_.stats);
      if (spawned.empty()) break;
      SortGeneralFirst(spawned);
      for (int id : spawned) {
        if (Exhausted()) break;
        ProcessPattern(id);
      }
    }
    return std::move(result_);
  }

 private:
  bool Exhausted() const { return result_.stats.budget_exceeded; }

  // Process more-general (more wildcards) patterns first so that
  // reduced-GFD filtering catches concrete duplicates.
  void SortGeneralFirst(std::vector<int>& ids) {
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
      size_t wa = WildcardCount(tree_.node(a).pattern);
      size_t wb = WildcardCount(tree_.node(b).pattern);
      if (wa != wb) return wa > wb;
      return a < b;
    });
  }

  // Verifies a pattern (support via its profile) and mines its literal
  // trees; triggers NVSpawn on zero support.
  void ProcessPattern(int node_id) {
    TreeNode& node = tree_.node(node_id);
    CompiledPattern cq(node.pattern);
    // Two-phase profiling: materialize matches, collect per-variable
    // constants from them (the paper's VSpawn constant collection), build
    // the literal pool, then mask the matches against the pool.
    MatchStore store = EnumerateMatches(g_, cq, cfg_.max_profile_matches);
    auto constants = CollectMatchConstants(g_, store, gamma_);
    auto pool = BuildLiteralPoolFromMatches(node.pattern, gamma_, constants,
                                            cfg_);
    PatternProfile profile(g_, store, node.pattern.pivot(), pool);
    result_.stats.profile_matches += profile.num_matches();
    result_.stats.max_pattern_matches =
        std::max(result_.stats.max_pattern_matches, profile.num_matches());

    node.support = profile.PatternSupport();
    node.verified = true;
    node.frequent = cfg_.prune ? node.support >= cfg_.support_threshold
                               : node.support > 0;
    if (node.frequent) ++result_.stats.patterns_frequent;

    if (node.support == 0) {
      ++result_.stats.patterns_zero_support;
      if (cfg_.discover_negative) NVSpawn(node_id);
      return;
    }
    // Lemma 4: GFDs on an infrequent pattern cannot reach sigma.
    if (cfg_.prune && node.support < cfg_.support_threshold) return;

    lattice_.MinePattern(node_id, node.pattern, pool, profile);
  }

  // NVSpawn (case (a) negatives): Q' has no match; its base is the most
  // supported frequent parent. supp(phi) = max over bases (Section 4.2).
  void NVSpawn(int node_id) {
    const TreeNode& node = tree_.node(node_id);
    uint64_t base_support = 0;
    for (int pid : node.parents) {
      const TreeNode& parent = tree_.node(pid);
      if (parent.verified && parent.frequent) {
        base_support = std::max(base_support, parent.support);
      }
    }
    if (base_support < cfg_.support_threshold) return;
    lattice_.AddNegative(node_id, Gfd(node.pattern, {}, Literal::False()),
                         base_support);
  }

  const PropertyGraph& g_;
  const DiscoveryConfig cfg_;
  GraphStats gstats_;
  std::vector<AttrId> gamma_;
  GenerationTree tree_;
  DiscoveryResult result_;
  LiteralLatticeMiner lattice_;
};

}  // namespace

DiscoveryResult SeqDis(const PropertyGraph& g, const DiscoveryConfig& cfg) {
  DiscoveryResult result = Miner(g, cfg).Run();
  FinalizeReduced(result);
  return result;
}

void FinalizeReduced(DiscoveryResult& result) {
  auto sweep = [](std::vector<Gfd>& gfds, std::vector<uint64_t>& supports) {
    std::vector<bool> keep(gfds.size(), true);
    for (size_t i = 0; i < gfds.size(); ++i) {
      for (size_t j = 0; j < gfds.size() && keep[i]; ++j) {
        if (i == j) continue;
        // << is a strict, transitive order, so keeping exactly the
        // <<-minimal elements (drop i when *any* j reduces it, kept or
        // not) is sound and independent of iteration order.
        if (GfdReduces(gfds[j], gfds[i])) keep[i] = false;
      }
    }
    size_t w = 0;
    for (size_t i = 0; i < gfds.size(); ++i) {
      if (keep[i]) {
        if (w != i) {  // guard against self-move
          gfds[w] = std::move(gfds[i]);
          supports[w] = supports[i];
        }
        ++w;
      }
    }
    gfds.resize(w);
    supports.resize(w);
  };
  sweep(result.positives, result.positive_supports);
  sweep(result.negatives, result.negative_supports);
  result.stats.positives_found = result.positives.size();
  result.stats.negatives_found = result.negatives.size();
}

}  // namespace gfd
