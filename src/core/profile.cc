#include "core/profile.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "gfd/gfd.h"

namespace gfd {

MatchStore EnumerateMatches(const PropertyGraph& g, const CompiledPattern& cq,
                            size_t max_matches) {
  MatchStore store;
  cq.ForEachMatch(g, [&](const Match& m) {
    store.matches.push_back(m);
    if (store.matches.size() >= max_matches) {
      store.truncated = true;
      return false;
    }
    return true;
  });
  return store;
}

std::vector<VarConstFreq> CollectMatchConstants(
    const PropertyGraph& g, const MatchStore& store,
    const std::vector<AttrId>& gamma) {
  // (var, attr, value) -> count, over all stored matches.
  auto key_of = [](VarId v, AttrId a, ValueId c) {
    return (static_cast<uint64_t>(v) << 56) ^
           (static_cast<uint64_t>(a & 0xffffff) << 32) ^ c;
  };
  std::vector<VarConstFreq> out;
  std::unordered_map<uint64_t, size_t> index;
  for (const auto& m : store.matches) {
    for (VarId v = 0; v < m.size(); ++v) {
      for (AttrId a : gamma) {
        auto val = g.GetAttr(m[v], a);
        if (!val) continue;
        uint64_t key = key_of(v, a, *val);
        auto [it, inserted] = index.try_emplace(key, out.size());
        if (inserted) {
          out.push_back({v, a, *val, 0});
        }
        ++out[it->second].count;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const VarConstFreq& l, const VarConstFreq& r) {
              if (l.count != r.count) return l.count > r.count;
              if (l.var != r.var) return l.var < r.var;
              if (l.attr != r.attr) return l.attr < r.attr;
              return l.value < r.value;
            });
  return out;
}

ProfileRow ProfileMatch(const PropertyGraph& g, const Match& m, NodeId pivot,
                        const std::vector<Literal>& pool) {
  ProfileRow row;
  row.pivot = m[pivot];
  for (size_t i = 0; i < pool.size(); ++i) {
    const Literal& l = pool[i];
    if (MatchSatisfies(g, m, l)) row.sat.set(i);
    bool present = false;
    switch (l.kind) {
      case LiteralKind::kFalse:
        present = false;
        break;
      case LiteralKind::kVarConst:
        present = g.GetAttr(m[l.x], l.a).has_value();
        break;
      case LiteralKind::kVarVar:
        present = g.GetAttr(m[l.x], l.a).has_value() &&
                  g.GetAttr(m[l.y], l.b).has_value();
        break;
    }
    if (present) row.present.set(i);
  }
  return row;
}

PatternProfile::PatternProfile(const PropertyGraph& g, const MatchStore& store,
                               VarId pivot, const std::vector<Literal>& pool)
    : pool_size_(pool.size()), truncated_(store.truncated) {
  assert(pool.size() <= DiscoveryConfig::kMaxPool);
  std::vector<ProfileRow> rows;
  rows.reserve(store.matches.size());
  for (const auto& m : store.matches) {
    rows.push_back(ProfileMatch(g, m, pivot, pool));
  }
  GroupRows(rows);
}

PatternProfile PatternProfile::FromRows(std::vector<ProfileRow> rows,
                                        size_t pool_size, bool truncated) {
  PatternProfile p;
  p.pool_size_ = pool_size;
  p.truncated_ = truncated;
  p.GroupRows(rows);
  return p;
}

void PatternProfile::GroupRows(std::vector<ProfileRow>& rows) {
  std::sort(rows.begin(), rows.end(), [](const ProfileRow& a,
                                         const ProfileRow& b) {
    return a.pivot < b.pivot;
  });
  pivots_.clear();
  offsets_.clear();
  masks_.clear();
  presence_.clear();
  masks_.reserve(rows.size());
  presence_.reserve(rows.size());
  for (const auto& row : rows) {
    if (pivots_.empty() || pivots_.back() != row.pivot) {
      pivots_.push_back(row.pivot);
      offsets_.push_back(static_cast<uint32_t>(masks_.size()));
    }
    masks_.push_back(row.sat);
    presence_.push_back(row.present);
  }
  offsets_.push_back(static_cast<uint32_t>(masks_.size()));
}

uint64_t PatternProfile::SupportOf(const LitMask& required) const {
  uint64_t count = 0;
  for (size_t p = 0; p < pivots_.size(); ++p) {
    for (uint32_t i = offsets_[p]; i < offsets_[p + 1]; ++i) {
      if ((masks_[i] & required) == required) {
        ++count;
        break;  // one witnessing match per pivot suffices
      }
    }
  }
  return count;
}

bool PatternProfile::AnyMatchSatisfies(const LitMask& required) const {
  for (const auto& m : masks_) {
    if ((m & required) == required) return true;
  }
  return false;
}

bool PatternProfile::AnyMatchPresents(const LitMask& required) const {
  for (const auto& m : presence_) {
    if ((m & required) == required) return true;
  }
  return false;
}

bool PatternProfile::Satisfied(const LitMask& lhs, size_t rhs_bit) const {
  for (const auto& m : masks_) {
    if ((m & lhs) == lhs && !m.test(rhs_bit)) return false;
  }
  return true;
}

LitMask MaskOf(const std::vector<Literal>& lits,
               const std::vector<Literal>& pool) {
  LitMask mask;
  for (const auto& l : lits) {
    auto it = std::find(pool.begin(), pool.end(), l);
    assert(it != pool.end());
    mask.set(static_cast<size_t>(it - pool.begin()));
  }
  return mask;
}

}  // namespace gfd
