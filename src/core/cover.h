// SeqCover (Section 5.2): computes a cover Sigma_c of a discovered set
// Sigma -- a minimal equivalent subset -- by removing every GFD implied by
// the rest, using the closure characterization of implication.
#ifndef GFD_CORE_COVER_H_
#define GFD_CORE_COVER_H_

#include <cstdint>
#include <vector>

#include "gfd/gfd.h"

namespace gfd {

struct CoverStats {
  uint64_t implication_tests = 0;
  uint64_t removed = 0;
};

/// Returns a cover of `sigma`. GFDs are examined from most specific
/// (largest pattern, longest LHS) to most general, so general rules
/// survive and their specializations are eliminated. Exact duplicates are
/// removed up front.
std::vector<Gfd> SeqCover(std::vector<Gfd> sigma, CoverStats* stats = nullptr);

}  // namespace gfd

#endif  // GFD_CORE_COVER_H_
