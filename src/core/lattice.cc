#include "core/lattice.h"

#include "gfd/problems.h"

namespace gfd {

bool LiteralLatticeMiner::ChargeCandidate() {
  ++result_.stats.candidates_generated;
  if (result_.stats.candidates_generated > cfg_.candidate_budget) {
    result_.stats.budget_exceeded = true;
    return false;
  }
  return true;
}

bool LiteralLatticeMiner::MinePattern(int pattern_key, const Pattern& pattern,
                                      const std::vector<Literal>& pool,
                                      const PatternProfile& profile) {
  // Literal-level anti-monotonicity: a literal whose own pivot support is
  // below sigma can never appear in a sigma-frequent GFD. With pruning
  // disabled (ParGFDn), fall back to mere witnessing.
  LitMask usable;
  for (size_t b = 0; b < pool.size(); ++b) {
    LitMask one;
    one.set(b);
    if (cfg_.prune) {
      if (profile.SupportOf(one) >= cfg_.support_threshold) usable.set(b);
    } else {
      if (profile.AnyMatchSatisfies(one)) usable.set(b);
    }
  }
  for (size_t r = 0; r < pool.size(); ++r) {
    if (result_.stats.budget_exceeded) return false;
    if (!usable.test(r)) continue;
    MineRhsTree(pattern_key, pattern, pool, profile, r, usable);
  }
  return !result_.stats.budget_exceeded;
}

void LiteralLatticeMiner::MineRhsTree(int pattern_key, const Pattern& pattern,
                                      const std::vector<Literal>& pool,
                                      const PatternProfile& profile, size_t r,
                                      const LitMask& usable) {
  struct XNode {
    LitMask mask;
    int max_bit;  // highest set bit, for index-ordered expansion
  };
  std::vector<XNode> frontier{{LitMask{}, -1}};
  std::vector<LitMask> closed;  // satisfied LHS masks (Lemma 4(b))

  for (size_t depth = 0; depth <= cfg_.max_lhs_size && !frontier.empty();
       ++depth) {
    std::vector<XNode> next;
    for (const auto& xn : frontier) {
      if (!ChargeCandidate()) return;

      // Lemma 4(b) across generation orders: supersets of a satisfied
      // LHS are not reduced.
      bool superseded = false;
      if (cfg_.prune) {
        for (const auto& c : closed) {
          if ((xn.mask & c) == c) {
            superseded = true;
            break;
          }
        }
      }
      if (superseded) {
        ++result_.stats.candidates_pruned_reduced;
        continue;
      }

      auto lits = LitsOfMask(xn.mask, pool);
      Gfd phi(pattern, lits, pool[r]);
      if (IsTrivialGfd(phi)) {
        ++result_.stats.candidates_pruned_trivial;
        continue;  // supersets stay trivial: prune the branch
      }

      ++result_.stats.candidates_validated;
      LitMask xl = xn.mask;
      xl.set(r);
      const bool satisfied = profile.Satisfied(xn.mask, r);
      const uint64_t supp = profile.SupportOf(xl);

      if (satisfied) {
        closed.push_back(xn.mask);
        if (supp >= cfg_.support_threshold) {
          if (IsReducedAway(phi)) {
            ++result_.stats.candidates_pruned_reduced;
          } else {
            AddPositive(phi, supp);
          }
          // NHSpawn fires on every *validated frequent* positive
          // (Section 5.1) -- including ones reduced away as positives:
          // the negatives they trigger are not expressible on the
          // smaller pattern.
          if (cfg_.discover_negative) {
            NHSpawn(pattern_key, pattern, pool, profile, xn.mask, r, usable,
                    supp);
          }
        }
        if (cfg_.prune) continue;  // Lemma 4(b): stop this branch
      }

      if (depth == cfg_.max_lhs_size) continue;
      for (size_t b = xn.max_bit + 1; b < pool.size(); ++b) {
        if (b == r || xn.mask.test(b) || !usable.test(b)) continue;
        XNode child{xn.mask, static_cast<int>(b)};
        child.mask.set(b);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
}

void LiteralLatticeMiner::NHSpawn(int pattern_key, const Pattern& pattern,
                                  const std::vector<Literal>& pool,
                                  const PatternProfile& profile,
                                  const LitMask& x_mask, size_t r,
                                  const LitMask& usable, uint64_t base_supp) {
  if (x_mask.count() + 1 > cfg_.max_negative_lhs_size) return;
  for (size_t b = 0; b < pool.size(); ++b) {
    if (b == r || x_mask.test(b) || !usable.test(b)) continue;
    LitMask ext = x_mask;
    ext.set(b);
    if (profile.AnyMatchSatisfies(ext)) continue;   // Q(G, X', z) != 0
    if (!profile.AnyMatchPresents(ext)) continue;   // OWA gate
    auto lits = LitsOfMask(ext, pool);
    Gfd neg(pattern, lits, Literal::False());
    if (IsTrivialGfd(neg)) continue;  // X' symbolically unsatisfiable
    AddNegative(pattern_key, std::move(neg), base_supp);
  }
}

bool LiteralLatticeMiner::IsReducedAway(const Gfd& phi) const {
  auto it = by_rhs_.find(SignatureOf(phi.rhs));
  if (it == by_rhs_.end()) return false;
  for (size_t idx : it->second) {
    if (GfdReduces(result_.positives[idx], phi)) return true;
  }
  return false;
}

void LiteralLatticeMiner::AddPositive(Gfd phi, uint64_t supp) {
  by_rhs_[SignatureOf(phi.rhs)].push_back(result_.positives.size());
  result_.positives.push_back(std::move(phi));
  result_.positive_supports.push_back(supp);
  ++result_.stats.positives_found;
}

void LiteralLatticeMiner::AddNegative(int pattern_key, Gfd phi,
                                      uint64_t base_supp) {
  auto key = std::pair(pattern_key, phi.lhs);
  if (!seen_negatives_.insert(key).second) return;
  // Reduced-negative filter: a more general negative already covers this
  // one (wildcard-first / small-pattern-first feeding order makes general
  // negatives arrive before their specializations).
  for (const auto& neg : result_.negatives) {
    if (GfdReduces(neg, phi)) {
      ++result_.stats.candidates_pruned_reduced;
      return;
    }
  }
  result_.negatives.push_back(std::move(phi));
  result_.negative_supports.push_back(base_supp);
  ++result_.stats.negatives_found;
}

}  // namespace gfd
