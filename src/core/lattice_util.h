// Small helpers shared by the sequential (SeqDis) and parallel (ParDis)
// lattice drivers.
#ifndef GFD_CORE_LATTICE_UTIL_H_
#define GFD_CORE_LATTICE_UTIL_H_

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/profile.h"
#include "gfd/literal.h"
#include "pattern/pattern.h"

namespace gfd {

/// Invariant key of an RHS literal under variable renaming: embeddings
/// preserve kinds, attributes and constants, so only GFDs with equal
/// signatures can stand in the << relation. Used to index found positives.
using RhsSig = std::tuple<int, AttrId, AttrId, ValueId>;

inline RhsSig SignatureOf(const Literal& l) {
  switch (l.kind) {
    case LiteralKind::kFalse:
      return {0, 0, 0, 0};
    case LiteralKind::kVarConst:
      return {1, l.a, 0, l.c};
    case LiteralKind::kVarVar:
      return {2, std::min(l.a, l.b), std::max(l.a, l.b), 0};
  }
  return {0, 0, 0, 0};
}

/// Expands a bitset over `pool` into the corresponding literal vector.
inline std::vector<Literal> LitsOfMask(const LitMask& mask,
                                       const std::vector<Literal>& pool) {
  std::vector<Literal> lits;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (mask.test(i)) lits.push_back(pool[i]);
  }
  return lits;
}

/// Number of wildcard labels in a pattern (used to order processing:
/// general patterns first, so reduced-GFD filtering catches concrete
/// duplicates).
inline size_t WildcardCount(const Pattern& p) {
  size_t c = 0;
  for (VarId v = 0; v < p.NumNodes(); ++v) {
    if (p.NodeLabel(v) == kWildcardLabel) ++c;
  }
  for (const auto& e : p.edges()) {
    if (e.label == kWildcardLabel) ++c;
  }
  return c;
}

}  // namespace gfd

#endif  // GFD_CORE_LATTICE_UTIL_H_
