#include "match/matcher.h"

#include <algorithm>
#include <cassert>

namespace gfd {

CompiledPattern::CompiledPattern(const Pattern& q) : pattern_(q) {
  assert(q.NumNodes() > 0);
  assert(q.IsConnected());
  const size_t n = q.NumNodes();

  // Degree lower bounds per variable: the number of *distinct* out/in
  // neighbor variables. Distinct neighbor variables map to distinct graph
  // nodes, each needing its own graph edge; multiple pattern edges to the
  // same variable (e.g. wildcard + concrete label) can be witnessed by a
  // single graph edge, so counting raw pattern edges would be unsound.
  std::vector<uint32_t> out_deg(n, 0), in_deg(n, 0);
  for (VarId v = 0; v < n; ++v) {
    std::vector<VarId> outs, ins;
    for (const auto& e : q.edges()) {
      if (e.src == v) outs.push_back(e.dst);
      if (e.dst == v) ins.push_back(e.src);
    }
    auto distinct = [](std::vector<VarId>& vars) {
      std::sort(vars.begin(), vars.end());
      vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
      return static_cast<uint32_t>(vars.size());
    };
    out_deg[v] = distinct(outs);
    in_deg[v] = distinct(ins);
  }

  // Greedy ordering: pivot first, then repeatedly pick the unbound variable
  // with the most edges into the bound set (most constrained candidate
  // generation). Pattern connectivity guarantees an anchor always exists.
  std::vector<bool> bound(n, false);
  std::vector<VarId> order;
  order.reserve(n);
  order.push_back(q.pivot());
  bound[q.pivot()] = true;
  while (order.size() < n) {
    VarId best = kNoVar;
    int best_score = -1;
    for (VarId v = 0; v < n; ++v) {
      if (bound[v]) continue;
      int score = 0;
      for (const auto& e : q.edges()) {
        if ((e.src == v && bound[e.dst]) || (e.dst == v && bound[e.src])) {
          ++score;
        }
      }
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    assert(best != kNoVar && best_score > 0);
    order.push_back(best);
    bound[best] = true;
  }

  // Build per-step plans.
  std::vector<bool> done(n, false);
  steps_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Step s;
    s.var = order[i];
    s.label = q.NodeLabel(s.var);
    s.anchor = kNoVar;
    s.anchor_out = false;
    s.anchor_label = kWildcardLabel;
    s.min_out_deg = out_deg[s.var];
    s.min_in_deg = in_deg[s.var];
    // Pick one incident edge to a done variable as the candidate
    // generator, preferring a concrete edge label over a wildcard one (a
    // labeled adjacency walk generates strictly fewer candidates, and
    // every demoted edge is re-verified as a check, so the preference
    // only changes enumeration order, never the match set); all other
    // incident edges to done variables become checks.
    VarId anchor_var = kNoVar;
    bool anchor_src_is_var = false;
    LabelId anchor_edge_label = kWildcardLabel;
    for (const auto& e : q.edges()) {
      bool src_is_var = (e.src == s.var), dst_is_var = (e.dst == s.var);
      if ((!src_is_var && !dst_is_var) || (src_is_var && dst_is_var)) continue;
      VarId other = src_is_var ? e.dst : e.src;
      if (!done[other]) continue;
      if (anchor_var == kNoVar ||
          (anchor_edge_label == kWildcardLabel &&
           e.label != kWildcardLabel)) {
        anchor_var = other;
        anchor_src_is_var = src_is_var;
        anchor_edge_label = e.label;
      }
    }
    bool anchor_taken = false;
    for (const auto& e : q.edges()) {
      bool src_is_var = (e.src == s.var), dst_is_var = (e.dst == s.var);
      if (!src_is_var && !dst_is_var) continue;
      if (src_is_var && dst_is_var) {
        // Self-loop: verified directly on the candidate node.
        s.checks.push_back({s.var, true, e.label});
        continue;
      }
      VarId other = src_is_var ? e.dst : e.src;
      if (!done[other]) continue;  // verified when `other` gets bound later
      if (!anchor_taken && other == anchor_var &&
          src_is_var == anchor_src_is_var && e.label == anchor_edge_label) {
        s.anchor = other;
        s.anchor_out = !src_is_var;  // anchor(other) -> var if var is dst
        s.anchor_label = e.label;
        anchor_taken = true;
      } else {
        s.checks.push_back({other, src_is_var, e.label});  // var -> other
      }
    }
    done[s.var] = true;
    steps_.push_back(std::move(s));
  }
}

template <typename GraphT>
bool CompiledPattern::Backtrack(
    const GraphT& g, size_t depth, Match& h, std::vector<NodeId>& used,
    const std::function<bool(const Match&)>& on_match,
    const MatchOptions& opts, MatchCounters& counters, bool& stop) const {
  if (depth == steps_.size()) {
    ++counters.matches_found;
    if (!on_match(h)) stop = true;
    return true;
  }
  const Step& s = steps_[depth];

  auto try_candidate = [&](NodeId cand) {
    if (++counters.steps > opts.max_steps) {
      counters.budget_exhausted = true;
      stop = true;
      return;
    }
    // Cheapest filters first: one label load, two degree loads, then the
    // injectivity scan, then per-check adjacency probes.
    if (!LabelMatches(g.NodeLabel(cand), s.label)) return;
    if (g.OutDegree(cand) < s.min_out_deg || g.InDegree(cand) < s.min_in_deg) {
      return;
    }
    // Injectivity: patterns are tiny, so scanning the bound nodes beats a
    // per-call |V|-sized bitset by orders of magnitude.
    if (std::find(used.begin(), used.end(), cand) != used.end()) return;
    for (const auto& c : s.checks) {
      NodeId other = (c.other == s.var) ? cand : h[c.other];
      bool ok = c.out ? g.HasEdge(cand, other, c.label)
                      : g.HasEdge(other, cand, c.label);
      if (!ok) return;
    }
    h[s.var] = cand;
    used.push_back(cand);
    Backtrack(g, depth + 1, h, used, on_match, opts, counters, stop);
    used.pop_back();
    h[s.var] = kNoNode;
  };

  // Only the pivot step lacks an anchor, and the pivot is pre-bound by
  // ForEachMatchAtPivot.
  assert(s.anchor != kNoVar);

  NodeId a = h[s.anchor];
  NodeId prev = kNoNode;
  if (s.anchor_out) {
    for (EdgeId e : g.OutEdges(a)) {
      if (!LabelMatches(g.EdgeLabel(e), s.anchor_label)) continue;
      NodeId cand = g.EdgeDst(e);
      if (cand == prev) continue;  // parallel edges: skip duplicate target
      prev = cand;
      try_candidate(cand);
      if (stop) return true;
    }
  } else {
    for (EdgeId e : g.InEdges(a)) {
      if (!LabelMatches(g.EdgeLabel(e), s.anchor_label)) continue;
      NodeId cand = g.EdgeSrc(e);
      if (cand == prev) continue;
      prev = cand;
      try_candidate(cand);
      if (stop) return true;
    }
  }
  return true;
}

template <typename GraphT>
bool CompiledPattern::ForEachMatchAtPivot(
    const GraphT& g, NodeId v,
    const std::function<bool(const Match&)>& on_match,
    const MatchOptions& opts, MatchCounters* counters) const {
  MatchCounters local;
  MatchCounters& ctr = counters ? *counters : local;
  const Step& s0 = steps_[0];
  if (!LabelMatches(g.NodeLabel(v), s0.label)) return true;
  if (g.OutDegree(v) < s0.min_out_deg || g.InDegree(v) < s0.min_in_deg) {
    return true;
  }
  for (const auto& c : s0.checks) {
    // Pivot-step checks are self-loops only.
    if (!g.HasEdge(v, v, c.label)) return true;
  }
  Match h(pattern_.NumNodes(), kNoNode);
  std::vector<NodeId> used;
  used.reserve(pattern_.NumNodes());
  h[s0.var] = v;
  used.push_back(v);
  bool stop = false;
  if (steps_.size() == 1) {
    ++ctr.matches_found;
    on_match(h);
    return true;
  }
  Backtrack(g, 1, h, used, on_match, opts, ctr, stop);
  return !ctr.budget_exhausted;
}

template <typename GraphT>
bool CompiledPattern::ForEachMatch(
    const GraphT& g, const std::function<bool(const Match&)>& on_match,
    const MatchOptions& opts, MatchCounters* counters) const {
  MatchCounters local;
  MatchCounters& ctr = counters ? *counters : local;
  bool aborted = false;
  auto wrapper = [&](const Match& m) {
    if (!on_match(m)) {
      aborted = true;
      return false;
    }
    return true;
  };
  for (NodeId v : PivotCandidates(g)) {
    if (!ForEachMatchAtPivot(g, v, wrapper, opts, &ctr)) return false;
    if (aborted) break;
  }
  return !ctr.budget_exhausted;
}

template <typename GraphT>
std::vector<NodeId> CompiledPattern::PivotCandidates(const GraphT& g) const {
  // Degree pre-filter on top of the label index: both bounds are the
  // pivot step's own, so every node dropped here is one
  // ForEachMatchAtPivot would reject before enumerating anything -- the
  // filter changes which pivots get scanned, never the match set.
  const Step& s0 = steps_[0];
  auto admits = [&](NodeId v) {
    return g.OutDegree(v) >= s0.min_out_deg && g.InDegree(v) >= s0.min_in_deg;
  };
  std::vector<NodeId> out;
  if (s0.label != kWildcardLabel) {
    auto span = g.NodesWithLabel(s0.label);
    out.reserve(span.size());
    for (NodeId v : span) {
      if (admits(v)) out.push_back(v);
    }
    return out;
  }
  out.reserve(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (admits(v)) out.push_back(v);
  }
  return out;
}

// Instantiate the enumeration for the immutable CSR graph and for the
// delta-overlay view (see the extern declarations in matcher.h).
#define GFD_INSTANTIATE_MATCHER(GraphT)                                      \
  template bool CompiledPattern::ForEachMatchAtPivot<GraphT>(                \
      const GraphT&, NodeId, const std::function<bool(const Match&)>&,       \
      const MatchOptions&, MatchCounters*) const;                            \
  template bool CompiledPattern::ForEachMatch<GraphT>(                       \
      const GraphT&, const std::function<bool(const Match&)>&,               \
      const MatchOptions&, MatchCounters*) const;                            \
  template std::vector<NodeId> CompiledPattern::PivotCandidates<GraphT>(     \
      const GraphT&) const;

GFD_INSTANTIATE_MATCHER(PropertyGraph)
GFD_INSTANTIATE_MATCHER(GraphView)
#undef GFD_INSTANTIATE_MATCHER

std::vector<NodeId> PivotSupportSet(const PropertyGraph& g,
                                    const CompiledPattern& q,
                                    const MatchOptions& opts) {
  std::vector<NodeId> out;
  for (NodeId v : q.PivotCandidates(g)) {
    bool found = false;
    q.ForEachMatchAtPivot(
        g, v,
        [&found](const Match&) {
          found = true;
          return false;  // one match per pivot suffices
        },
        opts);
    if (found) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t PatternSupport(const PropertyGraph& g, const CompiledPattern& q,
                        const MatchOptions& opts) {
  return PivotSupportSet(g, q, opts).size();
}

bool HasAnyMatch(const PropertyGraph& g, const CompiledPattern& q,
                 const MatchOptions& opts) {
  for (NodeId v : q.PivotCandidates(g)) {
    bool found = false;
    q.ForEachMatchAtPivot(
        g, v,
        [&found](const Match&) {
          found = true;
          return false;
        },
        opts);
    if (found) return true;
  }
  return false;
}

uint64_t CountMatches(const PropertyGraph& g, const CompiledPattern& q,
                      const MatchOptions& opts) {
  uint64_t count = 0;
  q.ForEachMatch(
      g,
      [&count](const Match&) {
        ++count;
        return true;
      },
      opts);
  return count;
}

}  // namespace gfd
