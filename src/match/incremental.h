// Incremental pattern matching by joining previously verified matches with
// candidate edge lists: the work unit "Q(F_s) |><| e(F_t)" of the parallel
// discovery algorithm (Section 6.2).
//
// A pattern Q' at level i decomposes into a verified pattern Q at level
// i-1 plus one edge e. Matches of Q' are obtained from matches of Q by
//   (a) closing: e connects two variables Q already had -- filter Q's
//       matches by edge existence, or
//   (b) extending: e introduces one fresh variable -- join Q's matches with
//       candidate edges keyed on the shared endpoint, enforcing injectivity
//       and the fresh variable's node label.
//
// The candidate edge list stands for e(F_t): in the distributed setting it
// is the (shipped) set of graph edges matching e's label and endpoint
// labels within fragment t. Joining against a *list* rather than the whole
// graph is exactly what makes the parallel algorithm's communication
// explicit.
#ifndef GFD_MATCH_INCREMENTAL_H_
#define GFD_MATCH_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "match/matcher.h"
#include "pattern/pattern.h"
#include "util/ids.h"

namespace gfd {

/// One candidate graph edge (already known to satisfy the pattern edge's
/// label constraints).
struct CandidateEdge {
  NodeId src;
  NodeId dst;

  friend bool operator==(const CandidateEdge&, const CandidateEdge&) = default;
};

/// Description of the delta edge that turns pattern Q into Q'.
struct DeltaEdge {
  VarId src;             ///< source variable in Q'
  VarId dst;             ///< destination variable in Q'
  LabelId label;         ///< pattern edge label
  VarId fresh_var;       ///< kNoVar when closing; else the new variable id
  LabelId fresh_label;   ///< node label of the fresh variable (if any)
};

/// Extracts e(G): all graph edges whose label matches `label` and whose
/// endpoint labels match `src_label` / `dst_label` (wildcards allowed).
/// `edge_ids` restricts the scan to a subset of edges (a fragment); pass
/// nullptr to scan the whole graph.
std::vector<CandidateEdge> CollectCandidateEdges(
    const PropertyGraph& g, LabelId src_label, LabelId label,
    LabelId dst_label, const std::vector<EdgeId>* edge_ids = nullptr);

/// Joins base matches of Q with candidate edges to produce matches of Q'.
/// `base_matches` are matches of Q (Q'.NumNodes() - (fresh? 1 : 0) vars);
/// output matches have Q'.NumNodes() entries. Output is deduplicated
/// (parallel candidate edges would otherwise create equal matches).
std::vector<Match> JoinMatchesWithEdges(
    const std::vector<Match>& base_matches, const DeltaEdge& delta,
    const std::vector<CandidateEdge>& candidates);

/// Deduplicates a match list in place (sort + unique).
void DedupMatches(std::vector<Match>& matches);

}  // namespace gfd

#endif  // GFD_MATCH_INCREMENTAL_H_
