#include "match/incremental.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace gfd {

std::vector<CandidateEdge> CollectCandidateEdges(
    const PropertyGraph& g, LabelId src_label, LabelId label,
    LabelId dst_label, const std::vector<EdgeId>* edge_ids) {
  std::vector<CandidateEdge> out;
  auto consider = [&](EdgeId e) {
    if (!LabelMatches(g.EdgeLabel(e), label)) return;
    NodeId s = g.EdgeSrc(e), d = g.EdgeDst(e);
    if (!LabelMatches(g.NodeLabel(s), src_label)) return;
    if (!LabelMatches(g.NodeLabel(d), dst_label)) return;
    out.push_back({s, d});
  };
  if (edge_ids) {
    for (EdgeId e : *edge_ids) consider(e);
  } else {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) consider(e);
  }
  // Dedup parallel edges with identical endpoints: as *candidates* they are
  // interchangeable.
  std::sort(out.begin(), out.end(), [](const CandidateEdge& a,
                                       const CandidateEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Match> JoinMatchesWithEdges(
    const std::vector<Match>& base_matches, const DeltaEdge& delta,
    const std::vector<CandidateEdge>& candidates) {
  std::vector<Match> out;
  if (base_matches.empty() || candidates.empty()) return out;

  if (delta.fresh_var == kNoVar) {
    // Closing edge: both endpoints already bound. Hash the candidate pairs.
    std::unordered_set<std::pair<NodeId, NodeId>, PairHash> pairs;
    pairs.reserve(candidates.size());
    for (const auto& c : candidates) pairs.insert({c.src, c.dst});
    for (const auto& m : base_matches) {
      if (pairs.contains({m[delta.src], m[delta.dst]})) out.push_back(m);
    }
    return out;
  }

  // Extending edge: exactly one endpoint is the fresh variable.
  const bool fresh_is_dst = (delta.fresh_var == delta.dst);
  const VarId bound_var = fresh_is_dst ? delta.src : delta.dst;
  // Index candidates by the bound endpoint.
  std::unordered_map<NodeId, std::vector<NodeId>> by_bound;
  by_bound.reserve(candidates.size());
  for (const auto& c : candidates) {
    if (fresh_is_dst) {
      by_bound[c.src].push_back(c.dst);
    } else {
      by_bound[c.dst].push_back(c.src);
    }
  }
  for (const auto& m : base_matches) {
    auto it = by_bound.find(m[bound_var]);
    if (it == by_bound.end()) continue;
    for (NodeId fresh : it->second) {
      // Injectivity: the fresh node must not already appear in the match.
      if (std::find(m.begin(), m.end(), fresh) != m.end()) continue;
      Match ext = m;
      ext.resize(std::max<size_t>(ext.size(), delta.fresh_var + 1), kNoNode);
      ext[delta.fresh_var] = fresh;
      out.push_back(std::move(ext));
    }
  }
  DedupMatches(out);
  return out;
}

void DedupMatches(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
}

}  // namespace gfd
