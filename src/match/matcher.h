// Subgraph-isomorphism matching of patterns against data graphs.
//
// Semantics (Section 2.1): a match of Q[x-bar] in G is an injective mapping
// h from pattern variables to graph nodes such that
//   (1) L(h(u)) matches Q's (possibly wildcard) node label, and
//   (2) for every pattern edge (u,u',l) there is a graph edge
//       h(u) -> h(u') whose label matches l.
// This is non-induced subgraph isomorphism on a directed multigraph; the
// paper's G' is the image subgraph, so extra edges among matched nodes are
// irrelevant.
//
// The matcher compiles a pattern once into a variable ordering rooted at
// the pivot (exploiting the data locality of Section 4.1: all matched nodes
// lie within the pattern radius of the pivot), then backtracks per pivot
// candidate. All discovery-side queries -- supp(Q,G), Q(G,Xl,z),
// validation -- are phrased as per-pivot callbacks with early exit.
//
// Enumeration is generic over the graph type: any type exposing the
// PropertyGraph read interface (NodeLabel, Out/InEdges, EdgeSrc/Dst/Label,
// Out/InDegree, HasEdge, NodesWithLabel, NumNodes) works. The library
// instantiates the plans for PropertyGraph and for the delta-overlay
// GraphView (graph/graph_view.h) in matcher.cc, which is what lets the
// incremental detection path run one compiled plan against the pre- and
// post-update graphs.
#ifndef GFD_MATCH_MATCHER_H_
#define GFD_MATCH_MATCHER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "graph/graph_view.h"
#include "graph/property_graph.h"
#include "pattern/pattern.h"
#include "util/ids.h"

namespace gfd {

/// A complete match: graph node per pattern variable (indexed by VarId).
using Match = std::vector<NodeId>;

/// Budgets and counters for a matching run.
struct MatchOptions {
  /// Upper bound on backtracking steps (candidate attempts) before the
  /// matcher gives up; protects un-pruned baselines from runaway patterns.
  uint64_t max_steps = std::numeric_limits<uint64_t>::max();
};

struct MatchCounters {
  uint64_t steps = 0;           ///< candidate attempts
  uint64_t matches_found = 0;   ///< callbacks fired
  bool budget_exhausted = false;
};

/// A pattern compiled into a pivot-rooted search plan. Reusable across any
/// number of graphs/pivots; immutable after construction.
class CompiledPattern {
 public:
  /// Precondition: q.IsConnected() (discovery only spawns connected
  /// patterns). Disconnected patterns are rejected with an assert.
  explicit CompiledPattern(const Pattern& q);

  const Pattern& pattern() const { return pattern_; }

  /// Enumerates matches with h(pivot) = v. The callback returns false to
  /// stop early (within this pivot). Returns false iff the step budget was
  /// exhausted mid-enumeration (results may be incomplete). GraphT is
  /// PropertyGraph or GraphView (instantiated in matcher.cc).
  template <typename GraphT>
  bool ForEachMatchAtPivot(
      const GraphT& g, NodeId v,
      const std::function<bool(const Match&)>& on_match,
      const MatchOptions& opts = {}, MatchCounters* counters = nullptr) const;

  /// Enumerates all matches in G (all pivots). Callback semantics as above,
  /// except returning false aborts the entire enumeration.
  template <typename GraphT>
  bool ForEachMatch(const GraphT& g,
                    const std::function<bool(const Match&)>& on_match,
                    const MatchOptions& opts = {},
                    MatchCounters* counters = nullptr) const;

  /// Candidate pivot nodes of G: label pre-filter plus the pivot step's
  /// degree lower bounds, exactly the checks ForEachMatchAtPivot would
  /// reject the node on anyway -- callers still need the full match test.
  template <typename GraphT>
  std::vector<NodeId> PivotCandidates(const GraphT& g) const;

 private:
  struct EdgeCheck {
    VarId other;        // already-bound variable on the far end
    bool out;           // true: current -> other, false: other -> current
    LabelId label;      // pattern edge label
  };
  struct Step {
    VarId var;              // variable bound at this step
    LabelId label;          // its node label
    VarId anchor;           // bound variable adjacent to var (kNoVar: none)
    bool anchor_out;        // true: anchor -> var
    LabelId anchor_label;   // label of the anchor edge
    std::vector<EdgeCheck> checks;  // remaining incident edges to verify
    uint32_t min_out_deg;   // degree lower bounds from the pattern
    uint32_t min_in_deg;
  };

  template <typename GraphT>
  bool Backtrack(const GraphT& g, size_t depth, Match& h,
                 std::vector<NodeId>& used,
                 const std::function<bool(const Match&)>& on_match,
                 const MatchOptions& opts, MatchCounters& counters,
                 bool& stop) const;

  Pattern pattern_;
  std::vector<Step> steps_;  // steps_[0].var == pivot
};

// The enumeration templates are defined in matcher.cc and explicitly
// instantiated there for the two graph types of the library.
extern template bool CompiledPattern::ForEachMatchAtPivot<PropertyGraph>(
    const PropertyGraph&, NodeId, const std::function<bool(const Match&)>&,
    const MatchOptions&, MatchCounters*) const;
extern template bool CompiledPattern::ForEachMatchAtPivot<GraphView>(
    const GraphView&, NodeId, const std::function<bool(const Match&)>&,
    const MatchOptions&, MatchCounters*) const;
extern template bool CompiledPattern::ForEachMatch<PropertyGraph>(
    const PropertyGraph&, const std::function<bool(const Match&)>&,
    const MatchOptions&, MatchCounters*) const;
extern template bool CompiledPattern::ForEachMatch<GraphView>(
    const GraphView&, const std::function<bool(const Match&)>&,
    const MatchOptions&, MatchCounters*) const;
extern template std::vector<NodeId>
CompiledPattern::PivotCandidates<PropertyGraph>(const PropertyGraph&) const;
extern template std::vector<NodeId> CompiledPattern::PivotCandidates<GraphView>(
    const GraphView&) const;

/// Q(G,z): distinct pivot nodes that admit at least one match (pattern
/// support, Section 4.2). Sorted ascending.
std::vector<NodeId> PivotSupportSet(const PropertyGraph& g,
                                    const CompiledPattern& q,
                                    const MatchOptions& opts = {});

/// |Q(G,z)| convenience wrapper.
uint64_t PatternSupport(const PropertyGraph& g, const CompiledPattern& q,
                        const MatchOptions& opts = {});

/// True iff Q has at least one match in G.
bool HasAnyMatch(const PropertyGraph& g, const CompiledPattern& q,
                 const MatchOptions& opts = {});

/// Total number of matches (isomorphic images counted per variable
/// assignment). Used by tests and the AMIE baseline.
uint64_t CountMatches(const PropertyGraph& g, const CompiledPattern& q,
                      const MatchOptions& opts = {});

}  // namespace gfd

#endif  // GFD_MATCH_MATCHER_H_
