#include "baselines/amie.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace gfd {

namespace {

// Per-relation edge index with (src, dst) deduplication and adjacency.
class RelIndex {
 public:
  explicit RelIndex(const PropertyGraph& g) : g_(g) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      LabelId r = g.EdgeLabel(e);
      pairs_[r].push_back({g.EdgeSrc(e), g.EdgeDst(e)});
    }
    for (auto& [r, v] : pairs_) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      for (const auto& [s, d] : v) {
        out_[{r, s}].push_back(d);
        in_[{r, d}].push_back(s);
      }
    }
  }

  std::vector<LabelId> relations() const {
    std::vector<LabelId> rels;
    for (const auto& [r, v] : pairs_) rels.push_back(r);
    std::sort(rels.begin(), rels.end());
    return rels;
  }

  const std::vector<std::pair<NodeId, NodeId>>& PairsOf(LabelId r) const {
    static const std::vector<std::pair<NodeId, NodeId>> kEmpty;
    auto it = pairs_.find(r);
    return it == pairs_.end() ? kEmpty : it->second;
  }

  const std::vector<NodeId>& Out(LabelId r, NodeId s) const {
    static const std::vector<NodeId> kEmpty;
    auto it = out_.find({r, s});
    return it == out_.end() ? kEmpty : it->second;
  }

  const std::vector<NodeId>& In(LabelId r, NodeId d) const {
    static const std::vector<NodeId> kEmpty;
    auto it = in_.find({r, d});
    return it == in_.end() ? kEmpty : it->second;
  }

  bool Has(LabelId r, NodeId s, NodeId d) const { return g_.HasEdge(s, d, r); }

 private:
  const PropertyGraph& g_;
  std::unordered_map<LabelId, std::vector<std::pair<NodeId, NodeId>>> pairs_;
  std::unordered_map<std::pair<LabelId, NodeId>, std::vector<NodeId>,
                     PairHash>
      out_;
  std::unordered_map<std::pair<LabelId, NodeId>, std::vector<NodeId>,
                     PairHash>
      in_;
};

constexpr NodeId kUnbound = kNoNode;

// Homomorphism backtracking over body atoms (no injectivity -- AMIE
// semantics). Returns true if a full binding exists. `budget` counts
// candidate attempts; exhaustion makes the check fail conservatively.
bool BodySatisfiable(const RelIndex& idx, const std::vector<AmieAtom>& body,
                     std::vector<NodeId>& binding, size_t atom_i,
                     uint64_t& budget) {
  if (atom_i == body.size()) return true;
  // Pick the next unsatisfied atom with the most bound variables.
  size_t best = atom_i;
  int best_score = -1;
  for (size_t i = atom_i; i < body.size(); ++i) {
    int score = (binding[body[i].var_s] != kUnbound) +
                (binding[body[i].var_d] != kUnbound);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  std::vector<AmieAtom> reordered(body);
  std::swap(reordered[atom_i], reordered[best]);
  const AmieAtom& a = reordered[atom_i];
  NodeId bs = binding[a.var_s], bd = binding[a.var_d];

  auto descend = [&]() {
    return BodySatisfiable(idx, reordered, binding, atom_i + 1, budget);
  };

  if (bs != kUnbound && bd != kUnbound) {
    if (budget == 0) return false;
    --budget;
    return idx.Has(a.rel, bs, bd) && descend();
  }
  if (bs != kUnbound) {
    for (NodeId d : idx.Out(a.rel, bs)) {
      if (budget == 0) return false;
      --budget;
      binding[a.var_d] = d;
      if (descend()) {
        binding[a.var_d] = kUnbound;
        return true;
      }
      binding[a.var_d] = kUnbound;
    }
    return false;
  }
  if (bd != kUnbound) {
    for (NodeId s : idx.In(a.rel, bd)) {
      if (budget == 0) return false;
      --budget;
      binding[a.var_s] = s;
      if (descend()) {
        binding[a.var_s] = kUnbound;
        return true;
      }
      binding[a.var_s] = kUnbound;
    }
    return false;
  }
  for (const auto& [s, d] : idx.PairsOf(a.rel)) {
    if (budget == 0) return false;
    --budget;
    binding[a.var_s] = s;
    binding[a.var_d] = d;
    if (descend()) {
      binding[a.var_s] = kUnbound;
      binding[a.var_d] = kUnbound;
      return true;
    }
    binding[a.var_s] = kUnbound;
    binding[a.var_d] = kUnbound;
  }
  return false;
}

size_t NumVars(const AmieRule& rule) {
  uint32_t mx = std::max(rule.head.var_s, rule.head.var_d);
  for (const auto& a : rule.body) {
    mx = std::max({mx, a.var_s, a.var_d});
  }
  return mx + 1;
}

bool IsClosed(const AmieRule& rule) {
  std::vector<int> occurrences(NumVars(rule), 0);
  ++occurrences[rule.head.var_s];
  ++occurrences[rule.head.var_d];
  for (const auto& a : rule.body) {
    ++occurrences[a.var_s];
    ++occurrences[a.var_d];
  }
  return std::all_of(occurrences.begin(), occurrences.end(),
                     [](int c) { return c >= 2; });
}

// support = #(x, y): body ∧ head. Anti-monotone under body extension.
uint64_t RuleSupport(const RelIndex& idx, const AmieRule& rule,
                     uint64_t& budget) {
  uint64_t supp = 0;
  std::vector<NodeId> binding(NumVars(rule), kUnbound);
  for (const auto& [x, y] : idx.PairsOf(rule.head.rel)) {
    binding.assign(binding.size(), kUnbound);
    binding[0] = x;
    binding[1] = y;
    if (BodySatisfiable(idx, rule.body, binding, 0, budget)) ++supp;
    if (budget == 0) break;
  }
  return supp;
}

// PCA denominator: #(x, y): body(x, y) ∧ ∃y'' head_rel(x, y''). Enumerated
// by seeding x from the head relation's subjects and binding y via the
// body.
uint64_t PcaBodyPairs(const RelIndex& idx, const AmieRule& rule,
                      uint64_t& budget) {
  std::set<NodeId> subjects;
  for (const auto& [s, d] : idx.PairsOf(rule.head.rel)) subjects.insert(s);
  uint64_t pairs = 0;
  std::vector<NodeId> binding(NumVars(rule), kUnbound);
  for (NodeId x : subjects) {
    // Count distinct y with body(x, y): enumerate y candidates lazily by
    // checking, for each y that the head could predict... y is bound by
    // the body (closed rules), so enumerate body solutions projected on y.
    // Cheap scheme: try every y from the body atom incident to var 1.
    std::set<NodeId> ys;
    // Collect y-candidates from atoms touching var 1.
    for (const auto& a : rule.body) {
      if (a.var_s == 1 || a.var_d == 1) {
        for (const auto& [s, d] : idx.PairsOf(a.rel)) {
          ys.insert(a.var_s == 1 ? s : d);
          if (budget == 0) break;
        }
      }
    }
    for (NodeId y : ys) {
      binding.assign(binding.size(), kUnbound);
      binding[0] = x;
      binding[1] = y;
      if (BodySatisfiable(idx, rule.body, binding, 0, budget)) ++pairs;
      if (budget == 0) return pairs;
    }
  }
  return pairs;
}

std::vector<AmieAtom> CanonicalBody(std::vector<AmieAtom> body) {
  std::sort(body.begin(), body.end(), [](const AmieAtom& a, const AmieAtom& b) {
    if (a.rel != b.rel) return a.rel < b.rel;
    if (a.var_s != b.var_s) return a.var_s < b.var_s;
    return a.var_d < b.var_d;
  });
  return body;
}

}  // namespace

std::string AmieRule::ToString(const PropertyGraph& g) const {
  auto atom_str = [&](const AmieAtom& a) {
    std::ostringstream os;
    os << g.LabelName(a.rel) << "(?" << a.var_s << ", ?" << a.var_d << ")";
    return os.str();
  };
  std::ostringstream os;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) os << " ∧ ";
    os << atom_str(body[i]);
  }
  os << " => " << atom_str(head);
  os << "  [supp=" << support << ", hc=" << head_coverage
     << ", pca=" << pca_confidence << "]";
  return os.str();
}

namespace {

// Mines all rules for one head relation; appends to `output`.
void MineHead(const RelIndex& idx, const std::vector<LabelId>& rels,
              LabelId head_rel, const AmieConfig& cfg,
              std::vector<AmieRule>& output) {
  uint64_t budget = cfg.eval_budget;
  {
    const auto& head_pairs = idx.PairsOf(head_rel);
    if (head_pairs.size() < cfg.min_support) return;

    // BFS over rule bodies.
    struct Candidate {
      std::vector<AmieAtom> body;
      uint32_t num_vars;  // variables used so far (x, y + fresh)
    };
    std::vector<Candidate> frontier{{{}, 2}};
    std::set<std::vector<AmieAtom>> seen;

    for (size_t len = 1; len <= cfg.max_body_atoms && budget > 0; ++len) {
      std::vector<Candidate> next;
      for (const auto& cand : frontier) {
        for (LabelId rel : rels) {
          // Refinements: closing atoms between existing vars, and
          // dangling atoms introducing one fresh variable.
          std::vector<AmieAtom> atoms;
          for (uint32_t a = 0; a < cand.num_vars; ++a) {
            for (uint32_t b = 0; b < cand.num_vars; ++b) {
              if (a != b) atoms.push_back({rel, a, b});
            }
            atoms.push_back({rel, a, cand.num_vars});  // dangling out
            atoms.push_back({rel, cand.num_vars, a});  // dangling in
          }
          for (const auto& atom : atoms) {
            if (budget == 0) break;
            // The head itself must not appear in the body, and repeated
            // atoms add no constraint.
            if (atom.rel == head_rel && atom.var_s == 0 && atom.var_d == 1) {
              continue;
            }
            if (std::find(cand.body.begin(), cand.body.end(), atom) !=
                cand.body.end()) {
              continue;
            }
            Candidate child;
            child.body = cand.body;
            child.body.push_back(atom);
            child.num_vars =
                std::max(cand.num_vars,
                         std::max(atom.var_s, atom.var_d) + 1);
            auto canon = CanonicalBody(child.body);
            if (!seen.insert(canon).second) continue;

            AmieRule rule;
            rule.body = child.body;
            rule.head = {head_rel, 0, 1};
            rule.support = RuleSupport(idx, rule, budget);
            if (rule.support < cfg.min_support) continue;
            rule.head_coverage =
                static_cast<double>(rule.support) / head_pairs.size();
            if (rule.head_coverage < cfg.min_head_coverage) continue;
            next.push_back(child);
            if (!IsClosed(rule)) continue;
            uint64_t pca_pairs = PcaBodyPairs(idx, rule, budget);
            rule.pca_confidence =
                pca_pairs ? static_cast<double>(rule.support) / pca_pairs
                          : 0.0;
            if (rule.pca_confidence >= cfg.min_pca_confidence) {
              output.push_back(rule);
            }
          }
        }
      }
      frontier = std::move(next);
    }
  }
}

}  // namespace

std::vector<AmieRule> MineAmieRules(const PropertyGraph& g,
                                    const AmieConfig& cfg) {
  RelIndex idx(g);
  auto rels = idx.relations();
  std::vector<AmieRule> output;
  if (cfg.workers <= 1) {
    for (LabelId head_rel : rels) {
      MineHead(idx, rels, head_rel, cfg, output);
    }
    return output;
  }
  // ParAMIE: head relations mined in parallel, results merged in
  // deterministic head order.
  std::vector<std::vector<AmieRule>> partial(rels.size());
  ThreadPool pool(cfg.workers);
  ParallelFor(pool, rels.size(), [&](size_t i) {
    MineHead(idx, rels, rels[i], cfg, partial[i]);
  });
  for (auto& p : partial) {
    output.insert(output.end(), std::make_move_iterator(p.begin()),
                  std::make_move_iterator(p.end()));
  }
  return output;
}

std::vector<NodeId> AmieViolationNodes(const PropertyGraph& g,
                                       const std::vector<AmieRule>& rules,
                                       double min_confidence) {
  RelIndex idx(g);
  std::vector<NodeId> nodes;
  uint64_t budget = 50'000'000;
  for (const auto& rule : rules) {
    if (rule.pca_confidence < min_confidence) continue;
    // Enumerate body matches projected to (x, y); where the head edge is
    // missing, x lacks the predicted relation.
    std::set<NodeId> xs;
    for (const auto& a : rule.body) {
      if (a.var_s == 0 || a.var_d == 0) {
        for (const auto& [s, d] : idx.PairsOf(a.rel)) {
          xs.insert(a.var_s == 0 ? s : d);
        }
      }
    }
    std::vector<NodeId> binding;
    for (NodeId x : xs) {
      std::set<NodeId> ys;
      for (const auto& a : rule.body) {
        if (a.var_s == 1 || a.var_d == 1) {
          for (const auto& [s, d] : idx.PairsOf(a.rel)) {
            ys.insert(a.var_s == 1 ? s : d);
          }
        }
      }
      for (NodeId y : ys) {
        binding.assign(NumVars(rule), kUnbound);
        binding[0] = x;
        binding[1] = y;
        if (!BodySatisfiable(idx, rule.body, binding, 0, budget)) continue;
        if (!idx.Has(rule.head.rel, x, y)) {
          nodes.push_back(x);
          break;
        }
      }
      if (budget == 0) break;
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace gfd
