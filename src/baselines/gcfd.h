// GCFD mining (the ParCGFD comparison of Section 7): CFDs with *path*
// patterns [He-Zou-Zhao, SWIM'14] as a special case of GFDs. Reuses the
// full discovery stack restricted to directed chains -- no cyclic
// patterns, no closing edges, no wildcard upgrades -- which is precisely
// the expressiveness gap the paper measures.
#ifndef GFD_BASELINES_GCFD_H_
#define GFD_BASELINES_GCFD_H_

#include "core/config.h"
#include "core/seqdis.h"
#include "graph/property_graph.h"
#include "parallel/cluster.h"

namespace gfd {

/// Sequential GCFD mining: SeqDis over path patterns only.
DiscoveryResult MineGcfds(const PropertyGraph& g, DiscoveryConfig cfg);

/// Parallel GCFD mining (the paper's ParCGFD): ParDis over path patterns.
DiscoveryResult ParMineGcfds(const PropertyGraph& g, DiscoveryConfig cfg,
                             const ParallelRunConfig& pcfg,
                             ClusterStats* stats = nullptr);

}  // namespace gfd

#endif  // GFD_BASELINES_GCFD_H_
