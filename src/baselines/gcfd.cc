#include "baselines/gcfd.h"

#include "parallel/pardis.h"

namespace gfd {

DiscoveryResult MineGcfds(const PropertyGraph& g, DiscoveryConfig cfg) {
  cfg.path_patterns_only = true;
  cfg.wildcard_upgrades = false;
  return SeqDis(g, cfg);
}

DiscoveryResult ParMineGcfds(const PropertyGraph& g, DiscoveryConfig cfg,
                             const ParallelRunConfig& pcfg,
                             ClusterStats* stats) {
  cfg.path_patterns_only = true;
  cfg.wildcard_upgrades = false;
  return ParDis(g, cfg, pcfg, stats);
}

}  // namespace gfd
