// AMIE-style association rule mining (Galarraga et al., WWW'13), the
// comparison system of Section 7. Rules are horn clauses over edge atoms,
//     B1 ∧ ... ∧ Bn  =>  r(x, y)
// evaluated under *homomorphism* semantics (no injectivity), the Open
// World Assumption, head coverage, and PCA confidence. In contrast to
// GFDs (see Related Work), AMIE rules have no isomorphism semantics, no
// wildcards-with-labels distinction, no attribute-constant bindings, and
// no negative rules -- which is exactly what the accuracy comparison of
// Fig. 7 probes.
#ifndef GFD_BASELINES_AMIE_H_
#define GFD_BASELINES_AMIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "util/ids.h"

namespace gfd {

/// One body/head atom r(vs, vd) over rule variables (0 = x, 1 = y, 2+ =
/// existential body variables).
struct AmieAtom {
  LabelId rel;
  uint32_t var_s;
  uint32_t var_d;

  friend bool operator==(const AmieAtom&, const AmieAtom&) = default;
  friend auto operator<=>(const AmieAtom&, const AmieAtom&) = default;
};

/// A mined rule body => head with its quality measures.
struct AmieRule {
  std::vector<AmieAtom> body;
  AmieAtom head;
  uint64_t support = 0;     ///< #(x,y): body ∧ head
  double head_coverage = 0; ///< support / #head-relation edges
  double pca_confidence = 0;

  std::string ToString(const PropertyGraph& g) const;
};

struct AmieConfig {
  size_t max_body_atoms = 2;   ///< rule length - 1 (k=3 variables default)
  uint64_t min_support = 10;
  double min_head_coverage = 0.01;
  double min_pca_confidence = 0.0;
  uint64_t eval_budget = 50'000'000;  ///< homomorphism steps per head rel
  size_t workers = 1;  ///< >1 = the paper's ParAMIE (parallel over heads)
};

/// Mines closed AMIE rules from `g` by head-relation refinement. With
/// cfg.workers > 1, head relations are mined in parallel (ParAMIE).
std::vector<AmieRule> MineAmieRules(const PropertyGraph& g,
                                    const AmieConfig& cfg);

/// Error detection for Fig. 7: nodes x such that some confident rule's
/// body matches at x but the predicted head edge is missing ("nodes that
/// do not have the predicted relation"). Sorted, deduplicated.
std::vector<NodeId> AmieViolationNodes(const PropertyGraph& g,
                                       const std::vector<AmieRule>& rules,
                                       double min_confidence = 0.5);

}  // namespace gfd

#endif  // GFD_BASELINES_AMIE_H_
