#include "baselines/arab.h"

#include <algorithm>

#include "core/generation_tree.h"
#include "core/lattice.h"
#include "core/lattice_util.h"
#include "core/literal_pool.h"
#include "core/profile.h"
#include "graph/stats.h"
#include "match/matcher.h"

namespace gfd {

ArabResult ParArab(const PropertyGraph& g, const DiscoveryConfig& cfg,
                   const ArabConfig& acfg) {
  ArabResult result;
  GraphStats gstats(g);
  auto gamma = ResolveActiveAttrs(gstats, cfg);
  auto triples = gstats.FrequentTriples(cfg.support_threshold);
  auto wildcard_labels = cfg.wildcard_upgrades
                             ? WildcardEdgeLabels(gstats, cfg)
                             : std::vector<LabelId>{};

  // ---- Phase 1: frequent pattern mining with full embedding stores ----
  GenerationTree tree;
  DiscoveryStats& stats = result.discovery.stats;
  std::vector<std::pair<int, MatchStore>> stores;  // all frequent patterns

  auto l0 = InitTree(tree, gstats, cfg, stats);
  std::vector<int> pending = l0;
  const size_t max_level = cfg.k * cfg.k;
  for (size_t level = 0; level <= max_level; ++level) {
    if (level > 0) {
      pending = VSpawn(tree, static_cast<int>(level), triples,
                       wildcard_labels, cfg, stats);
      if (pending.empty()) break;
    }
    for (int id : pending) {
      TreeNode& node = tree.node(id);
      CompiledPattern cq(node.pattern);
      MatchStore store = EnumerateMatches(g, cq, cfg.max_profile_matches);
      result.matches_materialized += store.matches.size();
      stats.profile_matches += store.matches.size();
      // Pattern support still has to be computed pivot-grouped.
      std::vector<NodeId> pivots;
      pivots.reserve(store.matches.size());
      const VarId pivot = node.pattern.pivot();
      for (const auto& m : store.matches) pivots.push_back(m[pivot]);
      std::sort(pivots.begin(), pivots.end());
      pivots.erase(std::unique(pivots.begin(), pivots.end()), pivots.end());
      node.support = pivots.size();
      node.verified = true;
      node.frequent = node.support >= cfg.support_threshold;
      if (node.frequent) {
        ++stats.patterns_frequent;
        ++result.patterns_mined;
        stores.emplace_back(id, std::move(store));  // Arabesque keeps all
      } else if (node.support == 0) {
        ++stats.patterns_zero_support;
      }
      if (result.matches_materialized > acfg.max_total_matches) {
        result.failed = true;
        return result;
      }
    }
  }

  // ---- Phase 2: literal attachment + validation per pattern ----
  std::sort(stores.begin(), stores.end(), [&](const auto& a, const auto& b) {
    const Pattern& pa = tree.node(a.first).pattern;
    const Pattern& pb = tree.node(b.first).pattern;
    if (pa.NumEdges() != pb.NumEdges()) return pa.NumEdges() < pb.NumEdges();
    size_t wa = WildcardCount(pa), wb = WildcardCount(pb);
    if (wa != wb) return wa > wb;
    return a.first < b.first;
  });
  LiteralLatticeMiner lattice(cfg, result.discovery);
  for (auto& [id, store] : stores) {
    const TreeNode& node = tree.node(id);
    auto constants = CollectMatchConstants(g, store, gamma);
    auto pool =
        BuildLiteralPoolFromMatches(node.pattern, gamma, constants, cfg);
    PatternProfile profile(g, store, node.pattern.pivot(), pool);
    if (!lattice.MinePattern(id, node.pattern, pool, profile)) break;
  }
  FinalizeReduced(result.discovery);
  return result;
}

}  // namespace gfd
