// ParArab (Section 7, "baselines"): the split pipeline that the paper
// contrasts with integrated discovery. Phase 1 mines *all* sigma-frequent
// patterns Arabesque-style -- materializing every pattern's full embedding
// (match) list with no GFD-side pruning. Phase 2 attaches literals to each
// frequent pattern and validates. The phase-1 materialization is what
// blows up on real graphs (the paper reports ParArab failing at the
// verification step); a memory budget turns that blow-up into a reported
// failure instead of an OOM.
#ifndef GFD_BASELINES_ARAB_H_
#define GFD_BASELINES_ARAB_H_

#include "core/config.h"
#include "core/seqdis.h"
#include "graph/property_graph.h"

namespace gfd {

struct ArabConfig {
  /// Total matches materialized across all frequent patterns before the
  /// run declares failure (Arabesque's embedding store, scaled down).
  uint64_t max_total_matches = 2'000'000;
};

struct ArabResult {
  DiscoveryResult discovery;
  bool failed = false;          ///< materialization budget exceeded
  uint64_t patterns_mined = 0;  ///< phase-1 frequent patterns
  uint64_t matches_materialized = 0;
};

/// Runs the two-phase pipeline.
ArabResult ParArab(const PropertyGraph& g, const DiscoveryConfig& cfg,
                   const ArabConfig& acfg = {});

}  // namespace gfd

#endif  // GFD_BASELINES_ARAB_H_
