#include "detect/planner.h"

#include <algorithm>

#include "detect/metrics.h"

namespace gfd {

double IncrementalWork(const PlannerInputs& in) {
  // Every anchor plan is seeded from the affected set and walks its
  // adjacency; +1 keeps the measure positive for empty estimates.
  const double per_plan =
      static_cast<double>(in.affected_degree) +
      static_cast<double>(in.affected_nodes) + 1.0;
  return static_cast<double>(std::max<size_t>(in.anchor_plans, 1)) * per_plan;
}

double FullWork(const PlannerInputs& in) {
  // A full run scans every node and edge once per pattern group.
  const double per_group =
      static_cast<double>(in.base_edges) +
      static_cast<double>(in.base_nodes) + 1.0;
  return static_cast<double>(std::max<size_t>(in.num_groups, 1)) * per_group;
}

PlannerInputs MakePlannerInputs(const GraphView& view, size_t overlay_ops,
                                std::string_view delta_tsv,
                                size_t num_groups, size_t anchor_plans) {
  PlannerInputs in;
  // Count the batch's ops from the text alone: one op per E+/E-/A line.
  // This is an upper bound (a malformed line that Append would reject
  // still counts), which is the right direction for a cost estimate.
  size_t pos = 0;
  while (pos < delta_tsv.size()) {
    const char c = delta_tsv[pos];
    if (c == 'E' || c == 'A') ++in.batch_ops;
    const size_t nl = delta_tsv.find('\n', pos);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  in.overlay_ops_after = overlay_ops + in.batch_ops;
  in.base_nodes = view.base().NumNodes();
  in.base_edges = view.base().NumEdges();
  in.num_groups = num_groups;
  in.anchor_plans = anchor_plans;

  // Post-append affected-set estimate: the nodes the overlay already
  // touches, plus at most two endpoints per incoming op; degrees of the
  // unseen endpoints estimated at the mean degree (2|E|/|V|).
  const auto affected = view.AffectedNodes();
  in.affected_nodes = affected.size() + 2 * in.batch_ops;
  for (const NodeId v : affected) {
    in.affected_degree += view.Degree(v);
  }
  const uint64_t avg_degree =
      in.base_nodes == 0 ? 0 : (2 * in.base_edges) / in.base_nodes;
  in.affected_degree += 2 * in.batch_ops * avg_degree;
  return in;
}

DetectPlanner::DetectPlanner(PlannerConfig config) : config_(config) {}

DetectPath DetectPlanner::Plan(const PlannerInputs& in) {
  DetectPath path = DetectPath::kIncremental;
  switch (config_.mode) {
    case PlannerConfig::Mode::kForceIncremental:
      path = DetectPath::kIncremental;
      break;
    case PlannerConfig::Mode::kForceFull:
      path = DetectPath::kFull;
      break;
    case PlannerConfig::Mode::kAdaptive:
      if (calibrated()) {
        path = inc_unit_ * IncrementalWork(in) >= full_unit_ * FullWork(in)
                   ? DetectPath::kFull
                   : DetectPath::kIncremental;
      } else {
        // Seeded rule: the bench crossover, on post-batch overlay size.
        path = in.base_edges > 0 &&
                       static_cast<double>(in.overlay_ops_after) >=
                           config_.crossover_fraction *
                               static_cast<double>(in.base_edges)
                   ? DetectPath::kFull
                   : DetectPath::kIncremental;
      }
      break;
  }
  if (path == DetectPath::kFull) {
    ++stats_.full_decisions;
    PlannerDecisions(DetectPath::kFull).Inc();
  } else {
    ++stats_.incremental_decisions;
    PlannerDecisions(DetectPath::kIncremental).Inc();
  }
  return path;
}

void DetectPlanner::ObserveIncremental(const PlannerInputs& in,
                                       double seconds) {
  ++stats_.incremental_observations;
  ObserveUnit(&inc_unit_, seconds, IncrementalWork(in));
}

void DetectPlanner::ObserveFull(const PlannerInputs& in, double seconds) {
  ++stats_.full_observations;
  ObserveUnit(&full_unit_, seconds, FullWork(in));
}

void DetectPlanner::ObserveUnit(double* unit, double seconds, double work) {
  if (seconds <= 0) return;  // clock glitch: keep the old estimate
  const double u = seconds / work;
  *unit = *unit == 0 ? u : *unit + config_.calibration_gain * (u - *unit);
}

}  // namespace gfd
