// Cached registry handles for the detection layer's metrics. Each
// accessor registers its family in obs::MetricsRegistry::Default() on
// first use and returns the same child afterwards, so hot paths only
// touch relaxed atomics.
#ifndef GFD_DETECT_METRICS_H_
#define GFD_DETECT_METRICS_H_

#include <cstddef>

#include "obs/metrics.h"

namespace gfd {

enum class DetectPath;  // detect/planner.h

/// Full-run detect latency (gfd_detect_full_seconds).
obs::Histogram& DetectFullLatency();

/// Incremental (anchored-diff) detect latency
/// (gfd_detect_incremental_seconds).
obs::Histogram& DetectIncrementalLatency();

/// Total pattern matches enumerated across all runs
/// (gfd_detect_matches_enumerated_total).
obs::Counter& DetectMatchesEnumerated();

/// Matches enumerated attributed to pattern group `group`
/// (gfd_detect_group_matches_total{group="<i>"}).
obs::Counter& DetectGroupMatches(size_t group);

/// Literal evaluations across all runs (gfd_detect_literal_evals_total).
obs::Counter& DetectLiteralEvals();

/// Violations entering / leaving the set via incremental diffs
/// (gfd_detect_diff_added_total / gfd_detect_diff_removed_total).
obs::Counter& DetectDiffAdded();
obs::Counter& DetectDiffRemoved();

/// Per-batch detection path chosen by the DetectPlanner
/// (gfd_detect_planner_decisions_total{path="incremental"|"full"}).
obs::Counter& PlannerDecisions(DetectPath path);

/// Pattern groups scanned / skipped by the anchored-diff footprint gate
/// (gfd_detect_groups_scanned_total / gfd_detect_groups_skipped_total).
obs::Counter& DetectGroupsScanned();
obs::Counter& DetectGroupsSkipped();

/// Pre-registers every unlabeled detect family so a render shows the
/// full catalog even before any detection ran.
void TouchDetectMetrics();

}  // namespace gfd

#endif  // GFD_DETECT_METRICS_H_
