#include "detect/engine.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <memory>
#include <unordered_map>

#include "detect/metrics.h"
#include "obs/trace.h"
#include "pattern/canonical.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace gfd {

namespace {

// An embedding between exactly-isomorphic patterns may still pair a
// wildcard with a concrete label (ForEachEmbedding checks subsumption,
// not equality); literal remapping needs a label-exact isomorphism so
// that matches of the representative are exactly the matches of the
// member. Returns f: member VarId -> rep VarId, or empty if none found.
std::vector<VarId> ExactIsomorphism(const Pattern& member,
                                    const Pattern& rep) {
  std::vector<VarId> iso;
  ForEachEmbedding(member, rep, /*require_pivot=*/true,
                   [&](const std::vector<VarId>& f) {
                     for (VarId u = 0; u < member.NumNodes(); ++u) {
                       if (member.NodeLabel(u) != rep.NodeLabel(f[u])) {
                         return true;  // not exact; keep searching
                       }
                     }
                     for (const auto& e : member.edges()) {
                       bool found = false;
                       for (const auto& re : rep.edges()) {
                         if (re.src == f[e.src] && re.dst == f[e.dst] &&
                             re.label == e.label) {
                           found = true;
                           break;
                         }
                       }
                       if (!found) return true;
                     }
                     iso = f;
                     return false;  // exact isomorphism found, stop
                   });
  return iso;
}

}  // namespace

struct ViolationEngine::RunState {
  const DetectOptions& opts;
  std::unique_ptr<std::atomic<size_t>[]> per_rule;  // emitted per rule
  std::atomic<size_t> total{0};
  std::atomic<bool> stop{false};  // global budget exhausted
  std::atomic<bool> truncated{false};
  std::atomic<uint64_t> pivots{0};
  std::atomic<uint64_t> matches{0};
  std::atomic<uint64_t> literal_evals{0};

  RunState(const DetectOptions& o, size_t num_rules)
      : opts(o), per_rule(new std::atomic<size_t>[num_rules]) {
    for (size_t i = 0; i < num_rules; ++i) per_rule[i] = 0;
  }

  bool RuleCapped(uint32_t r) const {
    return opts.max_violations_per_gfd != 0 &&
           per_rule[r].load(std::memory_order_relaxed) >=
               opts.max_violations_per_gfd;
  }
};

ViolationEngine::ViolationEngine(std::vector<Gfd> rules)
    : rules_(std::move(rules)) {
  // Group rule indices by pivot-fixed canonical code: detection is
  // pivot-centric (violations are pinned to the pivot's image), so only
  // patterns agreeing on the pivot may share a plan.
  std::unordered_map<std::vector<uint32_t>, std::vector<uint32_t>, VecHash>
      by_code;
  for (uint32_t i = 0; i < rules_.size(); ++i) {
    by_code[CanonicalCode(rules_[i].pattern, /*fix_pivot=*/true)].push_back(
        i);
  }
  // Deterministic group order regardless of hash-map iteration: by first
  // member index.
  std::vector<std::vector<uint32_t>> member_lists;
  member_lists.reserve(by_code.size());
  for (auto& [code, members] : by_code) {
    member_lists.push_back(std::move(members));
  }
  std::sort(member_lists.begin(), member_lists.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });

  for (auto& members : member_lists) {
    const Pattern& rep = rules_[members[0]].pattern;
    Group group(rep);
    for (uint32_t idx : members) {
      const Gfd& phi = rules_[idx];
      std::vector<VarId> f = ExactIsomorphism(phi.pattern, rep);
      if (f.empty() && idx != members[0]) {
        // Defensive: equal canonical codes guarantee an exact isomorphism
        // exists, but if the search ever fails, fall back to a private
        // plan rather than produce wrong answers.
        Group own(phi.pattern);
        Member m{idx, phi.lhs, phi.rhs, {}};
        m.to_rep.resize(phi.pattern.NumNodes());
        for (VarId u = 0; u < phi.pattern.NumNodes(); ++u) m.to_rep[u] = u;
        own.members.push_back(std::move(m));
        groups_.push_back(std::move(own));
        continue;
      }
      if (f.empty()) {  // representative: identity map
        f.resize(phi.pattern.NumNodes());
        for (VarId u = 0; u < phi.pattern.NumNodes(); ++u) f[u] = u;
      }
      Member m{idx, {}, MapLiteral(phi.rhs, f), f};
      m.lhs.reserve(phi.lhs.size());
      for (const Literal& l : phi.lhs) m.lhs.push_back(MapLiteral(l, f));
      group.members.push_back(std::move(m));
    }
    groups_.push_back(std::move(group));
  }

  // Static group footprints for AnchoredDiff's skip gate: the concrete
  // labels a match of the group must bind, and the attr keys its
  // members' literals read. Built over every group -- including the
  // defensive private plans above -- once per engine lifetime; a
  // rule-set change means a new engine, so these never go stale.
  for (Group& group : groups_) {
    const Pattern& rep = group.plan.pattern();
    for (VarId u = 0; u < rep.NumNodes(); ++u) {
      const LabelId l = rep.NodeLabel(u);
      if (l == kWildcardLabel) {
        group.has_wildcard_var = true;
      } else {
        group.var_labels.push_back(l);
      }
    }
    std::sort(group.var_labels.begin(), group.var_labels.end());
    group.var_labels.erase(
        std::unique(group.var_labels.begin(), group.var_labels.end()),
        group.var_labels.end());
    auto add_keys = [&group](const Literal& l) {
      if (l.kind == LiteralKind::kFalse) return;
      group.attr_keys.push_back(l.a);
      if (l.kind == LiteralKind::kVarVar) group.attr_keys.push_back(l.b);
    };
    for (const Member& m : group.members) {
      for (const Literal& l : m.lhs) add_keys(l);
      add_keys(m.rhs);
    }
    std::sort(group.attr_keys.begin(), group.attr_keys.end());
    group.attr_keys.erase(
        std::unique(group.attr_keys.begin(), group.attr_keys.end()),
        group.attr_keys.end());
  }
}

size_t ViolationEngine::NumAnchorPlans() const {
  size_t n = 0;
  for (const Group& group : groups_) n += group.plan.pattern().NumNodes();
  return n;
}

template <typename GraphT>
bool ViolationEngine::EvalPivot(const GraphT& g, const Group& group,
                                NodeId v, RunState& st,
                                std::vector<Violation>& out) const {
  if (st.stop.load(std::memory_order_relaxed)) return false;
  // Members whose rule still wants violations at this pivot.
  std::vector<const Member*> active;
  active.reserve(group.members.size());
  for (const Member& m : group.members) {
    if (!st.RuleCapped(m.gfd_index)) active.push_back(&m);
  }
  if (active.empty()) return true;
  st.pivots.fetch_add(1, std::memory_order_relaxed);

  group.plan.ForEachMatchAtPivot(
      g, v,
      [&](const Match& match) {
        st.matches.fetch_add(1, std::memory_order_relaxed);
        for (size_t i = 0; i < active.size();) {
          const Member& m = *active[i];
          st.literal_evals.fetch_add(1, std::memory_order_relaxed);
          bool violates = MatchSatisfiesAll(g, match, m.lhs) &&
                          !MatchSatisfies(g, match, m.rhs);
          if (violates) {
            // Claim a per-rule slot first, then a global one; fetch_add
            // makes both caps exact under concurrency.
            size_t cap = st.opts.max_violations_per_gfd;
            size_t prev = st.per_rule[m.gfd_index].fetch_add(
                1, std::memory_order_relaxed);
            if (cap != 0 && prev >= cap) {
              st.truncated.store(true, std::memory_order_relaxed);
              active.erase(active.begin() + i);
              continue;
            }
            size_t budget = st.opts.max_total_violations;
            if (budget != 0 &&
                st.total.fetch_add(1, std::memory_order_relaxed) >= budget) {
              st.truncated.store(true, std::memory_order_relaxed);
              st.stop.store(true, std::memory_order_relaxed);
              return false;
            }
            if (budget == 0) {
              st.total.fetch_add(1, std::memory_order_relaxed);
            }
            const Gfd& rule = rules_[m.gfd_index];
            Violation viol;
            viol.gfd_index = m.gfd_index;
            viol.pivot = v;
            viol.failed_rhs = rule.rhs;
            viol.match.resize(rule.pattern.NumNodes());
            for (VarId u = 0; u < rule.pattern.NumNodes(); ++u) {
              viol.match[u] = match[m.to_rep[u]];
            }
            out.push_back(std::move(viol));
            if (cap != 0 && st.RuleCapped(m.gfd_index)) {
              st.truncated.store(true, std::memory_order_relaxed);
              active.erase(active.begin() + i);
              continue;
            }
          }
          ++i;
        }
        return !active.empty();
      },
      st.opts.match);
  return !st.stop.load(std::memory_order_relaxed);
}

template <typename GraphT>
DetectionResult ViolationEngine::DetectImpl(const GraphT& g,
                                            const DetectOptions& opts) const {
  obs::ScopedTimer run_timer(&DetectFullLatency());
  RunState st(opts, rules_.size());
  DetectionResult result;
  result.stats.num_rules = rules_.size();
  result.stats.num_groups = groups_.size();

  // Per-group match attribution rides the existing per-group barrier:
  // one load before / after each group, never per match.
  size_t workers = std::max<size_t>(1, opts.workers);
  if (workers == 1) {
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const Group& group = groups_[gi];
      const uint64_t group_entry = st.matches.load(std::memory_order_relaxed);
      for (NodeId v : group.plan.PivotCandidates(g)) {
        if (!EvalPivot(g, group, v, st, result.violations)) break;
      }
      DetectGroupMatches(gi).Inc(st.matches.load(std::memory_order_relaxed) -
                                 group_entry);
      if (st.stop.load(std::memory_order_relaxed)) break;
    }
  } else {
    ThreadPool pool(workers);
    std::vector<std::vector<Violation>> buffers(workers);
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      const Group& group = groups_[gi];
      const uint64_t group_entry = st.matches.load(std::memory_order_relaxed);
      // Contiguous pivot ranges, one per worker; worker-local buffers
      // avoid any locking on the hot path.
      std::vector<NodeId> pivots = group.plan.PivotCandidates(g);
      size_t chunk = (pivots.size() + workers - 1) / workers;
      for (size_t w = 0; w < workers && w * chunk < pivots.size(); ++w) {
        size_t lo = w * chunk;
        size_t hi = std::min(pivots.size(), lo + chunk);
        pool.Submit([&, lo, hi, w] {
          for (size_t i = lo; i < hi; ++i) {
            if (!EvalPivot(g, group, pivots[i], st, buffers[w])) break;
          }
        });
      }
      pool.Wait();
      DetectGroupMatches(gi).Inc(st.matches.load(std::memory_order_relaxed) -
                                 group_entry);
      if (st.stop.load(std::memory_order_relaxed)) break;
    }
    for (auto& buf : buffers) {
      result.violations.insert(result.violations.end(),
                               std::make_move_iterator(buf.begin()),
                               std::make_move_iterator(buf.end()));
    }
  }

  std::sort(result.violations.begin(), result.violations.end());
  result.stats.pivots_scanned = st.pivots.load();
  result.stats.matches_seen = st.matches.load();
  result.stats.literal_evals = st.literal_evals.load();
  result.stats.truncated = st.truncated.load();
  DetectMatchesEnumerated().Inc(result.stats.matches_seen);
  DetectLiteralEvals().Inc(result.stats.literal_evals);
  return result;
}

DetectionResult ViolationEngine::Detect(const PropertyGraph& g,
                                        const DetectOptions& opts) const {
  return DetectImpl(g, opts);
}

DetectionResult ViolationEngine::Detect(const GraphView& g,
                                        const DetectOptions& opts) const {
  return DetectImpl(g, opts);
}

DetectionResult ViolationEngine::DetectSharded(const PropertyGraph& g,
                                               const Fragmentation& frag,
                                               const DetectOptions& opts,
                                               ClusterStats* cstats) const {
  RunState st(opts, rules_.size());
  DetectionResult result;
  result.stats.num_rules = rules_.size();
  result.stats.num_groups = groups_.size();

  size_t shards = std::max<size_t>(1, frag.partition.num_fragments);
  Cluster cluster(shards);
  // Candidate lists are computed once (a full-graph scan each) and read
  // by all fragments, instead of shards x groups recomputations.
  std::vector<std::vector<NodeId>> candidates;
  candidates.reserve(groups_.size());
  for (const Group& group : groups_) {
    candidates.push_back(group.plan.PivotCandidates(g));
  }
  std::vector<std::vector<Violation>> buffers(shards);
  cluster.RunStep([&](size_t w) {
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      for (NodeId v : candidates[gi]) {
        // Pivot-aligned ownership: every pivot is evaluated by exactly
        // one fragment, so the union over fragments is the full answer.
        if (frag.partition.node_owner[v] != w) continue;
        if (!EvalPivot(g, groups_[gi], v, st, buffers[w])) return;
      }
    }
  });
  for (size_t w = 0; w < shards; ++w) {
    if (buffers[w].empty()) continue;
    // Each fragment ships its violation list to the master; a violation
    // record is its fixed header plus one NodeId per pattern variable.
    size_t bytes = 0;
    for (const Violation& viol : buffers[w]) {
      bytes += sizeof(Violation) + viol.match.size() * sizeof(NodeId);
    }
    cluster.CountShipment(buffers[w].size(),
                          bytes / std::max<size_t>(1, buffers[w].size()));
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(buffers[w].begin()),
                             std::make_move_iterator(buffers[w].end()));
  }
  if (cstats) {
    cstats->messages = cluster.messages();
    cstats->bytes_shipped = cluster.bytes();
    cstats->replication = frag.partition.replication;
  }

  std::sort(result.violations.begin(), result.violations.end());
  result.stats.pivots_scanned = st.pivots.load();
  result.stats.matches_seen = st.matches.load();
  result.stats.literal_evals = st.literal_evals.load();
  result.stats.truncated = st.truncated.load();
  return result;
}

template <typename GraphT>
std::vector<Violation> ViolationEngine::RunAnchored(
    const GraphT& g, std::span<const size_t> scan,
    std::span<const NodeId> affected, const std::vector<bool>& is_affected,
    size_t workers, RunState& st) const {
  // One side of the diff. For every group, every variable u, and every
  // affected node a, enumerate the matches with h(u) = a. A match binding
  // several affected nodes is attributed to its minimum such variable, so
  // it is evaluated exactly once regardless of execution order -- which
  // also makes the output independent of the worker count.
  auto eval_anchor = [&](const Group& group, VarId u, NodeId a,
                         std::vector<Violation>& out) {
    st.pivots.fetch_add(1, std::memory_order_relaxed);
    const Pattern& rep = group.plan.pattern();
    group.AnchorPlans()[u].ForEachMatchAtPivot(
        g, a,
        [&](const Match& match) {
          for (VarId w = 0; w < u; ++w) {
            if (is_affected[match[w]]) return true;  // attributed to w
          }
          st.matches.fetch_add(1, std::memory_order_relaxed);
          NodeId pivot_node = match[rep.pivot()];
          for (const Member& m : group.members) {
            st.literal_evals.fetch_add(1, std::memory_order_relaxed);
            if (MatchSatisfiesAll(g, match, m.lhs) &&
                !MatchSatisfies(g, match, m.rhs)) {
              const Gfd& rule = rules_[m.gfd_index];
              Violation viol;
              viol.gfd_index = m.gfd_index;
              viol.pivot = pivot_node;
              viol.failed_rhs = rule.rhs;
              viol.match.resize(rule.pattern.NumNodes());
              for (VarId x = 0; x < rule.pattern.NumNodes(); ++x) {
                viol.match[x] = match[m.to_rep[x]];
              }
              out.push_back(std::move(viol));
            }
          }
          return true;
        },
        st.opts.match);
  };

  std::vector<Violation> out;
  if (workers <= 1) {
    for (size_t gi : scan) {
      const Group& group = groups_[gi];
      for (VarId u = 0; u < group.plan.pattern().NumNodes(); ++u) {
        for (NodeId a : affected) eval_anchor(group, u, a, out);
      }
    }
  } else {
    ThreadPool pool(workers);
    std::vector<std::vector<Violation>> buffers(workers);
    size_t chunk = (affected.size() + workers - 1) / workers;
    for (size_t w = 0; w < workers && w * chunk < affected.size(); ++w) {
      size_t lo = w * chunk;
      size_t hi = std::min(affected.size(), lo + chunk);
      pool.Submit([&, lo, hi, w] {
        for (size_t gi : scan) {
          const Group& group = groups_[gi];
          for (VarId u = 0; u < group.plan.pattern().NumNodes(); ++u) {
            for (size_t i = lo; i < hi; ++i) {
              eval_anchor(group, u, affected[i], buffers[w]);
            }
          }
        }
      });
    }
    pool.Wait();
    for (auto& buf : buffers) {
      out.insert(out.end(), std::make_move_iterator(buf.begin()),
                 std::make_move_iterator(buf.end()));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

IncrementalDiff ViolationEngine::DetectIncremental(
    const GraphView& view, const IncrementalOptions& opts) const {
  return AnchoredDiff(view, view.AffectedNodes(), view.AffectedNodes(), opts);
}

IncrementalDiff ViolationEngine::DetectIncrementalOwned(
    const GraphView& view, std::span<const uint32_t> node_owner,
    uint32_t fragment, const IncrementalOptions& opts) const {
  std::vector<NodeId> owned;
  for (NodeId v : view.AffectedNodes()) {
    if (node_owner[v] == fragment) owned.push_back(v);
  }
  return AnchoredDiff(view, owned, view.AffectedNodes(), opts);
}

IncrementalDiff ViolationEngine::DetectIncrementalOwned(
    const GraphView& view, std::span<const NodeId> seeds,
    std::span<const NodeId> affected, const IncrementalOptions& opts) const {
  return AnchoredDiff(view, seeds, affected, opts);
}

uint32_t ViolationEngine::MaxPatternRadius() const {
  uint32_t radius = 0;
  for (const Group& group : groups_) {
    const Pattern& p = group.plan.pattern();
    const size_t n = p.NumNodes();
    // Eccentricity of every variable by BFS over the undirected
    // variable graph; patterns are tiny (k nodes), so n BFS runs are
    // cheap and run once per engine lifetime.
    for (VarId s = 0; s < n; ++s) {
      std::vector<uint32_t> dist(n, UINT32_MAX);
      std::vector<VarId> queue{s};
      dist[s] = 0;
      for (size_t head = 0; head < queue.size(); ++head) {
        VarId u = queue[head];
        for (VarId w : p.Neighbors(u)) {
          if (dist[w] != UINT32_MAX) continue;
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
      }
      for (VarId u = 0; u < n; ++u) {
        if (dist[u] != UINT32_MAX) radius = std::max(radius, dist[u]);
      }
    }
  }
  return radius;
}

IncrementalDiff ViolationEngine::AnchoredDiff(
    const GraphView& view, std::span<const NodeId> seeds,
    std::span<const NodeId> affected, const IncrementalOptions& opts) const {
  obs::ScopedTimer run_timer(&DetectIncrementalLatency());
  const PropertyGraph& base = view.base();
  IncrementalDiff diff;
  diff.stats.affected_nodes = seeds.size();
  if (seeds.empty() || rules_.empty()) return diff;

  // Footprint gate: a group can only gain or lose a violation if the
  // delta (a) rewired adjacency at a node whose label one of its
  // variables can bind -- every created/destroyed match contains both
  // endpoints of the changed edge -- or (b) rewrote an attr key its
  // literals read at such a node. Classify every node THIS view's
  // overlay touched (the view's own affected set, not the caller's
  // `affected`: under partitioned storage the local view carries
  // halo-maintenance ops outside the global set, and local soundness --
  // both RunAnchored sides below see identical lists for a skipped
  // group -- is exactly about what this view changed). Node labels are
  // delta-invariant and always base ids; rule labels / attr keys beyond
  // the base vocabulary bounds-check or sorted-merge to "no hit", which
  // is how vocabulary growth invalidates nothing.
  std::vector<bool> edge_label(base.labels().size(), false);
  std::vector<bool> attr_label(base.labels().size(), false);
  std::vector<AttrId> touched_keys;
  for (NodeId v : view.AffectedNodes()) {
    (view.AdjacencyChanged(v) ? edge_label : attr_label)[base.NodeLabel(v)] =
        true;
    for (const Attribute& a : view.OverlayAttrs(v)) {
      touched_keys.push_back(a.key);
    }
  }
  std::sort(touched_keys.begin(), touched_keys.end());
  touched_keys.erase(std::unique(touched_keys.begin(), touched_keys.end()),
                     touched_keys.end());
  auto keys_touched = [&](std::span<const AttrId> keys) {
    size_t i = 0;
    size_t j = 0;
    while (i < keys.size() && j < touched_keys.size()) {
      if (keys[i] == touched_keys[j]) return true;
      if (keys[i] < touched_keys[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  };
  std::vector<size_t> scan;
  scan.reserve(groups_.size());
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const Group& group = groups_[gi];
    bool hit = group.has_wildcard_var;
    for (size_t li = 0; !hit && li < group.var_labels.size(); ++li) {
      const LabelId l = group.var_labels[li];
      if (l >= edge_label.size()) break;  // sorted: rest out of range too
      hit = edge_label[l] || (attr_label[l] && keys_touched(group.attr_keys));
    }
    if (hit) {
      scan.push_back(gi);
      diff.stats.anchor_plans += group.plan.pattern().NumNodes();
    }
  }
  diff.stats.groups_scanned = scan.size();
  diff.stats.groups_skipped = groups_.size() - scan.size();
  DetectGroupsScanned().Inc(diff.stats.groups_scanned);
  DetectGroupsSkipped().Inc(diff.stats.groups_skipped);

  // Attribution sees every affected node, not just the seeds: a match is
  // evaluated at its minimum affected variable or nowhere in this call,
  // never re-attributed to a seed -- that is what makes the per-fragment
  // outputs of DetectIncrementalOwned disjoint.
  std::vector<bool> is_affected(base.NumNodes(), false);
  for (NodeId v : affected) is_affected[v] = true;

  DetectOptions uncapped;
  uncapped.match = opts.match;
  RunState st(uncapped, rules_.size());
  size_t workers = std::max<size_t>(1, opts.workers);
  // The old side runs against the base graph (deleted edges are base
  // edges, so every destroyed match is enumerable there), the new side
  // against the view; both enumerate exactly the delta-touching matches
  // of the scanned groups, and a skipped group's (identical, hence
  // cancelling) matches belong to no other group's rules.
  std::vector<Violation> before =
      RunAnchored(base, scan, seeds, is_affected, workers, st);
  std::vector<Violation> after =
      RunAnchored(view, scan, seeds, is_affected, workers, st);
  diff.stats.violations_before = before.size();
  diff.stats.violations_after = after.size();
  diff.stats.anchors_scanned = st.pivots.load();
  diff.stats.matches_seen = st.matches.load();
  diff.stats.literal_evals = st.literal_evals.load();

  // A violation's status can only change if its match touches the delta,
  // so these set differences equal the diff of two full runs: untouched
  // matches are byte-identical on both sides and cancel.
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(diff.added));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(diff.removed));
  DetectMatchesEnumerated().Inc(diff.stats.matches_seen);
  DetectLiteralEvals().Inc(diff.stats.literal_evals);
  DetectDiffAdded().Inc(diff.added.size());
  DetectDiffRemoved().Inc(diff.removed.size());
  return diff;
}

DeltaVerdict ClassifyDelta(const ViolationEngine& engine,
                           const GraphView& view, const IncrementalDiff& diff,
                           size_t workers) {
  if (!diff.added.empty()) return DeltaVerdict::kAddedViolations;
  DetectOptions probe;
  probe.max_total_violations = 1;  // existence probe: stop at the first
  probe.workers = workers;
  DetectionResult any = engine.Detect(view, probe);
  return any.violations.empty() ? DeltaVerdict::kClean
                                : DeltaVerdict::kPreexistingOnly;
}

DeltaVerdict ClassifyDelta(const IncrementalDiff& diff, uint64_t post_count) {
  if (!diff.added.empty()) return DeltaVerdict::kAddedViolations;
  return post_count == 0 ? DeltaVerdict::kClean
                         : DeltaVerdict::kPreexistingOnly;
}

IncrementalDiff ComposeStepDiff(const IncrementalDiff& before,
                                const IncrementalDiff& after) {
  auto minus = [](const std::vector<Violation>& a,
                  const std::vector<Violation>& b) {
    std::vector<Violation> out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
    return out;
  };
  auto unite = [](std::vector<Violation> a, std::vector<Violation> b) {
    std::vector<Violation> out;
    out.reserve(a.size() + b.size());
    std::merge(std::make_move_iterator(a.begin()),
               std::make_move_iterator(a.end()),
               std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()), std::back_inserter(out));
    return out;
  };

  IncrementalDiff diff;
  diff.added = unite(minus(after.added, before.added),
                     minus(before.removed, after.removed));
  diff.removed = unite(minus(before.added, after.added),
                       minus(after.removed, before.removed));
  diff.stats = after.stats;
  diff.stats.anchors_scanned += before.stats.anchors_scanned;
  diff.stats.matches_seen += before.stats.matches_seen;
  diff.stats.literal_evals += before.stats.literal_evals;
  diff.stats.anchor_plans += before.stats.anchor_plans;
  diff.stats.groups_scanned += before.stats.groups_scanned;
  diff.stats.groups_skipped += before.stats.groups_skipped;
  return diff;
}

IncrementalDiff FullStepDiff(const DetectionResult& before,
                             const DetectionResult& after) {
  IncrementalDiff diff;
  std::set_difference(after.violations.begin(), after.violations.end(),
                      before.violations.begin(), before.violations.end(),
                      std::back_inserter(diff.added));
  std::set_difference(before.violations.begin(), before.violations.end(),
                      after.violations.begin(), after.violations.end(),
                      std::back_inserter(diff.removed));
  diff.stats.anchors_scanned =
      before.stats.pivots_scanned + after.stats.pivots_scanned;
  diff.stats.matches_seen =
      before.stats.matches_seen + after.stats.matches_seen;
  diff.stats.literal_evals =
      before.stats.literal_evals + after.stats.literal_evals;
  diff.stats.violations_before = before.violations.size();
  diff.stats.violations_after = after.violations.size();
  diff.stats.groups_scanned =
      before.stats.num_groups + after.stats.num_groups;
  diff.used_full_path = true;
  diff.full_post_count = after.violations.size();
  DetectDiffAdded().Inc(diff.added.size());
  DetectDiffRemoved().Inc(diff.removed.size());
  return diff;
}

DetectionResult DetectNaive(const PropertyGraph& g, std::span<const Gfd> rules,
                            const DetectOptions& opts) {
  DetectionResult result;
  result.stats.num_rules = rules.size();
  result.stats.num_groups = rules.size();  // one private plan per rule
  size_t total = 0;
  for (uint32_t i = 0; i < rules.size(); ++i) {
    const Gfd& phi = rules[i];
    CompiledPattern plan(phi.pattern);
    size_t emitted = 0;
    bool stop = false;
    for (NodeId v : plan.PivotCandidates(g)) {
      ++result.stats.pivots_scanned;
      plan.ForEachMatchAtPivot(
          g, v,
          [&](const Match& m) {
            ++result.stats.matches_seen;
            ++result.stats.literal_evals;
            if (MatchSatisfiesAll(g, m, phi.lhs) &&
                !MatchSatisfies(g, m, phi.rhs)) {
              result.violations.push_back({i, v, m, phi.rhs});
              ++emitted;
              ++total;
              if (opts.max_violations_per_gfd != 0 &&
                  emitted >= opts.max_violations_per_gfd) {
                result.stats.truncated = true;
                return false;
              }
              if (opts.max_total_violations != 0 &&
                  total >= opts.max_total_violations) {
                result.stats.truncated = true;
                stop = true;
                return false;
              }
            }
            return true;
          },
          opts.match);
      if (stop) break;
      if (opts.max_violations_per_gfd != 0 &&
          emitted >= opts.max_violations_per_gfd) {
        break;
      }
    }
    if (stop) break;
  }
  std::sort(result.violations.begin(), result.violations.end());
  return result;
}

}  // namespace gfd
