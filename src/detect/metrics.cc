#include "detect/metrics.h"

#include <string>

#include "detect/planner.h"

namespace gfd {

namespace {
obs::MetricsRegistry& Reg() { return obs::MetricsRegistry::Default(); }
}  // namespace

obs::Histogram& DetectFullLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_detect_full_seconds", "Full-run violation detect latency.",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Histogram& DetectIncrementalLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_detect_incremental_seconds",
      "Incremental (anchored-diff) detect latency, one side per run.",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Counter& DetectMatchesEnumerated() {
  static obs::Counter& c =
      Reg().GetCounter("gfd_detect_matches_enumerated_total",
                       "Pattern matches enumerated across all detect runs.");
  return c;
}

obs::Counter& DetectGroupMatches(size_t group) {
  // Group cardinality is small (one per pattern topology); the registry
  // lookup is mutex-guarded but runs once per group per run, not per
  // match.
  return Reg().GetCounter(
      "gfd_detect_group_matches_total",
      "Pattern matches enumerated per pivot-isomorphism group.",
      {{"group", std::to_string(group)}});
}

obs::Counter& DetectLiteralEvals() {
  static obs::Counter& c =
      Reg().GetCounter("gfd_detect_literal_evals_total",
                       "Rule literal evaluations across all detect runs.");
  return c;
}

obs::Counter& DetectDiffAdded() {
  static obs::Counter& c =
      Reg().GetCounter("gfd_detect_diff_added_total",
                       "Violations added by incremental step diffs.");
  return c;
}

obs::Counter& DetectDiffRemoved() {
  static obs::Counter& c =
      Reg().GetCounter("gfd_detect_diff_removed_total",
                       "Violations removed by incremental step diffs.");
  return c;
}

obs::Counter& PlannerDecisions(DetectPath path) {
  // Two children; same mutex-guarded lookup trade-off as group matches
  // (once per batch, not per match).
  return Reg().GetCounter(
      "gfd_detect_planner_decisions_total",
      "Per-batch detection paths chosen by the DetectPlanner.",
      {{"path", path == DetectPath::kFull ? "full" : "incremental"}});
}

obs::Counter& DetectGroupsScanned() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_detect_groups_scanned_total",
      "Pattern groups scanned by anchored-diff runs (footprint gate).");
  return c;
}

obs::Counter& DetectGroupsSkipped() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_detect_groups_skipped_total",
      "Pattern groups skipped by anchored-diff runs whose label/attr "
      "footprint was disjoint from the batch's affected set.");
  return c;
}

void TouchDetectMetrics() {
  DetectFullLatency();
  DetectIncrementalLatency();
  DetectMatchesEnumerated();
  DetectLiteralEvals();
  DetectDiffAdded();
  DetectDiffRemoved();
  PlannerDecisions(DetectPath::kIncremental);
  PlannerDecisions(DetectPath::kFull);
  DetectGroupsScanned();
  DetectGroupsSkipped();
}

}  // namespace gfd
