// Structured violation records -- the unit of output of the detection
// engine. Where validation.h answers "does G satisfy phi?", a Violation
// pins down one concrete inconsistency: which rule, at which pivot
// entity, under which full binding, and which consequence failed. The
// paper's headline application (Section 1: catching inconsistencies in
// real-life graphs) consumes exactly these records.
#ifndef GFD_DETECT_VIOLATION_H_
#define GFD_DETECT_VIOLATION_H_

#include <cstdint>
#include <span>
#include <string>

#include "gfd/gfd.h"
#include "graph/graph_view.h"
#include "graph/property_graph.h"
#include "match/matcher.h"

namespace gfd {

/// One violating match of one GFD. `match` is indexed by the rule's own
/// VarIds (the engine translates out of its internal shared-plan variable
/// space before emitting), so match[rule.rhs.x] etc. is always valid.
struct Violation {
  uint32_t gfd_index = 0;  ///< index into the engine's rule set
  NodeId pivot = kNoNode;  ///< h(z): the entity the violation is pinned to
  Match match;             ///< full binding, rule's variable order
  Literal failed_rhs;      ///< the consequence that did not hold

  friend bool operator==(const Violation&, const Violation&) = default;

  /// Deterministic output order: by rule, then pivot, then binding.
  friend auto operator<=>(const Violation& a, const Violation& b) {
    if (auto c = a.gfd_index <=> b.gfd_index; c != 0) return c;
    if (auto c = a.pivot <=> b.pivot; c != 0) return c;
    return a.match <=> b.match;
  }
};

/// One-line rendering: rule text, pivot entity, bindings, and the actual
/// attribute values that contradict the consequence.
std::string DescribeViolation(const PropertyGraph& g,
                              std::span<const Gfd> rules, const Violation& v);

/// View overload: evidence values resolve through the delta overlay (a
/// violation added by an attribute update names the post-update value).
std::string DescribeViolation(const GraphView& g, std::span<const Gfd> rules,
                              const Violation& v);

}  // namespace gfd

#endif  // GFD_DETECT_VIOLATION_H_
