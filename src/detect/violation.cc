#include "detect/violation.h"

namespace gfd {

namespace {

// "JohnWinter" when named, "#17" otherwise.
std::string NodeRef(const PropertyGraph& g, NodeId v) {
  const std::string& name = g.NodeName(v);
  return name.empty() ? "#" + std::to_string(v) : name;
}

// "x0.type is 'high_jumper'" / "x0.type is missing".
std::string ActualValue(const PropertyGraph& g, const Match& m, VarId x,
                        AttrId a) {
  auto v = g.GetAttr(m[x], a);
  std::string term = "x" + std::to_string(x) + "." + g.AttrName(a);
  if (!v) return term + " is missing";
  return term + " is '" + g.ValueName(*v) + "'";
}

}  // namespace

std::string DescribeViolation(const PropertyGraph& g,
                              std::span<const Gfd> rules,
                              const Violation& v) {
  const Gfd& rule = rules[v.gfd_index];
  std::string s = "rule#" + std::to_string(v.gfd_index) + " " +
                  rule.ToString(g) + " at pivot " + NodeRef(g, v.pivot) +
                  ":";
  for (VarId x = 0; x < v.match.size(); ++x) {
    s += " x" + std::to_string(x) + "=" + NodeRef(g, v.match[x]);
  }
  switch (v.failed_rhs.kind) {
    case LiteralKind::kFalse:
      s += " | illegal structure (consequence is false)";
      break;
    case LiteralKind::kVarConst:
      s += " | expected " + v.failed_rhs.ToString(g) + ", yet " +
           ActualValue(g, v.match, v.failed_rhs.x, v.failed_rhs.a);
      break;
    case LiteralKind::kVarVar:
      s += " | expected " + v.failed_rhs.ToString(g) + ", yet " +
           ActualValue(g, v.match, v.failed_rhs.x, v.failed_rhs.a) +
           " while " +
           ActualValue(g, v.match, v.failed_rhs.y, v.failed_rhs.b);
      break;
  }
  return s;
}

}  // namespace gfd
