#include "detect/violation.h"

namespace gfd {

namespace {

// Rule text renders against the base vocabulary (rules are loaded against
// it); only the *evidence* -- node names and actual attribute values --
// resolves through the possibly-overlaid graph.
const PropertyGraph& BaseOf(const PropertyGraph& g) { return g; }
const PropertyGraph& BaseOf(const GraphView& g) { return g.base(); }

// "JohnWinter" when named, "#17" otherwise.
template <typename GraphT>
std::string NodeRef(const GraphT& g, NodeId v) {
  const std::string& name = g.NodeName(v);
  return name.empty() ? "#" + std::to_string(v) : name;
}

// "x0.type is 'high_jumper'" / "x0.type is missing".
template <typename GraphT>
std::string ActualValue(const GraphT& g, const Match& m, VarId x, AttrId a) {
  auto v = g.GetAttr(m[x], a);
  std::string term = "x" + std::to_string(x) + "." + g.AttrName(a);
  if (!v) return term + " is missing";
  return term + " is '" + g.ValueName(*v) + "'";
}

template <typename GraphT>
std::string Describe(const GraphT& g, std::span<const Gfd> rules,
                     const Violation& v) {
  const Gfd& rule = rules[v.gfd_index];
  std::string s = "rule#" + std::to_string(v.gfd_index) + " " +
                  rule.ToString(BaseOf(g)) + " at pivot " +
                  NodeRef(g, v.pivot) + ":";
  for (VarId x = 0; x < v.match.size(); ++x) {
    s += " x" + std::to_string(x) + "=" + NodeRef(g, v.match[x]);
  }
  switch (v.failed_rhs.kind) {
    case LiteralKind::kFalse:
      s += " | illegal structure (consequence is false)";
      break;
    case LiteralKind::kVarConst:
      s += " | expected " + v.failed_rhs.ToString(BaseOf(g)) + ", yet " +
           ActualValue(g, v.match, v.failed_rhs.x, v.failed_rhs.a);
      break;
    case LiteralKind::kVarVar:
      s += " | expected " + v.failed_rhs.ToString(BaseOf(g)) + ", yet " +
           ActualValue(g, v.match, v.failed_rhs.x, v.failed_rhs.a) +
           " while " +
           ActualValue(g, v.match, v.failed_rhs.y, v.failed_rhs.b);
      break;
  }
  return s;
}

}  // namespace

std::string DescribeViolation(const PropertyGraph& g,
                              std::span<const Gfd> rules,
                              const Violation& v) {
  return Describe(g, rules, v);
}

std::string DescribeViolation(const GraphView& g, std::span<const Gfd> rules,
                              const Violation& v) {
  return Describe(g, rules, v);
}

}  // namespace gfd
