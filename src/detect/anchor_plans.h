// Per-variable anchor plans with move-stable lazy initialization.
//
// Incremental detection enumerates, for every pattern group, the matches
// binding a delta-touched vertex at each variable; that takes one
// CompiledPattern per variable, rooted there instead of at the pivot.
// Detect-only workloads never need them, so they are built lazily on the
// first DetectIncremental call, guarded by std::once_flag so concurrent
// first calls on one engine stay safe.
//
// std::once_flag is neither movable nor copyable, which makes a lazily-
// initialized member hazardous inside anything that lives in a vector: a
// hand-written move constructor necessarily leaves the flag behind, and
// the moved-to object's fresh flag disagrees with its moved-in plans
// (double build, or worse, a torn build racing a reader). LazyAnchorPlans
// therefore keeps the flag and the plans together behind a unique_ptr:
// moving the owner moves the pointer, never the state, so a build that
// already happened (or is in flight on another thread) stays valid at the
// same address.
#ifndef GFD_DETECT_ANCHOR_PLANS_H_
#define GFD_DETECT_ANCHOR_PLANS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "match/matcher.h"
#include "pattern/pattern.h"

namespace gfd {

class LazyAnchorPlans {
 public:
  LazyAnchorPlans() : state_(std::make_unique<State>()) {}
  LazyAnchorPlans(LazyAnchorPlans&&) noexcept = default;
  LazyAnchorPlans& operator=(LazyAnchorPlans&&) noexcept = default;

  /// The plans for `rep`, one per variable (plan u enumerates exactly the
  /// matches binding variable u to a given node; plans[rep.pivot()]
  /// duplicates the pivot-rooted plan). Built on first call; every later
  /// call -- from any thread, and regardless of how often the owning
  /// object moved in between -- returns the same block.
  const std::vector<CompiledPattern>& Get(const Pattern& rep) const {
    std::call_once(state_->once, [&] {
      state_->plans.reserve(rep.NumNodes());
      for (VarId u = 0; u < rep.NumNodes(); ++u) {
        Pattern q = rep;
        q.set_pivot(u);
        state_->plans.emplace_back(q);
      }
      state_->built.store(true, std::memory_order_release);
    });
    return state_->plans;
  }

  /// Whether Get has completed at least once (test introspection).
  bool built() const { return state_->built.load(std::memory_order_acquire); }

 private:
  struct State {
    std::once_flag once;
    std::atomic<bool> built{false};
    std::vector<CompiledPattern> plans;
  };
  std::unique_ptr<State> state_;
};

}  // namespace gfd

#endif  // GFD_DETECT_ANCHOR_PLANS_H_
