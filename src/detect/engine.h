// Batched multi-GFD violation detection with shared match plans.
//
// Evaluating a discovered cover rule by rule repeats the expensive part --
// subgraph-isomorphism enumeration -- once per GFD, even though mined rule
// sets are dominated by literal variants over a handful of distinct
// pattern topologies (the same observation ParCover exploits via Lemma 6).
// The ViolationEngine instead:
//   1. groups its rules by pivot-preserving pattern isomorphism
//      (pattern/canonical.h canonical codes),
//   2. compiles ONE CompiledPattern per group and remaps every member's
//      literals into the representative's variable space, and
//   3. evaluates all literals of all grouped GFDs against each enumerated
//      match in a single backtracking pass per pattern group,
// so the matcher cost is paid |groups| times instead of |rules| times.
//
// Execution is parallel over pivot ranges (util/thread_pool.h) and, for
// the simulated shared-nothing path, over vertex-cut fragments
// (parallel/fragment.h) with pivot-aligned ownership: every pivot is
// evaluated by exactly one fragment, so sharded output equals sequential
// output while shipped violations are accounted through the Cluster.
#ifndef GFD_DETECT_ENGINE_H_
#define GFD_DETECT_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "detect/anchor_plans.h"
#include "detect/violation.h"
#include "gfd/gfd.h"
#include "graph/graph_view.h"
#include "graph/property_graph.h"
#include "match/matcher.h"
#include "parallel/cluster.h"
#include "parallel/fragment.h"
#include "pattern/pattern.h"

namespace gfd {

class DetectPlanner;  // detect/planner.h

/// Budgets of one detection run. Zero means "unlimited" throughout.
struct DetectOptions {
  /// Per-rule cap: stop collecting violations of a GFD once it has this
  /// many (its matches still enumerate while other rules in the group
  /// need them).
  size_t max_violations_per_gfd = 0;
  /// Global budget across all rules; the run stops once reached.
  size_t max_total_violations = 0;
  /// Worker threads over pivot ranges. 1 = sequential (fully
  /// deterministic even with caps; with caps and >1 workers, *which*
  /// violations are kept can vary run to run -- uncapped output is
  /// deterministic at any worker count, sorted per Violation ordering).
  size_t workers = 1;
  /// Backtracking budget per (group, pivot) enumeration.
  MatchOptions match;
};

struct DetectStats {
  size_t num_rules = 0;
  size_t num_groups = 0;         ///< distinct pattern topologies compiled
  uint64_t pivots_scanned = 0;   ///< (group, pivot-candidate) pairs tried
  uint64_t matches_seen = 0;     ///< matches enumerated across all groups
  uint64_t literal_evals = 0;    ///< per-match per-rule LHS/RHS evaluations
  bool truncated = false;        ///< some cap or budget cut the run short
};

struct DetectionResult {
  /// Sorted by (gfd_index, pivot, match); see Violation::operator<=>.
  std::vector<Violation> violations;
  DetectStats stats;
};

/// Budgets of one incremental run. Caps are deliberately absent: the
/// added/removed diff is only well-defined when both sides enumerate
/// completely (a capped run could report a "removed" violation that was
/// merely cut off by a budget).
struct IncrementalOptions {
  /// Worker threads over the affected pivot ranges. Output is
  /// deterministic at any worker count.
  size_t workers = 1;
  /// Backtracking budget per (group, pivot) enumeration. Leave unlimited
  /// unless incomplete diffs are acceptable.
  MatchOptions match;
  /// Optional per-batch path chooser consulted by the serving-layer
  /// AppendAndDiff entry points (serve/graph_store.h, serve/coordinator.h)
  /// -- NOT by DetectIncremental itself, which always runs the anchored
  /// path. Borrowed, not owned; must outlive the call. When null, the
  /// incremental path is unconditional (the pre-planner behavior).
  DetectPlanner* planner = nullptr;
};

struct IncrementalStats {
  size_t affected_nodes = 0;     ///< delta-touched vertices (the anchors)
  size_t anchor_plans = 0;       ///< (group, variable) plans consulted
  uint64_t anchors_scanned = 0;  ///< (plan, anchor) enumerations, both sides
  uint64_t matches_seen = 0;     ///< delta-touching matches, both sides
  uint64_t literal_evals = 0;    ///< per-match per-rule LHS/RHS evaluations
  size_t violations_before = 0;  ///< violations at touched matches, old side
  size_t violations_after = 0;   ///< violations at touched matches, new side
  size_t groups_scanned = 0;     ///< pattern groups the run enumerated
  size_t groups_skipped = 0;     ///< groups pruned by the footprint gate
};

/// The violation diff induced by one delta: exactly the records that
/// diffing two full Detect runs (old graph vs. new graph) would produce.
struct IncrementalDiff {
  std::vector<Violation> added;    ///< sorted per Violation ordering
  std::vector<Violation> removed;  ///< sorted per Violation ordering
  IncrementalStats stats;
  /// True when the serving layer produced this diff from two full Detect
  /// runs (FullStepDiff) because the planner chose DetectPath::kFull. A
  /// running violation counter must then be RE-SEEDED from
  /// `full_post_count` rather than composed (`count += added - removed`):
  /// the full run is authoritative and re-seeding stops any drift from
  /// persisting through store.meta.
  bool used_full_path = false;
  uint64_t full_post_count = 0;  ///< |after.violations|; only if full path
};

/// A loaded rule set, grouped and compiled once, reusable across any
/// number of graphs and detection runs. Immutable after construction.
class ViolationEngine {
 public:
  /// Groups `rules` by pattern isomorphism and compiles one match plan
  /// per group. Precondition: every pattern is connected (as produced by
  /// discovery and by gfd/serialize.h).
  explicit ViolationEngine(std::vector<Gfd> rules);

  size_t NumRules() const { return rules_.size(); }
  size_t NumGroups() const { return groups_.size(); }
  /// Total (group, variable) anchor plans an incremental run consults --
  /// the incremental path's work-unit count for the DetectPlanner.
  size_t NumAnchorPlans() const;
  const Gfd& rule(size_t i) const { return rules_[i]; }
  std::span<const Gfd> rules() const { return rules_; }

  /// Finds violations of every rule in `g`. Parallel over pivot ranges
  /// when opts.workers > 1.
  DetectionResult Detect(const PropertyGraph& g,
                         const DetectOptions& opts = {}) const;

  /// Full detection over a delta-overlay view (same records a Detect over
  /// view.Materialize() would produce, without materializing). Used to
  /// answer "does the updated graph have any violation at all" -- e.g.
  /// with a max_total_violations=1 budget as an existence probe.
  DetectionResult Detect(const GraphView& g,
                         const DetectOptions& opts = {}) const;

  /// Sharded run over a vertex-cut fragmentation: fragment f evaluates
  /// exactly the pivots it owns (frag.node_owner), one Cluster worker per
  /// fragment, and ships its violations to the master (accounted in
  /// `cstats`). Uncapped output is identical to Detect; when a cap or
  /// global budget bites, fragments race for the remaining slots, so
  /// *which* violations are kept can differ (same caveat as
  /// DetectOptions::workers > 1).
  DetectionResult DetectSharded(const PropertyGraph& g,
                                const Fragmentation& frag,
                                const DetectOptions& opts = {},
                                ClusterStats* cstats = nullptr) const;

  /// Incremental detection over an update stream (the serving path): given
  /// a view = base graph + delta, computes the violations the delta added
  /// and removed without re-scanning the graph. Work is localized to the
  /// matches whose embedding touches a delta-affected vertex -- the only
  /// matches whose violation status can differ between base and view: a
  /// destroyed match contains both endpoints of a deleted edge, a created
  /// match both endpoints of an inserted one, and an attribute flip sits
  /// on a matched node. Each pattern group therefore carries one plan per
  /// variable (the paper's work unit Q(F_s) |><| e(F_t), Section 6.2,
  /// anchored at the delta instead of a fragment), and enumeration seeds
  /// those plans from the affected node set on both sides; a stateless
  /// minimum-variable attribution rule ensures every delta-touching match
  /// is evaluated exactly once per side. The sorted set-difference of the
  /// two sides is provably identical to diffing two full Detect runs:
  /// matches not touching the delta evaluate identically on both sides
  /// and cancel.
  IncrementalDiff DetectIncremental(const GraphView& view,
                                    const IncrementalOptions& opts = {}) const;

  /// Fragment-scoped incremental detection -- the distributed serving
  /// path's work unit (serve/coordinator.h). Identical to
  /// DetectIncremental except that anchored enumeration is seeded only
  /// from the affected nodes `fragment` owns under `node_owner`
  /// (vertex-cut ownership as in DetectSharded), while the attribution
  /// rule still sees the full affected set: a match whose
  /// minimum-variable affected node belongs to another fragment is
  /// skipped here and evaluated exactly once there. Ownership partitions
  /// the affected nodes, so the union of these diffs over all fragments
  /// equals DetectIncremental's -- disjointly, which is what lets a
  /// coordinator merge per-fragment diffs without any cross-fragment
  /// dedup pass. Precondition: node_owner.size() >= view.NumNodes().
  IncrementalDiff DetectIncrementalOwned(
      const GraphView& view, std::span<const uint32_t> node_owner,
      uint32_t fragment, const IncrementalOptions& opts = {}) const;

  /// Explicit-seed variant for partitioned storage (serve/coordinator.h):
  /// the fragment's view contains halo-maintenance ops whose endpoints
  /// must anchor nothing (they reflect residency changes, not graph
  /// changes), so the caller passes both the anchor seeds (the globally
  /// affected nodes this fragment owns) and the full GLOBAL affected set
  /// for the attribution rule -- using the view's own AffectedNodes()
  /// would mis-attribute matches that touch a maintenance endpoint.
  /// Preconditions: seeds ⊆ affected, both sorted ascending, node ids
  /// < view.NumNodes().
  IncrementalDiff DetectIncrementalOwned(
      const GraphView& view, std::span<const NodeId> seeds,
      std::span<const NodeId> affected,
      const IncrementalOptions& opts = {}) const;

  /// Max undirected eccentricity of any variable of any rule pattern:
  /// the halo radius partitioned storage needs so that every match
  /// anchored (at ANY variable) at an owned node stays within the
  /// fragment's resident view. RadiusAtPivot is not enough -- anchored
  /// incremental plans pivot at every variable, not just the rule pivot.
  uint32_t MaxPatternRadius() const;

 private:
  /// One rule's literals remapped into its group representative's
  /// variable space, plus the inverse map to translate matches back.
  struct Member {
    uint32_t gfd_index;
    std::vector<Literal> lhs;      // over the representative's VarIds
    Literal rhs;                   // over the representative's VarIds
    std::vector<VarId> to_rep;     // member VarId -> representative VarId
  };
  struct Group {
    CompiledPattern plan;
    std::vector<Member> members;
    /// Per-variable anchor plans, built lazily on the first
    /// DetectIncremental call (Detect never needs them). The lazy state
    /// lives behind a stable pointer, so Groups move safely even after
    /// the plans were built (anchor_plans.h has the full story).
    LazyAnchorPlans anchors;
    /// The group's static footprint, for AnchoredDiff's skip gate: a
    /// delta whose affected labels / touched attr keys are disjoint from
    /// it cannot create or destroy a match of this group, so both sides
    /// enumerate identical lists and the group cancels exactly (its
    /// gfd_indices appear in no other group). Built once in the engine
    /// constructor; a rule-set change means a new engine, so no runtime
    /// invalidation is needed (vocabulary growth is handled numerically:
    /// new label/attr ids simply never intersect these sorted sets).
    std::vector<LabelId> var_labels;  ///< concrete variable labels, sorted
    std::vector<AttrId> attr_keys;    ///< literal attr keys, sorted
    bool has_wildcard_var = false;    ///< some variable matches any label

    explicit Group(const Pattern& rep) : plan(rep) {}

    const std::vector<CompiledPattern>& AnchorPlans() const {
      return anchors.Get(plan.pattern());
    }
  };

  // Shared mutable state of one run (budget counters; defined in the .cc).
  struct RunState;

  // Common body of the two Detect overloads. GraphT is PropertyGraph or
  // GraphView.
  template <typename GraphT>
  DetectionResult DetectImpl(const GraphT& g, const DetectOptions& opts) const;

  // Evaluates one (group, pivot) pair, appending violations to `out`.
  // Returns false once the global budget is exhausted (callers stop).
  // GraphT is PropertyGraph or GraphView.
  template <typename GraphT>
  bool EvalPivot(const GraphT& g, const Group& group, NodeId v, RunState& st,
                 std::vector<Violation>& out) const;

  // One side of an incremental run: enumerates every match of every
  // group in `scan` (indices into groups_) that binds an affected node
  // at some variable (each exactly once) and returns the violations
  // among them, sorted. Both sides of a diff must pass the SAME `scan`
  // -- the skip gate's cancellation argument needs it.
  template <typename GraphT>
  std::vector<Violation> RunAnchored(const GraphT& g,
                                     std::span<const size_t> scan,
                                     std::span<const NodeId> affected,
                                     const std::vector<bool>& is_affected,
                                     size_t workers, RunState& st) const;

  // Common body of DetectIncremental / DetectIncrementalOwned: `seeds`
  // restricts which affected nodes anchor the enumeration; `affected`
  // is the set the attribution rule sees (the view's own affected set
  // on the single-store path, the global one under partitioned storage).
  IncrementalDiff AnchoredDiff(const GraphView& view,
                               std::span<const NodeId> seeds,
                               std::span<const NodeId> affected,
                               const IncrementalOptions& opts) const;

  std::vector<Gfd> rules_;
  std::vector<Group> groups_;
};

/// Classification of a post-update state, for exit-code style reporting
/// on the serving path: an update that merely *removes* violations must
/// not be confused with one that left none behind.
enum class DeltaVerdict {
  kClean,            ///< the updated graph has no violations at all
  kAddedViolations,  ///< the update introduced at least one new violation
  kPreexistingOnly,  ///< nothing added, but violations predating the
                     ///< update (possibly elsewhere in the graph) persist
};

/// Classifies `view` given the diff its delta induced. Added violations
/// are read straight off `diff`; distinguishing clean from
/// pre-existing-only takes one budgeted full scan of the view
/// (max_total_violations = 1, so it stops at the first survivor --
/// worst case, a genuinely clean graph, costs a full no-hit scan; a
/// serving loop that tracks a running violation count across batches
/// avoids the scan entirely, see ROADMAP).
DeltaVerdict ClassifyDelta(const ViolationEngine& engine,
                           const GraphView& view, const IncrementalDiff& diff,
                           size_t workers = 1);

/// Counter-backed classification: `post_count` is the running violation
/// count *after* the batch (count += |added| - |removed| per batch, seeded
/// by one full Detect and persistable in store.meta -- see
/// GraphStore::SetViolationCount). No scan at all: the verdict is read
/// straight off the diff and the counter.
DeltaVerdict ClassifyDelta(const IncrementalDiff& diff, uint64_t post_count);

/// Composes two base-relative incremental diffs -- `before` without and
/// `after` with one extra batch, both diffed against the SAME base graph
/// -- into the step diff of exactly that batch. With V_k = (V(base) \ R_k)
/// u A_k on both sides,
///   added   = (A2 \ A1) u (R1 \ R2),
///   removed = (A1 \ A2) u (R2 \ R1),
/// and the two union legs are disjoint because A-sets avoid V(base) while
/// R-sets are subsets of it. The equal-base precondition is load-bearing:
/// diffs taken against different snapshots do not compose (the coordinator
/// keeps fragment compactions in lockstep for exactly this reason). Stats
/// are summed across both runs.
IncrementalDiff ComposeStepDiff(const IncrementalDiff& before,
                                const IncrementalDiff& after);

/// The full-path equivalent of one serving step: diffs two complete
/// Detect runs -- `before` on the pre-batch state, `after` on the
/// post-batch state, both UNCAPPED (a truncated side would fabricate
/// diff entries; callers assert !stats.truncated). Produces exactly the
/// records the incremental composition would (violations are value-keyed,
/// so sorted set differences agree side by side), with used_full_path
/// set and full_post_count = |after.violations| so running counters can
/// re-seed from the authoritative run.
IncrementalDiff FullStepDiff(const DetectionResult& before,
                             const DetectionResult& after);

/// The baseline the engine is benchmarked against: one full matcher run
/// per rule (the per-GFD FindViolations loop of gfd/validation.h),
/// producing the same records. Used by bench_detect and the property
/// tests that cross-check the batched engine.
DetectionResult DetectNaive(const PropertyGraph& g, std::span<const Gfd> rules,
                            const DetectOptions& opts = {});

}  // namespace gfd

#endif  // GFD_DETECT_ENGINE_H_
