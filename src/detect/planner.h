// Cost-based choice between the two per-batch detection paths of the
// serving loop: anchored incremental diffing (cheap while the delta is
// small) and a full re-detect of both sides (cheaper once the delta
// footprint rivals the graph, as BENCH_incremental.json's crossover
// records). A DetectPlanner makes that choice once per batch, BEFORE the
// append, from pre-append estimates of the batch's work -- so the chosen
// path's before-side can still run against the pre-batch state.
//
// The decision is deterministic: it is a pure function of the planner's
// state (config + calibration) and the inputs, and the inputs are a pure
// function of the serving state and the batch text (MakePlannerInputs).
// Both serving backends -- single GraphStore and the vertex-cut
// Coordinator -- build their inputs through the same function and consult
// the planner exactly once per batch at the top of AppendAndDiff, so a
// given stream replays to the same sequence of choices on either.
//
// Until both paths have been observed at least once, an uncalibrated
// planner falls back to the seeded crossover rule: choose the full path
// once the post-batch overlay exceeds `crossover_fraction` of the base
// edges. Observations (ObserveIncremental / ObserveFull, fed from the
// serving loop's own wall-clock around each batch and from startup
// seeding scans) then calibrate per-unit costs online, and the decision
// becomes a direct cost comparison.
#ifndef GFD_DETECT_PLANNER_H_
#define GFD_DETECT_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "graph/graph_view.h"

namespace gfd {

/// The delta-to-base-size fraction past which a full re-detect beats the
/// incremental path: the crossover BENCH_incremental.json records between
/// the 1% and 10% delta points, pinned at its conservative end. Shared by
/// the planner's seeded decision rule and by GraphStore's default
/// compaction threshold (serve/graph_store.h), so detection policy and
/// compaction policy cannot drift apart: an overlay large enough that
/// incremental detection stops paying is exactly an overlay that has
/// outlived its usefulness as an overlay.
inline constexpr double kIncrementalCrossoverFraction = 0.10;

/// Which detection path AppendAndDiff runs for one batch.
enum class DetectPath {
  kIncremental,  ///< anchored diff (DetectIncremental, composed per step)
  kFull,         ///< two full Detect runs, diffed (FullStepDiff)
};

struct PlannerConfig {
  enum class Mode {
    kAdaptive,          ///< cost model: seeded rule, then calibrated
    kForceIncremental,  ///< always the incremental path
    kForceFull,         ///< always a full re-detect
  };
  Mode mode = Mode::kAdaptive;
  /// Seeded crossover: while uncalibrated, choose the full path once the
  /// post-batch overlay reaches this fraction of the base edge count.
  double crossover_fraction = kIncrementalCrossoverFraction;
  /// EWMA gain of the online per-unit cost calibration, in (0, 1].
  double calibration_gain = 0.25;
};

/// Pre-append estimates of one batch's detection work. Affected-set
/// fields estimate the POST-append state (current overlay footprint plus
/// up to two endpoints per incoming op); base/group fields are exact.
struct PlannerInputs {
  size_t batch_ops = 0;          ///< ops the incoming batch contributes
  size_t overlay_ops_after = 0;  ///< overlay ops once the batch lands
  size_t affected_nodes = 0;     ///< est. delta-touched nodes, post-append
  uint64_t affected_degree = 0;  ///< est. summed degree of those nodes
  size_t base_nodes = 0;
  size_t base_edges = 0;
  size_t num_groups = 0;    ///< compiled pattern groups (full-scan units)
  size_t anchor_plans = 0;  ///< (group, variable) plans (anchored units)
};

struct PlannerStats {
  uint64_t incremental_decisions = 0;
  uint64_t full_decisions = 0;
  uint64_t incremental_observations = 0;
  uint64_t full_observations = 0;
};

/// Work-unit measures the calibrated comparison scales its per-unit
/// costs by: the incremental path seeds every anchor plan from the
/// affected set and walks its adjacency; a full run scans the graph once
/// per pattern group. Both are >= 1 so observed seconds always divide.
double IncrementalWork(const PlannerInputs& in);
double FullWork(const PlannerInputs& in);

/// Builds the planner's inputs from the PRE-append serving state and the
/// batch text: `view` is the store's current view, `overlay_ops` its
/// current overlay op count, `delta_tsv` the incoming E+/E-/A batch.
/// Deterministic in those arguments -- this is the one input path every
/// backend shares.
PlannerInputs MakePlannerInputs(const GraphView& view, size_t overlay_ops,
                                std::string_view delta_tsv,
                                size_t num_groups, size_t anchor_plans);

/// The per-batch path chooser. NOT thread-safe: serving paths consult it
/// under their existing single-writer store mutex (one decision per
/// batch, never concurrent), exactly like the stores it plans for.
class DetectPlanner {
 public:
  explicit DetectPlanner(PlannerConfig config = {});

  /// Chooses the path for one batch and counts the decision (also in the
  /// gfd_detect_planner_decisions_total metric).
  DetectPath Plan(const PlannerInputs& in);

  /// Calibration feedback: the observed wall-clock of one batch served
  /// on the respective path (or, for ObserveFull, of a startup seeding
  /// scan -- which is how the full path calibrates without ever being
  /// chosen). Non-positive durations only count the observation.
  void ObserveIncremental(const PlannerInputs& in, double seconds);
  void ObserveFull(const PlannerInputs& in, double seconds);

  /// True once both per-unit costs have a live estimate and Plan()
  /// compares costs instead of applying the seeded crossover rule.
  bool calibrated() const { return inc_unit_ > 0 && full_unit_ > 0; }

  const PlannerConfig& config() const { return config_; }
  const PlannerStats& stats() const { return stats_; }

 private:
  void ObserveUnit(double* unit, double seconds, double work);

  PlannerConfig config_;
  PlannerStats stats_;
  // EWMA seconds per work unit; 0 = no observation yet.
  double inc_unit_ = 0;
  double full_unit_ = 0;
};

}  // namespace gfd

#endif  // GFD_DETECT_PLANNER_H_
