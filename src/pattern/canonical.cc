#include "pattern/canonical.h"

#include <algorithm>
#include <array>
#include <numeric>

namespace gfd {

namespace {

// Encodes pattern `p` under the node permutation `perm` (perm[old] = new).
// Layout: [n, m, labels(new order)..., sorted (src,dst,label) triples...].
std::vector<uint32_t> EncodeUnder(const Pattern& p,
                                  const std::vector<VarId>& perm) {
  const size_t n = p.NumNodes();
  std::vector<uint32_t> code;
  code.reserve(2 + n + 3 * p.NumEdges());
  code.push_back(static_cast<uint32_t>(n));
  code.push_back(static_cast<uint32_t>(p.NumEdges()));
  std::vector<uint32_t> labels(n);
  for (VarId v = 0; v < n; ++v) labels[perm[v]] = p.NodeLabel(v);
  code.insert(code.end(), labels.begin(), labels.end());
  std::vector<std::array<uint32_t, 3>> triples;
  triples.reserve(p.NumEdges());
  for (const auto& e : p.edges()) {
    triples.push_back({perm[e.src], perm[e.dst], e.label});
  }
  std::sort(triples.begin(), triples.end());
  for (const auto& t : triples) {
    code.insert(code.end(), t.begin(), t.end());
  }
  return code;
}

}  // namespace

std::vector<uint32_t> CanonicalCode(const Pattern& p, bool fix_pivot) {
  const size_t n = p.NumNodes();
  std::vector<VarId> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<uint32_t> best;
  // order[i] lists old ids in "new position" order; perm[old] = position.
  do {
    if (fix_pivot && order[0] != p.pivot()) continue;
    std::vector<VarId> perm(n);
    for (size_t pos = 0; pos < n; ++pos) perm[order[pos]] = pos;
    auto code = EncodeUnder(p, perm);
    if (best.empty() || code < best) best = std::move(code);
  } while (std::next_permutation(order.begin(), order.end()));
  if (best.empty()) {
    // Only possible when fix_pivot filtered everything out, which cannot
    // happen (pivot is always a valid first element); keep a safe fallback.
    std::vector<VarId> identity(n);
    std::iota(identity.begin(), identity.end(), 0);
    best = EncodeUnder(p, identity);
  }
  if (fix_pivot) best.push_back(1);  // domain-separate pivot-fixed codes
  return best;
}

bool ArePatternsIsomorphic(const Pattern& p1, const Pattern& p2,
                           bool fix_pivot) {
  if (p1.NumNodes() != p2.NumNodes() || p1.NumEdges() != p2.NumEdges()) {
    return false;
  }
  return CanonicalCode(p1, fix_pivot) == CanonicalCode(p2, fix_pivot);
}

namespace {

struct EmbedState {
  const Pattern* sub;
  const Pattern* super;
  std::vector<VarId> map;        // sub var -> super var (kNoVar if unset)
  std::vector<bool> used;        // super var already taken
  const std::function<bool(const std::vector<VarId>&)>* callback;
  bool stopped = false;
};

// Checks every sub edge whose endpoints are both assigned.
bool EdgesConsistent(const EmbedState& st, VarId just_assigned) {
  for (const auto& e : st.sub->edges()) {
    if (e.src != just_assigned && e.dst != just_assigned) continue;
    VarId fs = st.map[e.src], fd = st.map[e.dst];
    if (fs == kNoVar || fd == kNoVar) continue;
    bool found = false;
    for (const auto& se : st.super->edges()) {
      if (se.src == fs && se.dst == fd &&
          PatternLabelSubsumes(e.label, se.label)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

void EmbedRec(EmbedState& st, VarId next) {
  if (st.stopped) return;
  const size_t n = st.sub->NumNodes();
  if (next == n) {
    if (!(*st.callback)(st.map)) st.stopped = true;
    return;
  }
  for (VarId cand = 0; cand < st.super->NumNodes(); ++cand) {
    if (st.used[cand]) continue;
    if (!PatternLabelSubsumes(st.sub->NodeLabel(next),
                              st.super->NodeLabel(cand))) {
      continue;
    }
    st.map[next] = cand;
    st.used[cand] = true;
    if (EdgesConsistent(st, next)) EmbedRec(st, next + 1);
    st.used[cand] = false;
    st.map[next] = kNoVar;
    if (st.stopped) return;
  }
}

}  // namespace

void ForEachEmbedding(const Pattern& sub, const Pattern& super,
                      bool require_pivot,
                      const std::function<bool(const std::vector<VarId>&)>&
                          on_embedding) {
  if (sub.NumNodes() > super.NumNodes() || sub.NumEdges() > super.NumEdges()) {
    return;
  }
  EmbedState st;
  st.sub = &sub;
  st.super = &super;
  st.map.assign(sub.NumNodes(), kNoVar);
  st.used.assign(super.NumNodes(), false);
  st.callback = &on_embedding;

  if (require_pivot) {
    // Pin the pivot first, then fill remaining vars in index order.
    VarId sp = sub.pivot(), gp = super.pivot();
    if (!PatternLabelSubsumes(sub.NodeLabel(sp), super.NodeLabel(gp))) return;
    st.map[sp] = gp;
    st.used[gp] = true;
    if (!EdgesConsistent(st, sp)) return;
    // Recurse over vars != sp: remap recursion order by temporarily
    // treating assigned pivot as done. Simplest: recursive helper that
    // skips already-assigned vars.
    std::function<void(VarId)> rec = [&](VarId next) {
      if (st.stopped) return;
      while (next < sub.NumNodes() && st.map[next] != kNoVar) ++next;
      if (next >= sub.NumNodes()) {
        if (!on_embedding(st.map)) st.stopped = true;
        return;
      }
      for (VarId cand = 0; cand < super.NumNodes(); ++cand) {
        if (st.used[cand]) continue;
        if (!PatternLabelSubsumes(sub.NodeLabel(next),
                                  super.NodeLabel(cand))) {
          continue;
        }
        st.map[next] = cand;
        st.used[cand] = true;
        if (EdgesConsistent(st, next)) rec(next + 1);
        st.used[cand] = false;
        st.map[next] = kNoVar;
        if (st.stopped) return;
      }
    };
    rec(0);
  } else {
    EmbedRec(st, 0);
  }
}

bool HasEmbedding(const Pattern& sub, const Pattern& super,
                  bool require_pivot) {
  bool found = false;
  ForEachEmbedding(sub, super, require_pivot,
                   [&found](const std::vector<VarId>&) {
                     found = true;
                     return false;  // stop
                   });
  return found;
}

bool PatternReduces(const Pattern& q1, const Pattern& q2,
                    std::vector<VarId>* mapping) {
  bool found = false;
  ForEachEmbedding(q1, q2, /*require_pivot=*/true,
                   [&](const std::vector<VarId>& map) {
                     // Strictness: q1 must drop something or generalize a
                     // label relative to q2 under this embedding.
                     bool strict = q1.NumNodes() < q2.NumNodes() ||
                                   q1.NumEdges() < q2.NumEdges();
                     if (!strict) {
                       for (VarId v = 0; v < q1.NumNodes(); ++v) {
                         if (q1.NodeLabel(v) == kWildcardLabel &&
                             q2.NodeLabel(map[v]) != kWildcardLabel) {
                           strict = true;
                           break;
                         }
                       }
                     }
                     if (!strict) {
                       // Edge labels: any wildcard in q1 covering a concrete
                       // q2 edge label counts.
                       for (const auto& e : q1.edges()) {
                         if (e.label != kWildcardLabel) continue;
                         for (const auto& se : q2.edges()) {
                           if (se.src == map[e.src] && se.dst == map[e.dst] &&
                               se.label != kWildcardLabel) {
                             strict = true;
                             break;
                           }
                         }
                         if (strict) break;
                       }
                     }
                     if (strict) {
                       found = true;
                       if (mapping) *mapping = map;
                       return false;  // stop
                     }
                     return true;  // keep looking
                   });
  return found;
}

}  // namespace gfd
