// Pattern-level isomorphism machinery:
//  - canonical codes for deduplicating spawned patterns (the paper's
//    iso(Q1) sets, Section 5.1) and for grouping GFDs by pattern in
//    ParCover (Lemma 6),
//  - embedding enumeration between patterns, used for
//      * "GFD phi' is embedded in pattern Q" (Section 3, closure / Sigma_Q),
//      * the reduction order Q1 << Q2 on patterns (Section 4.1).
//
// Patterns are k-bounded with small k, so exhaustive search over node
// permutations / assignments is exact and fast.
#ifndef GFD_PATTERN_CANONICAL_H_
#define GFD_PATTERN_CANONICAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "pattern/pattern.h"

namespace gfd {

/// A canonical, permutation-invariant encoding of a pattern. Two patterns
/// have equal codes iff they are isomorphic (respecting labels exactly,
/// wildcards included). When `fix_pivot` is true, only permutations mapping
/// the pivot to position 0 are considered, so codes additionally agree on
/// the pivot.
std::vector<uint32_t> CanonicalCode(const Pattern& p, bool fix_pivot = true);

/// True iff p1 and p2 are isomorphic (exact label equality); pivot must
/// correspond when fix_pivot is set.
bool ArePatternsIsomorphic(const Pattern& p1, const Pattern& p2,
                           bool fix_pivot = true);

/// Label subsumption between *pattern* labels: inner <= outer holds when a
/// node/edge constrained by `outer` is always acceptable to `inner`, i.e.
/// inner is the wildcard or inner == outer.
inline bool PatternLabelSubsumes(LabelId inner, LabelId outer) {
  return inner == kWildcardLabel || inner == outer;
}

/// Enumerates injective mappings f from sub's variables to super's
/// variables such that every sub edge (u,v,l) has a super edge
/// (f(u),f(v),l') with PatternLabelSubsumes(l, l'), and sub's node labels
/// subsume the images' labels. This is exactly "sub is embedded in super":
/// any match of super restricts to a match of sub.
///
/// `on_embedding` receives the mapping (indexed by sub VarId); returning
/// false stops the enumeration early.
///
/// When `require_pivot` is true, only mappings with
/// f(sub.pivot()) == super.pivot() are produced (the GFD reduction order
/// preserves pivots).
void ForEachEmbedding(const Pattern& sub, const Pattern& super,
                      bool require_pivot,
                      const std::function<bool(const std::vector<VarId>&)>&
                          on_embedding);

/// True iff at least one embedding exists.
bool HasEmbedding(const Pattern& sub, const Pattern& super,
                  bool require_pivot);

/// The pattern reduction order Q1 << Q2 (Section 4.1): Q1 is embedded in Q2
/// (pivot preserved) and is strictly less restrictive -- fewer nodes, fewer
/// edges, or at least one label upgraded to wildcard. Returns true iff
/// Q1 << Q2 via some pivot-preserving embedding, and stores one witness
/// mapping in *mapping if non-null.
bool PatternReduces(const Pattern& q1, const Pattern& q2,
                    std::vector<VarId>* mapping = nullptr);

}  // namespace gfd

#endif  // GFD_PATTERN_CANONICAL_H_
