#include "pattern/pattern.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace gfd {

namespace {
// Undirected BFS distances from `start`; kUnreached for unreachable nodes.
constexpr size_t kUnreached = static_cast<size_t>(-1);

std::vector<size_t> BfsDistances(const Pattern& p, VarId start) {
  std::vector<size_t> dist(p.NumNodes(), kUnreached);
  std::deque<VarId> queue;
  dist[start] = 0;
  queue.push_back(start);
  while (!queue.empty()) {
    VarId u = queue.front();
    queue.pop_front();
    for (const auto& e : p.edges()) {
      VarId other = kNoVar;
      if (e.src == u) other = e.dst;
      if (e.dst == u) other = e.src;
      if (other != kNoVar && dist[other] == kUnreached) {
        dist[other] = dist[u] + 1;
        queue.push_back(other);
      }
    }
  }
  return dist;
}
}  // namespace

bool Pattern::IsConnected() const {
  if (NumNodes() <= 1) return true;
  auto dist = BfsDistances(*this, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](size_t d) { return d == kUnreached; });
}

size_t Pattern::RadiusAtPivot() const {
  if (NumNodes() <= 1) return 0;
  auto dist = BfsDistances(*this, pivot_);
  size_t r = 0;
  for (size_t d : dist) {
    if (d != kUnreached) r = std::max(r, d);
  }
  return r;
}

std::vector<VarId> Pattern::Neighbors(VarId v) const {
  std::vector<VarId> out;
  for (const auto& e : edges_) {
    if (e.src == v) out.push_back(e.dst);
    if (e.dst == v) out.push_back(e.src);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Pattern::ToString(const PropertyGraph& g) const {
  std::ostringstream os;
  os << "Q[";
  for (VarId v = 0; v < NumNodes(); ++v) {
    if (v) os << ", ";
    os << 'x' << v << ':' << g.LabelName(node_labels_[v]);
  }
  os << " |";
  if (edges_.empty()) os << " (no edges)";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i) os << ',';
    os << " x" << edges_[i].src << " -" << g.LabelName(edges_[i].label)
       << "-> x" << edges_[i].dst;
  }
  os << " | pivot=x" << pivot_ << ']';
  return os.str();
}

Pattern SingleNodePattern(LabelId label) {
  Pattern p;
  p.AddNode(label);
  p.set_pivot(0);
  return p;
}

Pattern SingleEdgePattern(LabelId src_label, LabelId edge_label,
                          LabelId dst_label) {
  Pattern p;
  VarId s = p.AddNode(src_label);
  VarId d = p.AddNode(dst_label);
  p.AddEdge(s, d, edge_label);
  p.set_pivot(s);
  return p;
}

}  // namespace gfd
