// Graph patterns Q[x-bar] (Section 2.1 of the paper).
//
// A pattern is a small directed graph whose nodes are the variables x-bar
// (the bijection mu is the identity on indices: variable i <=> node i).
// Node and edge labels may be the wildcard '_' (kWildcardLabel). One
// variable is designated the *pivot* z; pattern support is counted as the
// number of distinct graph nodes the pivot can match (Section 4.2).
#ifndef GFD_PATTERN_PATTERN_H_
#define GFD_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "util/ids.h"

namespace gfd {

/// One directed pattern edge between variables.
struct PatternEdge {
  VarId src;
  VarId dst;
  LabelId label;

  friend bool operator==(const PatternEdge&, const PatternEdge&) = default;
};

/// A graph pattern Q[x-bar] with a designated pivot variable.
///
/// Patterns are tiny (|x-bar| <= k, typically k <= 6) and mutable: the
/// discovery lattice grows them edge by edge (VSpawn). They are cheap to
/// copy.
class Pattern {
 public:
  Pattern() = default;

  /// Adds a variable/node with the given (possibly wildcard) label;
  /// returns its VarId.
  VarId AddNode(LabelId label) {
    node_labels_.push_back(label);
    return static_cast<VarId>(node_labels_.size() - 1);
  }

  /// Adds a directed edge src -> dst with the given label.
  void AddEdge(VarId src, VarId dst, LabelId label) {
    edges_.push_back({src, dst, label});
  }

  size_t NumNodes() const { return node_labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  LabelId NodeLabel(VarId v) const { return node_labels_[v]; }
  void SetNodeLabel(VarId v, LabelId l) { node_labels_[v] = l; }

  const std::vector<PatternEdge>& edges() const { return edges_; }
  PatternEdge& mutable_edge(size_t i) { return edges_[i]; }

  VarId pivot() const { return pivot_; }
  void set_pivot(VarId z) { pivot_ = z; }

  /// True iff every pair of nodes is connected by an undirected path
  /// (the paper restricts discovery to connected patterns, Section 4).
  bool IsConnected() const;

  /// Radius d_Q at the pivot: the longest undirected shortest-path
  /// distance from the pivot to any node. Returns 0 for single nodes.
  /// Precondition: IsConnected().
  size_t RadiusAtPivot() const;

  /// Variables adjacent (in either direction) to `v`.
  std::vector<VarId> Neighbors(VarId v) const;

  /// Human-readable rendering, resolving label names via `g`'s interner.
  /// Example: "Q[x0:person, x1:product | x0 -create-> x1 | pivot=x0]".
  std::string ToString(const PropertyGraph& g) const;

  friend bool operator==(const Pattern&, const Pattern&) = default;

 private:
  std::vector<LabelId> node_labels_;
  std::vector<PatternEdge> edges_;
  VarId pivot_ = 0;
};

/// Builds the single-node pattern with the given label and pivot on it.
Pattern SingleNodePattern(LabelId label);

/// Builds the single-edge pattern src_label -elabel-> dst_label with the
/// pivot on the source variable.
Pattern SingleEdgePattern(LabelId src_label, LabelId edge_label,
                          LabelId dst_label);

}  // namespace gfd

#endif  // GFD_PATTERN_PATTERN_H_
