// Hash helpers for composite keys.
#ifndef GFD_UTIL_HASH_H_
#define GFD_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gfd {

/// Mixes `v` into the running hash `seed` (boost-style hash_combine with a
/// 64-bit avalanche step).
inline void HashCombine(size_t& seed, size_t v) {
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t h = std::hash<A>()(p.first);
    HashCombine(h, std::hash<B>()(p.second));
    return h;
  }
};

struct VecHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t h = v.size();
    for (const auto& x : v) HashCombine(h, std::hash<T>()(x));
    return h;
  }
};

}  // namespace gfd

#endif  // GFD_UTIL_HASH_H_
