// Hash helpers for composite keys.
#ifndef GFD_UTIL_HASH_H_
#define GFD_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace gfd {

/// Mixes `v` into the running hash `seed` (boost-style hash_combine with a
/// 64-bit avalanche step).
inline void HashCombine(size_t& seed, size_t v) {
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// FNV-1a 64-bit over a byte string. Stable across platforms and runs
/// (unlike std::hash), so it can fingerprint serialized state that lands
/// on disk -- e.g. the rule-set fingerprint stored next to the running
/// violation count in store.meta.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t h = std::hash<A>()(p.first);
    HashCombine(h, std::hash<B>()(p.second));
    return h;
  }
};

struct VecHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t h = v.size();
    for (const auto& x : v) HashCombine(h, std::hash<T>()(x));
    return h;
  }
};

}  // namespace gfd

#endif  // GFD_UTIL_HASH_H_
