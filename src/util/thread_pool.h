// A fixed-size thread pool with a blocking task queue and a ParallelFor
// helper. Used by the simulated cluster runtime (src/parallel) and by
// benches that sweep worker counts.
#ifndef GFD_UTIL_THREAD_POOL_H_
#define GFD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gfd {

/// Fixed pool of worker threads executing submitted std::function tasks.
///
/// Lifecycle: construct with n threads, Submit() any number of tasks,
/// Wait() for quiescence (all submitted tasks finished), destruct to join.
///
/// Shutdown: the destructor marks the pool shut down, drains every task
/// already accepted, and joins. A Submit that races shutdown -- legal
/// only from a worker task, whose thread the destructor is still
/// joining -- is rejected (returns false) instead of leaving a task
/// queued that no worker will ever run. Calling Submit from any other
/// thread after the destructor has returned is a use-after-free, as
/// with any object.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by some worker. Returns false (and
  /// drops the task) once shutdown has begun.
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;  // guards: tasks_, in_flight_, shutdown_
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) across `pool`, blocking until all complete.
/// Work is split into contiguous chunks, one batch per worker, to keep
/// scheduling overhead negligible for small bodies.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace gfd

#endif  // GFD_UTIL_THREAD_POOL_H_
