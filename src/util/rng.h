// Small deterministic RNG utilities (splitmix64 / xoshiro256**).
//
// All data generation in this repo is seeded so experiments are exactly
// reproducible run to run.
#ifndef GFD_UTIL_RNG_H_
#define GFD_UTIL_RNG_H_

#include <cstdint>

namespace gfd {

/// splitmix64: used to seed xoshiro and for cheap stateless hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 -- fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): rank r with prob ~ 1/(r+1)^s.
  /// Implemented by inverse-CDF over a small table-free approximation;
  /// adequate for workload skew, not for statistics.
  uint64_t Zipf(uint64_t n, double s = 1.0);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

inline uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Rejection-free approximate Zipf: repeatedly halve the range with
  // probability depending on s. Cheap and monotone in skew.
  double u = NextDouble();
  // Inverse of the continuous CDF for p(x) ~ x^(-s) on [1, n].
  double x;
  if (s == 1.0) {
    double logn = __builtin_log(static_cast<double>(n));
    x = __builtin_exp(u * logn);
  } else {
    double a = 1.0 - s;
    double na = __builtin_exp(a * __builtin_log(static_cast<double>(n)));
    x = __builtin_exp(__builtin_log(u * (na - 1.0) + 1.0) / a);
  }
  uint64_t r = static_cast<uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace gfd

#endif  // GFD_UTIL_RNG_H_
