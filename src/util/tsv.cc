#include "util/tsv.h"

namespace gfd {

std::vector<std::string_view> SplitFields(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= line.size()) {
    size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool SplitKeyValue(std::string_view field, std::string_view* key,
                   std::string_view* value) {
  size_t pos = field.find('=');
  if (pos == std::string_view::npos) return false;
  *key = field.substr(0, pos);
  *value = field.substr(pos + 1);
  return true;
}

}  // namespace gfd
