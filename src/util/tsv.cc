#include "util/tsv.h"

namespace gfd {

std::vector<std::string_view> SplitFields(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= line.size()) {
    size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool SplitKeyValue(std::string_view field, std::string_view* key,
                   std::string_view* value) {
  for (size_t pos = 0; pos < field.size(); ++pos) {
    if (field[pos] == '\\') {
      ++pos;  // skip the escaped character, whatever it is
      continue;
    }
    if (field[pos] == '=') {
      *key = field.substr(0, pos);
      *value = field.substr(pos + 1);
      return true;
    }
  }
  return false;
}

std::string EscapeField(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '=':
        out += "\\=";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::optional<std::string> UnescapeField(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (++i == field.size()) return std::nullopt;  // dangling backslash
    switch (field[i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case '=':
        out += '=';
        break;
      default:
        return std::nullopt;  // unknown escape
    }
  }
  return out;
}

}  // namespace gfd
