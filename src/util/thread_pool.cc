#include "util/thread_pool.h"

#include <algorithm>

namespace gfd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A task accepted after shutdown would sit in the queue forever
    // once the workers exit (and wedge Wait); reject it instead.
    if (shutdown_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(pool.size(), n);
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace gfd
