#include "util/interner.h"

namespace gfd {

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

std::optional<uint32_t> StringInterner::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace gfd
