// Wall-clock timing helpers used by benches, the parallel runtime, and
// the observability layer.
#ifndef GFD_UTIL_TIMER_H_
#define GFD_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gfd {

/// Monotonic nanosecond stopwatch.
///
/// Backed by std::chrono::steady_clock, which the standard guarantees is
/// monotonic: it never jumps backwards (NTP slew, DST, manual clock
/// changes do not affect it), so elapsed readings are always >= 0 and
/// safe to feed into latency histograms and trace timestamps.
class StopwatchNs {
 public:
  StopwatchNs() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed nanoseconds since construction / last Restart().
  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Elapsed seconds since construction / last Restart().
  double Seconds() const { return static_cast<double>(ElapsedNs()) * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic wall-clock stopwatch reporting in seconds / milliseconds.
/// Thin facade over StopwatchNs, kept for the bench and CLI call sites.
class WallTimer {
 public:
  WallTimer() = default;

  /// Restarts the stopwatch.
  void Reset() { watch_.Restart(); }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const { return watch_.Seconds(); }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  StopwatchNs watch_;
};

}  // namespace gfd

#endif  // GFD_UTIL_TIMER_H_
