// Core identifier types shared across the library.
//
// All entities -- nodes, labels, attribute keys, attribute values -- are
// referred to by dense 32-bit ids produced by interning (see interner.h).
// Dense ids keep the hot data structures (CSR adjacency, attribute tuples,
// partial matches) compact and cache friendly.
#ifndef GFD_UTIL_IDS_H_
#define GFD_UTIL_IDS_H_

#include <cstdint>
#include <limits>

namespace gfd {

/// Identifier of a node in a data graph (dense, 0-based).
using NodeId = uint32_t;
/// Identifier of an edge in a data graph (dense, 0-based).
using EdgeId = uint32_t;
/// Interned node/edge label. Label 0 is reserved for the wildcard '_'.
using LabelId = uint32_t;
/// Interned attribute key (e.g. "type", "name").
using AttrId = uint32_t;
/// Interned attribute value (e.g. "film", "producer").
using ValueId = uint32_t;
/// Index of a pattern variable within a pattern's variable list x-bar.
using VarId = uint32_t;

/// The wildcard label '_' of the paper: matches any label (l ≺ '_').
inline constexpr LabelId kWildcardLabel = 0;

/// Sentinel for "no node" / "not matched yet".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
/// Sentinel for "no value".
inline constexpr ValueId kNoValue = std::numeric_limits<ValueId>::max();
/// Sentinel for "no variable".
inline constexpr VarId kNoVar = std::numeric_limits<VarId>::max();

/// Returns true when a concrete label `l` matches a (possibly wildcard)
/// pattern label `pl`, i.e. l ⪯ pl in the paper's notation.
inline bool LabelMatches(LabelId l, LabelId pl) {
  return pl == kWildcardLabel || l == pl;
}

}  // namespace gfd

#endif  // GFD_UTIL_IDS_H_
