// String interning: bidirectional mapping between strings and dense ids.
#ifndef GFD_UTIL_INTERNER_H_
#define GFD_UTIL_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gfd {

/// Maps strings to dense uint32 ids and back. Not thread safe; graphs are
/// built single-threaded and read-only afterwards.
class StringInterner {
 public:
  StringInterner() = default;

  /// Interns `s`, returning its id (existing or freshly assigned).
  uint32_t Intern(std::string_view s);

  /// Returns the id of `s` if already interned.
  std::optional<uint32_t> Find(std::string_view s) const;

  /// Returns the string for id `id`. Precondition: id < size().
  const std::string& Get(uint32_t id) const { return strings_[id]; }

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace gfd

#endif  // GFD_UTIL_INTERNER_H_
