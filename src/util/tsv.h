// Minimal TSV tokenization used by the graph loader/saver.
//
// Fields are backslash-escaped so arbitrary strings -- including tabs,
// newlines, '=' and empty values -- survive a save/load round trip:
// EscapeField on the way out, UnescapeField on the way in. Content
// without backslashes is untouched by either, so backslash-free files
// written before escaping existed parse identically. A pre-escaping
// field that does contain a literal backslash is *rejected* with a
// line-numbered error rather than silently reinterpreted -- re-save the
// file through the current writer to migrate it.
#ifndef GFD_UTIL_TSV_H_
#define GFD_UTIL_TSV_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gfd {

/// Splits `line` on `sep` (fields are raw; unescape separately).
std::vector<std::string_view> SplitFields(std::string_view line,
                                          char sep = '\t');

/// Splits "key=value" at the first *unescaped* '=' (one preceded by an
/// even number of backslashes). Returns false if no such '='.
bool SplitKeyValue(std::string_view field, std::string_view* key,
                   std::string_view* value);

/// Escapes the TSV metacharacters of `raw`: backslash, tab, LF, CR and
/// '=' become "\\\\", "\\t", "\\n", "\\r", "\\=". The result never
/// contains a field separator or record terminator.
std::string EscapeField(std::string_view raw);

/// Inverse of EscapeField. Returns std::nullopt on a dangling backslash
/// or an unknown escape sequence (the caller reports file:line context).
std::optional<std::string> UnescapeField(std::string_view field);

}  // namespace gfd

#endif  // GFD_UTIL_TSV_H_
