// Minimal TSV tokenization used by the graph loader/saver.
#ifndef GFD_UTIL_TSV_H_
#define GFD_UTIL_TSV_H_

#include <string>
#include <string_view>
#include <vector>

namespace gfd {

/// Splits `line` on `sep` (no quoting/escaping; fields are raw).
std::vector<std::string_view> SplitFields(std::string_view line,
                                          char sep = '\t');

/// Splits "key=value" into its two halves. Returns false if no '='.
bool SplitKeyValue(std::string_view field, std::string_view* key,
                   std::string_view* value);

}  // namespace gfd

#endif  // GFD_UTIL_TSV_H_
