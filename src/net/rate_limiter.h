// Per-client token-bucket rate limiter for the ingest path: each client
// key (the peer host) owns a bucket refilled at `rate_per_sec` up to
// `burst` tokens; a request is admitted iff a token is available. The
// clock is injectable so tests drive time by hand.
#ifndef GFD_NET_RATE_LIMITER_H_
#define GFD_NET_RATE_LIMITER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gfd::net {

class TokenBucketLimiter {
 public:
  struct Options {
    /// Sustained admits per second per client; 0 disables limiting
    /// (every Admit succeeds).
    double rate_per_sec = 0;
    /// Bucket capacity: the burst a quiet client may spend at once.
    double burst = 8;
  };

  /// Monotonic nanosecond clock; defaults to std::chrono::steady_clock.
  using Clock = std::function<uint64_t()>;

  explicit TokenBucketLimiter(Options opts, Clock clock = {});

  /// Takes one token from `key`'s bucket. True = admitted.
  bool Admit(const std::string& key);

  bool enabled() const { return opts_.rate_per_sec > 0; }

 private:
  struct Bucket {
    double tokens;
    uint64_t refilled_ns;
  };

  Options opts_;
  Clock clock_;
  std::mutex mu_;  // guards: buckets_
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace gfd::net

#endif  // GFD_NET_RATE_LIMITER_H_
