// Dependency-free HTTP/1.1 message layer: an incremental request parser
// (request line -> headers -> body, fixed-length or chunked) with hard
// size limits, plus response serialization. Transport-agnostic -- the
// parser consumes bytes from anywhere (http_server.cc feeds it from a
// socket, the tests from string tables), which is what makes the
// fuzz-ish malformed-input tests cheap.
//
// Deliberately small surface: exactly what the changefeed server needs
// (GET/POST, keep-alive, percent-decoded query parameters, chunked
// request bodies), not a general HTTP library. docs/WIRE.md documents
// the wire behavior.
#ifndef GFD_NET_HTTP_H_
#define GFD_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gfd::net {

/// Request size limits; exceeding either yields kTooLarge (mapped to
/// 431/413 by the server).
struct HttpLimits {
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 16 * 1024 * 1024;
};

/// One parsed request. Header names are lower-cased; query keys/values
/// are percent-decoded ('+' decodes to space).
struct HttpRequest {
  std::string method;  ///< as sent (GET, POST, ...)
  std::string target;  ///< raw request target (path?query)
  std::string path;    ///< percent-decoded path component
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;        ///< de-chunked when chunked
  bool keep_alive = true;  ///< HTTP/1.1 default, honoring Connection

  /// First header with `name` (lower-case), or nullptr.
  const std::string* Header(std::string_view name) const;
  /// First query parameter `name`, or nullptr.
  const std::string* QueryParam(std::string_view name) const;
};

enum class ParseStatus {
  kOk,          ///< one complete request is ready (TakeRequest)
  kIncomplete,  ///< need more bytes
  kBad,         ///< malformed; close the connection (400)
  kTooLarge,    ///< a limit was exceeded; close (413/431)
};

/// Incremental HTTP/1.1 request parser. Feed bytes with Consume until it
/// returns kOk, TakeRequest(), repeat for the next request on the same
/// connection (pipelined leftover bytes are retained). After kBad or
/// kTooLarge the parser is poisoned; close the connection.
class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Appends `bytes` (may be empty) and attempts to complete a request.
  ParseStatus Consume(std::string_view bytes);

  /// Valid exactly once after kOk; resets the parser for the next
  /// request on the connection.
  HttpRequest TakeRequest();

  /// Human-readable cause after kBad/kTooLarge.
  const std::string& error() const { return error_; }

 private:
  enum class State { kHeader, kBody, kChunked, kDone, kFailed };

  ParseStatus Fail(ParseStatus status, std::string message);
  ParseStatus ParseHeader();   // buffer_ -> request line + headers
  ParseStatus ParseBody();     // fixed Content-Length
  ParseStatus ParseChunked();  // Transfer-Encoding: chunked

  HttpLimits limits_;
  State state_ = State::kHeader;
  std::string buffer_;   ///< unconsumed input
  HttpRequest request_;  ///< being assembled
  size_t body_remaining_ = 0;
  std::string error_;
};

/// One response. `extra_headers` are emitted verbatim after the
/// standard ones.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Standard reason phrase for `status` ("OK", "Not Found", ...).
std::string_view StatusReason(int status);

/// Serializes status line + headers + body with Content-Length and the
/// requested Connection disposition.
std::string SerializeResponse(const HttpResponse& resp, bool keep_alive);

/// Percent-decodes `s` ('+' becomes space; invalid escapes kept as-is).
std::string PercentDecode(std::string_view s);

/// Minimal JSON string escaping (backslash, quote, control chars) for
/// the handcrafted JSON bodies of /ingest, /status and SSE events.
std::string JsonEscape(std::string_view s);

}  // namespace gfd::net

#endif  // GFD_NET_HTTP_H_
