#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace gfd::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Strips one trailing '\r' (lines are split on '\n'; both CRLF and bare
// LF endings are accepted).
std::string_view TrimCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void ParseQuery(std::string_view raw,
                std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = 0;
  while (pos <= raw.size()) {
    size_t amp = raw.find('&', pos);
    std::string_view pair = raw.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out->emplace_back(PercentDecode(pair), "");
      } else {
        out->emplace_back(PercentDecode(pair.substr(0, eq)),
                          PercentDecode(pair.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::QueryParam(std::string_view name) const {
  for (const auto& [k, v] : query) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() + 0 && i + 2 <= s.size() - 1) {
      int hi = HexDigit(s[i + 1]), lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

ParseStatus HttpParser::Fail(ParseStatus status, std::string message) {
  state_ = State::kFailed;
  error_ = std::move(message);
  return status;
}

ParseStatus HttpParser::Consume(std::string_view bytes) {
  buffer_.append(bytes);
  for (;;) {
    switch (state_) {
      case State::kHeader: {
        ParseStatus s = ParseHeader();
        if (s != ParseStatus::kOk) return s;
        continue;  // state advanced to kBody/kChunked/kDone
      }
      case State::kBody: {
        ParseStatus s = ParseBody();
        if (s != ParseStatus::kOk) return s;
        continue;
      }
      case State::kChunked: {
        ParseStatus s = ParseChunked();
        if (s != ParseStatus::kOk) return s;
        continue;
      }
      case State::kDone:
        return ParseStatus::kOk;
      case State::kFailed:
        return error_.find("exceeds") != std::string::npos
                   ? ParseStatus::kTooLarge
                   : ParseStatus::kBad;
    }
  }
}

ParseStatus HttpParser::ParseHeader() {
  size_t end = buffer_.find("\n\n");
  size_t term = 2;
  size_t crlf = buffer_.find("\r\n\r\n");
  if (crlf != std::string::npos && (end == std::string::npos || crlf < end)) {
    end = crlf;
    term = 4;
  }
  if (end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return Fail(ParseStatus::kTooLarge, "header section exceeds " +
                                              std::to_string(
                                                  limits_.max_header_bytes) +
                                              " bytes");
    }
    return ParseStatus::kIncomplete;
  }
  if (end > limits_.max_header_bytes) {
    return Fail(ParseStatus::kTooLarge,
                "header section exceeds " +
                    std::to_string(limits_.max_header_bytes) + " bytes");
  }

  std::string_view head(buffer_.data(), end);
  request_ = HttpRequest{};

  // Request line: METHOD SP TARGET SP HTTP/1.x
  size_t line_end = head.find('\n');
  std::string_view line =
      TrimCr(line_end == std::string_view::npos ? head
                                                : head.substr(0, line_end));
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Fail(ParseStatus::kBad, "malformed request line");
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = line.substr(sp2 + 1);
  if (!version.starts_with("HTTP/1.")) {
    return Fail(ParseStatus::kBad, "unsupported protocol version");
  }
  if (request_.method.empty() || request_.target.empty()) {
    return Fail(ParseStatus::kBad, "malformed request line");
  }
  bool http11 = version == "HTTP/1.1";
  request_.keep_alive = http11;

  // Split target into path + query.
  size_t q = request_.target.find('?');
  request_.path = PercentDecode(q == std::string::npos
                                    ? std::string_view(request_.target)
                                    : std::string_view(request_.target)
                                          .substr(0, q));
  if (q != std::string::npos) {
    ParseQuery(std::string_view(request_.target).substr(q + 1),
               &request_.query);
  }

  // Header fields.
  size_t content_length = 0;
  bool have_length = false, chunked = false;
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 1);
  while (!rest.empty()) {
    size_t nl = rest.find('\n');
    std::string_view field = TrimCr(
        nl == std::string_view::npos ? rest : rest.substr(0, nl));
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    if (field.empty()) continue;
    size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return Fail(ParseStatus::kBad, "malformed header field");
    }
    std::string name = ToLower(TrimSpace(field.substr(0, colon)));
    std::string value(TrimSpace(field.substr(colon + 1)));
    if (name.empty()) {
      return Fail(ParseStatus::kBad, "malformed header field");
    }
    if (name == "content-length") {
      char* endp = nullptr;
      std::string digits = value;
      // Digits only: strtoull would happily wrap "-5" to a huge value.
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        return Fail(ParseStatus::kBad, "malformed Content-Length");
      }
      unsigned long long n = std::strtoull(digits.c_str(), &endp, 10);
      if (!endp || *endp != '\0') {
        return Fail(ParseStatus::kBad, "malformed Content-Length");
      }
      content_length = static_cast<size_t>(n);
      have_length = true;
    } else if (name == "transfer-encoding") {
      if (ToLower(value) != "chunked") {
        return Fail(ParseStatus::kBad, "unsupported transfer encoding");
      }
      chunked = true;
    } else if (name == "connection") {
      std::string lowered = ToLower(value);
      if (lowered == "close") request_.keep_alive = false;
      if (lowered == "keep-alive") request_.keep_alive = true;
    }
    request_.headers.emplace_back(std::move(name), std::move(value));
  }

  buffer_.erase(0, end + term);
  if (chunked) {
    state_ = State::kChunked;
    return ParseStatus::kOk;
  }
  if (have_length) {
    if (content_length > limits_.max_body_bytes) {
      return Fail(ParseStatus::kTooLarge,
                  "body exceeds " + std::to_string(limits_.max_body_bytes) +
                      " bytes");
    }
    body_remaining_ = content_length;
    state_ = State::kBody;
    return ParseStatus::kOk;
  }
  state_ = State::kDone;
  return ParseStatus::kOk;
}

ParseStatus HttpParser::ParseBody() {
  size_t take = std::min(body_remaining_, buffer_.size());
  request_.body.append(buffer_, 0, take);
  buffer_.erase(0, take);
  body_remaining_ -= take;
  if (body_remaining_ > 0) return ParseStatus::kIncomplete;
  state_ = State::kDone;
  return ParseStatus::kOk;
}

ParseStatus HttpParser::ParseChunked() {
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(ParseStatus::kBad, "malformed chunk size line");
      }
      return ParseStatus::kIncomplete;
    }
    std::string_view size_line =
        TrimCr(std::string_view(buffer_).substr(0, nl));
    // Chunk extensions (";...") are tolerated and ignored.
    size_t semi = size_line.find(';');
    if (semi != std::string_view::npos) size_line = size_line.substr(0, semi);
    size_line = TrimSpace(size_line);
    if (size_line.empty()) {
      return Fail(ParseStatus::kBad, "malformed chunk size line");
    }
    size_t chunk = 0;
    for (char c : size_line) {
      int d = HexDigit(c);
      if (d < 0) return Fail(ParseStatus::kBad, "malformed chunk size line");
      if (chunk > (limits_.max_body_bytes >> 4) + 1) {
        return Fail(ParseStatus::kTooLarge,
                    "body exceeds " + std::to_string(limits_.max_body_bytes) +
                        " bytes");
      }
      chunk = chunk * 16 + static_cast<size_t>(d);
    }
    if (request_.body.size() + chunk > limits_.max_body_bytes) {
      return Fail(ParseStatus::kTooLarge,
                  "body exceeds " + std::to_string(limits_.max_body_bytes) +
                      " bytes");
    }
    if (chunk == 0) {
      // Final chunk: consume the size line, then expect a blank line
      // (trailers are not supported -- a non-empty trailer is an error).
      size_t after = nl + 1;
      size_t nl2 = buffer_.find('\n', after);
      if (nl2 == std::string::npos) return ParseStatus::kIncomplete;
      std::string_view trailer =
          TrimCr(std::string_view(buffer_).substr(after, nl2 - after));
      if (!trailer.empty()) {
        return Fail(ParseStatus::kBad, "unsupported chunked trailer");
      }
      buffer_.erase(0, nl2 + 1);
      state_ = State::kDone;
      return ParseStatus::kOk;
    }
    // Need the whole chunk plus its terminating newline.
    size_t data_start = nl + 1;
    if (buffer_.size() < data_start + chunk + 1) {
      return ParseStatus::kIncomplete;
    }
    request_.body.append(buffer_, data_start, chunk);
    size_t tail = data_start + chunk;
    // Chunk data must be followed by CRLF (or LF).
    if (buffer_[tail] == '\r') {
      if (buffer_.size() < tail + 2) return ParseStatus::kIncomplete;
      if (buffer_[tail + 1] != '\n') {
        return Fail(ParseStatus::kBad, "malformed chunk terminator");
      }
      buffer_.erase(0, tail + 2);
    } else if (buffer_[tail] == '\n') {
      buffer_.erase(0, tail + 1);
    } else {
      return Fail(ParseStatus::kBad, "malformed chunk terminator");
    }
  }
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  state_ = State::kHeader;
  return out;
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Entity";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    std::string(StatusReason(resp.status)) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [k, v] : resp.extra_headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  out += resp.body;
  return out;
}

}  // namespace gfd::net
