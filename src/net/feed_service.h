// The HTTP surface of the violation changefeed server: routes the four
// endpoints of `gfdtool serve run` onto one ServingStore plus one
// ViolationChangefeed.
//
//   POST /ingest   one TSV delta batch -> AppendAndDiff -> publish the
//                  diff to the feed; responds with seq + diff summary.
//                  Validation failures are 4xx and nothing reaches the
//                  log. Per-client token-bucket rate limiting (429).
//   GET  /feed     SSE stream of per-batch violation diffs. ?cursor=<seq>
//                  replays every durable record after <seq> before going
//                  live; ?rule= / ?label= / ?pivot= filter; ?max_events=
//                  closes the stream after N events (scripting aid).
//   GET  /metrics  live Prometheus text (obs registry + store snapshot).
//   GET  /status   JSON summary: seq, backend, fragments, counters.
//
// Concurrency: ServingStore is not thread-safe, so every store touch --
// ingest, and the snapshot reads of /status and /metrics -- serializes
// through one mutex; that same mutex makes this process the single
// writer and keeps feed publishes in batch order. Feed subscribers never
// take it: they read the durable feed log and their own bounded queues.
#ifndef GFD_NET_FEED_SERVICE_H_
#define GFD_NET_FEED_SERVICE_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "detect/engine.h"
#include "detect/planner.h"
#include "net/http_server.h"
#include "net/rate_limiter.h"
#include "serve/changefeed.h"
#include "serve/serving_store.h"

namespace gfd::net {

struct FeedServiceOptions {
  /// Worker threads handed to detection (AppendAndDiff, seeding scan).
  size_t detect_workers = 1;
  /// Live-queue bound per subscriber; a publish that overflows it
  /// evicts the subscriber (slow-consumer disconnect).
  size_t subscriber_queue_cap = 256;
  /// Heartbeat period for idle feed streams (an SSE comment line; also
  /// how fast a dead client is noticed).
  int64_t heartbeat_ms = 5000;
  /// /ingest token bucket per client host. 0 = unlimited.
  double ingest_rate_per_sec = 0;
  double ingest_burst = 8;
  /// Reported by /status ("single" | "distributed").
  std::string backend = "single";
  /// Per-batch incremental-vs-full path choice (adaptive by default;
  /// kForceIncremental restores the pre-planner behavior).
  PlannerConfig planner;
};

class FeedService {
 public:
  /// Does not take ownership; `store`, `engine`, and `feed` must outlive
  /// the service (and the HttpServer dispatching into it).
  FeedService(ServingStore& store, const ViolationEngine& engine,
              ViolationChangefeed& feed, FeedServiceOptions opts);

  /// Seeds the running violation counter: the persisted count when
  /// current, else one full startup scan (`*scanned` reports which).
  /// Must be called once before serving.
  uint64_t Prime(bool* scanned = nullptr);

  /// The HttpHandler: dispatches one request to its endpoint.
  void Handle(const HttpRequest& req, ResponseWriter& w);

  uint64_t violation_count() const;

 private:
  void Ingest(const HttpRequest& req, ResponseWriter& w);
  void Feed(const HttpRequest& req, ResponseWriter& w);
  void Metrics(ResponseWriter& w);
  void Status(ResponseWriter& w);

  ServingStore& store_;
  const ViolationEngine& engine_;
  ViolationChangefeed& feed_;
  FeedServiceOptions opts_;
  TokenBucketLimiter limiter_;

  /// Single-writer enforcement. guards: every ServingStore call on
  /// store_, plus fingerprint_, count_, primed_, planner_,
  /// groups_scanned_, groups_skipped_. Publish happens inside it so feed
  /// order == batch order.
  mutable std::mutex store_mu_;
  uint64_t fingerprint_ = 0;
  uint64_t count_ = 0;
  bool primed_ = false;
  /// Per-batch path chooser (one decision per /ingest, under store_mu_,
  /// which is the planner's required serialization).
  DetectPlanner planner_;
  /// Running footprint-gate totals across batches, for /status.
  uint64_t groups_scanned_ = 0;
  uint64_t groups_skipped_ = 0;
};

}  // namespace gfd::net

#endif  // GFD_NET_FEED_SERVICE_H_
