// Blocking HTTP/1.1 server: one listener thread accepting into a
// ThreadPool of connection workers (util/thread_pool.h). Deliberately
// thread-per-connection -- the changefeed workload is few long-lived
// subscribers plus short ingest requests, not C10K -- which keeps the
// handler model trivial: a handler either fills an HttpResponse or
// switches the connection to raw streaming (SSE) and writes until the
// client goes away.
//
// Shutdown: Stop() (idempotent, called from the serve-run signal path)
// flips the stop flag and closes the listener; connection loops poll the
// flag between reads and drain, streaming handlers observe it through
// their own sources (the changefeed wakes subscribers on Shutdown).
#ifndef GFD_NET_HTTP_SERVER_H_
#define GFD_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/http.h"
#include "util/thread_pool.h"

namespace gfd::net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  /// Connection workers. One long-lived /feed subscriber occupies one
  /// worker for its lifetime, so size this at max subscribers + a few
  /// for ingest/metrics traffic.
  size_t workers = 8;
  HttpLimits limits;
  /// Poll tick while waiting for request bytes; bounds how fast a
  /// connection notices Stop().
  int poll_interval_ms = 200;
  /// Idle keep-alive connections are closed after this long without a
  /// complete request.
  int idle_timeout_ms = 30'000;
};

/// The handler's side of one connection. Either call Respond exactly
/// once, or BeginStream followed by any number of Write calls (the
/// connection closes when the handler returns; streams never keep-alive).
class ResponseWriter {
 public:
  /// Client address as "ip:port" -- the rate-limiter key.
  const std::string& client() const { return client_; }
  /// Client address without the port -- per-host keying.
  std::string client_host() const;

  /// Sends one complete response. No-op if already responded/streaming.
  void Respond(const HttpResponse& resp);

  /// Switches to raw streaming: writes the status line and headers
  /// (Connection: close, no Content-Length) and returns true when the
  /// socket accepted them.
  bool BeginStream(int status, std::string_view content_type);

  /// Writes raw bytes on a stream; false once the client is gone.
  bool Write(std::string_view data);

  bool responded() const { return responded_; }
  bool streaming() const { return streaming_; }

 private:
  friend class HttpServer;
  ResponseWriter(int fd, std::string client, bool keep_alive)
      : fd_(fd), client_(std::move(client)), keep_alive_(keep_alive) {}

  bool SendAll(std::string_view data);

  int fd_;
  std::string client_;
  bool keep_alive_;
  bool responded_ = false;
  bool streaming_ = false;
  bool write_failed_ = false;
};

using HttpHandler = std::function<void(const HttpRequest&, ResponseWriter&)>;

class HttpServer {
 public:
  /// Binds, listens, and starts the accept loop. Returns nullptr (and
  /// sets *error) when the socket cannot be bound.
  static std::unique_ptr<HttpServer> Start(HttpServerOptions opts,
                                           HttpHandler handler,
                                           std::string* error = nullptr);

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves option port 0).
  uint16_t port() const { return port_; }

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Graceful shutdown: stop accepting, wake/drain every connection
  /// worker, join. Idempotent; also run by the destructor.
  void Stop();

 private:
  HttpServer(HttpServerOptions opts, HttpHandler handler);

  void AcceptLoop();
  void HandleConnection(int fd, std::string client);

  HttpServerOptions opts_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  // guards: the Stop teardown sequence (shutdown, accept_thread_ join,
  // listen_fd_ close, pool drain) -- a concurrent Stop caller blocks
  // here until the first finishes instead of double-joining the thread.
  std::mutex stop_mu_;
  bool stopped_ = false;  ///< teardown ran to completion (under stop_mu_)
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
};

}  // namespace gfd::net

#endif  // GFD_NET_HTTP_SERVER_H_
