#include "net/feed_service.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "gfd/serialize.h"
#include "net/metrics.h"
#include "obs/metrics.h"
#include "serve/metrics.h"
#include "util/hash.h"
#include "util/timer.h"
#include "util/tsv.h"

namespace gfd::net {

namespace {

const char* VerdictName(DeltaVerdict v) {
  switch (v) {
    case DeltaVerdict::kClean:
      return "clean";
    case DeltaVerdict::kAddedViolations:
      return "added-violations";
    case DeltaVerdict::kPreexistingOnly:
      return "preexisting-only";
  }
  return "?";
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename T>
std::optional<T> ParseNumber(std::string_view s) {
  T value{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

HttpResponse Plain(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse Json(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

/// The ?rule= / ?label= / ?pivot= selection of one /feed stream.
struct FeedFilter {
  std::optional<uint32_t> rule;
  std::optional<uint64_t> pivot;
  std::optional<std::string> label;

  bool active() const { return rule || pivot || label; }
  bool Matches(const FeedLine& line) const {
    if (rule && line.rule != *rule) return false;
    if (pivot && line.pivot != *pivot) return false;
    if (label && line.pivot_label != *label) return false;
    return true;
  }
};

void AppendLineJson(const FeedLine& line, std::string* out) {
  *out += "{\"rule\":" + std::to_string(line.rule) +
          ",\"pivot\":" + std::to_string(line.pivot) + ",\"node\":\"" +
          JsonEscape(line.pivot_name) + "\",\"label\":\"" +
          JsonEscape(line.pivot_label) + "\",\"desc\":\"" +
          JsonEscape(line.description) + "\"}";
}

/// Renders one feed event as an SSE frame, applying `filter` per line.
/// Returns nullopt when every line was filtered out (the caller skips
/// the event entirely rather than emitting an empty diff).
std::optional<std::string> RenderEvent(const FeedEvent& ev,
                                       const FeedFilter& filter) {
  std::string added, removed;
  size_t kept = 0;
  size_t begin = 0;
  while (begin < ev.payload.size()) {
    size_t end = ev.payload.find('\n', begin);
    if (end == std::string::npos) end = ev.payload.size();
    std::string_view raw(ev.payload.data() + begin, end - begin);
    begin = end + 1;
    auto line = ParseFeedLine(raw);
    if (!line || !filter.Matches(*line)) continue;
    std::string* side = line->added ? &added : &removed;
    if (!side->empty()) *side += ",";
    AppendLineJson(*line, side);
    ++kept;
  }
  if (filter.active() && kept == 0) return std::nullopt;
  std::string frame = "event: diff\nid: " + std::to_string(ev.seq) +
                      "\ndata: {\"seq\":" + std::to_string(ev.seq) +
                      ",\"added\":[" + added + "],\"removed\":[" + removed +
                      "]}\n\n";
  return frame;
}

}  // namespace

FeedService::FeedService(ServingStore& store, const ViolationEngine& engine,
                         ViolationChangefeed& feed, FeedServiceOptions opts)
    : store_(store),
      engine_(engine),
      feed_(feed),
      opts_(std::move(opts)),
      limiter_({.rate_per_sec = opts_.ingest_rate_per_sec,
                .burst = opts_.ingest_burst}),
      planner_(opts_.planner) {}

uint64_t FeedService::Prime(bool* scanned) {
  std::lock_guard lock(store_mu_);
  TouchServeMetrics();
  TouchNetMetrics();
  PropertyGraph g = store_.MaterializeCurrent();
  std::ostringstream os;
  SaveGfds(engine_.rules(), g, os);
  fingerprint_ = Fnv1a64(os.str());
  if (auto persisted = store_.violation_count(fingerprint_)) {
    count_ = *persisted;
    if (scanned) *scanned = false;
  } else {
    GraphDelta no_delta;
    auto view = GraphView::Apply(g, no_delta);
    DetectOptions full;
    full.workers = opts_.detect_workers;
    WallTimer watch;
    count_ = engine_.Detect(*view, full).violations.size();
    // The seeding scan is a free full-path cost sample: feed it to the
    // planner so the adaptive mode calibrates after the FIRST served
    // batch instead of needing one of each path.
    planner_.ObserveFull(
        MakePlannerInputs(*view, 0, "", engine_.NumGroups(),
                          engine_.NumAnchorPlans()),
        watch.Seconds());
    std::string err;
    if (!store_.SetViolationCount(count_, fingerprint_, &err)) {
      std::fprintf(stderr, "warning: could not persist counter: %s\n",
                   err.c_str());
    }
    if (scanned) *scanned = true;
  }
  primed_ = true;
  return count_;
}

uint64_t FeedService::violation_count() const {
  std::lock_guard lock(store_mu_);
  return count_;
}

void FeedService::Handle(const HttpRequest& req, ResponseWriter& w) {
  auto t0 = std::chrono::steady_clock::now();
  if (req.path == "/ingest") {
    HttpRequestsTotal("/ingest").Inc();
    Ingest(req, w);
  } else if (req.path == "/feed") {
    HttpRequestsTotal("/feed").Inc();
    Feed(req, w);
    return;  // open-ended stream: excluded from the latency histogram
  } else if (req.path == "/metrics") {
    HttpRequestsTotal("/metrics").Inc();
    if (req.method != "GET") {
      w.Respond(Plain(405, "method not allowed\n"));
    } else {
      Metrics(w);
    }
  } else if (req.path == "/status") {
    HttpRequestsTotal("/status").Inc();
    if (req.method != "GET") {
      w.Respond(Plain(405, "method not allowed\n"));
    } else {
      Status(w);
    }
  } else {
    HttpRequestsTotal("other").Inc();
    w.Respond(Plain(404, "no such endpoint (have: /ingest /feed /metrics "
                         "/status)\n"));
  }
  HttpRequestLatency().Observe(SecondsSince(t0));
}

void FeedService::Ingest(const HttpRequest& req, ResponseWriter& w) {
  if (req.method != "POST") {
    w.Respond(Plain(405, "POST a TSV delta batch to /ingest\n"));
    return;
  }
  if (!limiter_.Admit(w.client_host())) {
    IngestRateLimitedTotal().Inc();
    w.Respond(Plain(429, "rate limited\n"));
    return;
  }
  if (req.body.empty()) {
    w.Respond(Plain(400, "empty delta batch\n"));
    return;
  }

  std::lock_guard lock(store_mu_);
  if (!primed_) {
    w.Respond(Plain(503, "server not primed\n"));
    return;
  }
  IncrementalOptions iopts;
  iopts.workers = opts_.detect_workers;
  iopts.planner = &planner_;
  std::string error;
  uint64_t seq = 0;
  auto diff = store_.AppendAndDiff(engine_, req.body, iopts, &seq, &error);
  if (!diff) {
    // Validation failure: the batch never reached the log.
    w.Respond(Json(422, "{\"error\":\"" + JsonEscape(error) + "\"}\n"));
    return;
  }
  if (diff->used_full_path) {
    // The full run is authoritative: RE-SEED the running count rather
    // than composing, so a count computed on the wrong path can never
    // persist through store.meta.
    count_ = diff->full_post_count;
  } else {
    count_ += diff->added.size();
    count_ -= diff->removed.size();
  }
  groups_scanned_ += diff->stats.groups_scanned;
  groups_skipped_ += diff->stats.groups_skipped;
  if (!store_.SetViolationCount(count_, fingerprint_, &error)) {
    std::fprintf(stderr, "warning: could not persist counter: %s\n",
                 error.c_str());
  }

  // Serialize-at-publish: descriptions resolve against the post-batch
  // state, so feed replay never needs historical graph state.
  PropertyGraph after = store_.MaterializeCurrent();
  GraphDelta no_delta;
  auto after_view = GraphView::Apply(after, no_delta);
  std::string payload = SerializeDiffPayload(*after_view, engine_.rules(),
                                             *diff);
  if (!feed_.Publish(seq, std::move(payload), &error)) {
    std::fprintf(stderr, "warning: feed publish failed: %s\n", error.c_str());
  }
  if (!store_.MaybeCompact(&error)) {
    std::fprintf(stderr, "warning: compaction failed: %s\n", error.c_str());
  }

  DeltaVerdict verdict = ClassifyDelta(*diff, count_);
  w.Respond(Json(
      200, "{\"seq\":" + std::to_string(seq) +
               ",\"added\":" + std::to_string(diff->added.size()) +
               ",\"removed\":" + std::to_string(diff->removed.size()) +
               ",\"violations\":" + std::to_string(count_) +
               ",\"verdict\":\"" + VerdictName(verdict) + "\"}\n"));
}

void FeedService::Feed(const HttpRequest& req, ResponseWriter& w) {
  if (req.method != "GET") {
    w.Respond(Plain(405, "method not allowed\n"));
    return;
  }
  uint64_t cursor = 0;
  FeedFilter filter;
  size_t max_events = 0;
  if (auto v = req.QueryParam("cursor")) {
    auto parsed = ParseNumber<uint64_t>(*v);
    if (!parsed) {
      w.Respond(Plain(400, "bad cursor\n"));
      return;
    }
    cursor = *parsed;
  }
  if (auto v = req.QueryParam("rule")) {
    auto parsed = ParseNumber<uint32_t>(*v);
    if (!parsed) {
      w.Respond(Plain(400, "bad rule\n"));
      return;
    }
    filter.rule = *parsed;
  }
  if (auto v = req.QueryParam("pivot")) {
    auto parsed = ParseNumber<uint64_t>(*v);
    if (!parsed) {
      w.Respond(Plain(400, "bad pivot\n"));
      return;
    }
    filter.pivot = *parsed;
  }
  if (auto v = req.QueryParam("label")) filter.label = *v;
  if (auto v = req.QueryParam("max_events")) {
    auto parsed = ParseNumber<size_t>(*v);
    if (!parsed) {
      w.Respond(Plain(400, "bad max_events\n"));
      return;
    }
    if (*parsed == 0) {
      // 0 used to silently mean "unlimited" (the no-param default); an
      // explicit cap of zero events is a client bug, not a request.
      w.Respond(Plain(400, "max_events must be >= 1 (omit for an "
                           "unbounded stream)\n"));
      return;
    }
    max_events = *parsed;
  }

  std::vector<FeedEvent> replay;
  auto sub = feed_.Subscribe(cursor, opts_.subscriber_queue_cap, &replay);
  if (!w.BeginStream(200, "text/event-stream")) {
    feed_.Unsubscribe(sub);
    return;
  }
  FeedSubscribers().Add(1);

  size_t emitted = 0;
  bool alive = true;
  auto emit = [&](const FeedEvent& ev) {
    auto frame = RenderEvent(ev, filter);
    if (!frame) return;  // fully filtered out
    if (!w.Write(*frame)) {
      alive = false;
      return;
    }
    FeedEventsTotal().Inc();
    ++emitted;
  };

  for (const FeedEvent& ev : replay) {
    if (!alive || (max_events && emitted >= max_events)) break;
    emit(ev);
  }
  FeedEvent ev;
  while (alive && !(max_events && emitted >= max_events)) {
    switch (sub->Next(&ev, opts_.heartbeat_ms)) {
      case FeedSubscription::Wait::kEvent:
        emit(ev);
        break;
      case FeedSubscription::Wait::kTimeout:
        // Heartbeat: keeps the stream warm and surfaces dead clients.
        alive = w.Write(": keepalive\n\n");
        break;
      case FeedSubscription::Wait::kEvicted:
        w.Write("event: evicted\ndata: {\"reason\":\"slow consumer\"}\n\n");
        alive = false;
        break;
      case FeedSubscription::Wait::kClosed:
        alive = false;
        break;
    }
  }
  FeedSubscribers().Add(-1);
  feed_.Unsubscribe(sub);
}

void FeedService::Metrics(ResponseWriter& w) {
  {
    std::lock_guard lock(store_mu_);
    ExportSnapshotMetrics(store_.MetricsSnapshot());
  }
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = obs::MetricsRegistry::Default().RenderPrometheusText();
  w.Respond(resp);
}

void FeedService::Status(ResponseWriter& w) {
  ServingMetricsSnapshot snap;
  uint64_t count;
  PlannerStats pstats;
  uint64_t scanned;
  uint64_t skipped;
  {
    std::lock_guard lock(store_mu_);
    snap = store_.MetricsSnapshot();
    count = count_;
    pstats = planner_.stats();
    scanned = groups_scanned_;
    skipped = groups_skipped_;
  }
  std::string body =
      "{\"seq\":" + std::to_string(snap.last_seq) +
      ",\"backend\":\"" + JsonEscape(opts_.backend) + "\"" +
      ",\"fragments\":" + std::to_string(snap.fragments) +
      ",\"anchor_seq\":" + std::to_string(snap.anchor_seq) +
      ",\"overlay_ops\":" + std::to_string(snap.overlay_ops) +
      ",\"compactions\":" + std::to_string(snap.compactions) +
      ",\"violations\":" + std::to_string(count) +
      ",\"planner_incremental\":" +
      std::to_string(pstats.incremental_decisions) +
      ",\"planner_full\":" + std::to_string(pstats.full_decisions) +
      ",\"groups_scanned\":" + std::to_string(scanned) +
      ",\"groups_skipped\":" + std::to_string(skipped) +
      ",\"feed_seq\":" + std::to_string(feed_.last_seq()) +
      ",\"subscribers\":" + std::to_string(feed_.subscriber_count()) +
      ",\"evictions\":" + std::to_string(feed_.evictions()) + "}\n";
  w.Respond(Json(200, std::move(body)));
}

}  // namespace gfd::net
