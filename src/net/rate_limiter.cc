#include "net/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace gfd::net {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TokenBucketLimiter::TokenBucketLimiter(Options opts, Clock clock)
    : opts_(opts), clock_(clock ? std::move(clock) : SteadyNowNs) {
  opts_.burst = std::max(opts_.burst, 1.0);
}

bool TokenBucketLimiter::Admit(const std::string& key) {
  if (!enabled()) return true;
  uint64_t now = clock_();
  std::lock_guard lock(mu_);
  auto [it, fresh] = buckets_.try_emplace(key, Bucket{opts_.burst, now});
  Bucket& b = it->second;
  if (!fresh) {
    double elapsed = static_cast<double>(now - b.refilled_ns) * 1e-9;
    b.tokens = std::min(opts_.burst, b.tokens + elapsed * opts_.rate_per_sec);
    b.refilled_ns = now;
  }
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

}  // namespace gfd::net
