// Cached registry handles for the HTTP front end (same accessor-catalog
// pattern as serve/metrics.h): request counters by endpoint, response
// counters by status, request latency, live subscriber gauge, and the
// robustness counters (rate-limited ingests, evicted slow consumers).
// All families live in obs::MetricsRegistry::Default() and render
// through the live /metrics endpoint.
#ifndef GFD_NET_METRICS_H_
#define GFD_NET_METRICS_H_

#include <string_view>

#include "obs/metrics.h"

namespace gfd::net {

/// gfd_http_requests_total{endpoint="/ingest"|"/feed"|"/metrics"|
/// "/status"|"other"}
obs::Counter& HttpRequestsTotal(std::string_view endpoint);
/// gfd_http_responses_total{code="200"|"400"|...}
obs::Counter& HttpResponsesTotal(int status);
/// gfd_http_request_seconds (ingest/status/metrics handling; feed
/// streams are open-ended and excluded)
obs::Histogram& HttpRequestLatency();
/// gfd_http_connections_total
obs::Counter& HttpConnectionsTotal();
/// gfd_feed_subscribers (live SSE streams)
obs::Gauge& FeedSubscribers();
/// gfd_feed_events_total (events fanned out to subscribers, incl. replay)
obs::Counter& FeedEventsTotal();
/// gfd_feed_evictions_total (slow consumers disconnected)
obs::Counter& FeedEvictionsTotal();
/// gfd_ingest_rate_limited_total (429s served)
obs::Counter& IngestRateLimitedTotal();

/// Pre-registers every unlabeled family above so a /metrics render shows
/// the full catalog on an idle server.
void TouchNetMetrics();

}  // namespace gfd::net

#endif  // GFD_NET_METRICS_H_
