#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/metrics.h"

namespace gfd::net {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string ResponseWriter::client_host() const {
  size_t colon = client_.rfind(':');
  return colon == std::string::npos ? client_ : client_.substr(0, colon);
}

bool ResponseWriter::SendAll(std::string_view data) {
  if (write_failed_) return false;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed_ = true;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

void ResponseWriter::Respond(const HttpResponse& resp) {
  if (responded_ || streaming_) return;
  responded_ = true;
  HttpResponsesTotal(resp.status).Inc();
  SendAll(SerializeResponse(resp, keep_alive_));
}

bool ResponseWriter::BeginStream(int status, std::string_view content_type) {
  if (responded_ || streaming_) return false;
  streaming_ = true;
  responded_ = true;
  HttpResponsesTotal(status).Inc();
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     std::string(StatusReason(status)) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Cache-Control: no-store\r\n";
  head += "Connection: close\r\n\r\n";
  return SendAll(head);
}

bool ResponseWriter::Write(std::string_view data) {
  if (!streaming_) return false;
  return SendAll(data);
}

HttpServer::HttpServer(HttpServerOptions opts, HttpHandler handler)
    : opts_(std::move(opts)), handler_(std::move(handler)) {}

std::unique_ptr<HttpServer> HttpServer::Start(HttpServerOptions opts,
                                              HttpHandler handler,
                                              std::string* error) {
  auto server = std::unique_ptr<HttpServer>(
      new HttpServer(std::move(opts), std::move(handler)));

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->opts_.port);
  if (::inet_pton(AF_INET, server->opts_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    SetError(error, "bad bind address " + server->opts_.bind_address);
    ::close(fd);
    return nullptr;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError(error, "bind " + server->opts_.bind_address + ":" +
                        std::to_string(server->opts_.port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  if (::listen(fd, 64) != 0) {
    SetError(error, std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    SetError(error, std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->pool_ =
      std::make_unique<ThreadPool>(std::max<size_t>(server->opts_.workers, 1));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  // Serializes concurrent Stop callers (e.g. a signal path racing the
  // destructor): the loser blocks until the winner's teardown finishes
  // rather than double-joining accept_thread_.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Connection loops poll stop_ every poll_interval_ms and exit; Wait
  // returns once the last worker drained.
  pool_->Wait();
  stopped_ = true;
}

void HttpServer::AcceptLoop() {
  while (!stopping()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, opts_.poll_interval_ms);
    if (rc <= 0) continue;
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                       SOCK_CLOEXEC);
    if (fd < 0) continue;
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    std::string client = std::string(ip) + ":" +
                         std::to_string(ntohs(peer.sin_port));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    HttpConnectionsTotal().Inc();
    if (!pool_->Submit([this, fd, client = std::move(client)]() mutable {
          HandleConnection(fd, std::move(client));
        })) {
      ::close(fd);  // pool already shutting down; drop the connection
    }
  }
}

void HttpServer::HandleConnection(int fd, std::string client) {
  HttpParser parser(opts_.limits);
  uint64_t idle_since = NowMs();
  bool close_connection = false;
  char buf[16 * 1024];

  while (!close_connection && !stopping()) {
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, opts_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      if (NowMs() - idle_since >
          static_cast<uint64_t>(opts_.idle_timeout_ms)) {
        break;
      }
      continue;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }

    ParseStatus status = parser.Consume(std::string_view(buf, n));
    // A single read may complete several pipelined requests.
    while (status == ParseStatus::kOk) {
      HttpRequest req = parser.TakeRequest();
      idle_since = NowMs();
      ResponseWriter writer(fd, client, req.keep_alive);
      handler_(req, writer);
      if (!writer.responded()) {
        HttpResponse fallback;
        fallback.status = 500;
        fallback.body = "no response\n";
        writer.Respond(fallback);
      }
      if (writer.streaming() || !req.keep_alive) {
        close_connection = true;
        break;
      }
      status = parser.Consume({});
    }
    if (status == ParseStatus::kBad || status == ParseStatus::kTooLarge) {
      ResponseWriter writer(fd, client, /*keep_alive=*/false);
      HttpResponse resp;
      resp.status = status == ParseStatus::kBad ? 400 : 413;
      resp.body = parser.error() + "\n";
      writer.Respond(resp);
      break;
    }
  }
  ::close(fd);
}

}  // namespace gfd::net
