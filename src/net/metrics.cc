#include "net/metrics.h"

#include <string>

namespace gfd::net {

using obs::MetricsRegistry;

obs::Counter& HttpRequestsTotal(std::string_view endpoint) {
  return MetricsRegistry::Default().GetCounter(
      "gfd_http_requests_total", "HTTP requests received, by endpoint.",
      {{"endpoint", std::string(endpoint)}});
}

obs::Counter& HttpResponsesTotal(int status) {
  return MetricsRegistry::Default().GetCounter(
      "gfd_http_responses_total", "HTTP responses sent, by status code.",
      {{"code", std::to_string(status)}});
}

obs::Histogram& HttpRequestLatency() {
  static obs::Histogram& h = MetricsRegistry::Default().GetHistogram(
      "gfd_http_request_seconds",
      "Request handling latency (excluding open-ended feed streams).",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Counter& HttpConnectionsTotal() {
  static obs::Counter& c = MetricsRegistry::Default().GetCounter(
      "gfd_http_connections_total", "TCP connections accepted.");
  return c;
}

obs::Gauge& FeedSubscribers() {
  static obs::Gauge& g = MetricsRegistry::Default().GetGauge(
      "gfd_feed_subscribers", "Live changefeed subscriber streams.");
  return g;
}

obs::Counter& FeedEventsTotal() {
  static obs::Counter& c = MetricsRegistry::Default().GetCounter(
      "gfd_feed_events_total",
      "Feed events written to subscriber streams (incl. cursor replay).");
  return c;
}

obs::Counter& FeedEvictionsTotal() {
  static obs::Counter& c = MetricsRegistry::Default().GetCounter(
      "gfd_feed_evictions_total",
      "Slow-consumer subscriptions evicted by backpressure.");
  return c;
}

obs::Counter& IngestRateLimitedTotal() {
  static obs::Counter& c = MetricsRegistry::Default().GetCounter(
      "gfd_ingest_rate_limited_total",
      "Ingest requests rejected by the per-client token bucket (429).");
  return c;
}

void TouchNetMetrics() {
  HttpRequestLatency();
  HttpConnectionsTotal();
  FeedSubscribers();
  FeedEventsTotal();
  FeedEvictionsTotal();
  IngestRateLimitedTotal();
  for (std::string_view e : {"/ingest", "/feed", "/metrics", "/status"}) {
    HttpRequestsTotal(e);
  }
}

}  // namespace gfd::net
