#include "graph/stats.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"

namespace gfd {

namespace {
struct TripleKeyHash {
  size_t operator()(const std::tuple<LabelId, LabelId, LabelId>& t) const {
    size_t h = std::get<0>(t);
    HashCombine(h, std::get<1>(t));
    HashCombine(h, std::get<2>(t));
    return h;
  }
};
}  // namespace

GraphStats::GraphStats(const PropertyGraph& g) {
  label_counts_.assign(g.labels().size(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++label_counts_[g.NodeLabel(v)];

  std::unordered_map<std::tuple<LabelId, LabelId, LabelId>, uint64_t,
                     TripleKeyHash>
      triple_counts;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    ++triple_counts[{g.NodeLabel(g.EdgeSrc(e)), g.EdgeLabel(e),
                     g.NodeLabel(g.EdgeDst(e))}];
  }
  triples_.reserve(triple_counts.size());
  for (const auto& [key, count] : triple_counts) {
    triples_.push_back(
        {std::get<0>(key), std::get<1>(key), std::get<2>(key), count});
  }
  std::sort(triples_.begin(), triples_.end(),
            [](const EdgeTriple& a, const EdgeTriple& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.src_label != b.src_label) return a.src_label < b.src_label;
              if (a.edge_label != b.edge_label)
                return a.edge_label < b.edge_label;
              return a.dst_label < b.dst_label;
            });

  value_freqs_.resize(g.attrs().size());
  std::vector<std::unordered_map<ValueId, uint64_t>> counts(g.attrs().size());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (const auto& a : g.NodeAttrs(v)) ++counts[a.key][a.value];
  }
  for (AttrId k = 0; k < counts.size(); ++k) {
    if (!counts[k].empty()) attr_keys_.push_back(k);
    auto& vf = value_freqs_[k];
    vf.reserve(counts[k].size());
    for (const auto& [val, c] : counts[k]) vf.push_back({val, c});
    std::sort(vf.begin(), vf.end(), [](const ValueFreq& a, const ValueFreq& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.value < b.value;
    });
  }
}

std::vector<EdgeTriple> GraphStats::FrequentTriples(uint64_t min_count) const {
  std::vector<EdgeTriple> out;
  for (const auto& t : triples_) {
    if (t.count < min_count) break;  // sorted descending
    out.push_back(t);
  }
  return out;
}

std::vector<ValueFreq> GraphStats::TopValues(AttrId key, size_t k) const {
  std::vector<ValueFreq> out;
  if (key >= value_freqs_.size()) return out;
  const auto& vf = value_freqs_[key];
  out.assign(vf.begin(), vf.begin() + std::min(k, vf.size()));
  return out;
}

}  // namespace gfd
