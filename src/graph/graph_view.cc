#include "graph/graph_view.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace gfd {

namespace {

uint32_t InternExtra(std::vector<std::string>& extras, size_t base_size,
                     std::string_view s) {
  for (size_t i = 0; i < extras.size(); ++i) {
    if (extras[i] == s) return static_cast<uint32_t>(base_size + i);
  }
  extras.emplace_back(s);
  return static_cast<uint32_t>(base_size + extras.size() - 1);
}

const std::string& ExtName(const std::vector<std::string>& extras,
                           const StringInterner& base, uint32_t id) {
  return id < base.size() ? base.Get(id) : extras[id - base.size()];
}

}  // namespace

LabelId GraphDelta::InternLabel(const PropertyGraph& base,
                                std::string_view s) {
  if (auto l = base.FindLabel(s)) return *l;
  return InternExtra(extra_labels, base.labels().size(), s);
}

AttrId GraphDelta::InternAttr(const PropertyGraph& base, std::string_view s) {
  if (auto a = base.FindAttr(s)) return *a;
  return InternExtra(extra_attrs, base.attrs().size(), s);
}

ValueId GraphDelta::InternValue(const PropertyGraph& base,
                                std::string_view s) {
  if (auto v = base.FindValue(s)) return *v;
  return InternExtra(extra_values, base.values().size(), s);
}

const std::string& GraphDelta::LabelName(const PropertyGraph& base,
                                         LabelId l) const {
  return ExtName(extra_labels, base.labels(), l);
}

const std::string& GraphDelta::AttrName(const PropertyGraph& base,
                                        AttrId a) const {
  return ExtName(extra_attrs, base.attrs(), a);
}

const std::string& GraphDelta::ValueName(const PropertyGraph& base,
                                         ValueId v) const {
  return ExtName(extra_values, base.values(), v);
}

void GraphDelta::Append(const PropertyGraph& base, const GraphDelta& other) {
  // Adopt `other`'s full extension vocabulary first, in its table order
  // -- not lazily on first op use. Appending the same stream of deltas
  // must yield the same extension ids regardless of which ops each
  // consumer applies; the coordinator relies on this to keep every
  // fragment's vocabulary identical to the master's even though each
  // fragment only receives a routed subset of the ops.
  for (const std::string& l : other.extra_labels) InternLabel(base, l);
  for (const std::string& k : other.extra_attrs) InternAttr(base, k);
  for (const std::string& v : other.extra_values) InternValue(base, v);
  // Translate an id of `other`'s vocabulary into this delta's: base ids
  // are shared, extension ids resolve by name (interning on first sight).
  auto map_label = [&](LabelId l) {
    if (l < base.labels().size()) return l;
    return InternLabel(base, other.LabelName(base, l));
  };
  auto map_attr = [&](AttrId a) {
    if (a < base.attrs().size()) return a;
    return InternAttr(base, other.AttrName(base, a));
  };
  auto map_value = [&](ValueId v) {
    if (v < base.values().size()) return v;
    return InternValue(base, other.ValueName(base, v));
  };
  ops.reserve(ops.size() + other.ops.size());
  for (const Op& op : other.ops) {
    Op mapped = op;
    switch (op.kind) {
      case OpKind::kInsertEdge:
      case OpKind::kDeleteEdge:
        mapped.label = map_label(op.label);
        break;
      case OpKind::kSetAttr:
        mapped.key = map_attr(op.key);
        mapped.value = map_value(op.value);
        break;
    }
    ops.push_back(mapped);
  }
}

std::vector<EdgeId>& GraphView::TouchOut(NodeId v) {
  auto [it, fresh] =
      out_touched_.try_emplace(v, static_cast<uint32_t>(out_lists_.size()));
  if (fresh) {
    auto span = base_->OutEdges(v);
    out_lists_.emplace_back(span.begin(), span.end());
  }
  return out_lists_[it->second];
}

std::vector<EdgeId>& GraphView::TouchIn(NodeId v) {
  auto [it, fresh] =
      in_touched_.try_emplace(v, static_cast<uint32_t>(in_lists_.size()));
  if (fresh) {
    auto span = base_->InEdges(v);
    in_lists_.emplace_back(span.begin(), span.end());
  }
  return in_lists_[it->second];
}

std::optional<GraphView> GraphView::Apply(const PropertyGraph& base,
                                          const GraphDelta& delta,
                                          std::string* error) {
  GraphView view;
  view.base_ = &base;
  view.base_edges_ = static_cast<EdgeId>(base.NumEdges());
  view.num_ops_ = delta.ops.size();
  view.extra_labels_ = delta.extra_labels;
  view.extra_attrs_ = delta.extra_attrs;
  view.extra_values_ = delta.extra_values;

  auto fail = [&](size_t op_index, const std::string& msg) {
    if (error) *error = "op " + std::to_string(op_index + 1) + ": " + msg;
    return std::nullopt;
  };
  const size_t num_labels = base.labels().size() + delta.extra_labels.size();
  const size_t num_attrs = base.attrs().size() + delta.extra_attrs.size();
  const size_t num_values = base.values().size() + delta.extra_values.size();

  std::vector<NodeId> affected;
  for (size_t i = 0; i < delta.ops.size(); ++i) {
    const GraphDelta::Op& op = delta.ops[i];
    if (op.src >= base.NumNodes()) {
      return fail(i, "node " + std::to_string(op.src) + " out of range");
    }
    affected.push_back(op.src);
    switch (op.kind) {
      case GraphDelta::OpKind::kInsertEdge:
      case GraphDelta::OpKind::kDeleteEdge: {
        if (op.dst >= base.NumNodes()) {
          return fail(i, "node " + std::to_string(op.dst) + " out of range");
        }
        if (op.label >= num_labels) {
          return fail(i, "edge label id out of range");
        }
        affected.push_back(op.dst);
        if (op.kind == GraphDelta::OpKind::kInsertEdge) {
          EdgeId id =
              view.base_edges_ + static_cast<EdgeId>(view.added_.size());
          view.added_.push_back({op.src, op.dst, op.label, /*alive=*/true});
          view.TouchOut(op.src).push_back(id);
          view.TouchIn(op.dst).push_back(id);
          break;
        }
        // Delete: resolve against the *current* out-list of src (exact
        // label; the wildcard never labels data edges).
        std::vector<EdgeId>& out = view.TouchOut(op.src);
        auto hit = std::find_if(out.begin(), out.end(), [&](EdgeId e) {
          return view.EdgeDst(e) == op.dst && view.EdgeLabel(e) == op.label;
        });
        if (hit == out.end()) {
          return fail(i, "delete of missing edge " + std::to_string(op.src) +
                             " -" + delta.LabelName(base, op.label) + "-> " +
                             std::to_string(op.dst));
        }
        EdgeId victim = *hit;
        out.erase(hit);
        std::vector<EdgeId>& in = view.TouchIn(op.dst);
        in.erase(std::find(in.begin(), in.end(), victim));
        if (victim < view.base_edges_) {
          view.deleted_base_.insert(victim);
        } else {
          view.added_[victim - view.base_edges_].alive = false;
          ++view.deleted_inserted_;
        }
        break;
      }
      case GraphDelta::OpKind::kSetAttr: {
        if (op.key >= num_attrs) return fail(i, "attribute id out of range");
        if (op.value >= num_values) return fail(i, "value id out of range");
        auto& overlay = view.attr_overlay_[op.src];
        auto hit = std::find_if(overlay.begin(), overlay.end(),
                                [&](const Attribute& a) {
                                  return a.key == op.key;
                                });
        if (hit != overlay.end()) {
          hit->value = op.value;  // last write wins
        } else {
          overlay.push_back({op.key, op.value});
        }
        ++view.attr_sets_;
        break;
      }
    }
  }

  // Materialized lists keep the base invariant: sorted by (neighbor,
  // label), which the matcher's parallel-edge dedup relies on.
  for (auto& list : view.out_lists_) {
    std::sort(list.begin(), list.end(), [&](EdgeId a, EdgeId b) {
      NodeId na = view.EdgeDst(a), nb = view.EdgeDst(b);
      if (na != nb) return na < nb;
      return view.EdgeLabel(a) < view.EdgeLabel(b);
    });
  }
  for (auto& list : view.in_lists_) {
    std::sort(list.begin(), list.end(), [&](EdgeId a, EdgeId b) {
      NodeId na = view.EdgeSrc(a), nb = view.EdgeSrc(b);
      if (na != nb) return na < nb;
      return view.EdgeLabel(a) < view.EdgeLabel(b);
    });
  }

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  view.affected_ = std::move(affected);

  for (const AddedEdge& e : view.added_) {
    if (e.alive) ++view.inserted_alive_;
  }
  view.num_edges_ =
      base.NumEdges() - view.deleted_base_.size() + view.inserted_alive_;
  return view;
}

std::vector<Attribute> GraphView::NodeAttrs(NodeId v) const {
  std::vector<Attribute> out(base_->NodeAttrs(v).begin(),
                             base_->NodeAttrs(v).end());
  auto it = attr_overlay_.find(v);
  if (it != attr_overlay_.end()) {
    for (const Attribute& a : it->second) {
      auto pos = std::find_if(out.begin(), out.end(), [&](const Attribute& b) {
        return b.key == a.key;
      });
      if (pos != out.end()) {
        pos->value = a.value;
      } else {
        out.push_back(a);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Attribute& a, const Attribute& b) {
    return a.key < b.key;
  });
  return out;
}

bool GraphView::HasEdge(NodeId src, NodeId dst, LabelId label) const {
  auto it = out_touched_.find(src);
  if (it == out_touched_.end()) return base_->HasEdge(src, dst, label);
  const std::vector<EdgeId>& edges = out_lists_[it->second];
  // Binary search on dst (lists sorted by (dst, label)), as in the base.
  auto lo = std::lower_bound(edges.begin(), edges.end(), dst,
                             [&](EdgeId e, NodeId d) {
                               return EdgeDst(e) < d;
                             });
  for (; lo != edges.end() && EdgeDst(*lo) == dst; ++lo) {
    if (LabelMatches(EdgeLabel(*lo), label)) return true;
  }
  return false;
}

const std::string& GraphView::LabelName(LabelId l) const {
  return l < base_->labels().size() ? base_->LabelName(l)
                                    : extra_labels_[l - base_->labels().size()];
}

const std::string& GraphView::AttrName(AttrId a) const {
  return a < base_->attrs().size() ? base_->AttrName(a)
                                   : extra_attrs_[a - base_->attrs().size()];
}

const std::string& GraphView::ValueName(ValueId v) const {
  return v < base_->values().size() ? base_->ValueName(v)
                                    : extra_values_[v - base_->values().size()];
}

std::optional<LabelId> GraphView::FindLabel(std::string_view s) const {
  if (auto l = base_->FindLabel(s)) return l;
  for (size_t i = 0; i < extra_labels_.size(); ++i) {
    if (extra_labels_[i] == s) {
      return static_cast<LabelId>(base_->labels().size() + i);
    }
  }
  return std::nullopt;
}

std::optional<AttrId> GraphView::FindAttr(std::string_view s) const {
  if (auto a = base_->FindAttr(s)) return a;
  for (size_t i = 0; i < extra_attrs_.size(); ++i) {
    if (extra_attrs_[i] == s) {
      return static_cast<AttrId>(base_->attrs().size() + i);
    }
  }
  return std::nullopt;
}

std::optional<ValueId> GraphView::FindValue(std::string_view s) const {
  if (auto v = base_->FindValue(s)) return v;
  for (size_t i = 0; i < extra_values_.size(); ++i) {
    if (extra_values_[i] == s) {
      return static_cast<ValueId>(base_->values().size() + i);
    }
  }
  return std::nullopt;
}

PropertyGraph GraphView::Materialize() const {
  PropertyGraph::Builder b;
  // Reproduce the base interners in id order (the builder pre-interns the
  // wildcard, which is base label id 0), then the delta extensions, so
  // every id the view hands out stays valid in the materialized graph.
  for (uint32_t l = 0; l < base_->labels().size(); ++l) {
    b.InternLabel(base_->LabelName(l));
  }
  for (const std::string& s : extra_labels_) b.InternLabel(s);
  for (uint32_t a = 0; a < base_->attrs().size(); ++a) {
    b.InternAttr(base_->AttrName(a));
  }
  for (const std::string& s : extra_attrs_) b.InternAttr(s);
  for (uint32_t v = 0; v < base_->values().size(); ++v) {
    b.InternValue(base_->ValueName(v));
  }
  for (const std::string& s : extra_values_) b.InternValue(s);

  for (NodeId v = 0; v < NumNodes(); ++v) {
    b.AddNodeById(NodeLabel(v));
    if (!NodeName(v).empty()) b.SetName(v, NodeName(v));
    auto it = attr_overlay_.find(v);
    const std::vector<Attribute>* overlay =
        it == attr_overlay_.end() ? nullptr : &it->second;
    for (const Attribute& a : base_->NodeAttrs(v)) {
      bool overridden =
          overlay && std::any_of(overlay->begin(), overlay->end(),
                                 [&](const Attribute& o) {
                                   return o.key == a.key;
                                 });
      if (!overridden) b.SetAttrById(v, a.key, a.value);
    }
    if (overlay) {
      for (const Attribute& a : *overlay) b.SetAttrById(v, a.key, a.value);
    }
  }
  for (EdgeId e = 0; e < base_edges_; ++e) {
    if (deleted_base_.contains(e)) continue;
    b.AddEdgeById(base_->EdgeSrc(e), base_->EdgeDst(e), base_->EdgeLabel(e));
  }
  for (const AddedEdge& e : added_) {
    if (e.alive) b.AddEdgeById(e.src, e.dst, e.label);
  }
  return std::move(b).Build();
}

bool GraphView::ValidateAppended(const GraphDelta& delta, size_t first_op,
                                 std::string* error) const {
  auto fail = [&](size_t op_index, const std::string& msg) {
    if (error) *error = "op " + std::to_string(op_index + 1) + ": " + msg;
    return false;
  };
  const size_t num_labels = base_->labels().size() + delta.extra_labels.size();
  const size_t num_attrs = base_->attrs().size() + delta.extra_attrs.size();
  const size_t num_values = base_->values().size() + delta.extra_values.size();

  // Net insert-minus-delete balance per (src, dst, label) accumulated
  // across the tail so far: a delete is legal iff the view's current
  // matching-edge count plus the balance is positive.
  std::map<std::tuple<NodeId, NodeId, LabelId>, int64_t> pending;
  for (size_t i = first_op; i < delta.ops.size(); ++i) {
    const GraphDelta::Op& op = delta.ops[i];
    if (op.src >= base_->NumNodes()) {
      return fail(i, "node " + std::to_string(op.src) + " out of range");
    }
    switch (op.kind) {
      case GraphDelta::OpKind::kInsertEdge:
      case GraphDelta::OpKind::kDeleteEdge: {
        if (op.dst >= base_->NumNodes()) {
          return fail(i, "node " + std::to_string(op.dst) + " out of range");
        }
        if (op.label >= num_labels) {
          return fail(i, "edge label id out of range");
        }
        int64_t& net = pending[{op.src, op.dst, op.label}];
        if (op.kind == GraphDelta::OpKind::kInsertEdge) {
          ++net;
          break;
        }
        auto out = OutEdges(op.src);
        int64_t present = std::count_if(out.begin(), out.end(), [&](EdgeId e) {
          return EdgeDst(e) == op.dst && EdgeLabel(e) == op.label;
        });
        if (present + net <= 0) {
          return fail(i, "delete of missing edge " + std::to_string(op.src) +
                             " -" + delta.LabelName(*base_, op.label) + "-> " +
                             std::to_string(op.dst));
        }
        --net;
        break;
      }
      case GraphDelta::OpKind::kSetAttr: {
        if (op.key >= num_attrs) return fail(i, "attribute id out of range");
        if (op.value >= num_values) return fail(i, "value id out of range");
        break;
      }
    }
  }
  return true;
}

bool GraphView::AbsorbAppended(const GraphDelta& delta, size_t first_op,
                               std::string* error) {
  if (!ValidateAppended(delta, first_op, error)) return false;
  // The delta's extension vocabulary grew append-only past what the view
  // carries (GraphDelta::Append re-interns by name), so adopting the
  // whole tables keeps every id the view already handed out valid.
  extra_labels_ = delta.extra_labels;
  extra_attrs_ = delta.extra_attrs;
  extra_values_ = delta.extra_values;

  std::vector<NodeId> touched;
  // Keeps the materialized-list invariant -- sorted by (neighbor, label)
  // -- without a full re-sort: one positioned insert per new edge.
  auto sorted_insert = [&](std::vector<EdgeId>& list, EdgeId id, bool out) {
    auto pos =
        std::upper_bound(list.begin(), list.end(), id, [&](EdgeId a, EdgeId b) {
          NodeId na = out ? EdgeDst(a) : EdgeSrc(a);
          NodeId nb = out ? EdgeDst(b) : EdgeSrc(b);
          if (na != nb) return na < nb;
          return EdgeLabel(a) < EdgeLabel(b);
        });
    list.insert(pos, id);
  };
  for (size_t i = first_op; i < delta.ops.size(); ++i) {
    const GraphDelta::Op& op = delta.ops[i];
    touched.push_back(op.src);
    switch (op.kind) {
      case GraphDelta::OpKind::kInsertEdge: {
        touched.push_back(op.dst);
        EdgeId id = base_edges_ + static_cast<EdgeId>(added_.size());
        added_.push_back({op.src, op.dst, op.label, /*alive=*/true});
        sorted_insert(TouchOut(op.src), id, /*out=*/true);
        sorted_insert(TouchIn(op.dst), id, /*out=*/false);
        ++inserted_alive_;
        ++num_edges_;
        break;
      }
      case GraphDelta::OpKind::kDeleteEdge: {
        touched.push_back(op.dst);
        std::vector<EdgeId>& out = TouchOut(op.src);
        auto hit = std::find_if(out.begin(), out.end(), [&](EdgeId e) {
          return EdgeDst(e) == op.dst && EdgeLabel(e) == op.label;
        });
        // ValidateAppended's count balance guarantees a hit.
        EdgeId victim = *hit;
        out.erase(hit);
        std::vector<EdgeId>& in = TouchIn(op.dst);
        in.erase(std::find(in.begin(), in.end(), victim));
        if (victim < base_edges_) {
          deleted_base_.insert(victim);
        } else {
          added_[victim - base_edges_].alive = false;
          ++deleted_inserted_;
          --inserted_alive_;
        }
        --num_edges_;
        break;
      }
      case GraphDelta::OpKind::kSetAttr: {
        auto& overlay = attr_overlay_[op.src];
        auto hit = std::find_if(
            overlay.begin(), overlay.end(),
            [&](const Attribute& a) { return a.key == op.key; });
        if (hit != overlay.end()) {
          hit->value = op.value;  // last write wins
        } else {
          overlay.push_back({op.key, op.value});
        }
        ++attr_sets_;
        break;
      }
    }
  }
  num_ops_ = delta.ops.size();

  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  std::vector<NodeId> merged;
  merged.reserve(affected_.size() + touched.size());
  std::set_union(affected_.begin(), affected_.end(), touched.begin(),
                 touched.end(), std::back_inserter(merged));
  affected_ = std::move(merged);
  return true;
}

}  // namespace gfd
