#include "graph/loader.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/tsv.h"

namespace gfd {

namespace {
void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

// The name a node answers to in TSV files: its own name, or the "n<id>"
// alias SaveGraphTsv emits for unnamed nodes.
std::string NodeAlias(const PropertyGraph& g, NodeId v) {
  const std::string& name = g.NodeName(v);
  if (!name.empty()) return name;
  std::string alias = "n";
  alias += std::to_string(v);
  return alias;
}

// Unescapes one raw field, reporting a line-numbered error on a dangling
// backslash or unknown escape instead of silently keeping corrupt data.
std::optional<std::string> Unescape(std::string_view field, size_t lineno,
                                    std::string* error) {
  auto s = UnescapeField(field);
  if (!s) {
    SetError(error, "line " + std::to_string(lineno) + ": bad escape in '" +
                        std::string(field) + "'");
  }
  return s;
}
}  // namespace

std::optional<PropertyGraph> LoadGraphTsv(std::istream& in,
                                          std::string* error) {
  PropertyGraph::Builder b;
  std::unordered_map<std::string, NodeId> ids;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate CRLF input: getline keeps the '\r', which would otherwise
    // end up inside the last field of every record.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitFields(line);
    if (fields[0] == "L" || fields[0] == "K" || fields[0] == "V") {
      // Vocabulary declaration: intern in file order so a with_vocab save
      // reloads with identical ids (Intern dedups, so re-declaring the
      // builder's pre-interned wildcard is a no-op).
      if (fields.size() < 2) {
        SetError(error, "line " + std::to_string(lineno) + ": short " +
                            std::string(fields[0]) + " record");
        return std::nullopt;
      }
      auto name = Unescape(fields[1], lineno, error);
      if (!name) return std::nullopt;
      if (fields[0] == "L") {
        b.InternLabel(*name);
      } else if (fields[0] == "K") {
        b.InternAttr(*name);
      } else {
        b.InternValue(*name);
      }
    } else if (fields[0] == "N") {
      if (fields.size() < 3) {
        SetError(error, "line " + std::to_string(lineno) + ": short N record");
        return std::nullopt;
      }
      auto name = Unescape(fields[1], lineno, error);
      auto label = Unescape(fields[2], lineno, error);
      if (!name || !label) return std::nullopt;
      if (ids.contains(*name)) {
        SetError(error, "line " + std::to_string(lineno) +
                            ": duplicate node " + *name);
        return std::nullopt;
      }
      NodeId v = b.AddNode(*label);
      b.SetName(v, *name);
      ids.emplace(std::move(*name), v);
      for (size_t i = 3; i < fields.size(); ++i) {
        std::string_view key, value;
        if (!SplitKeyValue(fields[i], &key, &value)) {
          SetError(error, "line " + std::to_string(lineno) +
                              ": attribute without '='");
          return std::nullopt;
        }
        auto k = Unescape(key, lineno, error);
        auto val = Unescape(value, lineno, error);
        if (!k || !val) return std::nullopt;
        b.SetAttr(v, *k, *val);
      }
    } else if (fields[0] == "E") {
      if (fields.size() < 4) {
        SetError(error, "line " + std::to_string(lineno) + ": short E record");
        return std::nullopt;
      }
      auto sname = Unescape(fields[1], lineno, error);
      auto dname = Unescape(fields[2], lineno, error);
      auto label = Unescape(fields[3], lineno, error);
      if (!sname || !dname || !label) return std::nullopt;
      auto src = ids.find(*sname);
      auto dst = ids.find(*dname);
      if (src == ids.end() || dst == ids.end()) {
        SetError(error, "line " + std::to_string(lineno) +
                            ": edge references unknown node");
        return std::nullopt;
      }
      b.AddEdge(src->second, dst->second, *label);
    } else {
      SetError(error, "line " + std::to_string(lineno) + ": unknown tag '" +
                          std::string(fields[0]) + "'");
      return std::nullopt;
    }
  }
  return std::move(b).Build();
}

std::optional<PropertyGraph> LoadGraphTsvFile(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return LoadGraphTsv(in, error);
}

std::optional<GraphDelta> LoadGraphDeltaTsv(std::istream& in,
                                            const PropertyGraph& g,
                                            std::string* error) {
  // Node references resolve through names; unnamed nodes answer to the
  // "n<id>" aliases SaveGraphTsv emits.
  std::unordered_map<std::string, NodeId> ids;
  ids.reserve(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ids.emplace(NodeAlias(g, v), v);
  }

  GraphDelta d;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitFields(line);
    auto at = [&](std::string_view raw) -> std::optional<NodeId> {
      auto name = Unescape(raw, lineno, error);
      if (!name) return std::nullopt;
      auto it = ids.find(*name);
      if (it == ids.end()) {
        SetError(error, "line " + std::to_string(lineno) +
                            ": unknown node '" + *name + "'");
        return std::nullopt;
      }
      return it->second;
    };
    if (fields[0] == "L" || fields[0] == "K" || fields[0] == "V") {
      // Vocabulary preamble: intern in file order so every consumer of
      // the same preamble assigns identical extension ids (Intern*
      // dedups against both the base graph and prior extras).
      if (fields.size() < 2) {
        SetError(error, "line " + std::to_string(lineno) + ": short " +
                            std::string(fields[0]) + " record");
        return std::nullopt;
      }
      auto name = Unescape(fields[1], lineno, error);
      if (!name) return std::nullopt;
      if (fields[0] == "L") {
        d.InternLabel(g, *name);
      } else if (fields[0] == "K") {
        d.InternAttr(g, *name);
      } else {
        d.InternValue(g, *name);
      }
    } else if (fields[0] == "E+" || fields[0] == "E-") {
      if (fields.size() < 4) {
        SetError(error, "line " + std::to_string(lineno) + ": short " +
                            std::string(fields[0]) + " record");
        return std::nullopt;
      }
      auto src = at(fields[1]);
      auto dst = at(fields[2]);
      if (!src || !dst) return std::nullopt;
      auto label = Unescape(fields[3], lineno, error);
      if (!label) return std::nullopt;
      LabelId l = d.InternLabel(g, *label);
      if (fields[0] == "E+") {
        d.InsertEdge(*src, *dst, l);
      } else {
        d.DeleteEdge(*src, *dst, l);
      }
    } else if (fields[0] == "A") {
      if (fields.size() < 3) {
        SetError(error, "line " + std::to_string(lineno) + ": short A record");
        return std::nullopt;
      }
      auto v = at(fields[1]);
      if (!v) return std::nullopt;
      for (size_t i = 2; i < fields.size(); ++i) {
        std::string_view key, value;
        if (!SplitKeyValue(fields[i], &key, &value)) {
          SetError(error, "line " + std::to_string(lineno) +
                              ": attribute without '='");
          return std::nullopt;
        }
        auto k = Unescape(key, lineno, error);
        auto val = Unescape(value, lineno, error);
        if (!k || !val) return std::nullopt;
        d.SetAttr(*v, d.InternAttr(g, *k), d.InternValue(g, *val));
      }
    } else {
      SetError(error, "line " + std::to_string(lineno) + ": unknown tag '" +
                          std::string(fields[0]) + "'");
      return std::nullopt;
    }
  }
  return d;
}

std::optional<GraphDelta> LoadGraphDeltaTsvFile(const std::string& path,
                                                const PropertyGraph& g,
                                                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return LoadGraphDeltaTsv(in, g, error);
}

void SaveGraphDeltaTsv(const PropertyGraph& g, const GraphDelta& d,
                       std::ostream& out, bool with_vocab) {
  if (with_vocab) {
    for (const std::string& l : d.extra_labels) {
      out << "L\t" << EscapeField(l) << '\n';
    }
    for (const std::string& k : d.extra_attrs) {
      out << "K\t" << EscapeField(k) << '\n';
    }
    for (const std::string& v : d.extra_values) {
      out << "V\t" << EscapeField(v) << '\n';
    }
  }
  auto name_of = [&](NodeId v) { return EscapeField(NodeAlias(g, v)); };
  for (const GraphDelta::Op& op : d.ops) {
    switch (op.kind) {
      case GraphDelta::OpKind::kInsertEdge:
      case GraphDelta::OpKind::kDeleteEdge:
        out << (op.kind == GraphDelta::OpKind::kInsertEdge ? "E+" : "E-")
            << '\t' << name_of(op.src) << '\t' << name_of(op.dst) << '\t'
            << EscapeField(d.LabelName(g, op.label)) << '\n';
        break;
      case GraphDelta::OpKind::kSetAttr:
        out << "A\t" << name_of(op.src) << '\t'
            << EscapeField(d.AttrName(g, op.key)) << '='
            << EscapeField(d.ValueName(g, op.value)) << '\n';
        break;
    }
  }
}

void SaveGraphTsv(const PropertyGraph& g, std::ostream& out,
                  bool with_vocab) {
  if (with_vocab) {
    for (uint32_t l = 0; l < g.labels().size(); ++l) {
      out << "L\t" << EscapeField(g.LabelName(l)) << '\n';
    }
    for (uint32_t a = 0; a < g.attrs().size(); ++a) {
      out << "K\t" << EscapeField(g.AttrName(a)) << '\n';
    }
    for (uint32_t v = 0; v < g.values().size(); ++v) {
      out << "V\t" << EscapeField(g.ValueName(v)) << '\n';
    }
  }
  auto name_of = [&](NodeId v) { return EscapeField(NodeAlias(g, v)); };
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out << "N\t" << name_of(v) << '\t'
        << EscapeField(g.LabelName(g.NodeLabel(v)));
    for (const auto& a : g.NodeAttrs(v)) {
      out << '\t' << EscapeField(g.AttrName(a.key)) << '='
          << EscapeField(g.ValueName(a.value));
    }
    out << '\n';
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out << "E\t" << name_of(g.EdgeSrc(e)) << '\t' << name_of(g.EdgeDst(e))
        << '\t' << EscapeField(g.LabelName(g.EdgeLabel(e))) << '\n';
  }
}

}  // namespace gfd
