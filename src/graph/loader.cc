#include "graph/loader.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/tsv.h"

namespace gfd {

namespace {
void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}
}  // namespace

std::optional<PropertyGraph> LoadGraphTsv(std::istream& in,
                                          std::string* error) {
  PropertyGraph::Builder b;
  std::unordered_map<std::string, NodeId> ids;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate CRLF input: getline keeps the '\r', which would otherwise
    // end up inside the last field of every record.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitFields(line);
    if (fields[0] == "N") {
      if (fields.size() < 3) {
        SetError(error, "line " + std::to_string(lineno) + ": short N record");
        return std::nullopt;
      }
      std::string name(fields[1]);
      if (ids.count(name)) {
        SetError(error,
                 "line " + std::to_string(lineno) + ": duplicate node " + name);
        return std::nullopt;
      }
      NodeId v = b.AddNode(fields[2]);
      b.SetName(v, name);
      ids.emplace(std::move(name), v);
      for (size_t i = 3; i < fields.size(); ++i) {
        std::string_view key, value;
        if (!SplitKeyValue(fields[i], &key, &value)) {
          SetError(error, "line " + std::to_string(lineno) +
                              ": attribute without '='");
          return std::nullopt;
        }
        b.SetAttr(v, key, value);
      }
    } else if (fields[0] == "E") {
      if (fields.size() < 4) {
        SetError(error, "line " + std::to_string(lineno) + ": short E record");
        return std::nullopt;
      }
      auto src = ids.find(std::string(fields[1]));
      auto dst = ids.find(std::string(fields[2]));
      if (src == ids.end() || dst == ids.end()) {
        SetError(error, "line " + std::to_string(lineno) +
                            ": edge references unknown node");
        return std::nullopt;
      }
      b.AddEdge(src->second, dst->second, fields[3]);
    } else {
      SetError(error, "line " + std::to_string(lineno) + ": unknown tag '" +
                          std::string(fields[0]) + "'");
      return std::nullopt;
    }
  }
  return std::move(b).Build();
}

std::optional<PropertyGraph> LoadGraphTsvFile(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return LoadGraphTsv(in, error);
}

std::optional<GraphDelta> LoadGraphDeltaTsv(std::istream& in,
                                            const PropertyGraph& g,
                                            std::string* error) {
  // Node references resolve through names; unnamed nodes answer to the
  // "n<id>" aliases SaveGraphTsv emits.
  std::unordered_map<std::string, NodeId> ids;
  ids.reserve(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const std::string& name = g.NodeName(v);
    ids.emplace(name.empty() ? "n" + std::to_string(v) : name, v);
  }

  GraphDelta d;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitFields(line);
    auto at = [&](std::string_view name) -> std::optional<NodeId> {
      auto it = ids.find(std::string(name));
      if (it == ids.end()) {
        SetError(error, "line " + std::to_string(lineno) +
                            ": unknown node '" + std::string(name) + "'");
        return std::nullopt;
      }
      return it->second;
    };
    if (fields[0] == "E+" || fields[0] == "E-") {
      if (fields.size() < 4) {
        SetError(error, "line " + std::to_string(lineno) + ": short " +
                            std::string(fields[0]) + " record");
        return std::nullopt;
      }
      auto src = at(fields[1]);
      auto dst = at(fields[2]);
      if (!src || !dst) return std::nullopt;
      LabelId l = d.InternLabel(g, fields[3]);
      if (fields[0] == "E+") {
        d.InsertEdge(*src, *dst, l);
      } else {
        d.DeleteEdge(*src, *dst, l);
      }
    } else if (fields[0] == "A") {
      if (fields.size() < 3) {
        SetError(error, "line " + std::to_string(lineno) + ": short A record");
        return std::nullopt;
      }
      auto v = at(fields[1]);
      if (!v) return std::nullopt;
      for (size_t i = 2; i < fields.size(); ++i) {
        std::string_view key, value;
        if (!SplitKeyValue(fields[i], &key, &value)) {
          SetError(error, "line " + std::to_string(lineno) +
                              ": attribute without '='");
          return std::nullopt;
        }
        d.SetAttr(*v, d.InternAttr(g, key), d.InternValue(g, value));
      }
    } else {
      SetError(error, "line " + std::to_string(lineno) + ": unknown tag '" +
                          std::string(fields[0]) + "'");
      return std::nullopt;
    }
  }
  return d;
}

std::optional<GraphDelta> LoadGraphDeltaTsvFile(const std::string& path,
                                                const PropertyGraph& g,
                                                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return LoadGraphDeltaTsv(in, g, error);
}

void SaveGraphDeltaTsv(const PropertyGraph& g, const GraphDelta& d,
                       std::ostream& out) {
  auto name_of = [&](NodeId v) {
    const std::string& name = g.NodeName(v);
    return name.empty() ? "n" + std::to_string(v) : name;
  };
  for (const GraphDelta::Op& op : d.ops) {
    switch (op.kind) {
      case GraphDelta::OpKind::kInsertEdge:
      case GraphDelta::OpKind::kDeleteEdge:
        out << (op.kind == GraphDelta::OpKind::kInsertEdge ? "E+" : "E-")
            << '\t' << name_of(op.src) << '\t' << name_of(op.dst) << '\t'
            << d.LabelName(g, op.label) << '\n';
        break;
      case GraphDelta::OpKind::kSetAttr:
        out << "A\t" << name_of(op.src) << '\t' << d.AttrName(g, op.key)
            << '=' << d.ValueName(g, op.value) << '\n';
        break;
    }
  }
}

void SaveGraphTsv(const PropertyGraph& g, std::ostream& out) {
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const std::string& name = g.NodeName(v);
    out << "N\t" << (name.empty() ? "n" + std::to_string(v) : name) << '\t'
        << g.LabelName(g.NodeLabel(v));
    for (const auto& a : g.NodeAttrs(v)) {
      out << '\t' << g.AttrName(a.key) << '=' << g.ValueName(a.value);
    }
    out << '\n';
  }
  auto name_of = [&](NodeId v) {
    const std::string& name = g.NodeName(v);
    return name.empty() ? "n" + std::to_string(v) : name;
  };
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out << "E\t" << name_of(g.EdgeSrc(e)) << '\t' << name_of(g.EdgeDst(e))
        << '\t' << g.LabelName(g.EdgeLabel(e)) << '\n';
  }
}

}  // namespace gfd
