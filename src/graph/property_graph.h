// The property-graph data model of the paper (Section 2.1):
// directed graphs G = (V, E, L, F_A) where nodes and edges carry labels
// from an alphabet Theta and every node carries a tuple of attributes
// F_A(v) = (A1 = a1, ..., An = an).
//
// The graph is built once through PropertyGraph::Builder and is immutable
// (and therefore freely shared across threads) afterwards. Adjacency is
// stored in CSR form, out- and in-directed, with per-node edge lists sorted
// by (neighbor, label) so that edge-existence probes are O(log deg).
#ifndef GFD_GRAPH_PROPERTY_GRAPH_H_
#define GFD_GRAPH_PROPERTY_GRAPH_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/interner.h"

namespace gfd {

/// One attribute of a node: key id + value id (both interned).
struct Attribute {
  AttrId key;
  ValueId value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// Immutable directed labeled multigraph with node attributes.
class PropertyGraph {
 public:
  /// Incrementally assembles a PropertyGraph. String-based helpers intern
  /// labels/attributes on the fly; id-based helpers exist for generators
  /// that pre-intern their vocabulary.
  class Builder {
   public:
    Builder();

    /// Adds a node with label `label` and returns its id.
    NodeId AddNode(std::string_view label);
    /// Adds a node with a pre-interned label id.
    NodeId AddNodeById(LabelId label);

    /// Attaches attribute key=value to node v (last write wins per key).
    void SetAttr(NodeId v, std::string_view key, std::string_view value);
    void SetAttrById(NodeId v, AttrId key, ValueId value);

    /// Adds a directed edge src -> dst with label `label`.
    void AddEdge(NodeId src, NodeId dst, std::string_view label);
    void AddEdgeById(NodeId src, NodeId dst, LabelId label);

    /// Optional human-readable name for node v (used by loaders/examples).
    void SetName(NodeId v, std::string_view name);

    /// Interns a label (shared node/edge alphabet Theta).
    LabelId InternLabel(std::string_view s) { return labels_.Intern(s); }
    AttrId InternAttr(std::string_view s) { return attrs_.Intern(s); }
    ValueId InternValue(std::string_view s) { return values_.Intern(s); }

    size_t num_nodes() const { return node_labels_.size(); }
    size_t num_edges() const { return edge_src_.size(); }

    /// Finalizes into an immutable graph. The builder is consumed.
    PropertyGraph Build() &&;

   private:
    friend class PropertyGraph;
    StringInterner labels_;
    StringInterner attrs_;
    StringInterner values_;
    std::vector<LabelId> node_labels_;
    std::vector<std::vector<Attribute>> node_attrs_;
    std::vector<NodeId> edge_src_;
    std::vector<NodeId> edge_dst_;
    std::vector<LabelId> edge_label_;
    std::vector<std::string> node_names_;
  };

  PropertyGraph() = default;

  // --- Size ---------------------------------------------------------------
  size_t NumNodes() const { return node_labels_.size(); }
  size_t NumEdges() const { return edge_src_.size(); }

  // --- Nodes ---------------------------------------------------------------
  LabelId NodeLabel(NodeId v) const { return node_labels_[v]; }

  /// Attributes of v, sorted by key id.
  std::span<const Attribute> NodeAttrs(NodeId v) const {
    return {attr_data_.data() + attr_offsets_[v],
            attr_offsets_[v + 1] - attr_offsets_[v]};
  }

  /// Value of attribute `key` at node v, if present.
  std::optional<ValueId> GetAttr(NodeId v, AttrId key) const;

  /// All nodes carrying label `label` (empty span for unknown labels).
  std::span<const NodeId> NodesWithLabel(LabelId label) const;

  /// Human-readable node name if the source data provided one, else "".
  const std::string& NodeName(NodeId v) const;

  // --- Edges ---------------------------------------------------------------
  NodeId EdgeSrc(EdgeId e) const { return edge_src_[e]; }
  NodeId EdgeDst(EdgeId e) const { return edge_dst_[e]; }
  LabelId EdgeLabel(EdgeId e) const { return edge_label_[e]; }

  /// Out-edges of v as edge ids, sorted by (dst, label).
  std::span<const EdgeId> OutEdges(NodeId v) const {
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// In-edges of v as edge ids, sorted by (src, label).
  std::span<const EdgeId> InEdges(NodeId v) const {
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  size_t Degree(NodeId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff an edge src -> dst with label matching `label` exists
  /// (`label` may be the wildcard, which matches any edge label).
  bool HasEdge(NodeId src, NodeId dst, LabelId label) const;

  // --- Vocabulary ----------------------------------------------------------
  const StringInterner& labels() const { return labels_; }
  const StringInterner& attrs() const { return attrs_; }
  const StringInterner& values() const { return values_; }

  /// Lookup helpers; return kWildcardLabel/kNoValue-style sentinels only via
  /// std::optional to keep misuse visible.
  std::optional<LabelId> FindLabel(std::string_view s) const {
    return labels_.Find(s);
  }
  std::optional<AttrId> FindAttr(std::string_view s) const {
    return attrs_.Find(s);
  }
  std::optional<ValueId> FindValue(std::string_view s) const {
    return values_.Find(s);
  }

  const std::string& LabelName(LabelId l) const { return labels_.Get(l); }
  const std::string& AttrName(AttrId a) const { return attrs_.Get(a); }
  const std::string& ValueName(ValueId v) const { return values_.Get(v); }

  /// Maximum node degree (paper's parameter d in Theorem 1(b)).
  size_t MaxDegree() const;

 private:
  friend class Builder;

  StringInterner labels_;
  StringInterner attrs_;
  StringInterner values_;

  std::vector<LabelId> node_labels_;
  std::vector<uint32_t> attr_offsets_;  // NumNodes()+1 entries
  std::vector<Attribute> attr_data_;

  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<LabelId> edge_label_;

  std::vector<uint32_t> out_offsets_;
  std::vector<EdgeId> out_edges_;
  std::vector<uint32_t> in_offsets_;
  std::vector<EdgeId> in_edges_;

  // Nodes grouped by label: label_index_offsets_[l]..[l+1] into label_nodes_.
  std::vector<uint32_t> label_index_offsets_;
  std::vector<NodeId> label_nodes_;

  std::vector<std::string> node_names_;
};

}  // namespace gfd

#endif  // GFD_GRAPH_PROPERTY_GRAPH_H_
