#include "graph/subgraph.h"

namespace gfd {

PropertyGraph ExtractSubgraph(const PropertyGraph& g,
                              std::span<const char> resident) {
  PropertyGraph::Builder b;
  // Re-intern the full vocabulary in id order so every id is preserved
  // verbatim (Intern dedups the builder's pre-interned wildcard).
  for (uint32_t l = 0; l < g.labels().size(); ++l) {
    b.InternLabel(g.LabelName(l));
  }
  for (uint32_t a = 0; a < g.attrs().size(); ++a) {
    b.InternAttr(g.AttrName(a));
  }
  for (uint32_t v = 0; v < g.values().size(); ++v) {
    b.InternValue(g.ValueName(v));
  }
  auto is_resident = [&](NodeId v) {
    return v < resident.size() && resident[v] != 0;
  };
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    NodeId id = b.AddNodeById(g.NodeLabel(v));
    (void)id;  // ids are dense, so id == v by construction
    if (!g.NodeName(v).empty()) b.SetName(v, g.NodeName(v));
    for (const Attribute& a : g.NodeAttrs(v)) {
      b.SetAttrById(v, a.key, a.value);
    }
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (is_resident(g.EdgeSrc(e)) && is_resident(g.EdgeDst(e))) {
      b.AddEdgeById(g.EdgeSrc(e), g.EdgeDst(e), g.EdgeLabel(e));
    }
  }
  return std::move(b).Build();
}

}  // namespace gfd
