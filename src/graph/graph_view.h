// Update streams over immutable graphs: GraphDelta + GraphView.
//
// The serving workload is not a one-shot scan -- it is a stream of small
// updates against a large, mostly-stable graph. PropertyGraph is immutable
// CSR (property_graph.h), which is exactly right for the read-heavy side
// but cannot absorb updates. A GraphDelta is an ordered batch of updates
// (edge insert, edge delete, attribute set); a GraphView applies one on
// top of a base PropertyGraph *without rebuilding it*: adjacency is
// materialized only for the nodes the delta touches (every other node
// reads the base CSR spans untouched), attributes are a small overlay,
// and vocabulary the base graph never interned lives in an id-space
// extension past the base interner sizes.
//
// The view satisfies the same read interface the matcher and the literal
// evaluator consume (match/matcher.h and gfd/gfd.h are templated over the
// graph type), so every query -- subgraph isomorphism, violation
// detection -- runs against a view exactly as it runs against a graph.
// GraphView::Materialize() compacts a view back into a standalone
// PropertyGraph (ids preserved), which is how snapshots are rolled
// forward under repeated delta application.
#ifndef GFD_GRAPH_GRAPH_VIEW_H_
#define GFD_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/property_graph.h"
#include "util/ids.h"

namespace gfd {

/// An ordered batch of graph updates. Ops reference the base graph's node
/// ids and vocabulary ids; strings the base graph never interned are
/// appended to the extra_* tables and referenced by ids past the base
/// interner sizes (Intern* helpers do the bookkeeping).
struct GraphDelta {
  enum class OpKind : uint8_t {
    kInsertEdge,  ///< add edge src -label-> dst
    kDeleteEdge,  ///< remove one edge src -label-> dst (exact label)
    kSetAttr,     ///< set src.key = value (insert-or-overwrite)
  };

  struct Op {
    OpKind kind;
    NodeId src = kNoNode;      ///< edge source / attribute's node
    NodeId dst = kNoNode;      ///< edge destination (edge ops only)
    LabelId label = 0;         ///< edge label (edge ops only)
    AttrId key = 0;            ///< attribute key (kSetAttr only)
    ValueId value = kNoValue;  ///< attribute value (kSetAttr only)

    friend bool operator==(const Op&, const Op&) = default;
  };

  std::vector<Op> ops;
  /// Vocabulary beyond the base graph's interners; id of extra_labels[i]
  /// is base.labels().size() + i (same scheme for attrs and values).
  std::vector<std::string> extra_labels;
  std::vector<std::string> extra_attrs;
  std::vector<std::string> extra_values;

  void InsertEdge(NodeId src, NodeId dst, LabelId label) {
    ops.push_back({OpKind::kInsertEdge, src, dst, label, 0, kNoValue});
  }
  void DeleteEdge(NodeId src, NodeId dst, LabelId label) {
    ops.push_back({OpKind::kDeleteEdge, src, dst, label, 0, kNoValue});
  }
  void SetAttr(NodeId v, AttrId key, ValueId value) {
    ops.push_back({OpKind::kSetAttr, v, kNoNode, 0, key, value});
  }

  /// Resolves `s` against the base interner, then against the extras,
  /// appending a fresh extension id when unseen. Deltas are small, so the
  /// extras are scanned linearly.
  LabelId InternLabel(const PropertyGraph& base, std::string_view s);
  AttrId InternAttr(const PropertyGraph& base, std::string_view s);
  ValueId InternValue(const PropertyGraph& base, std::string_view s);

  /// Name of a (possibly extension) id under this delta's vocabulary.
  const std::string& LabelName(const PropertyGraph& base, LabelId l) const;
  const std::string& AttrName(const PropertyGraph& base, AttrId a) const;
  const std::string& ValueName(const PropertyGraph& base, ValueId v) const;

  /// Appends `other` -- a delta over the same `base` -- to this one: ops
  /// are concatenated in stream order and `other`'s extension vocabulary
  /// is re-interned *by name*, so two batches that each introduced the
  /// same new string agree on its id in the merged delta. This is how an
  /// update stream of many batches collapses into the single overlay
  /// GraphView::Apply consumes.
  void Append(const PropertyGraph& base, const GraphDelta& other);

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

/// A base graph with one delta applied on top. Read-only once built;
/// cheap to build (cost proportional to the delta and the degrees of the
/// touched nodes, not to the graph). Keeps a pointer to the base graph,
/// which must outlive the view; the delta is copied out and need not.
///
/// Edge-id space: ids < base.NumEdges() are base edges, ids >= that index
/// the view's inserted-edge table. Deleted edges simply never appear in
/// any adjacency list.
class GraphView {
 public:
  /// Applies `delta` to `base`. Returns nullopt (and sets *error to a
  /// message naming the offending op) when an op references an
  /// out-of-range node/vocabulary id or deletes an edge that does not
  /// exist at that point of the stream.
  static std::optional<GraphView> Apply(const PropertyGraph& base,
                                        const GraphDelta& delta,
                                        std::string* error = nullptr);

  const PropertyGraph& base() const { return *base_; }

  // --- Size ----------------------------------------------------------------
  size_t NumNodes() const { return base_->NumNodes(); }
  size_t NumEdges() const { return num_edges_; }

  // --- Nodes (labels and names are delta-invariant) ------------------------
  LabelId NodeLabel(NodeId v) const { return base_->NodeLabel(v); }
  std::span<const NodeId> NodesWithLabel(LabelId label) const {
    return base_->NodesWithLabel(label);
  }
  const std::string& NodeName(NodeId v) const { return base_->NodeName(v); }

  /// Value of attribute `key` at node v under the overlay.
  std::optional<ValueId> GetAttr(NodeId v, AttrId key) const {
    auto it = attr_overlay_.find(v);
    if (it != attr_overlay_.end()) {
      for (const Attribute& a : it->second) {
        if (a.key == key) return a.value;
      }
    }
    return base_->GetAttr(v, key);
  }

  /// All attributes of v under the overlay (base attrs with overlay
  /// values winning per key), sorted by key. Allocates; meant for
  /// shipping or serializing a node's state, not for hot match loops.
  std::vector<Attribute> NodeAttrs(NodeId v) const;

  // --- Edges ---------------------------------------------------------------
  NodeId EdgeSrc(EdgeId e) const {
    return e < base_edges_ ? base_->EdgeSrc(e) : added_[e - base_edges_].src;
  }
  NodeId EdgeDst(EdgeId e) const {
    return e < base_edges_ ? base_->EdgeDst(e) : added_[e - base_edges_].dst;
  }
  LabelId EdgeLabel(EdgeId e) const {
    return e < base_edges_ ? base_->EdgeLabel(e)
                           : added_[e - base_edges_].label;
  }

  /// Out-edges of v, sorted by (dst, label); the base CSR span when v's
  /// out-adjacency is untouched by the delta.
  std::span<const EdgeId> OutEdges(NodeId v) const {
    auto it = out_touched_.find(v);
    if (it == out_touched_.end()) return base_->OutEdges(v);
    return out_lists_[it->second];
  }
  /// In-edges of v, sorted by (src, label).
  std::span<const EdgeId> InEdges(NodeId v) const {
    auto it = in_touched_.find(v);
    if (it == in_touched_.end()) return base_->InEdges(v);
    return in_lists_[it->second];
  }

  size_t OutDegree(NodeId v) const { return OutEdges(v).size(); }
  size_t InDegree(NodeId v) const { return InEdges(v).size(); }
  size_t Degree(NodeId v) const { return OutDegree(v) + InDegree(v); }

  /// True iff an edge src -> dst with a label matching `label` exists in
  /// the view (`label` may be the wildcard).
  bool HasEdge(NodeId src, NodeId dst, LabelId label) const;

  /// True when the delta changed v's adjacency in either direction (used
  /// by incremental detection to walk old and new edges in one BFS).
  bool AdjacencyChanged(NodeId v) const {
    return out_touched_.contains(v) || in_touched_.contains(v);
  }

  /// The attribute writes the delta applied at v (empty when none): just
  /// the overlayed keys, NOT merged with base attrs -- the footprint
  /// detection's skip gate wants exactly "which keys did this batch
  /// touch", which NodeAttrs cannot answer.
  std::span<const Attribute> OverlayAttrs(NodeId v) const {
    auto it = attr_overlay_.find(v);
    if (it == attr_overlay_.end()) return {};
    return it->second;
  }

  // --- Vocabulary (base + delta extension ids) -----------------------------
  const std::string& LabelName(LabelId l) const;
  const std::string& AttrName(AttrId a) const;
  const std::string& ValueName(ValueId v) const;
  std::optional<LabelId> FindLabel(std::string_view s) const;
  std::optional<AttrId> FindAttr(std::string_view s) const;
  std::optional<ValueId> FindValue(std::string_view s) const;

  // --- Delta introspection -------------------------------------------------
  /// Vertices the delta touched (edge endpoints + attribute targets),
  /// sorted ascending and unique. The seed set of incremental detection:
  /// any match whose violation status differs between base and view
  /// contains at least one of these nodes.
  std::span<const NodeId> AffectedNodes() const { return affected_; }

  size_t NumDeltaOps() const { return num_ops_; }
  size_t NumInsertedEdges() const { return inserted_alive_; }
  size_t NumDeletedEdges() const {
    return deleted_base_.size() + deleted_inserted_;
  }
  size_t NumAttrSets() const { return attr_sets_; }

  /// Compacts the view into a standalone PropertyGraph. Node ids, label /
  /// attribute / value ids (including delta extensions), and node names
  /// are preserved, so query results over the materialized graph compare
  /// equal to results over the view; edge ids are renumbered.
  PropertyGraph Materialize() const;

  // --- Incremental (in-place) apply ----------------------------------------
  /// Dry-run of AbsorbAppended: checks that the ops `delta` gained since
  /// this view last absorbed it -- ops[first_op, delta.size()) -- can
  /// apply on top of the current view state. Cost is O(batch + touched
  /// degrees), independent of the overlay size. Error text matches
  /// Apply's ("op N: ...", N 1-based and absolute within `delta`).
  /// Delete validity is count-based per (src, dst, label), which is
  /// equivalent to Apply's pick-any-matching-edge resolution: edges with
  /// an identical key are interchangeable for existence.
  bool ValidateAppended(const GraphDelta& delta, size_t first_op,
                        std::string* error = nullptr) const;

  /// In-place incremental apply: absorbs ops[first_op, delta.size()) of
  /// `delta` into this view. Precondition: the view currently reflects
  /// exactly delta.ops[0, first_op) over the same base, and `delta`'s
  /// extension vocabulary grew append-only (GraphDelta::Append
  /// guarantees both -- this is the serving overlay's shape). Validates
  /// first; returns false with the view unchanged when the tail cannot
  /// apply. This is what keeps GraphStore::Append at O(batch) instead of
  /// re-applying the whole overlay per batch.
  bool AbsorbAppended(const GraphDelta& delta, size_t first_op,
                      std::string* error = nullptr);

 private:
  struct AddedEdge {
    NodeId src;
    NodeId dst;
    LabelId label;
    bool alive;  ///< false when a later delete consumed this insert
  };

  GraphView() = default;

  // Returns the mutable materialized list for v, copying the base span on
  // first touch.
  std::vector<EdgeId>& TouchOut(NodeId v);
  std::vector<EdgeId>& TouchIn(NodeId v);

  const PropertyGraph* base_ = nullptr;
  EdgeId base_edges_ = 0;  ///< base_->NumEdges(), the added-id offset
  size_t num_edges_ = 0;
  size_t num_ops_ = 0;
  size_t inserted_alive_ = 0;
  size_t deleted_inserted_ = 0;
  size_t attr_sets_ = 0;

  std::vector<AddedEdge> added_;
  std::unordered_set<EdgeId> deleted_base_;

  // Touched-node adjacency: node -> index into the materialized lists.
  std::unordered_map<NodeId, uint32_t> out_touched_;
  std::unordered_map<NodeId, uint32_t> in_touched_;
  std::vector<std::vector<EdgeId>> out_lists_;
  std::vector<std::vector<EdgeId>> in_lists_;

  // Attribute overlay: per node, the keys the delta set (tiny lists).
  std::unordered_map<NodeId, std::vector<Attribute>> attr_overlay_;

  std::vector<NodeId> affected_;

  std::vector<std::string> extra_labels_;
  std::vector<std::string> extra_attrs_;
  std::vector<std::string> extra_values_;
};

}  // namespace gfd

#endif  // GFD_GRAPH_GRAPH_VIEW_H_
