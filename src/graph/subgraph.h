// Id-stable subgraph extraction for partitioned storage: a fragment's
// resident view keeps the full node table and vocabulary of the source
// graph (every NodeId / LabelId / AttrId / ValueId means the same thing
// in every fragment) while holding only the edges whose endpoints are
// both resident. Compiled rule sets, logged deltas, and violation
// records therefore transfer between the global graph and any fragment
// without translation.
#ifndef GFD_GRAPH_SUBGRAPH_H_
#define GFD_GRAPH_SUBGRAPH_H_

#include <span>

#include "graph/property_graph.h"

namespace gfd {

/// Extracts the subgraph of `g` induced on the resident node set:
/// vocabulary re-interned in id order, every node row preserved (label,
/// name, attributes), and exactly the edges with both endpoints
/// resident (`resident[v] != 0`; nodes past resident.size() are
/// non-resident). Node and vocabulary ids are identical to `g`'s; edge
/// ids are renumbered in `g`'s edge order.
PropertyGraph ExtractSubgraph(const PropertyGraph& g,
                              std::span<const char> resident);

}  // namespace gfd

#endif  // GFD_GRAPH_SUBGRAPH_H_
