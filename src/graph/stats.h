// Graph statistics used to seed GFD discovery:
//  - frequent "edge triples" (source label, edge label, destination label)
//    that drive vertical spawning (VSpawn, Section 5.1), and
//  - frequent values per attribute that drive literal generation
//    (HSpawn; the paper takes the 5 most frequent values per attribute).
#ifndef GFD_GRAPH_STATS_H_
#define GFD_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "util/ids.h"

namespace gfd {

/// A (source-label, edge-label, destination-label) triple with its count.
struct EdgeTriple {
  LabelId src_label;
  LabelId edge_label;
  LabelId dst_label;
  uint64_t count;

  friend bool operator==(const EdgeTriple&, const EdgeTriple&) = default;
};

/// A (value, count) pair for one attribute key.
struct ValueFreq {
  ValueId value;
  uint64_t count;
};

/// Precomputed statistics over one graph.
class GraphStats {
 public:
  /// Scans `g` once; O(|V| + |E|).
  explicit GraphStats(const PropertyGraph& g);

  /// All distinct edge triples, sorted by descending count.
  const std::vector<EdgeTriple>& edge_triples() const { return triples_; }

  /// Edge triples with count >= min_count.
  std::vector<EdgeTriple> FrequentTriples(uint64_t min_count) const;

  /// Top `k` most frequent values of attribute `key` (fewer if the
  /// attribute has fewer distinct values).
  std::vector<ValueFreq> TopValues(AttrId key, size_t k) const;

  /// Number of nodes labeled `l`.
  uint64_t LabelCount(LabelId l) const {
    return l < label_counts_.size() ? label_counts_[l] : 0;
  }

  /// Size of the label vocabulary (node + edge labels + wildcard).
  size_t num_labels() const { return label_counts_.size(); }

  /// Attribute keys observed in the graph, ascending.
  const std::vector<AttrId>& attr_keys() const { return attr_keys_; }

 private:
  std::vector<EdgeTriple> triples_;
  std::vector<uint64_t> label_counts_;
  std::vector<AttrId> attr_keys_;
  // Per attribute key: (value, count) sorted by descending count.
  std::vector<std::vector<ValueFreq>> value_freqs_;
};

}  // namespace gfd

#endif  // GFD_GRAPH_STATS_H_
