#include "graph/property_graph.h"

#include <algorithm>
#include <cassert>

namespace gfd {

PropertyGraph::Builder::Builder() {
  // Reserve label id 0 for the wildcard so that pattern labels and graph
  // labels share one interner (graph nodes never actually carry '_').
  labels_.Intern("_");
}

NodeId PropertyGraph::Builder::AddNode(std::string_view label) {
  return AddNodeById(labels_.Intern(label));
}

NodeId PropertyGraph::Builder::AddNodeById(LabelId label) {
  NodeId id = static_cast<NodeId>(node_labels_.size());
  node_labels_.push_back(label);
  node_attrs_.emplace_back();
  return id;
}

void PropertyGraph::Builder::SetAttr(NodeId v, std::string_view key,
                                     std::string_view value) {
  SetAttrById(v, attrs_.Intern(key), values_.Intern(value));
}

void PropertyGraph::Builder::SetAttrById(NodeId v, AttrId key, ValueId value) {
  assert(v < node_attrs_.size());
  for (auto& a : node_attrs_[v]) {
    if (a.key == key) {
      a.value = value;
      return;
    }
  }
  node_attrs_[v].push_back({key, value});
}

void PropertyGraph::Builder::AddEdge(NodeId src, NodeId dst,
                                     std::string_view label) {
  AddEdgeById(src, dst, labels_.Intern(label));
}

void PropertyGraph::Builder::AddEdgeById(NodeId src, NodeId dst,
                                         LabelId label) {
  assert(src < node_labels_.size() && dst < node_labels_.size());
  edge_src_.push_back(src);
  edge_dst_.push_back(dst);
  edge_label_.push_back(label);
}

void PropertyGraph::Builder::SetName(NodeId v, std::string_view name) {
  if (node_names_.size() < node_labels_.size()) {
    node_names_.resize(node_labels_.size());
  }
  node_names_[v] = std::string(name);
}

PropertyGraph PropertyGraph::Builder::Build() && {
  PropertyGraph g;
  g.labels_ = std::move(labels_);
  g.attrs_ = std::move(attrs_);
  g.values_ = std::move(values_);
  g.node_labels_ = std::move(node_labels_);
  g.edge_src_ = std::move(edge_src_);
  g.edge_dst_ = std::move(edge_dst_);
  g.edge_label_ = std::move(edge_label_);
  g.node_names_ = std::move(node_names_);

  const size_t n = g.node_labels_.size();
  const size_t m = g.edge_src_.size();

  // Attributes: flatten, sorted by key per node.
  g.attr_offsets_.assign(n + 1, 0);
  size_t total_attrs = 0;
  for (auto& av : node_attrs_) total_attrs += av.size();
  g.attr_data_.reserve(total_attrs);
  for (size_t v = 0; v < n; ++v) {
    auto& av = node_attrs_[v];
    std::sort(av.begin(), av.end(),
              [](const Attribute& a, const Attribute& b) {
                return a.key < b.key;
              });
    g.attr_offsets_[v] = static_cast<uint32_t>(g.attr_data_.size());
    g.attr_data_.insert(g.attr_data_.end(), av.begin(), av.end());
  }
  g.attr_offsets_[n] = static_cast<uint32_t>(g.attr_data_.size());

  // CSR adjacency, out and in, sorted by (neighbor, label).
  auto build_csr = [&](bool out, std::vector<uint32_t>& offsets,
                       std::vector<EdgeId>& edges) {
    offsets.assign(n + 1, 0);
    for (size_t e = 0; e < m; ++e) {
      ++offsets[(out ? g.edge_src_[e] : g.edge_dst_[e]) + 1];
    }
    for (size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    edges.resize(m);
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t e = 0; e < m; ++e) {
      NodeId v = out ? g.edge_src_[e] : g.edge_dst_[e];
      edges[cursor[v]++] = static_cast<EdgeId>(e);
    }
    for (size_t v = 0; v < n; ++v) {
      auto* begin = edges.data() + offsets[v];
      auto* end = edges.data() + offsets[v + 1];
      std::sort(begin, end, [&](EdgeId a, EdgeId b) {
        NodeId na = out ? g.edge_dst_[a] : g.edge_src_[a];
        NodeId nb = out ? g.edge_dst_[b] : g.edge_src_[b];
        if (na != nb) return na < nb;
        return g.edge_label_[a] < g.edge_label_[b];
      });
    }
  };
  build_csr(/*out=*/true, g.out_offsets_, g.out_edges_);
  build_csr(/*out=*/false, g.in_offsets_, g.in_edges_);

  // Nodes grouped by label.
  const size_t num_labels = g.labels_.size();
  g.label_index_offsets_.assign(num_labels + 1, 0);
  for (LabelId l : g.node_labels_) ++g.label_index_offsets_[l + 1];
  for (size_t l = 0; l < num_labels; ++l) {
    g.label_index_offsets_[l + 1] += g.label_index_offsets_[l];
  }
  g.label_nodes_.resize(n);
  std::vector<uint32_t> cursor(g.label_index_offsets_.begin(),
                               g.label_index_offsets_.end() - 1);
  for (size_t v = 0; v < n; ++v) {
    g.label_nodes_[cursor[g.node_labels_[v]]++] = static_cast<NodeId>(v);
  }
  return g;
}

std::optional<ValueId> PropertyGraph::GetAttr(NodeId v, AttrId key) const {
  auto span = NodeAttrs(v);
  // Attribute lists are short (paper: <= 7 per node); linear scan is fastest.
  for (const auto& a : span) {
    if (a.key == key) return a.value;
    if (a.key > key) break;  // sorted by key
  }
  return std::nullopt;
}

std::span<const NodeId> PropertyGraph::NodesWithLabel(LabelId label) const {
  if (label + 1 >= label_index_offsets_.size()) return {};
  return {label_nodes_.data() + label_index_offsets_[label],
          label_index_offsets_[label + 1] - label_index_offsets_[label]};
}

const std::string& PropertyGraph::NodeName(NodeId v) const {
  static const std::string kEmpty;
  if (v >= node_names_.size()) return kEmpty;
  return node_names_[v];
}

bool PropertyGraph::HasEdge(NodeId src, NodeId dst, LabelId label) const {
  auto edges = OutEdges(src);
  // Binary search on dst (edges sorted by (dst, label)).
  size_t lo = 0, hi = edges.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (edge_dst_[edges[mid]] < dst) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (size_t i = lo; i < edges.size() && edge_dst_[edges[i]] == dst; ++i) {
    if (LabelMatches(edge_label_[edges[i]], label)) return true;
  }
  return false;
}

size_t PropertyGraph::MaxDegree() const {
  size_t d = 0;
  for (NodeId v = 0; v < NumNodes(); ++v) d = std::max(d, Degree(v));
  return d;
}

}  // namespace gfd
