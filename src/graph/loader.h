// TSV serialization of property graphs.
//
// Format (one record per line, tab-separated):
//   N <node-string-id> <label> [key=value ...]
//   E <src-string-id> <dst-string-id> <label>
// Lines starting with '#' and blank lines are ignored. Node string ids are
// arbitrary tokens; they are preserved as node names in the loaded graph.
#ifndef GFD_GRAPH_LOADER_H_
#define GFD_GRAPH_LOADER_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/property_graph.h"

namespace gfd {

/// Parses a graph from `in`. Returns std::nullopt and fills `*error` (if
/// non-null) on malformed input (unknown record tag, dangling edge endpoint,
/// short line).
std::optional<PropertyGraph> LoadGraphTsv(std::istream& in,
                                          std::string* error = nullptr);

/// Convenience file-based wrapper.
std::optional<PropertyGraph> LoadGraphTsvFile(const std::string& path,
                                              std::string* error = nullptr);

/// Writes `g` to `out` in the format accepted by LoadGraphTsv.
void SaveGraphTsv(const PropertyGraph& g, std::ostream& out);

}  // namespace gfd

#endif  // GFD_GRAPH_LOADER_H_
