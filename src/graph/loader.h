// TSV serialization of property graphs and of update deltas over them.
//
// Graph format (one record per line, tab-separated):
//   N <node-string-id> <label> [key=value ...]
//   E <src-string-id> <dst-string-id> <label>
// Lines starting with '#' and blank lines are ignored. Node string ids are
// arbitrary tokens; they are preserved as node names in the loaded graph.
//
// Delta format (one update op per line, tab-separated, order preserved):
//   E+ <src-string-id> <dst-string-id> <label>     insert edge
//   E- <src-string-id> <dst-string-id> <label>     delete edge
//   A  <node-string-id> <key>=<value> [...]        set attribute(s)
// Node references resolve through the graph's node names (unnamed nodes
// answer to "n<id>", matching SaveGraphTsv's output). Labels, keys, and
// values the graph never interned are added to the delta's extension
// vocabulary, so updates may introduce brand-new values.
#ifndef GFD_GRAPH_LOADER_H_
#define GFD_GRAPH_LOADER_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph_view.h"
#include "graph/property_graph.h"

namespace gfd {

/// Parses a graph from `in`. Returns std::nullopt and fills `*error` (if
/// non-null) on malformed input (unknown record tag, dangling edge endpoint,
/// short line).
std::optional<PropertyGraph> LoadGraphTsv(std::istream& in,
                                          std::string* error = nullptr);

/// Convenience file-based wrapper.
std::optional<PropertyGraph> LoadGraphTsvFile(const std::string& path,
                                              std::string* error = nullptr);

/// Writes `g` to `out` in the format accepted by LoadGraphTsv.
void SaveGraphTsv(const PropertyGraph& g, std::ostream& out);

/// Parses a delta against `g`'s node names and vocabulary. Returns
/// std::nullopt and fills `*error` (if non-null) with a line-numbered
/// message ("line N: ...") on malformed input (unknown tag, unknown node,
/// short record, attribute without '=').
std::optional<GraphDelta> LoadGraphDeltaTsv(std::istream& in,
                                            const PropertyGraph& g,
                                            std::string* error = nullptr);

/// Convenience file-based wrapper.
std::optional<GraphDelta> LoadGraphDeltaTsvFile(const std::string& path,
                                                const PropertyGraph& g,
                                                std::string* error = nullptr);

/// Writes `d` to `out` in the format accepted by LoadGraphDeltaTsv,
/// resolving node and vocabulary names through `g` plus the delta's
/// extension tables.
void SaveGraphDeltaTsv(const PropertyGraph& g, const GraphDelta& d,
                       std::ostream& out);

}  // namespace gfd

#endif  // GFD_GRAPH_LOADER_H_
