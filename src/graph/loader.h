// TSV serialization of property graphs and of update deltas over them.
//
// Graph format (one record per line, tab-separated):
//   L <label>            optional: pre-intern a node/edge label
//   K <key>              optional: pre-intern an attribute key
//   V <value>            optional: pre-intern an attribute value
//   N <node-string-id> <label> [key=value ...]
//   E <src-string-id> <dst-string-id> <label>
// Lines starting with '#' and blank lines are ignored. Node string ids are
// arbitrary tokens; they are preserved as node names in the loaded graph.
//
// The L/K/V declarations exist for durability: a plain save only writes
// in-use vocabulary in encounter order, so a reloaded graph may intern
// ids in a different order than the graph it was saved from. Snapshots
// that anchor a delta log (serve/graph_store.h) are written with
// SaveGraphTsv(..., /*with_vocab=*/true), which declares every interner
// entry in id order first -- a reload then reproduces ids exactly, so
// compiled rule sets, logged deltas, and violation records stay valid
// across restarts and snapshot rolls.
//
// All fields are backslash-escaped (util/tsv.h): tabs, newlines, '=' and
// backslashes in names, labels, keys and values survive the round trip;
// a bad escape is a line-numbered load error.
//
// Delta format (one update op per line, tab-separated, order preserved):
//   L <label> / K <key> / V <value>                optional vocab preamble
//   E+ <src-string-id> <dst-string-id> <label>     insert edge
//   E- <src-string-id> <dst-string-id> <label>     delete edge
//   A  <node-string-id> <key>=<value> [...]        set attribute(s)
// Node references resolve through the graph's node names (unnamed nodes
// answer to "n<id>", matching SaveGraphTsv's output). Labels, keys, and
// values the graph never interned are added to the delta's extension
// vocabulary, so updates may introduce brand-new values. L/K/V records
// pre-intern extension vocabulary in file order, the delta analogue of
// the graph format's durability preamble: the coordinator ships every
// fragment the same preamble so extension ids stay identical across
// fragments even when the ops that first use a name route elsewhere.
#ifndef GFD_GRAPH_LOADER_H_
#define GFD_GRAPH_LOADER_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph_view.h"
#include "graph/property_graph.h"

namespace gfd {

/// Parses a graph from `in`. Returns std::nullopt and fills `*error` (if
/// non-null) on malformed input (unknown record tag, dangling edge endpoint,
/// short line).
std::optional<PropertyGraph> LoadGraphTsv(std::istream& in,
                                          std::string* error = nullptr);

/// Convenience file-based wrapper.
std::optional<PropertyGraph> LoadGraphTsvFile(const std::string& path,
                                              std::string* error = nullptr);

/// Writes `g` to `out` in the format accepted by LoadGraphTsv. With
/// `with_vocab`, every interner entry is declared (L/K/V records) in id
/// order before the graph, so the reload reproduces ids exactly.
void SaveGraphTsv(const PropertyGraph& g, std::ostream& out,
                  bool with_vocab = false);

/// Parses a delta against `g`'s node names and vocabulary. Returns
/// std::nullopt and fills `*error` (if non-null) with a line-numbered
/// message ("line N: ...") on malformed input (unknown tag, unknown node,
/// short record, attribute without '=').
std::optional<GraphDelta> LoadGraphDeltaTsv(std::istream& in,
                                            const PropertyGraph& g,
                                            std::string* error = nullptr);

/// Convenience file-based wrapper.
std::optional<GraphDelta> LoadGraphDeltaTsvFile(const std::string& path,
                                                const PropertyGraph& g,
                                                std::string* error = nullptr);

/// Writes `d` to `out` in the format accepted by LoadGraphDeltaTsv,
/// resolving node and vocabulary names through `g` plus the delta's
/// extension tables. With `with_vocab`, every extension entry is
/// declared (L/K/V records) in id order before the ops, so a reload
/// against the same base graph reproduces extension ids exactly.
void SaveGraphDeltaTsv(const PropertyGraph& g, const GraphDelta& d,
                       std::ostream& out, bool with_vocab = false);

}  // namespace gfd

#endif  // GFD_GRAPH_LOADER_H_
