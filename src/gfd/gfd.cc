#include "gfd/gfd.h"

#include <algorithm>
#include <sstream>

#include "pattern/canonical.h"

namespace gfd {

Gfd::Gfd(Pattern q, std::vector<Literal> x, Literal l)
    : pattern(std::move(q)), lhs(std::move(x)), rhs(l) {
  NormalizeLhs(lhs);
}

std::string Gfd::ToString(const PropertyGraph& g) const {
  std::ostringstream os;
  os << pattern.ToString(g) << " : ";
  if (lhs.empty()) {
    os << "{}";
  } else {
    os << '{';
    for (size_t i = 0; i < lhs.size(); ++i) {
      if (i) os << ", ";
      os << lhs[i].ToString(g);
    }
    os << '}';
  }
  os << " -> " << rhs.ToString(g);
  return os.str();
}

Literal MapLiteral(const Literal& l, const std::vector<VarId>& f) {
  switch (l.kind) {
    case LiteralKind::kFalse:
      return Literal::False();
    case LiteralKind::kVarConst:
      return Literal::Const(f[l.x], l.a, l.c);
    case LiteralKind::kVarVar:
      return Literal::Vars(f[l.x], l.a, f[l.y], l.b);
  }
  return Literal::False();
}

void NormalizeLhs(std::vector<Literal>& lhs) {
  std::sort(lhs.begin(), lhs.end());
  lhs.erase(std::unique(lhs.begin(), lhs.end()), lhs.end());
}

template <typename GraphT>
bool MatchSatisfies(const GraphT& g, const Match& h, const Literal& l) {
  switch (l.kind) {
    case LiteralKind::kFalse:
      return false;
    case LiteralKind::kVarConst: {
      auto v = g.GetAttr(h[l.x], l.a);
      return v.has_value() && *v == l.c;
    }
    case LiteralKind::kVarVar: {
      auto vx = g.GetAttr(h[l.x], l.a);
      if (!vx.has_value()) return false;
      auto vy = g.GetAttr(h[l.y], l.b);
      return vy.has_value() && *vx == *vy;
    }
  }
  return false;
}

template <typename GraphT>
bool MatchSatisfiesAll(const GraphT& g, const Match& h,
                       const std::vector<Literal>& lits) {
  for (const auto& l : lits) {
    if (!MatchSatisfies(g, h, l)) return false;
  }
  return true;
}

template bool MatchSatisfies<PropertyGraph>(const PropertyGraph&,
                                            const Match&, const Literal&);
template bool MatchSatisfies<GraphView>(const GraphView&, const Match&,
                                        const Literal&);
template bool MatchSatisfiesAll<PropertyGraph>(const PropertyGraph&,
                                               const Match&,
                                               const std::vector<Literal>&);
template bool MatchSatisfiesAll<GraphView>(const GraphView&, const Match&,
                                           const std::vector<Literal>&);

bool GfdReduces(const Gfd& phi1, const Gfd& phi2) {
  if (phi1.pattern.NumNodes() > phi2.pattern.NumNodes()) return false;
  if (phi1.pattern.NumEdges() > phi2.pattern.NumEdges()) return false;
  if (phi1.lhs.size() > phi2.lhs.size()) return false;

  bool reduces = false;
  ForEachEmbedding(
      phi1.pattern, phi2.pattern, /*require_pivot=*/true,
      [&](const std::vector<VarId>& f) {
        // f(l1) must equal l2.
        if (MapLiteral(phi1.rhs, f) != phi2.rhs) return true;
        // f(X1) ⊆ X2, tracking strict containment.
        bool subset = true;
        size_t mapped = 0;
        for (const auto& lit : phi1.lhs) {
          Literal ml = MapLiteral(lit, f);
          if (!std::binary_search(phi2.lhs.begin(), phi2.lhs.end(), ml)) {
            subset = false;
            break;
          }
          ++mapped;
        }
        if (!subset) return true;
        bool lhs_strict = mapped < phi2.lhs.size();
        // Pattern strictness under this embedding: fewer nodes/edges or a
        // wildcard generalizing a concrete label.
        bool pat_strict = phi1.pattern.NumNodes() < phi2.pattern.NumNodes() ||
                          phi1.pattern.NumEdges() < phi2.pattern.NumEdges();
        if (!pat_strict) {
          for (VarId v = 0; v < phi1.pattern.NumNodes() && !pat_strict; ++v) {
            if (phi1.pattern.NodeLabel(v) == kWildcardLabel &&
                phi2.pattern.NodeLabel(f[v]) != kWildcardLabel) {
              pat_strict = true;
            }
          }
          for (const auto& e : phi1.pattern.edges()) {
            if (pat_strict) break;
            if (e.label != kWildcardLabel) continue;
            for (const auto& se : phi2.pattern.edges()) {
              if (se.src == f[e.src] && se.dst == f[e.dst] &&
                  se.label != kWildcardLabel) {
                pat_strict = true;
                break;
              }
            }
          }
        }
        if (pat_strict || lhs_strict) {
          reduces = true;
          return false;  // stop enumeration
        }
        return true;
      });
  return reduces;
}

}  // namespace gfd
