#include "gfd/serialize.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/tsv.h"

namespace gfd {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

std::string LitToText(const Literal& l, const PropertyGraph& g) {
  switch (l.kind) {
    case LiteralKind::kFalse:
      return "false";
    case LiteralKind::kVarConst:
      return std::to_string(l.x) + "." + g.AttrName(l.a) + "='" +
             g.ValueName(l.c) + "'";
    case LiteralKind::kVarVar:
      return std::to_string(l.x) + "." + g.AttrName(l.a) + "=" +
             std::to_string(l.y) + "." + g.AttrName(l.b);
  }
  return "false";
}

// Non-throwing decimal VarId parse (ParseGfd must never throw: the
// lenient loader's contract is to skip bad lines, not to terminate).
bool ParseVarId(std::string_view s, VarId* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

// Parses "<var>.<attr>" into (var, attr id); returns false on failure.
bool ParseTerm(std::string_view s, const PropertyGraph& g, VarId* var,
               AttrId* attr) {
  size_t dot = s.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  if (!ParseVarId(s.substr(0, dot), var)) return false;
  auto a = g.FindAttr(s.substr(dot + 1));
  if (!a) return false;
  *attr = *a;
  return true;
}

std::optional<Literal> ParseLit(std::string_view s, const PropertyGraph& g) {
  if (s == "false") return Literal::False();
  size_t eq = s.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  VarId x;
  AttrId a;
  if (!ParseTerm(s.substr(0, eq), g, &x, &a)) return std::nullopt;
  std::string_view rhs = s.substr(eq + 1);
  if (!rhs.empty() && rhs.front() == '\'') {
    if (rhs.size() < 2 || rhs.back() != '\'') return std::nullopt;
    auto v = g.FindValue(rhs.substr(1, rhs.size() - 2));
    if (!v) return std::nullopt;
    return Literal::Const(x, a, *v);
  }
  VarId y;
  AttrId b;
  if (!ParseTerm(rhs, g, &y, &b)) return std::nullopt;
  return Literal::Vars(x, a, y, b);
}

}  // namespace

std::string SerializeGfd(const Gfd& phi, const PropertyGraph& g) {
  std::ostringstream os;
  os << "nodes=";
  for (VarId v = 0; v < phi.pattern.NumNodes(); ++v) {
    if (v) os << '|';
    os << g.LabelName(phi.pattern.NodeLabel(v));
  }
  os << ";edges=";
  for (size_t i = 0; i < phi.pattern.edges().size(); ++i) {
    const auto& e = phi.pattern.edges()[i];
    if (i) os << ',';
    os << e.src << ':' << g.LabelName(e.label) << ':' << e.dst;
  }
  os << ";pivot=" << phi.pattern.pivot();
  os << ";lhs=";
  for (size_t i = 0; i < phi.lhs.size(); ++i) {
    if (i) os << ',';
    os << LitToText(phi.lhs[i], g);
  }
  os << ";rhs=" << LitToText(phi.rhs, g);
  return os.str();
}

std::optional<Gfd> ParseGfd(std::string_view line, const PropertyGraph& g,
                            std::string* error) {
  Pattern pattern;
  std::vector<Literal> lhs;
  std::optional<Literal> rhs;

  for (std::string_view section : SplitFields(line, ';')) {
    std::string_view key, value;
    if (!SplitKeyValue(section, &key, &value)) {
      SetError(error, "malformed section: " + std::string(section));
      return std::nullopt;
    }
    if (key == "nodes") {
      for (std::string_view label : SplitFields(value, '|')) {
        if (label.empty()) continue;
        auto l = g.FindLabel(label);
        if (!l) {
          SetError(error, "unknown label: " + std::string(label));
          return std::nullopt;
        }
        pattern.AddNode(*l);
      }
    } else if (key == "edges") {
      if (value.empty()) continue;
      for (std::string_view edge : SplitFields(value, ',')) {
        auto parts = SplitFields(edge, ':');
        if (parts.size() != 3) {
          SetError(error, "malformed edge: " + std::string(edge));
          return std::nullopt;
        }
        auto l = g.FindLabel(parts[1]);
        if (!l) {
          SetError(error, "unknown edge label: " + std::string(parts[1]));
          return std::nullopt;
        }
        VarId s, d;
        if (!ParseVarId(parts[0], &s) || !ParseVarId(parts[2], &d)) {
          SetError(error, "malformed edge endpoint: " + std::string(edge));
          return std::nullopt;
        }
        if (s >= pattern.NumNodes() || d >= pattern.NumNodes()) {
          SetError(error, "edge endpoint out of range");
          return std::nullopt;
        }
        pattern.AddEdge(s, d, *l);
      }
    } else if (key == "pivot") {
      VarId p;
      if (!ParseVarId(value, &p)) {
        SetError(error, "malformed pivot: " + std::string(value));
        return std::nullopt;
      }
      if (p >= pattern.NumNodes()) {
        SetError(error, "pivot out of range");
        return std::nullopt;
      }
      pattern.set_pivot(p);
    } else if (key == "lhs") {
      if (value.empty()) continue;
      for (std::string_view lit : SplitFields(value, ',')) {
        auto l = ParseLit(lit, g);
        if (!l) {
          SetError(error, "bad literal: " + std::string(lit));
          return std::nullopt;
        }
        lhs.push_back(*l);
      }
    } else if (key == "rhs") {
      rhs = ParseLit(value, g);
      if (!rhs) {
        SetError(error, "bad rhs literal: " + std::string(value));
        return std::nullopt;
      }
    } else {
      SetError(error, "unknown section: " + std::string(key));
      return std::nullopt;
    }
  }
  if (pattern.NumNodes() == 0) {
    SetError(error, "GFD without pattern nodes");
    return std::nullopt;
  }
  if (!rhs) {
    SetError(error, "GFD without rhs");
    return std::nullopt;
  }
  // Literal variables must reference pattern variables.
  auto in_range = [&](const Literal& l) {
    if (l.kind == LiteralKind::kFalse) return true;
    if (l.x >= pattern.NumNodes()) return false;
    return l.kind != LiteralKind::kVarVar || l.y < pattern.NumNodes();
  };
  for (const auto& l : lhs) {
    if (!in_range(l)) {
      SetError(error, "literal variable out of range");
      return std::nullopt;
    }
  }
  if (!in_range(*rhs)) {
    SetError(error, "rhs variable out of range");
    return std::nullopt;
  }
  return Gfd(std::move(pattern), std::move(lhs), *rhs);
}

void SaveGfds(std::span<const Gfd> gfds, const PropertyGraph& g,
              std::ostream& out) {
  for (const auto& phi : gfds) out << SerializeGfd(phi, g) << '\n';
}

std::optional<std::vector<Gfd>> LoadGfds(std::istream& in,
                                         const PropertyGraph& g,
                                         std::string* error) {
  std::vector<Gfd> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::string sub_error;
    auto phi = ParseGfd(line, g, &sub_error);
    if (!phi) {
      SetError(error,
               "line " + std::to_string(lineno) + ": " + sub_error);
      return std::nullopt;
    }
    out.push_back(std::move(*phi));
  }
  return out;
}

std::vector<Gfd> LoadGfdsLenient(std::istream& in, const PropertyGraph& g,
                                 size_t* skipped) {
  std::vector<Gfd> out;
  size_t dropped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (auto phi = ParseGfd(line, g)) {
      out.push_back(std::move(*phi));
    } else {
      ++dropped;
    }
  }
  if (skipped) *skipped = dropped;
  return out;
}

}  // namespace gfd
