#include "gfd/closure.h"

#include "pattern/canonical.h"

namespace gfd {

int EqClosure::TermId(VarId x, AttrId a) {
  auto [it, inserted] = term_index_.try_emplace({x, a}, 0);
  if (inserted) {
    it->second = static_cast<int>(parent_.size());
    parent_.push_back(it->second);
    constant_.push_back(kNoValue);
  }
  return it->second;
}

int EqClosure::FindTerm(VarId x, AttrId a) const {
  auto it = term_index_.find({x, a});
  return it == term_index_.end() ? -1 : it->second;
}

int EqClosure::Root(int t) const {
  while (parent_[t] != t) {
    parent_[t] = parent_[parent_[t]];  // path halving
    t = parent_[t];
  }
  return t;
}

void EqClosure::Merge(int t1, int t2) {
  int r1 = Root(t1), r2 = Root(t2);
  if (r1 == r2) return;
  ValueId c1 = constant_[r1], c2 = constant_[r2];
  if (c1 != kNoValue && c2 != kNoValue && c1 != c2) conflicting_ = true;
  parent_[r1] = r2;
  if (constant_[r2] == kNoValue) constant_[r2] = c1;
}

void EqClosure::Assert(const Literal& l) {
  if (conflicting_) return;
  switch (l.kind) {
    case LiteralKind::kFalse:
      conflicting_ = true;
      return;
    case LiteralKind::kVarConst: {
      int r = Root(TermId(l.x, l.a));
      if (constant_[r] != kNoValue && constant_[r] != l.c) {
        conflicting_ = true;  // x.A = c and x.A = d with c != d
        return;
      }
      constant_[r] = l.c;
      return;
    }
    case LiteralKind::kVarVar:
      Merge(TermId(l.x, l.a), TermId(l.y, l.b));
      return;
  }
}

bool EqClosure::Entails(const Literal& l) const {
  if (conflicting_) return true;  // ex falso quodlibet
  switch (l.kind) {
    case LiteralKind::kFalse:
      return false;
    case LiteralKind::kVarConst: {
      int t = FindTerm(l.x, l.a);
      return t >= 0 && constant_[Root(t)] == l.c;
    }
    case LiteralKind::kVarVar: {
      if (l.x == l.y && l.a == l.b) return true;  // reflexivity
      int t1 = FindTerm(l.x, l.a), t2 = FindTerm(l.y, l.b);
      if (t1 < 0 || t2 < 0) return false;
      int r1 = Root(t1), r2 = Root(t2);
      if (r1 == r2) return true;
      return constant_[r1] != kNoValue && constant_[r1] == constant_[r2];
    }
  }
  return false;
}

EqClosure ComputeClosure(const Pattern& q, std::span<const Gfd> sigma,
                         const std::vector<Literal>& x) {
  EqClosure closure;
  for (const auto& lit : x) closure.Assert(lit);

  // Pre-enumerate all embeddings of each GFD's pattern into q; this is the
  // O(k^k) factor of the FPT bound (Theorem 1a). Implication embeddings do
  // not pin pivots: pivots direct discovery, not logical entailment.
  struct Rule {
    const Gfd* psi;
    std::vector<Literal> lhs;  // literals translated through f
    Literal rhs;
  };
  std::vector<Rule> rules;
  for (const auto& psi : sigma) {
    ForEachEmbedding(psi.pattern, q, /*require_pivot=*/false,
                     [&](const std::vector<VarId>& f) {
                       Rule r;
                       r.psi = &psi;
                       r.lhs.reserve(psi.lhs.size());
                       for (const auto& lit : psi.lhs) {
                         r.lhs.push_back(MapLiteral(lit, f));
                       }
                       r.rhs = MapLiteral(psi.rhs, f);
                       rules.push_back(std::move(r));
                       return true;
                     });
  }

  // Chase to fixpoint.
  bool changed = true;
  while (changed && !closure.conflicting()) {
    changed = false;
    for (const auto& r : rules) {
      if (closure.conflicting()) break;
      if (closure.Entails(r.rhs)) continue;
      bool fires = true;
      for (const auto& lit : r.lhs) {
        if (!closure.Entails(lit)) {
          fires = false;
          break;
        }
      }
      if (fires) {
        closure.Assert(r.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

}  // namespace gfd
