// Validation of GFDs against a data graph (Section 3, Proposition 2):
// G |= Q[x-bar](X -> l) iff no match of Q violates X -> l. The same match
// enumeration also yields the two support quantities of Section 4.2:
//   pattern_support = |Q(G,z)|   (distinct pivots with a match)
//   gfd_support     = |Q(G,Xl,z)| (distinct pivots with a match where both
//                                  X and l hold)
// so discovery pays for one enumeration per candidate, with per-pivot
// short-circuiting once nothing new can be learned at that pivot.
#ifndef GFD_GFD_VALIDATION_H_
#define GFD_GFD_VALIDATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gfd/gfd.h"
#include "graph/property_graph.h"
#include "match/matcher.h"

namespace gfd {

/// Joint result of one validation / support pass.
struct GfdCheckResult {
  bool satisfied = true;         ///< G |= phi
  uint64_t pattern_support = 0;  ///< |Q(G,z)|
  uint64_t gfd_support = 0;      ///< |Q(G,Xl,z)|
  uint64_t violating_pivots = 0; ///< pivots witnessing a violation
};

/// Evaluates phi over all pivots of G. When `abort_on_violation` is set the
/// scan stops at the first violating pivot (supports are then lower
/// bounds) -- used by the plain validation problem; discovery needs the
/// full counts.
GfdCheckResult EvaluateGfd(const PropertyGraph& g, const CompiledPattern& cq,
                           const Gfd& phi, const MatchOptions& opts = {},
                           bool abort_on_violation = false);

/// G |= phi (compiles the pattern internally; for repeated checks use
/// EvaluateGfd with a shared CompiledPattern).
bool SatisfiesGfd(const PropertyGraph& g, const Gfd& phi,
                  const MatchOptions& opts = {});

/// G |= Sigma.
bool SatisfiesAll(const PropertyGraph& g, std::span<const Gfd> sigma,
                  const MatchOptions& opts = {});

/// Number of distinct pivots admitting a match that satisfies all of
/// `lits` (i.e. |Q(G,X,z)|). With `any_only`, stops at the first such
/// pivot and returns 1 -- the emptiness test NHSpawn needs (Section 5.1).
uint64_t CountSupportingPivots(const PropertyGraph& g,
                               const CompiledPattern& cq,
                               const std::vector<Literal>& lits,
                               bool any_only = false,
                               const MatchOptions& opts = {});

/// Up to `limit` violating matches of phi (X holds, l fails).
std::vector<Match> FindViolations(const PropertyGraph& g, const Gfd& phi,
                                  size_t limit,
                                  const MatchOptions& opts = {});

/// A human-readable account of one violation: which rule, which binding,
/// and what the consequence actually evaluated to.
struct ViolationReport {
  Gfd rule;
  Match match;
  std::string description;  ///< multi-line, rendered against the graph
};

/// Explains up to `limit` violations of each GFD in sigma against `g`.
/// The description names the bound entities (node names when present) and
/// contrasts the expected consequence with the actual attribute values.
std::vector<ViolationReport> ExplainViolations(const PropertyGraph& g,
                                               std::span<const Gfd> sigma,
                                               size_t limit_per_rule = 3,
                                               const MatchOptions& opts = {});

/// Union of graph nodes implicated by violations of any GFD in sigma:
/// for a violated consequence x.A = c / x.A = y.B the nodes bound to x
/// (and y); for a violated `false` the whole match. Sorted, deduplicated.
/// Drives the error-detection-accuracy experiment (Exp-5 / Fig. 7).
std::vector<NodeId> ViolationNodes(const PropertyGraph& g,
                                   std::span<const Gfd> sigma,
                                   const MatchOptions& opts = {});

}  // namespace gfd

#endif  // GFD_GFD_VALIDATION_H_
