// The equality closure closure(Sigma_Q, X) underlying the satisfiability
// and implication characterizations (Section 3, after Theorem 1; Lemmas 3
// and 7 of [Fan-Wu-Xu, SIGMOD'16]).
//
// Terms are attribute occurrences x.A over the variables of a pattern Q.
// The closure is a congruence over terms plus constant bindings, grown by
//   - the literals of X,
//   - transitivity of equality (union-find), and
//   - chasing with GFDs embedded in Q: for every embedding f of psi's
//     pattern into Q with f(X_psi) entailed, add f(l_psi).
// It is *conflicting* when some class carries two distinct constants or
// the literal `false` was derived.
#ifndef GFD_GFD_CLOSURE_H_
#define GFD_GFD_CLOSURE_H_

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gfd/gfd.h"
#include "util/hash.h"

namespace gfd {

/// Union-find over attribute terms with per-class constant bindings.
class EqClosure {
 public:
  EqClosure() = default;

  /// Adds a literal as a fact. kVarConst binds the term's class to the
  /// constant; kVarVar merges two classes; kFalse marks the closure
  /// conflicting.
  void Assert(const Literal& l);

  /// Is the literal entailed? kVarConst: the class of x.A is bound to c.
  /// kVarVar: both terms exist and are in one class, or their classes are
  /// bound to the same constant, or the literal is reflexive.
  /// kFalse: entailed only by a conflicting closure.
  bool Entails(const Literal& l) const;

  /// True once two distinct constants collide in one class or `false` was
  /// asserted. All further Assert calls are no-ops.
  bool conflicting() const { return conflicting_; }

 private:
  using Term = std::pair<VarId, AttrId>;

  int TermId(VarId x, AttrId a);          // find-or-create
  int FindTerm(VarId x, AttrId a) const;  // -1 if absent
  int Root(int t) const;
  void Merge(int t1, int t2);

  std::unordered_map<Term, int, PairHash> term_index_;
  mutable std::vector<int> parent_;
  std::vector<ValueId> constant_;  // valid at roots; kNoValue = unbound
  bool conflicting_ = false;
};

/// Computes closure(Sigma_Q, X) for pattern `q`: chases `sigma` over all
/// embeddings into q starting from the literals of `x`. GFDs whose pattern
/// does not embed into q contribute nothing (they are not in Sigma_Q).
EqClosure ComputeClosure(const Pattern& q, std::span<const Gfd> sigma,
                         const std::vector<Literal>& x);

/// enforced(Sigma_Q) = closure(Sigma_Q, {}) (Section 3).
inline EqClosure ComputeEnforced(const Pattern& q, std::span<const Gfd> sigma) {
  return ComputeClosure(q, sigma, {});
}

}  // namespace gfd

#endif  // GFD_GFD_CLOSURE_H_
