// Graph functional dependencies Q[x-bar](X -> l) in normal form
// (Section 2.2): the consequence is a single literal, possibly `false`.
#ifndef GFD_GFD_GFD_H_
#define GFD_GFD_GFD_H_

#include <string>
#include <vector>

#include "gfd/literal.h"
#include "match/matcher.h"
#include "pattern/pattern.h"

namespace gfd {

/// A GFD in normal form. `lhs` (the paper's X) is kept sorted and
/// duplicate-free so GFD equality is syntactic.
struct Gfd {
  Pattern pattern;
  std::vector<Literal> lhs;
  Literal rhs = Literal::False();

  Gfd() = default;
  Gfd(Pattern q, std::vector<Literal> x, Literal l);

  /// True when the consequence is `false` (the syntactic shape of negative
  /// GFDs; whether X is satisfiable is a separate, semantic question --
  /// see IsTrivialGfd in problems.h).
  bool HasFalseRhs() const { return rhs.IsFalse(); }

  size_t NumVars() const { return pattern.NumNodes(); }

  std::string ToString(const PropertyGraph& g) const;

  friend bool operator==(const Gfd&, const Gfd&) = default;
};

/// Applies variable mapping f (indexed by old VarId) to a literal.
Literal MapLiteral(const Literal& l, const std::vector<VarId>& f);

/// Canonicalizes an LHS: sort + unique.
void NormalizeLhs(std::vector<Literal>& lhs);

// --- Satisfaction of literals by matches (Section 2.2) ----------------------

/// Does match h satisfy literal l? Missing attributes make the literal
/// unsatisfied (for both LHS and RHS; the asymmetric treatment of missing
/// attributes in the paper is exactly this plus the implication direction).
/// kFalse is never satisfied. GraphT is any graph type with GetAttr --
/// PropertyGraph or GraphView (instantiated in gfd.cc).
template <typename GraphT>
bool MatchSatisfies(const GraphT& g, const Match& h, const Literal& l);

/// h |= X: all literals satisfied.
template <typename GraphT>
bool MatchSatisfiesAll(const GraphT& g, const Match& h,
                       const std::vector<Literal>& lits);

extern template bool MatchSatisfies<PropertyGraph>(const PropertyGraph&,
                                                   const Match&,
                                                   const Literal&);
extern template bool MatchSatisfies<GraphView>(const GraphView&, const Match&,
                                               const Literal&);
extern template bool MatchSatisfiesAll<PropertyGraph>(
    const PropertyGraph&, const Match&, const std::vector<Literal>&);
extern template bool MatchSatisfiesAll<GraphView>(const GraphView&,
                                                  const Match&,
                                                  const std::vector<Literal>&);

/// The GFD reduction order phi1 << phi2 (Section 4.1): a pivot-preserving
/// embedding f of phi1's pattern into phi2's with f(X1) ⊆ X2, f(l1) = l2,
/// and strictness (Q1 << Q2 via f, or f(X1) ⊊ X2).
bool GfdReduces(const Gfd& phi1, const Gfd& phi2);

}  // namespace gfd

#endif  // GFD_GFD_GFD_H_
