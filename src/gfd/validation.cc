#include "gfd/validation.h"

#include <algorithm>

namespace gfd {

GfdCheckResult EvaluateGfd(const PropertyGraph& g, const CompiledPattern& cq,
                           const Gfd& phi, const MatchOptions& opts,
                           bool abort_on_violation) {
  GfdCheckResult result;
  for (NodeId v : cq.PivotCandidates(g)) {
    bool any = false, supports = false, violates = false;
    cq.ForEachMatchAtPivot(
        g, v,
        [&](const Match& m) {
          any = true;
          if (MatchSatisfiesAll(g, m, phi.lhs)) {
            if (MatchSatisfies(g, m, phi.rhs)) {
              supports = true;
            } else {
              violates = true;
            }
          }
          // Stop once this pivot can teach us nothing more.
          return !(supports && violates);
        },
        opts);
    if (any) ++result.pattern_support;
    if (supports) ++result.gfd_support;
    if (violates) {
      ++result.violating_pivots;
      result.satisfied = false;
      if (abort_on_violation) return result;
    }
  }
  return result;
}

bool SatisfiesGfd(const PropertyGraph& g, const Gfd& phi,
                  const MatchOptions& opts) {
  CompiledPattern cq(phi.pattern);
  return EvaluateGfd(g, cq, phi, opts, /*abort_on_violation=*/true).satisfied;
}

bool SatisfiesAll(const PropertyGraph& g, std::span<const Gfd> sigma,
                  const MatchOptions& opts) {
  for (const auto& phi : sigma) {
    if (!SatisfiesGfd(g, phi, opts)) return false;
  }
  return true;
}

uint64_t CountSupportingPivots(const PropertyGraph& g,
                               const CompiledPattern& cq,
                               const std::vector<Literal>& lits,
                               bool any_only, const MatchOptions& opts) {
  uint64_t count = 0;
  for (NodeId v : cq.PivotCandidates(g)) {
    bool found = false;
    cq.ForEachMatchAtPivot(
        g, v,
        [&](const Match& m) {
          if (MatchSatisfiesAll(g, m, lits)) {
            found = true;
            return false;
          }
          return true;
        },
        opts);
    if (found) {
      ++count;
      if (any_only) return count;
    }
  }
  return count;
}

std::vector<Match> FindViolations(const PropertyGraph& g, const Gfd& phi,
                                  size_t limit, const MatchOptions& opts) {
  std::vector<Match> out;
  if (limit == 0) return out;
  CompiledPattern cq(phi.pattern);
  cq.ForEachMatch(
      g,
      [&](const Match& m) {
        if (MatchSatisfiesAll(g, m, phi.lhs) &&
            !MatchSatisfies(g, m, phi.rhs)) {
          out.push_back(m);
          if (out.size() >= limit) return false;
        }
        return true;
      },
      opts);
  return out;
}

namespace {

// "JohnWinter" when named, "#17" otherwise.
std::string NodeRef(const PropertyGraph& g, NodeId v) {
  const std::string& name = g.NodeName(v);
  return name.empty() ? "#" + std::to_string(v) : name;
}

// "x0.type is 'high_jumper'" / "x0 has no attribute type".
std::string ActualValue(const PropertyGraph& g, const Match& m, VarId x,
                        AttrId a) {
  auto v = g.GetAttr(m[x], a);
  std::string term = "x" + std::to_string(x) + "." + g.AttrName(a);
  if (!v) return term + " is missing";
  return term + " is '" + g.ValueName(*v) + "'";
}

}  // namespace

std::vector<ViolationReport> ExplainViolations(const PropertyGraph& g,
                                               std::span<const Gfd> sigma,
                                               size_t limit_per_rule,
                                               const MatchOptions& opts) {
  std::vector<ViolationReport> out;
  for (const auto& phi : sigma) {
    for (auto& m : FindViolations(g, phi, limit_per_rule, opts)) {
      ViolationReport report;
      report.rule = phi;
      std::string desc = "rule " + phi.ToString(g) + "\n  bound to:";
      for (VarId x = 0; x < m.size(); ++x) {
        desc += " x" + std::to_string(x) + "=" + NodeRef(g, m[x]);
      }
      desc += "\n  but: ";
      switch (phi.rhs.kind) {
        case LiteralKind::kFalse:
          desc += "this structure is declared illegal (consequence is "
                  "false)";
          break;
        case LiteralKind::kVarConst:
          desc += "expected " + phi.rhs.ToString(g) + ", yet " +
                  ActualValue(g, m, phi.rhs.x, phi.rhs.a);
          break;
        case LiteralKind::kVarVar:
          desc += "expected " + phi.rhs.ToString(g) + ", yet " +
                  ActualValue(g, m, phi.rhs.x, phi.rhs.a) + " while " +
                  ActualValue(g, m, phi.rhs.y, phi.rhs.b);
          break;
      }
      report.match = std::move(m);
      report.description = std::move(desc);
      out.push_back(std::move(report));
    }
  }
  return out;
}

std::vector<NodeId> ViolationNodes(const PropertyGraph& g,
                                   std::span<const Gfd> sigma,
                                   const MatchOptions& opts) {
  std::vector<NodeId> nodes;
  for (const auto& phi : sigma) {
    CompiledPattern cq(phi.pattern);
    cq.ForEachMatch(
        g,
        [&](const Match& m) {
          if (!MatchSatisfiesAll(g, m, phi.lhs) ||
              MatchSatisfies(g, m, phi.rhs)) {
            return true;
          }
          if (phi.rhs.IsFalse()) {
            nodes.insert(nodes.end(), m.begin(), m.end());
          } else {
            nodes.push_back(m[phi.rhs.x]);
            if (phi.rhs.kind == LiteralKind::kVarVar) {
              nodes.push_back(m[phi.rhs.y]);
            }
          }
          return true;
        },
        opts);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace gfd
