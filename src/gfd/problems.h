// The three fundamental problems of Section 3 -- satisfiability,
// implication, validation -- implemented through the fixed-parameter
// tractable characterizations (Theorem 1(a), Proposition 2). Validation
// lives in validation.h (it needs the matcher); this header hosts the
// purely symbolic problems.
#ifndef GFD_GFD_PROBLEMS_H_
#define GFD_GFD_PROBLEMS_H_

#include <span>

#include "gfd/closure.h"
#include "gfd/gfd.h"

namespace gfd {

/// Is phi trivial (Section 4.1)? Either X is unsatisfiable by equality
/// transitivity (e.g. contains x.A=c and x.A=d), or the consequence
/// already follows from X alone. Negative GFDs with satisfiable X are
/// *not* trivial.
bool IsTrivialGfd(const Gfd& phi);

/// Sigma |= phi (the implication problem)? Characterization: the closure
/// of X under the GFDs of Sigma embedded in phi's pattern is conflicting,
/// or it entails phi's consequence. FPT in k = max pattern size.
bool Implies(std::span<const Gfd> sigma, const Gfd& phi);

/// Is Sigma satisfiable? There must be a graph satisfying Sigma in which
/// at least one pattern of Sigma matches; by the characterization this
/// holds iff enforced(Sigma_Q) is non-conflicting for *some* pattern Q of
/// Sigma. The empty set is unsatisfiable by definition (condition (b) of
/// Section 3 requires a witnessing GFD).
bool IsSatisfiable(std::span<const Gfd> sigma);

}  // namespace gfd

#endif  // GFD_GFD_PROBLEMS_H_
