#include "gfd/problems.h"

namespace gfd {

bool IsTrivialGfd(const Gfd& phi) {
  EqClosure closure;
  for (const auto& lit : phi.lhs) closure.Assert(lit);
  if (closure.conflicting()) return true;  // X equivalent to false
  if (phi.rhs.IsFalse()) return false;     // negative with satisfiable X
  return closure.Entails(phi.rhs);         // l derivable from X alone
}

bool Implies(std::span<const Gfd> sigma, const Gfd& phi) {
  EqClosure closure = ComputeClosure(phi.pattern, sigma, phi.lhs);
  return closure.conflicting() || closure.Entails(phi.rhs);
}

bool IsSatisfiable(std::span<const Gfd> sigma) {
  for (const auto& phi : sigma) {
    EqClosure enforced = ComputeEnforced(phi.pattern, sigma);
    if (!enforced.conflicting()) return true;
  }
  return false;
}

}  // namespace gfd
