// Literals of GFDs (Section 2.2): x.A = c (constant binding, as in CFDs),
// x.A = y.B (variable binding), and the Boolean constant `false` used as
// the consequence of negative GFDs.
#ifndef GFD_GFD_LITERAL_H_
#define GFD_GFD_LITERAL_H_

#include <cstdint>
#include <string>

#include "graph/property_graph.h"
#include "util/hash.h"
#include "util/ids.h"

namespace gfd {

enum class LiteralKind : uint8_t {
  kVarConst,  ///< x.A = c
  kVarVar,    ///< x.A = y.B
  kFalse,     ///< Boolean false (negative GFD consequence)
};

/// One literal over a pattern's variables.
struct Literal {
  LiteralKind kind = LiteralKind::kFalse;
  VarId x = kNoVar;
  AttrId a = 0;
  VarId y = kNoVar;  // kVarVar only
  AttrId b = 0;      // kVarVar only
  ValueId c = kNoValue;  // kVarConst only

  static Literal Const(VarId x, AttrId a, ValueId c) {
    Literal l;
    l.kind = LiteralKind::kVarConst;
    l.x = x;
    l.a = a;
    l.c = c;
    return l;
  }

  /// Builds x.A = y.B, normalized so the smaller (var, attr) pair comes
  /// first; equality of literals is then syntactic.
  static Literal Vars(VarId x, AttrId a, VarId y, AttrId b) {
    Literal l;
    l.kind = LiteralKind::kVarVar;
    if (std::pair(y, b) < std::pair(x, a)) {
      std::swap(x, y);
      std::swap(a, b);
    }
    l.x = x;
    l.a = a;
    l.y = y;
    l.b = b;
    return l;
  }

  static Literal False() { return Literal{}; }

  bool IsFalse() const { return kind == LiteralKind::kFalse; }

  friend bool operator==(const Literal&, const Literal&) = default;
  friend auto operator<=>(const Literal&, const Literal&) = default;

  /// Renders e.g. "x0.type='producer'" or "x1.name=x2.name", resolving
  /// attribute/value names through `g`.
  std::string ToString(const PropertyGraph& g) const {
    if (kind == LiteralKind::kFalse) return "false";
    std::string s = "x" + std::to_string(x) + "." + g.AttrName(a);
    if (kind == LiteralKind::kVarConst) {
      return s + "='" + g.ValueName(c) + "'";
    }
    return s + "=x" + std::to_string(y) + "." + g.AttrName(b);
  }
};

struct LiteralHash {
  size_t operator()(const Literal& l) const {
    size_t h = static_cast<size_t>(l.kind);
    HashCombine(h, l.x);
    HashCombine(h, l.a);
    HashCombine(h, l.y);
    HashCombine(h, l.b);
    HashCombine(h, l.c);
    return h;
  }
};

}  // namespace gfd

#endif  // GFD_GFD_LITERAL_H_
