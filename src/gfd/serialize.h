// Text serialization of GFDs, so mined rule sets can be persisted,
// inspected, versioned, and re-loaded as data-quality rules.
//
// One GFD per line:
//   nodes=<label>|<label>|... ; edges=<src>:<label>:<dst>,... ; pivot=<i> ;
//   lhs=<lit>,... ; rhs=<lit>
// where <lit> is  <var>.<attr>='<value>'  |  <var>.<attr>=<var>.<attr>  |
// false, and '_' is the wildcard label. Restrictions: label and attribute
// names must not contain the delimiters (; , | :) and values must not
// contain single quotes or newlines -- which holds for every dataset and
// generator in this repository.
#ifndef GFD_GFD_SERIALIZE_H_
#define GFD_GFD_SERIALIZE_H_

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gfd/gfd.h"
#include "graph/property_graph.h"

namespace gfd {

/// Renders phi against g's vocabulary (labels/attrs/values by name).
std::string SerializeGfd(const Gfd& phi, const PropertyGraph& g);

/// Parses one serialized GFD. Vocabulary is resolved against `g`; unknown
/// labels/attributes/values fail the parse (rules reference things the
/// graph must know about). On failure returns nullopt and fills *error.
std::optional<Gfd> ParseGfd(std::string_view line, const PropertyGraph& g,
                            std::string* error = nullptr);

/// Writes one GFD per line.
void SaveGfds(std::span<const Gfd> gfds, const PropertyGraph& g,
              std::ostream& out);

/// Reads GFDs until EOF; '#' lines and blank lines are skipped.
std::optional<std::vector<Gfd>> LoadGfds(std::istream& in,
                                         const PropertyGraph& g,
                                         std::string* error = nullptr);

/// Lenient variant for *serving* rules against a graph whose vocabulary
/// may have drifted from the mining graph (TSV round trips only persist
/// vocabulary that is in use): rules referencing labels / attributes /
/// values the graph does not intern are skipped instead of failing the
/// whole file, and `*skipped` (if non-null) receives their count. Note
/// the semantic trade: a skipped rule whose RHS names a value the graph
/// has never seen could only ever be violated, so lenient loading is a
/// robustness/completeness trade-off -- callers should surface the
/// skipped count.
std::vector<Gfd> LoadGfdsLenient(std::istream& in, const PropertyGraph& g,
                                 size_t* skipped = nullptr);

}  // namespace gfd

#endif  // GFD_GFD_SERIALIZE_H_
