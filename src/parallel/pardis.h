// ParDis (Section 6.2): parallel GFD discovery over a vertex-cut
// fragmented graph, parallel-scalable relative to SeqDis (Theorem 5).
//
// Supersteps per pattern level:
//   1. VSpawn at the master (identical lattice to SeqDis).
//   2. Parallel incremental pattern matching: each worker s joins its
//      locally owned matches Q(F_s) with the candidate edge lists e(F_t)
//      shipped from every fragment t (the distributed join work units).
//   3. Load balancing: matches are re-shuffled pivot-aligned across
//      workers (ownership by pivot hash), so per-candidate supports are
//      disjoint sums; the ParGFDnb ablation skips the shuffle, and the
//      master must instead merge shipped pivot sets per candidate.
//   4. Parallel GFD validation: the master grows each pattern's literal
//      trees (HSpawn) and posts candidate batches; workers evaluate them
//      against their local profile rows (supports, SAT flags, NHSpawn
//      emptiness + OWA presence); the master aggregates and decides.
//
// Output is identical to SeqDis (asserted by tests): the lattice logic,
// pruning rules, and reduced-GFD filters are the same code or mirrored
// decisions, and FinalizeReduced makes the result order-independent.
#ifndef GFD_PARALLEL_PARDIS_H_
#define GFD_PARALLEL_PARDIS_H_

#include "core/config.h"
#include "core/seqdis.h"
#include "graph/property_graph.h"
#include "parallel/cluster.h"

namespace gfd {

/// Runs parallel GFD discovery. `stats` (optional) receives communication
/// and skew accounting.
DiscoveryResult ParDis(const PropertyGraph& g, const DiscoveryConfig& cfg,
                       const ParallelRunConfig& pcfg,
                       ClusterStats* stats = nullptr);

}  // namespace gfd

#endif  // GFD_PARALLEL_PARDIS_H_
