#include "parallel/parcover.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>

#include "gfd/problems.h"
#include "pattern/canonical.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace gfd {

namespace {

// Most-specific-first ordering (duplicates adjacent), shared with SeqCover.
bool MoreSpecific(const Gfd& a, const Gfd& b) {
  if (a.pattern.NumEdges() != b.pattern.NumEdges()) {
    return a.pattern.NumEdges() > b.pattern.NumEdges();
  }
  if (a.lhs.size() != b.lhs.size()) return a.lhs.size() > b.lhs.size();
  if (!(a.rhs == b.rhs)) return a.rhs < b.rhs;
  if (!(a.lhs == b.lhs)) return a.lhs < b.lhs;
  return false;
}

void Dedup(std::vector<Gfd>& sigma, CoverStats& st) {
  std::sort(sigma.begin(), sigma.end(), MoreSpecific);
  size_t before = sigma.size();
  sigma.erase(std::unique(sigma.begin(), sigma.end()), sigma.end());
  st.removed += before - sigma.size();
}

}  // namespace

std::vector<Gfd> ParCover(std::vector<Gfd> sigma,
                          const ParallelRunConfig& pcfg, CoverStats* stats,
                          ClusterStats* cstats) {
  CoverStats local_stats;
  CoverStats& st = stats ? *stats : local_stats;
  Dedup(sigma, st);
  const size_t n = sigma.size();

  // Group by pattern isomorphism (pivot-free canonical codes: implication
  // does not involve pivots).
  std::unordered_map<std::vector<uint32_t>, std::vector<size_t>, VecHash>
      groups_by_code;
  for (size_t i = 0; i < n; ++i) {
    groups_by_code[CanonicalCode(sigma[i].pattern, /*fix_pivot=*/false)]
        .push_back(i);
  }
  struct Group {
    std::vector<size_t> members;   // indices into sigma
    std::vector<size_t> embedded;  // Sigma-bar: GFDs embedding into Q_j
  };
  std::vector<Group> groups;
  groups.reserve(groups_by_code.size());
  for (auto& [code, members] : groups_by_code) {
    Group grp;
    grp.members = std::move(members);
    const Pattern& rep = sigma[grp.members[0]].pattern;
    for (size_t i = 0; i < n; ++i) {
      const Pattern& p = sigma[i].pattern;
      if (p.NumNodes() > rep.NumNodes() || p.NumEdges() > rep.NumEdges()) {
        continue;
      }
      if (HasEmbedding(p, rep, /*require_pivot=*/false)) {
        grp.embedded.push_back(i);
      }
    }
    groups.push_back(std::move(grp));
  }

  // LPT bin packing: largest estimated group cost first, to the least
  // loaded worker (factor-2 approximation of makespan, the paper's [4]).
  std::vector<size_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  auto cost = [&](size_t gi) {
    return groups[gi].members.size() * (groups[gi].embedded.size() + 1);
  };
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return cost(a) > cost(b); });
  std::vector<std::vector<size_t>> assignment(pcfg.workers);
  std::vector<size_t> load(pcfg.workers, 0);
  for (size_t gi : order) {
    size_t best = 0;
    for (size_t w = 1; w < pcfg.workers; ++w) {
      if (load[w] < load[best]) best = w;
    }
    assignment[best].push_back(gi);
    load[best] += cost(gi);
  }

  // Parallel group-local elimination (ParImp). The liveness flags are
  // shared across groups: each slot is written only by the worker that
  // owns its group, but embedded lists reach into other groups, so other
  // workers read those slots concurrently -- the cells must be atomic.
  // Relaxed suffices: a stale read only admits one extra (still sound)
  // implication-test input, a tolerance the sequential elimination
  // order already grants.
  std::vector<std::atomic<char>> alive(n);
  for (auto& a : alive) a.store(1, std::memory_order_relaxed);
  std::atomic<uint64_t> tests{0}, removed{0};
  Cluster cluster(pcfg.workers);
  cluster.RunStep([&](size_t w) {
    for (size_t gi : assignment[w]) {
      Group& grp = groups[gi];
      // Most specific members first, so general rules survive.
      std::sort(grp.members.begin(), grp.members.end(),
                [&](size_t a, size_t b) {
                  return MoreSpecific(sigma[a], sigma[b]);
                });
      for (size_t mi : grp.members) {
        std::vector<Gfd> others;
        others.reserve(grp.embedded.size());
        for (size_t ei : grp.embedded) {
          if (ei != mi && alive[ei].load(std::memory_order_relaxed)) {
            others.push_back(sigma[ei]);
          }
        }
        tests.fetch_add(1, std::memory_order_relaxed);
        if (Implies(others, sigma[mi])) {
          // Only this worker's group writes this slot (readers elsewhere).
          alive[mi].store(0, std::memory_order_relaxed);
          removed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  if (cstats) {
    cstats->messages = cluster.messages();
    cstats->bytes_shipped = cluster.bytes();
  }
  st.implication_tests += tests.load();
  st.removed += removed.load();

  std::vector<Gfd> cover;
  for (size_t i = 0; i < n; ++i) {
    // RunStep joined the workers; relaxed reads see the final flags.
    if (alive[i].load(std::memory_order_relaxed)) {
      cover.push_back(std::move(sigma[i]));
    }
  }
  return cover;
}

std::vector<Gfd> ParCoverNoGrouping(std::vector<Gfd> sigma,
                                    const ParallelRunConfig& pcfg,
                                    CoverStats* stats) {
  CoverStats local_stats;
  CoverStats& st = stats ? *stats : local_stats;
  Dedup(sigma, st);
  const size_t n = sigma.size();

  // Phase 1: parallel marking, every test against the full Sigma (that is
  // the ablation's cost: no Lemma-6 locality).
  std::vector<char> candidate(n, 0);
  std::atomic<uint64_t> tests{0};
  Cluster cluster(pcfg.workers);
  ThreadPool pool(pcfg.workers);
  ParallelFor(pool, n, [&](size_t i) {
    std::vector<Gfd> others;
    others.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(sigma[j]);
    }
    tests.fetch_add(1, std::memory_order_relaxed);
    if (Implies(others, sigma[i])) candidate[i] = 1;
  });
  st.implication_tests += tests.load();

  // Phase 2: sequential confirmation against the surviving set, so that
  // mutually implying GFDs are not both dropped.
  std::vector<char> alive(n, 1);
  for (size_t i = 0; i < n; ++i) {
    if (!candidate[i]) continue;
    std::vector<Gfd> others;
    for (size_t j = 0; j < n; ++j) {
      if (j != i && alive[j]) others.push_back(sigma[j]);
    }
    ++st.implication_tests;
    if (Implies(others, sigma[i])) {
      alive[i] = 0;
      ++st.removed;
    }
  }
  std::vector<Gfd> cover;
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) cover.push_back(std::move(sigma[i]));
  }
  return cover;
}

}  // namespace gfd
