#include "parallel/fragment.h"

#include <algorithm>

namespace gfd {

Fragmentation VertexCutPartition(const PropertyGraph& g, size_t n) {
  Fragmentation frag;
  frag.num_fragments = n;
  frag.edge_fragment.resize(g.NumEdges());
  frag.fragment_edges.resize(n);
  frag.node_owner.assign(g.NumNodes(), 0);

  const size_t m = g.NumEdges();
  const size_t cap = (m + n - 1) / n;  // hard balance cap per fragment

  // Per node: bitmask of fragments hosting one of its edges (n <= 64 for
  // the mask; larger n falls back to least-loaded placement only).
  std::vector<uint64_t> node_frags(g.NumNodes(), 0);
  std::vector<size_t> load(n, 0);

  for (EdgeId e = 0; e < m; ++e) {
    NodeId s = g.EdgeSrc(e), d = g.EdgeDst(e);
    uint64_t mask = (n <= 64) ? (node_frags[s] | node_frags[d]) : 0;
    size_t best = n;  // invalid
    // Prefer the least-loaded fragment already hosting an endpoint,
    // provided it is not at the balance cap.
    for (size_t f = 0; f < n && mask; ++f) {
      if (!(mask >> f & 1)) continue;
      if (load[f] >= cap) continue;
      if (best == n || load[f] < load[best]) best = f;
    }
    if (best == n) {
      // Fall back to the globally least-loaded fragment.
      best = 0;
      for (size_t f = 1; f < n; ++f) {
        if (load[f] < load[best]) best = f;
      }
    }
    frag.edge_fragment[e] = static_cast<uint32_t>(best);
    frag.fragment_edges[best].push_back(e);
    ++load[best];
    if (n <= 64) {
      node_frags[s] |= 1ull << best;
      node_frags[d] |= 1ull << best;
    }
  }

  // Node owners and replication factor.
  size_t replicas = 0, touched = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint64_t mask = node_frags[v];
    if (mask) {
      ++touched;
      replicas += static_cast<size_t>(__builtin_popcountll(mask));
      frag.node_owner[v] = static_cast<uint32_t>(__builtin_ctzll(mask));
    } else {
      frag.node_owner[v] = static_cast<uint32_t>(v % n);
    }
  }
  frag.replication = touched ? static_cast<double>(replicas) / touched : 1.0;
  return frag;
}

DeltaRouting RouteDelta(const GraphDelta& d,
                        std::span<const uint32_t> node_owner,
                        size_t num_fragments) {
  DeltaRouting route;
  route.ops_per_fragment.assign(num_fragments, 0);
  std::vector<bool> affected(num_fragments, false);
  auto owner_of = [&](NodeId v) -> uint32_t {
    return v < node_owner.size() ? node_owner[v]
                                 : static_cast<uint32_t>(num_fragments);
  };
  for (const GraphDelta::Op& op : d.ops) {
    uint32_t a = owner_of(op.src);
    uint32_t b = a;
    if (op.kind != GraphDelta::OpKind::kSetAttr) b = owner_of(op.dst);
    if (a < num_fragments) {
      ++route.ops_per_fragment[a];
      affected[a] = true;
    }
    if (b != a && b < num_fragments) {
      ++route.ops_per_fragment[b];
      affected[b] = true;
    }
  }
  for (uint32_t f = 0; f < num_fragments; ++f) {
    if (affected[f]) route.affected_fragments.push_back(f);
  }
  return route;
}

}  // namespace gfd
