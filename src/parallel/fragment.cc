#include "parallel/fragment.h"

#include <algorithm>

namespace gfd {

Fragmentation VertexCutPartition(const PropertyGraph& g, size_t n) {
  Fragmentation frag;
  frag.num_fragments = n;
  frag.edge_fragment.resize(g.NumEdges());
  frag.fragment_edges.resize(n);
  frag.node_owner.assign(g.NumNodes(), 0);

  const size_t m = g.NumEdges();
  const size_t cap = (m + n - 1) / n;  // hard balance cap per fragment

  // Per node: bitmask of fragments hosting one of its edges (n <= 64 for
  // the mask; larger n falls back to least-loaded placement only).
  std::vector<uint64_t> node_frags(g.NumNodes(), 0);
  std::vector<size_t> load(n, 0);

  for (EdgeId e = 0; e < m; ++e) {
    NodeId s = g.EdgeSrc(e), d = g.EdgeDst(e);
    uint64_t mask = (n <= 64) ? (node_frags[s] | node_frags[d]) : 0;
    size_t best = n;  // invalid
    // Prefer the least-loaded fragment already hosting an endpoint,
    // provided it is not at the balance cap.
    for (size_t f = 0; f < n && mask; ++f) {
      if (!(mask >> f & 1)) continue;
      if (load[f] >= cap) continue;
      if (best == n || load[f] < load[best]) best = f;
    }
    if (best == n) {
      // Fall back to the globally least-loaded fragment.
      best = 0;
      for (size_t f = 1; f < n; ++f) {
        if (load[f] < load[best]) best = f;
      }
    }
    frag.edge_fragment[e] = static_cast<uint32_t>(best);
    frag.fragment_edges[best].push_back(e);
    ++load[best];
    if (n <= 64) {
      node_frags[s] |= 1ull << best;
      node_frags[d] |= 1ull << best;
    }
  }

  // Node owners and replication factor.
  size_t replicas = 0, touched = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint64_t mask = node_frags[v];
    if (mask) {
      ++touched;
      replicas += static_cast<size_t>(__builtin_popcountll(mask));
      frag.node_owner[v] = static_cast<uint32_t>(__builtin_ctzll(mask));
    } else {
      frag.node_owner[v] = static_cast<uint32_t>(v % n);
    }
  }
  frag.replication = touched ? static_cast<double>(replicas) / touched : 1.0;
  return frag;
}

}  // namespace gfd
