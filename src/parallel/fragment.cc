#include "parallel/fragment.h"

#include <algorithm>
#include <deque>

namespace gfd {

Fragmentation VertexCutPartition(const PropertyGraph& g, size_t n) {
  Fragmentation frag;
  frag.partition.num_fragments = n;
  frag.edge_fragment.resize(g.NumEdges());
  frag.fragment_edges.resize(n);
  frag.partition.node_owner.assign(g.NumNodes(), 0);

  const size_t m = g.NumEdges();
  const size_t cap = (m + n - 1) / n;  // hard balance cap per fragment

  // Per node: bitmask of fragments hosting one of its edges (n <= 64 for
  // the mask; larger n falls back to least-loaded placement only).
  std::vector<uint64_t> node_frags(g.NumNodes(), 0);
  std::vector<size_t> load(n, 0);

  for (EdgeId e = 0; e < m; ++e) {
    NodeId s = g.EdgeSrc(e), d = g.EdgeDst(e);
    uint64_t mask = (n <= 64) ? (node_frags[s] | node_frags[d]) : 0;
    size_t best = n;  // invalid
    // Prefer the least-loaded fragment already hosting an endpoint,
    // provided it is not at the balance cap.
    for (size_t f = 0; f < n && mask; ++f) {
      if (!(mask >> f & 1)) continue;
      if (load[f] >= cap) continue;
      if (best == n || load[f] < load[best]) best = f;
    }
    if (best == n) {
      // Fall back to the globally least-loaded fragment.
      best = 0;
      for (size_t f = 1; f < n; ++f) {
        if (load[f] < load[best]) best = f;
      }
    }
    frag.edge_fragment[e] = static_cast<uint32_t>(best);
    frag.fragment_edges[best].push_back(e);
    ++load[best];
    if (n <= 64) {
      node_frags[s] |= 1ull << best;
      node_frags[d] |= 1ull << best;
    }
  }

  // Node owners and replication factor.
  size_t replicas = 0, touched = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint64_t mask = node_frags[v];
    if (mask) {
      ++touched;
      replicas += static_cast<size_t>(__builtin_popcountll(mask));
      frag.partition.node_owner[v] =
          static_cast<uint32_t>(__builtin_ctzll(mask));
    } else {
      frag.partition.node_owner[v] = static_cast<uint32_t>(v % n);
    }
  }
  frag.partition.replication =
      touched ? static_cast<double>(replicas) / touched : 1.0;
  return frag;
}

FragmentResidency ComputeResidency(const std::vector<std::vector<NodeId>>& adj,
                                   const Partition& p) {
  const size_t num_nodes = adj.size();
  FragmentResidency resident(p.num_fragments);
  std::vector<uint32_t> dist;
  std::deque<NodeId> queue;
  for (size_t f = 0; f < p.num_fragments; ++f) {
    resident[f].assign(num_nodes, 0);
    dist.assign(num_nodes, UINT32_MAX);
    queue.clear();
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (v < p.node_owner.size() && p.node_owner[v] == f) {
        dist[v] = 0;
        resident[f][v] = 1;
        queue.push_back(v);
      }
    }
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      if (dist[v] >= p.halo_radius) continue;
      for (NodeId w : adj[v]) {
        if (dist[w] != UINT32_MAX) continue;
        dist[w] = dist[v] + 1;
        resident[f][w] = 1;
        queue.push_back(w);
      }
    }
  }
  return resident;
}

FragmentResidency ComputeResidency(const PropertyGraph& g, const Partition& p) {
  std::vector<std::vector<NodeId>> adj(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    adj[g.EdgeSrc(e)].push_back(g.EdgeDst(e));
    adj[g.EdgeDst(e)].push_back(g.EdgeSrc(e));
  }
  return ComputeResidency(adj, p);
}

void FillBorders(Partition* p, const FragmentResidency& resident) {
  p->borders.assign(p->num_fragments, {});
  for (size_t f = 0; f < p->num_fragments; ++f) {
    for (NodeId v = 0; v < resident[f].size(); ++v) {
      if (resident[f][v] && (v >= p->node_owner.size() ||
                             p->node_owner[v] != static_cast<uint32_t>(f))) {
        p->borders[f].push_back(v);
      }
    }
  }
}

DeltaRouting RouteDelta(const GraphDelta& d,
                        const FragmentResidency& resident) {
  const size_t num_fragments = resident.size();
  DeltaRouting route;
  route.fragment_ops.resize(num_fragments);
  auto resident_in = [&](size_t f, NodeId v) {
    return v < resident[f].size() && resident[f][v] != 0;
  };
  for (size_t i = 0; i < d.ops.size(); ++i) {
    const GraphDelta::Op& op = d.ops[i];
    for (size_t f = 0; f < num_fragments; ++f) {
      if (!resident_in(f, op.src)) continue;
      if (op.kind != GraphDelta::OpKind::kSetAttr && !resident_in(f, op.dst)) {
        continue;
      }
      route.fragment_ops[f].push_back(i);
    }
  }
  for (uint32_t f = 0; f < num_fragments; ++f) {
    if (!route.fragment_ops[f].empty()) route.affected_fragments.push_back(f);
  }
  return route;
}

}  // namespace gfd
