// ParCover (Section 6.3): parallel cover computation. Sigma is partitioned
// into groups of GFDs sharing (up to isomorphism) one pattern Q_j; by the
// independence property (Lemma 6), Sigma \ {phi} |= phi iff the GFDs whose
// patterns embed into Q_j already imply phi. Groups are assigned to
// workers with an LPT (longest-processing-time-first) 2-approximate
// balancer and eliminated group-locally in parallel.
//
// Cross-group soundness: a non-trivial implication premise must embed into
// the target's pattern; mutual embedding forces isomorphism, i.e. the same
// group -- so concurrent group-local removals can never remove two GFDs
// that only imply each other.
#ifndef GFD_PARALLEL_PARCOVER_H_
#define GFD_PARALLEL_PARCOVER_H_

#include <vector>

#include "core/cover.h"
#include "gfd/gfd.h"
#include "parallel/cluster.h"

namespace gfd {

/// Parallel cover with pattern grouping (the paper's ParCover).
std::vector<Gfd> ParCover(std::vector<Gfd> sigma,
                          const ParallelRunConfig& pcfg,
                          CoverStats* stats = nullptr,
                          ClusterStats* cstats = nullptr);

/// The ParCovern ablation: no grouping -- every implication test runs
/// against all of Sigma (parallel marking + sequential confirmation).
std::vector<Gfd> ParCoverNoGrouping(std::vector<Gfd> sigma,
                                    const ParallelRunConfig& pcfg,
                                    CoverStats* stats = nullptr);

}  // namespace gfd

#endif  // GFD_PARALLEL_PARCOVER_H_
