// Vertex-cut fragmentation (Section 6.1): the graph's edges are evenly
// partitioned across n fragments; nodes are implicitly replicated wherever
// their edges land. A greedy placement keeps fragments balanced while
// preferring fragments that already host one of the edge's endpoints
// (lower replication), the standard vertex-cut heuristic.
#ifndef GFD_PARALLEL_FRAGMENT_H_
#define GFD_PARALLEL_FRAGMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "graph/property_graph.h"

namespace gfd {

/// Ownership state of a vertex-cut partition, shared by DetectSharded,
/// RouteDelta, and the serving coordinator (which persists it in
/// coordinator.meta so every layer reads the same owners).
struct Partition {
  size_t num_fragments = 0;

  /// Halo radius in hops: a node is resident in fragment f iff its
  /// undirected distance from f's owned node set is <= halo_radius.
  /// Correctness requires halo_radius >= the max per-variable
  /// eccentricity over all rule patterns (ViolationEngine::
  /// MaxPatternRadius), so every match anchored at an owned node is
  /// enumerable from the fragment's local view.
  uint32_t halo_radius = 0;

  /// Owner fragment per node: fragment of the node's first incident edge
  /// under the greedy edge placement; isolated nodes are hashed.
  std::vector<uint32_t> node_owner;

  /// Per fragment: sorted resident non-owned nodes (the shipped border
  /// halo). Persisted for introspection; residency is recomputed from
  /// the live graph on open (ComputeResidency is authoritative).
  std::vector<std::vector<NodeId>> borders;

  /// Replication factor: average number of fragments a (non-isolated)
  /// node appears in under the edge partition. 1.0 = no replication.
  double replication = 1.0;
};

/// An edge partition of a graph. Fragment f owns fragment_edges[f];
/// `partition` carries the derived ownership state.
struct Fragmentation {
  Partition partition;
  std::vector<uint32_t> edge_fragment;            ///< edge id -> fragment
  std::vector<std::vector<EdgeId>> fragment_edges;
};

/// Partitions `g`'s edges into `n` fragments. Precondition: n >= 1.
/// Deterministic. Fragment sizes differ by at most a small constant.
/// The returned partition has halo_radius 0 and empty borders; callers
/// pick the radius and derive borders via ComputeResidency/FillBorders.
Fragmentation VertexCutPartition(const PropertyGraph& g, size_t n);

/// Per-fragment node residency map: resident[f][v] != 0 iff v lies
/// within p.halo_radius undirected hops of a node owned by f (owned
/// nodes are at distance 0, hence always resident).
using FragmentResidency = std::vector<std::vector<char>>;

/// Computes residency by multi-source BFS from each fragment's owned
/// set over `adj`, the undirected neighbor lists of the live graph
/// (duplicate neighbors are harmless).
FragmentResidency ComputeResidency(const std::vector<std::vector<NodeId>>& adj,
                                   const Partition& p);

/// Convenience overload over a materialized graph.
FragmentResidency ComputeResidency(const PropertyGraph& g, const Partition& p);

/// Rebuilds p.borders from a residency map: borders[f] = sorted resident
/// nodes of f that f does not own.
void FillBorders(Partition* p, const FragmentResidency& resident);

/// Shipping plan of one update batch under vertex-cut partitioned
/// storage. RouteDelta is the coordinator's delivery mechanism: each
/// fragment receives exactly the ops whose referenced nodes are all
/// resident in its pre-batch view, in stream order; the coordinator
/// appends halo-maintenance ops (border entry/exit repair) separately.
/// `gfdtool serve append` reports the same plan as shipping fan-out.
struct DeltaRouting {
  /// For each fragment: ascending indices into d.ops of the ops it
  /// receives. An op shipping to k fragments appears in k lists,
  /// exactly like vertex replication.
  std::vector<std::vector<size_t>> fragment_ops;
  /// Fragments receiving at least one op, sorted ascending.
  std::vector<uint32_t> affected_fragments;
};

/// Routes `d`'s ops by residency: an op ships to fragment f iff every
/// node it references is resident in f (edge ops: both endpoints; attr
/// ops: the node — so halo copies stay attribute-fresh). Ops that
/// reference out-of-range nodes are ignored (validation is the store's
/// job).
DeltaRouting RouteDelta(const GraphDelta& d, const FragmentResidency& resident);

}  // namespace gfd

#endif  // GFD_PARALLEL_FRAGMENT_H_
