// Vertex-cut fragmentation (Section 6.1): the graph's edges are evenly
// partitioned across n fragments; nodes are implicitly replicated wherever
// their edges land. A greedy placement keeps fragments balanced while
// preferring fragments that already host one of the edge's endpoints
// (lower replication), the standard vertex-cut heuristic.
#ifndef GFD_PARALLEL_FRAGMENT_H_
#define GFD_PARALLEL_FRAGMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "graph/property_graph.h"

namespace gfd {

/// An edge partition of a graph. Fragment f owns fragment_edges[f].
struct Fragmentation {
  size_t num_fragments = 0;
  std::vector<uint32_t> edge_fragment;            ///< edge id -> fragment
  std::vector<std::vector<EdgeId>> fragment_edges;

  /// Replication factor: average number of fragments a (non-isolated)
  /// node appears in. 1.0 = no replication.
  double replication = 1.0;

  /// Owner fragment per node (for pivot-aligned bookkeeping): fragment of
  /// the node's first incident edge; isolated nodes are hashed.
  std::vector<uint32_t> node_owner;
};

/// Partitions `g`'s edges into `n` fragments. Precondition: n >= 1.
/// Deterministic. Fragment sizes differ by at most a small constant.
Fragmentation VertexCutPartition(const PropertyGraph& g, size_t n);

/// Shipping plan of one update batch under vertex-cut node ownership: an
/// edge op is routed to the fragment(s) owning either endpoint, an
/// attribute op to its node's owner. This is introspection/reporting,
/// not scheduling: the coordinator itself (serve/coordinator.h)
/// broadcasts every batch to all replicas and lets overlay-wide
/// affected-node ownership drive detection (a fragment may owe work to
/// an OLDER batch's nodes even when this batch routes nowhere near it);
/// `gfdtool serve append` uses RouteDelta to report which fragments own
/// the batch's touched vertices.
struct DeltaRouting {
  /// Ops routed to each fragment (an op touching two fragments counts
  /// once in each; sums can exceed the batch size, exactly like vertex
  /// replication).
  std::vector<size_t> ops_per_fragment;
  /// Fragments owning at least one touched vertex, sorted ascending.
  std::vector<uint32_t> affected_fragments;
};

/// Routes `d`'s ops across `num_fragments` fragments by `node_owner`
/// (one owner per node, as Fragmentation::node_owner). Ops referencing
/// out-of-range nodes are ignored (validation is the store's job).
DeltaRouting RouteDelta(const GraphDelta& d,
                        std::span<const uint32_t> node_owner,
                        size_t num_fragments);

}  // namespace gfd

#endif  // GFD_PARALLEL_FRAGMENT_H_
