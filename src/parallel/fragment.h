// Vertex-cut fragmentation (Section 6.1): the graph's edges are evenly
// partitioned across n fragments; nodes are implicitly replicated wherever
// their edges land. A greedy placement keeps fragments balanced while
// preferring fragments that already host one of the edge's endpoints
// (lower replication), the standard vertex-cut heuristic.
#ifndef GFD_PARALLEL_FRAGMENT_H_
#define GFD_PARALLEL_FRAGMENT_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"

namespace gfd {

/// An edge partition of a graph. Fragment f owns fragment_edges[f].
struct Fragmentation {
  size_t num_fragments = 0;
  std::vector<uint32_t> edge_fragment;            ///< edge id -> fragment
  std::vector<std::vector<EdgeId>> fragment_edges;

  /// Replication factor: average number of fragments a (non-isolated)
  /// node appears in. 1.0 = no replication.
  double replication = 1.0;

  /// Owner fragment per node (for pivot-aligned bookkeeping): fragment of
  /// the node's first incident edge; isolated nodes are hashed.
  std::vector<uint32_t> node_owner;
};

/// Partitions `g`'s edges into `n` fragments. Precondition: n >= 1.
/// Deterministic. Fragment sizes differ by at most a small constant.
Fragmentation VertexCutPartition(const PropertyGraph& g, size_t n);

}  // namespace gfd

#endif  // GFD_PARALLEL_FRAGMENT_H_
