// The simulated shared-nothing cluster: a master coordinating n workers
// (threads) over a vertex-cut fragmented graph, in BSP supersteps. Data
// that crosses worker boundaries is explicitly *copied* through Ship(),
// which accounts messages and bytes -- the transport is memcpy instead of
// TCP, but the communication pattern (what is shipped, when, to whom) is
// the paper's (Section 6.2). See DESIGN.md "Substitutions".
#ifndef GFD_PARALLEL_CLUSTER_H_
#define GFD_PARALLEL_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.h"

namespace gfd {

/// Runtime knobs of the parallel algorithms.
struct ParallelRunConfig {
  size_t workers = 4;
  /// Pivot-aligned match shuffling between supersteps (Section 6.2 "load
  /// balancing"). The ParGFDnb ablation turns this off.
  bool load_balance = true;
};

/// Communication and skew accounting for one parallel run.
struct ClusterStats {
  uint64_t messages = 0;
  uint64_t bytes_shipped = 0;
  uint64_t matches_rebalanced = 0;
  double match_seconds = 0;     ///< parallel pattern matching wall time
  double validate_seconds = 0;  ///< parallel GFD validation wall time
  double replication = 1.0;     ///< vertex-cut node replication factor
  /// Max over supersteps of (max worker busy share / mean busy share);
  /// 1.0 = perfectly balanced.
  double max_skew = 1.0;
};

/// Master + n workers executing barrier-synchronized steps.
class Cluster {
 public:
  explicit Cluster(size_t workers)
      : pool_(workers), workers_(workers) {}

  size_t num_workers() const { return workers_; }

  /// Runs fn(worker_id) on every worker and waits for all (one BSP step).
  void RunStep(const std::function<void(size_t)>& fn) {
    ParallelFor(pool_, workers_, fn);
  }

  /// Accounts a point-to-point shipment of `count` items of size
  /// `item_bytes` and returns nothing; the caller performs the actual
  /// copy. Thread safe.
  void CountShipment(uint64_t count, uint64_t item_bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(count * item_bytes, std::memory_order_relaxed);
  }

  /// Accounts a broadcast from the master to all workers.
  void CountBroadcast(uint64_t count, uint64_t item_bytes) {
    messages_.fetch_add(workers_, std::memory_order_relaxed);
    bytes_.fetch_add(workers_ * count * item_bytes,
                     std::memory_order_relaxed);
  }

  uint64_t messages() const { return messages_.load(); }
  uint64_t bytes() const { return bytes_.load(); }

 private:
  ThreadPool pool_;
  size_t workers_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace gfd

#endif  // GFD_PARALLEL_CLUSTER_H_
