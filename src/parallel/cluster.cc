#include "parallel/cluster.h"

// Header-only for now; this translation unit anchors the library target.
