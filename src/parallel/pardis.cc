#include "parallel/pardis.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "core/generation_tree.h"
#include "core/lattice_util.h"
#include "core/literal_pool.h"
#include "core/profile.h"
#include "gfd/problems.h"
#include "graph/stats.h"
#include "match/incremental.h"
#include "parallel/fragment.h"
#include "util/hash.h"
#include "util/timer.h"

namespace gfd {

namespace {

// A batched evaluation request against one pattern's distributed rows.
struct EvalQuery {
  LitMask mask;     // X (or X' / singleton)
  int rhs_bit = -1; // -1: no RHS
};

// Aggregated answer.
struct EvalAnswer {
  uint64_t supp = 0;       // pivots with a match satisfying mask ∪ {rhs}
  bool violated = false;   // some match: mask ⊆ sat, rhs not in sat
  bool any_sat = false;    // some match satisfies mask
  bool any_present = false;// some match has all attrs of mask present
};

// Per-worker state for one pattern: owned matches and their profile rows
// (rows are grouped by pivot for the supp computation).
struct WorkerPatternState {
  std::vector<Match> matches;
  std::vector<ProfileRow> rows;  // sorted by pivot once profiled
};

class ParMiner {
 public:
  ParMiner(const PropertyGraph& g, const DiscoveryConfig& cfg,
           const ParallelRunConfig& pcfg)
      : g_(g),
        cfg_(cfg),
        pcfg_(pcfg),
        cluster_(pcfg.workers),
        frag_(VertexCutPartition(g, pcfg.workers)),
        gstats_(g) {}

  DiscoveryResult Run(ClusterStats* out_stats) {
    gamma_ = ResolveActiveAttrs(gstats_, cfg_);
    auto triples = gstats_.FrequentTriples(cfg_.support_threshold);
    auto wildcard_labels =
        cfg_.wildcard_upgrades ? WildcardEdgeLabels(gstats_, cfg_)
                               : std::vector<LabelId>{};
    cstats_.replication = frag_.partition.replication;

    // Level 0: single-node patterns; their "matches" are the label's nodes,
    // placed at their owner fragment.
    auto l0 = InitTree(tree_, gstats_, cfg_, result_.stats);
    for (int id : l0) SeedSingleNodeMatches(id);
    SortGeneralFirst(l0);
    for (int id : l0) ProcessPattern(id);

    const size_t max_level = cfg_.k * cfg_.k;
    for (size_t level = 1; level <= max_level && !Exhausted(); ++level) {
      auto spawned = VSpawn(tree_, static_cast<int>(level), triples,
                            wildcard_labels, cfg_, result_.stats);
      if (spawned.empty()) break;
      // Parallel incremental matching for every spawned pattern.
      WallTimer match_timer;
      for (int id : spawned) MatchPattern(id);
      cstats_.match_seconds += match_timer.Seconds();
      // Drop the previous level's matches: joins only need level-1.
      for (int id : tree_.level(level - 1)) states_.erase(id);
      SortGeneralFirst(spawned);
      for (int id : spawned) {
        if (Exhausted()) break;
        ProcessPattern(id);
      }
    }

    FinalizeReduced(result_);
    cstats_.messages = cluster_.messages();
    cstats_.bytes_shipped = cluster_.bytes();
    if (out_stats) *out_stats = cstats_;
    return std::move(result_);
  }

 private:
  bool Exhausted() const { return result_.stats.budget_exceeded; }

  bool ChargeCandidate() {
    ++result_.stats.candidates_generated;
    if (result_.stats.candidates_generated > cfg_.candidate_budget) {
      result_.stats.budget_exceeded = true;
      return false;
    }
    return true;
  }

  void SortGeneralFirst(std::vector<int>& ids) {
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
      size_t wa = WildcardCount(tree_.node(a).pattern);
      size_t wb = WildcardCount(tree_.node(b).pattern);
      if (wa != wb) return wa > wb;
      return a < b;
    });
  }

  size_t OwnerOf(NodeId pivot) const {
    if (pcfg_.load_balance) return pivot % pcfg_.workers;
    return frag_.partition.node_owner[pivot];
  }

  void SeedSingleNodeMatches(int node_id) {
    const TreeNode& node = tree_.node(node_id);
    auto& st = states_[node_id];
    st.assign(pcfg_.workers, {});
    LabelId l = node.pattern.NodeLabel(0);
    for (NodeId v = 0; v < g_.NumNodes(); ++v) {
      if (!LabelMatches(g_.NodeLabel(v), l)) continue;
      st[OwnerOf(v)].matches.push_back({v});
    }
  }

  // Parallel incremental matching: Q'(F_s) = Q(F_s) |><| e(F_t) for all t.
  void MatchPattern(int node_id) {
    TreeNode& node = tree_.node(node_id);
    auto& st = states_[node_id];
    st.assign(pcfg_.workers, {});
    if (node.parents.empty()) return;
    int parent_id = node.parents[0];
    auto pit = states_.find(parent_id);
    if (pit == states_.end()) return;  // parent not materialized (rare)
    auto& parent_states = pit->second;

    const DeltaEdge& delta = node.delta;
    LabelId src_label = node.pattern.NodeLabel(delta.src);
    LabelId dst_label = node.pattern.NodeLabel(delta.dst);

    // Step 1 (parallel): each worker extracts its local e(F_t).
    std::vector<std::vector<CandidateEdge>> local_edges(pcfg_.workers);
    cluster_.RunStep([&](size_t w) {
      local_edges[w] = CollectCandidateEdges(g_, src_label, delta.label,
                                             dst_label,
                                             &frag_.fragment_edges[w]);
    });

    // Step 2: all-to-all shipment of candidate edge lists. In the
    // simulated cluster the "shipment" is the concatenation below; we
    // account (n-1) receivers per fragment list.
    std::vector<CandidateEdge> all_edges;
    for (size_t t = 0; t < pcfg_.workers; ++t) {
      cluster_.CountShipment(local_edges[t].size() * (pcfg_.workers - 1),
                             sizeof(CandidateEdge));
      all_edges.insert(all_edges.end(), local_edges[t].begin(),
                       local_edges[t].end());
    }
    std::sort(all_edges.begin(), all_edges.end(),
              [](const CandidateEdge& a, const CandidateEdge& b) {
                return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    all_edges.erase(std::unique(all_edges.begin(), all_edges.end()),
                    all_edges.end());

    // Step 3 (parallel): local joins.
    std::vector<size_t> loads(pcfg_.workers, 0);
    cluster_.RunStep([&](size_t w) {
      st[w].matches = JoinMatchesWithEdges(parent_states[w].matches, delta,
                                           all_edges);
      loads[w] = st[w].matches.size();
    });

    // Skew accounting (before any re-balancing).
    size_t total = 0, max_load = 0;
    for (size_t w = 0; w < pcfg_.workers; ++w) {
      total += loads[w];
      max_load = std::max(max_load, loads[w]);
    }
    if (total > 0) {
      double mean = static_cast<double>(total) / pcfg_.workers;
      cstats_.max_skew = std::max(cstats_.max_skew, max_load / mean);
    }

    // Step 4: pivot-aligned shuffle (load balancing). Matches whose pivot
    // hashes elsewhere are shipped to their owner.
    if (pcfg_.load_balance) {
      const VarId pivot = node.pattern.pivot();
      std::vector<std::vector<Match>> outbound(pcfg_.workers);
      for (size_t w = 0; w < pcfg_.workers; ++w) {
        auto& mine = st[w].matches;
        std::vector<Match> keep;
        for (auto& m : mine) {
          size_t owner = m[pivot] % pcfg_.workers;
          if (owner == w) {
            keep.push_back(std::move(m));
          } else {
            outbound[owner].push_back(std::move(m));
            ++cstats_.matches_rebalanced;
          }
        }
        mine = std::move(keep);
      }
      for (size_t w = 0; w < pcfg_.workers; ++w) {
        cluster_.CountShipment(outbound[w].size(),
                               node.pattern.NumNodes() * sizeof(NodeId));
        auto& mine = st[w].matches;
        mine.insert(mine.end(),
                    std::make_move_iterator(outbound[w].begin()),
                    std::make_move_iterator(outbound[w].end()));
      }
    }
  }

  // Verifies support, handles NVSpawn, and mines the pattern's literal
  // trees with distributed batch validation.
  void ProcessPattern(int node_id) {
    TreeNode& node = tree_.node(node_id);
    auto& st = states_[node_id];

    size_t total_matches = 0;
    for (const auto& w : st) total_matches += w.matches.size();
    result_.stats.profile_matches += total_matches;
    result_.stats.max_pattern_matches =
        std::max<uint64_t>(result_.stats.max_pattern_matches, total_matches);
    node.support = CountDistinctPivots(node_id);
    node.verified = true;
    node.frequent = cfg_.prune ? node.support >= cfg_.support_threshold
                               : node.support > 0;
    if (node.frequent) ++result_.stats.patterns_frequent;

    if (node.support == 0) {
      ++result_.stats.patterns_zero_support;
      if (cfg_.discover_negative) NVSpawn(node_id);
      return;
    }
    if (cfg_.prune && node.support < cfg_.support_threshold) return;

    // Distributed constant collection -> literal pool at the master.
    std::vector<std::vector<VarConstFreq>> local_consts(pcfg_.workers);
    cluster_.RunStep([&](size_t w) {
      MatchStore store;
      store.matches = st[w].matches;  // local view
      local_consts[w] = CollectMatchConstants(g_, store, gamma_);
    });
    std::map<std::tuple<VarId, AttrId, ValueId>, uint64_t> merged;
    for (size_t w = 0; w < pcfg_.workers; ++w) {
      cluster_.CountShipment(local_consts[w].size(), sizeof(VarConstFreq));
      for (const auto& c : local_consts[w]) {
        merged[{c.var, c.attr, c.value}] += c.count;
      }
    }
    std::vector<VarConstFreq> constants;
    constants.reserve(merged.size());
    for (const auto& [key, count] : merged) {
      constants.push_back(
          {std::get<0>(key), std::get<1>(key), std::get<2>(key), count});
    }
    std::sort(constants.begin(), constants.end(),
              [](const VarConstFreq& l, const VarConstFreq& r) {
                if (l.count != r.count) return l.count > r.count;
                if (l.var != r.var) return l.var < r.var;
                if (l.attr != r.attr) return l.attr < r.attr;
                return l.value < r.value;
              });
    auto pool = BuildLiteralPoolFromMatches(node.pattern, gamma_, constants,
                                            cfg_);
    cluster_.CountBroadcast(pool.size(), sizeof(Literal));

    // Distributed row profiling (rows stay at their worker).
    WallTimer vt;
    const VarId pivot = node.pattern.pivot();
    cluster_.RunStep([&](size_t w) {
      auto& ws = st[w];
      ws.rows.clear();
      ws.rows.reserve(ws.matches.size());
      for (const auto& m : ws.matches) {
        ws.rows.push_back(ProfileMatch(g_, m, pivot, pool));
      }
      std::sort(ws.rows.begin(), ws.rows.end(),
                [](const ProfileRow& a, const ProfileRow& b) {
                  return a.pivot < b.pivot;
                });
    });

    MineLiterals(node_id, pool);
    cstats_.validate_seconds += vt.Seconds();
    // Rows are no longer needed (matches are kept for next-level joins).
    for (auto& w : st) {
      w.rows.clear();
      w.rows.shrink_to_fit();
    }
  }

  uint64_t CountDistinctPivots(int node_id) {
    const auto& st = states_[node_id];
    const VarId pivot = tree_.node(node_id).pattern.pivot();
    if (pcfg_.load_balance) {
      // Pivot-aligned ownership: local distinct counts sum exactly
      // (supp(phi, G) = sum_s supp(phi, F_s), Section 6.2).
      std::vector<uint64_t> local(pcfg_.workers, 0);
      cluster_.RunStep([&](size_t w) {
        std::vector<NodeId> pivots;
        pivots.reserve(st[w].matches.size());
        for (const auto& m : st[w].matches) pivots.push_back(m[pivot]);
        std::sort(pivots.begin(), pivots.end());
        pivots.erase(std::unique(pivots.begin(), pivots.end()),
                     pivots.end());
        local[w] = pivots.size();
      });
      uint64_t total = 0;
      for (uint64_t c : local) total += c;
      return total;
    }
    // Unbalanced ownership: pivots may repeat across workers; the master
    // unions shipped pivot sets (extra communication, the ablation cost).
    std::set<NodeId> all;
    for (size_t w = 0; w < pcfg_.workers; ++w) {
      cluster_.CountShipment(st[w].matches.size(), sizeof(NodeId));
      for (const auto& m : st[w].matches) all.insert(m[pivot]);
    }
    return all.size();
  }

  // Evaluates a batch of queries against the pattern's distributed rows.
  std::vector<EvalAnswer> Evaluate(int node_id,
                                   const std::vector<EvalQuery>& batch) {
    const auto& st = states_[node_id];
    const size_t n = pcfg_.workers;
    std::vector<std::vector<EvalAnswer>> local(n);
    std::vector<std::vector<std::vector<NodeId>>> local_pivots(n);
    cluster_.RunStep([&](size_t w) {
      const auto& rows = st[w].rows;
      auto& answers = local[w];
      answers.assign(batch.size(), {});
      if (!pcfg_.load_balance) {
        local_pivots[w].assign(batch.size(), {});
      }
      for (size_t qi = 0; qi < batch.size(); ++qi) {
        const EvalQuery& q = batch[qi];
        EvalAnswer& a = answers[qi];
        LitMask need = q.mask;
        if (q.rhs_bit >= 0) need.set(q.rhs_bit);
        size_t i = 0;
        while (i < rows.size()) {
          // One pivot group: rows are sorted by pivot.
          NodeId pv = rows[i].pivot;
          bool supp_here = false;
          for (; i < rows.size() && rows[i].pivot == pv; ++i) {
            const ProfileRow& r = rows[i];
            if ((r.sat & q.mask) == q.mask) {
              a.any_sat = true;
              if (q.rhs_bit >= 0 && !r.sat.test(q.rhs_bit)) {
                a.violated = true;
              }
            }
            if ((r.sat & need) == need) supp_here = true;
            if ((r.present & q.mask) == q.mask) a.any_present = true;
          }
          if (supp_here) {
            ++a.supp;
            if (!pcfg_.load_balance) local_pivots[w][qi].push_back(pv);
          }
        }
      }
    });
    // Master aggregation.
    std::vector<EvalAnswer> out(batch.size());
    if (pcfg_.load_balance) {
      for (size_t w = 0; w < n; ++w) {
        cluster_.CountShipment(batch.size(), sizeof(EvalAnswer));
        for (size_t qi = 0; qi < batch.size(); ++qi) {
          out[qi].supp += local[w][qi].supp;
          out[qi].violated |= local[w][qi].violated;
          out[qi].any_sat |= local[w][qi].any_sat;
          out[qi].any_present |= local[w][qi].any_present;
        }
      }
    } else {
      std::vector<std::set<NodeId>> pivot_union(batch.size());
      for (size_t w = 0; w < n; ++w) {
        cluster_.CountShipment(batch.size(), sizeof(EvalAnswer));
        for (size_t qi = 0; qi < batch.size(); ++qi) {
          out[qi].violated |= local[w][qi].violated;
          out[qi].any_sat |= local[w][qi].any_sat;
          out[qi].any_present |= local[w][qi].any_present;
          cluster_.CountShipment(local_pivots[w][qi].size(), sizeof(NodeId));
          pivot_union[qi].insert(local_pivots[w][qi].begin(),
                                 local_pivots[w][qi].end());
        }
      }
      for (size_t qi = 0; qi < batch.size(); ++qi) {
        out[qi].supp = pivot_union[qi].size();
      }
    }
    return out;
  }

  void NVSpawn(int node_id) {
    const TreeNode& node = tree_.node(node_id);
    uint64_t base_support = 0;
    for (int pid : node.parents) {
      const TreeNode& parent = tree_.node(pid);
      if (parent.verified && parent.frequent) {
        base_support = std::max(base_support, parent.support);
      }
    }
    if (base_support < cfg_.support_threshold) return;
    AddNegative(node_id, Gfd(node.pattern, {}, Literal::False()),
                base_support);
  }

  // Master-driven literal lattice with distributed batch evaluation.
  // Mirrors SeqDis::MineRhsTree level by level, but all rhs trees of the
  // pattern advance together so each (i, j) step is one worker batch
  // (the paper's HSpawn(i, j) batches).
  void MineLiterals(int node_id, const std::vector<Literal>& pool) {
    const TreeNode& node = tree_.node(node_id);

    // Usable bits (one batch of singleton queries).
    std::vector<EvalQuery> singles(pool.size());
    for (size_t b = 0; b < pool.size(); ++b) singles[b].mask.set(b);
    auto single_answers = Evaluate(node_id, singles);
    LitMask usable;
    for (size_t b = 0; b < pool.size(); ++b) {
      if (cfg_.prune) {
        if (single_answers[b].supp >= cfg_.support_threshold) usable.set(b);
      } else {
        if (single_answers[b].any_sat) usable.set(b);
      }
    }

    struct XNode {
      uint32_t rhs;
      LitMask mask;
      int max_bit;
    };
    std::vector<XNode> frontier;
    for (size_t r = 0; r < pool.size(); ++r) {
      if (usable.test(r)) frontier.push_back({static_cast<uint32_t>(r),
                                              LitMask{}, -1});
    }
    // Per-rhs satisfied (closed) masks, Lemma 4(b).
    std::map<uint32_t, std::vector<LitMask>> closed;

    for (size_t depth = 0; depth <= cfg_.max_lhs_size && !frontier.empty();
         ++depth) {
      // Filter + trivial checks at the master, then one evaluation batch.
      std::vector<XNode> to_eval;
      std::vector<EvalQuery> batch;
      for (const auto& xn : frontier) {
        if (!ChargeCandidate()) return;
        bool superseded = false;
        if (cfg_.prune) {
          for (const auto& c : closed[xn.rhs]) {
            if ((xn.mask & c) == c) {
              superseded = true;
              break;
            }
          }
        }
        if (superseded) {
          ++result_.stats.candidates_pruned_reduced;
          continue;
        }
        Gfd phi(node.pattern, LitsOfMask(xn.mask, pool), pool[xn.rhs]);
        if (IsTrivialGfd(phi)) {
          ++result_.stats.candidates_pruned_trivial;
          continue;
        }
        to_eval.push_back(xn);
        batch.push_back({xn.mask, static_cast<int>(xn.rhs)});
      }
      result_.stats.candidates_validated += batch.size();
      auto answers = Evaluate(node_id, batch);

      // Decide + queue NHSpawn emptiness checks.
      std::vector<XNode> next;
      struct NegCheck {
        LitMask ext;
        uint64_t base_supp;
      };
      std::vector<NegCheck> neg_checks;
      std::vector<EvalQuery> neg_batch;
      for (size_t i = 0; i < to_eval.size(); ++i) {
        const XNode& xn = to_eval[i];
        const EvalAnswer& a = answers[i];
        const bool satisfied = !a.violated;
        if (satisfied) {
          closed[xn.rhs].push_back(xn.mask);
          if (a.supp >= cfg_.support_threshold) {
            Gfd phi(node.pattern, LitsOfMask(xn.mask, pool), pool[xn.rhs]);
            if (IsReducedAway(phi)) {
              ++result_.stats.candidates_pruned_reduced;
            } else {
              AddPositive(phi, a.supp);
            }
            if (cfg_.discover_negative &&
                xn.mask.count() + 1 <= cfg_.max_negative_lhs_size) {
              for (size_t b = 0; b < pool.size(); ++b) {
                if (b == xn.rhs || xn.mask.test(b) || !usable.test(b)) {
                  continue;
                }
                LitMask ext = xn.mask;
                ext.set(b);
                neg_checks.push_back({ext, a.supp});
                neg_batch.push_back({ext, -1});
              }
            }
          }
          if (cfg_.prune) continue;  // close this branch
        }
        if (depth == cfg_.max_lhs_size) continue;
        for (size_t b = xn.max_bit + 1; b < pool.size(); ++b) {
          if (b == xn.rhs || xn.mask.test(b) || !usable.test(b)) continue;
          XNode child{xn.rhs, xn.mask, static_cast<int>(b)};
          child.mask.set(b);
          next.push_back(child);
        }
      }

      if (!neg_batch.empty()) {
        auto neg_answers = Evaluate(node_id, neg_batch);
        for (size_t i = 0; i < neg_checks.size(); ++i) {
          if (neg_answers[i].any_sat) continue;       // Q(G, X', z) != 0
          if (!neg_answers[i].any_present) continue;  // OWA gate
          Gfd neg(node.pattern, LitsOfMask(neg_checks[i].ext, pool),
                  Literal::False());
          if (IsTrivialGfd(neg)) continue;
          AddNegative(node_id, std::move(neg), neg_checks[i].base_supp);
        }
      }
      frontier = std::move(next);
    }
  }

  bool IsReducedAway(const Gfd& phi) const {
    auto it = by_rhs_.find(SignatureOf(phi.rhs));
    if (it == by_rhs_.end()) return false;
    for (size_t idx : it->second) {
      if (GfdReduces(result_.positives[idx], phi)) return true;
    }
    return false;
  }

  void AddPositive(Gfd phi, uint64_t supp) {
    by_rhs_[SignatureOf(phi.rhs)].push_back(result_.positives.size());
    result_.positives.push_back(std::move(phi));
    result_.positive_supports.push_back(supp);
    ++result_.stats.positives_found;
  }

  void AddNegative(int node_id, Gfd phi, uint64_t base_supp) {
    auto key = std::pair(node_id, phi.lhs);
    if (!seen_negatives_.insert(key).second) return;
    for (const auto& neg : result_.negatives) {
      if (GfdReduces(neg, phi)) {
        ++result_.stats.candidates_pruned_reduced;
        return;
      }
    }
    result_.negatives.push_back(std::move(phi));
    result_.negative_supports.push_back(base_supp);
    ++result_.stats.negatives_found;
  }

  const PropertyGraph& g_;
  const DiscoveryConfig cfg_;
  const ParallelRunConfig pcfg_;
  Cluster cluster_;
  Fragmentation frag_;
  GraphStats gstats_;
  std::vector<AttrId> gamma_;
  GenerationTree tree_;
  DiscoveryResult result_;
  ClusterStats cstats_;
  std::unordered_map<int, std::vector<WorkerPatternState>> states_;
  std::map<RhsSig, std::vector<size_t>> by_rhs_;
  std::set<std::pair<int, std::vector<Literal>>> seen_negatives_;
};

}  // namespace

DiscoveryResult ParDis(const PropertyGraph& g, const DiscoveryConfig& cfg,
                       const ParallelRunConfig& pcfg, ClusterStats* stats) {
  return ParMiner(g, cfg, pcfg).Run(stats);
}

}  // namespace gfd
