#include "datagen/noise.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace gfd {

NoisyGraph InjectNoise(const PropertyGraph& g, const NoiseConfig& cfg) {
  Rng rng(cfg.seed);
  PropertyGraph::Builder b;

  // Pre-intern the clean graph's entire vocabulary in id order, so every
  // label/attr/value keeps its id in the corrupted copy. Rules mined on
  // the clean graph hold interned ids; without this, evaluating them on
  // the noisy graph would compare ids from two different interners.
  // (Label id 0 is the wildcard, interned by the Builder constructor.)
  for (LabelId l = 1; l < g.labels().size(); ++l) {
    b.InternLabel(g.LabelName(l));
  }
  for (AttrId a = 0; a < g.attrs().size(); ++a) {
    b.InternAttr(g.AttrName(a));
  }
  for (ValueId v = 0; v < g.values().size(); ++v) {
    b.InternValue(g.ValueName(v));
  }

  // Copy nodes with labels and attributes; node ids are preserved because
  // insertion order matches.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    NodeId nv = b.AddNode(g.LabelName(g.NodeLabel(v)));
    if (!g.NodeName(v).empty()) b.SetName(nv, g.NodeName(v));
  }

  std::unordered_set<NodeId> chosen;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (rng.Chance(cfg.alpha)) chosen.insert(v);
  }

  size_t noise_counter = 0;
  std::vector<NodeId> corrupted;

  // Attributes (possibly corrupted).
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    bool touched = false;
    for (const auto& a : g.NodeAttrs(v)) {
      std::string value = g.ValueName(a.value);
      if (chosen.contains(v) && rng.Chance(cfg.beta) &&
          !rng.Chance(cfg.edge_label_fraction)) {
        value = "noise_" + std::to_string(noise_counter++);
        touched = true;
      }
      b.SetAttr(v, g.AttrName(a.key), value);
    }
    if (touched) corrupted.push_back(v);
  }

  // Edges (labels possibly corrupted; corruption attributed to the source
  // node, matching the paper's "changed ... the labels of edges of v").
  std::unordered_set<NodeId> edge_corrupted;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    NodeId src = g.EdgeSrc(e);
    std::string label = g.LabelName(g.EdgeLabel(e));
    if (chosen.contains(src) && rng.Chance(cfg.beta) &&
        rng.Chance(cfg.edge_label_fraction)) {
      label = "noiserel_" + std::to_string(noise_counter++);
      edge_corrupted.insert(src);
    }
    b.AddEdge(src, g.EdgeDst(e), label);
  }

  corrupted.insert(corrupted.end(), edge_corrupted.begin(),
                   edge_corrupted.end());
  std::sort(corrupted.begin(), corrupted.end());
  corrupted.erase(std::unique(corrupted.begin(), corrupted.end()),
                  corrupted.end());
  return {std::move(b).Build(), std::move(corrupted)};
}

}  // namespace gfd
