#include "datagen/gfd_gen.h"

#include <algorithm>

#include "graph/stats.h"
#include "util/rng.h"

namespace gfd {

std::vector<Gfd> GenerateGfdSet(const PropertyGraph& g,
                                const GfdGenConfig& cfg) {
  Rng rng(cfg.seed);
  GraphStats stats(g);
  const auto& triples = stats.edge_triples();
  std::vector<AttrId> attrs = stats.attr_keys();
  std::vector<Gfd> out;
  if (triples.empty() || attrs.empty()) return out;

  auto random_value = [&](AttrId a) -> ValueId {
    auto top = stats.TopValues(a, 8);
    if (top.empty()) return 0;
    return top[rng.Below(top.size())].value;
  };

  auto random_literal = [&](size_t nvars) -> Literal {
    AttrId a = attrs[rng.Below(attrs.size())];
    VarId x = static_cast<VarId>(rng.Below(nvars));
    if (nvars >= 2 && rng.Chance(0.4)) {
      VarId y = static_cast<VarId>(rng.Below(nvars));
      if (y == x) y = static_cast<VarId>((y + 1) % nvars);
      return Literal::Vars(x, a, y, a);
    }
    return Literal::Const(x, a, random_value(a));
  };

  while (out.size() < cfg.count) {
    if (!out.empty() && rng.Chance(cfg.redundancy)) {
      // Specialize an earlier GFD: add one literal to its LHS (implied by
      // the original, so the cover can drop it).
      const Gfd& base = out[rng.Below(out.size())];
      std::vector<Literal> lhs = base.lhs;
      lhs.push_back(random_literal(base.pattern.NumNodes()));
      out.push_back(Gfd(base.pattern, std::move(lhs), base.rhs));
      continue;
    }
    // Fresh pattern: a random walk over frequent triples.
    Pattern p;
    const auto& t0 = triples[rng.Below(std::min<size_t>(triples.size(), 16))];
    VarId v0 = p.AddNode(t0.src_label);
    VarId v1 = p.AddNode(t0.dst_label);
    p.AddEdge(v0, v1, t0.edge_label);
    p.set_pivot(v0);
    uint32_t extra = static_cast<uint32_t>(rng.Below(cfg.k - 1));
    for (uint32_t i = 0; i < extra && p.NumNodes() < cfg.k; ++i) {
      // Attach a triple whose source label matches some existing node.
      bool attached = false;
      for (size_t trial = 0; trial < 8 && !attached; ++trial) {
        const auto& t =
            triples[rng.Below(std::min<size_t>(triples.size(), 32))];
        for (VarId v = 0; v < p.NumNodes(); ++v) {
          if (p.NodeLabel(v) == t.src_label) {
            VarId nv = p.AddNode(t.dst_label);
            p.AddEdge(v, nv, t.edge_label);
            attached = true;
            break;
          }
        }
      }
    }
    size_t nlhs = rng.Below(cfg.max_lhs + 1);
    std::vector<Literal> lhs;
    for (size_t i = 0; i < nlhs; ++i) {
      lhs.push_back(random_literal(p.NumNodes()));
    }
    Literal rhs = rng.Chance(cfg.negative_fraction)
                      ? Literal::False()
                      : random_literal(p.NumNodes());
    out.push_back(Gfd(std::move(p), std::move(lhs), rhs));
  }
  return out;
}

}  // namespace gfd
