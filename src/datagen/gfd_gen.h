// Random GFD-set generator for the cover-scalability experiment (Exp-4 /
// Fig. 5(l)): sets Sigma controlled by |Sigma| (up to 10000) and k (up to
// 6), built from the frequent edges and values of a host graph. The GFDs
// need not hold on the graph -- cover computation is purely symbolic.
#ifndef GFD_DATAGEN_GFD_GEN_H_
#define GFD_DATAGEN_GFD_GEN_H_

#include <cstdint>
#include <vector>

#include "gfd/gfd.h"
#include "graph/property_graph.h"

namespace gfd {

struct GfdGenConfig {
  size_t count = 1000;
  uint32_t k = 4;           ///< max pattern variables
  size_t max_lhs = 2;
  double negative_fraction = 0.1;
  /// Fraction of generated GFDs that are specializations of an earlier one
  /// (guaranteeing the cover is strictly smaller than Sigma).
  double redundancy = 0.3;
  uint64_t seed = 5;
};

/// Generates `cfg.count` GFDs over `g`'s vocabulary.
std::vector<Gfd> GenerateGfdSet(const PropertyGraph& g,
                                const GfdGenConfig& cfg);

}  // namespace gfd

#endif  // GFD_DATAGEN_GFD_GEN_H_
