// Shape-preserving stand-ins for the paper's real-life datasets (see
// DESIGN.md, "Substitutions"). Each generator emits a typed knowledge
// graph with skewed degrees, five active attributes, and *planted exact
// regularities* so that GFD discovery has real positive and negative rules
// to find:
//
//   - creators of films are producers (phi1 of Example 1),
//   - children and spouses share the family name (GFD1 of Fig. 8),
//   - no film wins both the Gold Bear and the Gold Lion (GFD2 of Fig. 8),
//   - no person is citizen of both the US and Norway (GFD3 of Fig. 8),
//   - parent/child relations are acyclic (phi3 of Example 1),
//   - every typed entity carries a `type` attribute equal to its label
//     (the constant-binding base rules NHSpawn grows negatives from).
//
// Scale parameters are entity counts; the paper's graphs are 1.7M-3.4M
// nodes, ours default to a few thousand so a full discovery sweep runs in
// seconds while exercising the same code paths.
#ifndef GFD_DATAGEN_KB_H_
#define GFD_DATAGEN_KB_H_

#include <cstdint>

#include "graph/property_graph.h"

namespace gfd {

struct KbConfig {
  size_t scale = 1000;  ///< base entity count; other types derive from it
  uint64_t seed = 7;
};

/// YAGO2-like: person-centric knowledge base, 13-ish types / 36-ish
/// relations in the original; here persons of several professions, films,
/// awards, cities, countries, universities.
PropertyGraph MakeYago2Like(const KbConfig& cfg);

/// DBpedia-like: broader/denser vocabulary (the original has 200 types and
/// 160 relations; we keep the planted core plus extra generic types and
/// relations for density).
PropertyGraph MakeDbpediaLike(const KbConfig& cfg);

/// IMDB-like: movie-centric (movies, actors, directors, companies,
/// genres; 15 types / 5 relation kinds in the original).
PropertyGraph MakeImdbLike(const KbConfig& cfg);

}  // namespace gfd

#endif  // GFD_DATAGEN_KB_H_
