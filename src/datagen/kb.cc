#include "datagen/kb.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace gfd {

namespace {

// Shared scaffolding for the three KB generators.
class KbBuilder {
 public:
  explicit KbBuilder(uint64_t seed) : rng_(seed) {}

  /// Adds `count` entities labeled `label`, each with type=<label> and a
  /// fresh name attribute. Returns their node ids.
  std::vector<NodeId> AddEntities(const std::string& label, size_t count) {
    std::vector<NodeId> ids;
    ids.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      NodeId v = b_.AddNode(label);
      b_.SetAttr(v, "type", label);
      b_.SetAttr(v, "name", label + "_" + std::to_string(i));
      ids.push_back(v);
    }
    return ids;
  }

  /// Gives every node in `ids` a gender and a family name drawn from a
  /// small surname pool (familyname powers GFD1-style rules).
  void AddPersonAttrs(const std::vector<NodeId>& ids, size_t surnames) {
    for (NodeId v : ids) {
      b_.SetAttr(v, "gender", rng_.Chance(0.5) ? "male" : "female");
      b_.SetAttr(v, "familyname",
                 "fam" + std::to_string(rng_.Below(surnames)));
    }
  }

  /// Connects each src to `avg_out` random dst's (at least one when
  /// always_one), skew-free.
  void Connect(const std::vector<NodeId>& srcs,
               const std::vector<NodeId>& dsts, const std::string& rel,
               double avg_out, bool always_one = false) {
    if (dsts.empty()) return;
    for (NodeId s : srcs) {
      size_t n = static_cast<size_t>(avg_out);
      double frac = avg_out - n;
      if (rng_.Chance(frac)) ++n;
      if (always_one && n == 0) n = 1;
      for (size_t i = 0; i < n; ++i) {
        NodeId d = dsts[rng_.Zipf(dsts.size(), 0.7)];
        if (d != s) b_.AddEdgeById(s, d, b_.InternLabel(rel));
      }
    }
  }

  /// Builds parent->child trees over `people`: partitions them into
  /// families, links parents to children (acyclic by construction), and
  /// forces the planted rule child.familyname == parent.familyname.
  void BuildFamilies(const std::vector<NodeId>& people, const std::string& rel,
                     size_t family_size) {
    for (size_t base = 0; base + 1 < people.size(); base += family_size) {
      size_t end = std::min(people.size(), base + family_size);
      std::string fam = "fam" + std::to_string(base);
      for (size_t i = base; i < end; ++i) {
        b_.SetAttr(people[i], "familyname", fam);
      }
      // First member is the root parent; each later member gets a parent
      // among earlier members (indices only increase: no cycles).
      for (size_t i = base + 1; i < end; ++i) {
        size_t parent = base + rng_.Below(i - base);
        b_.AddEdgeById(people[parent], people[i], b_.InternLabel(rel));
      }
    }
  }

  /// Symmetric marriages between consecutive pairs; spouses share the
  /// family name (both edges present -> 2-edge mutual pattern exists).
  /// Callers must pass people disjoint from any family pool, or the
  /// family-name reassignment would break the hasChild invariant.
  void BuildMarriages(const std::vector<NodeId>& people, const std::string& rel,
                      double fraction) {
    for (size_t i = 0; i + 1 < people.size(); i += 2) {
      if (!rng_.Chance(fraction)) continue;
      std::string fam = "mfam" + std::to_string(i);
      b_.SetAttr(people[i], "familyname", fam);
      b_.SetAttr(people[i + 1], "familyname", fam);
      LabelId r = b_.InternLabel(rel);
      b_.AddEdgeById(people[i], people[i + 1], r);
      b_.AddEdgeById(people[i + 1], people[i], r);
    }
  }

  /// Deterministic Fisher-Yates shuffle (mixes professions so relations
  /// like hasChild connect diverse label pairs, enabling wildcard
  /// patterns).
  void Shuffle(std::vector<NodeId>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng_.Below(i)]);
    }
  }

  Rng& rng() { return rng_; }
  PropertyGraph::Builder& builder() { return b_; }
  PropertyGraph Build() { return std::move(b_).Build(); }

 private:
  Rng rng_;
  PropertyGraph::Builder b_;
};

// Exclusive award assignment: every film wins at most one of the two
// exclusive awards (Gold Bear / Gold Lion), so their combination is a
// discoverable negative GFD. Winners additionally carry a festival
// attribute determined by the exclusive award (berlin for the Bear,
// venice for the Lion), which plants the base positive
//   won(x,y) ∧ y.name='Gold Bear' -> x.festival='berlin'
// from which NHSpawn grows the exclusivity negative.
void AssignExclusiveAwards(KbBuilder& kb, const std::vector<NodeId>& films,
                           NodeId gold_bear, NodeId gold_lion,
                           const std::vector<NodeId>& other_awards,
                           double win_rate) {
  LabelId won = kb.builder().InternLabel("won");
  for (NodeId f : films) {
    if (!kb.rng().Chance(win_rate)) continue;
    double pick = kb.rng().NextDouble();
    if (pick < 0.3) {
      kb.builder().AddEdgeById(f, gold_bear, won);
      kb.builder().SetAttr(f, "festival", "berlin");
    } else if (pick < 0.6) {
      kb.builder().AddEdgeById(f, gold_lion, won);
      kb.builder().SetAttr(f, "festival", "venice");
    } else if (!other_awards.empty()) {
      kb.builder().AddEdgeById(
          f, other_awards[kb.rng().Below(other_awards.size())], won);
      kb.builder().SetAttr(f, "festival", "other");
    }
    // Some films win a second, non-exclusive award.
    if (kb.rng().Chance(0.4) && !other_awards.empty()) {
      kb.builder().AddEdgeById(
          f, other_awards[kb.rng().Below(other_awards.size())], won);
    }
  }
}

// Citizenship where the US/Norway combination never occurs (GFD3 of
// Fig. 8: Norway does not admit dual citizenship). Citizens of either
// country carry a passport attribute determined by it, planting the base
// positives citizenOf(x,y) ∧ y.name='US' -> x.passport='us' from which
// NHSpawn grows the exclusivity negative.
void AssignCitizenship(KbBuilder& kb, const std::vector<NodeId>& people,
                       const std::vector<NodeId>& countries, NodeId us,
                       NodeId norway) {
  LabelId cit = kb.builder().InternLabel("citizenOf");
  for (NodeId p : people) {
    NodeId first = countries[kb.rng().Zipf(countries.size(), 0.9)];
    kb.builder().AddEdgeById(p, first, cit);
    NodeId second = kNoNode;
    if (kb.rng().Chance(0.25)) {  // dual citizens
      second = countries[kb.rng().Below(countries.size())];
      bool clash = (first == us && second == norway) ||
                   (first == norway && second == us);
      if (!clash && second != first) {
        kb.builder().AddEdgeById(p, second, cit);
      } else {
        second = kNoNode;
      }
    }
    if (first == us || second == us) {
      kb.builder().SetAttr(p, "passport", "us");
    } else if (first == norway || second == norway) {
      kb.builder().SetAttr(p, "passport", "no");
    }
  }
}

}  // namespace

PropertyGraph MakeYago2Like(const KbConfig& cfg) {
  KbBuilder kb(cfg.seed);
  const size_t s = cfg.scale;

  auto producers = kb.AddEntities("producer", s / 4);
  auto directors = kb.AddEntities("director", s / 4);
  auto actors = kb.AddEntities("actor", s / 2);
  auto politicians = kb.AddEntities("politician", s / 4);
  auto scientists = kb.AddEntities("scientist", s / 4);
  auto films = kb.AddEntities("film", s / 2);
  auto cities = kb.AddEntities("city", s / 10);
  auto countries = kb.AddEntities("country", 30);
  auto universities = kb.AddEntities("university", s / 20);
  auto awards = kb.AddEntities("award", 20);

  std::vector<NodeId> people;
  for (const auto* group : {&producers, &directors, &actors, &politicians,
                            &scientists}) {
    people.insert(people.end(), group->begin(), group->end());
  }
  kb.AddPersonAttrs(people, 200);

  // Planted positive rules. Families and marriages use disjoint shuffled
  // pools so the two family-name rules hold exactly and the relations mix
  // professions.
  kb.Connect(producers, films, "created", 1.5, /*always_one=*/true);
  kb.Connect(directors, films, "directed", 1.2, true);
  kb.Connect(actors, films, "actedIn", 2.5, true);
  std::vector<NodeId> mixed = people;
  kb.Shuffle(mixed);
  size_t family_pool = mixed.size() * 6 / 10;
  std::vector<NodeId> family_people(mixed.begin(),
                                    mixed.begin() + family_pool);
  std::vector<NodeId> marriage_people(mixed.begin() + family_pool,
                                      mixed.end());
  kb.BuildFamilies(family_people, "hasChild", 5);
  kb.BuildMarriages(marriage_people, "isMarriedTo", 0.8);

  // Geography.
  kb.Connect(people, cities, "wasBornIn", 0.9);
  kb.Connect(cities, countries, "isLocatedIn", 1.0, true);
  kb.Connect(universities, cities, "isLocatedIn", 1.0, true);
  kb.Connect(people, universities, "graduatedFrom", 0.5);

  // Planted negative rules.
  NodeId gold_bear = awards[0], gold_lion = awards[1];
  kb.builder().SetAttr(gold_bear, "name", "Gold Bear");
  kb.builder().SetAttr(gold_lion, "name", "Gold Lion");
  std::vector<NodeId> other_awards(awards.begin() + 2, awards.end());
  AssignExclusiveAwards(kb, films, gold_bear, gold_lion, other_awards, 0.5);

  NodeId us = countries[0], norway = countries[1];
  kb.builder().SetAttr(us, "name", "US");
  kb.builder().SetAttr(norway, "name", "Norway");
  AssignCitizenship(kb, people, countries, us, norway);

  return kb.Build();
}

PropertyGraph MakeDbpediaLike(const KbConfig& cfg) {
  KbBuilder kb(cfg.seed + 1);
  const size_t s = cfg.scale;

  // The planted core (same regularities as YAGO2-like)...
  auto producers = kb.AddEntities("producer", s / 4);
  auto actors = kb.AddEntities("actor", s / 2);
  auto films = kb.AddEntities("film", s / 2);
  auto cities = kb.AddEntities("city", s / 8);
  auto countries = kb.AddEntities("country", 40);

  std::vector<NodeId> people;
  people.insert(people.end(), producers.begin(), producers.end());
  people.insert(people.end(), actors.begin(), actors.end());
  kb.AddPersonAttrs(people, 150);

  kb.Connect(producers, films, "created", 1.5, true);
  kb.Connect(actors, films, "actedIn", 3.0, true);
  std::vector<NodeId> mixed = people;
  kb.Shuffle(mixed);
  size_t family_pool = mixed.size() * 6 / 10;
  std::vector<NodeId> family_people(mixed.begin(),
                                    mixed.begin() + family_pool);
  std::vector<NodeId> marriage_people(mixed.begin() + family_pool,
                                      mixed.end());
  kb.BuildFamilies(family_people, "hasChild", 4);
  kb.BuildMarriages(marriage_people, "isMarriedTo", 0.8);
  kb.Connect(people, cities, "wasBornIn", 1.0);
  kb.Connect(cities, countries, "isLocatedIn", 1.0, true);

  NodeId us = countries[0], norway = countries[1];
  kb.builder().SetAttr(us, "name", "US");
  kb.builder().SetAttr(norway, "name", "Norway");
  AssignCitizenship(kb, people, countries, us, norway);

  // ...plus the broad generic vocabulary that makes DBpedia *dense*:
  // extra types and relations with random signatures.
  std::vector<std::vector<NodeId>> extra_types;
  for (int t = 0; t < 12; ++t) {
    extra_types.push_back(
        kb.AddEntities("etype" + std::to_string(t), s / 8));
  }
  for (int r = 0; r < 18; ++r) {
    const auto& srcs = extra_types[kb.rng().Below(extra_types.size())];
    const auto& dsts = extra_types[kb.rng().Below(extra_types.size())];
    kb.Connect(srcs, dsts, "erel" + std::to_string(r), 1.6);
  }
  // Cross-links between the core and the generic part.
  for (int r = 0; r < 6; ++r) {
    const auto& dsts = extra_types[kb.rng().Below(extra_types.size())];
    kb.Connect(people, dsts, "xrel" + std::to_string(r), 0.8);
  }
  return kb.Build();
}

PropertyGraph MakeImdbLike(const KbConfig& cfg) {
  KbBuilder kb(cfg.seed + 2);
  const size_t s = cfg.scale;

  auto movies = kb.AddEntities("movie", s);
  auto actors = kb.AddEntities("actor", s);
  auto directors = kb.AddEntities("director", s / 4);
  auto producers = kb.AddEntities("producer", s / 4);
  auto companies = kb.AddEntities("company", s / 10);
  auto countries = kb.AddEntities("country", 25);

  std::vector<NodeId> people;
  for (const auto* group : {&actors, &directors, &producers}) {
    people.insert(people.end(), group->begin(), group->end());
  }
  kb.AddPersonAttrs(people, 300);

  // Movie attributes: yearband and genre (active attributes beyond the
  // person-centric ones).
  for (NodeId m : movies) {
    kb.builder().SetAttr(
        m, "yearband", "y" + std::to_string(1950 + 10 * kb.rng().Below(8)));
  }

  kb.Connect(actors, movies, "actedIn", 3.0, true);
  kb.Connect(directors, movies, "directed", 1.5, true);
  kb.Connect(producers, movies, "created", 1.5, true);
  kb.Connect(movies, companies, "producedBy", 1.0, true);
  kb.Connect(companies, countries, "basedIn", 1.0, true);
  kb.Connect(movies, countries, "releasedIn", 1.2, true);
  std::vector<NodeId> mixed = people;
  kb.Shuffle(mixed);
  kb.BuildFamilies(mixed, "hasChild", 5);

  return kb.Build();
}

}  // namespace gfd
