// Noise injection for the error-detection-accuracy experiment (Exp-5 /
// Fig. 7): draw alpha% of the nodes and, for each, change beta% of its
// active attribute values or the labels of its incident edges to values
// that do not appear in the clean graph.
#ifndef GFD_DATAGEN_NOISE_H_
#define GFD_DATAGEN_NOISE_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"

namespace gfd {

struct NoisyGraph {
  PropertyGraph graph;
  /// V^E of the paper: nodes that received at least one corruption.
  std::vector<NodeId> corrupted;
};

struct NoiseConfig {
  double alpha = 0.05;  ///< fraction of nodes to corrupt
  double beta = 0.5;    ///< per chosen node: fraction of attrs/edges changed
  double edge_label_fraction = 0.2;  ///< share of corruptions that flip an
                                     ///< incident edge label instead of an
                                     ///< attribute value
  uint64_t seed = 99;
};

/// Returns a corrupted copy of `g` (node ids preserved) plus the corrupted
/// node set. Fresh "noise_i" values / "noiserel_i" labels guarantee the
/// injected values never appear in the clean graph.
NoisyGraph InjectNoise(const PropertyGraph& g, const NoiseConfig& cfg);

}  // namespace gfd

#endif  // GFD_DATAGEN_NOISE_H_
