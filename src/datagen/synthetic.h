// The paper's synthetic graph generator (Section 7, "Experimental
// setting"): graphs G = (V, E, L, F_A) controlled by |V| and |E|, with
// labels drawn from a 30-symbol alphabet and 5 active attributes whose
// values come from a 1000-value domain. We add a correlation knob: with
// probability `value_correlation` an attribute value is a deterministic
// function of the node label (so functional regularities exist for the
// miner to find); otherwise it is random.
#ifndef GFD_DATAGEN_SYNTHETIC_H_
#define GFD_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "graph/property_graph.h"

namespace gfd {

struct SyntheticConfig {
  size_t nodes = 10000;
  size_t edges = 20000;
  size_t node_labels = 30;
  size_t edge_labels = 30;
  size_t attrs = 5;         ///< active attributes per node
  size_t values = 1000;     ///< value domain size per attribute
  double value_correlation = 0.8;  ///< P(value determined by label)
  double degree_skew = 0.8; ///< zipf exponent for endpoint selection
  uint64_t seed = 1;
};

/// Generates a synthetic property graph. Deterministic in `cfg.seed`.
PropertyGraph MakeSynthetic(const SyntheticConfig& cfg);

}  // namespace gfd

#endif  // GFD_DATAGEN_SYNTHETIC_H_
