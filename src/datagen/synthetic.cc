#include "datagen/synthetic.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace gfd {

PropertyGraph MakeSynthetic(const SyntheticConfig& cfg) {
  Rng rng(cfg.seed);
  PropertyGraph::Builder b;

  // Pre-intern the vocabulary so ids are stable across runs.
  std::vector<LabelId> nlabels, elabels;
  for (size_t i = 0; i < cfg.node_labels; ++i) {
    nlabels.push_back(b.InternLabel("t" + std::to_string(i)));
  }
  for (size_t i = 0; i < cfg.edge_labels; ++i) {
    elabels.push_back(b.InternLabel("r" + std::to_string(i)));
  }
  std::vector<AttrId> attrs;
  for (size_t i = 0; i < cfg.attrs; ++i) {
    attrs.push_back(b.InternAttr("a" + std::to_string(i)));
  }
  std::vector<ValueId> values;
  for (size_t i = 0; i < cfg.values; ++i) {
    values.push_back(b.InternValue("v" + std::to_string(i)));
  }

  // Nodes: zipf-skewed label distribution; attribute values either
  // label-determined (regularities) or uniform noise.
  for (size_t v = 0; v < cfg.nodes; ++v) {
    size_t li = rng.Zipf(cfg.node_labels, 0.9);
    NodeId id = b.AddNodeById(nlabels[li]);
    for (size_t a = 0; a < cfg.attrs; ++a) {
      ValueId val;
      if (rng.Chance(cfg.value_correlation)) {
        // Deterministic per (label, attr): creates exact per-label
        // functional regularities.
        val = values[(li * 131 + a * 17) % cfg.values];
      } else {
        val = values[rng.Below(cfg.values)];
      }
      b.SetAttrById(id, attrs[a], val);
    }
  }

  // Edges: skewed endpoints, edge label correlated with the endpoint
  // labels so that (src label, edge label, dst label) triples repeat.
  for (size_t e = 0; e < cfg.edges; ++e) {
    NodeId s = static_cast<NodeId>(rng.Zipf(cfg.nodes, cfg.degree_skew));
    NodeId d = static_cast<NodeId>(rng.Zipf(cfg.nodes, cfg.degree_skew));
    if (s == d) d = static_cast<NodeId>((d + 1) % cfg.nodes);
    size_t el;
    if (rng.Chance(0.7)) {
      el = (static_cast<size_t>(s % 7) * 31 + d % 5) % cfg.edge_labels;
    } else {
      el = rng.Below(cfg.edge_labels);
    }
    b.AddEdgeById(s, d, elabels[el]);
  }
  return std::move(b).Build();
}

}  // namespace gfd
