#include "serve/metrics.h"

#include <string>

#include "serve/serving_store.h"

namespace gfd {

namespace {
obs::MetricsRegistry& Reg() { return obs::MetricsRegistry::Default(); }
}  // namespace

obs::Counter& LogAppendsTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_log_appends_total", "Delta-log records appended durably.");
  return c;
}

obs::Counter& LogAppendBytesTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_log_append_bytes_total", "Framed bytes appended to delta logs.");
  return c;
}

obs::Counter& LogAppendFailuresTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_log_append_failures_total",
      "Delta-log appends that failed (torn frame cut back).");
  return c;
}

obs::Counter& LogTornTailTruncationsTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_log_torn_tail_truncations_total",
      "Torn or corrupt delta-log tails cut on open.");
  return c;
}

obs::Counter& LogTruncatedBytesTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_log_truncated_bytes_total",
      "Bytes dropped by torn-tail truncations on open.");
  return c;
}

obs::Histogram& LogAppendLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_log_append_seconds", "Delta-log append latency (fsync included).",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Counter& FsyncsTotal() {
  static obs::Counter& c =
      Reg().GetCounter("gfd_fsyncs_total", "fsync calls issued by durable_io.");
  return c;
}

obs::Histogram& StoreAppendLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_store_append_seconds",
      "Graph-store append latency (validate + log + apply).",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Histogram& StoreReplayLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_store_replay_seconds", "Graph-store log replay latency on open.",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Histogram& StoreCompactLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_store_compact_seconds", "Graph-store snapshot compaction latency.",
      obs::DefaultLatencyBuckets());
  return h;
}

obs::Counter& StoreAppendsTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_store_appends_total", "Batches appended to graph stores.");
  return c;
}

obs::Counter& StoreCompactionsTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_store_compactions_total", "Graph-store snapshot compactions.");
  return c;
}

obs::Counter& StoreReplayedBatchesTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_store_replayed_batches_total",
      "Batches replayed from delta logs on open.");
  return c;
}

obs::Gauge& StoreOverlayOps() {
  static obs::Gauge& g = Reg().GetGauge(
      "gfd_store_overlay_ops",
      "Current overlay ops pending compaction (summed over open stores).");
  return g;
}

obs::Gauge& ViolationsRunning() {
  static obs::Gauge& g = Reg().GetGauge(
      "gfd_violations_running",
      "Running violation count maintained by the serving loop.");
  return g;
}

obs::Counter& FragmentBytesShipped(size_t f, std::string_view kind) {
  return Reg().GetCounter(
      "gfd_fragment_bytes_shipped",
      "Bytes shipped per fragment, split into routed batch ops (owned) "
      "vs. border-halo maintenance (halo).",
      {{"fragment", std::to_string(f)}, {"kind", std::string(kind)}});
}

obs::Counter& FragmentOpsShipped(size_t f, std::string_view kind) {
  return Reg().GetCounter(
      "gfd_fragment_ops_total",
      "Delta ops shipped per fragment, routed vs. halo maintenance.",
      {{"fragment", std::to_string(f)}, {"kind", std::string(kind)}});
}

obs::Counter& CatchupRecordsTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_catchup_records_total",
      "Journal sub-batches re-shipped to lagging fragments on open.");
  return c;
}

obs::Counter& CatchupFragmentsTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_catchup_fragments_total", "Lagging fragments caught up on open.");
  return c;
}

obs::Counter& SnapshotTransfersTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_snapshot_transfers_total",
      "Partition-scoped fragment rebuilds (snapshot transfers).");
  return c;
}

obs::Counter& RebalancesTotal() {
  static obs::Counter& c = Reg().GetCounter(
      "gfd_rebalances_total", "Ownership migrations between fragments.");
  return c;
}

obs::Histogram& RebalanceLatency() {
  static obs::Histogram& h = Reg().GetHistogram(
      "gfd_rebalance_seconds",
      "End-to-end rebalance latency (ship + meta + lockstep compaction).",
      obs::DefaultLatencyBuckets());
  return h;
}

void TouchServeMetrics() {
  LogAppendsTotal();
  LogAppendBytesTotal();
  LogAppendFailuresTotal();
  LogTornTailTruncationsTotal();
  LogTruncatedBytesTotal();
  LogAppendLatency();
  FsyncsTotal();
  StoreAppendLatency();
  StoreReplayLatency();
  StoreCompactLatency();
  StoreAppendsTotal();
  StoreCompactionsTotal();
  StoreReplayedBatchesTotal();
  StoreOverlayOps();
  ViolationsRunning();
  CatchupRecordsTotal();
  CatchupFragmentsTotal();
  SnapshotTransfersTotal();
  RebalancesTotal();
  RebalanceLatency();
}

void ExportSnapshotMetrics(const ServingMetricsSnapshot& snap) {
  Reg()
      .GetGauge("gfd_serving_last_seq",
                "Last applied global batch sequence number.")
      .Set(static_cast<double>(snap.last_seq));
  Reg()
      .GetGauge("gfd_serving_anchor_seq",
                "Snapshot anchor sequence (batches folded into the base).")
      .Set(static_cast<double>(snap.anchor_seq));
  Reg()
      .GetGauge("gfd_serving_fragments",
                "Fragment count behind the serving interface (1 = single "
                "store).")
      .Set(static_cast<double>(snap.fragments));
  StoreOverlayOps().Set(static_cast<double>(snap.overlay_ops));
}

}  // namespace gfd
