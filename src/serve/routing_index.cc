#include "serve/routing_index.h"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "graph/loader.h"

namespace gfd {

namespace {
void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

// Undirected neighbor lists of the live view (duplicates fine; the
// residency BFS tolerates them).
std::vector<std::vector<NodeId>> ViewAdjacency(const GraphView& view) {
  std::vector<std::vector<NodeId>> adj(view.NumNodes());
  for (NodeId v = 0; v < view.NumNodes(); ++v) {
    for (EdgeId e : view.OutEdges(v)) {
      NodeId dst = view.EdgeDst(e);
      adj[v].push_back(dst);
      adj[dst].push_back(v);
    }
  }
  return adj;
}
}  // namespace

std::optional<RoutingIndex> RoutingIndex::Build(PropertyGraph base,
                                                Partition p,
                                                std::string* error) {
  if (p.num_fragments == 0) {
    SetError(error, "partition has no fragments");
    return std::nullopt;
  }
  if (p.halo_radius < 1) {
    // Radius >= 1 is what makes every edge resident at both endpoint
    // owners; below that the union of fragments would lose edges.
    SetError(error, "halo radius must be >= 1");
    return std::nullopt;
  }
  if (p.node_owner.size() != base.NumNodes()) {
    SetError(error, "partition owner table does not match the graph");
    return std::nullopt;
  }
  RoutingIndex idx;
  idx.partition_ = std::move(p);
  idx.base_ = std::make_unique<PropertyGraph>(std::move(base));
  if (!idx.Refresh(error)) return std::nullopt;
  return idx;
}

bool RoutingIndex::Refresh(std::string* error) {
  view_ = GraphView::Apply(*base_, accum_, error);
  if (!view_) return false;
  resident_ = ComputeResidency(ViewAdjacency(*view_), partition_);
  FillBorders(&partition_, resident_);
  return true;
}

std::optional<RoutingIndex::ShipPlan> RoutingIndex::PlanBatch(
    std::string_view delta_tsv, std::string* error) {
  std::istringstream in{std::string(delta_tsv)};
  auto d = LoadGraphDeltaTsv(in, *base_, error);
  if (!d) return std::nullopt;

  // Validate the whole stream (accumulated overlay + this batch) on the
  // global view -- the one place a delete-of-missing-edge or bad id can
  // be caught before any fragment's log sees the batch.
  GraphDelta candidate = accum_;
  const size_t accum_ops = candidate.ops.size();
  candidate.Append(*base_, *d);
  ShipPlan plan;
  plan.new_view = GraphView::Apply(*base_, candidate, error);
  if (!plan.new_view) return std::nullopt;

  // This batch's ops in the candidate's (canonical) vocabulary space.
  GraphDelta batch_tail;
  batch_tail.ops.assign(candidate.ops.begin() + accum_ops,
                        candidate.ops.end());
  batch_tail.extra_labels = candidate.extra_labels;
  batch_tail.extra_attrs = candidate.extra_attrs;
  batch_tail.extra_values = candidate.extra_values;

  plan.new_resident =
      ComputeResidency(ViewAdjacency(*plan.new_view), partition_);
  auto before = view_->AffectedNodes();
  plan.affected_before.assign(before.begin(), before.end());
  auto after = plan.new_view->AffectedNodes();
  plan.affected_after.assign(after.begin(), after.end());
  plan.candidate = std::move(candidate);
  BuildPayloads(batch_tail, &plan);
  return plan;
}

std::optional<RoutingIndex::ShipPlan> RoutingIndex::PlanRebalance(
    NodeId node, uint32_t to, std::string* error) {
  if (node >= base_->NumNodes()) {
    SetError(error, "rebalance: node id out of range");
    return std::nullopt;
  }
  if (to >= partition_.num_fragments) {
    SetError(error, "rebalance: fragment id out of range");
    return std::nullopt;
  }
  if (partition_.node_owner[node] == to) {
    SetError(error, "rebalance: node already owned by fragment " +
                        std::to_string(to));
    return std::nullopt;
  }
  Partition moved = partition_;
  moved.node_owner[node] = to;

  ShipPlan plan;
  plan.new_owner = std::move(moved.node_owner);
  Partition probe = partition_;
  probe.node_owner = plan.new_owner;
  plan.new_resident = ComputeResidency(ViewAdjacency(*view_), probe);
  auto affected = view_->AffectedNodes();
  plan.affected_before.assign(affected.begin(), affected.end());
  plan.affected_after = plan.affected_before;
  // Graph unchanged: the payloads carry the vocabulary preamble plus
  // pure halo maintenance; candidate/new_view stay empty and Commit
  // leaves the global view alone.
  GraphDelta empty_tail;
  empty_tail.extra_labels = accum_.extra_labels;
  empty_tail.extra_attrs = accum_.extra_attrs;
  empty_tail.extra_values = accum_.extra_values;
  BuildPayloads(empty_tail, &plan);
  return plan;
}

void RoutingIndex::BuildPayloads(const GraphDelta& batch_tail,
                                 ShipPlan* plan) const {
  const size_t n = partition_.num_fragments;
  const GraphView& nv = plan->new_view ? *plan->new_view : *view_;

  // Full extension-vocabulary preamble, identical for every fragment:
  // the canonical accumulated extras (batch_tail carries the candidate's
  // tables), so all fragments intern the same names in the same order.
  GraphDelta vocab_only;
  vocab_only.extra_labels = batch_tail.extra_labels;
  vocab_only.extra_attrs = batch_tail.extra_attrs;
  vocab_only.extra_values = batch_tail.extra_values;
  std::ostringstream pre;
  SaveGraphDeltaTsv(*base_, vocab_only, pre, /*with_vocab=*/true);
  const std::string preamble = pre.str();

  // RouteDelta is the delivery mechanism: ops go to the fragments whose
  // pre-batch resident set covers every referenced node.
  DeltaRouting routing = RouteDelta(batch_tail, resident_);

  plan->payloads.resize(n);
  plan->owned_bytes.assign(n, 0);
  plan->halo_bytes.assign(n, 0);
  plan->routed_ops.assign(n, 0);
  plan->halo_ops.assign(n, 0);

  for (size_t f = 0; f < n; ++f) {
    const std::vector<char>& oldr = resident_[f];
    const std::vector<char>& newr = plan->new_resident[f];

    std::ostringstream routed;
    if (!routing.fragment_ops[f].empty()) {
      GraphDelta sub = vocab_only;
      for (size_t i : routing.fragment_ops[f]) {
        sub.ops.push_back(batch_tail.ops[i]);
      }
      SaveGraphDeltaTsv(*base_, sub, routed, /*with_vocab=*/false);
      plan->routed_ops[f] = sub.ops.size();
    }

    // Halo maintenance: the residency change decides, per post-batch
    // edge key incident to a node whose residency flipped, whether the
    // fragment must drop its copies (left the halo) or receive them
    // (entered). Keys whose residency is unchanged were brought to the
    // correct multiplicity by the routed ops alone.
    std::vector<NodeId> changed;
    std::vector<char> changed_mask(nv.NumNodes(), 0);
    for (NodeId v = 0; v < nv.NumNodes(); ++v) {
      if (oldr[v] != newr[v]) {
        changed.push_back(v);
        changed_mask[v] = 1;
      }
    }
    GraphDelta maint = vocab_only;
    if (!changed.empty()) {
      std::map<std::array<uint32_t, 3>, uint64_t> counts;
      for (NodeId v : changed) {
        for (EdgeId e : nv.OutEdges(v)) {
          ++counts[{v, nv.EdgeDst(e), nv.EdgeLabel(e)}];
        }
        for (EdgeId e : nv.InEdges(v)) {
          NodeId src = nv.EdgeSrc(e);
          if (changed_mask[src]) continue;  // counted at src's out loop
          ++counts[{src, v, nv.EdgeLabel(e)}];
        }
      }
      for (const auto& [key, count] : counts) {
        NodeId src = key[0], dst = key[1];
        LabelId label = key[2];
        bool old_res = oldr[src] && oldr[dst];
        bool new_res = newr[src] && newr[dst];
        if (old_res == new_res) continue;
        for (uint64_t c = 0; c < count; ++c) {
          if (new_res) {
            maint.InsertEdge(src, dst, label);
          } else {
            maint.DeleteEdge(src, dst, label);
          }
        }
      }
      // Nodes entering the halo get a full attribute refresh from the
      // global state; attributes are never deleted, so overwriting
      // repairs any staleness accrued while the node was out of view.
      for (NodeId v : changed) {
        if (!newr[v]) continue;
        for (const Attribute& a : nv.NodeAttrs(v)) {
          maint.SetAttr(v, a.key, a.value);
        }
      }
    }
    std::ostringstream maint_out;
    SaveGraphDeltaTsv(*base_, maint, maint_out, /*with_vocab=*/false);
    plan->halo_ops[f] = maint.ops.size();

    std::string routed_str = routed.str();
    std::string maint_str = maint_out.str();
    plan->owned_bytes[f] = preamble.size() + routed_str.size();
    plan->halo_bytes[f] = maint_str.size();
    plan->payloads[f] = preamble + routed_str + maint_str;
  }
}

void RoutingIndex::Commit(ShipPlan&& plan) {
  if (!plan.new_owner.empty()) {
    partition_.node_owner = std::move(plan.new_owner);
  }
  if (plan.new_view) {
    accum_ = std::move(plan.candidate);
    view_ = std::move(plan.new_view);
  }
  resident_ = std::move(plan.new_resident);
  FillBorders(&partition_, resident_);
}

void RoutingIndex::Compact() {
  base_ = std::make_unique<PropertyGraph>(view_->Materialize());
  accum_ = GraphDelta{};
  std::string error;
  // An empty delta over a well-formed graph cannot fail to apply.
  Refresh(&error);
}

uint64_t RoutingIndex::ResidentEdges(size_t f) const {
  const std::vector<char>& res = resident_[f];
  uint64_t count = 0;
  for (NodeId v = 0; v < view_->NumNodes(); ++v) {
    if (!res[v]) continue;
    for (EdgeId e : view_->OutEdges(v)) {
      if (res[view_->EdgeDst(e)]) ++count;
    }
  }
  return count;
}

}  // namespace gfd
