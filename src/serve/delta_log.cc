#include "serve/delta_log.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "obs/trace.h"
#include "serve/durable_io.h"
#include "serve/metrics.h"

namespace gfd {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

// One framed record, ready to write.
std::string FrameRecord(uint64_t seq, std::string_view payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "R %" PRIu64 " %zu %08x\n", seq,
                payload.size(), Crc32(payload));
  std::string out(header);
  out.append(payload);
  out.push_back('\n');
  return out;
}

// Parses the record starting at `pos` of `data`. On success fills `*rec`,
// advances `*pos` past the record, and returns true. Any malformation --
// torn header, short payload, missing terminator, CRC mismatch -- returns
// false with *pos untouched (the caller cuts the tail there).
bool ParseRecord(std::string_view data, size_t* pos, DeltaLogRecord* rec) {
  size_t p = *pos;
  size_t eol = data.find('\n', p);
  if (eol == std::string_view::npos) return false;
  // Header shape: R <seq> <bytes> <8-hex-crc>
  std::string header(data.substr(p, eol - p));
  uint64_t seq = 0;
  size_t nbytes = 0;
  unsigned crc = 0;
  char trailing = 0;
  int matched = std::sscanf(header.c_str(), "R %" SCNu64 " %zu %8x%c", &seq,
                            &nbytes, &crc, &trailing);
  if (matched != 3) return false;
  if (nbytes > data.size()) return false;  // absurd length (torn header)
  size_t payload_at = eol + 1;
  if (payload_at + nbytes + 1 > data.size()) return false;  // short payload
  if (data[payload_at + nbytes] != '\n') return false;
  std::string_view payload = data.substr(payload_at, nbytes);
  if (Crc32(payload) != crc) return false;
  rec->seq = seq;
  rec->payload.assign(payload);
  *pos = payload_at + nbytes + 1;
  return true;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool DeltaLog::OpenAppendHandle(std::string* error) {
  file_.reset(std::fopen(path_.c_str(), "ab"));
  if (!file_) {
    SetError(error, path_ + ": cannot open for append: " +
                        std::strerror(errno));
    return false;
  }
  return true;
}

bool DeltaLog::RecoverAppendHandle(std::string* error) {
  // A failed append may have left torn bytes; cut back to the last
  // durable record BEFORE reopening, or the next acknowledged append
  // would land behind garbage and be discarded as a corrupt tail later.
  std::error_code ec;
  std::filesystem::resize_file(path_, durable_bytes_, ec);
  if (ec && std::filesystem::exists(path_)) {
    SetError(error, path_ + ": cannot truncate torn tail: " + ec.message());
    return false;  // stay closed: appending would risk acknowledged data
  }
  return OpenAppendHandle(error);
}

std::optional<DeltaLog> DeltaLog::Open(const std::string& path,
                                       uint64_t first_seq,
                                       std::string* error) {
  DeltaLog log;
  log.path_ = path;
  log.next_seq_ = first_seq;

  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      data = std::move(buf).str();
    }
    // A missing file is simply an empty log; Append creates it.
  }

  size_t pos = 0;
  while (pos < data.size()) {
    DeltaLogRecord rec;
    size_t next = pos;
    if (!ParseRecord(data, &next, &rec)) break;
    // A sequence break is corruption exactly like a bad CRC: the chain
    // of exactly-once numbering ends here.
    if (!log.records_.empty() && rec.seq != log.records_.back().seq + 1) {
      break;
    }
    pos = next;
    log.records_.push_back(std::move(rec));
  }
  log.open_stats_.records = log.records_.size();
  log.durable_bytes_ = pos;
  if (pos < data.size()) {
    // Corrupt or torn tail: cut the file back to the last whole record so
    // the partial batch can never be applied or appended after.
    log.open_stats_.truncated_bytes = data.size() - pos;
    std::error_code ec;
    std::filesystem::resize_file(path, pos, ec);
    if (ec) {
      SetError(error, path + ": cannot truncate corrupt tail: " + ec.message());
      return std::nullopt;
    }
    LogTornTailTruncationsTotal().Inc();
    LogTruncatedBytesTotal().Inc(log.open_stats_.truncated_bytes);
    obs::EmitTrace("torn_tail",
                   {{"bytes", log.open_stats_.truncated_bytes},
                    {"durable_records", log.records_.size()}});
  }
  if (!log.records_.empty()) {
    log.next_seq_ = log.records_.back().seq + 1;
  }
  if (!log.OpenAppendHandle(error)) return std::nullopt;
  return log;
}

std::optional<uint64_t> DeltaLog::Append(std::string_view payload,
                                         std::string* error) {
  // An earlier error path may have left the log closed (possibly with a
  // torn tail it could not cut); retry the recovery rather than handing
  // fwrite a null stream.
  if (!file_ && !RecoverAppendHandle(error)) return std::nullopt;
  uint64_t seq = next_seq_;
  obs::ScopedTimer timer(&LogAppendLatency());
  std::string frame = FrameRecord(seq, payload);
  bool ok = std::fwrite(frame.data(), 1, frame.size(), file_.get()) ==
                frame.size() &&
            SyncFile(file_.get());
  if (!ok) {
    timer.Discard();
    LogAppendFailuresTotal().Inc();
    SetError(error, path_ + ": append failed: " + std::strerror(errno));
    // A torn frame may sit on disk (or in the stdio buffer). Cut the file
    // back to the last durable record so a *later* successful append can
    // never land behind garbage and be discarded as a corrupt tail. If
    // the cut itself fails, the log stays closed and the next Append
    // retries it before writing anything.
    file_.reset();
    RecoverAppendHandle(nullptr);
    return std::nullopt;
  }
  durable_bytes_ += frame.size();
  LogAppendsTotal().Inc();
  LogAppendBytesTotal().Inc(frame.size());
  records_.push_back({seq, std::string(payload)});
  ++next_seq_;
  return seq;
}

bool DeltaLog::DropThrough(uint64_t through, std::string* error) {
  std::string content;
  for (const DeltaLogRecord& rec : records_) {
    if (rec.seq <= through) continue;
    content += FrameRecord(rec.seq, rec.payload);
  }
  // Close the live handle before the swap so appends reopen the new file.
  file_.reset();
  if (!AtomicWriteFile(path_, content, error)) {
    OpenAppendHandle(nullptr);  // best-effort: keep the old log usable
    return false;
  }
  std::erase_if(records_,
                [&](const DeltaLogRecord& r) { return r.seq <= through; });
  durable_bytes_ = content.size();
  next_seq_ = std::max(next_seq_, through + 1);
  return OpenAppendHandle(error);
}

}  // namespace gfd
