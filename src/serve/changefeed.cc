#include "serve/changefeed.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>

#include "detect/violation.h"
#include "util/tsv.h"

namespace gfd {

namespace fs = std::filesystem;

namespace {

constexpr char kFeedFile[] = "feed.log";

void AppendSide(std::string& out, const GraphView& view,
                std::span<const Gfd> rules, std::span<const Violation> side,
                char kind) {
  for (const Violation& v : side) {
    out += kind;
    out += '\t';
    out += std::to_string(v.gfd_index);
    out += '\t';
    out += std::to_string(v.pivot);
    out += '\t';
    out += EscapeField(view.NodeName(v.pivot));
    out += '\t';
    out += EscapeField(view.LabelName(view.NodeLabel(v.pivot)));
    out += '\t';
    out += EscapeField(DescribeViolation(view, rules, v));
    out += '\n';
  }
}

}  // namespace

std::string SerializeDiffPayload(const GraphView& view,
                                 std::span<const Gfd> rules,
                                 const IncrementalDiff& diff) {
  std::string out;
  AppendSide(out, view, rules, diff.added, 'A');
  AppendSide(out, view, rules, diff.removed, 'R');
  return out;
}

std::optional<FeedLine> ParseFeedLine(std::string_view line) {
  std::vector<std::string_view> fields = SplitFields(line);
  if (fields.size() != 6) return std::nullopt;
  if (fields[0] != "A" && fields[0] != "R") return std::nullopt;
  FeedLine out;
  out.added = fields[0] == "A";
  auto parse_u = [](std::string_view s, auto* v) {
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *v);
    return ec == std::errc() && p == s.data() + s.size();
  };
  if (!parse_u(fields[1], &out.rule)) return std::nullopt;
  if (!parse_u(fields[2], &out.pivot)) return std::nullopt;
  auto name = UnescapeField(fields[3]);
  auto label = UnescapeField(fields[4]);
  auto desc = UnescapeField(fields[5]);
  if (!name || !label || !desc) return std::nullopt;
  out.pivot_name = std::move(*name);
  out.pivot_label = std::move(*label);
  out.description = std::move(*desc);
  return out;
}

FeedSubscription::Wait FeedSubscription::Next(FeedEvent* out,
                                              int64_t timeout_ms) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !queue_.empty() || evicted_ || closed_;
  });
  if (!queue_.empty()) {
    *out = std::move(queue_.front());
    queue_.pop_front();
    return Wait::kEvent;
  }
  if (evicted_) return Wait::kEvicted;
  if (closed_) return Wait::kClosed;
  return Wait::kTimeout;
}

std::unique_ptr<ViolationChangefeed> ViolationChangefeed::Open(
    const std::string& dir, uint64_t store_last_seq, std::string* error) {
  std::string path = (fs::path(dir) / kFeedFile).string();
  auto feed = std::unique_ptr<ViolationChangefeed>(new ViolationChangefeed());
  auto log = DeltaLog::Open(path, store_last_seq + 1, error);
  if (!log) return nullptr;
  if (log->next_seq() != store_last_seq + 1) {
    // The feed missed (or is ahead of) the store: its diffs cannot be
    // reconstructed, so restart the log at the store's position. Event
    // sequence numbers make the gap visible to reconnecting clients.
    log.reset();
    std::error_code ec;
    fs::remove(path, ec);
    log = DeltaLog::Open(path, store_last_seq + 1, error);
    if (!log) return nullptr;
    feed->reset_on_open_ = true;
  }
  feed->log_ = std::move(*log);
  return feed;
}

uint64_t ViolationChangefeed::last_seq() const {
  std::lock_guard lock(mu_);
  return log_->next_seq() - 1;
}

bool ViolationChangefeed::Publish(uint64_t seq, std::string payload,
                                  std::string* error) {
  std::lock_guard lock(mu_);
  if (shutdown_) {
    if (error) *error = "changefeed is shut down";
    return false;
  }
  if (seq != log_->next_seq()) {
    if (error) {
      *error = "publish out of sequence: got " + std::to_string(seq) +
               ", feed expects " + std::to_string(log_->next_seq());
    }
    return false;
  }
  if (!log_->Append(payload, error)) return false;

  // Fan out; a full queue evicts its subscription here (slow-consumer
  // disconnect), which also drops it from the live set.
  for (auto it = subs_.begin(); it != subs_.end();) {
    FeedSubscription& sub = **it;
    bool drop = false;
    {
      std::lock_guard sub_lock(sub.mu_);
      if (seq <= sub.cursor_) {
        // The subscriber declared it already saw this sequence (it can
        // connect at a cursor ahead of a freshly reset feed); never
        // deliver it twice.
        ++it;
        continue;
      }
      if (sub.closed_ || sub.evicted_) {
        drop = true;
      } else if (sub.queue_.size() >= sub.cap_) {
        sub.evicted_ = true;
        ++evictions_;
        drop = true;
      } else {
        sub.queue_.push_back(FeedEvent{seq, payload});
      }
    }
    sub.cv_.notify_all();
    it = drop ? subs_.erase(it) : it + 1;
  }
  return true;
}

std::shared_ptr<FeedSubscription> ViolationChangefeed::Subscribe(
    uint64_t cursor, size_t queue_cap, std::vector<FeedEvent>* replay) {
  std::lock_guard lock(mu_);
  if (replay) {
    for (const DeltaLogRecord& rec : log_->records()) {
      if (rec.seq > cursor) replay->push_back(FeedEvent{rec.seq, rec.payload});
    }
  }
  auto sub = std::make_shared<FeedSubscription>();
  sub->cap_ = std::max<size_t>(queue_cap, 1);
  sub->cursor_ = cursor;
  if (shutdown_) {
    sub->closed_ = true;
    return sub;
  }
  subs_.push_back(sub);
  return sub;
}

void ViolationChangefeed::Unsubscribe(
    const std::shared_ptr<FeedSubscription>& sub) {
  std::lock_guard lock(mu_);
  subs_.erase(std::remove(subs_.begin(), subs_.end(), sub), subs_.end());
}

void ViolationChangefeed::Shutdown() {
  std::lock_guard lock(mu_);
  shutdown_ = true;
  for (const auto& sub : subs_) {
    {
      std::lock_guard sub_lock(sub->mu_);
      sub->closed_ = true;
    }
    sub->cv_.notify_all();
  }
  subs_.clear();
}

size_t ViolationChangefeed::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subs_.size();
}

uint64_t ViolationChangefeed::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

}  // namespace gfd
