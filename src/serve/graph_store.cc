#include "serve/graph_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "graph/loader.h"
#include "obs/trace.h"
#include "serve/durable_io.h"
#include "serve/metrics.h"
#include "util/timer.h"

namespace gfd {

namespace fs = std::filesystem;

namespace {

constexpr char kMetaFile[] = "store.meta";
constexpr char kLogFile[] = "deltas.log";
constexpr char kMetaMagic[] = "gfd-graph-store v1";

void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

std::string SnapshotName(uint64_t anchor) {
  return "snapshot-" + std::to_string(anchor) + ".tsv";
}

std::string MetaContent(uint64_t anchor, const std::string& snapshot_file,
                        const std::optional<MetaCount>& count) {
  std::string out(kMetaMagic);
  out += "\nanchor " + std::to_string(anchor);
  out += "\nsnapshot " + snapshot_file + "\n";
  if (count) out += MetaCountLine(*count);
  return out;
}

bool ParseMeta(const std::string& path, uint64_t* anchor,
               std::string* snapshot_file, std::optional<MetaCount>* count,
               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, path + ": cannot open (not a graph store?)");
    return false;
  }
  std::string magic;
  if (!std::getline(in, magic) || magic != kMetaMagic) {
    SetError(error, path + ": bad magic line '" + magic + "'");
    return false;
  }
  bool have_anchor = false, have_snapshot = false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "anchor") {
      have_anchor = static_cast<bool>(ls >> *anchor);
    } else if (key == "snapshot") {
      have_snapshot = static_cast<bool>(ls >> *snapshot_file);
    } else if (key == "violations" && count) {
      *count = ParseMetaCountFields(ls);
    }
  }
  if (!have_anchor || !have_snapshot) {
    SetError(error, path + ": missing anchor/snapshot entry");
    return false;
  }
  return true;
}

std::string SaveGraphString(const PropertyGraph& g) {
  std::ostringstream os;
  // with_vocab: a reloaded snapshot must reproduce interner ids exactly,
  // or compiled rule sets and logged batches would silently re-bind to
  // permuted vocabulary after a restart.
  SaveGraphTsv(g, os, /*with_vocab=*/true);
  return std::move(os).str();
}

}  // namespace

bool GraphStore::Init(const std::string& dir, const PropertyGraph& g,
                      std::string* error) {
  return InitAt(dir, g, /*anchor=*/0, error);
}

bool GraphStore::InitAt(const std::string& dir, const PropertyGraph& g,
                        uint64_t anchor, std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    SetError(error, dir + ": cannot create: " + ec.message());
    return false;
  }
  std::string meta_path = (fs::path(dir) / kMetaFile).string();
  if (fs::exists(meta_path)) {
    SetError(error, dir + ": already holds a graph store");
    return false;
  }
  std::string snapshot = SnapshotName(anchor);
  if (!AtomicWriteFile((fs::path(dir) / snapshot).string(),
                       SaveGraphString(g), error)) {
    return false;
  }
  return AtomicWriteFile(meta_path,
                         MetaContent(anchor, snapshot, std::nullopt), error);
}

std::optional<GraphStore> GraphStore::Open(const std::string& dir,
                                           const GraphStoreOptions& opts,
                                           std::string* error) {
  GraphStore store;
  store.opts_ = opts;
  store.dir_ = dir;

  uint64_t anchor = 0;
  std::optional<MetaCount> count;
  if (!ParseMeta((fs::path(dir) / kMetaFile).string(), &anchor,
                 &store.snapshot_file_, &count, error)) {
    return std::nullopt;
  }
  std::string snap_path = (fs::path(dir) / store.snapshot_file_).string();
  std::string load_error;
  auto base = LoadGraphTsvFile(snap_path, &load_error);
  if (!base) {
    SetError(error, snap_path + ": " + load_error);
    return std::nullopt;
  }
  store.base_ = std::make_unique<PropertyGraph>(std::move(*base));
  store.stats_.anchor_seq = anchor;
  store.stats_.last_seq = anchor;

  auto log = DeltaLog::Open((fs::path(dir) / kLogFile).string(), anchor + 1,
                            error);
  if (!log) return std::nullopt;
  store.log_ = std::move(*log);
  store.stats_.truncated_bytes = store.log_->open_stats().truncated_bytes;

  // Sequenced, exactly-once replay: records the snapshot already contains
  // (seq <= anchor; left over when a crash hit between the meta commit
  // and the log re-anchor) are skipped, the rest must continue the chain
  // at anchor+1.
  StopwatchNs replay_watch;
  GraphDelta overlay;
  std::vector<std::pair<size_t, uint64_t>> op_origin;  // ops-so-far -> seq
  for (const DeltaLogRecord& rec : store.log_->records()) {
    if (rec.seq <= anchor) {
      ++store.stats_.skipped_batches;
      continue;
    }
    if (rec.seq != store.stats_.last_seq + 1) {
      SetError(error, store.log_->path() + ": record " +
                          std::to_string(rec.seq) + " does not continue " +
                          std::to_string(store.stats_.last_seq) +
                          " (lost batches?)");
      return std::nullopt;
    }
    std::istringstream in(rec.payload);
    std::string parse_error;
    auto d = LoadGraphDeltaTsv(in, *store.base_, &parse_error);
    if (!d) {
      SetError(error, store.log_->path() + ": record " +
                          std::to_string(rec.seq) + ": " + parse_error);
      return std::nullopt;
    }
    overlay.Append(*store.base_, *d);
    op_origin.emplace_back(overlay.ops.size(), rec.seq);
    store.stats_.last_seq = rec.seq;
    ++store.stats_.replayed_batches;
  }
  std::string apply_error;
  auto view = GraphView::Apply(*store.base_, overlay, &apply_error);
  if (!view) {
    // Map the failing op index ("op N: ...") back to its batch.
    std::string at;
    size_t op_index = 0;
    if (std::sscanf(apply_error.c_str(), "op %zu", &op_index) == 1) {
      for (const auto& [ops_end, seq] : op_origin) {
        if (op_index <= ops_end) {
          at = " in record " + std::to_string(seq);
          break;
        }
      }
    }
    SetError(error, store.log_->path() + at + ": " + apply_error);
    return std::nullopt;
  }
  store.overlay_ = std::move(overlay);
  store.view_ = std::move(*view);
  StoreReplayLatency().Observe(replay_watch.Seconds());
  StoreReplayedBatchesTotal().Inc(store.stats_.replayed_batches);
  obs::EmitTrace("replay", {{"seq", store.stats_.last_seq},
                            {"batches", store.stats_.replayed_batches},
                            {"overlay_ops", store.overlay_.ops.size()}});

  // The persisted count is trusted only when it was taken at exactly the
  // state replay reconstructed: a torn tail (count ahead) or appends that
  // never folded their diff back in (count behind) both invalidate it.
  store.count_.Restore(count, store.stats_.last_seq);

  // Self-heal: drop pre-anchor records and clean tmp/orphan snapshots.
  if (store.stats_.skipped_batches > 0) {
    if (!store.log_->DropThrough(anchor, error)) return std::nullopt;
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    bool orphan_snapshot = name.starts_with("snapshot-") &&
                           name.ends_with(".tsv") &&
                           name != store.snapshot_file_;
    if (orphan_snapshot || name.ends_with(".tmp")) {
      fs::remove(entry.path(), ec);
    }
  }
  return store;
}

bool GraphStore::ApplyOverlay(GraphDelta next_overlay, std::string* error) {
  std::string apply_error;
  auto view = GraphView::Apply(*base_, next_overlay, &apply_error);
  if (!view) {
    SetError(error, apply_error);
    return false;
  }
  overlay_ = std::move(next_overlay);
  view_ = std::move(*view);
  return true;
}

std::optional<uint64_t> GraphStore::Append(std::string_view delta_tsv,
                                           std::string* error) {
  obs::ScopedTimer append_timer(&StoreAppendLatency(), "append");
  obs::ScopedTimer validate_timer(nullptr, "validate");
  std::istringstream in{std::string(delta_tsv)};
  std::string parse_error;
  auto d = LoadGraphDeltaTsv(in, *base_, &parse_error);
  if (!d) {
    append_timer.Discard();
    validate_timer.Discard();
    SetError(error, parse_error);
    return std::nullopt;
  }
  // Fold the batch onto the overlay tail, remembering the rollback point:
  // on any failure below, the ops and extras the batch contributed are
  // truncated away again (nothing before first_op references them).
  const size_t first_op = overlay_.ops.size();
  const size_t labels0 = overlay_.extra_labels.size();
  const size_t attrs0 = overlay_.extra_attrs.size();
  const size_t values0 = overlay_.extra_values.size();
  overlay_.Append(*base_, *d);
  auto rollback = [&] {
    overlay_.ops.resize(first_op);
    overlay_.extra_labels.resize(labels0);
    overlay_.extra_attrs.resize(attrs0);
    overlay_.extra_values.resize(values0);
  };
  // Validate against the *current* view before anything touches disk: the
  // log must never hold a batch that cannot apply. O(batch), not
  // O(overlay) -- the view absorbs the appended tail in place instead of
  // re-applying the merged overlay from scratch.
  std::string apply_error;
  if (!view_->ValidateAppended(overlay_, first_op, &apply_error)) {
    rollback();
    append_timer.Discard();
    validate_timer.Discard();
    SetError(error, apply_error);
    return std::nullopt;
  }
  validate_timer.AddField("ops", overlay_.ops.size());
  validate_timer.StopNs();
  auto seq = log_->Append(delta_tsv, error);
  if (!seq) {
    rollback();
    append_timer.Discard();
    return std::nullopt;
  }
  if (!view_->AbsorbAppended(overlay_, first_op, &apply_error)) {
    // Unreachable: validation just passed on the identical state. Fail
    // loudly rather than let memory and log quietly diverge.
    SetError(error, "post-log absorb failed: " + apply_error);
    return std::nullopt;
  }
  stats_.last_seq = *seq;
  StoreAppendsTotal().Inc();
  append_timer.AddField("seq", *seq);
  // The batch changed the graph; the count is stale until the serving
  // loop folds the batch's diff back in via SetViolationCount.
  count_.Invalidate();
  return seq;
}

bool GraphStore::Validate(std::string_view delta_tsv,
                          std::string* error) const {
  std::istringstream in{std::string(delta_tsv)};
  std::string parse_error;
  auto d = LoadGraphDeltaTsv(in, *base_, &parse_error);
  if (!d) {
    SetError(error, parse_error);
    return false;
  }
  // Dry-run against the live view: carry only the overlay's extension
  // vocabulary (so the batch's ids resolve in the view's id space) and
  // validate the batch as an appended tail -- O(batch), no overlay copy.
  GraphDelta candidate;
  candidate.extra_labels = overlay_.extra_labels;
  candidate.extra_attrs = overlay_.extra_attrs;
  candidate.extra_values = overlay_.extra_values;
  candidate.Append(*base_, *d);
  std::string apply_error;
  if (!view_->ValidateAppended(candidate, 0, &apply_error)) {
    SetError(error, apply_error);
    return false;
  }
  return true;
}

std::optional<uint64_t> GraphStore::violation_count(
    uint64_t fingerprint) const {
  return count_.Get(stats_.last_seq, fingerprint);
}

bool GraphStore::SetViolationCount(uint64_t count, uint64_t fingerprint,
                                   std::string* error) {
  count_.Set(count, stats_.last_seq, fingerprint);
  ViolationsRunning().Set(static_cast<double>(count));
  return WriteMeta(error);
}

bool GraphStore::WriteMeta(std::string* error) {
  return AtomicWriteFile(
      (fs::path(dir_) / kMetaFile).string(),
      MetaContent(stats_.anchor_seq, snapshot_file_,
                  count_.Persisted(stats_.last_seq)),
      error);
}

std::optional<uint64_t> GraphStore::Append(const GraphDelta& batch,
                                           std::string* error) {
  std::ostringstream os;
  SaveGraphDeltaTsv(*base_, batch, os);
  return Append(std::move(os).str(), error);
}

bool GraphStore::ShouldCompact() const {
  size_t ops = overlay_.ops.size();
  if (ops == 0) return false;
  if (opts_.compact_min_ops > 0 && ops >= opts_.compact_min_ops) return true;
  if (opts_.compact_min_fraction > 0 &&
      static_cast<double>(ops) >=
          opts_.compact_min_fraction *
              static_cast<double>(base_->NumEdges())) {
    return true;
  }
  return false;
}

bool GraphStore::Compact(std::string* error) {
  // No-op only when there is truly nothing to fold AND the anchor is
  // already current. Extras-only overlays must still fold (they change
  // the post-compaction base vocabulary), and empty sub-batches must
  // still roll the anchor -- coordinator lockstep compares anchors
  // across fragments.
  if (overlay_.ops.empty() && overlay_.extra_labels.empty() &&
      overlay_.extra_attrs.empty() && overlay_.extra_values.empty() &&
      stats_.anchor_seq == stats_.last_seq) {
    return true;
  }
  obs::ScopedTimer compact_timer(&StoreCompactLatency(), "compact",
                                 {{"seq", stats_.last_seq},
                                  {"overlay_ops", overlay_.ops.size()}});
  PropertyGraph next = view_->Materialize();
  uint64_t anchor = stats_.last_seq;
  std::string snapshot = SnapshotName(anchor);

  // Snapshot first, meta second: the meta rename is the commit point. A
  // crash before it leaves the old snapshot+log state authoritative (the
  // new snapshot file is an orphan Open() cleans up); a crash after it
  // leaves stale log records at/below the anchor, which replay skips.
  if (!AtomicWriteFile((fs::path(dir_) / snapshot).string(),
                       SaveGraphString(next), error)) {
    return false;
  }
  // Compaction does not advance last_seq, so a valid running count rides
  // through the meta commit unchanged.
  if (!AtomicWriteFile(
          (fs::path(dir_) / kMetaFile).string(),
          MetaContent(anchor, snapshot, count_.Persisted(stats_.last_seq)),
          error)) {
    return false;
  }
  if (!log_->DropThrough(anchor, error)) return false;
  if (snapshot != snapshot_file_) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / snapshot_file_, ec);  // best effort
  }

  snapshot_file_ = snapshot;
  base_ = std::make_unique<PropertyGraph>(std::move(next));
  stats_.anchor_seq = anchor;
  ++stats_.compactions;
  StoreCompactionsTotal().Inc();
  return ApplyOverlay(GraphDelta{}, error);
}

bool GraphStore::MaybeCompact(std::string* error) {
  return ShouldCompact() ? Compact(error) : true;
}

PropertyGraph GraphStore::MaterializeCurrent() const {
  return view_->Materialize();
}

std::optional<IncrementalDiff> GraphStore::AppendAndDiff(
    const ViolationEngine& engine, std::string_view delta_tsv,
    const IncrementalOptions& opts, uint64_t* seq_out, std::string* error) {
  return gfd::AppendAndDiff(*this, engine, delta_tsv, opts, seq_out, error);
}

ServingMetricsSnapshot GraphStore::MetricsSnapshot() const {
  ServingMetricsSnapshot snap;
  snap.anchor_seq = stats_.anchor_seq;
  snap.last_seq = stats_.last_seq;
  snap.fragments = 1;
  snap.replayed_batches = stats_.replayed_batches;
  snap.skipped_batches = stats_.skipped_batches;
  snap.overlay_ops = overlay_.ops.size();
  snap.truncated_bytes = stats_.truncated_bytes;
  snap.compactions = stats_.compactions;
  return snap;
}

std::optional<IncrementalDiff> AppendAndDiff(GraphStore& store,
                                             const ViolationEngine& engine,
                                             std::string_view delta_tsv,
                                             const IncrementalOptions& opts,
                                             uint64_t* seq_out,
                                             std::string* error) {
  // Path choice happens BEFORE the append, from pre-append estimates, so
  // the chosen path's before-side still sees the pre-batch state. The
  // inputs come from the one shared MakePlannerInputs, which is what
  // makes the single-store and coordinator backends decide identically
  // on the same stream.
  PlannerInputs pin;
  DetectPath path = DetectPath::kIncremental;
  if (opts.planner) {
    pin = MakePlannerInputs(store.view(), store.overlay().ops.size(),
                            delta_tsv, engine.NumGroups(),
                            engine.NumAnchorPlans());
    path = opts.planner->Plan(pin);
  }

  if (path == DetectPath::kFull) {
    // Full re-detect of both sides: uncapped (a truncated side would
    // fabricate diff entries), diffed by FullStepDiff. The observed
    // wall-clock feeds the planner's full-path calibration.
    WallTimer watch;
    obs::ScopedTimer detect_timer(nullptr, "detect_full");
    DetectOptions full;
    full.workers = opts.workers;
    full.match = opts.match;
    DetectionResult before = engine.Detect(store.view(), full);
    auto seq = store.Append(delta_tsv, error);
    if (!seq) {
      detect_timer.Discard();
      return std::nullopt;
    }
    if (seq_out) *seq_out = *seq;
    DetectionResult after = engine.Detect(store.view(), full);
    detect_timer.AddField("seq", *seq);
    detect_timer.StopNs();
    IncrementalDiff diff = FullStepDiff(before, after);
    opts.planner->ObserveFull(pin, watch.Seconds());
    return diff;
  }

  // Both runs diff against the shared base; Append never compacts, so the
  // base is identical across them and the diffs compose.
  WallTimer watch;
  obs::ScopedTimer detect_timer(nullptr, "detect");
  IncrementalDiff before = engine.DetectIncremental(store.view(), opts);
  auto seq = store.Append(delta_tsv, error);
  if (!seq) {
    detect_timer.Discard();
    return std::nullopt;
  }
  if (seq_out) *seq_out = *seq;
  IncrementalDiff after = engine.DetectIncremental(store.view(), opts);
  detect_timer.AddField("seq", *seq);
  detect_timer.StopNs();
  obs::ScopedTimer merge_timer(nullptr, "merge", {{"seq", *seq}});
  IncrementalDiff diff = ComposeStepDiff(before, after);
  if (opts.planner) opts.planner->ObserveIncremental(pin, watch.Seconds());
  return diff;
}

}  // namespace gfd
