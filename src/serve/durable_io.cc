#include "serve/durable_io.h"

#include "serve/metrics.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GFD_HAVE_FSYNC 1
#endif

namespace gfd {

namespace fs = std::filesystem;

bool SyncFile(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifdef GFD_HAVE_FSYNC
  FsyncsTotal().Inc();
  if (::fsync(::fileno(f)) != 0) return false;
#endif
  return true;
}

bool SyncClosedFile(const std::string& path) {
#ifdef GFD_HAVE_FSYNC
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  FsyncsTotal().Inc();
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

void SyncParentDir(const std::string& path) {
#ifdef GFD_HAVE_FSYNC
  std::filesystem::path dir = fs::path(path).parent_path();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    FsyncsTotal().Inc();
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

bool AtomicWriteFile(const std::string& path, std::string_view content,
                     std::string* error) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = tmp + ": cannot open for writing";
      return false;
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    // Close explicitly: the final buffered flush can fail (ENOSPC), and
    // the destructor would swallow it -- fsync'ing and renaming a short
    // file would commit a truncated artifact as if it were complete.
    out.close();
    if (out.fail()) {
      if (error) *error = tmp + ": write failed";
      return false;
    }
  }
  if (!SyncClosedFile(tmp)) {
    if (error) *error = tmp + ": fsync failed: " + std::strerror(errno);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    if (error) *error = path + ": rename failed: " + ec.message();
    return false;
  }
  SyncParentDir(path);
  return true;
}

std::string MetaCountLine(const MetaCount& c) {
  return "violations " + std::to_string(c.count) + " " +
         std::to_string(c.seq) + " " + std::to_string(c.fingerprint) + "\n";
}

std::optional<MetaCount> ParseMetaCountFields(std::istream& in) {
  MetaCount c;
  if (in >> c.count >> c.seq >> c.fingerprint) return c;
  return std::nullopt;
}

}  // namespace gfd
