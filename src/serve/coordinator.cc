#include "serve/coordinator.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "detect/planner.h"
#include "graph/loader.h"
#include "graph/subgraph.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "util/timer.h"

namespace gfd {

namespace {
namespace fs = std::filesystem;

constexpr char kMetaFile[] = "coordinator.meta";
constexpr char kMetaMagic[] = "gfd-coordinator v2";
constexpr char kJournalFile[] = "routing.log";

void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

std::string FragmentDir(const std::string& dir, size_t f) {
  return dir + "/frag-" + std::to_string(f);
}

std::string GlobalSnapshotName(uint64_t seq) {
  return "global-snapshot-" + std::to_string(seq) + ".tsv";
}

// Global snapshots present in `dir`, by anchor sequence, ascending.
std::vector<uint64_t> ListGlobalSnapshots(const std::string& dir) {
  constexpr std::string_view kPrefix = "global-snapshot-";
  constexpr std::string_view kSuffix = ".tsv";
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
        0) {
      continue;
    }
    std::string mid = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (mid.empty() ||
        mid.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    seqs.push_back(std::stoull(mid));
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

std::string MetaContent(const Partition& p, uint64_t owners_seq,
                        const std::optional<MetaCount>& count) {
  std::ostringstream out;
  out << kMetaMagic << '\n';
  out << "fragments " << p.num_fragments << '\n';
  out << "radius " << p.halo_radius << '\n';
  out << "owners_seq " << owners_seq << '\n';
  out << "replication " << p.replication << '\n';
  if (count) out << MetaCountLine(*count);
  // Ownership is part of the coordinator's identity: recomputing it from
  // an evolved graph would silently re-partition the affected-node
  // attribution, so it is persisted verbatim.
  out << "owners";
  for (uint32_t o : p.node_owner) out << ' ' << o;
  out << '\n';
  // Border lists are advisory (status/introspection); residency is
  // recomputed from the live graph on open.
  for (size_t f = 0; f < p.borders.size(); ++f) {
    out << "border " << f;
    for (NodeId v : p.borders[f]) out << ' ' << v;
    out << '\n';
  }
  return out.str();
}

struct MetaData {
  size_t fragments = 0;
  uint32_t radius = 0;
  uint64_t owners_seq = 0;
  double replication = 1.0;
  std::vector<uint32_t> owners;
  std::optional<MetaCount> count;
};

bool ParseMeta(const std::string& path, MetaData* meta, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, path + ": cannot open (not a coordinator?)");
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != kMetaMagic) {
    SetError(error, "bad magic in " + path);
    return false;
  }
  bool have_fragments = false;
  bool have_owners = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "fragments") {
      if (ls >> meta->fragments) have_fragments = true;
    } else if (key == "radius") {
      ls >> meta->radius;
    } else if (key == "owners_seq") {
      ls >> meta->owners_seq;
    } else if (key == "replication") {
      ls >> meta->replication;
    } else if (key == "violations") {
      meta->count = ParseMetaCountFields(ls);
    } else if (key == "owners") {
      uint32_t o;
      while (ls >> o) meta->owners.push_back(o);
      have_owners = true;
    } else if (key == "border") {
      // Advisory; skipped.
    } else {
      SetError(error, "unrecognized line in " + path + ": " + line);
      return false;
    }
  }
  if (!have_fragments || !have_owners || meta->radius < 1) {
    SetError(error, "incomplete coordinator meta in " + path);
    return false;
  }
  return true;
}

// One routing-journal record: the original global batch plus every
// fragment's routed sub-batch, length-framed so arbitrary TSV bytes
// survive the round trip.
//
//   G <bytes>\n<global batch>\n
//   F <f> <bytes>\n<sub-batch f>\n   for f = 0 .. fragments-1
std::string JournalPayload(std::string_view global_tsv,
                           const std::vector<std::string>& frags) {
  std::string out;
  out += "G " + std::to_string(global_tsv.size()) + "\n";
  out.append(global_tsv);
  out += '\n';
  for (size_t f = 0; f < frags.size(); ++f) {
    out +=
        "F " + std::to_string(f) + " " + std::to_string(frags[f].size()) + "\n";
    out += frags[f];
    out += '\n';
  }
  return out;
}

bool ParseJournalPayload(const std::string& payload, size_t fragments,
                         std::string* global_tsv,
                         std::vector<std::string>* frags, std::string* error) {
  size_t pos = 0;
  auto next_line = [&](std::string* out_line) {
    size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) return false;
    *out_line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  auto read_body = [&](size_t n, std::string* body) {
    if (pos + n >= payload.size() || payload[pos + n] != '\n') return false;
    body->assign(payload, pos, n);
    pos += n + 1;
    return true;
  };
  std::string header;
  std::string tag;
  size_t n = 0;
  if (!next_line(&header)) {
    SetError(error, "corrupt routing journal record");
    return false;
  }
  {
    std::istringstream hs(header);
    if (!(hs >> tag >> n) || tag != "G" || !read_body(n, global_tsv)) {
      SetError(error, "corrupt routing journal record");
      return false;
    }
  }
  frags->assign(fragments, "");
  for (size_t f = 0; f < fragments; ++f) {
    size_t id = 0;
    if (!next_line(&header)) {
      SetError(error, "corrupt routing journal record");
      return false;
    }
    std::istringstream hs(header);
    if (!(hs >> tag >> id >> n) || tag != "F" || id != f ||
        !read_body(n, &(*frags)[f])) {
      SetError(error, "corrupt routing journal record");
      return false;
    }
  }
  return true;
}

// Accounted size of a diff shipped fragment -> master.
uint64_t DiffBytes(const IncrementalDiff& diff) {
  uint64_t bytes = 0;
  for (const std::vector<Violation>* side : {&diff.added, &diff.removed}) {
    for (const Violation& v : *side) {
      bytes += sizeof(Violation) + v.match.size() * sizeof(NodeId);
    }
  }
  return bytes;
}

// Merges per-fragment violation lists. Ownership attribution makes the
// parts disjoint, so sorting the concatenation reproduces the exact
// single-node ordering.
std::vector<Violation> MergeSorted(std::vector<std::vector<Violation>> parts) {
  std::vector<Violation> out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void AddStats(IncrementalStats* into, const IncrementalStats& s) {
  into->affected_nodes += s.affected_nodes;
  into->anchor_plans += s.anchor_plans;
  into->anchors_scanned += s.anchors_scanned;
  into->matches_seen += s.matches_seen;
  into->literal_evals += s.literal_evals;
  into->violations_before += s.violations_before;
  into->violations_after += s.violations_after;
  into->groups_scanned += s.groups_scanned;
  into->groups_skipped += s.groups_skipped;
}

}  // namespace

bool Coordinator::Init(const std::string& dir, const PropertyGraph& g,
                       size_t fragments, uint32_t halo_radius,
                       std::string* error) {
  if (fragments == 0) {
    SetError(error, "fragment count must be >= 1");
    return false;
  }
  if (halo_radius < 1) {
    SetError(error, "halo radius must be >= 1");
    return false;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    SetError(error, "cannot create " + dir + ": " + ec.message());
    return false;
  }
  if (fs::exists(dir + "/" + kMetaFile)) {
    SetError(error, dir + " already holds a coordinator");
    return false;
  }

  Fragmentation frag = VertexCutPartition(g, fragments);
  Partition p = std::move(frag.partition);
  p.halo_radius = halo_radius;
  FragmentResidency resident = ComputeResidency(g, p);
  FillBorders(&p, resident);

  // Each fragment starts from its resident subgraph -- owned partition
  // plus halo -- never the whole graph.
  for (size_t f = 0; f < fragments; ++f) {
    std::string ferr;
    if (!GraphStore::Init(FragmentDir(dir, f), ExtractSubgraph(g, resident[f]),
                          &ferr)) {
      SetError(error, "fragment " + std::to_string(f) + ": " + ferr);
      return false;
    }
  }
  {
    std::ostringstream snap;
    SaveGraphTsv(g, snap, /*with_vocab=*/true);
    std::string werr;
    if (!AtomicWriteFile(dir + "/" + GlobalSnapshotName(0), snap.str(),
                         &werr)) {
      SetError(error, "global snapshot: " + werr);
      return false;
    }
  }
  {
    std::string jerr;
    if (!DeltaLog::Open(dir + "/" + kJournalFile, 1, &jerr)) {
      SetError(error, "routing journal: " + jerr);
      return false;
    }
  }
  std::string werr;
  if (!AtomicWriteFile(dir + "/" + kMetaFile,
                       MetaContent(p, /*owners_seq=*/0, std::nullopt), &werr)) {
    SetError(error, "meta: " + werr);
    return false;
  }
  return true;
}

std::optional<Coordinator> Coordinator::Open(const std::string& dir,
                                             const CoordinatorOptions& opts,
                                             std::string* error) {
  Coordinator c;
  c.dir_ = dir;
  c.opts_ = opts;
  MetaData meta;
  if (!ParseMeta(dir + "/" + kMetaFile, &meta, error)) return std::nullopt;
  if (meta.fragments == 0) {
    SetError(error, "coordinator meta has no fragments");
    return std::nullopt;
  }
  for (uint32_t o : meta.owners) {
    if (o >= meta.fragments) {
      SetError(error, "meta owner out of range");
      return std::nullopt;
    }
  }
  c.owners_seq_ = meta.owners_seq;
  c.cluster_ = std::make_unique<Cluster>(meta.fragments);

  // Every fragment store recovers independently from its local log;
  // fragments lost outright are rebuilt below from the global state.
  std::vector<std::optional<GraphStore>> opened(meta.fragments);
  uint64_t frag_max = 0;
  for (size_t f = 0; f < meta.fragments; ++f) {
    std::string ferr;
    auto s = GraphStore::Open(FragmentDir(dir, f), opts.store, &ferr);
    if (!s) continue;
    frag_max = std::max(frag_max, s->last_seq());
    opened[f] = std::move(*s);
  }

  // Recover the master's global state from the newest snapshot the
  // routing journal can bridge to the global sequence, preferring the
  // common fragment anchor so a clean open needs no re-compaction.
  std::vector<uint64_t> snaps = ListGlobalSnapshots(dir);
  if (snaps.empty()) {
    SetError(error, "no global snapshot in " + dir);
    return std::nullopt;
  }
  uint64_t provisional = std::max(frag_max, snaps.back());
  {
    std::string jerr;
    auto j = DeltaLog::Open(dir + "/" + kJournalFile, provisional + 1, &jerr);
    if (!j) {
      SetError(error, "routing journal: " + jerr);
      return std::nullopt;
    }
    c.journal_ = std::move(*j);
  }
  auto records = c.journal_->records();
  uint64_t global_seq = provisional;
  if (!records.empty()) global_seq = std::max(global_seq, records.back().seq);

  auto bridgeable = [&](uint64_t x) {
    if (x > global_seq) return false;
    if (x == global_seq) return true;
    if (records.empty()) return false;
    return records.front().seq <= x + 1 && records.back().seq >= global_seq;
  };
  std::optional<uint64_t> common_anchor;
  bool anchors_equal = true;
  for (const auto& s : opened) {
    if (!s) continue;
    uint64_t a = s->stats().anchor_seq;
    if (!common_anchor) {
      common_anchor = a;
    } else if (*common_anchor != a) {
      anchors_equal = false;
    }
  }
  std::optional<uint64_t> chosen;
  if (anchors_equal && common_anchor &&
      std::binary_search(snaps.begin(), snaps.end(), *common_anchor) &&
      bridgeable(*common_anchor)) {
    chosen = *common_anchor;
  }
  if (!chosen) {
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
      if (bridgeable(*it)) {
        chosen = *it;
        break;
      }
    }
  }
  if (!chosen) {
    SetError(error,
             "cannot reconstruct the global state: no snapshot bridges to "
             "sequence " +
                 std::to_string(global_seq));
    return std::nullopt;
  }
  const uint64_t master_anchor = *chosen;
  std::string gerr;
  auto g =
      LoadGraphTsvFile(dir + "/" + GlobalSnapshotName(master_anchor), &gerr);
  if (!g) {
    SetError(error, "global snapshot: " + gerr);
    return std::nullopt;
  }
  if (meta.owners.size() != g->NumNodes()) {
    SetError(error, "ownership table does not match the graph");
    return std::nullopt;
  }
  Partition p;
  p.num_fragments = meta.fragments;
  p.halo_radius = meta.radius;
  p.node_owner = std::move(meta.owners);
  p.replication = meta.replication;
  c.index_ = RoutingIndex::Build(std::move(*g), std::move(p), error);
  if (!c.index_) return std::nullopt;
  for (const auto& rec : records) {
    if (rec.seq <= master_anchor) continue;
    std::string gtsv;
    std::vector<std::string> fpayloads;
    if (!ParseJournalPayload(rec.payload, meta.fragments, &gtsv, &fpayloads,
                             error)) {
      return std::nullopt;
    }
    auto plan = c.index_->PlanBatch(gtsv, &gerr);
    if (!plan) {
      SetError(error, "routing journal replay seq " + std::to_string(rec.seq) +
                          ": " + gerr);
      return std::nullopt;
    }
    c.index_->Commit(std::move(*plan));
  }
  c.stats_.last_seq = global_seq;

  std::optional<PropertyGraph> current;
  for (size_t f = 0; f < meta.fragments; ++f) {
    if (opened[f]) {
      c.fragments_.push_back(std::move(*opened[f]));
      continue;
    }
    if (!current) current = c.index_->view().Materialize();
    auto s = c.RebuildFragment(f, global_seq, *current, error);
    if (!s) return std::nullopt;
    c.fragments_.push_back(std::move(*s));
    ++c.stats_.catchup_snapshots;
    ++c.stats_.lagging_fragments;
    CatchupFragmentsTotal().Inc();
  }

  if (!c.CatchUp(global_seq, master_anchor, error)) return std::nullopt;

  for (const GraphStore& s : c.fragments_) {
    if (s.last_seq() != global_seq) {
      SetError(error, "fragments disagree after catch-up");
      return std::nullopt;
    }
  }
  uint64_t anchor = c.fragments_.front().stats().anchor_seq;
  for (const GraphStore& s : c.fragments_) {
    if (s.stats().anchor_seq != anchor) {
      SetError(error, "fragment anchors disagree after catch-up");
      return std::nullopt;
    }
  }
  c.stats_.anchor_seq = anchor;
  c.count_.Restore(meta.count, global_seq);
  return c;
}

std::optional<GraphStore> Coordinator::RebuildFragment(
    size_t f, uint64_t global_seq, const PropertyGraph& current,
    std::string* error) {
  PropertyGraph sub = ExtractSubgraph(current, index_->residency()[f]);
  std::ostringstream shipped;
  SaveGraphTsv(sub, shipped, /*with_vocab=*/true);
  std::error_code ec;
  fs::remove_all(FragmentDir(dir_, f), ec);
  std::string ferr;
  if (!GraphStore::InitAt(FragmentDir(dir_, f), sub, global_seq, &ferr)) {
    SetError(error, "fragment " + std::to_string(f) + ": rebuild: " + ferr);
    return std::nullopt;
  }
  auto s = GraphStore::Open(FragmentDir(dir_, f), opts_.store, &ferr);
  if (!s) {
    SetError(error, "fragment " + std::to_string(f) +
                        ": reopen after rebuild: " + ferr);
    return std::nullopt;
  }
  cluster_->CountShipment(1, shipped.str().size());
  SnapshotTransfersTotal().Inc();
  obs::EmitTrace("snapshot_transfer",
                 {{"fragment", f},
                  {"seq", global_seq},
                  {"bytes", shipped.str().size()}});
  return s;
}

bool Coordinator::CatchUp(uint64_t global_seq, uint64_t master_anchor,
                          std::string* error) {
  auto records = journal_->records();
  const uint64_t journal_first = records.empty() ? 0 : records.front().seq;
  std::vector<std::optional<std::vector<std::string>>> parsed(records.size());
  for (size_t f = 0; f < fragments_.size(); ++f) {
    bool lagged = false;
    while (fragments_[f].last_seq() < global_seq) {
      uint64_t need = fragments_[f].last_seq() + 1;
      if (records.empty() || need < journal_first ||
          need > records.back().seq) {
        SetError(error, "fragment " + std::to_string(f) +
                            " cannot be caught up from the routing journal");
        return false;
      }
      size_t idx = need - journal_first;
      if (!parsed[idx]) {
        std::string gtsv;
        std::vector<std::string> fpayloads;
        if (!ParseJournalPayload(records[idx].payload, fragments_.size(),
                                 &gtsv, &fpayloads, error)) {
          return false;
        }
        parsed[idx] = std::move(fpayloads);
      }
      const std::string& payload = (*parsed[idx])[f];
      std::string ferr;
      auto seq2 = fragments_[f].Append(payload, &ferr);
      if (!seq2) {
        SetError(error,
                 "fragment " + std::to_string(f) + ": catch-up: " + ferr);
        return false;
      }
      if (*seq2 != need) {
        SetError(error, "fragment " + std::to_string(f) +
                            ": catch-up out of sequence");
        return false;
      }
      cluster_->CountShipment(1, payload.size());
      ++stats_.catchup_records;
      CatchupRecordsTotal().Inc();
      lagged = true;
    }
    if (lagged) {
      ++stats_.lagging_fragments;
      CatchupFragmentsTotal().Inc();
      obs::EmitTrace("catchup", {{"fragment", f},
                                 {"seq", global_seq},
                                 {"records", stats_.catchup_records}});
    }
  }

  uint64_t min_anchor = fragments_.front().stats().anchor_seq;
  bool anchors_differ = false;
  for (const GraphStore& s : fragments_) {
    uint64_t a = s.stats().anchor_seq;
    min_anchor = std::min(min_anchor, a);
    if (a != fragments_.front().stats().anchor_seq) anchors_differ = true;
  }

  // A rebalance that crashed between its meta commit and its lockstep
  // compaction leaves fragment bases (and halos) laid out under the old
  // ownership: rebuild every fragment from the recovered global state
  // under the persisted (new) ownership.
  if (owners_seq_ > min_anchor) {
    PropertyGraph current = index_->view().Materialize();
    for (size_t f = 0; f < fragments_.size(); ++f) {
      auto s = RebuildFragment(f, global_seq, current, error);
      if (!s) return false;
      fragments_[f] = std::move(*s);
      ++stats_.catchup_snapshots;
    }
    owners_seq_ = global_seq;  // ownership takes effect at the new anchor
    anchors_differ = true;
  }

  if (anchors_differ ||
      fragments_.front().stats().anchor_seq != master_anchor) {
    if (!CompactAll(error)) return false;
  }
  return true;
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats s = stats_;
  s.anchor_seq = fragments_.front().stats().anchor_seq;
  s.messages = cluster_->messages();
  s.bytes_shipped = cluster_->bytes();
  return s;
}

struct Coordinator::DiffContext {
  const ViolationEngine* engine = nullptr;
  const IncrementalOptions* opts = nullptr;
  std::vector<IncrementalDiff> before;
  std::vector<IncrementalDiff> after;
};

std::optional<uint64_t> Coordinator::ShipSequenced(
    RoutingIndex::ShipPlan&& plan, std::string_view global_tsv,
    DiffContext* diff_ctx, std::string* error) {
  const size_t n = fragments_.size();
  const uint64_t seq = stats_.last_seq + 1;

  // Journal first: once the routed sub-batches are durable at the
  // master, a crash anywhere below is repaired by re-shipping them.
  {
    std::string jerr;
    auto jseq =
        journal_->Append(JournalPayload(global_tsv, plan.payloads), &jerr);
    if (!jseq) {
      SetError(error, "routing journal: " + jerr);
      return std::nullopt;
    }
    if (*jseq != seq) {
      degraded_ = true;
      SetError(error, "routing journal out of sequence");
      return std::nullopt;
    }
  }

  // Per-fragment anchor seeds: the globally affected nodes it owns.
  // Bucketing a sorted list by owner keeps each bucket sorted.
  std::vector<std::vector<NodeId>> seeds_before(n);
  std::vector<std::vector<NodeId>> seeds_after(n);
  if (diff_ctx) {
    std::span<const uint32_t> owner = index_->partition().node_owner;
    for (NodeId v : plan.affected_before) seeds_before[owner[v]].push_back(v);
    for (NodeId v : plan.affected_after) seeds_after[owner[v]].push_back(v);
    diff_ctx->before.resize(n);
    diff_ctx->after.resize(n);
  }

  std::vector<std::string> errs(n);
  cluster_->RunStep([&](size_t f) {
    uint64_t detect_ns = 0;
    if (diff_ctx) {
      StopwatchNs watch;
      diff_ctx->before[f] = diff_ctx->engine->DetectIncrementalOwned(
          fragments_[f].view(), seeds_before[f], plan.affected_before,
          *diff_ctx->opts);
      detect_ns = watch.ElapsedNs();
    }
    std::string ferr;
    auto seq2 = fragments_[f].Append(plan.payloads[f], &ferr);
    if (!seq2) {
      errs[f] = "fragment " + std::to_string(f) + ": " + ferr;
      return;
    }
    if (*seq2 != seq) {
      errs[f] = "fragment " + std::to_string(f) + ": out of sequence";
      return;
    }
    if (diff_ctx) {
      StopwatchNs watch;
      diff_ctx->after[f] = diff_ctx->engine->DetectIncrementalOwned(
          fragments_[f].view(), seeds_after[f], plan.affected_after,
          *diff_ctx->opts);
      detect_ns += watch.ElapsedNs();
      if (obs::TraceLog* trace = obs::ActiveTrace()) {
        trace->Emit("detect", {{"seq", seq}, {"fragment", f}},
                    static_cast<int64_t>(detect_ns));
      }
    }
  });
  for (size_t f = 0; f < n; ++f) {
    cluster_->CountShipment(1, plan.payloads[f].size());
    stats_.bytes_owned_shipped += plan.owned_bytes[f];
    stats_.bytes_halo_shipped += plan.halo_bytes[f];
    stats_.ops_routed += plan.routed_ops[f];
    stats_.ops_maintenance += plan.halo_ops[f];
    FragmentBytesShipped(f, "owned").Inc(plan.owned_bytes[f]);
    FragmentBytesShipped(f, "halo").Inc(plan.halo_bytes[f]);
    FragmentOpsShipped(f, "routed").Inc(plan.routed_ops[f]);
    FragmentOpsShipped(f, "maintenance").Inc(plan.halo_ops[f]);
    obs::EmitTrace("ship", {{"seq", seq},
                            {"fragment", f},
                            {"bytes", plan.payloads[f].size()}});
  }
  for (size_t f = 0; f < n; ++f) {
    if (!errs[f].empty()) {
      degraded_ = true;
      SetError(error, errs[f] + "; coordinator degraded, reopen to recover");
      return std::nullopt;
    }
  }
  if (diff_ctx) {
    for (size_t f = 0; f < n; ++f) {
      cluster_->CountShipment(
          1, DiffBytes(diff_ctx->before[f]) + DiffBytes(diff_ctx->after[f]));
    }
  }
  index_->Commit(std::move(plan));
  stats_.last_seq = seq;
  count_.Invalidate();
  return seq;
}

std::optional<uint64_t> Coordinator::Append(std::string_view delta_tsv,
                                            std::string* error) {
  if (!CheckNotDegraded(error)) return std::nullopt;
  obs::ScopedTimer route_timer(nullptr, "route",
                               {{"seq", stats_.last_seq + 1}});
  auto plan = index_->PlanBatch(delta_tsv, error);
  if (!plan) {
    route_timer.Discard();
    return std::nullopt;
  }
  route_timer.StopNs();
  auto seq = ShipSequenced(std::move(*plan), delta_tsv, nullptr, error);
  if (!seq) return std::nullopt;
  ++stats_.batches;
  return seq;
}

std::optional<IncrementalDiff> Coordinator::AppendAndDiff(
    const ViolationEngine& engine, std::string_view delta_tsv,
    const IncrementalOptions& opts, uint64_t* seq_out, std::string* error) {
  if (!CheckNotDegraded(error)) return std::nullopt;
  const uint32_t need = engine.MaxPatternRadius();
  if (need > index_->partition().halo_radius) {
    SetError(error, "rule pattern radius " + std::to_string(need) +
                        " exceeds the partition halo radius " +
                        std::to_string(index_->partition().halo_radius) +
                        "; re-init the coordinator with a larger radius");
    return std::nullopt;
  }

  // The path decision is master-only and happens BEFORE routing, against
  // the same pre-append global view and through the same
  // MakePlannerInputs as the single-store backend -- which is what makes
  // the choice deterministic across backends for a given stream.
  PlannerInputs pin;
  DetectPath path = DetectPath::kIncremental;
  if (opts.planner) {
    pin = MakePlannerInputs(index_->view(), index_->view().NumDeltaOps(),
                            delta_tsv, engine.NumGroups(),
                            engine.NumAnchorPlans());
    path = opts.planner->Plan(pin);
  }

  obs::ScopedTimer route_timer(nullptr, "route",
                               {{"seq", stats_.last_seq + 1}});
  auto plan = index_->PlanBatch(delta_tsv, error);
  if (!plan) {
    route_timer.Discard();
    return std::nullopt;
  }
  route_timer.StopNs();

  if (path == DetectPath::kFull) {
    // Full re-detect runs on the master's global view (uncapped: a
    // truncated side would fabricate diff entries), so fragments skip
    // their per-fragment detection entirely -- ShipSequenced with a null
    // DiffContext appends and commits without running the engine.
    WallTimer watch;
    obs::ScopedTimer detect_timer(nullptr, "detect_full");
    DetectOptions full;
    full.workers = opts.workers;
    full.match = opts.match;
    DetectionResult full_before = engine.Detect(index_->view(), full);
    auto seq = ShipSequenced(std::move(*plan), delta_tsv, nullptr, error);
    if (!seq) {
      detect_timer.Discard();
      return std::nullopt;
    }
    ++stats_.batches;
    DetectionResult full_after = engine.Detect(index_->view(), full);
    detect_timer.AddField("seq", *seq);
    detect_timer.StopNs();
    IncrementalDiff diff = FullStepDiff(full_before, full_after);
    opts.planner->ObserveFull(pin, watch.Seconds());
    if (seq_out) *seq_out = *seq;
    return diff;
  }

  WallTimer watch;
  DiffContext ctx;
  ctx.engine = &engine;
  ctx.opts = &opts;
  auto seq = ShipSequenced(std::move(*plan), delta_tsv, &ctx, error);
  if (!seq) return std::nullopt;
  ++stats_.batches;

  // Ownership attribution partitions the global diff, so merging the
  // per-fragment base-relative sides and composing reproduces the
  // single-node step diff record for record.
  obs::ScopedTimer merge_timer(nullptr, "merge", {{"seq", *seq}});
  IncrementalDiff before;
  IncrementalDiff after;
  auto merge_side = [](std::vector<IncrementalDiff>& parts, bool added) {
    std::vector<std::vector<Violation>> lists;
    lists.reserve(parts.size());
    for (IncrementalDiff& d : parts) {
      lists.push_back(std::move(added ? d.added : d.removed));
    }
    return MergeSorted(std::move(lists));
  };
  before.added = merge_side(ctx.before, true);
  before.removed = merge_side(ctx.before, false);
  after.added = merge_side(ctx.after, true);
  after.removed = merge_side(ctx.after, false);
  for (const IncrementalDiff& d : ctx.before) AddStats(&before.stats, d.stats);
  for (const IncrementalDiff& d : ctx.after) AddStats(&after.stats, d.stats);
  IncrementalDiff diff = ComposeStepDiff(before, after);
  if (opts.planner) opts.planner->ObserveIncremental(pin, watch.Seconds());
  if (seq_out) *seq_out = *seq;
  return diff;
}

std::optional<uint64_t> Coordinator::Rebalance(NodeId node,
                                               uint32_t to_fragment,
                                               std::string* error) {
  if (!CheckNotDegraded(error)) return std::nullopt;
  obs::ScopedTimer rebalance_timer(&RebalanceLatency(), "rebalance",
                                   {{"node", node}, {"to", to_fragment}});
  auto plan = index_->PlanRebalance(node, to_fragment, error);
  if (!plan) {
    rebalance_timer.Discard();
    return std::nullopt;
  }
  const uint64_t seq = stats_.last_seq + 1;
  rebalance_timer.AddField("seq", seq);

  // The graph (hence the violation set) is unchanged; carry the running
  // count across the consumed sequence number.
  auto carried = count_.Persisted(stats_.last_seq);

  // Persist intent FIRST: if anything past this point crashes, Open
  // sees owners_seq beyond the minimum fragment anchor and rebuilds the
  // fragments under the new ownership from the recovered global state.
  const uint64_t prev_owners_seq = owners_seq_;
  owners_seq_ = seq;
  {
    Partition intent = index_->partition();
    intent.node_owner = plan->new_owner;
    std::string werr;
    if (!AtomicWriteFile(
            dir_ + "/" + kMetaFile,
            MetaContent(intent, owners_seq_, count_.Persisted(stats_.last_seq)),
            &werr)) {
      owners_seq_ = prev_owners_seq;
      SetError(error, "meta: " + werr);
      rebalance_timer.Discard();
      return std::nullopt;
    }
  }

  auto s = ShipSequenced(std::move(*plan), "", nullptr, error);
  if (!s) {
    rebalance_timer.Discard();
    return std::nullopt;
  }
  ++stats_.rebalances;
  RebalancesTotal().Inc();
  if (carried) count_.Set(carried->count, seq, carried->fingerprint);

  // Mandatory lockstep compaction: the next batch's before-side
  // enumeration runs on fragment BASES, which must reflect the new
  // residency (including the halo around the migrated node).
  if (!CompactAll(error)) {
    rebalance_timer.Discard();
    return std::nullopt;
  }
  return seq;
}

bool Coordinator::ShouldCompact() const {
  for (const GraphStore& s : fragments_) {
    if (s.ShouldCompact()) return true;
  }
  return false;
}

bool Coordinator::CompactAll(std::string* error) {
  if (!CheckNotDegraded(error)) return false;
  const uint64_t seq = stats_.last_seq;

  // Global snapshot first (the gross-damage recovery source), fragment
  // rolls second, journal re-anchor last: a crash between any two steps
  // leaves a state Open() can still bridge.
  {
    PropertyGraph current = index_->view().Materialize();
    std::ostringstream snap;
    SaveGraphTsv(current, snap, /*with_vocab=*/true);
    std::string werr;
    if (!AtomicWriteFile(dir_ + "/" + GlobalSnapshotName(seq), snap.str(),
                         &werr)) {
      SetError(error, "global snapshot: " + werr);
      return false;
    }
  }
  std::vector<std::string> errs(fragments_.size());
  cluster_->RunStep([&](size_t f) {
    std::string ferr;
    if (!fragments_[f].Compact(&ferr)) {
      errs[f] = "fragment " + std::to_string(f) + ": " + ferr;
    }
  });
  for (const std::string& e : errs) {
    if (!e.empty()) {
      degraded_ = true;
      SetError(error, e + "; coordinator degraded, reopen to recover");
      return false;
    }
  }
  index_->Compact();
  std::string jerr;
  if (!journal_->DropThrough(seq, &jerr)) {
    SetError(error, "routing journal: " + jerr);
    return false;
  }
  std::error_code ec;
  for (uint64_t old : ListGlobalSnapshots(dir_)) {
    if (old != seq) fs::remove(dir_ + "/" + GlobalSnapshotName(old), ec);
  }
  stats_.anchor_seq = seq;
  ++stats_.compactions;
  return WriteMeta(error);
}

bool Coordinator::MaybeCompactAll(std::string* error) {
  return ShouldCompact() ? CompactAll(error) : true;
}

std::optional<uint64_t> Coordinator::violation_count(
    uint64_t fingerprint) const {
  return count_.Get(stats_.last_seq, fingerprint);
}

bool Coordinator::SetViolationCount(uint64_t count, uint64_t fingerprint,
                                    std::string* error) {
  count_.Set(count, stats_.last_seq, fingerprint);
  ViolationsRunning().Set(static_cast<double>(count));
  return WriteMeta(error);
}

PropertyGraph Coordinator::MaterializeCurrent() const {
  return index_->view().Materialize();
}

ServingMetricsSnapshot Coordinator::MetricsSnapshot() const {
  const CoordinatorStats s = stats();
  ServingMetricsSnapshot snap;
  snap.anchor_seq = s.anchor_seq;
  snap.last_seq = s.last_seq;
  snap.fragments = fragments_.size();
  for (const GraphStore& f : fragments_) {
    snap.replayed_batches += f.stats().replayed_batches;
    snap.skipped_batches += f.stats().skipped_batches;
    snap.overlay_ops += f.overlay().ops.size();
    snap.truncated_bytes += f.stats().truncated_bytes;
    snap.compactions += f.stats().compactions;
  }
  snap.batches = s.batches;
  snap.lagging_fragments = s.lagging_fragments;
  snap.catchup_records = s.catchup_records;
  snap.catchup_snapshots = s.catchup_snapshots;
  snap.rebalances = s.rebalances;
  snap.messages = s.messages;
  snap.bytes_shipped = s.bytes_shipped;
  snap.bytes_owned_shipped = s.bytes_owned_shipped;
  snap.bytes_halo_shipped = s.bytes_halo_shipped;
  snap.ops_routed = s.ops_routed;
  snap.ops_maintenance = s.ops_maintenance;
  return snap;
}

bool Coordinator::CheckNotDegraded(std::string* error) const {
  if (!degraded_) return true;
  SetError(error,
           "coordinator degraded by a partial batch failure; reopen to "
           "recover");
  return false;
}

bool Coordinator::WriteMeta(std::string* error) {
  std::string werr;
  if (!AtomicWriteFile(dir_ + "/" + kMetaFile,
                       MetaContent(index_->partition(), owners_seq_,
                                   count_.Persisted(stats_.last_seq)),
                       &werr)) {
    SetError(error, "meta: " + werr);
    return false;
  }
  return true;
}

}  // namespace gfd
