#include "serve/coordinator.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <system_error>

#include "graph/loader.h"
#include "parallel/fragment.h"
#include "serve/durable_io.h"

namespace gfd {

namespace fs = std::filesystem;

namespace {

constexpr char kMetaFile[] = "coordinator.meta";
constexpr char kMetaMagic[] = "gfd-coordinator v1";

void SetError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

std::string FragmentDir(const std::string& dir, size_t f) {
  return (fs::path(dir) / ("frag-" + std::to_string(f))).string();
}

std::string MetaContent(size_t fragments, std::span<const uint32_t> node_owner,
                        const std::optional<MetaCount>& count) {
  std::string out(kMetaMagic);
  out += "\nfragments " + std::to_string(fragments) + "\n";
  if (count) out += MetaCountLine(*count);
  // Ownership is part of the coordinator's identity: recomputing it from
  // an evolved graph would silently re-partition the affected-node
  // attribution, so it is persisted verbatim.
  out += "owners";
  for (uint32_t o : node_owner) out += " " + std::to_string(o);
  out += "\n";
  return out;
}

bool ParseMeta(const std::string& path, size_t* fragments,
               std::vector<uint32_t>* node_owner,
               std::optional<MetaCount>* count, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, path + ": cannot open (not a coordinator?)");
    return false;
  }
  std::string magic;
  if (!std::getline(in, magic) || magic != kMetaMagic) {
    SetError(error, path + ": bad magic line '" + magic + "'");
    return false;
  }
  bool have_fragments = false, have_owners = false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "fragments") {
      have_fragments = static_cast<bool>(ls >> *fragments);
    } else if (key == "violations") {
      *count = ParseMetaCountFields(ls);
    } else if (key == "owners") {
      uint32_t o;
      while (ls >> o) node_owner->push_back(o);
      have_owners = true;
    }
  }
  if (!have_fragments || *fragments == 0 || !have_owners) {
    SetError(error, path + ": missing fragments/owners entry");
    return false;
  }
  for (uint32_t o : *node_owner) {
    if (o >= *fragments) {
      SetError(error, path + ": owner " + std::to_string(o) +
                          " out of range for " + std::to_string(*fragments) +
                          " fragment(s)");
      return false;
    }
  }
  return true;
}

// Approximate wire size of one shipped violation record (the same
// accounting DetectSharded uses).
size_t DiffBytes(const IncrementalDiff& d) {
  size_t bytes = 0;
  for (const auto* side : {&d.added, &d.removed}) {
    for (const Violation& v : *side) {
      bytes += sizeof(Violation) + v.match.size() * sizeof(NodeId);
    }
  }
  return bytes;
}

// K-way merge of sorted, pairwise-disjoint per-fragment violation lists
// (ownership attribution guarantees disjointness, so this is dedup-free).
std::vector<Violation> MergeSorted(std::vector<std::vector<Violation>> parts) {
  std::vector<Violation> out;
  for (auto& part : parts) {
    if (part.empty()) continue;
    if (out.empty()) {
      out = std::move(part);
      continue;
    }
    std::vector<Violation> merged;
    merged.reserve(out.size() + part.size());
    std::merge(std::make_move_iterator(out.begin()),
               std::make_move_iterator(out.end()),
               std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()),
               std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

}  // namespace

bool Coordinator::Init(const std::string& dir, const PropertyGraph& g,
                       size_t fragments, std::string* error) {
  if (fragments == 0) {
    SetError(error, "fragment count must be >= 1");
    return false;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    SetError(error, dir + ": cannot create: " + ec.message());
    return false;
  }
  std::string meta_path = (fs::path(dir) / kMetaFile).string();
  if (fs::exists(meta_path)) {
    SetError(error, dir + ": already holds a coordinator");
    return false;
  }
  Fragmentation frag = VertexCutPartition(g, fragments);
  for (size_t f = 0; f < fragments; ++f) {
    if (!GraphStore::Init(FragmentDir(dir, f), g, error)) return false;
  }
  return AtomicWriteFile(meta_path,
                         MetaContent(fragments, frag.node_owner, std::nullopt),
                         error);
}

std::optional<Coordinator> Coordinator::Open(const std::string& dir,
                                             const CoordinatorOptions& opts,
                                             std::string* error) {
  Coordinator c;
  c.dir_ = dir;
  c.opts_ = opts;

  size_t fragments = 0;
  std::optional<MetaCount> count;
  if (!ParseMeta((fs::path(dir) / kMetaFile).string(), &fragments,
                 &c.node_owner_, &count, error)) {
    return std::nullopt;
  }
  c.fragments_.reserve(fragments);
  for (size_t f = 0; f < fragments; ++f) {
    auto store = GraphStore::Open(FragmentDir(dir, f), opts.store, error);
    if (!store) {
      if (error) *error = "fragment " + std::to_string(f) + ": " + *error;
      return std::nullopt;
    }
    c.fragments_.push_back(std::move(*store));
  }
  if (c.node_owner_.size() != c.fragments_[0].base().NumNodes()) {
    SetError(error, dir + ": ownership covers " +
                        std::to_string(c.node_owner_.size()) +
                        " node(s) but the graph has " +
                        std::to_string(c.fragments_[0].base().NumNodes()));
    return std::nullopt;
  }

  c.cluster_ = std::make_unique<Cluster>(fragments);
  uint64_t global = 0;
  for (const GraphStore& s : c.fragments_) {
    global = std::max(global, s.last_seq());
  }
  if (!c.CatchUp(global, error)) return std::nullopt;
  c.stats_.last_seq = global;
  c.stats_.anchor_seq = c.fragments_[0].stats().anchor_seq;

  c.count_.Restore(count, global);
  return c;
}

bool Coordinator::CatchUp(uint64_t global_seq, std::string* error) {
  // Re-ship missing batches to every lagging fragment. A fragment that
  // lost its log tail (torn append) recovers to a strict prefix of the
  // global stream; any fully-caught-up peer whose log still reaches back
  // far enough supplies the missing records, and the lagging fragment's
  // own Append assigns them the same sequence numbers -- catch-up is
  // replay, not a new code path.
  for (size_t f = 0; f < fragments_.size(); ++f) {
    if (fragments_[f].last_seq() == global_seq) continue;
    ++stats_.lagging_fragments;

    // Peer with full coverage: up to date, anchored at or before the
    // lagging fragment's last durable batch.
    size_t peer = fragments_.size();
    for (size_t p = 0; p < fragments_.size(); ++p) {
      if (fragments_[p].last_seq() != global_seq) continue;
      if (fragments_[p].stats().anchor_seq > fragments_[f].last_seq()) {
        continue;  // compacted past the gap; its log lost those records
      }
      if (peer == fragments_.size() ||
          fragments_[p].stats().anchor_seq <
              fragments_[peer].stats().anchor_seq) {
        peer = p;
      }
    }

    if (peer < fragments_.size()) {
      for (const DeltaLogRecord& rec : fragments_[peer].log().records()) {
        if (rec.seq <= fragments_[f].last_seq()) continue;
        auto seq = fragments_[f].Append(rec.payload, error);
        if (!seq) {
          if (error) {
            *error = "fragment " + std::to_string(f) + " catch-up at seq " +
                     std::to_string(rec.seq) + ": " + *error;
          }
          return false;
        }
        if (*seq != rec.seq) {
          SetError(error, "fragment " + std::to_string(f) +
                              " catch-up assigned seq " +
                              std::to_string(*seq) + " for record " +
                              std::to_string(rec.seq));
          return false;
        }
        cluster_->CountShipment(1, rec.payload.size());
        ++stats_.catchup_records;
      }
      continue;
    }

    // Every up-to-date peer compacted past the gap: ship a snapshot of
    // the current global state instead and re-anchor the fragment there.
    size_t donor = 0;
    for (size_t p = 0; p < fragments_.size(); ++p) {
      if (fragments_[p].last_seq() == global_seq) donor = p;
    }
    PropertyGraph current = fragments_[donor].MaterializeCurrent();
    std::string frag_dir = FragmentDir(dir_, f);
    std::error_code ec;
    fs::remove_all(frag_dir, ec);
    if (ec) {
      SetError(error, frag_dir + ": cannot reset: " + ec.message());
      return false;
    }
    if (!GraphStore::InitAt(frag_dir, current, global_seq, error)) {
      return false;
    }
    auto store = GraphStore::Open(frag_dir, opts_.store, error);
    if (!store) return false;
    std::string snap = "snapshot-" + std::to_string(global_seq) + ".tsv";
    uint64_t snap_bytes = 0;
    const auto size = fs::file_size(fs::path(frag_dir) / snap, ec);
    if (!ec) snap_bytes = size;
    cluster_->CountShipment(1, snap_bytes);
    ++stats_.catchup_snapshots;
    fragments_[f] = std::move(*store);
  }

  // Re-unify anchors: a fragment that missed a lockstep compaction round
  // (or was just rebuilt from a snapshot) would otherwise diff against a
  // different base, and base-relative diffs only compose over one base.
  bool anchors_differ = false;
  for (const GraphStore& s : fragments_) {
    if (s.stats().anchor_seq != fragments_[0].stats().anchor_seq) {
      anchors_differ = true;
      break;
    }
  }
  if (anchors_differ && !CompactAll(error)) return false;

  for (const GraphStore& s : fragments_) {
    if (s.last_seq() != global_seq ||
        s.stats().anchor_seq != fragments_[0].stats().anchor_seq) {
      SetError(error, dir_ + ": fragments disagree after catch-up");
      return false;
    }
  }
  return true;
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats out = stats_;
  out.anchor_seq = fragments_[0].stats().anchor_seq;
  out.messages = cluster_->messages();
  out.bytes_shipped = cluster_->bytes();
  return out;
}

bool Coordinator::CheckNotDegraded(std::string* error) const {
  if (!degraded_) return true;
  SetError(error, dir_ +
                      ": a previous batch failed on some fragment; "
                      "reopen the coordinator to re-sync before appending");
  return false;
}

std::optional<uint64_t> Coordinator::Append(std::string_view delta_tsv,
                                            std::string* error) {
  if (!CheckNotDegraded(error)) return std::nullopt;
  // One dry-run validation up front: an invalid batch must be rejected
  // before any fragment's log sees it (replicas are identical, so
  // fragment 0's verdict is everyone's verdict).
  if (!fragments_[0].Validate(delta_tsv, error)) return std::nullopt;

  uint64_t seq = stats_.last_seq + 1;
  cluster_->CountBroadcast(1, delta_tsv.size());
  std::vector<std::string> errors(fragments_.size());
  std::vector<char> ok(fragments_.size(), 0);
  cluster_->RunStep([&](size_t f) {
    auto got = fragments_[f].Append(delta_tsv, &errors[f]);
    if (!got) return;
    if (*got != seq) {
      errors[f] = "assigned seq " + std::to_string(*got) + ", expected " +
                  std::to_string(seq);
      return;
    }
    ok[f] = 1;
  });
  for (size_t f = 0; f < fragments_.size(); ++f) {
    if (!ok[f]) {
      // An I/O failure after validation passed leaves this fragment
      // behind its peers; reopening the coordinator repairs it through
      // the catch-up path. Until then the coordinator refuses further
      // batches (see degraded_).
      degraded_ = true;
      SetError(error, "fragment " + std::to_string(f) + ": " + errors[f] +
                          " (reopen to re-sync)");
      return std::nullopt;
    }
  }
  stats_.last_seq = seq;
  ++stats_.batches;
  count_.Invalidate();
  return seq;
}

std::optional<IncrementalDiff> Coordinator::AppendAndDiff(
    const ViolationEngine& engine, std::string_view delta_tsv,
    uint64_t* seq_out, std::string* error) {
  if (!CheckNotDegraded(error)) return std::nullopt;
  if (!fragments_[0].Validate(delta_tsv, error)) return std::nullopt;

  uint64_t seq = stats_.last_seq + 1;
  cluster_->CountBroadcast(1, delta_tsv.size());

  // One barrier step per fragment: base-relative diff before the batch,
  // sequenced durable append, base-relative diff after. Both sides see
  // only the matches attributed to this fragment's owned affected nodes.
  std::vector<IncrementalDiff> before(fragments_.size());
  std::vector<IncrementalDiff> after(fragments_.size());
  std::vector<std::string> errors(fragments_.size());
  std::vector<char> ok(fragments_.size(), 0);
  cluster_->RunStep([&](size_t f) {
    before[f] = engine.DetectIncrementalOwned(
        fragments_[f].view(), node_owner_, static_cast<uint32_t>(f),
        opts_.incremental);
    auto got = fragments_[f].Append(delta_tsv, &errors[f]);
    if (!got) return;
    if (*got != seq) {
      errors[f] = "assigned seq " + std::to_string(*got) + ", expected " +
                  std::to_string(seq);
      return;
    }
    after[f] = engine.DetectIncrementalOwned(
        fragments_[f].view(), node_owner_, static_cast<uint32_t>(f),
        opts_.incremental);
    ok[f] = 1;
  });
  for (size_t f = 0; f < fragments_.size(); ++f) {
    if (!ok[f]) {
      degraded_ = true;
      SetError(error, "fragment " + std::to_string(f) + ": " + errors[f] +
                          " (reopen to re-sync)");
      return std::nullopt;
    }
  }

  // Each fragment ships its four record lists to the master.
  IncrementalDiff merged_before, merged_after;
  {
    std::vector<std::vector<Violation>> parts;
    auto take = [&](std::vector<IncrementalDiff>& diffs, bool added) {
      parts.clear();
      parts.reserve(diffs.size());
      for (auto& d : diffs) {
        parts.push_back(std::move(added ? d.added : d.removed));
      }
      return MergeSorted(std::move(parts));
    };
    for (size_t f = 0; f < fragments_.size(); ++f) {
      size_t bytes = DiffBytes(before[f]) + DiffBytes(after[f]);
      if (bytes > 0) cluster_->CountShipment(1, bytes);
      auto add_stats = [](IncrementalStats& acc, const IncrementalStats& s) {
        acc.affected_nodes += s.affected_nodes;
        acc.anchor_plans += s.anchor_plans;
        acc.anchors_scanned += s.anchors_scanned;
        acc.matches_seen += s.matches_seen;
        acc.literal_evals += s.literal_evals;
        acc.violations_before += s.violations_before;
        acc.violations_after += s.violations_after;
      };
      add_stats(merged_before.stats, before[f].stats);
      add_stats(merged_after.stats, after[f].stats);
    }
    merged_before.added = take(before, /*added=*/true);
    merged_before.removed = take(before, /*added=*/false);
    merged_after.added = take(after, /*added=*/true);
    merged_after.removed = take(after, /*added=*/false);
  }

  stats_.last_seq = seq;
  ++stats_.batches;
  count_.Invalidate();
  if (seq_out) *seq_out = seq;
  return ComposeStepDiff(merged_before, merged_after);
}

bool Coordinator::ShouldCompact() const {
  for (const GraphStore& s : fragments_) {
    if (s.ShouldCompact()) return true;
  }
  return false;
}

bool Coordinator::CompactAll(std::string* error) {
  if (!CheckNotDegraded(error)) return false;
  std::vector<std::string> errors(fragments_.size());
  std::vector<char> ok(fragments_.size(), 0);
  cluster_->RunStep(
      [&](size_t f) { ok[f] = fragments_[f].Compact(&errors[f]) ? 1 : 0; });
  for (size_t f = 0; f < fragments_.size(); ++f) {
    if (!ok[f]) {
      // A half-done round splits the anchors, and base-relative diffs
      // do not compose across different bases; refuse further batches
      // until a reopen re-unifies them.
      degraded_ = true;
      if (errors[f].empty()) errors[f] = "compaction failed";
      SetError(error, "fragment " + std::to_string(f) + ": " + errors[f]);
      return false;
    }
  }
  ++stats_.compactions;
  return true;
}

bool Coordinator::MaybeCompactAll(std::string* error) {
  return ShouldCompact() ? CompactAll(error) : true;
}

std::optional<uint64_t> Coordinator::violation_count(
    uint64_t fingerprint) const {
  return count_.Get(stats_.last_seq, fingerprint);
}

bool Coordinator::SetViolationCount(uint64_t count, uint64_t fingerprint,
                                    std::string* error) {
  count_.Set(count, stats_.last_seq, fingerprint);
  return WriteMeta(error);
}

bool Coordinator::WriteMeta(std::string* error) {
  return AtomicWriteFile((fs::path(dir_) / kMetaFile).string(),
                         MetaContent(fragments_.size(), node_owner_,
                                     count_.Persisted(stats_.last_seq)),
                         error);
}

PropertyGraph Coordinator::MaterializeCurrent() const {
  return fragments_[0].MaterializeCurrent();
}

}  // namespace gfd
