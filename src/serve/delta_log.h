// Durable append-only record log -- the persistence primitive under the
// update-stream serving path.
//
// A serving process (PR 3's GraphView + DetectIncremental) holds its
// current graph as snapshot + overlay in memory; on restart the overlay
// is gone. The DeltaLog makes the stream durable: every applied batch is
// appended as one framed record before it is acknowledged, and startup
// replays the records to reconstruct the exact pre-crash state.
//
// On-disk framing (the payload itself is opaque bytes; the graph layer
// puts delta TSV in it):
//
//   R <seq> <payload-bytes> <crc32-hex>\n
//   <payload>\n
//
// - `seq` increases by exactly 1 per record; the first record of a fresh
//   file starts at the caller-provided anchor. Sequence numbers are the
//   exactly-once handle: replay skips what a snapshot already contains
//   and the compaction layer re-anchors the log by dropping records
//   through the snapshot's sequence number (DropThrough).
// - `crc32` (IEEE 802.3) covers the payload only; the header is
//   self-checking through its fixed shape.
// - A record is valid only if the header parses, the payload is fully
//   present with its '\n' terminator, the CRC matches, and the sequence
//   number continues the chain. The first invalid byte ends the log: Open
//   cuts the tail there (physically truncating the file), so a crash in
//   the middle of an append can never surface a partial batch.
//
// Appends are flushed and fsync'd before returning -- an acknowledged
// record survives the process.
//
// Threading: DeltaLog itself is NOT thread-safe; every instance has one
// externally serialized writer. GraphStore's log serializes through the
// FeedService store mutex (the process's single-writer rule) and the
// feed.log instance inside ViolationChangefeed is only touched under
// the feed mutex. Do not add a mutex here -- callers own the ordering.
#ifndef GFD_SERVE_DELTA_LOG_H_
#define GFD_SERVE_DELTA_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gfd {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `data`. Exposed for the
/// tests that hand-corrupt log bytes.
uint32_t Crc32(std::string_view data);

struct DeltaLogRecord {
  uint64_t seq = 0;
  std::string payload;
};

struct DeltaLogOpenStats {
  size_t records = 0;            ///< whole records recovered on open
  uint64_t truncated_bytes = 0;  ///< corrupt/partial tail bytes cut
};

class DeltaLog {
 public:
  /// Opens the log at `path`, creating an empty one when absent. When the
  /// file is empty the first appended record is numbered `first_seq`;
  /// otherwise numbering continues after the last recovered record. A
  /// torn or corrupt tail is truncated away before the log is usable
  /// (open_stats().truncated_bytes reports how much was cut). Returns
  /// nullopt only on I/O errors, never on tail corruption.
  static std::optional<DeltaLog> Open(const std::string& path,
                                      uint64_t first_seq,
                                      std::string* error = nullptr);

  /// The recovered (plus since-appended) records, in sequence order.
  std::span<const DeltaLogRecord> records() const { return records_; }
  uint64_t next_seq() const { return next_seq_; }
  const DeltaLogOpenStats& open_stats() const { return open_stats_; }
  const std::string& path() const { return path_; }

  /// Appends one record durably (write + flush + fsync before the call
  /// returns) and returns its assigned sequence number.
  std::optional<uint64_t> Append(std::string_view payload,
                                 std::string* error = nullptr);

  /// Drops every record with seq <= `through` by atomically rewriting the
  /// file (write-temp + rename); numbering continues unchanged. This is
  /// the re-anchoring step after snapshot compaction: records the new
  /// snapshot already contains leave the log.
  bool DropThrough(uint64_t through, std::string* error = nullptr);

 private:
  DeltaLog() = default;

  bool OpenAppendHandle(std::string* error);
  // Truncates any torn bytes back to durable_bytes_, then reopens the
  // append handle. The write path after a failed append.
  bool RecoverAppendHandle(std::string* error);

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };

  std::string path_;
  uint64_t next_seq_ = 1;
  /// Bytes of whole, acknowledged records -- the truncation point that
  /// rolls back a torn append (a failed write must never leave garbage
  /// for a later acknowledged record to land behind).
  size_t durable_bytes_ = 0;
  std::vector<DeltaLogRecord> records_;
  DeltaLogOpenStats open_stats_;
  std::unique_ptr<std::FILE, FileCloser> file_;
};

}  // namespace gfd

#endif  // GFD_SERVE_DELTA_LOG_H_
