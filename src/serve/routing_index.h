// The coordinator's master-side routing state: the global graph topology
// (anchor snapshot + accumulated delta), the vertex-cut partition, and
// the per-fragment halo residency derived from it.
//
// Under true vertex-cut sharding no fragment holds the whole graph, so
// the master keeps the one global view needed to (a) validate an
// incoming batch before any fragment's log sees it, (b) route each op to
// exactly the fragments whose resident set covers it (RouteDelta), and
// (c) derive the halo-maintenance traffic -- border entry/exit edge
// repair plus attribute refresh for nodes entering a fragment's halo --
// that keeps every fragment equal to the resident subgraph of the
// global state. This mirrors the paper's coordinator, which knows the
// fragmentation and routes workload; holding the topology at the master
// is the simulation's stand-in for the partition manager of a real
// deployment.
//
// Invariant maintained across PlanBatch/Commit cycles, for every
// fragment f with residency R_f (ComputeResidency over the live graph):
//
//   fragment f's current graph = { e in G : both endpoints in R_f },
//   with exact multiset multiplicity, and fragment attributes of every
//   resident node equal to the global attributes.
//
// PlanBatch emits, per fragment, one sub-batch TSV payload:
//
//   1. the full extension-vocabulary preamble (L/K/V) accumulated since
//      the last compaction -- every fragment interns the same names in
//      the same order, so extension ids (and hence post-compaction base
//      vocabularies) stay identical across fragments,
//   2. the batch ops routed to f (RouteDelta, stream order),
//   3. halo maintenance: E-/E+ for edges leaving/entering R_f, and a
//      full attribute refresh for nodes entering R_f (attributes are
//      never deleted, so overwriting repairs any staleness accrued
//      while the node was out of the halo).
//
// PlanRebalance produces the same shape for an ownership move with an
// unchanged graph: maintenance-only payloads (empty for untouched
// fragments, preserving lockstep sequencing).
#ifndef GFD_SERVE_ROUTING_INDEX_H_
#define GFD_SERVE_ROUTING_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_view.h"
#include "graph/property_graph.h"
#include "parallel/fragment.h"
#include "util/ids.h"

namespace gfd {

class RoutingIndex {
 public:
  /// Builds the index over `base` (the global anchor snapshot) under
  /// partition `p` (halo_radius >= 1 required: radius 1 is what makes
  /// every edge resident at both endpoint owners, i.e. storage-complete).
  static std::optional<RoutingIndex> Build(PropertyGraph base, Partition p,
                                           std::string* error = nullptr);

  const Partition& partition() const { return partition_; }
  const PropertyGraph& base() const { return *base_; }
  const GraphView& view() const { return *view_; }
  const GraphDelta& accum() const { return accum_; }
  const FragmentResidency& residency() const { return resident_; }

  /// One planned shipment: per-fragment payloads plus accounting. The
  /// candidate state it was planned against rides along so Commit can
  /// adopt it without re-deriving anything.
  struct ShipPlan {
    std::vector<std::string> payloads;  ///< sub-batch TSV per fragment
    std::vector<uint64_t> owned_bytes;  ///< vocab preamble + routed ops
    std::vector<uint64_t> halo_bytes;   ///< maintenance + refresh
    std::vector<size_t> routed_ops;     ///< routed op count per fragment
    std::vector<size_t> halo_ops;       ///< maintenance op count per fragment
    /// Global affected node sets (sorted, unique): every op endpoint
    /// since the anchor, excluding / including this plan's batch. These
    /// -- not any fragment-local affected set, which also contains
    /// maintenance endpoints -- are what incremental detection
    /// attributes matches against.
    std::vector<NodeId> affected_before;
    std::vector<NodeId> affected_after;

    // Candidate state, adopted by Commit.
    GraphDelta candidate;
    std::optional<GraphView> new_view;
    FragmentResidency new_resident;
    std::vector<uint32_t> new_owner;  ///< non-empty only for rebalance
  };

  /// Parses `delta_tsv` against the anchor snapshot's vocabulary,
  /// validates it on the current global view (so an invalid batch is
  /// rejected before any fragment's log sees it), and derives the
  /// shipping plan. Does not change the index; Commit() the plan after
  /// shipping succeeds.
  std::optional<ShipPlan> PlanBatch(std::string_view delta_tsv,
                                    std::string* error = nullptr);

  /// Plans moving ownership of `node` to fragment `to`: the graph is
  /// unchanged, so payloads are pure halo maintenance for the fragments
  /// whose residency shifts (and empty for the rest).
  std::optional<ShipPlan> PlanRebalance(NodeId node, uint32_t to,
                                        std::string* error = nullptr);

  /// Adopts a plan's candidate state (global view, residency, owners).
  void Commit(ShipPlan&& plan);

  /// Lockstep-compaction hook: folds the accumulated delta into the
  /// base snapshot (ids preserved, mirroring GraphStore::Compact) and
  /// clears the extension-vocabulary preamble.
  void Compact();

  /// Resident (stored) edge count of fragment f under the current
  /// residency -- the footprint metric: summed over fragments this is
  /// ~replication x |G|, not N x |G|.
  uint64_t ResidentEdges(size_t f) const;

 private:
  RoutingIndex() = default;

  // Rebuilds view_ from base_ + accum_ and resident_ from the live
  // adjacency. accum_ must be valid over base_.
  bool Refresh(std::string* error);

  // Payload assembly shared by PlanBatch and PlanRebalance: routed ops
  // (possibly none) plus maintenance derived from the residency change.
  void BuildPayloads(const GraphDelta& batch_tail, ShipPlan* plan) const;

  Partition partition_;
  std::unique_ptr<PropertyGraph> base_;
  GraphDelta accum_;
  std::optional<GraphView> view_;
  FragmentResidency resident_;
};

}  // namespace gfd

#endif  // GFD_SERVE_ROUTING_INDEX_H_
