// Durable graph state: snapshot + delta log + compaction policy.
//
// A GraphStore directory is the on-disk form of the serving pair
// "immutable base graph + small overlay" (graph/graph_view.h):
//
//   store.meta            commit record: anchor seq + snapshot file name
//   snapshot-<seq>.tsv    base graph (SaveGraphTsv), includes every batch
//                         with sequence number <= seq
//   deltas.log            framed GraphDelta batches after the anchor
//                         (serve/delta_log.h)
//
// Invariant: current graph = snapshot  +  log records with seq > anchor,
// applied in sequence order. Open() reconstructs exactly that state --
// records at or below the anchor are skipped (exactly-once across
// restarts and compactions), a torn tail from a mid-append crash is cut
// by the log layer, and a partial batch is never applied.
//
// Append() parses one TSV delta batch against the store's vocabulary,
// validates it by applying it to the current view, writes it durably to
// the log, and only then folds it into the in-memory overlay; a batch
// that fails validation never reaches the log.
//
// Concurrency: a store directory has exactly ONE writing process -- the
// serving process owns its log, and nothing coordinates concurrent
// writers (two appenders would assign duplicate sequence numbers and the
// next Open would cut one as a broken chain). Front the directory with an
// flock/O_EXCL lease if a deployment needs multi-process ingest.
//
// Compaction rolls the base forward once the overlay exceeds the
// configured threshold: GraphView::Materialize() produces the next
// snapshot (node/vocabulary ids preserved, which is what keeps logged
// batches and compiled rule sets valid across the roll), the snapshot is
// written to a temp file and renamed, and the meta rewrite is the single
// atomic commit point -- a crash anywhere in between leaves the previous
// snapshot+log state fully intact. After the commit the log is re-anchored
// (DropThrough) and the old snapshot deleted.
#ifndef GFD_SERVE_GRAPH_STORE_H_
#define GFD_SERVE_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "detect/engine.h"
#include "detect/planner.h"
#include "graph/graph_view.h"
#include "graph/property_graph.h"
#include "serve/delta_log.h"
#include "serve/durable_io.h"
#include "serve/serving_store.h"

namespace gfd {

/// When MaybeCompact rolls the snapshot forward. Both thresholds are
/// "compact once exceeded"; zero disables that trigger.
struct GraphStoreOptions {
  /// Overlay ops threshold (absolute).
  size_t compact_min_ops = 0;
  /// Overlay ops as a fraction of base edges. Defaults to the SAME
  /// crossover the DetectPlanner's seeded rule uses
  /// (detect/planner.h): past it a full re-detect beats the incremental
  /// path, so an overlay that large has outlived its usefulness -- and
  /// sharing the constant keeps compaction policy and detection policy
  /// from drifting apart.
  double compact_min_fraction = kIncrementalCrossoverFraction;
};

struct GraphStoreStats {
  uint64_t anchor_seq = 0;       ///< snapshot includes batches through this
  uint64_t last_seq = 0;         ///< last applied batch (0 = none yet)
  size_t replayed_batches = 0;   ///< applied from the log on Open
  size_t skipped_batches = 0;    ///< at/below anchor, dropped on Open
  uint64_t truncated_bytes = 0;  ///< corrupt log tail cut on Open
  size_t compactions = 0;        ///< snapshot rolls this session
};

class GraphStore final : public ServingStore {
 public:
  /// Creates a store directory holding `g` as snapshot-0 and an empty
  /// log. Fails if `dir` already holds a store.
  static bool Init(const std::string& dir, const PropertyGraph& g,
                   std::string* error = nullptr);

  /// Init with a non-zero starting anchor: `g` becomes snapshot-<anchor>
  /// and the first appended batch is numbered anchor+1. The snapshot-
  /// transfer path of distributed catch-up (serve/coordinator.h) uses
  /// this to rebuild a fragment whose peers compacted past its log.
  static bool InitAt(const std::string& dir, const PropertyGraph& g,
                     uint64_t anchor, std::string* error = nullptr);

  /// Opens `dir`, replaying the log onto the snapshot (sequenced,
  /// exactly-once; corrupt tail cut). Also self-heals: pre-anchor log
  /// records are dropped and orphaned temp/old-snapshot files deleted.
  static std::optional<GraphStore> Open(const std::string& dir,
                                        const GraphStoreOptions& opts = {},
                                        std::string* error = nullptr);

  const PropertyGraph& base() const { return *base_; }
  const GraphView& view() const { return *view_; }
  const GraphDelta& overlay() const { return overlay_; }
  const GraphStoreStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  uint64_t last_seq() const override { return stats_.last_seq; }
  /// The store's log (read access; the coordinator's catch-up path ships
  /// a lagging peer the records it is missing straight out of here).
  const DeltaLog& log() const { return *log_; }

  /// Parses `delta_tsv` (the E+/E-/A format of graph/loader.h) against
  /// the store's vocabulary, validates it on the current view, appends it
  /// durably, and applies it. Returns the assigned sequence number;
  /// nothing is logged or applied on error. One append costs
  /// O(batch + touched degrees), independent of the overlay size: the
  /// view validates and absorbs the appended tail in place
  /// (GraphView::AbsorbAppended) instead of re-applying the merged
  /// overlay per batch.
  std::optional<uint64_t> Append(std::string_view delta_tsv,
                                 std::string* error = nullptr) override;

  /// Programmatic batch append: `batch` is expressed over the store's
  /// base graph (node ids and base vocabulary ids; extension vocabulary
  /// relative to the base, as GraphDelta::Intern* builds it). Serialized
  /// through the same TSV payload the text path uses, so replay and live
  /// application share one code path.
  std::optional<uint64_t> Append(const GraphDelta& batch,
                                 std::string* error = nullptr);

  /// Parses and validates `delta_tsv` against the current view without
  /// logging or applying anything -- the dry-run a coordinator performs
  /// once before broadcasting a batch to every replica, so an invalid
  /// batch is rejected before any fragment's log sees it.
  bool Validate(std::string_view delta_tsv, std::string* error = nullptr) const;

  /// Running violation count as of last_seq(), maintained by the serving
  /// loop (count += |added| - |removed| per batch, seeded by one full
  /// Detect) and persisted in store.meta next to the anchor. The count is
  /// only meaningful under the rule set it was computed with, so it is
  /// keyed by `fingerprint` (util/hash.h Fnv1a64 of the serialized rules,
  /// as gfdtool computes it): a lookup under a different fingerprint, or
  /// after an append that has not been followed by SetViolationCount, or
  /// across a restart whose replayed sequence disagrees with the persisted
  /// one, returns nullopt -- the caller re-seeds with a full scan.
  std::optional<uint64_t> violation_count(
      uint64_t fingerprint) const override;

  /// Persists `count` (under `fingerprint`) as the violation count at the
  /// current last_seq, via an atomic meta rewrite. Survives restarts and
  /// compactions.
  bool SetViolationCount(uint64_t count, uint64_t fingerprint,
                         std::string* error = nullptr) override;

  /// True when the overlay exceeds a configured compaction threshold.
  bool ShouldCompact() const override;

  /// Compact() regardless of thresholds; no-op on an empty overlay.
  bool Compact(std::string* error = nullptr) override;

  /// Policy entry point: Compact() iff ShouldCompact().
  bool MaybeCompact(std::string* error = nullptr) override;

  /// The current graph as a standalone PropertyGraph (ids preserved).
  PropertyGraph MaterializeCurrent() const override;

  /// ServingStore conformance: forwards to the free AppendAndDiff below
  /// (one serving step -- append plus the step diff of exactly this
  /// batch).
  std::optional<IncrementalDiff> AppendAndDiff(
      const ViolationEngine& engine, std::string_view delta_tsv,
      const IncrementalOptions& opts = {}, uint64_t* seq_out = nullptr,
      std::string* error = nullptr) override;

  /// Unified telemetry snapshot (mirrors stats() plus the live overlay
  /// size; distributed-only fields stay zero).
  ServingMetricsSnapshot MetricsSnapshot() const override;

 private:
  GraphStore() = default;

  bool ApplyOverlay(GraphDelta next_overlay, std::string* error);

  // Rewrites store.meta (atomically) reflecting the current anchor,
  // snapshot, and violation-count state.
  bool WriteMeta(std::string* error);

  GraphStoreOptions opts_;
  std::string dir_;
  std::string snapshot_file_;  // relative to dir_
  std::unique_ptr<PropertyGraph> base_;
  GraphDelta overlay_;
  std::optional<GraphView> view_;
  std::optional<DeltaLog> log_;
  GraphStoreStats stats_;
  // Running violation count (serve/durable_io.h holds the shared
  // validity rule: valid only at the exact sequence it was taken).
  RunningCount count_;
};

/// One serving step: appends `delta_tsv` to the store and returns the
/// violation diff induced by exactly this batch, relative to the
/// pre-append state. Computed without materializing: both the before- and
/// after-overlay are diffed incrementally against the shared base and the
/// two base-relative diffs composed ([added] = (A2\A1) u (R1\R2),
/// [removed] symmetric). Cost grows with the overlay, which is precisely
/// what the compaction policy bounds; call store.MaybeCompact() after.
std::optional<IncrementalDiff> AppendAndDiff(
    GraphStore& store, const ViolationEngine& engine,
    std::string_view delta_tsv, const IncrementalOptions& opts = {},
    uint64_t* seq_out = nullptr, std::string* error = nullptr);

}  // namespace gfd

#endif  // GFD_SERVE_GRAPH_STORE_H_
