// The one serving interface both backends implement.
//
// A ServingStore is "a durable graph you can append update batches to,
// ask for per-batch violation diffs, compact, and materialize":
//
//   GraphStore   (serve/graph_store.h)  -- single node: snapshot + log
//   Coordinator  (serve/coordinator.h)  -- distributed: vertex-cut
//                partitioned fragments behind the same verbs
//
// `gfdtool detect --log` / `gfdtool serve append` and the oracle tests
// drive either backend through this interface, so the serving loop --
// validate, append, diff, classify, maintain the running violation
// count, compact -- exists exactly once; whether one store or N routed
// fragments answer is a deployment choice, not a code path.
#ifndef GFD_SERVE_SERVING_STORE_H_
#define GFD_SERVE_SERVING_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "detect/engine.h"
#include "graph/property_graph.h"

namespace gfd {

/// One unified telemetry snapshot both backends report through --
/// replaces querying GraphStoreStats and CoordinatorStats separately.
/// Distributed-only fields are zero for a single store; `fragments` is 1
/// there. `overlay_ops` is the total pending (un-compacted) delta ops.
struct ServingMetricsSnapshot {
  uint64_t anchor_seq = 0;
  uint64_t last_seq = 0;
  size_t fragments = 1;
  size_t replayed_batches = 0;
  size_t skipped_batches = 0;
  size_t overlay_ops = 0;
  uint64_t truncated_bytes = 0;
  size_t compactions = 0;
  // Distributed (Coordinator) only.
  size_t batches = 0;
  size_t lagging_fragments = 0;
  size_t catchup_records = 0;
  size_t catchup_snapshots = 0;
  size_t rebalances = 0;
  uint64_t messages = 0;
  uint64_t bytes_shipped = 0;
  uint64_t bytes_owned_shipped = 0;
  uint64_t bytes_halo_shipped = 0;
  uint64_t ops_routed = 0;
  uint64_t ops_maintenance = 0;
};

class ServingStore {
 public:
  virtual ~ServingStore() = default;

  /// Appends one TSV delta batch (graph/loader.h delta format) to the
  /// store: parse, validate, persist durably, apply. Returns the
  /// assigned sequence number; nothing is persisted or applied on error.
  virtual std::optional<uint64_t> Append(std::string_view delta_tsv,
                                         std::string* error = nullptr) = 0;

  /// One serving step: Append plus the violation diff induced by exactly
  /// this batch relative to the pre-append state. On success `*seq_out`
  /// (if non-null) is the assigned sequence number.
  virtual std::optional<IncrementalDiff> AppendAndDiff(
      const ViolationEngine& engine, std::string_view delta_tsv,
      const IncrementalOptions& opts = {}, uint64_t* seq_out = nullptr,
      std::string* error = nullptr) = 0;

  /// Last applied batch sequence number (0 = none yet).
  virtual uint64_t last_seq() const = 0;

  /// Unified telemetry snapshot (see ServingMetricsSnapshot): both
  /// backends report recovery, compaction, and shipping state through
  /// this one path.
  virtual ServingMetricsSnapshot MetricsSnapshot() const = 0;

  /// Running violation count as of last_seq() under the rule-set
  /// fingerprint, or nullopt when stale (see GraphStore::violation_count
  /// for the validity rule).
  virtual std::optional<uint64_t> violation_count(
      uint64_t fingerprint) const = 0;

  /// Persists `count` (under `fingerprint`) as the violation count at
  /// the current last_seq.
  virtual bool SetViolationCount(uint64_t count, uint64_t fingerprint,
                                 std::string* error = nullptr) = 0;

  /// True when the overlay state exceeds the compaction threshold.
  virtual bool ShouldCompact() const = 0;

  /// Compacts regardless of thresholds; no-op when nothing to fold.
  virtual bool Compact(std::string* error = nullptr) = 0;

  /// Policy entry point: Compact() iff ShouldCompact().
  virtual bool MaybeCompact(std::string* error = nullptr) = 0;

  /// The current graph as a standalone PropertyGraph. Node and
  /// vocabulary ids are preserved across both backends, so results
  /// computed over the materialization compare equal across them.
  virtual PropertyGraph MaterializeCurrent() const = 0;
};

}  // namespace gfd

#endif  // GFD_SERVE_SERVING_STORE_H_
