// Durable, subscribable violation changefeed -- the fan-out half of the
// serving loop (the HTTP surface over it lives in src/net/, which this
// layer knows nothing about).
//
// Every accepted batch produces one feed record whose sequence number IS
// the store's batch sequence number and whose payload is the batch's
// violation diff, serialized at publish time against the then-current
// view (serialize-at-publish means replay never needs historical graph
// state). Records live in a second DeltaLog, `<dir>/feed.log`, so a
// subscriber cursor is a durable, replayable position: reconnecting at
// cursor C first replays every record with seq > C straight out of the
// log, then switches to the live stream -- registration and the replay
// snapshot happen under one mutex, so no event is missed or duplicated
// in between.
//
// Backpressure: each subscription owns a bounded queue. A publish that
// finds the queue full marks the subscription evicted and drops it --
// a slow consumer is disconnected rather than allowed to stall ingest
// or buffer unboundedly; it reconnects with its last seen cursor and
// replays from durable state.
//
// Payload format (one TSV line per violation, util/tsv.h escaping):
//
//   <A|R> \t <rule-index> \t <pivot-id> \t <pivot-name> \t
//   <pivot-label> \t <description>
//
// "A" = violation added by the batch, "R" = removed. An empty payload is
// a batch that changed no violation.
#ifndef GFD_SERVE_CHANGEFEED_H_
#define GFD_SERVE_CHANGEFEED_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "detect/engine.h"
#include "graph/graph_view.h"
#include "serve/delta_log.h"

namespace gfd {

/// One feed record: the violation diff of batch `seq`.
struct FeedEvent {
  uint64_t seq = 0;
  std::string payload;

  friend bool operator==(const FeedEvent&, const FeedEvent&) = default;
};

/// Serializes one batch's diff into the feed payload format above.
/// Evidence values resolve through `view` (the post-batch overlay), so
/// descriptions name post-update attribute values.
std::string SerializeDiffPayload(const GraphView& view,
                                 std::span<const Gfd> rules,
                                 const IncrementalDiff& diff);

/// One parsed payload line (the unit the net layer filters on).
struct FeedLine {
  bool added = false;  ///< true for "A", false for "R"
  uint32_t rule = 0;
  uint64_t pivot = 0;
  std::string pivot_name;
  std::string pivot_label;
  std::string description;
};

/// Parses one line of a feed payload. Returns nullopt on malformed
/// input (a foreign feed.log; callers skip the line).
std::optional<FeedLine> ParseFeedLine(std::string_view line);

/// A subscriber's end of the feed: a bounded queue of live events.
/// Handed out as shared_ptr; thread-safe against the publisher.
class FeedSubscription {
 public:
  enum class Wait {
    kEvent,    ///< *out holds the next event
    kTimeout,  ///< nothing arrived within the deadline (heartbeat tick)
    kEvicted,  ///< queue overflowed; reconnect with the last seen cursor
    kClosed,   ///< feed shut down
  };

  /// Blocks up to `timeout_ms` for the next live event.
  Wait Next(FeedEvent* out, int64_t timeout_ms);

 private:
  friend class ViolationChangefeed;

  std::mutex mu_;  // guards: queue_, cursor_, evicted_, closed_
  std::condition_variable cv_;
  std::deque<FeedEvent> queue_;
  size_t cap_ = 0;  ///< set once before the subscription is shared
  uint64_t cursor_ = 0;  ///< live events at or below this are skipped
  bool evicted_ = false;
  bool closed_ = false;
};

/// The process-wide feed: one durable log + the live subscriber set.
/// Single publisher (the ingest path, already serialized through the
/// store mutex); any number of subscriber threads.
class ViolationChangefeed {
 public:
  /// Opens (or creates) `<dir>/feed.log`. The feed must continue exactly
  /// at the store's sequence: when an existing log would not assign
  /// store_last_seq+1 next -- a batch was accepted while the feed was
  /// not recording, so its diff is unrecoverable -- the log is reset and
  /// restarted at store_last_seq+1. The gap is client-visible (event
  /// seqs jump), never silently misnumbered.
  static std::unique_ptr<ViolationChangefeed> Open(
      const std::string& dir, uint64_t store_last_seq,
      std::string* error = nullptr);

  /// Highest published (or recovered) sequence; 0 when empty.
  uint64_t last_seq() const;

  /// True when the log was reset on Open (see above).
  bool reset_on_open() const { return reset_on_open_; }

  /// Durably appends the diff payload of batch `seq` (which must be the
  /// next sequence), then fans it out to every live subscription.
  /// Subscriptions whose queue is full are evicted here.
  bool Publish(uint64_t seq, std::string payload,
               std::string* error = nullptr);

  /// Registers a subscriber at `cursor`: `replay` receives every durable
  /// record with seq > cursor (in order), and the returned subscription
  /// sees every event published afterwards -- the two are contiguous
  /// because both happen under the feed mutex. `queue_cap` bounds the
  /// live queue (the backpressure knob); replay is not subject to it,
  /// the caller drains it at its own pace.
  std::shared_ptr<FeedSubscription> Subscribe(uint64_t cursor,
                                              size_t queue_cap,
                                              std::vector<FeedEvent>* replay);

  /// Drops one subscription (idempotent; evicted ones drop themselves).
  void Unsubscribe(const std::shared_ptr<FeedSubscription>& sub);

  /// Closes every subscription and wakes all waiters; further publishes
  /// are rejected. Called by the server on graceful shutdown.
  void Shutdown();

  size_t subscriber_count() const;
  uint64_t evictions() const;
  const std::string& path() const { return log_->path(); }

 private:
  ViolationChangefeed() = default;

  // guards: log_, subs_, shutdown_, evictions_ (reset_on_open_ is set
  // once in Open before the feed is shared)
  mutable std::mutex mu_;
  std::optional<DeltaLog> log_;
  std::vector<std::shared_ptr<FeedSubscription>> subs_;
  bool reset_on_open_ = false;
  bool shutdown_ = false;
  uint64_t evictions_ = 0;
};

}  // namespace gfd

#endif  // GFD_SERVE_CHANGEFEED_H_
