// Distributed incremental detection over TRUE vertex-cut partitioned
// storage: routed batch shipping to per-fragment GraphStores that each
// hold only their owned edge partition plus a border halo.
//
// The Coordinator fuses the serving primitives of earlier PRs -- the
// overlay-based incremental detector (detect/engine.h) and the durable
// sequenced GraphStore (serve/graph_store.h) -- into the paper's
// shared-nothing shape (Section 6): a master owning N fragments. Unlike
// the earlier replicated design, no fragment holds the whole graph.
// Fragment f stores exactly the resident subgraph of the global state:
// nodes within `halo_radius` undirected hops of a node it owns, and the
// edges between them (parallel/fragment.h ComputeResidency). The halo
// radius is chosen >= the max per-variable pattern eccentricity
// (ViolationEngine::MaxPatternRadius), which guarantees every match
// anchored at an owned node is enumerable from the fragment's local
// view -- the paper's border-node shipping made concrete. Summed over
// fragments the stored edges are ~replication x |G|, not N x |G|.
//
// Delivery. RouteDelta is the actual shipping mechanism: each accepted
// batch is split per fragment into (1) a shared extension-vocabulary
// preamble -- so all fragments intern identical ids and post-compaction
// vocabularies stay equal, (2) the ops whose referenced nodes are all
// resident in the fragment, in stream order, and (3) halo maintenance:
// edge repair for nodes entering/leaving the fragment's resident set
// plus an attribute refresh for entering nodes (serve/routing_index.h).
// Every shipped byte is accounted through the Cluster, split into
// owned-op bytes and border-halo bytes (CoordinatorStats).
//
// On-disk layout:
//
//   dir/coordinator.meta          magic v2 + fragment count + halo radius
//                                 + owners_seq + vertex-cut ownership +
//                                 advisory border lists (+ optional
//                                 running violation count)
//   dir/routing.log               the master's routing journal: per
//                                 sequence, the global batch plus every
//                                 fragment's sub-batch payload, appended
//                                 durably BEFORE any fragment ships
//   dir/global-snapshot-<s>.tsv   global graph at the compaction anchor
//                                 (the recovery source when a fragment
//                                 directory is lost outright)
//   dir/frag-<f>/                 one GraphStore per fragment, holding
//                                 its partition + halo only
//
// Work partitioning follows data partitioning: fragment f evaluates the
// delta-touching matches attributed to an affected node it owns
// (DetectIncrementalOwned), seeded from the GLOBAL affected set
// restricted to its owned nodes -- never from its local view's affected
// set, which also contains halo-maintenance endpoints. Attribution is a
// stateless function of the match and the global affected set, so the
// per-fragment outputs partition the global diff and the master merges
// them with a plain sorted merge.
//
// Sequence-ordering invariant. Every fragment applies every global
// sequence number (possibly as an empty or maintenance-only sub-batch),
// and compaction runs in LOCKSTEP (CompactAll), never per-fragment: the
// per-batch diff is composed from two base-relative incremental runs
// (ComposeStepDiff), and diffs taken against different snapshots do not
// compose. Open() restores the invariant after any crash: a fragment
// whose log lost its tail is caught up by re-shipping its sub-batches
// from the routing journal (its own log assigns them the same sequence
// numbers, so catch-up IS replay); a fragment lost outright is rebuilt
// partition-scoped -- ExtractSubgraph of the recovered global state
// under the fragment's residency, installed via GraphStore::InitAt --
// followed by a lockstep compaction that re-unifies the anchors.
//
// Rebalancing. Rebalance(node, to_fragment) migrates ownership of a hot
// vertex between batches: it consumes one global sequence number whose
// sub-batches are pure halo maintenance (the graph is unchanged, so the
// step's violation diff is empty by construction), persists the new
// ownership in the meta (owners_seq records the sequence), and forces a
// lockstep compaction so every fragment's BASE graph -- the before-side
// of diff composition -- reflects the new residency before the next
// batch. A crash mid-rebalance is detected on Open (owners_seq past the
// common anchor) and repaired by rebuilding the fragments from the
// recovered global state under the new ownership.
#ifndef GFD_SERVE_COORDINATOR_H_
#define GFD_SERVE_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "detect/engine.h"
#include "graph/property_graph.h"
#include "parallel/cluster.h"
#include "parallel/fragment.h"
#include "serve/delta_log.h"
#include "serve/durable_io.h"
#include "serve/graph_store.h"
#include "serve/routing_index.h"
#include "serve/serving_store.h"

namespace gfd {

struct CoordinatorOptions {
  /// Per-fragment store options. The compaction thresholds feed
  /// ShouldCompact/MaybeCompactAll; fragments never compact unilaterally.
  GraphStoreOptions store;
};

struct CoordinatorStats {
  uint64_t anchor_seq = 0;      ///< common fragment anchor
  uint64_t last_seq = 0;        ///< global sequence (max shipped batch)
  size_t batches = 0;           ///< batches accepted this session
  size_t catchup_records = 0;   ///< journal sub-batches re-shipped on Open
  size_t catchup_snapshots = 0; ///< partition-scoped rebuilds on Open
  size_t lagging_fragments = 0; ///< fragments caught up on Open
  size_t compactions = 0;       ///< lockstep compaction rounds
  size_t rebalances = 0;        ///< ownership migrations this session
  uint64_t messages = 0;        ///< cluster messages (ships + diffs)
  uint64_t bytes_shipped = 0;   ///< cluster bytes (all traffic)
  /// bytes_shipped split by purpose: routed batch ops (including the
  /// shared vocabulary preamble) vs. border-halo maintenance traffic.
  uint64_t bytes_owned_shipped = 0;
  uint64_t bytes_halo_shipped = 0;
  /// Shipped op counts, split the same way: batch ops routed by
  /// residency vs. halo-maintenance ops.
  uint64_t ops_routed = 0;
  uint64_t ops_maintenance = 0;
};

class Coordinator final : public ServingStore {
 public:
  /// Creates `dir` as a coordinator over `fragments` partitions of `g`:
  /// vertex-cut ownership is computed once (VertexCutPartition) and
  /// persisted, and every fragment store is initialized with its
  /// resident subgraph -- owned partition plus `halo_radius`-hop border
  /// halo -- as snapshot-0. `halo_radius` must be >= 1 and >= the max
  /// pattern radius of every rule set later served (AppendAndDiff
  /// rejects an engine whose MaxPatternRadius exceeds it). Fails if
  /// `dir` already holds a coordinator.
  static bool Init(const std::string& dir, const PropertyGraph& g,
                   size_t fragments, uint32_t halo_radius = 3,
                   std::string* error = nullptr);

  /// Opens `dir`: the master recovers the global state from the newest
  /// bridgeable global snapshot plus the routing journal, every fragment
  /// store recovers independently from its local log, and lagging
  /// fragments are caught up from the journal (or rebuilt partition-
  /// scoped from the global state when their directory is gone). A
  /// rebalance interrupted mid-flight is detected via owners_seq and
  /// repaired the same way.
  static std::optional<Coordinator> Open(const std::string& dir,
                                         const CoordinatorOptions& opts = {},
                                         std::string* error = nullptr);

  size_t num_fragments() const { return fragments_.size(); }
  const Partition& partition() const { return index_->partition(); }
  std::span<const uint32_t> node_owner() const {
    return index_->partition().node_owner;
  }
  /// Current per-fragment halo residency (recomputed from the live
  /// graph; authoritative over the persisted border lists).
  const FragmentResidency& residency() const { return index_->residency(); }
  /// Stored (resident) edge count of fragment f -- the footprint metric.
  uint64_t resident_edges(size_t f) const { return index_->ResidentEdges(f); }
  const GraphStore& fragment(size_t f) const { return fragments_[f]; }
  uint64_t last_seq() const override { return stats_.last_seq; }
  const std::string& dir() const { return dir_; }

  /// Session stats with the cluster's communication counters folded in.
  CoordinatorStats stats() const;

  /// Accepts one update batch (the E+/E-/A TSV of graph/loader.h):
  /// validates it once against the master's global view, assigns it the
  /// next global sequence number, journals the routed sub-batches
  /// durably, then ships each fragment its routed ops plus halo
  /// maintenance. Every fragment applies every sequence number, so logs
  /// never diverge. Nothing reaches any fragment when validation fails.
  std::optional<uint64_t> Append(std::string_view delta_tsv,
                                 std::string* error = nullptr) override;

  /// The distributed serving step: Append plus the violation diff
  /// induced by exactly this batch. Each fragment runs
  /// DetectIncrementalOwned against its partition+halo view, seeded
  /// from the globally affected nodes it owns; the master merges the
  /// per-fragment base-relative diffs per side (ownership attribution
  /// makes them disjoint) and composes the step diff (ComposeStepDiff),
  /// which equals single-node GraphStore AppendAndDiff record for
  /// record. Errors out (before any shipping) when the engine's
  /// MaxPatternRadius exceeds the partition's halo radius.
  std::optional<IncrementalDiff> AppendAndDiff(
      const ViolationEngine& engine, std::string_view delta_tsv,
      const IncrementalOptions& opts = {}, uint64_t* seq_out = nullptr,
      std::string* error = nullptr) override;

  /// Migrates ownership of `node` to `to_fragment` between batches:
  /// ships halo maintenance under one global sequence number, persists
  /// the new ownership, and compacts in lockstep so fragment bases
  /// reflect the new residency. Returns the consumed sequence number.
  std::optional<uint64_t> Rebalance(NodeId node, uint32_t to_fragment,
                                    std::string* error = nullptr);

  /// True when any fragment's compaction policy fires.
  bool ShouldCompact() const override;

  /// Lockstep compaction: writes the global snapshot, rolls EVERY
  /// fragment's snapshot to the current global sequence (keeping the
  /// anchors equal -- the precondition of diff composition), and
  /// re-anchors the routing journal.
  bool CompactAll(std::string* error = nullptr);

  /// Policy entry point: CompactAll() iff ShouldCompact().
  bool MaybeCompactAll(std::string* error = nullptr);

  /// ServingStore conformance: lockstep compaction is the only kind a
  /// coordinator has.
  bool Compact(std::string* error = nullptr) override {
    return CompactAll(error);
  }
  bool MaybeCompact(std::string* error = nullptr) override {
    return MaybeCompactAll(error);
  }

  /// Running violation count across the whole graph, maintained by the
  /// serving loop and persisted in coordinator.meta -- same contract as
  /// GraphStore::violation_count.
  std::optional<uint64_t> violation_count(
      uint64_t fingerprint) const override;
  bool SetViolationCount(uint64_t count, uint64_t fingerprint,
                         std::string* error = nullptr) override;

  /// The current global graph, materialized from the master's view (by
  /// the storage invariant, equal to the union of fragment states).
  PropertyGraph MaterializeCurrent() const override;

  /// Unified telemetry snapshot: coordinator stats plus per-fragment
  /// recovery/overlay state folded into the shared shape (overlay_ops
  /// and replay counters are summed over fragments).
  ServingMetricsSnapshot MetricsSnapshot() const override;

 private:
  Coordinator() = default;

  // Re-ships missing sub-batches from the routing journal to every
  // fragment behind `global_seq`, repairs a torn rebalance (owners_seq
  // past the common anchor), then re-unifies compaction anchors with
  // the master's base at `master_anchor`. The tail of Open.
  bool CatchUp(uint64_t global_seq, uint64_t master_anchor,
               std::string* error);

  // Builds a fresh store for fragment f from `current` (the
  // materialized global state) under the current residency -- the
  // partition-scoped snapshot transfer, anchored at `global_seq`.
  std::optional<GraphStore> RebuildFragment(size_t f, uint64_t global_seq,
                                            const PropertyGraph& current,
                                            std::string* error);

  // Journals + ships one planned shipment under the next sequence
  // number; commits the plan into the index on success. Shared by
  // Append / AppendAndDiff / Rebalance (the latter passes
  // `diff_ctx` = nullptr just like Append).
  struct DiffContext;
  std::optional<uint64_t> ShipSequenced(RoutingIndex::ShipPlan&& plan,
                                        std::string_view global_tsv,
                                        DiffContext* diff_ctx,
                                        std::string* error);

  // False (with error) once a partial batch failure degraded the
  // fragments; mutating entry points call this first.
  bool CheckNotDegraded(std::string* error) const;

  // Rewrites coordinator.meta (atomic) with the current ownership,
  // owners_seq, borders and, when valid at the current sequence, the
  // running violation count.
  bool WriteMeta(std::string* error);

  std::string dir_;
  CoordinatorOptions opts_;
  // Master-side global topology, partition, residency, and routing
  // (serve/routing_index.h).
  std::optional<RoutingIndex> index_;
  std::vector<GraphStore> fragments_;
  // Master + one worker per fragment; also the communication ledger.
  std::unique_ptr<Cluster> cluster_;
  // The routing journal (dir/routing.log): per global sequence, the
  // original batch plus every fragment's sub-batch payload.
  std::optional<DeltaLog> journal_;
  CoordinatorStats stats_;
  // Sequence at which the ownership table last changed; fragments whose
  // anchor predates it may hold pre-rebalance bases (repaired on Open).
  uint64_t owners_seq_ = 0;
  // Set when a shipment failed on some fragment after the journal (and
  // possibly other fragments) already recorded the batch: the in-memory
  // states no longer agree, so every mutating entry point refuses until
  // the coordinator is reopened (journal replay repairs the lag).
  bool degraded_ = false;
  // Running violation count (serve/durable_io.h holds the shared
  // validity rule: valid only at the exact sequence it was taken).
  RunningCount count_;
};

}  // namespace gfd

#endif  // GFD_SERVE_COORDINATOR_H_
