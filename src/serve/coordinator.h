// Distributed incremental detection: sequenced batch shipping over
// per-fragment GraphStores.
//
// The Coordinator fuses the two serving primitives PRs 3-4 built -- the
// overlay-based incremental detector (detect/engine.h) and the durable
// sequenced GraphStore (serve/graph_store.h) -- into the paper's
// shared-nothing shape (Section 6): a master owning N fragment replicas,
// each a GraphStore with a private delta log. The log's sequence numbers
// are the shipping/ordering primitive: the master assigns every accepted
// batch the next global sequence number, ships it, and every fragment
// applies batches strictly in sequence order onto its own store, so a
// fragment's durable state is always a prefix of the global stream and a
// restart replays each fragment independently from its local log.
//
// On-disk layout:
//
//   dir/coordinator.meta   magic + fragment count + vertex-cut node
//                          ownership (+ optional running violation count)
//   dir/frag-<f>/          one GraphStore per fragment (snapshot + meta +
//                          private delta log)
//
// Work partitioning vs. data partitioning. Ownership is vertex-cut, as in
// DetectSharded: VertexCutPartition assigns every node one owner
// fragment, and fragment f evaluates exactly the delta-touching matches
// attributed to an affected node it owns
// (ViolationEngine::DetectIncrementalOwned). Because attribution is a
// stateless function of the match and the affected set, the per-fragment
// outputs partition the global diff -- the master merges them with a
// plain sorted merge, dedup'd exactly, no cross-fragment reconciliation.
// Each replica, however, holds the FULL graph: a match anchored at an
// owned vertex may wander through any fragment's territory, and this
// simulation substitutes whole-graph replication for the paper's
// border-node shipping, exactly as DetectSharded lets every worker read
// the shared graph (DESIGN.md "Substitutions"). What would be network
// traffic is accounted through the Cluster: the batch broadcast that
// keeps replicas in lockstep, the catch-up records or snapshots shipped
// to lagging fragments, and the per-fragment diffs shipped back to the
// master.
//
// Sequence-ordering invariant. Between coordinator operations every
// fragment store agrees on (anchor_seq, last_seq): batches apply in
// sequence order everywhere, and compaction runs in LOCKSTEP
// (CompactAll), never per-fragment. The lockstep is load-bearing for
// correctness, not just tidiness: the per-batch diff is composed from two
// base-relative incremental runs (ComposeStepDiff), and diffs taken
// against different snapshots do not compose. Open() restores the
// invariant after any crash: a fragment whose log lost its tail (torn
// append) is caught up by re-shipping the missing records from a peer's
// log -- its own log assigns them the same sequence numbers, so
// catch-up IS replay -- or, when every up-to-date peer has compacted past
// the gap, by a snapshot transfer (GraphStore::InitAt at the global
// sequence) followed by a lockstep compaction that re-unifies the
// anchors.
#ifndef GFD_SERVE_COORDINATOR_H_
#define GFD_SERVE_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "detect/engine.h"
#include "graph/property_graph.h"
#include "parallel/cluster.h"
#include "serve/durable_io.h"
#include "serve/graph_store.h"

namespace gfd {

struct CoordinatorOptions {
  /// Per-fragment store options. The compaction thresholds feed
  /// ShouldCompact/MaybeCompactAll; fragments never compact unilaterally.
  GraphStoreOptions store;
  /// Per-fragment detection knobs. `workers` is the *intra*-fragment
  /// worker count (fragments already run concurrently, one Cluster worker
  /// each); the default 1 keeps total threads = fragment count.
  IncrementalOptions incremental;
};

struct CoordinatorStats {
  uint64_t anchor_seq = 0;      ///< common fragment anchor
  uint64_t last_seq = 0;        ///< global sequence (max shipped batch)
  size_t batches = 0;           ///< batches accepted this session
  size_t catchup_records = 0;   ///< log records re-shipped on Open
  size_t catchup_snapshots = 0; ///< snapshot transfers on Open
  size_t lagging_fragments = 0; ///< fragments caught up on Open
  size_t compactions = 0;       ///< lockstep compaction rounds
  uint64_t messages = 0;        ///< cluster messages (broadcasts + ships)
  uint64_t bytes_shipped = 0;   ///< cluster bytes
};

class Coordinator {
 public:
  /// Creates `dir` as a coordinator over `fragments` replicas of `g`:
  /// vertex-cut node ownership is computed once here and persisted (it
  /// must not drift as the graph evolves), and every fragment store is
  /// initialized with `g` as its snapshot-0. Fails if `dir` already
  /// holds a coordinator.
  static bool Init(const std::string& dir, const PropertyGraph& g,
                   size_t fragments, std::string* error = nullptr);

  /// Opens `dir`: every fragment store recovers independently from its
  /// local log (torn tails cut, sequenced exactly-once replay), then the
  /// master catches lagging fragments up to the global sequence anchor
  /// (max recovered last_seq) and re-unifies compaction anchors, so the
  /// reopened coordinator serves the same global state an uninterrupted
  /// run would.
  static std::optional<Coordinator> Open(const std::string& dir,
                                         const CoordinatorOptions& opts = {},
                                         std::string* error = nullptr);

  size_t num_fragments() const { return fragments_.size(); }
  std::span<const uint32_t> node_owner() const { return node_owner_; }
  const GraphStore& fragment(size_t f) const { return fragments_[f]; }
  uint64_t last_seq() const { return stats_.last_seq; }
  const std::string& dir() const { return dir_; }

  /// Session stats with the cluster's communication counters folded in.
  CoordinatorStats stats() const;

  /// Accepts one update batch (the E+/E-/A TSV of graph/loader.h):
  /// validates it once against the current state, assigns it the next
  /// global sequence number, broadcasts it, and applies it on every
  /// fragment strictly in sequence order. Nothing reaches any log when
  /// validation fails. Returns the assigned sequence number.
  std::optional<uint64_t> Append(std::string_view delta_tsv,
                                 std::string* error = nullptr);

  /// The distributed serving step: Append plus the violation diff induced
  /// by exactly this batch. Each affected fragment runs
  /// DetectIncrementalOwned before and after applying the batch; the
  /// master merges the per-fragment base-relative diffs per side (a plain
  /// sorted merge -- ownership attribution makes them disjoint) and
  /// composes the two sides into the step diff (ComposeStepDiff), which
  /// equals single-node GraphStore AppendAndDiff record for record.
  /// Per-fragment diffs ship to the master through the Cluster.
  std::optional<IncrementalDiff> AppendAndDiff(const ViolationEngine& engine,
                                               std::string_view delta_tsv,
                                               uint64_t* seq_out = nullptr,
                                               std::string* error = nullptr);

  /// True when any fragment's compaction policy fires (replicas are in
  /// lockstep, so normally all fire together).
  bool ShouldCompact() const;

  /// Lockstep compaction: rolls EVERY fragment's snapshot to the current
  /// global sequence, keeping the anchors equal (the precondition of diff
  /// composition).
  bool CompactAll(std::string* error = nullptr);

  /// Policy entry point: CompactAll() iff ShouldCompact().
  bool MaybeCompactAll(std::string* error = nullptr);

  /// Running violation count across the whole graph, maintained by the
  /// serving loop and persisted in coordinator.meta -- same contract as
  /// GraphStore::violation_count (keyed by rule-set fingerprint,
  /// invalidated by any append until the loop folds the batch's diff
  /// back in).
  std::optional<uint64_t> violation_count(uint64_t fingerprint) const;
  bool SetViolationCount(uint64_t count, uint64_t fingerprint,
                         std::string* error = nullptr);

  /// The current global graph, materialized from fragment 0 (replicas
  /// are identical between operations).
  PropertyGraph MaterializeCurrent() const;

 private:
  Coordinator() = default;

  // Re-ships missing batches (or a snapshot) to every fragment behind
  // `global_seq`, then re-unifies compaction anchors. The tail of Open.
  bool CatchUp(uint64_t global_seq, std::string* error);

  // False (with error) once a partial batch failure degraded the
  // replicas; mutating entry points call this first.
  bool CheckNotDegraded(std::string* error) const;

  // Rewrites coordinator.meta (atomic) with ownership and, when valid at
  // the current sequence, the running violation count.
  bool WriteMeta(std::string* error);

  std::string dir_;
  CoordinatorOptions opts_;
  std::vector<uint32_t> node_owner_;
  std::vector<GraphStore> fragments_;
  // Master + one worker per fragment; also the communication ledger.
  std::unique_ptr<Cluster> cluster_;
  CoordinatorStats stats_;
  // Set when a broadcast append failed on some fragment after others
  // already logged the batch: the replicas no longer agree, and because
  // every fragment assigns its own next sequence number, continuing
  // would let them re-converge on equal sequence numbers with DIFFERENT
  // batches -- divergence no reopen could detect. Every mutating entry
  // point refuses until the coordinator is reopened (catch-up repairs
  // the lag while the surviving fragments still agree).
  bool degraded_ = false;
  // Running violation count (serve/durable_io.h holds the shared
  // validity rule: valid only at the exact sequence it was taken).
  RunningCount count_;
};

}  // namespace gfd

#endif  // GFD_SERVE_COORDINATOR_H_
