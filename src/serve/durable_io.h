// Shared durability primitives of the serve layer: fsync wrappers, the
// write-temp + fsync + rename + directory-fsync sequence both the delta
// log and the graph store commit through, and the running-violation-
// count meta record store.meta and coordinator.meta share. One
// implementation, so a crash-ordering or format fix lands everywhere at
// once.
#ifndef GFD_SERVE_DURABLE_IO_H_
#define GFD_SERVE_DURABLE_IO_H_

#include <cstdint>
#include <cstdio>
#include <istream>
#include <optional>
#include <string>
#include <string_view>

namespace gfd {

/// Flushes `f`'s stdio buffer and forces it to stable storage.
bool SyncFile(std::FILE* f);

/// Forces an already-closed file's bytes to stable storage.
bool SyncClosedFile(const std::string& path);

/// fsyncs the directory holding `path`, making a rename of it durable.
void SyncParentDir(const std::string& path);

/// Writes `content` to `path` atomically and durably: temp file in the
/// same directory, fsync, rename over, fsync the directory. On error
/// (reported via `*error`) the destination is untouched.
bool AtomicWriteFile(const std::string& path, std::string_view content,
                     std::string* error);

/// The running violation count as persisted in a meta file: the value,
/// the sequence it was taken at, and the fingerprint of the rule set it
/// counts under. store.meta and coordinator.meta both carry it as a
/// `violations <count> <seq> <fingerprint>` line.
struct MetaCount {
  uint64_t count = 0;
  uint64_t seq = 0;
  uint64_t fingerprint = 0;
};

/// The meta line for `c`, trailing newline included.
std::string MetaCountLine(const MetaCount& c);

/// Parses the three fields following the `violations` key; nullopt when
/// malformed (a malformed line is treated as "no count", never an error
/// -- the caller re-seeds with a full scan).
std::optional<MetaCount> ParseMetaCountFields(std::istream& in);

/// In-memory running-count state with the shared validity rule: a count
/// is served only at the exact sequence it was taken and under the same
/// rule-set fingerprint -- a replay landing elsewhere, an append nobody
/// folded back in, or a different rule set all read as "absent".
class RunningCount {
 public:
  /// The count under `fingerprint`, valid at exactly `seq`.
  std::optional<uint64_t> Get(uint64_t seq, uint64_t fingerprint) const {
    if (count_ && seq_ == seq && fingerprint_ == fingerprint) return count_;
    return std::nullopt;
  }

  void Set(uint64_t count, uint64_t seq, uint64_t fingerprint) {
    count_ = count;
    seq_ = seq;
    fingerprint_ = fingerprint;
  }

  /// An append outdates the count until the serving loop folds the
  /// batch's diff back in.
  void Invalidate() { count_.reset(); }

  /// Adopts a persisted record iff it was taken at exactly `seq` (the
  /// sequence recovery replayed to).
  void Restore(const std::optional<MetaCount>& c, uint64_t seq) {
    if (c && c->seq == seq) Set(c->count, c->seq, c->fingerprint);
  }

  /// The record to persist while valid at `seq`, else nullopt.
  std::optional<MetaCount> Persisted(uint64_t seq) const {
    if (count_ && seq_ == seq) return MetaCount{*count_, seq_, fingerprint_};
    return std::nullopt;
  }

 private:
  std::optional<uint64_t> count_;
  uint64_t seq_ = 0;
  uint64_t fingerprint_ = 0;
};

}  // namespace gfd

#endif  // GFD_SERVE_DURABLE_IO_H_
