// Shared durability primitives of the serve layer: fsync wrappers and
// the write-temp + fsync + rename + directory-fsync sequence both the
// delta log and the graph store commit through. One implementation, so a
// crash-ordering fix lands everywhere at once.
#ifndef GFD_SERVE_DURABLE_IO_H_
#define GFD_SERVE_DURABLE_IO_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace gfd {

/// Flushes `f`'s stdio buffer and forces it to stable storage.
bool SyncFile(std::FILE* f);

/// Forces an already-closed file's bytes to stable storage.
bool SyncClosedFile(const std::string& path);

/// fsyncs the directory holding `path`, making a rename of it durable.
void SyncParentDir(const std::string& path);

/// Writes `content` to `path` atomically and durably: temp file in the
/// same directory, fsync, rename over, fsync the directory. On error
/// (reported via `*error`) the destination is untouched.
bool AtomicWriteFile(const std::string& path, std::string_view content,
                     std::string* error);

}  // namespace gfd

#endif  // GFD_SERVE_DURABLE_IO_H_
