// Cached registry handles for the serving layer's metrics (delta log,
// graph store, coordinator), plus the snapshot-gauge exporter gfdtool
// uses. All families live in obs::MetricsRegistry::Default(); the
// accessors register once and hand back stable references so the hot
// path is relaxed-atomic only.
#ifndef GFD_SERVE_METRICS_H_
#define GFD_SERVE_METRICS_H_

#include <cstddef>
#include <string_view>

#include "obs/metrics.h"

namespace gfd {

struct ServingMetricsSnapshot;

// ---- delta log ----
obs::Counter& LogAppendsTotal();         ///< gfd_log_appends_total
obs::Counter& LogAppendBytesTotal();     ///< gfd_log_append_bytes_total
obs::Counter& LogAppendFailuresTotal();  ///< gfd_log_append_failures_total
/// Torn/corrupt log tails cut on open (gfd_log_torn_tail_truncations_total)
/// and the bytes they dropped (gfd_log_truncated_bytes_total).
obs::Counter& LogTornTailTruncationsTotal();
obs::Counter& LogTruncatedBytesTotal();
obs::Histogram& LogAppendLatency();  ///< gfd_log_append_seconds
obs::Counter& FsyncsTotal();         ///< gfd_fsyncs_total (durable_io)

// ---- graph store ----
obs::Histogram& StoreAppendLatency();   ///< gfd_store_append_seconds
obs::Histogram& StoreReplayLatency();   ///< gfd_store_replay_seconds
obs::Histogram& StoreCompactLatency();  ///< gfd_store_compact_seconds
obs::Counter& StoreAppendsTotal();      ///< gfd_store_appends_total
obs::Counter& StoreCompactionsTotal();  ///< gfd_store_compactions_total
/// Batches replayed from logs on open (gfd_store_replayed_batches_total).
obs::Counter& StoreReplayedBatchesTotal();
obs::Gauge& StoreOverlayOps();  ///< gfd_store_overlay_ops (sum over stores)
obs::Gauge& ViolationsRunning();  ///< gfd_violations_running

// ---- coordinator ----
/// Bytes shipped to fragment `f`, split by purpose
/// (gfd_fragment_bytes_shipped{fragment="<f>",kind="owned"|"halo"}).
obs::Counter& FragmentBytesShipped(size_t f, std::string_view kind);
/// Ops shipped to fragment `f`, split into routed batch ops vs. halo
/// maintenance (gfd_fragment_ops_total{fragment="<f>",kind="routed"|
/// "maintenance"}).
obs::Counter& FragmentOpsShipped(size_t f, std::string_view kind);
/// Crash-recovery events: journal sub-batches re-shipped, fragments
/// caught up, partition-scoped snapshot transfers.
obs::Counter& CatchupRecordsTotal();    ///< gfd_catchup_records_total
obs::Counter& CatchupFragmentsTotal();  ///< gfd_catchup_fragments_total
obs::Counter& SnapshotTransfersTotal();  ///< gfd_snapshot_transfers_total
obs::Counter& RebalancesTotal();         ///< gfd_rebalances_total
obs::Histogram& RebalanceLatency();      ///< gfd_rebalance_seconds

/// Pre-registers every unlabeled serve family so a render shows the
/// full catalog even on an idle store.
void TouchServeMetrics();

/// Mirrors one ServingMetricsSnapshot into gauges
/// (gfd_serving_last_seq, gfd_serving_anchor_seq, gfd_serving_fragments,
/// gfd_store_overlay_ops).
void ExportSnapshotMetrics(const ServingMetricsSnapshot& snap);

}  // namespace gfd

#endif  // GFD_SERVE_METRICS_H_
