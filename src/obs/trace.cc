#include "obs/trace.h"

#include <atomic>
#include <cinttypes>

namespace gfd::obs {
namespace {

std::atomic<TraceLog*> g_active_trace{nullptr};

// Stage names are lowercase identifiers in practice, but escape anyway
// so arbitrary strings cannot break the JSON framing.
std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t MonotonicNowNs() {
  static const StopwatchNs kProcessStart;
  return kProcessStart.ElapsedNs();
}

TraceLog::TraceLog(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

TraceLog::~TraceLog() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<TraceLog> TraceLog::Open(const std::string& path,
                                         std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open trace log " + path;
    return nullptr;
  }
  return std::unique_ptr<TraceLog>(new TraceLog(file, path));
}

void TraceLog::Emit(std::string_view stage,
                    std::initializer_list<TraceField> fields, int64_t dur_ns) {
  Emit(stage, std::vector<TraceField>(fields), dur_ns);
}

void TraceLog::Emit(std::string_view stage,
                    const std::vector<TraceField>& fields, int64_t dur_ns) {
  std::string line = "{\"ts_ns\":" + std::to_string(MonotonicNowNs()) +
                     ",\"stage\":\"" + EscapeJson(stage) + '"';
  if (dur_ns >= 0) line += ",\"dur_ns\":" + std::to_string(dur_ns);
  for (const TraceField& field : fields) {
    line += ",\"" + EscapeJson(field.key) + "\":" + std::to_string(field.value);
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

void SetActiveTrace(TraceLog* log) {
  g_active_trace.store(log, std::memory_order_release);
}

TraceLog* ActiveTrace() {
  return g_active_trace.load(std::memory_order_acquire);
}

void EmitTrace(std::string_view stage,
               std::initializer_list<TraceField> fields) {
  TraceLog* log = ActiveTrace();
  if (log != nullptr) log->Emit(stage, fields);
}

ScopedTimer::ScopedTimer(Histogram* histogram, std::string_view stage,
                         std::initializer_list<TraceField> fields)
    : histogram_(histogram), stage_(stage), fields_(fields) {}

ScopedTimer::~ScopedTimer() { StopNs(); }

void ScopedTimer::AddField(std::string_view key, uint64_t value) {
  fields_.push_back({key, value});
}

uint64_t ScopedTimer::StopNs() {
  const uint64_t elapsed = watch_.ElapsedNs();
  if (done_) return elapsed;
  done_ = true;
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<double>(elapsed) * 1e-9);
  }
  if (!stage_.empty()) {
    TraceLog* log = ActiveTrace();
    if (log != nullptr) {
      log->Emit(stage_, fields_, static_cast<int64_t>(elapsed));
    }
  }
  return elapsed;
}

}  // namespace gfd::obs
