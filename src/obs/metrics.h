// Dependency-free metrics registry: named counters, gauges, and
// fixed-bucket latency histograms with a lock-free std::atomic hot path,
// rendered in Prometheus text exposition format.
//
// Usage pattern: registration (GetCounter / GetGauge / GetHistogram)
// takes a mutex and returns a reference that stays valid for the
// registry's lifetime, so hot paths register once (typically in a
// function-local static) and then only touch relaxed atomics:
//
//   static obs::Counter& appends = obs::MetricsRegistry::Default()
//       .GetCounter("gfd_log_appends_total", "Delta-log record appends.");
//   appends.Inc();
//
// Labeled children of one family share the metric name and differ by
// label values, e.g. gfd_fragment_bytes_shipped{fragment="3",kind="halo"}.
#ifndef GFD_OBS_METRICS_H_
#define GFD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gfd::obs {

/// Ordered label key/value pairs identifying one child of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer metric.
class Counter {
 public:
  /// Adds `delta` (relaxed; safe from any thread).
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Settable instantaneous value (e.g. overlay size, running violations).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Adds `delta` (CAS loop; atomic<double> has no fetch_add pre-C++20
  /// on all library implementations we target).
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bounds are upper-inclusive bucket edges in
/// ascending order; a final +Inf bucket is implicit. Observe() is a
/// linear scan plus two relaxed atomic updates -- cheap at the bucket
/// counts we use (~a dozen) and wait-free on the count side.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Records one observation (NaN observations are dropped).
  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf
  /// bucket. Snapshot under concurrent writers: each cell individually
  /// consistent.
  std::vector<uint64_t> BucketCounts() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket edges in seconds: 10us .. 10s, roughly
/// logarithmic, sized for fsync'd appends through full re-detects.
const std::vector<double>& DefaultLatencyBuckets();

/// Registry of metric families. Registration is mutex-guarded and
/// idempotent: the same (name, labels) returns the same child, and the
/// first registration of a name fixes its type, help text, and (for
/// histograms) bucket bounds. Returned references live as long as the
/// registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, Labels labels = {});

  /// Renders every family in Prometheus text exposition format:
  /// families sorted by name, each with # HELP and # TYPE lines followed
  /// by its samples (children sorted by label signature); histograms as
  /// cumulative _bucket{le="..."} series plus _sum and _count.
  std::string RenderPrometheusText() const;

  /// Process-global registry used by the serving stack.
  static MetricsRegistry& Default();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Type type;
    std::string help;
    std::vector<double> bounds;  // histogram families only
    std::vector<std::unique_ptr<Child>> children;
  };

  // Both require mu_ held.
  Family& FamilyFor(const std::string& name, Type type,
                    const std::string& help, std::vector<double> bounds);
  Child& ChildFor(Family& family, Labels labels);

  mutable std::mutex mu_;  // guards: families_
  std::map<std::string, Family> families_;
};

}  // namespace gfd::obs

#endif  // GFD_OBS_METRICS_H_
