// Structured JSON-lines trace log plus the ScopedTimer RAII span that
// feeds latency histograms and (optionally) emits one trace event per
// serving-loop stage (validate -> route -> ship -> detect -> merge ->
// compact) with seq/batch/fragment fields.
//
// One TraceLog can be installed process-wide via SetActiveTrace; hot
// paths then call EmitTrace / construct ScopedTimers unconditionally --
// with no active log the trace side is a single relaxed atomic load.
#ifndef GFD_OBS_TRACE_H_
#define GFD_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace gfd::obs {

/// One numeric field attached to a trace event, e.g. {"seq", 42}.
/// Keys must outlive the event emission (string literals in practice).
struct TraceField {
  std::string_view key;
  uint64_t value;
};

/// Append-only JSON-lines trace sink. Each event is one line:
///   {"ts_ns":123,"stage":"append","dur_ns":4567,"seq":3,"fragment":1}
/// ts_ns is monotonic nanoseconds since process start (steady clock);
/// dur_ns is present only for span events. Emit() is mutex-guarded and
/// flushes per line so a crash loses at most the in-flight event.
class TraceLog {
 public:
  /// Opens `path` for appending; returns nullptr and sets *error on
  /// failure.
  static std::unique_ptr<TraceLog> Open(const std::string& path,
                                        std::string* error = nullptr);
  ~TraceLog();

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Writes one event line. dur_ns < 0 omits the dur_ns field.
  void Emit(std::string_view stage, std::initializer_list<TraceField> fields,
            int64_t dur_ns = -1);
  void Emit(std::string_view stage, const std::vector<TraceField>& fields,
            int64_t dur_ns = -1);

  const std::string& path() const { return path_; }

 private:
  explicit TraceLog(std::FILE* file, std::string path);

  std::mutex mu_;  // guards: file_
  std::FILE* file_;
  std::string path_;
};

/// Installs (or clears, with nullptr) the process-wide trace sink.
/// The caller keeps ownership and must clear before destroying the log.
void SetActiveTrace(TraceLog* log);

/// Currently installed trace sink, or nullptr.
TraceLog* ActiveTrace();

/// Monotonic nanoseconds since process start (first call).
uint64_t MonotonicNowNs();

/// Emits a point event to the active trace, if any. No-op otherwise.
void EmitTrace(std::string_view stage,
               std::initializer_list<TraceField> fields);

/// RAII span: on destruction observes the elapsed seconds into the
/// histogram (if any) and, when a stage name was given and a trace log
/// is active, emits a span event carrying the fields added so far.
/// Either side may be omitted: histogram-only (empty stage) or
/// trace-only (null histogram).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, std::string_view stage = {},
                       std::initializer_list<TraceField> fields = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attaches a field learned mid-span (e.g. the assigned seq).
  void AddField(std::string_view key, uint64_t value);

  /// Stops and records now; returns the span duration in nanoseconds.
  uint64_t StopNs();

  /// Stops without recording anything (e.g. the operation failed).
  void Discard() { done_ = true; }

 private:
  StopwatchNs watch_;
  Histogram* histogram_;
  std::string_view stage_;
  std::vector<TraceField> fields_;
  bool done_ = false;
};

}  // namespace gfd::obs

#endif  // GFD_OBS_TRACE_H_
