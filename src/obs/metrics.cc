#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gfd::obs {
namespace {

// Shortest round-trip decimal rendering; Prometheus accepts Go-style
// floats including exponents and the +Inf/-Inf/NaN spellings.
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

// Escapes \ and newline for # HELP text.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Escapes \, " and newline for label values.
std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Renders label pairs as k1="v1",k2="v2" (no braces) so histogram lines
// can append their le label.
std::string LabelBody(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  return out;
}

std::string SampleName(const std::string& name, const std::string& suffix,
                       const std::string& label_body) {
  std::string out = name + suffix;
  if (!label_body.empty()) {
    out += '{';
    out += label_body;
    out += '}';
  }
  return out;
}

[[noreturn]] void DieOnFamilyMismatch(const std::string& name) {
  std::fprintf(stderr,
               "obs: metric family '%s' re-registered with a different "
               "type or bucket layout\n",
               name.c_str());
  std::abort();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  size_t idx = bounds_.size();  // +Inf bucket
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double> kBuckets = {
      1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0};
  return kBuckets;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(
    const std::string& name, Type type, const std::string& help,
    std::vector<double> bounds) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = help;
    family.bounds = std::move(bounds);
    it = families_.emplace(name, std::move(family)).first;
  } else if (it->second.type != type ||
             (type == Type::kHistogram && it->second.bounds != bounds)) {
    DieOnFamilyMismatch(name);
  }
  return it->second;
}

MetricsRegistry::Child& MetricsRegistry::ChildFor(Family& family,
                                                  Labels labels) {
  for (auto& child : family.children) {
    if (child->labels == labels) return *child;
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  switch (family.type) {
    case Type::kCounter:
      child->counter = std::make_unique<Counter>();
      break;
    case Type::kGauge:
      child->gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      child->histogram = std::make_unique<Histogram>(family.bounds);
      break;
  }
  family.children.push_back(std::move(child));
  return *family.children.back();
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, Type::kCounter, help, {});
  return *ChildFor(family, std::move(labels)).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, Type::kGauge, help, {});
  return *ChildFor(family, std::move(labels)).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, Type::kHistogram, help, std::move(bounds));
  return *ChildFor(family, std::move(labels)).histogram;
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + ' ' + EscapeHelp(family.help) + '\n';
    out += "# TYPE " + name + ' ';
    switch (family.type) {
      case Type::kCounter:
        out += "counter";
        break;
      case Type::kGauge:
        out += "gauge";
        break;
      case Type::kHistogram:
        out += "histogram";
        break;
    }
    out += '\n';
    // Deterministic sample order: children sorted by label signature.
    std::vector<std::pair<std::string, const Child*>> children;
    children.reserve(family.children.size());
    for (const auto& child : family.children) {
      children.emplace_back(LabelBody(child->labels), child.get());
    }
    std::sort(children.begin(), children.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [label_body, child] : children) {
      switch (family.type) {
        case Type::kCounter:
          out += SampleName(name, "", label_body) + ' ' +
                 std::to_string(child->counter->Value()) + '\n';
          break;
        case Type::kGauge:
          out += SampleName(name, "", label_body) + ' ' +
                 FormatDouble(child->gauge->Value()) + '\n';
          break;
        case Type::kHistogram: {
          const Histogram& hist = *child->histogram;
          const std::vector<uint64_t> counts = hist.BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            std::string le = i < hist.bounds().size()
                                 ? FormatDouble(hist.bounds()[i])
                                 : std::string("+Inf");
            std::string bucket_body = label_body;
            if (!bucket_body.empty()) bucket_body += ',';
            bucket_body += "le=\"" + EscapeLabelValue(le) + '"';
            out += SampleName(name, "_bucket", bucket_body) + ' ' +
                   std::to_string(cumulative) + '\n';
          }
          out += SampleName(name, "_sum", label_body) + ' ' +
                 FormatDouble(hist.Sum()) + '\n';
          // _count from the same bucket snapshot, so +Inf == _count holds
          // even when a writer races the render.
          out += SampleName(name, "_count", label_body) + ' ' +
                 std::to_string(cumulative) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace gfd::obs
