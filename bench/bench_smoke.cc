// Tiny-input smoke benches, run as a ctest entry on every CI build.
// Exercises the three hot paths the figure benches scale up -- SeqDis,
// ParDis, and SeqCover -- on ~300-node graphs and writes the timings to
// BENCH_smoke.json, seeding the per-PR perf trajectory.
//
// Usage: bench_smoke [output.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cover.h"

using namespace gfd;
using namespace gfd::bench;

namespace {

struct SmokeResult {
  std::string name;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> counters;
};

void WriteJson(const char* path, const std::vector<SmokeResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror(path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"gfd-bench-smoke-v1\",\n");
  std::fprintf(f, "  \"benches\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"seconds\": %.6f",
                 r.name.c_str(), r.seconds);
    for (const auto& [k, v] : r.counters) {
      std::fprintf(f, ", \"%s\": %.0f", k.c_str(), v);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_smoke.json";
  std::vector<SmokeResult> results;

  // Smoke 1: sequential discovery on a DBpedia-like graph (fig 5a path).
  {
    auto g = DbpediaLike(300);
    auto cfg = ScaledConfig(g);
    WallTimer t;
    auto res = SeqDis(g, cfg);
    SmokeResult r{"seqdis_dbpedia300", t.Seconds(), {}};
    r.counters.emplace_back("positives", double(res.positives.size()));
    r.counters.emplace_back("negatives", double(res.negatives.size()));
    std::printf("%-24s %8.3fs  +%zu/-%zu\n", r.name.c_str(), r.seconds,
                res.positives.size(), res.negatives.size());

    // Smoke 2: cover of the discovered set (fig 5ijk path).
    WallTimer t2;
    auto cover = SeqCover(std::move(res).AllGfds());
    SmokeResult rc{"seqcover_dbpedia300", t2.Seconds(), {}};
    rc.counters.emplace_back("cover_size", double(cover.size()));
    std::printf("%-24s %8.3fs  |cov|=%zu\n", rc.name.c_str(), rc.seconds,
                cover.size());
    results.push_back(std::move(r));
    results.push_back(std::move(rc));
  }

  // Smoke 3: parallel discovery with load balancing (fig 5b/5e path).
  {
    auto g = Yago2Like(300);
    auto cfg = ScaledConfig(g);
    auto run = TimeParDis(g, cfg, /*workers=*/4, /*load_balance=*/true);
    SmokeResult r{"pardis_w4_yago300", run.seconds, {}};
    r.counters.emplace_back("positives", double(run.positives));
    r.counters.emplace_back("negatives", double(run.negatives));
    std::printf("%-24s %8.3fs  +%zu/-%zu\n", r.name.c_str(), r.seconds,
                run.positives, run.negatives);
    results.push_back(std::move(r));
  }

  WriteJson(out, results);
  std::printf("wrote %s\n", out);
  return 0;
}
