// Reproduces Fig. 5(d): GCFD vs GFD vs AMIE runtimes as workers grow
// (YAGO2-like, k=3 -- the default variable count of an AMIE rule). Shape
// targets: DisGFD comparable to the GCFD miner despite mining general
// patterns; DisGFD faster than ParAMIE.
#include "baselines/amie.h"
#include "baselines/gcfd.h"
#include "bench_util.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = Yago2Like(1500);
  auto cfg = ScaledConfig(g, /*k=*/3);
  PrintHeader("Fig 5(d)", "GCFD vs GFD vs AMIE, varying workers", g);
  PrintColumns("n", {"DisGFD(s)", "DisGCFD(s)", "ParAMIE(s)"});
  for (size_t n : {1, 2, 4, 8, 16}) {
    auto gfd_run = TimeParDis(g, cfg, n, true);

    ParallelRunConfig pcfg;
    pcfg.workers = n;
    WallTimer t2;
    ParMineGcfds(g, cfg, pcfg);
    double gcfd_s = t2.Seconds();

    AmieConfig acfg;
    acfg.min_support = cfg.support_threshold;
    acfg.workers = n;
    WallTimer t3;
    MineAmieRules(g, acfg);
    double amie_s = t3.Seconds();

    std::printf("%-24zu %10.2f %10.2f %10.2f\n", n, gfd_run.seconds, gcfd_s,
                amie_s);
  }
  return 0;
}
