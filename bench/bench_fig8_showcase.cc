// Reproduces Fig. 8 / "Real-world GFDs": runs full discovery on the
// YAGO2-shaped graph and prints the discovered counterparts of the
// paper's showcased rules --
//   GFD1: variable-only rule with wildcards (familyname inheritance),
//   GFD2: award exclusivity (negative with constant bindings),
//   GFD3: citizenship exclusivity (negative),
//   phi3: the illegal mutual-parent structure (pattern-level negative).
#include "bench_util.h"
#include "core/cover.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = Yago2Like(1500);
  auto cfg = ScaledConfig(g);
  PrintHeader("Fig 8", "showcase of discovered GFDs", g);

  ParallelRunConfig pcfg;
  pcfg.workers = 8;
  WallTimer t;
  auto res = ParDis(g, cfg, pcfg);
  auto cover = SeqCover(res.AllGfds());
  std::printf("discovered %zu positives + %zu negatives in %.1fs; cover=%zu\n",
              res.positives.size(), res.negatives.size(), t.Seconds(),
              cover.size());

  auto contains = [](const std::string& s, const char* needle) {
    return s.find(needle) != std::string::npos;
  };
  // GFD2/GFD3-style exclusivity negatives are *implied* by their base
  // positives (e.g. won ∧ y.name='Gold Bear' -> x.festival='berlin'
  // derives a conflict with x.festival='venice'), so the cover correctly
  // drops them -- search the full discovered set (ForEachGfd iterates it
  // without materializing the concatenation), as the paper's Fig. 8
  // showcases discovered rules.
  int shown = 0;
  std::printf("\n-- GFD1-style: wildcard variable-only rules (from the "
              "cover) --\n");
  for (const auto& phi : cover) {
    std::string s = phi.ToString(g);
    if (contains(s, "x0:_") && contains(s, "familyname=") &&
        !phi.HasFalseRhs() && shown < 4) {
      std::printf("  %s\n", s.c_str());
      ++shown;
    }
  }
  std::printf("\n-- GFD2-style: award exclusivity negatives (discovered; "
              "cover keeps their base positives) --\n");
  shown = 0;
  res.ForEachGfd([&](const Gfd& phi) {
    std::string s = phi.ToString(g);
    if (phi.HasFalseRhs() &&
        (contains(s, "Gold Bear") || contains(s, "Gold Lion")) &&
        contains(s, "festival")) {
      std::printf("  %s\n", s.c_str());
      ++shown;
    }
    return shown < 3;
  });
  for (const auto& phi : cover) {
    std::string s = phi.ToString(g);
    if (!phi.HasFalseRhs() && contains(s, "Gold") && shown < 5) {
      std::printf("  (base positive in cover) %s\n", s.c_str());
      ++shown;
    }
  }
  std::printf("\n-- GFD3-style: citizenship exclusivity negatives "
              "(discovered) --\n");
  shown = 0;
  res.ForEachGfd([&](const Gfd& phi) {
    std::string s = phi.ToString(g);
    bool has_us = contains(s, "'US'") || contains(s, "passport='us'");
    bool has_no = contains(s, "'Norway'") || contains(s, "passport='no'");
    if (phi.HasFalseRhs() && has_us && has_no) {
      std::printf("  %s\n", s.c_str());
      ++shown;
    }
    return shown < 4;
  });
  std::printf("\n-- phi3-style: illegal structures (pattern-only "
              "negatives, from the cover) --\n");
  shown = 0;
  for (const auto& phi : cover) {
    if (phi.HasFalseRhs() && phi.lhs.empty() && shown < 4) {
      std::printf("  %s\n", phi.ToString(g).c_str());
      ++shown;
    }
  }
  return 0;
}
