// Reproduces Fig. 6: sequential cost and rule counts / average supports.
//   dataset | SeqDisGFD | SeqCover | GFDs #/avg supp | GCFDs | AMIE
// Shape targets: SeqDis dominates SeqCover by orders of magnitude; all
// three miners produce non-trivial rule counts with sane supports.
#include <numeric>

#include "baselines/amie.h"
#include "baselines/gcfd.h"
#include "bench_util.h"
#include "core/cover.h"

using namespace gfd;
using namespace gfd::bench;

namespace {

void RunOne(const char* name, const PropertyGraph& g) {
  auto cfg = ScaledConfig(g);

  WallTimer t1;
  auto res = SeqDis(g, cfg);
  double dis_s = t1.Seconds();

  auto sigma = res.AllGfds();
  WallTimer t2;
  auto cover = SeqCover(sigma);
  double cover_s = t2.Seconds();

  uint64_t gfd_supp_total =
      std::accumulate(res.positive_supports.begin(),
                      res.positive_supports.end(), uint64_t{0}) +
      std::accumulate(res.negative_supports.begin(),
                      res.negative_supports.end(), uint64_t{0});
  size_t gfd_count = res.positives.size() + res.negatives.size();

  WallTimer t3;
  auto gcfds = MineGcfds(g, cfg);
  double gcfd_s = t3.Seconds();
  uint64_t gcfd_supp_total =
      std::accumulate(gcfds.positive_supports.begin(),
                      gcfds.positive_supports.end(), uint64_t{0}) +
      std::accumulate(gcfds.negative_supports.begin(),
                      gcfds.negative_supports.end(), uint64_t{0});
  size_t gcfd_count = gcfds.positives.size() + gcfds.negatives.size();

  AmieConfig acfg;
  acfg.min_support = 10;          // AMIE counts pairs, not pivots
  acfg.min_pca_confidence = 0.5;  // the paper's PCA threshold
  WallTimer t4;
  auto amie = MineAmieRules(g, acfg);
  double amie_s = t4.Seconds();
  uint64_t amie_supp_total = 0;
  for (const auto& r : amie) amie_supp_total += r.support;

  std::printf(
      "%-14s %11.2fs %10.3fs   %4zu/%-6lu %4zu/%-6lu %4zu/%-6lu %8.2fs %8.2fs "
      "%6zu\n",
      name, dis_s, cover_s, gfd_count,
      gfd_count ? gfd_supp_total / gfd_count : 0, gcfd_count,
      gcfd_count ? gcfd_supp_total / gcfd_count : 0, amie.size(),
      amie.empty() ? 0 : amie_supp_total / amie.size(), gcfd_s, amie_s,
      cover.size());
}

}  // namespace

int main() {
  std::printf("\n=== Fig 6: sequential cost and rule #/avg support ===\n");
  std::printf("%-14s %12s %11s   %-11s %-11s %-11s %9s %9s %6s\n", "dataset",
              "SeqDisGFD", "SeqCover", "GFD#/supp", "GCFD#/supp",
              "AMIE#/supp", "GCFD(s)", "AMIE(s)", "|cov|");
  {
    auto g = DbpediaLike(1500);
    RunOne("DBpedia-like", g);
  }
  {
    auto g = Yago2Like(1500);
    RunOne("YAGO2-like", g);
  }
  return 0;
}
