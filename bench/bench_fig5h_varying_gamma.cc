// Reproduces Fig. 5(h): impact of the active attribute set Gamma
// (DBpedia-like, n=8). The paper sweeps |Gamma| in 50..250 over its large
// attribute vocabulary; our generators carry 5-7 attributes, so the sweep
// is 1..5. Shape target: more active attributes -> larger literal pools ->
// longer runs.
#include "bench_util.h"
#include "core/literal_pool.h"
#include "graph/stats.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = DbpediaLike(2000);
  PrintHeader("Fig 5(h)", "varying |Gamma|, n=8, k=3", g);
  GraphStats stats(g);
  DiscoveryConfig probe;
  probe.max_active_attrs = 16;
  auto all_attrs = ResolveActiveAttrs(stats, probe);
  PrintColumns("|Gamma|", {"DisGFD(s)", "ParGFDnb(s)", "#pos", "#neg"});
  for (size_t na = 1; na <= all_attrs.size() && na <= 5; ++na) {
    auto cfg = ScaledConfig(g);
    cfg.active_attrs.assign(all_attrs.begin(), all_attrs.begin() + na);
    auto balanced = TimeParDis(g, cfg, 8, true);
    auto unbalanced = TimeParDis(g, cfg, 8, false);
    std::printf("%-24zu %10.2f %10.2f %10zu %10zu\n", na, balanced.seconds,
                unbalanced.seconds, balanced.positives, balanced.negatives);
  }
  return 0;
}
