// Delta-log durability smoke bench, run as a ctest entry on every CI
// build next to bench_incremental: times the serving-side persistence
// primitives of serve/ -- append throughput (fsync'd, growing overlay),
// startup replay vs. log length, and snapshot compaction cost vs.
// overlay size -- against a YAGO2-shaped graph at scale 300. Every
// restart is verified byte-identical: the reopened store's materialized
// graph must equal the in-process one. Timings land in
// BENCH_delta_log.json.
//
// Usage: bench_delta_log [output.json]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/graph_view.h"
#include "graph/loader.h"
#include "serve/graph_store.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace gfd;
using namespace gfd::bench;

namespace fs = std::filesystem;

namespace {

struct Row {
  std::string name;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> counters;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror(path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"gfd-bench-delta-log-v1\",\n");
  std::fprintf(f, "  \"benches\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"seconds\": %.6f",
                 r.name.c_str(), r.seconds);
    for (const auto& [k, v] : r.counters) {
      std::fprintf(f, ", \"%s\": %.3f", k.c_str(), v);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// A stateful update-stream generator over a fixed base graph: 50% edge
// inserts (label-plausible endpoints), 25% deletes of still-alive base
// edges, 25% attribute sets (some introducing brand-new values). State
// carries across batches so a later batch never deletes an edge an
// earlier one already removed.
class StreamGen {
 public:
  StreamGen(const PropertyGraph& g, uint64_t seed)
      : g_(g), rng_(seed), gone_(g.NumEdges(), false) {}

  GraphDelta NextBatch(size_t ops) {
    GraphDelta d;
    for (size_t i = 0; i < ops; ++i) {
      double roll = rng_.NextDouble();
      if (roll < 0.5) {
        EdgeId e = static_cast<EdgeId>(rng_.Below(g_.NumEdges()));
        EdgeId e2 = static_cast<EdgeId>(rng_.Below(g_.NumEdges()));
        d.InsertEdge(g_.EdgeSrc(e), g_.EdgeDst(e2), g_.EdgeLabel(e));
      } else if (roll < 0.75) {
        EdgeId e = static_cast<EdgeId>(rng_.Below(g_.NumEdges()));
        if (gone_[e]) continue;
        gone_[e] = true;
        d.DeleteEdge(g_.EdgeSrc(e), g_.EdgeDst(e), g_.EdgeLabel(e));
      } else {
        NodeId v = static_cast<NodeId>(rng_.Below(g_.NumNodes()));
        auto attrs = g_.NodeAttrs(v);
        if (attrs.empty()) continue;
        AttrId key = attrs[rng_.Below(attrs.size())].key;
        ValueId val =
            rng_.Chance(0.25)
                ? d.InternValue(g_,
                                "patched_" + std::to_string(rng_.Below(8)))
                : static_cast<ValueId>(rng_.Below(g_.values().size()));
        d.SetAttr(v, key, val);
      }
    }
    return d;
  }

 private:
  const PropertyGraph& g_;
  Rng rng_;
  std::vector<bool> gone_;
};

std::string GraphBytes(const PropertyGraph& g) {
  std::ostringstream os;
  SaveGraphTsv(g, os);
  return std::move(os).str();
}

// A fresh store under the system temp dir holding `g`, with `batches`
// batches of `ops_per_batch` ops appended (no compaction). Returns the
// directory.
std::string BuildStore(const PropertyGraph& g, size_t batches,
                       size_t ops_per_batch, uint64_t seed) {
  std::string dir =
      (fs::temp_directory_path() / "gfd_bench_delta_log").string();
  fs::remove_all(dir);
  std::string error;
  if (!GraphStore::Init(dir, g, &error)) {
    std::fprintf(stderr, "init failed: %s\n", error.c_str());
    std::exit(1);
  }
  auto store = GraphStore::Open(dir, {}, &error);
  if (!store) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    std::exit(1);
  }
  // Batches are expressed over the store's own base, per the Append
  // contract (vocab-preserving snapshots make it id-identical to `g`
  // here, but that is the store's guarantee to rely on, not the bench's).
  StreamGen gen(store->base(), seed);
  for (size_t b = 0; b < batches; ++b) {
    if (!store->Append(gen.NextBatch(ops_per_batch), &error)) {
      std::fprintf(stderr, "append failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
  return dir;
}

// Min of `reps` timed runs (sub-10ms bodies need the min to be stable).
template <typename Fn>
double TimedMin(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_delta_log.json";
  auto g = Yago2Like(300);
  std::printf("base graph: |V|=%zu |E|=%zu\n", g.NumNodes(), g.NumEdges());

  std::vector<Row> rows;
  bool verified = true;

  // --- Append throughput (durable, fsync per batch, growing overlay) ----
  {
    const size_t kBatches = 128, kOps = 8;
    std::string dir = BuildStore(g, 0, 0, /*seed=*/11);
    std::string error;
    auto store = GraphStore::Open(dir, {}, &error);
    if (!store) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    StreamGen gen(store->base(), /*seed=*/11);
    WallTimer t;
    for (size_t b = 0; b < kBatches; ++b) {
      if (!store->Append(gen.NextBatch(kOps), &error)) {
        std::fprintf(stderr, "append failed: %s\n", error.c_str());
        return 1;
      }
    }
    double s = t.Seconds();
    double log_bytes = static_cast<double>(
        fs::file_size(fs::path(dir) / "deltas.log"));
    std::printf("%-28s %8.3fs  %zu batches x %zu ops, %.0f bytes logged\n",
                "append_128x8", s, kBatches, kOps, log_bytes);
    rows.push_back({"append_128x8",
                    s,
                    {{"batches", double(kBatches)},
                     {"batch_ops", double(kOps)},
                     {"batches_per_sec", s > 0 ? kBatches / s : 0},
                     {"log_bytes", log_bytes}}});
  }

  // --- Hot-overlay append: cost must stay O(batch), not O(overlay) ------
  // Appends onto a store already carrying a deep overlay (512 batches
  // x 8 ops, uncompacted). The in-place absorb keeps each append
  // proportional to the batch; re-applying the whole overlay per append
  // would make this section ~50x the fresh-store appends above.
  {
    const size_t kHot = 64, kOps = 8;
    std::string dir = BuildStore(g, 512, 8, /*seed=*/29);
    std::string error;
    auto store = GraphStore::Open(dir, {}, &error);
    if (!store) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    size_t overlay_start = store->overlay().ops.size();
    // Re-synchronize with BuildStore's deterministic stream (same seed,
    // same prefix) so the generator's delete bookkeeping matches the
    // store state and later deletes target still-alive edges.
    StreamGen gen(store->base(), /*seed=*/29);
    for (size_t b = 0; b < 512; ++b) gen.NextBatch(8);
    WallTimer t;
    for (size_t b = 0; b < kHot; ++b) {
      if (!store->Append(gen.NextBatch(kOps), &error)) {
        std::fprintf(stderr, "hot append failed: %s\n", error.c_str());
        return 1;
      }
    }
    double s = t.Seconds();
    auto reopened = GraphStore::Open(dir, {}, &error);
    bool ok = reopened &&
              GraphBytes(reopened->MaterializeCurrent()) ==
                  GraphBytes(store->MaterializeCurrent());
    verified = verified && ok;
    std::printf("%-28s %8.3fs  %zu appends onto %zu overlay op(s), "
                "restart %s\n",
                "append_hot_overlay", s, kHot, overlay_start,
                ok ? "byte-identical" : "DIVERGED");
    rows.push_back({"append_hot_overlay",
                    s,
                    {{"batches", double(kHot)},
                     {"batch_ops", double(kOps)},
                     {"overlay_ops_start", double(overlay_start)},
                     {"batches_per_sec", s > 0 ? kHot / s : 0},
                     {"verified", ok ? 1.0 : 0.0}}});
  }

  // --- Replay time vs. log length --------------------------------------
  for (size_t batches : {32UL, 128UL}) {
    std::string dir = BuildStore(g, batches, 8, /*seed=*/23);
    // In-process reference state for the restart-determinism check.
    std::string expect;
    {
      std::string error;
      auto ref = GraphStore::Open(dir, {}, &error);
      expect = GraphBytes(ref->MaterializeCurrent());
    }
    std::string error;
    double s = TimedMin(3, [&] {
      auto store = GraphStore::Open(dir, {}, &error);
      if (!store) std::exit(1);
    });
    auto reopened = GraphStore::Open(dir, {}, &error);
    bool ok = GraphBytes(reopened->MaterializeCurrent()) == expect;
    verified = verified && ok;
    std::string name = "replay_" + std::to_string(batches) + "batches";
    std::printf("%-28s %8.3fs  %zu ops replayed, restart %s\n", name.c_str(),
                s, reopened->overlay().ops.size(),
                ok ? "byte-identical" : "DIVERGED");
    rows.push_back({name,
                    s,
                    {{"batches", double(batches)},
                     {"overlay_ops", double(reopened->overlay().ops.size())},
                     {"verified", ok ? 1.0 : 0.0}}});
  }

  // --- Compaction cost vs. overlay size --------------------------------
  for (size_t batches : {32UL, 128UL}) {
    std::string dir = BuildStore(g, batches, 8, /*seed=*/37);
    std::string error;
    auto store = GraphStore::Open(dir, {}, &error);
    size_t overlay_ops = store->overlay().ops.size();
    WallTimer t;
    if (!store->Compact(&error)) {
      std::fprintf(stderr, "compact failed: %s\n", error.c_str());
      return 1;
    }
    double s = t.Seconds();
    // Restart after the compaction boundary must land on the same bytes.
    auto reopened = GraphStore::Open(dir, {}, &error);
    bool ok = reopened &&
              GraphBytes(reopened->MaterializeCurrent()) ==
                  GraphBytes(store->MaterializeCurrent());
    verified = verified && ok;
    double snap_bytes = static_cast<double>(fs::file_size(
        fs::path(dir) / ("snapshot-" + std::to_string(store->last_seq()) +
                         ".tsv")));
    std::string name = "compact_" + std::to_string(overlay_ops) + "ops";
    std::printf("%-28s %8.3fs  snapshot %.0f bytes, restart %s\n",
                name.c_str(), s, snap_bytes,
                ok ? "byte-identical" : "DIVERGED");
    rows.push_back({name,
                    s,
                    {{"overlay_ops", double(overlay_ops)},
                     {"snapshot_bytes", snap_bytes},
                     {"verified", ok ? 1.0 : 0.0}}});
  }

  rows.push_back({"summary", 0, {{"verified", verified ? 1.0 : 0.0}}});
  std::printf("restart determinism: %s\n",
              verified ? "byte-identical" : "DIVERGED");

  fs::remove_all(fs::temp_directory_path() / "gfd_bench_delta_log");
  WriteJson(out, rows);
  std::printf("wrote %s\n", out);
  return verified ? 0 : 1;
}
