// Reproduces Fig. 5(f): impact of the pattern bound k (DBpedia-like,
// n=8). Shape targets: time grows with k; DisGFD <= ParGFDnb throughout.
#include "bench_util.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = DbpediaLike(1200);
  PrintHeader("Fig 5(f)", "varying k, n=8", g);
  PrintColumns("k", {"DisGFD(s)", "ParGFDnb(s)", "#pos", "#neg"});
  for (uint32_t k : {2, 3, 4}) {
    auto cfg = ScaledConfig(g, k);
    auto balanced = TimeParDis(g, cfg, 8, true);
    auto unbalanced = TimeParDis(g, cfg, 8, false);
    std::printf("%-24u %10.2f %10.2f %10zu %10zu\n", k, balanced.seconds,
                unbalanced.seconds, balanced.positives, balanced.negatives);
  }
  return 0;
}
