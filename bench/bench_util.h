// Shared scaffolding for the figure/table reproduction benches: standard
// dataset instantiations (scaled-down stand-ins for DBpedia / YAGO2 /
// IMDB, see DESIGN.md "Substitutions"), timing helpers, and the table
// printer all benches use so their output reads like the paper's series.
#ifndef GFD_BENCH_BENCH_UTIL_H_
#define GFD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/seqdis.h"
#include "datagen/kb.h"
#include "graph/property_graph.h"
#include "parallel/cluster.h"
#include "parallel/pardis.h"
#include "util/timer.h"

namespace gfd::bench {

/// Default scaled dataset sizes. The paper's graphs have 1.7M-3.4M nodes;
/// these are ~100-500x smaller so a full sweep finishes in minutes while
/// exercising identical code paths.
inline PropertyGraph DbpediaLike(size_t scale = 2000) {
  return MakeDbpediaLike({.scale = scale, .seed = 7});
}
inline PropertyGraph Yago2Like(size_t scale = 2500) {
  return MakeYago2Like({.scale = scale, .seed = 7});
}
inline PropertyGraph ImdbLike(size_t scale = 2000) {
  return MakeImdbLike({.scale = scale, .seed = 7});
}

/// The discovery configuration used by the scalability figures
/// (k = 3, sigma scaled to the graph size).
inline DiscoveryConfig ScaledConfig(const PropertyGraph& g, uint32_t k = 3) {
  DiscoveryConfig cfg;
  cfg.k = k;
  cfg.support_threshold = std::max<uint64_t>(10, g.NumNodes() / 100);
  cfg.max_lhs_size = 2;
  return cfg;
}

struct TimedRun {
  double seconds = 0;
  size_t positives = 0;
  size_t negatives = 0;
  ClusterStats cluster;
};

/// Times one DisGFD run (= ParDis mining; cover timing is separate, as in
/// the paper's figures).
inline TimedRun TimeParDis(const PropertyGraph& g, const DiscoveryConfig& cfg,
                           size_t workers, bool load_balance) {
  ParallelRunConfig pcfg;
  pcfg.workers = workers;
  pcfg.load_balance = load_balance;
  TimedRun out;
  WallTimer t;
  auto res = ParDis(g, cfg, pcfg, &out.cluster);
  out.seconds = t.Seconds();
  out.positives = res.positives.size();
  out.negatives = res.negatives.size();
  return out;
}

/// Prints a header like the figure captions.
inline void PrintHeader(const std::string& figure, const std::string& title,
                        const PropertyGraph& g) {
  std::printf("\n=== %s: %s ===\n", figure.c_str(), title.c_str());
  std::printf("graph: |V|=%zu |E|=%zu labels=%zu\n", g.NumNodes(),
              g.NumEdges(), g.labels().size());
}

/// Prints one table row: label column + numeric columns.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& cells,
                     const std::vector<std::string>& units = {}) {
  std::printf("%-24s", label.c_str());
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(" %10.3f%s", cells[i],
                i < units.size() ? units[i].c_str() : "");
  }
  std::printf("\n");
}

inline void PrintColumns(const std::string& label,
                         const std::vector<std::string>& cols) {
  std::printf("%-24s", label.c_str());
  for (const auto& c : cols) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

}  // namespace gfd::bench

#endif  // GFD_BENCH_BENCH_UTIL_H_
