// Reproduces Fig. 5(c): parallel scalability on the IMDB-shaped graph.
#include "scal_common.h"

int main() {
  auto g = gfd::bench::ImdbLike();
  return gfd::bench::RunScalabilityFigure("Fig 5(c)", "IMDB-like", g);
}
