// Incremental-detection smoke bench, run as a ctest entry on every CI
// build next to bench_detect: mines a rule workload from a clean YAGO2-
// shaped graph at scale 300, corrupts a copy (the serving graph), then
// replays random update deltas of 0.1% / 1% / 10% of the edge count and
// times DetectIncremental against a full re-detect over the updated
// snapshot. For every delta the incremental added/removed records are
// cross-checked byte-identical to the diff of two full runs; timings land
// in BENCH_incremental.json.
//
// Usage: bench_incremental [output.json]
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "datagen/noise.h"
#include "detect/engine.h"
#include "detect/planner.h"
#include "graph/graph_view.h"
#include "graph/loader.h"
#include "pattern/canonical.h"
#include "util/hash.h"
#include "util/rng.h"

using namespace gfd;
using namespace gfd::bench;

namespace {

struct Row {
  std::string name;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> counters;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror(path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"gfd-bench-incremental-v1\",\n");
  std::fprintf(f, "  \"benches\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"seconds\": %.6f",
                 r.name.c_str(), r.seconds);
    for (const auto& [k, v] : r.counters) {
      std::fprintf(f, ", \"%s\": %.3f", k.c_str(), v);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Same serving-shaped workload as bench_detect: the largest pattern
// groups of a mined cover, up to `per_group` literal variants each.
std::vector<Gfd> BuildWorkload(const PropertyGraph& g, size_t max_groups,
                               size_t per_group) {
  auto cfg = ScaledConfig(g);
  auto all = SeqDis(g, cfg).AllGfds();
  std::unordered_map<std::vector<uint32_t>, std::vector<size_t>, VecHash>
      by_code;
  for (size_t i = 0; i < all.size(); ++i) {
    by_code[CanonicalCode(all[i].pattern, /*fix_pivot=*/true)].push_back(i);
  }
  std::vector<std::vector<size_t>> groups;
  for (auto& [code, members] : by_code) groups.push_back(std::move(members));
  std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
    return a.size() != b.size() ? a.size() > b.size() : a[0] < b[0];
  });
  std::vector<Gfd> rules;
  for (size_t gi = 0; gi < groups.size() && gi < max_groups; ++gi) {
    for (size_t i = 0; i < groups[gi].size() && i < per_group; ++i) {
      rules.push_back(std::move(all[groups[gi][i]]));
    }
  }
  return rules;
}

// An update stream over g: 40% edge inserts (label-plausible endpoints),
// 30% deletes of existing edges, 30% attribute sets (some introducing
// brand-new values, as real patches do).
GraphDelta RandomDelta(const PropertyGraph& g, size_t ops, uint64_t seed) {
  Rng rng(seed);
  GraphDelta d;
  std::vector<bool> gone(g.NumEdges(), false);
  for (size_t i = 0; i < ops; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.4) {
      EdgeId e = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      EdgeId e2 = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      d.InsertEdge(g.EdgeSrc(e), g.EdgeDst(e2), g.EdgeLabel(e));
    } else if (roll < 0.7) {
      EdgeId e = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      if (gone[e]) continue;
      gone[e] = true;
      d.DeleteEdge(g.EdgeSrc(e), g.EdgeDst(e), g.EdgeLabel(e));
    } else {
      NodeId v = static_cast<NodeId>(rng.Below(g.NumNodes()));
      auto attrs = g.NodeAttrs(v);
      if (attrs.empty()) continue;
      AttrId key = attrs[rng.Below(attrs.size())].key;
      ValueId val =
          rng.Chance(0.25)
              ? d.InternValue(g, "patched_" + std::to_string(rng.Below(8)))
              : static_cast<ValueId>(rng.Below(g.values().size()));
      d.SetAttr(v, key, val);
    }
  }
  return d;
}

// Min of `reps` timed runs (sub-10ms bodies need the min to be stable).
template <typename Fn>
double TimedMin(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_incremental.json";

  auto clean = Yago2Like(300);
  auto rules = BuildWorkload(clean, /*max_groups=*/10, /*per_group=*/25);
  auto noisy = InjectNoise(clean, {.alpha = 0.08, .beta = 0.6, .seed = 3});
  const PropertyGraph& g0 = noisy.graph;

  ViolationEngine engine(rules);
  std::printf("workload: %zu rules in %zu pattern groups on |V|=%zu "
              "|E|=%zu (+noise)\n",
              engine.NumRules(), engine.NumGroups(), g0.NumNodes(),
              g0.NumEdges());
  if (engine.NumRules() < 20 || engine.NumGroups() < 5) {
    std::fprintf(stderr, "workload too small to be meaningful\n");
    return 1;
  }

  const int kReps = 3;
  DetectionResult full_old;
  double full_old_s =
      TimedMin(kReps, [&] { full_old = engine.Detect(g0, {.workers = 1}); });
  std::printf("%-28s %8.3fs  %zu violations\n", "full_detect_base",
              full_old_s, full_old.violations.size());

  std::vector<Row> rows;
  rows.push_back({"full_detect_base",
                  full_old_s,
                  {{"violations", double(full_old.violations.size())}}});

  bool verified = true;
  bool planner_match = true;
  double speedup_smallest = 0;

  // One planner across the whole delta stream, exactly like the serving
  // loop: the startup full scan seeds the full-path unit cost, each
  // served batch then feeds back the wall-clock of whichever path was
  // chosen. By the large deltas the decision is a calibrated cost
  // comparison, not just the seeded crossover.
  GraphDelta no_delta;
  auto pre_view = GraphView::Apply(g0, no_delta);
  DetectPlanner planner;
  planner.ObserveFull(
      MakePlannerInputs(*pre_view, /*overlay_ops=*/0, "",
                        engine.NumGroups(), engine.NumAnchorPlans()),
      full_old_s);
  const struct {
    double frac;
    const char* tag;
  } kDeltas[] = {{0.001, "0.1pct"}, {0.01, "1pct"}, {0.1, "10pct"}};
  for (const auto& [frac, tag] : kDeltas) {
    size_t ops = std::max<size_t>(1, static_cast<size_t>(
                                         frac * double(g0.NumEdges())));
    GraphDelta delta = RandomDelta(g0, ops, /*seed=*/41 + ops);
    std::string error;
    auto view = GraphView::Apply(g0, delta, &error);
    if (!view) {
      std::fprintf(stderr, "delta apply failed: %s\n", error.c_str());
      return 1;
    }
    PropertyGraph g1 = view->Materialize();

    DetectionResult full_new;
    double full_s = TimedMin(
        kReps, [&] { full_new = engine.Detect(g1, {.workers = 1}); });
    IncrementalDiff inc;
    double inc_s = TimedMin(
        kReps, [&] { inc = engine.DetectIncremental(*view, {.workers = 1}); });

    // Byte-identical diff check against two full runs.
    std::vector<Violation> added, removed;
    std::set_difference(full_new.violations.begin(),
                        full_new.violations.end(),
                        full_old.violations.begin(),
                        full_old.violations.end(), std::back_inserter(added));
    std::set_difference(full_old.violations.begin(),
                        full_old.violations.end(),
                        full_new.violations.begin(),
                        full_new.violations.end(),
                        std::back_inserter(removed));
    bool ok = inc.added == added && inc.removed == removed;
    verified = verified && ok;

    double speedup = inc_s > 0 ? full_s / inc_s : 0;
    if (frac == 0.001) speedup_smallest = speedup;
    std::printf("%-28s %8.3fs  +%zu -%zu (%zu affected, %lu touched "
                "matches)\n",
                (std::string("incremental_") + tag).c_str(), inc_s,
                inc.added.size(), inc.removed.size(),
                inc.stats.affected_nodes,
                static_cast<unsigned long>(inc.stats.matches_seen));
    std::printf("%-28s %8.3fs  %zu violations; speedup %.1fx, diffs %s\n",
                (std::string("full_redetect_") + tag).c_str(), full_s,
                full_new.violations.size(), speedup,
                ok ? "identical" : "DIVERGED");

    rows.push_back({std::string("incremental_") + tag,
                    inc_s,
                    {{"delta_ops", double(delta.ops.size())},
                     {"affected", double(inc.stats.affected_nodes)},
                     {"touched_matches", double(inc.stats.matches_seen)},
                     {"added", double(inc.added.size())},
                     {"removed", double(inc.removed.size())},
                     {"groups_scanned", double(inc.stats.groups_scanned)},
                     {"groups_skipped", double(inc.stats.groups_skipped)}}});
    rows.push_back({std::string("full_redetect_") + tag,
                    full_s,
                    {{"violations", double(full_new.violations.size())},
                     {"speedup_vs_incremental", speedup}}});

    // What the serving loop's planner picks for this batch, fed through
    // the same MakePlannerInputs as both serving backends against the
    // pre-append state. The row's seconds are the measured seconds of
    // the chosen path, so bench_compare's 25% timing gate fails if the
    // planner ever picks a path materially slower than the better of
    // the two pure strategies; planner_optimal applies the same
    // tolerance (timing near the crossover is noise-dominated --
    // the two paths cost the same there by definition).
    std::ostringstream tsv;
    SaveGraphDeltaTsv(g0, delta, tsv);
    PlannerInputs pin =
        MakePlannerInputs(*pre_view, /*overlay_ops=*/0, tsv.str(),
                          engine.NumGroups(), engine.NumAnchorPlans());
    DetectPath path = planner.Plan(pin);
    bool chose_full = path == DetectPath::kFull;
    double planner_s = chose_full ? full_s : inc_s;
    if (chose_full) {
      planner.ObserveFull(pin, full_s);
    } else {
      planner.ObserveIncremental(pin, inc_s);
    }
    planner_match =
        planner_match && planner_s <= 1.25 * std::min(full_s, inc_s);
    std::printf("%-28s %8.3fs  chose %s path\n",
                (std::string("planner_") + tag).c_str(), planner_s,
                chose_full ? "full" : "incremental");
    rows.push_back({std::string("planner_") + tag,
                    planner_s,
                    {{"planner_full_decision", chose_full ? 1.0 : 0.0},
                     {"groups_scanned", double(inc.stats.groups_scanned)},
                     {"groups_skipped", double(inc.stats.groups_skipped)}}});
  }

  rows.push_back({"summary",
                  0,
                  {{"verified", verified ? 1.0 : 0.0},
                   {"planner_optimal", planner_match ? 1.0 : 0.0},
                   {"speedup_0.1pct", speedup_smallest}}});
  std::printf("incremental vs full at 0.1%% delta: %.1fx; diffs %s; "
              "planner %s\n",
              speedup_smallest, verified ? "identical" : "DIVERGED",
              planner_match ? "optimal at every delta" : "SUBOPTIMAL");

  WriteJson(out, rows);
  std::printf("wrote %s\n", out);
  return verified ? 0 : 1;
}
