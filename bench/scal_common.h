// Shared driver for the three parallel-scalability figures (Fig. 5a/5b/5c):
// DisGFD vs ParGFDnb (no load balancing) as the worker count grows.
#ifndef GFD_BENCH_SCAL_COMMON_H_
#define GFD_BENCH_SCAL_COMMON_H_

#include "bench_util.h"

namespace gfd::bench {

inline int RunScalabilityFigure(const std::string& figure,
                                const std::string& dataset,
                                const PropertyGraph& g) {
  auto cfg = ScaledConfig(g);
  PrintHeader(figure, "DisGFD vs ParGFDnb, varying workers n (" + dataset +
                          ", k=" + std::to_string(cfg.k) +
                          ", sigma=" + std::to_string(cfg.support_threshold) +
                          ")",
              g);
  PrintColumns("n", {"DisGFD(s)", "ParGFDnb(s)", "#pos", "#neg", "ship(MB)"});
  double t_first = 0, t_last = 0;
  for (size_t n : {1, 2, 4, 8, 16}) {
    auto balanced = TimeParDis(g, cfg, n, /*load_balance=*/true);
    auto unbalanced = TimeParDis(g, cfg, n, /*load_balance=*/false);
    if (n == 1) t_first = balanced.seconds;
    t_last = balanced.seconds;
    std::printf("%-24zu %10.2f %10.2f %10zu %10zu %10.2f\n", n,
                balanced.seconds, unbalanced.seconds, balanced.positives,
                balanced.negatives,
                balanced.cluster.bytes_shipped / 1048576.0);
  }
  std::printf("speedup (n=1 -> n=16): %.2fx   [paper: 3.6-4x from n=4->20]\n",
              t_first / t_last);
  return 0;
}

}  // namespace gfd::bench

#endif  // GFD_BENCH_SCAL_COMMON_H_
