// Reproduces Fig. 5(g): impact of the support threshold sigma
// (DBpedia-like, n=8). Shape target: higher sigma prunes more candidates,
// so both miners get faster.
#include "bench_util.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = DbpediaLike(2000);
  PrintHeader("Fig 5(g)", "varying sigma, n=8, k=3", g);
  PrintColumns("sigma", {"DisGFD(s)", "ParGFDnb(s)", "#pos", "#neg"});
  for (uint64_t sigma : {10, 20, 40, 80, 160}) {
    auto cfg = ScaledConfig(g);
    cfg.support_threshold = sigma;
    auto balanced = TimeParDis(g, cfg, 8, true);
    auto unbalanced = TimeParDis(g, cfg, 8, false);
    std::printf("%-24lu %10.2f %10.2f %10zu %10zu\n",
                static_cast<unsigned long>(sigma), balanced.seconds,
                unbalanced.seconds, balanced.positives, balanced.negatives);
  }
  return 0;
}
