// Reproduces Fig. 5(l): cover computation varying |Sigma| (generated GFD
// sets, n=4). Shape targets: time grows with |Sigma|; ParCover is less
// sensitive than ParCovern thanks to grouping + LPT balancing.
#include "bench_util.h"
#include "datagen/gfd_gen.h"
#include "parallel/parcover.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = Yago2Like(1000);
  std::printf("\n=== Fig 5(l): ParCover vs ParCovern, varying |Sigma| "
              "(generated GFDs, n=4, k<=4) ===\n");
  PrintColumns("|Sigma|", {"ParCover(s)", "ParCovern(s)", "|cover|"});
  for (size_t count : {2000, 4000, 6000, 8000, 10000}) {
    GfdGenConfig gcfg;
    gcfg.count = count;
    gcfg.k = 4;
    auto sigma = GenerateGfdSet(g, gcfg);
    ParallelRunConfig pcfg;
    pcfg.workers = 4;
    WallTimer t1;
    auto cover = ParCover(sigma, pcfg);
    double grouped_s = t1.Seconds();
    WallTimer t2;
    ParCoverNoGrouping(sigma, pcfg);
    double ungrouped_s = t2.Seconds();
    std::printf("%-24zu %10.2f %10.2f %10zu\n", count, grouped_s,
                ungrouped_s, cover.size());
  }
  return 0;
}
