// Reproduces Figs. 5(i)/(j)/(k): parallel scalability of cover
// computation -- ParCover vs ParCovern (no grouping) on the GFD sets
// discovered from the three graphs. Shape targets: cover time falls as n
// grows; grouping (Lemma 6) beats no-grouping by a wide margin (the paper
// reports ~10x).
#include "bench_util.h"
#include "parallel/parcover.h"

using namespace gfd;
using namespace gfd::bench;

namespace {

void RunOne(const char* figure, const char* name, const PropertyGraph& g) {
  auto cfg = ScaledConfig(g);
  ParallelRunConfig mine_cfg;
  mine_cfg.workers = 8;
  auto sigma = ParDis(g, cfg, mine_cfg).AllGfds();
  std::printf("\n=== %s: ParCover vs ParCovern (%s, |Sigma|=%zu) ===\n",
              figure, name, sigma.size());
  PrintColumns("n", {"ParCover(s)", "ParCovern(s)", "|cover|"});
  for (size_t n : {1, 2, 4, 8, 16}) {
    ParallelRunConfig pcfg;
    pcfg.workers = n;
    WallTimer t1;
    auto cover = ParCover(sigma, pcfg);
    double grouped_s = t1.Seconds();
    WallTimer t2;
    ParCoverNoGrouping(sigma, pcfg);
    double ungrouped_s = t2.Seconds();
    std::printf("%-24zu %10.2f %10.2f %10zu\n", n, grouped_s, ungrouped_s,
                cover.size());
  }
}

}  // namespace

int main() {
  RunOne("Fig 5(i)", "DBpedia-like", DbpediaLike(1500));
  RunOne("Fig 5(j)", "YAGO2-like", Yago2Like(1500));
  RunOne("Fig 5(k)", "IMDB-like", ImdbLike(1500));
  return 0;
}
