// Reproduces Fig. 7: error-detection accuracy of GFDs vs GCFDs vs AMIE on
// the YAGO2-shaped graph. Rules are mined on the clean graph; noise is
// injected (alpha% of nodes, beta% of their attributes / incident edge
// labels changed to unseen values); accuracy = |V_detect ∩ V_E| / |V_E|.
// Shape targets: GFDs most accurate; accuracy improves with smaller sigma,
// larger k, and larger |Gamma|.
#include <algorithm>

#include "baselines/amie.h"
#include "baselines/gcfd.h"
#include "bench_util.h"
#include "datagen/noise.h"
#include "gfd/validation.h"
#include "graph/stats.h"
#include "core/literal_pool.h"

using namespace gfd;
using namespace gfd::bench;

namespace {

double Accuracy(const std::vector<NodeId>& detected,
                const std::vector<NodeId>& corrupted) {
  if (corrupted.empty()) return 0;
  size_t hit = 0;
  for (NodeId v : corrupted) {
    if (std::binary_search(detected.begin(), detected.end(), v)) ++hit;
  }
  return static_cast<double>(hit) / corrupted.size();
}

void RunSetting(const PropertyGraph& clean, const NoisyGraph& noisy,
                uint64_t sigma, uint32_t k, size_t gamma_size) {
  DiscoveryConfig cfg;
  cfg.k = k;
  cfg.support_threshold = sigma;
  GraphStats stats(clean);
  DiscoveryConfig probe;
  probe.max_active_attrs = 16;
  auto all_attrs = ResolveActiveAttrs(stats, probe);
  cfg.active_attrs.assign(
      all_attrs.begin(),
      all_attrs.begin() + std::min(gamma_size, all_attrs.size()));

  // GFDs.
  ParallelRunConfig pcfg;
  pcfg.workers = 8;
  auto gfds = ParDis(clean, cfg, pcfg).AllGfds();
  auto gfd_nodes = ViolationNodes(noisy.graph, gfds);
  double gfd_acc = Accuracy(gfd_nodes, noisy.corrupted);

  // GCFDs.
  auto gcfds = ParMineGcfds(clean, cfg, pcfg).AllGfds();
  auto gcfd_nodes = ViolationNodes(noisy.graph, gcfds);
  double gcfd_acc = Accuracy(gcfd_nodes, noisy.corrupted);

  // AMIE.
  AmieConfig acfg;
  acfg.min_support = 10;  // AMIE counts pairs, not pivots
  acfg.min_pca_confidence = 0.5;
  acfg.workers = 8;
  auto rules = MineAmieRules(clean, acfg);
  auto amie_nodes = AmieViolationNodes(noisy.graph, rules, 0.5);
  double amie_acc = Accuracy(amie_nodes, noisy.corrupted);

  std::printf("(%4lu,%u,%zu)            %9.1f%% %9.1f%% %9.1f%%\n",
              static_cast<unsigned long>(sigma), k, gamma_size,
              100 * gfd_acc, 100 * gcfd_acc, 100 * amie_acc);
}

}  // namespace

int main() {
  auto clean = Yago2Like(1500);
  NoiseConfig ncfg;
  ncfg.alpha = 0.05;
  ncfg.beta = 0.5;
  ncfg.edge_label_fraction = 0.3;  // give edge-only AMIE rules a target
  auto noisy = InjectNoise(clean, ncfg);
  PrintHeader("Fig 7", "error detection accuracy (alpha=5%, beta=50%)",
              clean);
  std::printf("corrupted nodes |V_E| = %zu\n", noisy.corrupted.size());
  PrintColumns("(sigma,k,|Gamma|)", {"GFDs", "GCFDs", "AMIE"});
  // Rows sweep sigma up (fewer rules -> lower recall), k down, and
  // |Gamma| down, mirroring the paper's trend directions.
  RunSetting(clean, noisy, 16, 3, 5);
  RunSetting(clean, noisy, 128, 3, 5);
  RunSetting(clean, noisy, 128, 2, 5);
  RunSetting(clean, noisy, 128, 3, 2);
  return 0;
}
