// Reproduces Fig. 5(b): parallel scalability on the YAGO2-shaped graph.
#include "scal_common.h"

int main() {
  auto g = gfd::bench::Yago2Like();
  return gfd::bench::RunScalabilityFigure("Fig 5(b)", "YAGO2-like", g);
}
