// Distributed serving smoke bench, run as a ctest entry on every CI
// build next to bench_delta_log: times the coordinator's merged-diff
// serving step (validation + routed shipping + per-fragment incremental
// detection + master-side merge) against fragment counts {1, 2, 4, 8} on
// a YAGO2-shaped graph at scale 300. Records, per fragment count, the
// bytes shipped per batch through the Cluster ledger split into routed
// owned-op traffic vs border-halo maintenance, and the storage footprint
// of vertex-cut sharding: resident edges per fragment and the measured
// replication factor (sum of fragment edges / |E|), which stays a small
// constant instead of the fragment count. Every per-batch merged diff is
// verified byte-identical to single-node GraphStore AppendAndDiff over
// the same payload stream. Timings land in BENCH_distributed.json.
//
// Usage: bench_distributed [output.json]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "datagen/noise.h"
#include "detect/engine.h"
#include "detect/metrics.h"
#include "graph/graph_view.h"
#include "graph/loader.h"
#include "pattern/canonical.h"
#include "serve/coordinator.h"
#include "serve/graph_store.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace gfd;
using namespace gfd::bench;

namespace fs = std::filesystem;

namespace {

struct Row {
  std::string name;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> counters;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror(path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"gfd-bench-distributed-v1\",\n");
  std::fprintf(f, "  \"benches\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"seconds\": %.6f",
                 r.name.c_str(), r.seconds);
    for (const auto& [k, v] : r.counters) {
      std::fprintf(f, ", \"%s\": %.3f", k.c_str(), v);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Same serving-shaped workload as bench_incremental: the largest pattern
// groups of a mined cover, up to `per_group` literal variants each.
std::vector<Gfd> BuildWorkload(const PropertyGraph& g, size_t max_groups,
                               size_t per_group) {
  auto cfg = ScaledConfig(g);
  auto all = SeqDis(g, cfg).AllGfds();
  std::unordered_map<std::vector<uint32_t>, std::vector<size_t>, VecHash>
      by_code;
  for (size_t i = 0; i < all.size(); ++i) {
    by_code[CanonicalCode(all[i].pattern, /*fix_pivot=*/true)].push_back(i);
  }
  std::vector<std::vector<size_t>> groups;
  for (auto& [code, members] : by_code) groups.push_back(std::move(members));
  std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
    return a.size() != b.size() ? a.size() > b.size() : a[0] < b[0];
  });
  std::vector<Gfd> rules;
  for (size_t gi = 0; gi < groups.size() && gi < max_groups; ++gi) {
    for (size_t i = 0; i < groups[gi].size() && i < per_group; ++i) {
      rules.push_back(std::move(all[groups[gi][i]]));
    }
  }
  return rules;
}

// A batch stream over the evolving state: inserts with label-plausible
// endpoints, deletes of live edges, attribute sets (some brand-new
// values). Serialized as the TSV every store consumes verbatim.
std::vector<std::string> MakeStream(const PropertyGraph& g0, size_t batches,
                                    size_t ops_per_batch, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> payloads;
  PropertyGraph current = g0;
  for (size_t b = 0; b < batches; ++b) {
    GraphDelta d;
    std::vector<bool> gone(current.NumEdges(), false);
    for (size_t i = 0; i < ops_per_batch; ++i) {
      double roll = rng.NextDouble();
      if (roll < 0.45) {
        EdgeId e = static_cast<EdgeId>(rng.Below(current.NumEdges()));
        EdgeId e2 = static_cast<EdgeId>(rng.Below(current.NumEdges()));
        d.InsertEdge(current.EdgeSrc(e), current.EdgeDst(e2),
                     current.EdgeLabel(e));
      } else if (roll < 0.7) {
        EdgeId e = static_cast<EdgeId>(rng.Below(current.NumEdges()));
        if (gone[e]) continue;
        gone[e] = true;
        d.DeleteEdge(current.EdgeSrc(e), current.EdgeDst(e),
                     current.EdgeLabel(e));
      } else {
        NodeId v = static_cast<NodeId>(rng.Below(current.NumNodes()));
        auto attrs = current.NodeAttrs(v);
        if (attrs.empty()) continue;
        AttrId key = attrs[rng.Below(attrs.size())].key;
        ValueId val;
        if (rng.Chance(0.25)) {
          val = d.InternValue(current,
                              "patched_" + std::to_string(rng.Below(8)));
        } else {
          val = static_cast<ValueId>(rng.Below(current.values().size()));
        }
        d.SetAttr(v, key, val);
      }
    }
    std::ostringstream os;
    SaveGraphDeltaTsv(current, d, os);
    payloads.push_back(std::move(os).str());
    current = GraphView::Apply(current, d)->Materialize();
  }
  return payloads;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_distributed.json";

  auto clean = Yago2Like(300);
  auto rules = BuildWorkload(clean, /*max_groups=*/10, /*per_group=*/25);
  auto noisy = InjectNoise(clean, {.alpha = 0.08, .beta = 0.6, .seed = 3});
  const PropertyGraph& g0 = noisy.graph;

  ViolationEngine engine(rules);
  std::printf("workload: %zu rules in %zu pattern groups on |V|=%zu "
              "|E|=%zu (+noise)\n",
              engine.NumRules(), engine.NumGroups(), g0.NumNodes(),
              g0.NumEdges());
  if (engine.NumRules() < 20 || engine.NumGroups() < 5) {
    std::fprintf(stderr, "workload too small to be meaningful\n");
    return 1;
  }

  const size_t kBatches = 6;
  const size_t kOps = std::max<size_t>(4, g0.NumEdges() / 200);
  auto payloads = MakeStream(g0, kBatches, kOps, /*seed=*/17);
  std::string root =
      (fs::temp_directory_path() / "gfd_bench_distributed").string();
  fs::remove_all(root);

  std::vector<Row> rows;
  bool verified = true;

  // Single-node reference: the same stream through one GraphStore.
  std::vector<IncrementalDiff> want;
  double single_s = 0;
  {
    std::string dir = root + "/single";
    std::string error;
    if (!GraphStore::Init(dir, g0, &error)) {
      std::fprintf(stderr, "init failed: %s\n", error.c_str());
      return 1;
    }
    auto store = GraphStore::Open(dir, {}, &error);
    if (!store) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    WallTimer t;
    for (const std::string& p : payloads) {
      auto diff = AppendAndDiff(*store, engine, p, {}, nullptr, &error);
      if (!diff) {
        std::fprintf(stderr, "append failed: %s\n", error.c_str());
        return 1;
      }
      want.push_back(std::move(*diff));
    }
    single_s = t.Seconds();
    size_t added = 0, removed = 0;
    for (const auto& d : want) {
      added += d.added.size();
      removed += d.removed.size();
    }
    std::printf("%-24s %8.3fs  %zu batches x %zu ops, +%zu -%zu\n",
                "single_node", single_s, kBatches, kOps, added, removed);
    rows.push_back({"single_node",
                    single_s,
                    {{"batches", double(kBatches)},
                     {"batch_ops", double(kOps)},
                     {"added", double(added)},
                     {"removed", double(removed)}}});
  }

  // Distributed: merged-diff latency and shipped bytes vs. fragment count.
  for (size_t fragments : {1UL, 2UL, 4UL, 8UL}) {
    // Provision the smallest halo the workload can be served with: the
    // widest rule pattern's radius. A larger halo only inflates the
    // replication factor without changing any result.
    const uint32_t radius = std::max<uint32_t>(1, engine.MaxPatternRadius());
    std::string dir = root + "/f" + std::to_string(fragments);
    std::string error;
    if (!Coordinator::Init(dir, g0, fragments, radius, &error)) {
      std::fprintf(stderr, "init failed: %s\n", error.c_str());
      return 1;
    }
    auto coord = Coordinator::Open(dir, {}, &error);
    if (!coord) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    bool ok = true;
    // Deterministic-work counters for the warn-only perf-gate class:
    // routed/maintenance op deltas come off CoordinatorStats, enumerated
    // matches off the process metrics registry.
    uint64_t matches_before = DetectMatchesEnumerated().Value();
    WallTimer t;
    for (size_t b = 0; b < payloads.size(); ++b) {
      auto diff =
          coord->AppendAndDiff(engine, payloads[b], {}, nullptr, &error);
      if (!diff) {
        std::fprintf(stderr, "append failed: %s\n", error.c_str());
        return 1;
      }
      ok = ok && diff->added == want[b].added &&
           diff->removed == want[b].removed;
    }
    double s = t.Seconds();
    verified = verified && ok;
    uint64_t matches_enumerated =
        DetectMatchesEnumerated().Value() - matches_before;
    CoordinatorStats st = coord->stats();
    double bytes_per_batch =
        static_cast<double>(st.bytes_shipped) / double(kBatches);
    double owned_per_batch =
        static_cast<double>(st.bytes_owned_shipped) / double(kBatches);
    double halo_per_batch =
        static_cast<double>(st.bytes_halo_shipped) / double(kBatches);
    uint64_t resident_total = 0, resident_max = 0;
    for (size_t f = 0; f < fragments; ++f) {
      uint64_t r = coord->resident_edges(f);
      resident_total += r;
      resident_max = std::max(resident_max, r);
    }
    PropertyGraph current = coord->MaterializeCurrent();
    double replication =
        static_cast<double>(resident_total) / double(current.NumEdges());
    std::string name = "distributed_f" + std::to_string(fragments);
    std::printf("%-24s %8.3fs  %.0f bytes/batch shipped (%.0f owned-op + "
                "%.0f border-halo), %llu messages, %llu resident edges "
                "(replication %.2f), diffs %s\n",
                name.c_str(), s, bytes_per_batch, owned_per_batch,
                halo_per_batch, static_cast<unsigned long long>(st.messages),
                static_cast<unsigned long long>(resident_total), replication,
                ok ? "identical" : "DIVERGED");
    rows.push_back({name,
                    s,
                    {{"fragments", double(fragments)},
                     {"halo_radius", double(radius)},
                     {"batches", double(kBatches)},
                     {"shipped_bytes_per_batch", bytes_per_batch},
                     {"owned_bytes_per_batch", owned_per_batch},
                     {"halo_bytes_per_batch", halo_per_batch},
                     {"resident_edges_total", double(resident_total)},
                     {"resident_edges_max", double(resident_max)},
                     {"replication_measured", replication},
                     {"messages", double(st.messages)},
                     {"ops_routed_total", double(st.ops_routed)},
                     {"ops_maintenance_total", double(st.ops_maintenance)},
                     {"matches_enumerated", double(matches_enumerated)},
                     {"verified", ok ? 1.0 : 0.0}}});
  }

  rows.push_back({"summary", 0, {{"verified", verified ? 1.0 : 0.0}}});
  std::printf("merged diffs vs single-node: %s\n",
              verified ? "identical" : "DIVERGED");

  fs::remove_all(root);
  WriteJson(out, rows);
  std::printf("wrote %s\n", out);
  return verified ? 0 : 1;
}
