// Reproduces the narrative result of Section 7 ("Infeasibility of ParGFDn
// and ParArab"): without Lemma-4 pruning the candidate space explodes past
// any budget, and the split Arabesque-style pipeline blows its embedding
// store -- while DisGFD completes comfortably on the same inputs.
#include "baselines/arab.h"
#include "bench_util.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  auto g = Yago2Like(1500);
  auto cfg = ScaledConfig(g);
  PrintHeader("Infeasibility", "ParGFDn and ParArab vs DisGFD", g);

  auto ok = TimeParDis(g, cfg, 8, true);
  std::printf("DisGFD:   completed in %.2fs (%zu pos, %zu neg)\n",
              ok.seconds, ok.positives, ok.negatives);

  // ParGFDn: no pruning, with 16x the candidates DisGFD needed.
  DiscoveryConfig nop = cfg;
  nop.prune = false;
  ParallelRunConfig pcfg;
  pcfg.workers = 8;
  {
    auto probe = ParDis(g, cfg, pcfg);
    nop.candidate_budget = probe.stats.candidates_generated * 16;
    WallTimer t;
    auto res = ParDis(g, nop, pcfg);
    std::printf("ParGFDn:  %s after %.2fs (%lu candidates generated, budget "
                "%lu)\n",
                res.stats.budget_exceeded ? "FAILED (budget exceeded)"
                                          : "completed",
                t.Seconds(),
                static_cast<unsigned long>(res.stats.candidates_generated),
                static_cast<unsigned long>(nop.candidate_budget));
  }

  // ParArab: the split pipeline must RETAIN every frequent pattern's
  // embeddings at once, while the integrated miner holds one pattern's
  // matches at a time. Budget = 4x DisGFD's peak working set.
  {
    auto probe = ParDis(g, cfg, pcfg);
    ArabConfig acfg;
    acfg.max_total_matches = probe.stats.max_pattern_matches * 4;
    WallTimer t;
    auto res = ParArab(g, cfg, acfg);
    std::printf("ParArab:  %s after %.2fs (%lu matches retained, store "
                "budget %lu = 4x DisGFD's peak working set of %lu)\n",
                res.failed ? "FAILED (embedding store exceeded)"
                           : "completed",
                t.Seconds(),
                static_cast<unsigned long>(res.matches_materialized),
                static_cast<unsigned long>(acfg.max_total_matches),
                static_cast<unsigned long>(probe.stats.max_pattern_matches));
  }
  return 0;
}
