// Reproduces Fig. 5(a): parallel scalability of DisGFD vs ParGFDnb on the
// DBpedia-shaped graph. Shape targets: time falls as n grows; DisGFD
// outperforms ParGFDnb (load balancing matters most on the densest graph).
#include "scal_common.h"

int main() {
  // Scale chosen so per-worker work dominates superstep barriers at n=16
  // (the paper's graphs are orders of magnitude larger still).
  auto g = gfd::bench::DbpediaLike(3500);
  return gfd::bench::RunScalabilityFigure("Fig 5(a)", "DBpedia-like", g);
}
