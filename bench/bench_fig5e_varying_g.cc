// Reproduces Fig. 5(e): DisGFD scalability with synthetic graph size.
// The paper sweeps (10M,20M)..(30M,60M); we run the same 1:2 node:edge
// series scaled down ~1000x. Shape target: time grows with |G| but stays
// feasible end to end.
#include "datagen/synthetic.h"

#include "bench_util.h"

using namespace gfd;
using namespace gfd::bench;

int main() {
  std::printf("\n=== Fig 5(e): DisGFD vs ParGFDnb, varying |G| (synthetic, "
              "n=8) ===\n");
  PrintColumns("(|V|,|E|)", {"DisGFD(s)", "ParGFDnb(s)", "#pos", "#neg"});
  for (size_t base : {10, 15, 20, 25, 30}) {
    SyntheticConfig scfg;
    scfg.nodes = base * 1000;
    scfg.edges = base * 2000;
    // Exact per-label attribute regularities, so positive rules exist to
    // be found (the 0.8 default models dirty data, under which no exact
    // rule survives validation).
    scfg.value_correlation = 1.0;
    auto g = MakeSynthetic(scfg);
    DiscoveryConfig cfg;
    cfg.k = 3;
    cfg.support_threshold = scfg.nodes / 50;
    cfg.max_lhs_size = 1;
    auto balanced = TimeParDis(g, cfg, 8, true);
    auto unbalanced = TimeParDis(g, cfg, 8, false);
    char label[64];
    std::snprintf(label, sizeof(label), "(%zuk,%zuk)", base, 2 * base);
    std::printf("%-24s %10.2f %10.2f %10zu %10zu\n", label, balanced.seconds,
                unbalanced.seconds, balanced.positives, balanced.negatives);
  }
  return 0;
}
