// Violation-detection smoke bench, run as a ctest entry on every CI
// build next to bench_smoke: mines a rule workload from a clean YAGO2-
// shaped graph, corrupts a copy, and times error detection over it four
// ways -- the naive per-GFD validation loop, the batched engine on one
// thread (isolating the shared-match-plan win), the engine on 4 threads,
// and the sharded vertex-cut path. All four are cross-checked to report
// the identical violation multiset; timings land in BENCH_detect.json.
//
// Usage: bench_detect [output.json]
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "datagen/noise.h"
#include "detect/engine.h"
#include "parallel/fragment.h"
#include "pattern/canonical.h"
#include "util/hash.h"

using namespace gfd;
using namespace gfd::bench;

namespace {

struct Row {
  std::string name;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> counters;
};

void WriteJson(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror(path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"gfd-bench-detect-v1\",\n");
  std::fprintf(f, "  \"benches\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"seconds\": %.6f",
                 r.name.c_str(), r.seconds);
    for (const auto& [k, v] : r.counters) {
      std::fprintf(f, ", \"%s\": %.3f", k.c_str(), v);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Mined rule sets are dominated by literal variants over few pattern
// topologies (at scale 300, ~4.6k rules over ~260 patterns). The serving
// workload keeps the `max_groups` largest pattern groups, up to
// `per_group` rules each -- the shape a deployed checker actually runs.
std::vector<Gfd> BuildWorkload(const PropertyGraph& g, size_t max_groups,
                               size_t per_group) {
  auto cfg = ScaledConfig(g);
  auto all = SeqDis(g, cfg).AllGfds();
  std::unordered_map<std::vector<uint32_t>, std::vector<size_t>, VecHash>
      by_code;
  for (size_t i = 0; i < all.size(); ++i) {
    by_code[CanonicalCode(all[i].pattern, /*fix_pivot=*/true)].push_back(i);
  }
  std::vector<std::vector<size_t>> groups;
  for (auto& [code, members] : by_code) groups.push_back(std::move(members));
  std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
    return a.size() != b.size() ? a.size() > b.size() : a[0] < b[0];
  });
  std::vector<Gfd> rules;
  for (size_t gi = 0; gi < groups.size() && gi < max_groups; ++gi) {
    for (size_t i = 0; i < groups[gi].size() && i < per_group; ++i) {
      rules.push_back(std::move(all[groups[gi][i]]));
    }
  }
  return rules;
}

// Min of `reps` timed runs (sub-10ms bodies need the min to be stable).
template <typename Fn>
double TimedMin(int reps, const Fn& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.Seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_detect.json";

  auto clean = Yago2Like(300);
  auto rules = BuildWorkload(clean, /*max_groups=*/10, /*per_group=*/25);
  auto noisy = InjectNoise(clean, {.alpha = 0.08, .beta = 0.6, .seed = 3});

  ViolationEngine engine(rules);
  std::printf("workload: %zu rules in %zu pattern groups on |V|=%zu "
              "|E|=%zu (+noise)\n",
              engine.NumRules(), engine.NumGroups(), noisy.graph.NumNodes(),
              noisy.graph.NumEdges());
  if (engine.NumRules() < 20 || engine.NumGroups() < 5) {
    std::fprintf(stderr, "workload too small to be meaningful\n");
    return 1;
  }

  std::vector<Row> rows;
  auto add = [&](std::string name, double seconds,
                 const DetectionResult& r) {
    Row row{std::move(name), seconds, {}};
    row.counters.emplace_back("rules", double(engine.NumRules()));
    row.counters.emplace_back("groups", double(r.stats.num_groups));
    row.counters.emplace_back("violations", double(r.violations.size()));
    row.counters.emplace_back("matches_seen", double(r.stats.matches_seen));
    std::printf("%-24s %8.3fs  %zu violations, %lu matches\n",
                row.name.c_str(), seconds, r.violations.size(),
                static_cast<unsigned long>(r.stats.matches_seen));
    rows.push_back(std::move(row));
  };

  const int kReps = 3;
  DetectionResult naive, batched, batched4, sharded;
  double naive_s =
      TimedMin(kReps, [&] { naive = DetectNaive(noisy.graph, rules); });
  add("detect_naive_per_gfd", naive_s, naive);

  double batched_s = TimedMin(
      kReps, [&] { batched = engine.Detect(noisy.graph, {.workers = 1}); });
  add("detect_batched_w1", batched_s, batched);

  double batched4_s = TimedMin(
      kReps, [&] { batched4 = engine.Detect(noisy.graph, {.workers = 4}); });
  add("detect_batched_w4", batched4_s, batched4);

  auto frag = VertexCutPartition(noisy.graph, 4);
  double sharded_s = TimedMin(
      kReps, [&] { sharded = engine.DetectSharded(noisy.graph, frag); });
  add("detect_sharded_f4", sharded_s, sharded);

  bool agree = batched.violations == naive.violations &&
               batched4.violations == naive.violations &&
               sharded.violations == naive.violations;
  double speedup = batched_s > 0 ? naive_s / batched_s : 0;
  rows.push_back({"summary",
                  0,
                  {{"verified", agree ? 1.0 : 0.0},
                   {"speedup_w1_vs_naive", speedup}}});
  std::printf("batched(w1) vs naive: %.2fx; outputs %s\n", speedup,
              agree ? "identical" : "DIVERGED");

  WriteJson(out, rows);
  std::printf("wrote %s\n", out);
  return agree ? 0 : 1;
}
