// Micro-benchmarks of the three fundamental problems (Section 3,
// google-benchmark): satisfiability and implication are FPT (cheap,
// symbolic, independent of |G|); validation pays the |G|^k isomorphism
// cost and grows with both the graph and k -- exactly Theorem 1's split.
#include <benchmark/benchmark.h>

#include "datagen/gfd_gen.h"
#include "datagen/kb.h"
#include "gfd/problems.h"
#include "gfd/validation.h"

namespace gfd {
namespace {

PropertyGraph Kb(size_t scale) {
  return MakeYago2Like({.scale = scale, .seed = 7});
}

std::vector<Gfd> Rules(const PropertyGraph& g, size_t count, uint32_t k) {
  GfdGenConfig cfg;
  cfg.count = count;
  cfg.k = k;
  return GenerateGfdSet(g, cfg);
}

void BM_Satisfiability(benchmark::State& state) {
  auto g = Kb(500);
  auto sigma = Rules(g, state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSatisfiable(sigma));
  }
}
BENCHMARK(BM_Satisfiability)->Arg(50)->Arg(200)->Arg(800);

void BM_Implication(benchmark::State& state) {
  auto g = Kb(500);
  auto sigma = Rules(g, state.range(0), 4);
  const Gfd& phi = sigma.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Implies(sigma, phi));
  }
}
BENCHMARK(BM_Implication)->Arg(50)->Arg(200)->Arg(800);

void BM_ImplicationVsK(benchmark::State& state) {
  auto g = Kb(500);
  auto sigma = Rules(g, 200, static_cast<uint32_t>(state.range(0)));
  const Gfd& phi = sigma.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Implies(sigma, phi));
  }
}
BENCHMARK(BM_ImplicationVsK)->Arg(2)->Arg(4)->Arg(6);

// Validation must enumerate matches: use a GFD that *holds* (the planted
// familyname rule) so the scan cannot short-circuit on a violation.
Gfd ChainRule(const PropertyGraph& g, uint32_t k) {
  Pattern p;
  LabelId child = *g.FindLabel("hasChild");
  AttrId fam = *g.FindAttr("familyname");
  VarId prev = p.AddNode(kWildcardLabel);
  p.set_pivot(prev);
  for (uint32_t i = 1; i < k; ++i) {
    VarId next = p.AddNode(kWildcardLabel);
    p.AddEdge(prev, next, child);
    prev = next;
  }
  return Gfd(p, {}, Literal::Vars(0, fam, prev, fam));
}

void BM_ValidationVsGraph(benchmark::State& state) {
  auto g = Kb(state.range(0));
  Gfd phi = ChainRule(g, 3);
  CompiledPattern cq(phi.pattern);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateGfd(g, cq, phi));
  }
  state.SetLabel("|V|=" + std::to_string(g.NumNodes()));
}
BENCHMARK(BM_ValidationVsGraph)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_ValidationVsK(benchmark::State& state) {
  auto g = Kb(500);
  Gfd phi = ChainRule(g, static_cast<uint32_t>(state.range(0)));
  CompiledPattern cq(phi.pattern);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateGfd(g, cq, phi));
  }
}
BENCHMARK(BM_ValidationVsK)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace gfd

BENCHMARK_MAIN();
