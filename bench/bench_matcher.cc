// Micro-benchmarks of the matching substrate (google-benchmark): pivoted
// subgraph isomorphism and the distributed incremental join primitive
// (Section 6.2's work unit), including the claim that joining previously
// verified matches beats re-matching from scratch.
#include <benchmark/benchmark.h>

#include "datagen/kb.h"
#include "match/incremental.h"
#include "match/matcher.h"

namespace gfd {
namespace {

const PropertyGraph& Graph() {
  static PropertyGraph g = MakeYago2Like({.scale = 2000, .seed = 7});
  return g;
}

Pattern ChainPattern(const PropertyGraph& g, int len) {
  Pattern p;
  LabelId child = *g.FindLabel("hasChild");
  VarId prev = p.AddNode(kWildcardLabel);
  p.set_pivot(prev);
  for (int i = 0; i < len; ++i) {
    VarId next = p.AddNode(kWildcardLabel);
    p.AddEdge(prev, next, child);
    prev = next;
  }
  return p;
}

void BM_PatternSupport(benchmark::State& state) {
  const auto& g = Graph();
  CompiledPattern cq(ChainPattern(g, state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternSupport(g, cq));
  }
  state.SetLabel("chain length " + std::to_string(state.range(0)));
}
BENCHMARK(BM_PatternSupport)->Arg(1)->Arg(2)->Arg(3);

void BM_FullEnumeration(benchmark::State& state) {
  const auto& g = Graph();
  CompiledPattern cq(ChainPattern(g, state.range(0)));
  for (auto _ : state) {
    uint64_t n = 0;
    cq.ForEachMatch(g, [&n](const Match&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_FullEnumeration)->Arg(1)->Arg(2)->Arg(3);

void BM_IncrementalJoin(benchmark::State& state) {
  const auto& g = Graph();
  Pattern base = ChainPattern(g, 1);
  Pattern ext = ChainPattern(g, 2);
  std::vector<Match> base_matches;
  CompiledPattern cb(base);
  cb.ForEachMatch(g, [&](const Match& m) {
    base_matches.push_back(m);
    return true;
  });
  LabelId child = *g.FindLabel("hasChild");
  DeltaEdge delta{1, 2, child, 2, kWildcardLabel};
  auto cands = CollectCandidateEdges(g, kWildcardLabel, child,
                                     kWildcardLabel);
  for (auto _ : state) {
    auto joined = JoinMatchesWithEdges(base_matches, delta, cands);
    benchmark::DoNotOptimize(joined);
  }
}
BENCHMARK(BM_IncrementalJoin);

void BM_RematchFromScratch(benchmark::State& state) {
  const auto& g = Graph();
  CompiledPattern cq(ChainPattern(g, 2));
  for (auto _ : state) {
    std::vector<Match> all;
    cq.ForEachMatch(g, [&](const Match& m) {
      all.push_back(m);
      return true;
    });
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_RematchFromScratch);

}  // namespace
}  // namespace gfd

BENCHMARK_MAIN();
