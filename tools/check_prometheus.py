#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (as gfdtool emits it).

Checks the structural rules a scraper relies on:

  * metric and label names match the Prometheus grammar
  * every family has exactly one # HELP and one # TYPE line, HELP first,
    both before any sample of that family
  * samples of one family are contiguous (no interleaving) and no family
    appears twice
  * label values use only the \\\\, \\", and \\n escapes; HELP text only
    \\\\ and \\n
  * counter and histogram sample values are non-negative; counters and
    bucket counts are integers
  * histogram invariants: le edges strictly ascending and ending in
    +Inf, cumulative bucket counts monotone, the +Inf bucket equals
    _count, and _sum/_count present exactly once per label set

Usage: check_prometheus.py [FILE]   (reads stdin without FILE)
Exits 0 when valid, 1 with one "line N: ..." message per defect.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  -- labels optional; value is the last token.
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(token):
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    return float(token)


def check_escapes(raw, allow_quote_escape, errors, lineno, what):
    i = 0
    while i < len(raw):
        if raw[i] == "\\":
            nxt = raw[i + 1] if i + 1 < len(raw) else ""
            if nxt not in ("\\", "n") + (('"',) if allow_quote_escape else ()):
                errors.append(f"line {lineno}: bad escape '\\{nxt}' in {what}")
            i += 2
        elif raw[i] == '"' and allow_quote_escape:
            errors.append(f"line {lineno}: unescaped '\"' in {what}")
            i += 1
        else:
            i += 1


def base_family(name):
    """The family a sample belongs to: strips histogram sample suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


class Family:
    def __init__(self, kind):
        self.kind = kind  # counter | gauge | histogram | untyped
        self.saw_help = False
        self.closed = False  # a different family's sample appeared after
        self.label_sets = set()
        # histogram state per label signature (labels minus le)
        self.buckets = {}  # sig -> list of (le, cumulative_count)
        self.sums = {}  # sig -> value
        self.counts = {}  # sig -> value


def main():
    if len(sys.argv) > 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as f:
            lines = f.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    errors = []
    families = {}
    current = None  # family name whose sample block is open

    for lineno, line in enumerate(lines, 1):
        if not line:
            errors.append(f"line {lineno}: blank line")
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            if not METRIC_NAME.match(name):
                errors.append(f"line {lineno}: bad metric name '{name}'")
                continue
            if name in families:
                errors.append(f"line {lineno}: duplicate family '{name}'")
                continue
            fam = Family("untyped")
            fam.saw_help = True
            families[name] = fam
            check_escapes(help_text, False, errors, lineno, "HELP text")
            current = None
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            if len(parts) != 2:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                errors.append(f"line {lineno}: unknown type '{kind}'")
                continue
            fam = families.get(name)
            if fam is None or not fam.saw_help:
                errors.append(f"line {lineno}: TYPE for '{name}' without a "
                              "preceding HELP")
                fam = families.setdefault(name, Family(kind))
            if fam.kind != "untyped":
                errors.append(f"line {lineno}: duplicate TYPE for '{name}'")
            fam.kind = kind
            current = name
            continue
        if line.startswith("#"):
            continue  # comment

        m = SAMPLE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        sample_name, _, label_body, value_token = m.groups()
        try:
            value = parse_value(value_token)
        except ValueError:
            errors.append(f"line {lineno}: bad sample value '{value_token}'")
            continue

        fam_name, suffix = base_family(sample_name)
        fam = families.get(fam_name)
        if fam is None or fam.kind != "histogram":
            # _bucket/_sum/_count only mean "histogram sample" when the
            # base family is one; else the full name is the family.
            fam_name, suffix = sample_name, ""
            fam = families.get(fam_name)
        if fam is None:
            errors.append(f"line {lineno}: sample for unannounced family "
                          f"'{fam_name}'")
            continue
        if fam.kind == "untyped" and fam.saw_help:
            errors.append(f"line {lineno}: sample for '{fam_name}' before "
                          "its TYPE line")
        if current != fam_name:
            if fam.closed:
                errors.append(f"line {lineno}: samples of '{fam_name}' are "
                              "interleaved with another family")
            if current is not None and current in families:
                families[current].closed = True
            current = fam_name

        labels = []
        if label_body is not None:
            stripped = LABEL_PAIR.sub("", label_body)
            if stripped.strip(","):
                errors.append(f"line {lineno}: malformed label body "
                              f"'{{{label_body}}}'")
            for lm in LABEL_PAIR.finditer(label_body):
                key, raw_value = lm.group(1), lm.group(2)
                if not LABEL_NAME.match(key):
                    errors.append(f"line {lineno}: bad label name '{key}'")
                check_escapes(raw_value, True, errors, lineno,
                              f"label '{key}'")
                labels.append((key, raw_value))

        if fam.kind == "counter":
            if suffix:
                errors.append(f"line {lineno}: suffix '{suffix}' on counter")
            if value < 0 or value != int(value):
                errors.append(f"line {lineno}: counter value must be a "
                              f"non-negative integer, got {value_token}")
            key = tuple(labels)
            if key in fam.label_sets:
                errors.append(f"line {lineno}: duplicate sample")
            fam.label_sets.add(key)
        elif fam.kind == "gauge":
            key = tuple(labels)
            if key in fam.label_sets:
                errors.append(f"line {lineno}: duplicate sample")
            fam.label_sets.add(key)
        elif fam.kind == "histogram":
            sig = tuple(p for p in labels if p[0] != "le")
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: _bucket without le label")
                    continue
                try:
                    edge = parse_value(le)
                except ValueError:
                    errors.append(f"line {lineno}: bad le value '{le}'")
                    continue
                if value < 0 or value != int(value):
                    errors.append(f"line {lineno}: bucket count must be a "
                                  f"non-negative integer, got {value_token}")
                series = fam.buckets.setdefault(sig, [])
                if series:
                    prev_edge, prev_count = series[-1]
                    if edge <= prev_edge:
                        errors.append(f"line {lineno}: le edges not "
                                      "ascending")
                    if value < prev_count:
                        errors.append(f"line {lineno}: cumulative bucket "
                                      "counts decreased")
                series.append((edge, value))
            elif suffix == "_sum":
                if sig in fam.sums:
                    errors.append(f"line {lineno}: duplicate _sum")
                fam.sums[sig] = value
            elif suffix == "_count":
                if sig in fam.counts:
                    errors.append(f"line {lineno}: duplicate _count")
                if value < 0 or value != int(value):
                    errors.append(f"line {lineno}: _count must be a "
                                  f"non-negative integer, got {value_token}")
                fam.counts[sig] = value
            else:
                errors.append(f"line {lineno}: bare sample '{sample_name}' "
                              "for histogram family")

    # Whole-file histogram invariants.
    for name, fam in families.items():
        if fam.kind != "histogram":
            continue
        for sig in set(fam.buckets) | set(fam.sums) | set(fam.counts):
            where = f"histogram '{name}'" + (f" {dict(sig)}" if sig else "")
            series = fam.buckets.get(sig)
            if not series:
                errors.append(f"{where}: no _bucket samples")
                continue
            if series[-1][0] != float("inf"):
                errors.append(f"{where}: bucket series does not end in +Inf")
            if sig not in fam.counts:
                errors.append(f"{where}: missing _count")
            elif series[-1][0] == float("inf") and \
                    series[-1][1] != fam.counts[sig]:
                errors.append(f"{where}: +Inf bucket {series[-1][1]:.0f} != "
                              f"_count {fam.counts[sig]:.0f}")
            if sig not in fam.sums:
                errors.append(f"{where}: missing _sum")

    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        total = sum(1 for f in families.values())
        print(f"ok: {total} families, {len(lines)} lines")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
