#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory files.

Compares every BENCH_*.json under --current against the file of the same
name under --baseline (the artifact downloaded from the latest successful
main run) and fails when any timed metric slowed down by more than
--threshold. Metrics are the per-bench "seconds" fields; most counter
fields (violations, matches, ...) are informational and never gate.

The exception is the distributed footprint/traffic counters
(resident_edges_*, replication_measured, *_bytes_per_batch): those are
deterministic, so growth beyond the threshold gates exactly like a
slowdown -- a replication-factor or shipped-bytes blowup is a storage
regression even when wall-clock stays flat. A counter present in this
run but absent from the baseline reports "new, no baseline" and passes
(warn-only bootstrap, same as a brand-new bench).

A second class of deterministic work counters (ops routed, matches
enumerated, touched matches) is compared and reported but warn-only:
drift there flags an algorithmic-shape change for review without ever
failing the gate.

Rows faster than --min-seconds in the baseline are skipped: at
sub-10-millisecond scale, CI-runner jitter swamps any real signal.
Gated counters have no such floor.

Exit codes: 0 ok / baseline missing (warn-only bootstrap), 1 regression,
2 usage or malformed input.
"""

import argparse
import json
import os
import sys
from pathlib import Path


# Deterministic counters that gate on growth like a slowdown would.
GATED_COUNTERS = (
    "resident_edges_total",
    "resident_edges_max",
    "replication_measured",
    "shipped_bytes_per_batch",
    "owned_bytes_per_batch",
    "halo_bytes_per_batch",
    # Planner decisions and footprint-gate coverage from bench_incremental
    # are deterministic for a fixed workload: a planner flipping to the
    # full path where it used to pick incremental, or a pattern group
    # losing its skip eligibility, is a detection-cost regression even
    # when this runner's wall-clock hides it.
    "planner_full_decision",
    "groups_scanned",
)

# Deterministic work counters that are compared and reported but never
# fail the gate: drift here means the workload or algorithm changed shape
# (more ops routed, more matches enumerated), which a PR may well intend.
# The WARN line makes an unintended change visible in review instead of
# blocking it.
WARN_COUNTERS = (
    "ops_routed_total",
    "ops_maintenance_total",
    "matches_enumerated",
    "touched_matches",
    "groups_skipped",
)


def load_benches(path):
    """Returns {bench name: {metric: value}} for one BENCH_*.json file.

    Every bench maps its "seconds" plus any gated counters it carries.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benches", []):
        name = row.get("name")
        seconds = row.get("seconds")
        if name is None or not isinstance(seconds, (int, float)):
            continue
        metrics = {"seconds": float(seconds)}
        for key in GATED_COUNTERS + WARN_COUNTERS:
            if isinstance(row.get(key), (int, float)):
                metrics[key] = float(row[key])
        out[name] = metrics
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="directory holding this build's BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="directory holding the baseline BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="ignore baseline rows faster than this")
    args = parser.parse_args()

    current_files = sorted(Path(args.current).glob("BENCH_*.json"))
    if not current_files:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 2

    baseline_dir = Path(args.baseline)
    if not baseline_dir.is_dir() or not any(baseline_dir.glob("BENCH_*.json")):
        print(f"warn: no baseline under {args.baseline}; "
              "skipping the perf gate (bootstrap run)")
        return 0

    regressions = []
    lines = []
    for cur_path in current_files:
        base_path = baseline_dir / cur_path.name
        try:
            cur = load_benches(cur_path)
            base = load_benches(base_path) if base_path.exists() else {}
        except (json.JSONDecodeError, OSError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        for name, base_metrics in sorted(base.items()):
            if name not in cur:
                lines.append((cur_path.name, name,
                              f"{base_metrics['seconds']:.3f}", "-", "dropped"))
                continue
            cur_metrics = cur[name]
            for key, base_v in sorted(base_metrics.items()):
                label = name if key == "seconds" else f"{name}.{key}"
                if key not in cur_metrics:
                    lines.append((cur_path.name, label, f"{base_v:.3f}", "-",
                                  "dropped"))
                    continue
                cur_v = cur_metrics[key]
                if key == "seconds" and base_v < args.min_seconds:
                    continue  # sub-jitter rows never gate
                if base_v <= 0:
                    continue  # zero baselines have no meaningful ratio
                ratio = (cur_v - base_v) / base_v
                status = "ok"
                if key in WARN_COUNTERS:
                    if abs(ratio) > args.threshold:
                        status = "WARN drift (not gated)"
                elif ratio > args.threshold:
                    status = "REGRESSION"
                    regressions.append((cur_path.name, label, base_v, cur_v,
                                        ratio))
                elif ratio < -args.threshold:
                    status = "improved"
                lines.append((cur_path.name, label, f"{base_v:.3f}",
                              f"{cur_v:.3f}", f"{ratio:+.1%} {status}"))
            for key, cur_v in sorted(cur_metrics.items()):
                if key not in base_metrics:
                    lines.append((cur_path.name, f"{name}.{key}", "-",
                                  f"{cur_v:.3f}", "new, no baseline"))
        # Benches present in this run but absent from the baseline (a new
        # bench file, or new keys in an existing one) cannot gate yet, but
        # must be visible -- they are next run's baseline.
        for name, cur_metrics in sorted(cur.items()):
            if name not in base:
                lines.append((cur_path.name, name, "-",
                              f"{cur_metrics['seconds']:.3f}",
                              "new, no baseline"))

    header = ("file", "bench", "base(s)", "cur(s)", "delta")
    widths = [max(len(str(row[i])) for row in [header] + lines)
              for i in range(5)]
    for row in [header] + lines:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write("### Perf gate\n\n")
            f.write("| " + " | ".join(header) + " |\n")
            f.write("|" + "---|" * 5 + "\n")
            for row in lines:
                f.write("| " + " | ".join(str(c) for c in row) + " |\n")
            f.write("\n")

    if regressions:
        print(f"\n{len(regressions)} metric(s) slowed down more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for file, name, base_v, cur_v, ratio in regressions:
            print(f"  {file}:{name}: {base_v:.3f} -> {cur_v:.3f} "
                  f"({ratio:+.1%})", file=sys.stderr)
        return 1
    print("\nperf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
