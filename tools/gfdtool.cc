// gfdtool: the production-facing command line over the library -- mine
// rules from a TSV graph, persist them, and serve them back as
// data-quality checks through the batched violation engine.
//
//   gfdtool gen <out.tsv> [--kind yago2|dbpedia|imdb] [--scale N]
//           [--seed S] [--noise ALPHA]
//       Generate a knowledge-graph-shaped TSV (optionally corrupted).
//   gfdtool discover <graph.tsv> [-k K] [-s SIGMA] [-w WORKERS]
//           [-o rules.gfd]
//       Mine a cover of minimum sigma-frequent GFDs and save/print it.
//   gfdtool detect <graph.tsv>|--log <dir> <rules.gfd> [-w WORKERS]
//           [--shards N] [--max-per-gfd N] [--max-total N]
//           [--delta <delta.tsv>] [--compact-ops N]
//       Batched violation detection: group rules by pattern, one match
//       plan per group, structured violation records. Exit 3 when
//       violations were found. With --delta, runs *incrementally*: the
//       delta (E+/E-/A records) is applied as an overlay view and only
//       matches near the updated vertices are re-evaluated, reporting
//       the violations the update added (+) and removed (-). Exit codes
//       distinguish the post-update states: 0 the updated graph is
//       violation-free, 3 the update added violations, 4 the update
//       added none but pre-existing violations remain. With --log the
//       graph comes from a durable store (replayed on open) and the
//       --delta batch is appended to its log before detection.
//   gfdtool log init <dir> <graph.tsv>
//       Create a durable graph store: snapshot + empty delta log.
//   gfdtool log append <dir> <delta.tsv> [--compact-ops N]
//       Durably append one update batch and apply it (auto-compacts per
//       policy; --compact-ops overrides the ops threshold).
//   gfdtool log replay <dir> [-o graph.tsv]
//       Replay the log onto the snapshot, report recovery stats, and
//       optionally dump the materialized current graph.
//   gfdtool log compact <dir>
//       Roll the snapshot forward over the overlay and re-anchor the log.
//   gfdtool serve init <dir> <graph.tsv> --fragments N [--radius R]
//       Create a distributed serving directory: N vertex-cut partitioned
//       fragments (each a GraphStore holding only its owned edge
//       partition plus a radius-R border halo, with a private delta log)
//       under a coordinator with persisted node ownership.
//   gfdtool serve append <dir> <rules.gfd> <delta.tsv> [-w W]
//           [--compact-ops N]
//       The distributed serving step: the coordinator assigns the batch
//       the next global sequence number, routes each op to exactly the
//       fragments whose resident set covers it (plus halo-maintenance
//       traffic), runs owned-scope incremental detection on every
//       fragment, and merges the per-fragment diffs -- printed as +/-
//       records with the same 0/3/4 verdict exit codes as detect
//       --delta, read off the running violation counter. Lagging
//       fragments (say, after a mid-append kill) are caught up from the
//       routing journal on open before the batch applies.
//   gfdtool serve rebalance <dir> <node> <fragment> [--compact-ops N]
//       Move ownership of one node to another fragment online: halo
//       maintenance ships the newly resident edges, then all fragments
//       compact in lockstep onto the new ownership.
//   gfdtool serve status <dir>
//       Per-fragment sequence/anchor/overlay/footprint report.
//   gfdtool metrics <dir> [-o FILE]
//       Open the store or coordinator at <dir> (replaying its logs, so
//       recovery metrics are populated) and render the full metrics
//       registry in Prometheus text format to stdout or FILE.
//   gfdtool validate <graph.tsv> <rules.gfd>
//       Boolean check G |= Sigma, rule by rule. Exit 3 on violation.
//   gfdtool cover <graph.tsv> <rules.gfd> [-w WORKERS] [-o cover.gfd]
//       Reduce a rule file to a minimal equivalent cover.
//
// The serving verbs (`detect --log`, `serve append`) additionally accept
//   --metrics-out FILE   atomically write the Prometheus exposition of
//                        everything this invocation did on exit
//   --trace FILE         append one JSON-lines trace event per serving
//                        stage (validate/route/ship/detect/merge/compact)
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "datagen/kb.h"
#include "datagen/noise.h"
#include "net/feed_service.h"
#include "net/http_server.h"
#include "serve/changefeed.h"
#include "detect/engine.h"
#include "detect/metrics.h"
#include "detect/planner.h"
#include "gfd/serialize.h"
#include "gfd/validation.h"
#include "graph/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/fragment.h"
#include "parallel/parcover.h"
#include "parallel/pardis.h"
#include "serve/coordinator.h"
#include "serve/durable_io.h"
#include "serve/graph_store.h"
#include "serve/metrics.h"
#include "serve/serving_store.h"
#include "util/hash.h"
#include "util/timer.h"

using namespace gfd;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gfdtool gen <out.tsv> [--kind yago2|dbpedia|imdb] "
      "[--scale N] [--seed S] [--noise ALPHA]\n"
      "       gfdtool discover <graph.tsv> [-k K] [-s SIGMA] [-w WORKERS] "
      "[-o rules.gfd]\n"
      "       gfdtool detect <graph.tsv>|--log <dir> <rules.gfd> "
      "[-w WORKERS] [--shards N] [--max-per-gfd N] [--max-total N] "
      "[--delta FILE] [--compact-ops N] [--metrics-out FILE] "
      "[--trace FILE]\n"
      "       gfdtool log init <dir> <graph.tsv>\n"
      "       gfdtool log append <dir> <delta.tsv> [--compact-ops N]\n"
      "       gfdtool log replay <dir> [-o graph.tsv]\n"
      "       gfdtool log compact <dir>\n"
      "       gfdtool serve init <dir> <graph.tsv> --fragments N "
      "[--radius R]\n"
      "       gfdtool serve append <dir> <rules.gfd> <delta.tsv> "
      "[-w WORKERS] [--compact-ops N] [--metrics-out FILE] "
      "[--trace FILE]\n"
      "       gfdtool serve rebalance <dir> <node> <fragment> "
      "[--compact-ops N]\n"
      "       gfdtool serve status <dir>\n"
      "       gfdtool serve run <dir> <rules.gfd> [--port P] "
      "[--bind ADDR] [-w WORKERS] [--http-workers N] [--queue-cap N] "
      "[--heartbeat-ms MS] [--ingest-rps R] [--ingest-burst B] "
      "[--compact-ops N] [--metrics-out FILE] [--trace FILE]\n"
      "       gfdtool metrics <dir> [-o FILE]\n"
      "       gfdtool validate <graph.tsv> <rules.gfd>\n"
      "       gfdtool cover <graph.tsv> <rules.gfd> [-w WORKERS] "
      "[-o cover.gfd]\n"
      "       gfdtool help [verb]       (or: gfdtool <verb> --help)\n");
  return 2;
}

// Per-verb help: one entry per dispatch-table verb, printed by
// `gfdtool help <verb>` / `gfdtool <verb> --help` and mirrored verbatim
// in docs/CLI.md (CI greps that every verb here appears there).
struct VerbHelp {
  const char* verb;
  const char* text;
};

constexpr VerbHelp kVerbHelp[] = {
    {"gen",
     "gfdtool gen <out.tsv> [--kind yago2|dbpedia|imdb] [--scale N]\n"
     "        [--seed S] [--noise ALPHA]\n"
     "\n"
     "Generate a knowledge-graph-shaped TSV graph.\n"
     "  --kind    schema family to imitate (default yago2)\n"
     "  --scale   size multiplier (default 1)\n"
     "  --seed    RNG seed (default 42); same seed -> same graph\n"
     "  --noise   corrupt attribute values with probability ALPHA,\n"
     "            planting detectable violations (default 0: clean)\n"},
    {"discover",
     "gfdtool discover <graph.tsv> [-k K] [-s SIGMA] [-w WORKERS]\n"
     "        [-o rules.gfd]\n"
     "\n"
     "Mine a cover of minimal sigma-frequent GFDs from the graph.\n"
     "  -k   max pattern size in edges (default 2)\n"
     "  -s   support threshold sigma (default 10)\n"
     "  -w   worker threads (default 1)\n"
     "  -o   write rules to FILE instead of stdout\n"},
    {"detect",
     "gfdtool detect <graph.tsv>|--log <dir> <rules.gfd> [-w WORKERS]\n"
     "        [--shards N] [--max-per-gfd N] [--max-total N]\n"
     "        [--delta FILE] [--compact-ops N] [--metrics-out FILE]\n"
     "        [--trace FILE]\n"
     "\n"
     "Batched violation detection: rules are grouped by pattern\n"
     "isomorphism and each group shares one match plan.\n"
     "  --log <dir>     check the durable store at <dir> (replayed on\n"
     "                  open) instead of a TSV file\n"
     "  --delta FILE    incremental mode: apply the TSV delta batch and\n"
     "                  report only the violations it added (+) and\n"
     "                  removed (-); with --log the batch is durably\n"
     "                  appended first\n"
     "  --shards N      simulate N vertex-cut fragments\n"
     "  --max-per-gfd/--max-total   violation budgets (0 = unlimited)\n"
     "  --compact-ops N             store compaction threshold override\n"
     "  -w WORKERS      detection threads\n"
     "\n"
     "Exit codes: 0 clean, 3 violations found (or added by the delta),\n"
     "4 the delta added none but pre-existing violations remain.\n"},
    {"log",
     "gfdtool log init <dir> <graph.tsv>\n"
     "gfdtool log append <dir> <delta.tsv> [--compact-ops N]\n"
     "gfdtool log replay <dir> [-o graph.tsv]\n"
     "gfdtool log compact <dir>\n"
     "\n"
     "Single-node durable graph store: snapshot + sequenced delta log\n"
     "(see docs/WIRE.md for the on-disk formats).\n"
     "  init      create the store from a TSV graph\n"
     "  append    durably append one TSV delta batch and apply it\n"
     "            (auto-compacts per policy)\n"
     "  replay    recover the store, report recovery stats, optionally\n"
     "            dump the materialized graph with -o\n"
     "  compact   roll the snapshot over the overlay, re-anchor the log\n"},
    {"serve",
     "gfdtool serve init <dir> <graph.tsv> --fragments N [--radius R]\n"
     "gfdtool serve append <dir> <rules.gfd> <delta.tsv> [-w W]\n"
     "        [--compact-ops N] [--metrics-out FILE] [--trace FILE]\n"
     "gfdtool serve rebalance <dir> <node> <fragment> [--compact-ops N]\n"
     "gfdtool serve status <dir>\n"
     "gfdtool serve run <dir> <rules.gfd> [--port P] [--bind ADDR]\n"
     "        [-w WORKERS] [--http-workers N] [--queue-cap N]\n"
     "        [--heartbeat-ms MS] [--ingest-rps R] [--ingest-burst B]\n"
     "        [--compact-ops N] [--metrics-out FILE] [--trace FILE]\n"
     "\n"
     "Serving verbs. init/append/rebalance/status drive a distributed\n"
     "vertex-cut coordinator; run serves EITHER backend (a `log init`\n"
     "store or a `serve init` coordinator, sniffed from the directory)\n"
     "over HTTP as one long-lived process:\n"
     "  POST /ingest    one TSV delta batch -> seq + violation diff\n"
     "                  summary (422 on invalid input, 429 when rate\n"
     "                  limited)\n"
     "  GET  /feed      SSE stream of per-batch violation diffs;\n"
     "                  ?cursor=SEQ replays missed batches from the\n"
     "                  durable feed log; ?rule= ?label= ?pivot= filter;\n"
     "                  ?max_events=N closes after N events\n"
     "  GET  /metrics   live Prometheus text\n"
     "  GET  /status    JSON summary (seq, backend, counters)\n"
     "Flags of run:\n"
     "  --port P            listen port (default 8080; 0 = ephemeral,\n"
     "                      the chosen port is printed)\n"
     "  --bind ADDR         bind address (default 127.0.0.1)\n"
     "  -w WORKERS          detection threads per batch (default 1)\n"
     "  --http-workers N    connection handler threads (default 8)\n"
     "  --queue-cap N       per-subscriber event queue bound; a slow\n"
     "                      consumer overflowing it is disconnected\n"
     "                      (default 256)\n"
     "  --heartbeat-ms MS   SSE keepalive period (default 5000)\n"
     "  --ingest-rps R      per-client ingest rate limit (default 0:\n"
     "                      unlimited), --ingest-burst B tokens burst\n"
     "Shutdown: SIGINT/SIGTERM close subscriber streams and stop\n"
     "accepting, then exit 0; durable state needs no cleanup (kill -9\n"
     "recovers on the next open). See docs/WIRE.md for the wire format.\n"},
    {"metrics",
     "gfdtool metrics <dir> [-o FILE]\n"
     "\n"
     "Open the store or coordinator at <dir> (replaying its logs, so\n"
     "recovery metrics are populated) and render the full metrics\n"
     "registry in Prometheus text format to stdout, or atomically to\n"
     "FILE with -o.\n"},
    {"validate",
     "gfdtool validate <graph.tsv> <rules.gfd>\n"
     "\n"
     "Boolean check G |= Sigma, rule by rule; prints each violated\n"
     "rule. Exit 0 when all hold, 3 otherwise.\n"},
    {"cover",
     "gfdtool cover <graph.tsv> <rules.gfd> [-w WORKERS] [-o cover.gfd]\n"
     "\n"
     "Reduce a rule file to a minimal equivalent cover by pairwise\n"
     "implication testing. -o writes the cover to FILE (default:\n"
     "stdout).\n"},
    {"help",
     "gfdtool help [verb]\n"
     "\n"
     "Print the per-verb reference (also: gfdtool <verb> --help). The\n"
     "same text lives in docs/CLI.md.\n"},
};

int HelpVerb(const char* verb) {
  for (const VerbHelp& h : kVerbHelp) {
    if (!std::strcmp(h.verb, verb)) {
      std::fputs(h.text, stdout);
      return 0;
    }
  }
  std::fprintf(stderr, "no such verb '%s'\n", verb);
  return Usage();
}

int HelpAll() {
  for (const VerbHelp& h : kVerbHelp) {
    std::fputs(h.text, stdout);
    std::fputs("\n", stdout);
  }
  return 0;
}

// Exit codes of `detect` (documented in the README): 0 clean, 3 the run /
// the update found or added violations, 4 an update added none but
// pre-existing violations remain.
constexpr int kExitViolations = 3;
constexpr int kExitPreexistingOnly = 4;

int VerdictExit(DeltaVerdict v) {
  switch (v) {
    case DeltaVerdict::kClean:
      return 0;
    case DeltaVerdict::kAddedViolations:
      return kExitViolations;
    case DeltaVerdict::kPreexistingOnly:
      return kExitPreexistingOnly;
  }
  return 1;
}

const char* VerdictName(DeltaVerdict v) {
  switch (v) {
    case DeltaVerdict::kClean:
      return "clean";
    case DeltaVerdict::kAddedViolations:
      return "added-violations";
    case DeltaVerdict::kPreexistingOnly:
      return "pre-existing-only";
  }
  return "?";
}

std::optional<std::string> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Loader errors carry line numbers as "line N: msg"; render them in the
// editor-clickable "path:N: msg" form.
std::string FileLineError(const char* path, const std::string& error) {
  std::string_view e = error;
  if (e.starts_with("line ")) {
    size_t colon = e.find(": ");
    if (colon != std::string_view::npos) {
      return std::string(path) + ":" + std::string(e.substr(5, colon - 5)) +
             ": " + std::string(e.substr(colon + 2));
    }
  }
  return std::string(path) + ": " + error;
}

std::optional<PropertyGraph> LoadGraph(const char* path) {
  std::string error;
  auto g = LoadGraphTsvFile(path, &error);
  if (!g) {
    std::fprintf(stderr, "error loading %s\n",
                 FileLineError(path, error).c_str());
  }
  return g;
}

std::optional<std::vector<Gfd>> LoadRules(const char* path,
                                          const PropertyGraph& g) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  // Lenient: serving tolerates vocabulary drift between the mining and
  // the checked graph (a TSV round trip only keeps in-use vocabulary).
  size_t skipped = 0;
  auto rules = LoadGfdsLenient(in, g, &skipped);
  if (skipped) {
    std::fprintf(stderr,
                 "%s: skipped %zu rule(s) referencing vocabulary this "
                 "graph does not intern\n",
                 path, skipped);
  }
  if (rules.empty()) {
    std::fprintf(stderr, "%s: no loadable rules\n", path);
    return std::nullopt;
  }
  return rules;
}

// Fingerprint of a loaded rule set: the running violation count persisted
// in store/coordinator meta is only meaningful under the rules it was
// computed with, so it is keyed by this. Serialization is name-based,
// hence stable across restarts and snapshot rolls.
uint64_t RuleFingerprint(std::span<const Gfd> rules, const PropertyGraph& g) {
  std::ostringstream os;
  SaveGfds(rules, g, os);
  return Fnv1a64(os.str());
}

// Writes `gfds` to `path`, or stdout when path is null.
void EmitRules(std::span<const Gfd> gfds, const PropertyGraph& g,
               const char* path) {
  if (path) {
    std::ofstream out(path);
    SaveGfds(gfds, g, out);
    std::fprintf(stderr, "wrote %zu rules to %s\n", gfds.size(), path);
  } else {
    std::ostringstream os;
    SaveGfds(gfds, g, os);
    std::fputs(os.str().c_str(), stdout);
  }
}

// Shared flag scanning: returns the value after `flag` or null.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], flag)) return argv[i + 1];
  }
  return nullptr;
}

// Count-valued flag ("-w 4", "--shards 3"). Rejects "-w -1" / "-w x"
// instead of letting a negative wrap to a 2^64-sized thread pool.
// Returns false (after complaining) on a malformed value; `min` is 0 for
// budget flags where 0 means "unlimited".
bool CountFlag(int argc, char** argv, const char* flag, size_t* out,
               long long min = 1) {
  const char* v = FlagValue(argc, argv, flag);
  if (!v) return true;
  char* end = nullptr;
  long long n = std::strtoll(v, &end, 10);
  if (!end || *end != '\0' || n < min || n > 1 << 30) {
    std::fprintf(stderr, "%s expects a count >= %lld, got '%s'\n", flag, min,
                 v);
    return false;
  }
  *out = static_cast<size_t>(n);
  return true;
}

// Wires the optional --trace / --metrics-out flags of the serving
// verbs. Construct it before the store opens so replay and recovery
// spans land in the trace; on scope exit (after the whole invocation)
// it renders the default registry atomically to the metrics file.
struct ObsSetup {
  std::unique_ptr<obs::TraceLog> trace;
  const char* metrics_out = nullptr;
  bool ok = true;

  ObsSetup(int argc, char** argv) {
    metrics_out = FlagValue(argc, argv, "--metrics-out");
    if (const char* path = FlagValue(argc, argv, "--trace")) {
      std::string error;
      trace = obs::TraceLog::Open(path, &error);
      if (!trace) {
        std::fprintf(stderr, "cannot open trace file %s: %s\n", path,
                     error.c_str());
        ok = false;
        return;
      }
      obs::SetActiveTrace(trace.get());
    }
  }

  ~ObsSetup() {
    obs::SetActiveTrace(nullptr);
    if (!metrics_out) return;
    // Touch every family first so the exposition is the full catalog
    // (zero-valued where this invocation did not exercise a path).
    TouchServeMetrics();
    TouchDetectMetrics();
    std::string error;
    if (!AtomicWriteFile(metrics_out,
                         obs::MetricsRegistry::Default().RenderPrometheusText(),
                         &error)) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n", metrics_out,
                   error.c_str());
    }
  }
};

int Gen(int argc, char** argv) {
  if (argc < 1) return Usage();
  const char* out_path = argv[0];
  KbConfig cfg;
  if (!CountFlag(argc, argv, "--scale", &cfg.scale)) return Usage();
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    cfg.seed = std::strtoull(v, nullptr, 10);
  }
  const char* kind = FlagValue(argc, argv, "--kind");
  PropertyGraph g;
  if (!kind || !std::strcmp(kind, "yago2")) {
    g = MakeYago2Like(cfg);
  } else if (!std::strcmp(kind, "dbpedia")) {
    g = MakeDbpediaLike(cfg);
  } else if (!std::strcmp(kind, "imdb")) {
    g = MakeImdbLike(cfg);
  } else {
    std::fprintf(stderr, "unknown --kind %s\n", kind);
    return Usage();
  }
  if (const char* v = FlagValue(argc, argv, "--noise")) {
    NoiseConfig ncfg;
    ncfg.alpha = std::strtod(v, nullptr);
    ncfg.seed = cfg.seed + 1;
    auto noisy = InjectNoise(g, ncfg);
    std::fprintf(stderr, "corrupted %zu of %zu nodes\n",
                 noisy.corrupted.size(), g.NumNodes());
    g = std::move(noisy.graph);
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  SaveGraphTsv(g, out);
  std::fprintf(stderr, "wrote %s: %zu nodes, %zu edges\n", out_path,
               g.NumNodes(), g.NumEdges());
  return 0;
}

int Discover(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto g = LoadGraph(argv[0]);
  if (!g) return 1;
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = std::max<uint64_t>(10, g->NumNodes() / 100);
  ParallelRunConfig pcfg;
  size_t k = cfg.k, sigma = cfg.support_threshold;
  if (!CountFlag(argc, argv, "-k", &k) ||
      !CountFlag(argc, argv, "-s", &sigma) ||
      !CountFlag(argc, argv, "-w", &pcfg.workers)) {
    return Usage();
  }
  cfg.k = static_cast<uint32_t>(k);
  cfg.support_threshold = sigma;
  WallTimer t;
  auto result = ParDis(*g, cfg, pcfg);
  size_t positives = result.positives.size();
  size_t negatives = result.negatives.size();
  auto cover = ParCover(std::move(result).AllGfds(), pcfg);
  std::fprintf(stderr,
               "discovered %zu GFDs (%zu positive, %zu negative) in %.2fs; "
               "cover has %zu\n",
               positives + negatives, positives, negatives, t.Seconds(),
               cover.size());
  EmitRules(cover, *g, FlagValue(argc, argv, "-o"));
  return 0;
}

// Opens a graph store, reporting recovery context on stderr.
std::optional<GraphStore> OpenStore(const char* dir,
                                    const GraphStoreOptions& opts) {
  std::string error;
  auto store = GraphStore::Open(dir, opts, &error);
  if (!store) {
    std::fprintf(stderr, "error opening store %s: %s\n", dir, error.c_str());
    return std::nullopt;
  }
  // Both backends report recovery through the same unified snapshot;
  // mirroring it into the gauges keeps `--metrics-out` current even for
  // verbs that never append.
  ServingMetricsSnapshot snap = store->MetricsSnapshot();
  ExportSnapshotMetrics(snap);
  std::fprintf(stderr,
               "store %s: snapshot@%llu + %zu replayed batch(es) -> seq "
               "%llu, overlay %zu op(s)%s%s\n",
               dir, static_cast<unsigned long long>(snap.anchor_seq),
               snap.replayed_batches,
               static_cast<unsigned long long>(snap.last_seq),
               snap.overlay_ops,
               snap.truncated_bytes ? " [corrupt tail cut]" : "",
               snap.skipped_batches ? " [pre-anchor records dropped]" : "");
  return store;
}

// Acknowledges a durable append on stderr and runs the compaction
// policy, reporting a snapshot roll when it fires.
bool AppendFollowUp(GraphStore& store, uint64_t seq) {
  std::fprintf(stderr, "appended batch seq %llu (%zu overlay ops)\n",
               static_cast<unsigned long long>(seq),
               store.overlay().ops.size());
  std::string error;
  if (!store.MaybeCompact(&error)) {
    std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
    return false;
  }
  if (store.stats().compactions > 0) {
    std::fprintf(stderr, "compacted: snapshot rolled to seq %llu\n",
                 static_cast<unsigned long long>(store.stats().anchor_seq));
  }
  return true;
}

// Prints an incremental diff (+ added against `view`, - removed against
// `removed_graph`, a PropertyGraph or GraphView holding the pre-update
// state), classifies the post-update state, and returns the documented
// exit code. With `post_count` (the running violation counter after the
// batch) the verdict is read off the counter; otherwise it falls back to
// the budget-1 existence probe.
template <typename RemovedGraphT>
int ReportDiff(const ViolationEngine& engine, const GraphView& view,
               const RemovedGraphT& removed_graph, const IncrementalDiff& diff,
               double seconds, size_t workers,
               std::optional<uint64_t> post_count = std::nullopt) {
  for (const Violation& v : diff.added) {
    std::printf("+ %s\n", DescribeViolation(view, engine.rules(), v).c_str());
  }
  for (const Violation& v : diff.removed) {
    std::printf("- %s\n",
                DescribeViolation(removed_graph, engine.rules(), v).c_str());
  }
  std::fprintf(stderr,
               "incremental: +%zu -%zu violation(s) in %.3fs: %lu anchor "
               "enumerations over %zu plans, %lu touched matches\n",
               diff.added.size(), diff.removed.size(), seconds,
               static_cast<unsigned long>(diff.stats.anchors_scanned),
               diff.stats.anchor_plans,
               static_cast<unsigned long>(diff.stats.matches_seen));
  DeltaVerdict verdict =
      post_count ? ClassifyDelta(diff, *post_count)
                 : ClassifyDelta(engine, view, diff, workers);
  if (post_count) {
    std::fprintf(stderr, "verdict: %s (%llu violation(s) by counter)\n",
                 VerdictName(verdict),
                 static_cast<unsigned long long>(*post_count));
  } else {
    std::fprintf(stderr, "verdict: %s\n", VerdictName(verdict));
  }
  return VerdictExit(verdict);
}

// The counter a serving step starts from: the persisted running count
// when it is current, else one full (uncapped) startup scan that seeds
// it. `view` must be the PRE-append state.
uint64_t PreBatchCount(const ViolationEngine& engine, const GraphView& view,
                       std::optional<uint64_t> persisted, size_t workers) {
  if (persisted) return *persisted;
  WallTimer t;
  DetectOptions full;
  full.workers = workers;
  uint64_t count = engine.Detect(view, full).violations.size();
  std::fprintf(stderr,
               "seeded violation counter with a full scan: %llu "
               "violation(s) in %.3fs\n",
               static_cast<unsigned long long>(count), t.Seconds());
  return count;
}

// One serving step, driven entirely through the ServingStore interface:
// read/seed the running counter, durably append the batch with its
// per-batch diff, print +/- records, persist the updated counter, and
// return the documented verdict exit code (nullopt when the append was
// rejected). `detect --log --delta` (single GraphStore) and `serve
// append` (coordinator over vertex-cut fragments) both come through
// here -- the serving loop exists exactly once.
std::optional<int> ServeBatch(ServingStore& store,
                              const ViolationEngine& engine,
                              const std::string& payload,
                              const char* payload_path, size_t workers,
                              uint64_t* seq_out = nullptr) {
  // Reporting works off materialized pre/post states (ids preserved by
  // both backends), so it stays valid across any later compaction.
  PropertyGraph before = store.MaterializeCurrent();
  GraphDelta no_delta;
  auto before_view = GraphView::Apply(before, no_delta);
  uint64_t fp = RuleFingerprint(engine.rules(), before);
  uint64_t pre_count =
      PreBatchCount(engine, *before_view, store.violation_count(fp), workers);
  // One-shot planner (each CLI invocation is a fresh process, so the
  // seeded crossover rule decides): large batches take the full-redetect
  // path instead of paying the known incremental slowdown.
  DetectPlanner planner;
  IncrementalOptions iopts;
  iopts.workers = workers;
  iopts.planner = &planner;
  std::string error;
  uint64_t seq = 0;
  WallTimer t;
  auto diff = store.AppendAndDiff(engine, payload, iopts, &seq, &error);
  if (!diff) {
    std::fprintf(stderr, "error appending %s\n",
                 FileLineError(payload_path, error).c_str());
    return std::nullopt;
  }
  double seconds = t.Seconds();
  // A full-path diff re-seeds the counter from its authoritative
  // post-state count; composing would be computing it on the wrong path.
  uint64_t post_count =
      diff->used_full_path
          ? diff->full_post_count
          : pre_count + diff->added.size() - diff->removed.size();
  if (!store.SetViolationCount(post_count, fp, &error)) {
    std::fprintf(stderr, "warning: could not persist counter: %s\n",
                 error.c_str());
  }
  PropertyGraph after = store.MaterializeCurrent();
  auto after_view = GraphView::Apply(after, no_delta);
  int code = ReportDiff(engine, *after_view, before, *diff, seconds, workers,
                        post_count);
  // Refresh the snapshot gauges so a metrics export reflects the
  // post-batch sequence and overlay state.
  ExportSnapshotMetrics(store.MetricsSnapshot());
  if (seq_out) *seq_out = seq;
  return code;
}

int Detect(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* log_dir = nullptr;
  int pos = 0;
  if (!std::strcmp(argv[0], "--log")) {
    if (argc < 3) return Usage();
    log_dir = argv[1];
    pos = 2;
  }

  DetectOptions opts;
  opts.workers = 4;
  GraphStoreOptions sopts;
  if (!CountFlag(argc, argv, "-w", &opts.workers) ||
      !CountFlag(argc, argv, "--max-per-gfd", &opts.max_violations_per_gfd,
                 /*min=*/0) ||
      !CountFlag(argc, argv, "--max-total", &opts.max_total_violations,
                 /*min=*/0) ||
      !CountFlag(argc, argv, "--compact-ops", &sopts.compact_min_ops,
                 /*min=*/0)) {
    return Usage();
  }

  // Observability first: the trace must be live before the store opens
  // so replay / torn-tail recovery events are captured. Destroyed last,
  // after everything below ran, which is when the metrics render.
  ObsSetup obs(argc, argv);
  if (!obs.ok) return 1;

  std::optional<PropertyGraph> g;
  std::optional<GraphStore> store;
  const char* rules_path = nullptr;
  if (log_dir) {
    if (FlagValue(argc, argv, "--shards")) {
      std::fprintf(stderr, "--shards is not supported with --log\n");
      return Usage();
    }
    store = OpenStore(log_dir, sopts);
    if (!store) return 1;
    rules_path = argv[pos];
  } else {
    g = LoadGraph(argv[pos]);
    if (!g) return 1;
    if (pos + 1 >= argc) return Usage();
    rules_path = argv[pos + 1];
  }
  // Rules resolve against the snapshot's vocabulary; `log compact` folds
  // overlay-introduced vocabulary into the snapshot.
  auto rules = LoadRules(rules_path, log_dir ? store->base() : *g);
  if (!rules) return 1;

  WallTimer build;
  ViolationEngine engine(std::move(*rules));
  std::fprintf(stderr,
               "compiled %zu rules into %zu pattern groups (%.1fms)\n",
               engine.NumRules(), engine.NumGroups(),
               build.Seconds() * 1e3);

  if (const char* delta_path = FlagValue(argc, argv, "--delta")) {
    // Caps would make the added/removed diff ill-defined (a budget could
    // cut off one side of the comparison) and sharding is a full-scan
    // concept, so refuse rather than silently ignore them.
    for (const char* flag : {"--max-per-gfd", "--max-total", "--shards"}) {
      if (FlagValue(argc, argv, flag)) {
        std::fprintf(stderr, "%s is not supported with --delta\n", flag);
        return Usage();
      }
    }
    if (log_dir) {
      // Serving step: durably append the batch, then diff exactly it --
      // the same ServingStore-driven loop `serve append` runs over the
      // coordinator backend.
      auto payload = ReadFile(delta_path);
      if (!payload) return 1;
      uint64_t seq = 0;
      auto code =
          ServeBatch(*store, engine, *payload, delta_path, opts.workers, &seq);
      if (!code) return 1;
      if (!AppendFollowUp(*store, seq)) return 1;
      ExportSnapshotMetrics(store->MetricsSnapshot());
      return *code;
    }
    std::string error;
    auto delta = LoadGraphDeltaTsvFile(delta_path, *g, &error);
    if (!delta) {
      std::fprintf(stderr, "error loading %s\n",
                   FileLineError(delta_path, error).c_str());
      return 1;
    }
    auto view = GraphView::Apply(*g, *delta, &error);
    if (!view) {
      std::fprintf(stderr, "error applying %s: %s\n", delta_path,
                   error.c_str());
      return 1;
    }
    IncrementalOptions iopts;
    iopts.workers = opts.workers;
    WallTimer t;
    auto diff = engine.DetectIncremental(*view, iopts);
    double seconds = t.Seconds();
    std::fprintf(stderr,
                 "delta: %zu ops (%zu+ %zu- edges, %zu attr sets) touching "
                 "%zu nodes\n",
                 view->NumDeltaOps(), view->NumInsertedEdges(),
                 view->NumDeletedEdges(), view->NumAttrSets(),
                 diff.stats.affected_nodes);
    // Added violations render against the view (post-update values),
    // removed ones against the base graph they existed in.
    return ReportDiff(engine, *view, *g, diff, seconds, opts.workers);
  }

  WallTimer t;
  DetectionResult result;
  size_t shards = 0;
  if (!CountFlag(argc, argv, "--shards", &shards)) return Usage();
  if (log_dir) {
    result = engine.Detect(store->view(), opts);
  } else if (shards > 0) {
    auto frag = VertexCutPartition(*g, shards);
    ClusterStats cstats;
    result = engine.DetectSharded(*g, frag, opts, &cstats);
    std::fprintf(stderr,
                 "sharded over %zu fragments: %lu messages, %lu bytes "
                 "shipped, replication %.2f\n",
                 frag.partition.num_fragments,
                 static_cast<unsigned long>(cstats.messages),
                 static_cast<unsigned long>(cstats.bytes_shipped),
                 cstats.replication);
  } else {
    result = engine.Detect(*g, opts);
  }
  for (const Violation& v : result.violations) {
    std::printf("%s\n", log_dir
                            ? DescribeViolation(store->view(), engine.rules(),
                                                v)
                                  .c_str()
                            : DescribeViolation(*g, engine.rules(), v).c_str());
  }
  std::fprintf(stderr,
               "%zu violation(s) in %.2fs%s: %lu pivots scanned, %lu "
               "matches, %lu literal evals\n",
               result.violations.size(), t.Seconds(),
               result.stats.truncated ? " (truncated by budget)" : "",
               static_cast<unsigned long>(result.stats.pivots_scanned),
               static_cast<unsigned long>(result.stats.matches_seen),
               static_cast<unsigned long>(result.stats.literal_evals));
  // A complete scan over a store doubles as the counter's seed: later
  // detect --log --delta runs read their verdicts off it scan-free.
  if (log_dir && !result.stats.truncated) {
    uint64_t fp = RuleFingerprint(engine.rules(), store->base());
    std::string error;
    if (!store->SetViolationCount(result.violations.size(), fp, &error)) {
      std::fprintf(stderr, "warning: could not persist counter: %s\n",
                   error.c_str());
    }
  }
  return result.violations.empty() ? 0 : kExitViolations;
}

int Log(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* verb = argv[0];
  const char* dir = argv[1];
  GraphStoreOptions sopts;
  if (!CountFlag(argc, argv, "--compact-ops", &sopts.compact_min_ops,
                 /*min=*/0)) {
    return Usage();
  }

  if (!std::strcmp(verb, "init")) {
    if (argc < 3) return Usage();
    auto g = LoadGraph(argv[2]);
    if (!g) return 1;
    std::string error;
    if (!GraphStore::Init(dir, *g, &error)) {
      std::fprintf(stderr, "error initializing %s: %s\n", dir, error.c_str());
      return 1;
    }
    std::fprintf(stderr, "initialized store %s: %zu nodes, %zu edges\n", dir,
                 g->NumNodes(), g->NumEdges());
    return 0;
  }

  auto store = OpenStore(dir, sopts);
  if (!store) return 1;

  if (!std::strcmp(verb, "append")) {
    if (argc < 3) return Usage();
    auto payload = ReadFile(argv[2]);
    if (!payload) return 1;
    std::string error;
    auto seq = store->Append(*payload, &error);
    if (!seq) {
      std::fprintf(stderr, "error appending %s\n",
                   FileLineError(argv[2], error).c_str());
      return 1;
    }
    return AppendFollowUp(*store, *seq) ? 0 : 1;
  }

  if (!std::strcmp(verb, "replay")) {
    const GraphView& view = store->view();
    std::fprintf(stderr, "current graph: %zu nodes, %zu edges\n",
                 view.NumNodes(), view.NumEdges());
    if (const char* out_path = FlagValue(argc, argv, "-o")) {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
      }
      SaveGraphTsv(store->MaterializeCurrent(), out);
      std::fprintf(stderr, "wrote %s\n", out_path);
    }
    return 0;
  }

  if (!std::strcmp(verb, "compact")) {
    std::string error;
    if (!store->Compact(&error)) {
      std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot anchored at seq %llu, log re-anchored\n",
                 static_cast<unsigned long long>(store->stats().anchor_seq));
    return 0;
  }

  return Usage();
}

// Opens a coordinator, reporting recovery/catch-up context on stderr.
std::optional<Coordinator> OpenCoordinator(const char* dir,
                                           const CoordinatorOptions& opts) {
  std::string error;
  auto coord = Coordinator::Open(dir, opts, &error);
  if (!coord) {
    std::fprintf(stderr, "error opening coordinator %s: %s\n", dir,
                 error.c_str());
    return std::nullopt;
  }
  ServingMetricsSnapshot snap = coord->MetricsSnapshot();
  ExportSnapshotMetrics(snap);
  std::fprintf(stderr,
               "coordinator %s: %zu fragment(s) at seq %llu (anchor %llu)\n",
               dir, snap.fragments,
               static_cast<unsigned long long>(snap.last_seq),
               static_cast<unsigned long long>(snap.anchor_seq));
  if (snap.lagging_fragments > 0) {
    std::fprintf(stderr,
                 "caught up %zu lagging fragment(s): %zu record(s) "
                 "re-shipped, %zu snapshot transfer(s)\n",
                 snap.lagging_fragments, snap.catchup_records,
                 snap.catchup_snapshots);
  }
  return coord;
}

// SIGINT/SIGTERM flag of `serve run`: the handler only sets this; the
// main thread notices and runs the orderly shutdown (close subscriber
// streams, stop accepting) outside signal context.
volatile std::sig_atomic_t g_stop_serving = 0;

void HandleStopSignal(int) { g_stop_serving = 1; }

// `gfdtool serve run <dir> <rules.gfd> ...`: the long-lived changefeed
// server. One process opens the store (either backend, sniffed from the
// directory) and owns it for its lifetime; ingest, feed fan-out,
// metrics, and status all answer over HTTP (see docs/WIRE.md).
int ServeRun(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* dir = argv[0];

  size_t port = 8080;
  size_t workers = 1;
  size_t http_workers = 8;
  size_t queue_cap = 256;
  size_t heartbeat_ms = 5000;
  size_t ingest_rps = 0;
  size_t ingest_burst = 8;
  if (!CountFlag(argc, argv, "--port", &port, /*min=*/0)) return Usage();
  if (!CountFlag(argc, argv, "-w", &workers)) return Usage();
  if (!CountFlag(argc, argv, "--http-workers", &http_workers)) return Usage();
  if (!CountFlag(argc, argv, "--queue-cap", &queue_cap)) return Usage();
  if (!CountFlag(argc, argv, "--heartbeat-ms", &heartbeat_ms)) return Usage();
  if (!CountFlag(argc, argv, "--ingest-rps", &ingest_rps, /*min=*/0)) {
    return Usage();
  }
  if (!CountFlag(argc, argv, "--ingest-burst", &ingest_burst)) return Usage();
  const char* bind = FlagValue(argc, argv, "--bind");
  if (!bind) bind = "127.0.0.1";
  if (port > 65535) {
    std::fprintf(stderr, "--port expects 0..65535\n");
    return Usage();
  }

  // Trace before the store opens (recovery events fire during replay);
  // --metrics-out renders the final registry state on exit.
  ObsSetup obs(argc, argv);
  if (!obs.ok) return 1;

  GraphStoreOptions sopts;
  if (!CountFlag(argc, argv, "--compact-ops", &sopts.compact_min_ops,
                 /*min=*/0)) {
    return Usage();
  }
  std::optional<GraphStore> store;
  std::optional<Coordinator> coord;
  ServingStore* serving = nullptr;
  const char* backend = nullptr;
  if (std::ifstream(std::string(dir) + "/coordinator.meta").good()) {
    CoordinatorOptions copts;
    copts.store = sopts;
    coord = OpenCoordinator(dir, copts);
    if (!coord) return 1;
    serving = &*coord;
    backend = "distributed";
  } else {
    store = OpenStore(dir, sopts);
    if (!store) return 1;
    serving = &*store;
    backend = "single";
  }

  PropertyGraph current = serving->MaterializeCurrent();
  auto rules = LoadRules(argv[1], current);
  if (!rules) return 1;
  ViolationEngine engine(std::move(*rules));

  std::string error;
  auto feed = ViolationChangefeed::Open(dir, serving->last_seq(), &error);
  if (!feed) {
    std::fprintf(stderr, "error opening feed log: %s\n", error.c_str());
    return 1;
  }
  if (feed->reset_on_open()) {
    std::fprintf(stderr,
                 "feed log out of step with the store; reset -- "
                 "subscribers will see a sequence gap\n");
  }

  net::FeedServiceOptions fopts;
  fopts.detect_workers = workers;
  fopts.subscriber_queue_cap = queue_cap;
  fopts.heartbeat_ms = static_cast<int64_t>(heartbeat_ms);
  fopts.ingest_rate_per_sec = static_cast<double>(ingest_rps);
  fopts.ingest_burst = static_cast<double>(ingest_burst);
  fopts.backend = backend;
  net::FeedService service(*serving, engine, *feed, fopts);
  bool scanned = false;
  uint64_t count = service.Prime(&scanned);
  std::fprintf(stderr, "violation counter: %llu (%s)\n",
               static_cast<unsigned long long>(count),
               scanned ? "seeded by full scan" : "persisted");

  net::HttpServerOptions hopts;
  hopts.bind_address = bind;
  hopts.port = static_cast<uint16_t>(port);
  hopts.workers = http_workers;
  auto server = net::HttpServer::Start(
      hopts,
      [&service](const net::HttpRequest& req, net::ResponseWriter& w) {
        service.Handle(req, w);
      },
      &error);
  if (!server) {
    std::fprintf(stderr, "error starting server: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::fprintf(stderr,
               "serving %s (%s backend, %zu rule(s), seq %llu) on "
               "http://%s:%u\n"
               "endpoints: POST /ingest, GET /feed /metrics /status; "
               "SIGINT/SIGTERM to stop\n",
               dir, backend, engine.NumRules(),
               static_cast<unsigned long long>(serving->last_seq()), bind,
               static_cast<unsigned>(server->port()));

  while (!g_stop_serving) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "signal received; shutting down\n");
  feed->Shutdown();  // closes subscriber streams -> handlers drain
  server->Stop();
  std::fprintf(stderr, "stopped at seq %llu\n",
               static_cast<unsigned long long>(serving->last_seq()));
  return 0;
}

int Serve(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* verb = argv[0];
  const char* dir = argv[1];

  if (!std::strcmp(verb, "run")) return ServeRun(argc - 1, argv + 1);

  if (!std::strcmp(verb, "init")) {
    if (argc < 3) return Usage();
    size_t fragments = 2;
    size_t radius = 3;
    if (!CountFlag(argc, argv, "--fragments", &fragments)) return Usage();
    if (!CountFlag(argc, argv, "--radius", &radius)) return Usage();
    auto g = LoadGraph(argv[2]);
    if (!g) return 1;
    std::string error;
    if (!Coordinator::Init(dir, *g, fragments,
                           static_cast<uint32_t>(radius), &error)) {
      std::fprintf(stderr, "error initializing %s: %s\n", dir, error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "initialized coordinator %s: %zu vertex-cut fragment(s) of "
                 "%zu nodes, %zu edges (halo radius %zu)\n",
                 dir, fragments, g->NumNodes(), g->NumEdges(), radius);
    return 0;
  }

  CoordinatorOptions copts;
  if (!CountFlag(argc, argv, "--compact-ops", &copts.store.compact_min_ops,
                 /*min=*/0)) {
    return Usage();
  }

  if (!std::strcmp(verb, "status")) {
    auto coord = OpenCoordinator(dir, copts);
    if (!coord) return 1;
    uint64_t resident_total = 0;
    for (size_t f = 0; f < coord->num_fragments(); ++f) {
      const GraphStoreStats& st = coord->fragment(f).stats();
      size_t owned = 0;
      for (uint32_t o : coord->node_owner()) owned += o == f ? 1 : 0;
      uint64_t resident = coord->resident_edges(f);
      resident_total += resident;
      std::printf("frag-%zu: seq %llu anchor %llu, %zu overlay op(s), "
                  "%zu owned node(s), %llu resident edge(s)\n",
                  f, static_cast<unsigned long long>(st.last_seq),
                  static_cast<unsigned long long>(st.anchor_seq),
                  coord->fragment(f).overlay().ops.size(), owned,
                  static_cast<unsigned long long>(resident));
    }
    std::printf("partition: halo radius %u, replication %.2f, "
                "%llu resident edge(s) total\n",
                coord->partition().halo_radius,
                coord->partition().replication,
                static_cast<unsigned long long>(resident_total));
    return 0;
  }

  if (!std::strcmp(verb, "rebalance")) {
    if (argc < 4) return Usage();
    char* end = nullptr;
    unsigned long long node = std::strtoull(argv[2], &end, 10);
    if (!end || *end != '\0') {
      std::fprintf(stderr, "bad node id '%s'\n", argv[2]);
      return Usage();
    }
    end = nullptr;
    unsigned long long to = std::strtoull(argv[3], &end, 10);
    if (!end || *end != '\0') {
      std::fprintf(stderr, "bad fragment id '%s'\n", argv[3]);
      return Usage();
    }
    auto coord = OpenCoordinator(dir, copts);
    if (!coord) return 1;
    std::string error;
    auto seq = coord->Rebalance(static_cast<NodeId>(node),
                                static_cast<uint32_t>(to), &error);
    if (!seq) {
      std::fprintf(stderr, "rebalance failed: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "rebalanced node %llu to fragment %llu at seq %llu; all "
                 "fragments compacted onto the new ownership\n",
                 node, to, static_cast<unsigned long long>(*seq));
    return 0;
  }

  if (!std::strcmp(verb, "append")) {
    if (argc < 4) return Usage();
    size_t workers = 1;
    if (!CountFlag(argc, argv, "-w", &workers)) return Usage();
    // Trace must be live before the coordinator opens (catch-up and
    // snapshot-transfer events fire during Open); metrics render on
    // scope exit, after the compaction policy ran.
    ObsSetup obs(argc, argv);
    if (!obs.ok) return 1;
    auto coord = OpenCoordinator(dir, copts);
    if (!coord) return 1;
    PropertyGraph current = coord->MaterializeCurrent();
    auto rules = LoadRules(argv[2], current);
    if (!rules) return 1;
    ViolationEngine engine(std::move(*rules));
    auto payload = ReadFile(argv[3]);
    if (!payload) return 1;

    // Routing report: which fragments' resident sets receive batch ops.
    {
      std::istringstream in(*payload);
      std::string error;
      auto d = LoadGraphDeltaTsv(in, current, &error);
      if (!d) {
        std::fprintf(stderr, "error loading %s\n",
                     FileLineError(argv[3], error).c_str());
        return 1;
      }
      auto route = RouteDelta(*d, coord->residency());
      std::fprintf(stderr, "batch: %zu op(s) routed to %zu fragment(s)\n",
                   d->ops.size(), route.affected_fragments.size());
    }

    CoordinatorStats pre = coord->stats();
    uint64_t seq = 0;
    auto code = ServeBatch(*coord, engine, *payload, argv[3], workers, &seq);
    if (!code) return 1;
    CoordinatorStats post = coord->stats();
    std::fprintf(stderr,
                 "batch seq %llu: %llu byte(s) shipped across %zu "
                 "fragment(s) (%llu owned-op, %llu border-halo)\n",
                 static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(post.bytes_shipped -
                                                 pre.bytes_shipped),
                 coord->num_fragments(),
                 static_cast<unsigned long long>(post.bytes_owned_shipped -
                                                 pre.bytes_owned_shipped),
                 static_cast<unsigned long long>(post.bytes_halo_shipped -
                                                 pre.bytes_halo_shipped));

    // stats().compactions is cumulative (an open-time anchor re-unify
    // counts too); only a delta means THIS batch triggered a roll.
    size_t compactions_before = coord->stats().compactions;
    std::string error;
    if (!coord->MaybeCompactAll(&error)) {
      std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
      return 1;
    }
    if (coord->stats().compactions > compactions_before) {
      std::fprintf(stderr, "compacted: all fragments rolled to seq %llu\n",
                   static_cast<unsigned long long>(coord->stats().anchor_seq));
    }
    ExportSnapshotMetrics(coord->MetricsSnapshot());
    return *code;
  }

  return Usage();
}

// `gfdtool metrics <dir> [-o FILE]`: open whichever backend lives at
// <dir> (the replay populates recovery metrics -- torn tails, catch-up,
// replayed batches), mirror its unified snapshot into the gauges, and
// render the complete registry in Prometheus text format.
int Metrics(int argc, char** argv) {
  if (argc < 1) return Usage();
  const char* dir = argv[0];
  std::optional<GraphStore> store;
  std::optional<Coordinator> coord;
  if (std::ifstream(std::string(dir) + "/coordinator.meta").good()) {
    coord = OpenCoordinator(dir, CoordinatorOptions{});
    if (!coord) return 1;
  } else {
    store = OpenStore(dir, GraphStoreOptions{});
    if (!store) return 1;
  }
  TouchServeMetrics();
  TouchDetectMetrics();
  std::string text = obs::MetricsRegistry::Default().RenderPrometheusText();
  if (const char* out_path = FlagValue(argc, argv, "-o")) {
    std::string error;
    if (!AtomicWriteFile(out_path, text, &error)) {
      std::fprintf(stderr, "cannot write metrics to %s: %s\n", out_path,
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote metrics to %s\n", out_path);
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}

int Validate(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto g = LoadGraph(argv[0]);
  if (!g) return 1;
  auto rules = LoadRules(argv[1], *g);
  if (!rules) return 1;
  size_t violated = 0;
  for (const auto& phi : *rules) {
    CompiledPattern plan(phi.pattern);
    auto check = EvaluateGfd(*g, plan, phi, {}, /*abort_on_violation=*/true);
    if (!check.satisfied) {
      ++violated;
      std::printf("VIOLATED: %s\n", phi.ToString(*g).c_str());
    }
  }
  std::printf("%zu/%zu rules violated\n", violated, rules->size());
  return violated == 0 ? 0 : 3;
}

int Cover(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto g = LoadGraph(argv[0]);
  if (!g) return 1;
  auto rules = LoadRules(argv[1], *g);
  if (!rules) return 1;
  ParallelRunConfig pcfg;
  if (!CountFlag(argc, argv, "-w", &pcfg.workers)) return Usage();
  size_t before = rules->size();
  CoverStats stats;
  auto cover = ParCover(std::move(*rules), pcfg, &stats);
  std::fprintf(stderr, "cover: %zu -> %zu rules (%lu implication tests)\n",
               before, cover.size(),
               static_cast<unsigned long>(stats.implication_tests));
  EmitRules(cover, *g, FlagValue(argc, argv, "-o"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!std::strcmp(argv[1], "help")) {
    return argc > 2 ? HelpVerb(argv[2]) : HelpAll();
  }
  if (!std::strcmp(argv[1], "--help") || !std::strcmp(argv[1], "-h")) {
    return HelpAll();
  }
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help")) return HelpVerb(argv[1]);
  }
  if (!std::strcmp(argv[1], "gen")) return Gen(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "discover")) return Discover(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "detect")) return Detect(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "log")) return Log(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "serve")) return Serve(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "metrics")) return Metrics(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "validate")) return Validate(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "cover")) return Cover(argc - 2, argv + 2);
  return Usage();
}
