// gfdtool: the production-facing command line over the library -- mine
// rules from a TSV graph, persist them, and serve them back as
// data-quality checks through the batched violation engine.
//
//   gfdtool gen <out.tsv> [--kind yago2|dbpedia|imdb] [--scale N]
//           [--seed S] [--noise ALPHA]
//       Generate a knowledge-graph-shaped TSV (optionally corrupted).
//   gfdtool discover <graph.tsv> [-k K] [-s SIGMA] [-w WORKERS]
//           [-o rules.gfd]
//       Mine a cover of minimum sigma-frequent GFDs and save/print it.
//   gfdtool detect <graph.tsv>|--log <dir> <rules.gfd> [-w WORKERS]
//           [--shards N] [--max-per-gfd N] [--max-total N]
//           [--delta <delta.tsv>] [--compact-ops N]
//       Batched violation detection: group rules by pattern, one match
//       plan per group, structured violation records. Exit 3 when
//       violations were found. With --delta, runs *incrementally*: the
//       delta (E+/E-/A records) is applied as an overlay view and only
//       matches near the updated vertices are re-evaluated, reporting
//       the violations the update added (+) and removed (-). Exit codes
//       distinguish the post-update states: 0 the updated graph is
//       violation-free, 3 the update added violations, 4 the update
//       added none but pre-existing violations remain. With --log the
//       graph comes from a durable store (replayed on open) and the
//       --delta batch is appended to its log before detection.
//   gfdtool log init <dir> <graph.tsv>
//       Create a durable graph store: snapshot + empty delta log.
//   gfdtool log append <dir> <delta.tsv> [--compact-ops N]
//       Durably append one update batch and apply it (auto-compacts per
//       policy; --compact-ops overrides the ops threshold).
//   gfdtool log replay <dir> [-o graph.tsv]
//       Replay the log onto the snapshot, report recovery stats, and
//       optionally dump the materialized current graph.
//   gfdtool log compact <dir>
//       Roll the snapshot forward over the overlay and re-anchor the log.
//   gfdtool validate <graph.tsv> <rules.gfd>
//       Boolean check G |= Sigma, rule by rule. Exit 3 on violation.
//   gfdtool cover <graph.tsv> <rules.gfd> [-w WORKERS] [-o cover.gfd]
//       Reduce a rule file to a minimal equivalent cover.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "datagen/kb.h"
#include "datagen/noise.h"
#include "detect/engine.h"
#include "gfd/serialize.h"
#include "gfd/validation.h"
#include "graph/loader.h"
#include "parallel/fragment.h"
#include "parallel/parcover.h"
#include "parallel/pardis.h"
#include "serve/graph_store.h"
#include "util/timer.h"

using namespace gfd;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: gfdtool gen <out.tsv> [--kind yago2|dbpedia|imdb] "
      "[--scale N] [--seed S] [--noise ALPHA]\n"
      "       gfdtool discover <graph.tsv> [-k K] [-s SIGMA] [-w WORKERS] "
      "[-o rules.gfd]\n"
      "       gfdtool detect <graph.tsv>|--log <dir> <rules.gfd> "
      "[-w WORKERS] [--shards N] [--max-per-gfd N] [--max-total N] "
      "[--delta FILE] [--compact-ops N]\n"
      "       gfdtool log init <dir> <graph.tsv>\n"
      "       gfdtool log append <dir> <delta.tsv> [--compact-ops N]\n"
      "       gfdtool log replay <dir> [-o graph.tsv]\n"
      "       gfdtool log compact <dir>\n"
      "       gfdtool validate <graph.tsv> <rules.gfd>\n"
      "       gfdtool cover <graph.tsv> <rules.gfd> [-w WORKERS] "
      "[-o cover.gfd]\n");
  return 2;
}

// Exit codes of `detect` (documented in the README): 0 clean, 3 the run /
// the update found or added violations, 4 an update added none but
// pre-existing violations remain.
constexpr int kExitViolations = 3;
constexpr int kExitPreexistingOnly = 4;

int VerdictExit(DeltaVerdict v) {
  switch (v) {
    case DeltaVerdict::kClean:
      return 0;
    case DeltaVerdict::kAddedViolations:
      return kExitViolations;
    case DeltaVerdict::kPreexistingOnly:
      return kExitPreexistingOnly;
  }
  return 1;
}

const char* VerdictName(DeltaVerdict v) {
  switch (v) {
    case DeltaVerdict::kClean:
      return "clean";
    case DeltaVerdict::kAddedViolations:
      return "added-violations";
    case DeltaVerdict::kPreexistingOnly:
      return "pre-existing-only";
  }
  return "?";
}

std::optional<std::string> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Loader errors carry line numbers as "line N: msg"; render them in the
// editor-clickable "path:N: msg" form.
std::string FileLineError(const char* path, const std::string& error) {
  std::string_view e = error;
  if (e.starts_with("line ")) {
    size_t colon = e.find(": ");
    if (colon != std::string_view::npos) {
      return std::string(path) + ":" + std::string(e.substr(5, colon - 5)) +
             ": " + std::string(e.substr(colon + 2));
    }
  }
  return std::string(path) + ": " + error;
}

std::optional<PropertyGraph> LoadGraph(const char* path) {
  std::string error;
  auto g = LoadGraphTsvFile(path, &error);
  if (!g) {
    std::fprintf(stderr, "error loading %s\n",
                 FileLineError(path, error).c_str());
  }
  return g;
}

std::optional<std::vector<Gfd>> LoadRules(const char* path,
                                          const PropertyGraph& g) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return std::nullopt;
  }
  // Lenient: serving tolerates vocabulary drift between the mining and
  // the checked graph (a TSV round trip only keeps in-use vocabulary).
  size_t skipped = 0;
  auto rules = LoadGfdsLenient(in, g, &skipped);
  if (skipped) {
    std::fprintf(stderr,
                 "%s: skipped %zu rule(s) referencing vocabulary this "
                 "graph does not intern\n",
                 path, skipped);
  }
  if (rules.empty()) {
    std::fprintf(stderr, "%s: no loadable rules\n", path);
    return std::nullopt;
  }
  return rules;
}

// Writes `gfds` to `path`, or stdout when path is null.
void EmitRules(std::span<const Gfd> gfds, const PropertyGraph& g,
               const char* path) {
  if (path) {
    std::ofstream out(path);
    SaveGfds(gfds, g, out);
    std::fprintf(stderr, "wrote %zu rules to %s\n", gfds.size(), path);
  } else {
    std::ostringstream os;
    SaveGfds(gfds, g, os);
    std::fputs(os.str().c_str(), stdout);
  }
}

// Shared flag scanning: returns the value after `flag` or null.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], flag)) return argv[i + 1];
  }
  return nullptr;
}

// Count-valued flag ("-w 4", "--shards 3"). Rejects "-w -1" / "-w x"
// instead of letting a negative wrap to a 2^64-sized thread pool.
// Returns false (after complaining) on a malformed value; `min` is 0 for
// budget flags where 0 means "unlimited".
bool CountFlag(int argc, char** argv, const char* flag, size_t* out,
               long long min = 1) {
  const char* v = FlagValue(argc, argv, flag);
  if (!v) return true;
  char* end = nullptr;
  long long n = std::strtoll(v, &end, 10);
  if (!end || *end != '\0' || n < min || n > 1 << 30) {
    std::fprintf(stderr, "%s expects a count >= %lld, got '%s'\n", flag, min,
                 v);
    return false;
  }
  *out = static_cast<size_t>(n);
  return true;
}

int Gen(int argc, char** argv) {
  if (argc < 1) return Usage();
  const char* out_path = argv[0];
  KbConfig cfg;
  if (!CountFlag(argc, argv, "--scale", &cfg.scale)) return Usage();
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    cfg.seed = std::strtoull(v, nullptr, 10);
  }
  const char* kind = FlagValue(argc, argv, "--kind");
  PropertyGraph g;
  if (!kind || !std::strcmp(kind, "yago2")) {
    g = MakeYago2Like(cfg);
  } else if (!std::strcmp(kind, "dbpedia")) {
    g = MakeDbpediaLike(cfg);
  } else if (!std::strcmp(kind, "imdb")) {
    g = MakeImdbLike(cfg);
  } else {
    std::fprintf(stderr, "unknown --kind %s\n", kind);
    return Usage();
  }
  if (const char* v = FlagValue(argc, argv, "--noise")) {
    NoiseConfig ncfg;
    ncfg.alpha = std::strtod(v, nullptr);
    ncfg.seed = cfg.seed + 1;
    auto noisy = InjectNoise(g, ncfg);
    std::fprintf(stderr, "corrupted %zu of %zu nodes\n",
                 noisy.corrupted.size(), g.NumNodes());
    g = std::move(noisy.graph);
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  SaveGraphTsv(g, out);
  std::fprintf(stderr, "wrote %s: %zu nodes, %zu edges\n", out_path,
               g.NumNodes(), g.NumEdges());
  return 0;
}

int Discover(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto g = LoadGraph(argv[0]);
  if (!g) return 1;
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = std::max<uint64_t>(10, g->NumNodes() / 100);
  ParallelRunConfig pcfg;
  size_t k = cfg.k, sigma = cfg.support_threshold;
  if (!CountFlag(argc, argv, "-k", &k) ||
      !CountFlag(argc, argv, "-s", &sigma) ||
      !CountFlag(argc, argv, "-w", &pcfg.workers)) {
    return Usage();
  }
  cfg.k = static_cast<uint32_t>(k);
  cfg.support_threshold = sigma;
  WallTimer t;
  auto result = ParDis(*g, cfg, pcfg);
  size_t positives = result.positives.size();
  size_t negatives = result.negatives.size();
  auto cover = ParCover(std::move(result).AllGfds(), pcfg);
  std::fprintf(stderr,
               "discovered %zu GFDs (%zu positive, %zu negative) in %.2fs; "
               "cover has %zu\n",
               positives + negatives, positives, negatives, t.Seconds(),
               cover.size());
  EmitRules(cover, *g, FlagValue(argc, argv, "-o"));
  return 0;
}

// Opens a graph store, reporting recovery context on stderr.
std::optional<GraphStore> OpenStore(const char* dir,
                                    const GraphStoreOptions& opts) {
  std::string error;
  auto store = GraphStore::Open(dir, opts, &error);
  if (!store) {
    std::fprintf(stderr, "error opening store %s: %s\n", dir, error.c_str());
    return std::nullopt;
  }
  const GraphStoreStats& st = store->stats();
  std::fprintf(stderr,
               "store %s: snapshot@%llu + %zu replayed batch(es) -> seq "
               "%llu, overlay %zu op(s)%s%s\n",
               dir, static_cast<unsigned long long>(st.anchor_seq),
               st.replayed_batches,
               static_cast<unsigned long long>(st.last_seq),
               store->overlay().ops.size(),
               st.truncated_bytes ? " [corrupt tail cut]" : "",
               st.skipped_batches ? " [pre-anchor records dropped]" : "");
  return store;
}

// Acknowledges a durable append on stderr and runs the compaction
// policy, reporting a snapshot roll when it fires.
bool AppendFollowUp(GraphStore& store, uint64_t seq) {
  std::fprintf(stderr, "appended batch seq %llu (%zu overlay ops)\n",
               static_cast<unsigned long long>(seq),
               store.overlay().ops.size());
  std::string error;
  if (!store.MaybeCompact(&error)) {
    std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
    return false;
  }
  if (store.stats().compactions > 0) {
    std::fprintf(stderr, "compacted: snapshot rolled to seq %llu\n",
                 static_cast<unsigned long long>(store.stats().anchor_seq));
  }
  return true;
}

// Prints an incremental diff (+ added against `view`, - removed against
// `removed_graph`, a PropertyGraph or GraphView holding the pre-update
// state), classifies the post-update state, and returns the documented
// exit code.
template <typename RemovedGraphT>
int ReportDiff(const ViolationEngine& engine, const GraphView& view,
               const RemovedGraphT& removed_graph, const IncrementalDiff& diff,
               double seconds, size_t workers) {
  for (const Violation& v : diff.added) {
    std::printf("+ %s\n", DescribeViolation(view, engine.rules(), v).c_str());
  }
  for (const Violation& v : diff.removed) {
    std::printf("- %s\n",
                DescribeViolation(removed_graph, engine.rules(), v).c_str());
  }
  std::fprintf(stderr,
               "incremental: +%zu -%zu violation(s) in %.3fs: %lu anchor "
               "enumerations over %zu plans, %lu touched matches\n",
               diff.added.size(), diff.removed.size(), seconds,
               static_cast<unsigned long>(diff.stats.anchors_scanned),
               diff.stats.anchor_plans,
               static_cast<unsigned long>(diff.stats.matches_seen));
  DeltaVerdict verdict = ClassifyDelta(engine, view, diff, workers);
  std::fprintf(stderr, "verdict: %s\n", VerdictName(verdict));
  return VerdictExit(verdict);
}

int Detect(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* log_dir = nullptr;
  int pos = 0;
  if (!std::strcmp(argv[0], "--log")) {
    if (argc < 3) return Usage();
    log_dir = argv[1];
    pos = 2;
  }

  DetectOptions opts;
  opts.workers = 4;
  GraphStoreOptions sopts;
  if (!CountFlag(argc, argv, "-w", &opts.workers) ||
      !CountFlag(argc, argv, "--max-per-gfd", &opts.max_violations_per_gfd,
                 /*min=*/0) ||
      !CountFlag(argc, argv, "--max-total", &opts.max_total_violations,
                 /*min=*/0) ||
      !CountFlag(argc, argv, "--compact-ops", &sopts.compact_min_ops,
                 /*min=*/0)) {
    return Usage();
  }

  std::optional<PropertyGraph> g;
  std::optional<GraphStore> store;
  const char* rules_path = nullptr;
  if (log_dir) {
    if (FlagValue(argc, argv, "--shards")) {
      std::fprintf(stderr, "--shards is not supported with --log\n");
      return Usage();
    }
    store = OpenStore(log_dir, sopts);
    if (!store) return 1;
    rules_path = argv[pos];
  } else {
    g = LoadGraph(argv[pos]);
    if (!g) return 1;
    if (pos + 1 >= argc) return Usage();
    rules_path = argv[pos + 1];
  }
  // Rules resolve against the snapshot's vocabulary; `log compact` folds
  // overlay-introduced vocabulary into the snapshot.
  auto rules = LoadRules(rules_path, log_dir ? store->base() : *g);
  if (!rules) return 1;

  WallTimer build;
  ViolationEngine engine(std::move(*rules));
  std::fprintf(stderr,
               "compiled %zu rules into %zu pattern groups (%.1fms)\n",
               engine.NumRules(), engine.NumGroups(),
               build.Seconds() * 1e3);

  if (const char* delta_path = FlagValue(argc, argv, "--delta")) {
    // Caps would make the added/removed diff ill-defined (a budget could
    // cut off one side of the comparison) and sharding is a full-scan
    // concept, so refuse rather than silently ignore them.
    for (const char* flag : {"--max-per-gfd", "--max-total", "--shards"}) {
      if (FlagValue(argc, argv, flag)) {
        std::fprintf(stderr, "%s is not supported with --delta\n", flag);
        return Usage();
      }
    }
    if (log_dir) {
      // Serving step: durably append the batch, then diff exactly it.
      auto payload = ReadFile(delta_path);
      if (!payload) return 1;
      // Removed violations render against the graph they existed in --
      // the pre-append state. A copy of the overlay is enough to rebuild
      // it, and only needed when something was actually removed.
      GraphDelta pre_overlay = store->overlay();
      std::string error;
      uint64_t seq = 0;
      IncrementalOptions iopts;
      iopts.workers = opts.workers;
      WallTimer t;
      auto diff =
          AppendAndDiff(*store, engine, *payload, iopts, &seq, &error);
      if (!diff) {
        std::fprintf(stderr, "error appending %s\n",
                     FileLineError(delta_path, error).c_str());
        return 1;
      }
      double seconds = t.Seconds();
      // Report before AppendFollowUp: a compaction there replaces the
      // base graph the pre-append view would dangle on.
      int code;
      if (diff->removed.empty()) {
        code = ReportDiff(engine, store->view(), store->base(), *diff,
                          seconds, opts.workers);
      } else {
        auto before = GraphView::Apply(store->base(), pre_overlay);
        code = ReportDiff(engine, store->view(), *before, *diff, seconds,
                          opts.workers);
      }
      if (!AppendFollowUp(*store, seq)) return 1;
      return code;
    }
    std::string error;
    auto delta = LoadGraphDeltaTsvFile(delta_path, *g, &error);
    if (!delta) {
      std::fprintf(stderr, "error loading %s\n",
                   FileLineError(delta_path, error).c_str());
      return 1;
    }
    auto view = GraphView::Apply(*g, *delta, &error);
    if (!view) {
      std::fprintf(stderr, "error applying %s: %s\n", delta_path,
                   error.c_str());
      return 1;
    }
    IncrementalOptions iopts;
    iopts.workers = opts.workers;
    WallTimer t;
    auto diff = engine.DetectIncremental(*view, iopts);
    double seconds = t.Seconds();
    std::fprintf(stderr,
                 "delta: %zu ops (%zu+ %zu- edges, %zu attr sets) touching "
                 "%zu nodes\n",
                 view->NumDeltaOps(), view->NumInsertedEdges(),
                 view->NumDeletedEdges(), view->NumAttrSets(),
                 diff.stats.affected_nodes);
    // Added violations render against the view (post-update values),
    // removed ones against the base graph they existed in.
    return ReportDiff(engine, *view, *g, diff, seconds, opts.workers);
  }

  WallTimer t;
  DetectionResult result;
  size_t shards = 0;
  if (!CountFlag(argc, argv, "--shards", &shards)) return Usage();
  if (log_dir) {
    result = engine.Detect(store->view(), opts);
  } else if (shards > 0) {
    auto frag = VertexCutPartition(*g, shards);
    ClusterStats cstats;
    result = engine.DetectSharded(*g, frag, opts, &cstats);
    std::fprintf(stderr,
                 "sharded over %zu fragments: %lu messages, %lu bytes "
                 "shipped, replication %.2f\n",
                 frag.num_fragments,
                 static_cast<unsigned long>(cstats.messages),
                 static_cast<unsigned long>(cstats.bytes_shipped),
                 cstats.replication);
  } else {
    result = engine.Detect(*g, opts);
  }
  for (const Violation& v : result.violations) {
    std::printf("%s\n", log_dir
                            ? DescribeViolation(store->view(), engine.rules(),
                                                v)
                                  .c_str()
                            : DescribeViolation(*g, engine.rules(), v).c_str());
  }
  std::fprintf(stderr,
               "%zu violation(s) in %.2fs%s: %lu pivots scanned, %lu "
               "matches, %lu literal evals\n",
               result.violations.size(), t.Seconds(),
               result.stats.truncated ? " (truncated by budget)" : "",
               static_cast<unsigned long>(result.stats.pivots_scanned),
               static_cast<unsigned long>(result.stats.matches_seen),
               static_cast<unsigned long>(result.stats.literal_evals));
  return result.violations.empty() ? 0 : kExitViolations;
}

int Log(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* verb = argv[0];
  const char* dir = argv[1];
  GraphStoreOptions sopts;
  if (!CountFlag(argc, argv, "--compact-ops", &sopts.compact_min_ops,
                 /*min=*/0)) {
    return Usage();
  }

  if (!std::strcmp(verb, "init")) {
    if (argc < 3) return Usage();
    auto g = LoadGraph(argv[2]);
    if (!g) return 1;
    std::string error;
    if (!GraphStore::Init(dir, *g, &error)) {
      std::fprintf(stderr, "error initializing %s: %s\n", dir, error.c_str());
      return 1;
    }
    std::fprintf(stderr, "initialized store %s: %zu nodes, %zu edges\n", dir,
                 g->NumNodes(), g->NumEdges());
    return 0;
  }

  auto store = OpenStore(dir, sopts);
  if (!store) return 1;

  if (!std::strcmp(verb, "append")) {
    if (argc < 3) return Usage();
    auto payload = ReadFile(argv[2]);
    if (!payload) return 1;
    std::string error;
    auto seq = store->Append(*payload, &error);
    if (!seq) {
      std::fprintf(stderr, "error appending %s\n",
                   FileLineError(argv[2], error).c_str());
      return 1;
    }
    return AppendFollowUp(*store, *seq) ? 0 : 1;
  }

  if (!std::strcmp(verb, "replay")) {
    const GraphView& view = store->view();
    std::fprintf(stderr, "current graph: %zu nodes, %zu edges\n",
                 view.NumNodes(), view.NumEdges());
    if (const char* out_path = FlagValue(argc, argv, "-o")) {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", out_path);
        return 1;
      }
      SaveGraphTsv(store->MaterializeCurrent(), out);
      std::fprintf(stderr, "wrote %s\n", out_path);
    }
    return 0;
  }

  if (!std::strcmp(verb, "compact")) {
    std::string error;
    if (!store->Compact(&error)) {
      std::fprintf(stderr, "compaction failed: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot anchored at seq %llu, log re-anchored\n",
                 static_cast<unsigned long long>(store->stats().anchor_seq));
    return 0;
  }

  return Usage();
}

int Validate(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto g = LoadGraph(argv[0]);
  if (!g) return 1;
  auto rules = LoadRules(argv[1], *g);
  if (!rules) return 1;
  size_t violated = 0;
  for (const auto& phi : *rules) {
    CompiledPattern plan(phi.pattern);
    auto check = EvaluateGfd(*g, plan, phi, {}, /*abort_on_violation=*/true);
    if (!check.satisfied) {
      ++violated;
      std::printf("VIOLATED: %s\n", phi.ToString(*g).c_str());
    }
  }
  std::printf("%zu/%zu rules violated\n", violated, rules->size());
  return violated == 0 ? 0 : 3;
}

int Cover(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto g = LoadGraph(argv[0]);
  if (!g) return 1;
  auto rules = LoadRules(argv[1], *g);
  if (!rules) return 1;
  ParallelRunConfig pcfg;
  if (!CountFlag(argc, argv, "-w", &pcfg.workers)) return Usage();
  size_t before = rules->size();
  CoverStats stats;
  auto cover = ParCover(std::move(*rules), pcfg, &stats);
  std::fprintf(stderr, "cover: %zu -> %zu rules (%lu implication tests)\n",
               before, cover.size(),
               static_cast<unsigned long>(stats.implication_tests));
  EmitRules(cover, *g, FlagValue(argc, argv, "-o"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!std::strcmp(argv[1], "gen")) return Gen(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "discover")) return Discover(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "detect")) return Detect(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "log")) return Log(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "validate")) return Validate(argc - 2, argv + 2);
  if (!std::strcmp(argv[1], "cover")) return Cover(argc - 2, argv + 2);
  return Usage();
}
