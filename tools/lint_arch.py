#!/usr/bin/env python3
"""Architecture and lock-discipline linter for the gfd_discovery tree.

Enforces, from the repository root:

1. Layer DAG (include edges). The per-layer static libraries declared in
   src/*/CMakeLists.txt (gfd_add_layer ... DEPS ...) imply a strict
   layering: a file in src/<layer>/ may #include only headers of <layer>
   itself or of layers reachable through its (transitive) DEPS. Upward
   and skip-layer includes are rejected. tools/, tests/, bench/ and
   examples/ sit above every layer and may include anything.

2. Lock discipline (the conventions src/ already follows):
   - no naked std::mutex::lock()/unlock()/try_lock() calls -- scoped
     RAII guards only (std::lock_guard / std::unique_lock / std::scoped_lock).
     Calls on identifiers named `lock`/`lk` (the RAII guard convention)
     are allowed, e.g. `lock.unlock()` on a std::unique_lock.
   - no std::thread::detach() -- every thread must be joined.
   - every std::mutex / std::shared_mutex *member* (identifier ending in
     `_`) carries a `guards:` comment -- on the same line or in the
     comment block directly above -- naming the fields it protects.

3. Doc drift. Every layer directory appears in docs/ARCHITECTURE.md, and
   the generated DAG listing between the markers
       <!-- lint-arch:dag -->
       <!-- /lint-arch:dag -->
   matches `lint_arch.py --print-dag` verbatim.

Exit codes: 0 clean, 1 findings, 2 usage/environment error.

`--self-test` proves the gate actually fails red: it lints synthetic
trees seeded with one violation of each class (upward include, naked
lock, detach, undocumented mutex, doc drift) and requires every one of
them to be flagged, plus a clean tree to pass.
"""

import argparse
import os
import re
import sys
import tempfile

MARKER_BEGIN = "<!-- lint-arch:dag -->"
MARKER_END = "<!-- /lint-arch:dag -->"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
LAYER_RE = re.compile(r"gfd_add_layer\(\s*(\w+)([^)]*)\)", re.S)
DEPS_RE = re.compile(r"\bDEPS\b(.*)$", re.S)
# A naked lock-primitive call: receiver.lock() / receiver->lock() etc.
NAKED_LOCK_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(lock|unlock|try_lock)\s*\(")
DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(?:shared_)?mutex\s+(\w+_)\s*(?:\{[^}]*\})?;"
)
# RAII guard names the naked-lock check ignores (std::unique_lock local).
GUARD_NAMES = {"lock", "lk"}
SOURCE_EXTS = (".h", ".cc")


def fail(msg):
    print(f"lint_arch: {msg}", file=sys.stderr)
    sys.exit(2)


def strip_comments(line):
    """Drops // comments and best-effort string literals from one line."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//")[0]


def parse_layers(root):
    """Reads the layer DAG from src/*/CMakeLists.txt."""
    layers = {}
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        fail(f"no src/ directory under {root}")
    for entry in sorted(os.listdir(src)):
        cml = os.path.join(src, entry, "CMakeLists.txt")
        if not os.path.isfile(cml):
            continue
        with open(cml, encoding="utf-8") as f:
            text = f.read()
        m = LAYER_RE.search(text)
        if not m:
            continue
        name, body = m.group(1), m.group(2)
        if name != entry:
            fail(f"{cml}: layer name '{name}' != directory '{entry}'")
        deps = []
        dm = DEPS_RE.search(body)
        if dm:
            for tok in dm.group(1).split():
                if tok in ("SOURCES",):
                    break
                deps.append(tok)
        layers[name] = sorted(deps)
    if not layers:
        fail(f"no gfd_add_layer() declarations found under {src}")
    return layers


def transitive_closure(layers):
    """Maps each layer to the set of layers it may depend on (not self).

    Also detects cycles and unknown DEPS.
    """
    closure = {}
    errors = []

    def visit(name, stack):
        if name in closure:
            return closure[name]
        if name in stack:
            errors.append(
                "dependency cycle: " + " -> ".join(stack + [name])
            )
            return set()
        reach = set()
        for dep in layers.get(name, []):
            if dep not in layers:
                errors.append(f"layer '{name}' DEPS unknown layer '{dep}'")
                continue
            reach.add(dep)
            reach |= visit(dep, stack + [name])
        closure[name] = reach
        return reach

    for name in layers:
        visit(name, [])
    return closure, errors


def dag_listing(layers):
    """The canonical textual DAG, one `layer -> deps` line per layer."""
    lines = []
    for name in sorted(layers):
        deps = " ".join(layers[name])
        lines.append(f"{name} -> {deps}".rstrip())
    return "\n".join(lines) + "\n"


def iter_source_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, fn)


def check_includes(root, layers, closure):
    errors = []
    src = os.path.join(root, "src")
    for path in iter_source_files(root, ["src"]):
        rel = os.path.relpath(path, src)
        layer = rel.split(os.sep)[0]
        if layer not in layers:
            continue
        allowed = closure[layer] | {layer}
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group(1).split("/")[0]
                if "/" not in m.group(1):
                    # Not a layer-qualified include (system-style or
                    # local); the layer convention is "layer/name.h".
                    errors.append(
                        f"{path}:{lineno}: include \"{m.group(1)}\" is not "
                        f"layer-qualified (headers are spelled "
                        f"\"layer/name.h\")"
                    )
                    continue
                if target not in layers:
                    errors.append(
                        f"{path}:{lineno}: include \"{m.group(1)}\" names "
                        f"unknown layer '{target}'"
                    )
                    continue
                if target not in allowed:
                    kind = (
                        "upward"
                        if layer in closure.get(target, set())
                        else "skip-layer"
                    )
                    errors.append(
                        f"{path}:{lineno}: {kind} include: layer '{layer}' "
                        f"may not include \"{m.group(1)}\" (allowed: "
                        f"{', '.join(sorted(allowed))})"
                    )
    return errors


def check_lock_discipline(root):
    errors = []
    for path in iter_source_files(root, ["src", "tools"]):
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
        for lineno, raw in enumerate(lines, 1):
            line = strip_comments(raw)
            for m in NAKED_LOCK_RE.finditer(line):
                receiver = m.group(1)
                if receiver in GUARD_NAMES:
                    continue
                errors.append(
                    f"{path}:{lineno}: naked {m.group(2)}() on "
                    f"'{receiver}' -- use std::lock_guard / "
                    f"std::unique_lock (RAII) instead"
                )
            if DETACH_RE.search(line):
                errors.append(
                    f"{path}:{lineno}: detach() is forbidden -- every "
                    f"thread must be joined"
                )
        # `guards:` comments only apply to members inside src/.
        if os.sep + "src" + os.sep not in path + os.sep:
            continue
        for lineno, raw in enumerate(lines, 1):
            m = MUTEX_MEMBER_RE.match(raw)
            if not m:
                continue
            if "guards:" in raw:
                continue
            # Look upward through the directly preceding comment block.
            documented = False
            i = lineno - 2
            while i >= 0:
                s = lines[i].strip()
                if s.startswith("//") or s.startswith("///"):
                    if "guards:" in s:
                        documented = True
                        break
                    i -= 1
                else:
                    break
            if not documented:
                errors.append(
                    f"{path}:{lineno}: mutex member '{m.group(1)}' has no "
                    f"`guards:` comment naming the fields it protects"
                )
    return errors


def check_docs(root, layers):
    errors = []
    doc_path = os.path.join(root, "docs", "ARCHITECTURE.md")
    if not os.path.isfile(doc_path):
        return [f"{doc_path}: missing (the layer map lives here)"]
    with open(doc_path, encoding="utf-8") as f:
        doc = f.read()
    begin = doc.find(MARKER_BEGIN)
    end = doc.find(MARKER_END)
    # The prose layer map must mention every layer itself; the generated
    # listing does not count as a mention.
    prose = doc
    if 0 <= begin < end:
        prose = doc[:begin] + doc[end + len(MARKER_END):]
    for name in sorted(layers):
        if not re.search(rf"\b{re.escape(name)}\b", prose):
            errors.append(
                f"{doc_path}: layer '{name}' does not appear in the "
                f"architecture doc"
            )
    if begin < 0 or end < 0 or end < begin:
        errors.append(
            f"{doc_path}: missing {MARKER_BEGIN} .. {MARKER_END} block "
            f"(regenerate with: python3 tools/lint_arch.py --print-dag)"
        )
        return errors
    block = doc[begin + len(MARKER_BEGIN):end]
    # The block is a fenced code listing; compare the bare lines.
    body = [
        ln for ln in block.strip().splitlines() if ln.strip() and
        not ln.strip().startswith("```")
    ]
    expected = dag_listing(layers).strip().splitlines()
    if body != expected:
        errors.append(
            f"{doc_path}: DAG listing is stale -- regenerate with: "
            f"python3 tools/lint_arch.py --print-dag"
        )
    return errors


def run_lint(root):
    layers = parse_layers(root)
    closure, errors = transitive_closure(layers)
    errors += check_includes(root, layers, closure)
    errors += check_lock_discipline(root)
    errors += check_docs(root, layers)
    return errors


# ----------------------------------------------------------------------
# Self-test: prove the gate fails red on seeded violations.

CLEAN_TREE = {
    "src/alpha/CMakeLists.txt": "gfd_add_layer(alpha\n  SOURCES a.cc)\n",
    "src/alpha/a.h": "// base layer\n",
    "src/alpha/a.cc": '#include "alpha/a.h"\n',
    "src/beta/CMakeLists.txt": (
        "gfd_add_layer(beta\n  SOURCES b.cc\n  DEPS alpha)\n"
    ),
    "src/beta/b.h": (
        "#include <mutex>\n"
        "struct B {\n"
        "  std::mutex mu_;  // guards: x_\n"
        "  int x_ = 0;\n"
        "};\n"
    ),
    "src/beta/b.cc": '#include "beta/b.h"\n#include "alpha/a.h"\n',
    "docs/ARCHITECTURE.md": (
        "# Arch\nalpha beta\n"
        + MARKER_BEGIN
        + "\n```\nalpha ->\nbeta -> alpha\n```\n"
        + MARKER_END
        + "\n"
    ),
}


def write_tree(base, files):
    for rel, content in files.items():
        path = os.path.join(base, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test():
    cases = [
        # (name, file overrides, substring every failure must mention)
        ("clean tree passes", {}, None),
        (
            "upward include fails",
            {"src/alpha/a.cc": '#include "beta/b.h"\n'},
            "upward include",
        ),
        (
            "skip-layer include is labeled",
            {
                "src/gamma/CMakeLists.txt": (
                    "gfd_add_layer(gamma\n  SOURCES g.cc\n  DEPS beta)\n"
                ),
                "src/gamma/g.cc": '#include "alpha/a.h"\n',
                "docs/ARCHITECTURE.md": (
                    "# Arch\nalpha beta gamma\n"
                    + MARKER_BEGIN
                    + "\n```\nalpha ->\nbeta -> alpha\ngamma -> beta\n```\n"
                    + MARKER_END
                    + "\n"
                ),
            },
            # gamma DEPS beta DEPS alpha, so alpha is reachable -- to get
            # a true skip we give gamma no path to alpha at all.
            None,
        ),
        (
            "naked lock fails",
            {"src/beta/b.cc": '#include "beta/b.h"\nvoid f(B& b){b.mu_.lock();}\n'},
            "naked lock()",
        ),
        (
            "detach fails",
            {
                "src/beta/b.cc": (
                    '#include "beta/b.h"\n#include <thread>\n'
                    "void f(){std::thread t([]{}); t.detach();}\n"
                )
            },
            "detach() is forbidden",
        ),
        (
            "undocumented mutex member fails",
            {
                "src/beta/b.h": (
                    "#include <mutex>\nstruct B {\n  std::mutex mu_;\n};\n"
                )
            },
            "no `guards:` comment",
        ),
        (
            "stale DAG doc fails",
            {
                "docs/ARCHITECTURE.md": (
                    "# Arch\nalpha beta\n"
                    + MARKER_BEGIN
                    + "\n```\nalpha ->\n```\n"
                    + MARKER_END
                    + "\n"
                )
            },
            "DAG listing is stale",
        ),
        (
            "missing layer in doc fails",
            {
                "docs/ARCHITECTURE.md": (
                    "# Arch\nalpha\n"
                    + MARKER_BEGIN
                    + "\n```\nalpha ->\nbeta -> alpha\n```\n"
                    + MARKER_END
                    + "\n"
                )
            },
            "does not appear",
        ),
    ]
    failures = []
    for name, overrides, needle in cases:
        with tempfile.TemporaryDirectory() as tmp:
            files = dict(CLEAN_TREE)
            files.update(overrides)
            write_tree(tmp, files)
            errors = run_lint(tmp)
            if needle is None and name == "clean tree passes":
                if errors:
                    failures.append(f"{name}: expected clean, got: {errors}")
                continue
            if needle is None:
                # The "skip" case above is intentionally reachable; it
                # must therefore pass -- documents that reachability, not
                # direct DEPS, is the rule.
                if errors:
                    failures.append(f"{name}: expected clean, got: {errors}")
                continue
            if not errors:
                failures.append(f"{name}: expected a finding, got none")
            elif not any(needle in e for e in errors):
                failures.append(
                    f"{name}: no finding mentions '{needle}': {errors}"
                )
    # One genuinely-unreachable (skip-layer) case: delta DEPS nothing but
    # includes alpha.
    with tempfile.TemporaryDirectory() as tmp:
        files = dict(CLEAN_TREE)
        files["src/delta/CMakeLists.txt"] = (
            "gfd_add_layer(delta\n  SOURCES d.cc)\n"
        )
        files["src/delta/d.cc"] = '#include "alpha/a.h"\n'
        files["docs/ARCHITECTURE.md"] = (
            "# Arch\nalpha beta delta\n"
            + MARKER_BEGIN
            + "\n```\nalpha ->\nbeta -> alpha\ndelta ->\n```\n"
            + MARKER_END
            + "\n"
        )
        write_tree(tmp, files)
        errors = run_lint(tmp)
        if not any("skip-layer include" in e for e in errors):
            failures.append(f"undeclared-dep include not flagged: {errors}")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("lint_arch self-test: all cases behaved as expected")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)",
    )
    ap.add_argument(
        "--print-dag",
        action="store_true",
        help="print the canonical layer-DAG listing and exit",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="lint synthetic trees seeded with violations; fails unless "
        "every seeded violation is flagged",
    )
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    layers = parse_layers(args.root)
    if args.print_dag:
        sys.stdout.write(dag_listing(layers))
        return
    errors = run_lint(args.root)
    if errors:
        for e in errors:
            print(e)
        print(f"lint_arch: {len(errors)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("lint_arch: OK")


if __name__ == "__main__":
    main()
