#!/usr/bin/env python3
"""clang-tidy gate: run the repo .clang-tidy over compile_commands.json
and diff the findings against a baseline (empty by policy -- any finding
fails).

Usage:
    python3 tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                                    [--clang-tidy BIN] [--baseline FILE]
                                    [paths ...]

- The build dir must contain compile_commands.json (the root
  CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS).
- Translation units are taken from the compile database, restricted to
  src/ and tools/ (tests and benches lean on GoogleTest macros that
  clang-tidy dislikes for reasons that are not ours to fix). Positional
  `paths` further restrict the run, e.g. `src/serve`.
- Findings are normalized to "relpath:line: [check] message" and
  compared against the baseline file: a JSON array of such strings,
  default empty. New findings fail the gate (exit 1); fixed baseline
  entries are reported so the baseline can shrink, never silently grow.

Exit codes: 0 clean, 1 new findings, 2 usage/environment error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

FINDING_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<msg>.*?) \[(?P<check>[\w\-.,]+)\]$"
)

CANDIDATE_BINARIES = (
    "clang-tidy",
    "clang-tidy-20",
    "clang-tidy-19",
    "clang-tidy-18",
)


def fail(msg):
    print(f"run_clang_tidy: {msg}", file=sys.stderr)
    sys.exit(2)


def find_clang_tidy(explicit):
    if explicit:
        path = shutil.which(explicit)
        if not path:
            fail(f"clang-tidy binary '{explicit}' not found")
        return path
    env = os.environ.get("CLANG_TIDY")
    if env:
        path = shutil.which(env)
        if not path:
            fail(f"$CLANG_TIDY ('{env}') not found")
        return path
    for name in CANDIDATE_BINARIES:
        path = shutil.which(name)
        if path:
            return path
    fail(
        "no clang-tidy on PATH (tried: "
        + ", ".join(CANDIDATE_BINARIES)
        + "); install it or pass --clang-tidy"
    )


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        fail(
            f"{db_path} missing -- configure with cmake first "
            f"(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)"
        )
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


def select_files(db, root, restrict_paths):
    """Translation units under src/ or tools/, deduplicated, sorted."""
    wanted_roots = [os.path.join(root, "src"), os.path.join(root, "tools")]
    if restrict_paths:
        wanted_roots = [os.path.abspath(p) for p in restrict_paths]
    files = set()
    for entry in db:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"])
        )
        if not path.endswith(".cc"):
            continue
        if any(
            os.path.commonpath([path, wr]) == wr
            for wr in wanted_roots
            if os.path.exists(wr)
        ):
            files.add(path)
    return sorted(files)


def run_one(clang_tidy, build_dir, path):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    return path, proc.stdout


def normalize_findings(output, root):
    findings = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        path = os.path.abspath(m.group("file"))
        try:
            rel = os.path.relpath(path, root)
        except ValueError:
            rel = path
        if rel.startswith(".."):
            continue  # outside the repo (system headers, _deps)
        if rel.split(os.sep)[0] not in ("src", "tools"):
            continue
        findings.add(
            f"{rel}:{m.group('line')}: [{m.group('check')}] {m.group('msg')}"
        )
    return findings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument(
        "--baseline",
        default=None,
        help="JSON array of accepted findings (default: empty baseline)",
    )
    ap.add_argument("paths", nargs="*", help="restrict to these paths")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    clang_tidy = find_clang_tidy(args.clang_tidy)
    db = load_compile_db(args.build_dir)
    files = select_files(db, root, args.paths)
    if not files:
        fail("no translation units selected from the compile database")

    baseline = set()
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = set(json.load(f))

    print(
        f"run_clang_tidy: {clang_tidy} over {len(files)} TU(s), "
        f"{args.jobs} job(s)"
    )
    findings = set()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [
            pool.submit(run_one, clang_tidy, args.build_dir, f) for f in files
        ]
        for fut in concurrent.futures.as_completed(futures):
            _, output = fut.result()
            findings |= normalize_findings(output, root)

    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    for entry in fixed:
        print(f"baseline entry no longer fires (remove it): {entry}")
    if new:
        for entry in new:
            print(entry)
        print(
            f"run_clang_tidy: {len(new)} new finding(s) "
            f"(baseline {len(baseline)})",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"run_clang_tidy: OK ({len(files)} TU(s) clean)")


if __name__ == "__main__":
    main()
