#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/tsv.h"

namespace gfd {
namespace {

TEST(Interner, AssignsDenseIdsInOrder) {
  StringInterner in;
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Intern("b"), 1u);
  EXPECT_EQ(in.Intern("c"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interner, ReturnsExistingIdOnReintern) {
  StringInterner in;
  uint32_t a = in.Intern("alpha");
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, RoundTripsStrings) {
  StringInterner in;
  uint32_t id = in.Intern("hello world");
  EXPECT_EQ(in.Get(id), "hello world");
}

TEST(Interner, FindMissingReturnsNullopt) {
  StringInterner in;
  in.Intern("x");
  EXPECT_FALSE(in.Find("y").has_value());
  EXPECT_TRUE(in.Find("x").has_value());
}

TEST(Interner, EmptyStringIsValid) {
  StringInterner in;
  uint32_t id = in.Intern("");
  EXPECT_EQ(in.Get(id), "");
  EXPECT_EQ(in.Find(""), id);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Below(13), 13u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceZeroAndOne) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Chance(0.0));
    EXPECT_TRUE(r.Chance(1.0));
  }
}

TEST(Rng, ZipfStaysInRangeAndSkews) {
  Rng r(13);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t z = r.Zipf(n);
    ASSERT_LT(z, n);
    ++counts[z];
  }
  // Rank 0 should be much more popular than rank 50.
  EXPECT_GT(counts[0], counts[50] * 3);
}

TEST(Rng, ZipfSingleElement) {
  Rng r(1);
  EXPECT_EQ(r.Zipf(1), 0u);
}

TEST(Hash, CombineChangesSeed) {
  size_t h1 = 0, h2 = 0;
  HashCombine(h1, 1);
  HashCombine(h2, 2);
  EXPECT_NE(h1, h2);
}

TEST(Hash, VecHashDistinguishesOrder) {
  VecHash vh;
  std::vector<int> a{1, 2, 3}, b{3, 2, 1};
  EXPECT_NE(vh(a), vh(b));
}

TEST(Hash, PairHashDistinguishesSwap) {
  PairHash ph;
  EXPECT_NE(ph(std::pair(1, 2)), ph(std::pair(2, 1)));
}

TEST(Tsv, SplitsFields) {
  auto f = SplitFields("a\tbb\tccc");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "bb");
  EXPECT_EQ(f[2], "ccc");
}

TEST(Tsv, EmptyTrailingField) {
  auto f = SplitFields("a\t");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "");
}

TEST(Tsv, SingleField) {
  auto f = SplitFields("solo");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "solo");
}

TEST(Tsv, KeyValueSplit) {
  std::string_view k, v;
  ASSERT_TRUE(SplitKeyValue("type=film", &k, &v));
  EXPECT_EQ(k, "type");
  EXPECT_EQ(v, "film");
}

TEST(Tsv, KeyValueKeepsLaterEquals) {
  std::string_view k, v;
  ASSERT_TRUE(SplitKeyValue("eq=a=b", &k, &v));
  EXPECT_EQ(k, "eq");
  EXPECT_EQ(v, "a=b");
}

TEST(Tsv, KeyValueRejectsMissingEquals) {
  std::string_view k, v;
  EXPECT_FALSE(SplitKeyValue("nokey", &k, &v));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<int> hits(1000, 0);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(4);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(16);
  std::vector<int> hits(3, 0);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SubmitRacingShutdownIsRejectedNotLost) {
  // Worker tasks perpetually resubmit themselves while the main thread
  // destroys the pool. The destructor must drain every accepted task,
  // and a Submit that loses the race against shutdown must report
  // rejection instead of queueing a task no worker will ever run
  // (which would also wedge a later Wait). TSan-checked in the tsan CI
  // leg; the chains only die by rejection, so rejections == chains.
  constexpr int kChains = 16;
  std::atomic<int> executed{0};
  std::atomic<int> rejected{0};
  std::function<void()> chain;
  {
    ThreadPool pool(4);
    chain = [&pool, &executed, &rejected, &chain] {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (!pool.Submit(chain)) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    };
    for (int i = 0; i < kChains; ++i) ASSERT_TRUE(pool.Submit(chain));
    // Let the chains spin so destruction happens mid-flight.
    while (executed.load(std::memory_order_relaxed) < kChains) {
      std::this_thread::yield();
    }
  }  // ~ThreadPool races the resubmitting tasks
  EXPECT_GE(executed.load(), kChains);
  EXPECT_EQ(rejected.load(), kChains);
}

TEST(ThreadPool, SubmitAfterShutdownStartedReturnsFalse) {
  // Deterministic single-task variant: the task waits until the main
  // thread has begun destruction, then observes its resubmit rejected.
  std::atomic<bool> destructing{false};
  std::atomic<bool> saw_rejection{false};
  {
    ThreadPool pool(1);
    pool.Submit([&] {
      while (!destructing.load()) std::this_thread::yield();
      // The destructor has set the shutdown flag (it does so before
      // joining, and we are the joined thread still running).
      while (pool.Submit([] {})) {
        // Extremely narrow window: destructing was observed before the
        // destructor took the pool mutex. Retry until the flag lands.
        std::this_thread::yield();
      }
      saw_rejection.store(true);
    });
    destructing.store(true);
  }
  EXPECT_TRUE(saw_rejection.load());
}

}  // namespace
}  // namespace gfd
