#include <gtest/gtest.h>

#include <set>

#include "graph/property_graph.h"
#include "match/matcher.h"
#include "pattern/pattern.h"
#include "testlib.h"
#include "util/rng.h"

namespace gfd {
namespace {

using gfd::testing::BuildG1;
using gfd::testing::BuildG2;
using gfd::testing::BuildG3;
using gfd::testing::BuildQ1;
using gfd::testing::BuildQ2;
using gfd::testing::BuildQ3;

TEST(Matcher, Q1MatchesOnceInG1) {
  auto g = BuildG1();
  CompiledPattern cq(BuildQ1(g));
  EXPECT_EQ(CountMatches(g, cq), 1u);
  EXPECT_EQ(PatternSupport(g, cq), 1u);
}

TEST(Matcher, Q2MatchesInG2WithWildcards) {
  auto g = BuildG2();
  CompiledPattern cq(BuildQ2(g));
  // y,z wildcards over {Russia, Florida}: two ordered assignments.
  EXPECT_EQ(CountMatches(g, cq), 2u);
  EXPECT_EQ(PatternSupport(g, cq), 1u);  // one pivot city
}

TEST(Matcher, Q3MatchesMutualParentsInG3) {
  auto g = BuildG3();
  CompiledPattern cq(BuildQ3(g));
  EXPECT_EQ(CountMatches(g, cq), 2u);  // (john,owen) and (owen,john)
  EXPECT_EQ(PatternSupport(g, cq), 2u);
}

TEST(Matcher, DirectionRespected) {
  PropertyGraph::Builder b;
  NodeId a = b.AddNode("a");
  NodeId c = b.AddNode("c");
  b.AddEdge(a, c, "e");
  auto g = std::move(b).Build();
  Pattern forward = SingleEdgePattern(*g.FindLabel("a"), *g.FindLabel("e"),
                                      *g.FindLabel("c"));
  Pattern backward = SingleEdgePattern(*g.FindLabel("c"), *g.FindLabel("e"),
                                       *g.FindLabel("a"));
  EXPECT_EQ(CountMatches(g, CompiledPattern(forward)), 1u);
  EXPECT_EQ(CountMatches(g, CompiledPattern(backward)), 0u);
}

TEST(Matcher, InjectivityEnforced) {
  // Graph: one person with a self-edge. Pattern wants two distinct persons.
  PropertyGraph::Builder b;
  NodeId p = b.AddNode("person");
  b.AddEdge(p, p, "knows");
  auto g = std::move(b).Build();
  LabelId person = *g.FindLabel("person");
  LabelId knows = *g.FindLabel("knows");
  Pattern q;
  VarId x = q.AddNode(person);
  VarId y = q.AddNode(person);
  q.AddEdge(x, y, knows);
  q.set_pivot(x);
  EXPECT_EQ(CountMatches(g, CompiledPattern(q)), 0u);
}

TEST(Matcher, SelfLoopPatternMatchesSelfLoop) {
  PropertyGraph::Builder b;
  NodeId p = b.AddNode("person");
  b.AddEdge(p, p, "knows");
  NodeId q2 = b.AddNode("person");
  (void)q2;
  auto g = std::move(b).Build();
  Pattern q;
  VarId x = q.AddNode(*g.FindLabel("person"));
  q.AddEdge(x, x, *g.FindLabel("knows"));
  q.set_pivot(x);
  EXPECT_EQ(CountMatches(g, CompiledPattern(q)), 1u);
}

TEST(Matcher, ParallelEdgesDoNotDuplicateMatches) {
  PropertyGraph::Builder b;
  NodeId a = b.AddNode("a");
  NodeId c = b.AddNode("c");
  b.AddEdge(a, c, "e");
  b.AddEdge(a, c, "e");  // duplicate
  auto g = std::move(b).Build();
  Pattern q = SingleEdgePattern(*g.FindLabel("a"), *g.FindLabel("e"),
                                *g.FindLabel("c"));
  EXPECT_EQ(CountMatches(g, CompiledPattern(q)), 1u);
}

TEST(Matcher, WildcardEdgeLabel) {
  PropertyGraph::Builder b;
  NodeId a = b.AddNode("a");
  NodeId c = b.AddNode("c");
  b.AddEdge(a, c, "e1");
  b.AddEdge(a, c, "e2");
  auto g = std::move(b).Build();
  Pattern q = SingleEdgePattern(*g.FindLabel("a"), kWildcardLabel,
                                *g.FindLabel("c"));
  // Two parallel edges with different labels still bind the same node
  // pair: one match.
  EXPECT_EQ(CountMatches(g, CompiledPattern(q)), 1u);
}

TEST(Matcher, TrianglePattern) {
  PropertyGraph::Builder b;
  std::vector<NodeId> v;
  for (int i = 0; i < 4; ++i) v.push_back(b.AddNode("n"));
  b.AddEdge(v[0], v[1], "e");
  b.AddEdge(v[1], v[2], "e");
  b.AddEdge(v[2], v[0], "e");
  b.AddEdge(v[2], v[3], "e");  // tail
  auto g = std::move(b).Build();
  LabelId n = *g.FindLabel("n"), e = *g.FindLabel("e");
  Pattern tri;
  VarId x = tri.AddNode(n), y = tri.AddNode(n), z = tri.AddNode(n);
  tri.AddEdge(x, y, e);
  tri.AddEdge(y, z, e);
  tri.AddEdge(z, x, e);
  tri.set_pivot(x);
  // Directed triangle: 3 rotations.
  EXPECT_EQ(CountMatches(g, CompiledPattern(tri)), 3u);
  EXPECT_EQ(PatternSupport(g, CompiledPattern(tri)), 3u);
}

TEST(Matcher, PivotAnchoredEnumeration) {
  auto g = BuildG3();
  CompiledPattern cq(BuildQ3(g));
  int count = 0;
  cq.ForEachMatchAtPivot(g, 0, [&](const Match& m) {
    EXPECT_EQ(m[0], 0u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(Matcher, PivotSupportSetSortedDistinct) {
  auto g = BuildG3();
  CompiledPattern cq(BuildQ3(g));
  auto s = PivotSupportSet(g, cq);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_LT(s[0], s[1]);
}

TEST(Matcher, HasAnyMatchShortCircuits) {
  auto g = BuildG3();
  CompiledPattern cq(BuildQ3(g));
  EXPECT_TRUE(HasAnyMatch(g, cq));
  // A pattern that cannot match: person -parent-> person -parent-> person
  // chain of 3 distinct nodes in a 2-node graph.
  Pattern chain;
  LabelId person = *g.FindLabel("person");
  LabelId parent = *g.FindLabel("parent");
  VarId a = chain.AddNode(person), bb = chain.AddNode(person),
        c = chain.AddNode(person);
  chain.AddEdge(a, bb, parent);
  chain.AddEdge(bb, c, parent);
  chain.set_pivot(a);
  EXPECT_FALSE(HasAnyMatch(g, CompiledPattern(chain)));
}

TEST(Matcher, StepBudgetAborts) {
  // Dense bipartite graph: many candidate steps.
  PropertyGraph::Builder b;
  std::vector<NodeId> left, right;
  for (int i = 0; i < 10; ++i) left.push_back(b.AddNode("l"));
  for (int i = 0; i < 10; ++i) right.push_back(b.AddNode("r"));
  for (NodeId l : left) {
    for (NodeId r : right) b.AddEdge(l, r, "e");
  }
  auto g = std::move(b).Build();
  Pattern q;
  VarId x = q.AddNode(*g.FindLabel("l"));
  VarId y = q.AddNode(*g.FindLabel("r"));
  q.AddEdge(x, y, *g.FindLabel("e"));
  q.set_pivot(x);
  CompiledPattern cq(q);
  MatchOptions opts;
  opts.max_steps = 5;
  MatchCounters ctr;
  bool complete = cq.ForEachMatch(
      g, [](const Match&) { return true; }, opts, &ctr);
  EXPECT_FALSE(complete);
  EXPECT_TRUE(ctr.budget_exhausted);
}

TEST(Matcher, WildcardPivotScansAllNodes) {
  auto g = BuildG2();
  Pattern q;
  VarId x = q.AddNode(kWildcardLabel);
  VarId y = q.AddNode(kWildcardLabel);
  q.AddEdge(x, y, kWildcardLabel);
  q.set_pivot(x);
  CompiledPattern cq(q);
  // SaintPetersburg has two out-edges.
  EXPECT_EQ(CountMatches(g, cq), 2u);
  EXPECT_EQ(PatternSupport(g, cq), 1u);
}

// ---------------------------------------------------------------------------
// Property test: the backtracking matcher agrees with a brute-force oracle
// on random graphs and random patterns.
// ---------------------------------------------------------------------------

uint64_t OracleCount(const PropertyGraph& g, const Pattern& q) {
  const size_t k = q.NumNodes();
  std::vector<NodeId> assign(k, 0);
  uint64_t count = 0;
  // Odometer over all node assignments.
  uint64_t total = 1;
  for (size_t i = 0; i < k; ++i) total *= g.NumNodes();
  for (uint64_t code = 0; code < total; ++code) {
    uint64_t c = code;
    for (size_t i = 0; i < k; ++i) {
      assign[i] = static_cast<NodeId>(c % g.NumNodes());
      c /= g.NumNodes();
    }
    // Injective?
    bool ok = true;
    for (size_t i = 0; i < k && ok; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        if (assign[i] == assign[j]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    for (size_t i = 0; i < k && ok; ++i) {
      if (!LabelMatches(g.NodeLabel(assign[i]), q.NodeLabel(i))) ok = false;
    }
    for (const auto& e : q.edges()) {
      if (!ok) break;
      if (!g.HasEdge(assign[e.src], assign[e.dst], e.label)) ok = false;
    }
    if (ok) ++count;
  }
  return count;
}

class MatcherOracle : public ::testing::TestWithParam<int> {};

TEST_P(MatcherOracle, AgreesWithBruteForce) {
  Rng rng(GetParam());
  // Random graph: 8 nodes, 2 labels, ~14 edges, 2 edge labels.
  PropertyGraph::Builder b;
  for (int i = 0; i < 8; ++i) {
    b.AddNode(rng.Chance(0.5) ? "a" : "b");
  }
  for (int i = 0; i < 14; ++i) {
    b.AddEdgeById(static_cast<NodeId>(rng.Below(8)),
                  static_cast<NodeId>(rng.Below(8)),
                  b.InternLabel(rng.Chance(0.5) ? "e" : "f"));
  }
  auto g = std::move(b).Build();

  // Random connected pattern with 1..3 nodes (labels may be wildcard).
  auto rand_label = [&](double wild_p) -> LabelId {
    if (rng.Chance(wild_p)) return kWildcardLabel;
    auto l = g.FindLabel(rng.Chance(0.5) ? "a" : "b");
    return l ? *l : kWildcardLabel;
  };
  auto rand_elabel = [&](double wild_p) -> LabelId {
    if (rng.Chance(wild_p)) return kWildcardLabel;
    auto l = g.FindLabel(rng.Chance(0.5) ? "e" : "f");
    return l ? *l : kWildcardLabel;
  };
  Pattern q;
  size_t nvars = 1 + rng.Below(3);
  for (size_t i = 0; i < nvars; ++i) q.AddNode(rand_label(0.3));
  // Spanning edges keep it connected.
  for (size_t i = 1; i < nvars; ++i) {
    VarId other = static_cast<VarId>(rng.Below(i));
    if (rng.Chance(0.5)) {
      q.AddEdge(static_cast<VarId>(i), other, rand_elabel(0.3));
    } else {
      q.AddEdge(other, static_cast<VarId>(i), rand_elabel(0.3));
    }
  }
  // Maybe one extra edge.
  if (nvars >= 2 && rng.Chance(0.5)) {
    VarId s = static_cast<VarId>(rng.Below(nvars));
    VarId d = static_cast<VarId>(rng.Below(nvars));
    if (s != d) q.AddEdge(s, d, rand_elabel(0.3));
  }
  q.set_pivot(static_cast<VarId>(rng.Below(nvars)));

  ASSERT_TRUE(q.IsConnected());
  EXPECT_EQ(CountMatches(g, CompiledPattern(q)), OracleCount(g, q))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MatcherOracle,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace gfd
