#include <gtest/gtest.h>

#include "gfd/validation.h"
#include "testlib.h"

namespace gfd {
namespace {

using gfd::testing::BuildG1;
using gfd::testing::BuildG2;
using gfd::testing::BuildG3;
using gfd::testing::BuildQ1;
using gfd::testing::BuildQ2;
using gfd::testing::BuildQ3;

TEST(Explain, ConstConsequenceNamesActualValue) {
  auto g = BuildG1();
  AttrId type = *g.FindAttr("type");
  Gfd phi1(BuildQ1(g), {Literal::Const(1, type, *g.FindValue("film"))},
           Literal::Const(0, type, *g.FindValue("producer")));
  auto reports = ExplainViolations(g, {&phi1, 1});
  ASSERT_EQ(reports.size(), 1u);
  const std::string& d = reports[0].description;
  EXPECT_NE(d.find("x0=JohnWinter"), std::string::npos) << d;
  EXPECT_NE(d.find("x1=SellingOut"), std::string::npos) << d;
  EXPECT_NE(d.find("expected x0.type='producer'"), std::string::npos) << d;
  EXPECT_NE(d.find("x0.type is 'high_jumper'"), std::string::npos) << d;
}

TEST(Explain, VarVarConsequenceShowsBothSides) {
  auto g = BuildG2();
  AttrId name = *g.FindAttr("name");
  Gfd phi2(BuildQ2(g), {}, Literal::Vars(1, name, 2, name));
  auto reports = ExplainViolations(g, {&phi2, 1}, /*limit_per_rule=*/10);
  ASSERT_EQ(reports.size(), 2u);  // both symmetric matches
  const std::string& d = reports[0].description;
  EXPECT_NE(d.find("x1.name is"), std::string::npos) << d;
  EXPECT_NE(d.find("x2.name is"), std::string::npos) << d;
}

TEST(Explain, FalseConsequenceCallsStructureIllegal) {
  auto g = BuildG3();
  Gfd phi3(BuildQ3(g), {}, Literal::False());
  auto reports = ExplainViolations(g, {&phi3, 1});
  ASSERT_FALSE(reports.empty());
  EXPECT_NE(reports[0].description.find("illegal"), std::string::npos);
}

TEST(Explain, MissingAttributeReported) {
  PropertyGraph::Builder b;
  b.InternValue("producer");
  NodeId john = b.AddNode("person");
  b.SetName(john, "John");
  NodeId film = b.AddNode("product");
  b.SetAttr(film, "type", "film");
  b.AddEdge(john, film, "create");
  auto g = std::move(b).Build();
  AttrId type = *g.FindAttr("type");
  Gfd phi(BuildQ1(g), {Literal::Const(1, type, *g.FindValue("film"))},
          Literal::Const(0, type, *g.FindValue("producer")));
  auto reports = ExplainViolations(g, {&phi, 1});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].description.find("x0.type is missing"),
            std::string::npos)
      << reports[0].description;
}

TEST(Explain, CleanGraphProducesNoReports) {
  PropertyGraph::Builder b;
  NodeId p = b.AddNode("person");
  b.SetAttr(p, "type", "producer");
  NodeId f = b.AddNode("product");
  b.SetAttr(f, "type", "film");
  b.AddEdge(p, f, "create");
  auto g = std::move(b).Build();
  AttrId type = *g.FindAttr("type");
  Gfd phi(BuildQ1(g), {Literal::Const(1, type, *g.FindValue("film"))},
          Literal::Const(0, type, *g.FindValue("producer")));
  EXPECT_TRUE(ExplainViolations(g, {&phi, 1}).empty());
}

TEST(Explain, LimitRespected) {
  auto g = BuildG2();
  AttrId name = *g.FindAttr("name");
  Gfd phi2(BuildQ2(g), {}, Literal::Vars(1, name, 2, name));
  EXPECT_EQ(ExplainViolations(g, {&phi2, 1}, 1).size(), 1u);
}

TEST(Explain, UnnamedNodesUseIds) {
  PropertyGraph::Builder b;
  NodeId a = b.AddNode("person");
  NodeId c = b.AddNode("person");
  b.AddEdge(a, c, "parent");
  b.AddEdge(c, a, "parent");
  auto g = std::move(b).Build();
  Gfd phi3(BuildQ3(g), {}, Literal::False());
  auto reports = ExplainViolations(g, {&phi3, 1});
  ASSERT_FALSE(reports.empty());
  EXPECT_NE(reports[0].description.find("x0=#"), std::string::npos);
}

}  // namespace
}  // namespace gfd
