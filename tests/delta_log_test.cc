// Durability subsystem: framed delta-log recovery (torn/corrupt tails,
// sequence chains, re-anchoring), GraphStore replay determinism across
// restarts, compaction boundaries and crash injection, exactly-once
// application of stale records, and the composed per-batch serving diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "detect/engine.h"
#include "graph/loader.h"
#include "obs/trace.h"
#include "serve/delta_log.h"
#include "serve/graph_store.h"
#include "serve/metrics.h"

namespace gfd {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under gtest's temp root.
std::string Scratch(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gfd_" + name;
  fs::remove_all(dir);
  return dir;
}

// Fresh per-test scratch log-file path (the file is removed, so the test
// starts from a genuinely empty log even across reruns).
std::string ScratchLog(const std::string& name) {
  std::string path = ::testing::TempDir() + "gfd_" + name + ".log";
  fs::remove(path);
  fs::remove(path + ".tmp");
  return path;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void AppendBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::string> Payloads(const DeltaLog& log) {
  std::vector<std::string> out;
  for (const auto& rec : log.records()) out.push_back(rec.payload);
  return out;
}

// --- DeltaLog: framing and recovery ----------------------------------------

TEST(DeltaLog, FreshLogAppendsAndReopens) {
  std::string path = ScratchLog("log_fresh");
  auto log = DeltaLog::Open(path, /*first_seq=*/1);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->next_seq(), 1u);
  EXPECT_TRUE(log->records().empty());
  EXPECT_EQ(log->Append("alpha"), 1u);
  EXPECT_EQ(log->Append(""), 2u);  // empty payloads are legal batches
  EXPECT_EQ(log->Append("gamma\nwith\tbytes\r"), 3u);

  auto reopened = DeltaLog::Open(path, 1);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->open_stats().records, 3u);
  EXPECT_EQ(reopened->open_stats().truncated_bytes, 0u);
  EXPECT_EQ(Payloads(*reopened),
            (std::vector<std::string>{"alpha", "", "gamma\nwith\tbytes\r"}));
  EXPECT_EQ(reopened->next_seq(), 4u);
  EXPECT_EQ(reopened->Append("delta"), 4u);
}

TEST(DeltaLog, FirstSeqNumbersAnEmptyLog) {
  std::string path = ScratchLog("log_first_seq");
  auto log = DeltaLog::Open(path, /*first_seq=*/42);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->Append("x"), 42u);
}

TEST(DeltaLog, GarbageTailIsCutAndFileTruncated) {
  std::string path = ScratchLog("log_garbage");
  {
    auto log = DeltaLog::Open(path, 1);
    log->Append("one");
    log->Append("two");
  }
  size_t good_size = fs::file_size(path);
  AppendBytes(path, "not a record header at all");
  // The cut must also surface in the process metrics and, when a trace
  // is active, as a torn_tail event.
  uint64_t cuts_before = LogTornTailTruncationsTotal().Value();
  uint64_t bytes_before = LogTruncatedBytesTotal().Value();
  std::string trace_path = ::testing::TempDir() + "gfd_log_garbage.jsonl";
  fs::remove(trace_path);
  auto trace = obs::TraceLog::Open(trace_path);
  ASSERT_NE(trace, nullptr);
  obs::SetActiveTrace(trace.get());
  auto log = DeltaLog::Open(path, 1);
  obs::SetActiveTrace(nullptr);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->open_stats().records, 2u);
  EXPECT_GT(log->open_stats().truncated_bytes, 0u);
  EXPECT_EQ(fs::file_size(path), good_size);
  EXPECT_EQ(LogTornTailTruncationsTotal().Value(), cuts_before + 1);
  EXPECT_EQ(LogTruncatedBytesTotal().Value() - bytes_before,
            log->open_stats().truncated_bytes);
  EXPECT_NE(ReadBytes(trace_path).find("\"stage\":\"torn_tail\""),
            std::string::npos);
  EXPECT_EQ(log->Append("three"), 3u);
}

TEST(DeltaLog, EveryTornAppendPrefixIsCutCleanly) {
  // A crash can stop an append after any byte; whatever prefix of the
  // last record made it to disk, recovery keeps exactly the first two
  // records and resumes at seq 3.
  std::string base_path = ScratchLog("log_torn");
  {
    auto log = DeltaLog::Open(base_path, 1);
    log->Append("first-batch");
    log->Append("second-batch");
  }
  std::string good = ReadBytes(base_path);
  std::string full = good;
  {
    auto log = DeltaLog::Open(base_path, 1);
    log->Append("third-batch-that-tears");
    full = ReadBytes(base_path);
  }
  for (size_t cut = good.size() + 1; cut < full.size(); ++cut) {
    WriteBytes(base_path, full.substr(0, cut));
    auto log = DeltaLog::Open(base_path, 1);
    ASSERT_TRUE(log.has_value()) << "cut at " << cut;
    EXPECT_EQ(log->open_stats().records, 2u) << "cut at " << cut;
    EXPECT_EQ(log->next_seq(), 3u) << "cut at " << cut;
  }
}

TEST(DeltaLog, CrcFlipCutsTheTail) {
  std::string path = ScratchLog("log_crc");
  {
    auto log = DeltaLog::Open(path, 1);
    log->Append("aaaa");
    log->Append("bbbb");
  }
  std::string bytes = ReadBytes(path);
  bytes[bytes.size() - 3] ^= 0x40;  // inside the last payload
  WriteBytes(path, bytes);
  auto log = DeltaLog::Open(path, 1);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(Payloads(*log), (std::vector<std::string>{"aaaa"}));
  EXPECT_GT(log->open_stats().truncated_bytes, 0u);
}

TEST(DeltaLog, MidLogCorruptionCutsEverythingAfterIt) {
  std::string path = ScratchLog("log_mid");
  {
    auto log = DeltaLog::Open(path, 1);
    log->Append("aaaa");
    log->Append("bbbb");
    log->Append("cccc");
  }
  std::string bytes = ReadBytes(path);
  bytes[bytes.find("bbbb")] = 'X';  // corrupt the middle record's payload
  WriteBytes(path, bytes);
  auto log = DeltaLog::Open(path, 1);
  ASSERT_TRUE(log.has_value());
  // Records after a corrupt one cannot be trusted to be the real stream.
  EXPECT_EQ(Payloads(*log), (std::vector<std::string>{"aaaa"}));
}

TEST(DeltaLog, SequenceGapEndsTheChain) {
  std::string path = ScratchLog("log_gap");
  {
    auto log = DeltaLog::Open(path, 1);
    log->Append("aaaa");
  }
  // Forge a record that skips seq 2: frame shape is valid, chain is not.
  char header[64];
  std::snprintf(header, sizeof(header), "R 3 4 %08x\n", Crc32("zzzz"));
  AppendBytes(path, std::string(header) + "zzzz\n");
  auto log = DeltaLog::Open(path, 1);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(Payloads(*log), (std::vector<std::string>{"aaaa"}));
  EXPECT_EQ(log->next_seq(), 2u);
}

TEST(DeltaLog, DropThroughReanchorsAndSurvivesReopen) {
  std::string path = ScratchLog("log_drop");
  auto log = DeltaLog::Open(path, 1);
  log->Append("aaaa");
  log->Append("bbbb");
  log->Append("cccc");
  ASSERT_TRUE(log->DropThrough(2));
  EXPECT_EQ(Payloads(*log), (std::vector<std::string>{"cccc"}));
  EXPECT_EQ(log->next_seq(), 4u);
  EXPECT_EQ(log->Append("dddd"), 4u);

  auto reopened = DeltaLog::Open(path, 1);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(Payloads(*reopened), (std::vector<std::string>{"cccc", "dddd"}));
  EXPECT_EQ(reopened->records()[0].seq, 3u);

  // Dropping everything leaves an empty file whose numbering continues.
  ASSERT_TRUE(reopened->DropThrough(4));
  EXPECT_EQ(fs::file_size(path), 0u);
  EXPECT_EQ(reopened->Append("eeee"), 5u);
}

// --- GraphDelta::Append: merging batches -----------------------------------

PropertyGraph BuildWorld() {
  PropertyGraph::Builder b;
  NodeId p0 = b.AddNode("person");
  b.SetName(p0, "Producer0");
  b.SetAttr(p0, "type", "producer");
  NodeId p1 = b.AddNode("person");
  b.SetName(p1, "Musician");
  b.SetAttr(p1, "type", "musician");
  NodeId f0 = b.AddNode("product");
  b.SetAttr(f0, "type", "film");
  NodeId f1 = b.AddNode("product");
  b.SetAttr(f1, "type", "album");
  b.AddEdge(p0, f0, "create");
  b.AddEdge(p1, f1, "create");
  return std::move(b).Build();
}

Gfd FilmRule(const PropertyGraph& g) {
  Pattern q;
  VarId x = q.AddNode(*g.FindLabel("person"));
  VarId y = q.AddNode(*g.FindLabel("product"));
  q.AddEdge(x, y, *g.FindLabel("create"));
  q.set_pivot(x);
  AttrId type = *g.FindAttr("type");
  return Gfd(q, {Literal::Const(y, type, *g.FindValue("film"))},
             Literal::Const(x, type, *g.FindValue("producer")));
}

TEST(GraphDeltaAppend, MergesExtensionVocabularyByName) {
  auto g = BuildWorld();
  AttrId type = *g.FindAttr("type");

  GraphDelta d1;
  d1.SetAttr(0, type, d1.InternValue(g, "newval"));
  GraphDelta d2;  // parsed independently: its own extension id space
  d2.SetAttr(1, type, d2.InternValue(g, "newval"));
  d2.SetAttr(2, type, d2.InternValue(g, "otherval"));

  GraphDelta merged = d1;
  merged.Append(g, d2);
  ASSERT_EQ(merged.ops.size(), 3u);
  // "newval" resolved to d1's existing extension id, not a duplicate.
  EXPECT_EQ(merged.ops[1].value, merged.ops[0].value);
  EXPECT_EQ(merged.extra_values,
            (std::vector<std::string>{"newval", "otherval"}));

  auto view = GraphView::Apply(g, merged);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->ValueName(*view->GetAttr(1, type)), "newval");
  EXPECT_EQ(view->ValueName(*view->GetAttr(2, type)), "otherval");
}

// --- GraphStore: durability, replay, compaction ----------------------------

// The determinism oracle: a restarted store must detect byte-identically
// to the in-process one, and materialize the same bytes.
void ExpectRestartIdentical(const GraphStore& live,
                            const ViolationEngine& engine) {
  auto reopened = GraphStore::Open(live.dir());
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->last_seq(), live.last_seq());
  EXPECT_EQ(engine.Detect(reopened->view()).violations,
            engine.Detect(live.view()).violations);
  std::ostringstream a, b;
  // with_vocab: interner ids (not just content) must survive the restart,
  // or the compiled engine above would silently re-bind.
  SaveGraphTsv(live.MaterializeCurrent(), a, /*with_vocab=*/true);
  SaveGraphTsv(reopened->MaterializeCurrent(), b, /*with_vocab=*/true);
  EXPECT_EQ(a.str(), b.str());
}

TEST(GraphStore, InitRefusesAnExistingStore) {
  std::string dir = Scratch("store_init");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  std::string error;
  EXPECT_FALSE(GraphStore::Init(dir, g, &error));
  EXPECT_NE(error.find("already holds"), std::string::npos);
}

TEST(GraphStore, OpenWithoutStoreFails) {
  std::string error;
  EXPECT_FALSE(
      GraphStore::Open(Scratch("store_missing"), {}, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(GraphStore, AppendsReplayByteIdenticallyAfterRestart) {
  std::string dir = Scratch("store_replay");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  ViolationEngine engine({FilmRule(store->base())});

  // Three batches: add a violating edge, break an attribute, and extend
  // the vocabulary with strings the snapshot never interned.
  EXPECT_EQ(store->Append("E+\tMusician\tn2\tcreate\n"), 1u);
  EXPECT_EQ(store->Append("A\tProducer0\ttype=impostor\n"), 2u);
  EXPECT_EQ(store->Append("A\tn3\tflavor=weird sauce\n"), 3u);
  EXPECT_EQ(engine.Detect(store->view()).violations.size(), 2u);

  ExpectRestartIdentical(*store, engine);
  const auto reopened = GraphStore::Open(dir);
  EXPECT_EQ(reopened->stats().replayed_batches, 3u);
  EXPECT_EQ(reopened->stats().skipped_batches, 0u);
}

TEST(GraphStore, ReplayAcrossACompactionBoundary) {
  std::string dir = Scratch("store_compact");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  ViolationEngine engine({FilmRule(store->base())});

  ASSERT_TRUE(store->Append("E+\tMusician\tn2\tcreate\n").has_value());
  ASSERT_TRUE(store->Append("A\tn3\ttype=film\n").has_value());
  ASSERT_TRUE(store->Compact());
  EXPECT_EQ(store->stats().anchor_seq, 2u);
  EXPECT_TRUE(store->overlay().empty());
  // The log was re-anchored and the old snapshot removed.
  EXPECT_EQ(fs::file_size(fs::path(dir) / "deltas.log"), 0u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "snapshot-0.tsv"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "snapshot-2.tsv"));

  // Post-compaction batches anchor on the rolled snapshot; sequence
  // numbers keep counting.
  EXPECT_EQ(store->Append("E-\tMusician\tn2\tcreate\n"), 3u);
  // The compacted snapshot interned the update-introduced vocabulary, so
  // rules can reference it: Detect still sees the n3-album violation
  // created by batch 2 (type=film made Musician->n3 violating too until
  // batch 3 deleted the *other* edge; assert exact state instead).
  auto live = engine.Detect(store->view()).violations;
  ExpectRestartIdentical(*store, engine);
  auto reopened = GraphStore::Open(dir);
  EXPECT_EQ(reopened->stats().anchor_seq, 2u);
  EXPECT_EQ(reopened->stats().replayed_batches, 1u);
  EXPECT_EQ(engine.Detect(reopened->view()).violations, live);
}

TEST(GraphStore, TruncatedTailCrashConvergesAndReappends) {
  std::string dir = Scratch("store_crash");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  ViolationEngine engine({FilmRule(store->base())});
  ASSERT_TRUE(store->Append("E+\tMusician\tn2\tcreate\n").has_value());
  auto want = engine.Detect(store->view()).violations;

  // Crash injection: a third-party append dies mid-record, leaving a
  // torn frame after the acknowledged batch.
  std::string log_path = (fs::path(dir) / "deltas.log").string();
  AppendBytes(log_path, "R 2 24 00000000\nA\tProducer0\tty");

  // Recovery must report the cut through the metrics/trace channel the
  // serving CLI exports, not only through GraphStoreStats.
  uint64_t cuts_before = LogTornTailTruncationsTotal().Value();
  std::string trace_path = ::testing::TempDir() + "gfd_store_crash.jsonl";
  fs::remove(trace_path);
  auto trace = obs::TraceLog::Open(trace_path);
  ASSERT_NE(trace, nullptr);
  obs::SetActiveTrace(trace.get());
  auto recovered = GraphStore::Open(dir);
  obs::SetActiveTrace(nullptr);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_seq(), 1u);
  EXPECT_GT(recovered->stats().truncated_bytes, 0u);
  EXPECT_EQ(LogTornTailTruncationsTotal().Value(), cuts_before + 1);
  std::string trace_text = ReadBytes(trace_path);
  EXPECT_NE(trace_text.find("\"stage\":\"torn_tail\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"stage\":\"replay\""), std::string::npos);
  EXPECT_EQ(engine.Detect(recovered->view()).violations, want);

  // The torn batch was never applied; re-submitting it works and lands
  // at the next sequence number.
  EXPECT_EQ(recovered->Append("A\tProducer0\ttype=impostor\n"), 2u);
  EXPECT_EQ(engine.Detect(recovered->view()).violations.size(), 2u);
  ExpectRestartIdentical(*recovered, engine);
}

TEST(GraphStore, StaleRecordsBelowTheAnchorApplyExactlyOnce) {
  std::string dir = Scratch("store_stale");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  ViolationEngine engine({FilmRule(store->base())});
  ASSERT_TRUE(store->Append("E+\tMusician\tn2\tcreate\n").has_value());
  ASSERT_TRUE(store->Append("A\tProducer0\ttype=impostor\n").has_value());
  std::string log_path = (fs::path(dir) / "deltas.log").string();
  std::string pre_compact_log = ReadBytes(log_path);
  ASSERT_TRUE(store->Compact());
  auto want = engine.Detect(store->view()).violations;

  // Simulate a crash between the meta commit and the log re-anchor: the
  // old records (seq 1..2, both already in the snapshot) reappear.
  WriteBytes(log_path, pre_compact_log);
  auto recovered = GraphStore::Open(dir);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->stats().skipped_batches, 2u);
  EXPECT_EQ(recovered->stats().replayed_batches, 0u);
  // Applying them again would double the edge; exactly-once means the
  // state is unchanged...
  EXPECT_EQ(engine.Detect(recovered->view()).violations, want);
  EXPECT_EQ(recovered->view().NumEdges(), store->view().NumEdges());
  // ...and the stale records were healed away.
  EXPECT_EQ(fs::file_size(log_path), 0u);
  EXPECT_EQ(recovered->Append("E-\tMusician\tn2\tcreate\n"), 3u);
}

TEST(GraphStore, InvalidBatchIsNeverLogged) {
  std::string dir = Scratch("store_invalid");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  std::string log_path = (fs::path(dir) / "deltas.log").string();

  std::string error;
  // Parse failure: unknown node.
  EXPECT_FALSE(store->Append("E+\tNobody\tn2\tcreate\n", &error).has_value());
  EXPECT_NE(error.find("unknown node"), std::string::npos);
  // Apply failure: deleting an edge that does not exist.
  EXPECT_FALSE(
      store->Append("E-\tMusician\tn2\tcreate\n", &error).has_value());
  EXPECT_NE(error.find("delete of missing edge"), std::string::npos);
  EXPECT_EQ(fs::file_size(log_path), 0u);
  EXPECT_EQ(store->last_seq(), 0u);
  EXPECT_EQ(store->Append("E+\tMusician\tn2\tcreate\n"), 1u);
}

TEST(GraphStore, CompactionPolicyThresholds) {
  std::string dir = Scratch("store_policy");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  GraphStoreOptions opts;
  opts.compact_min_ops = 3;
  opts.compact_min_fraction = 0;  // isolate the ops trigger
  auto store = GraphStore::Open(dir, opts);
  ASSERT_TRUE(store.has_value());

  ASSERT_TRUE(store->Append("E+\tMusician\tn2\tcreate\n").has_value());
  EXPECT_FALSE(store->ShouldCompact());
  ASSERT_TRUE(store->MaybeCompact());
  EXPECT_EQ(store->stats().compactions, 0u);

  ASSERT_TRUE(
      store->Append("A\tProducer0\ttype=x\nA\tn3\ttype=y\n").has_value());
  EXPECT_TRUE(store->ShouldCompact());  // 3 ops >= threshold
  ASSERT_TRUE(store->MaybeCompact());
  EXPECT_EQ(store->stats().compactions, 1u);
  EXPECT_TRUE(store->overlay().empty());
  EXPECT_EQ(store->stats().anchor_seq, 2u);

  // The fraction trigger: 2 ops over a 2-edge base at 50%.
  GraphStoreOptions frac;
  frac.compact_min_ops = 0;
  frac.compact_min_fraction = 0.5;
  auto store2 = GraphStore::Open(dir, frac);
  ASSERT_TRUE(store2.has_value());
  ASSERT_TRUE(store2->Append("A\tProducer0\ttype=z\n").has_value());
  // Base has 3 edges now (batch 1 inserted one); 1 op < 1.5 threshold.
  EXPECT_FALSE(store2->ShouldCompact());
  ASSERT_TRUE(store2->Append("A\tn3\ttype=w\n").has_value());
  EXPECT_TRUE(store2->ShouldCompact());
}

// --- AppendAndDiff: the per-batch serving step -----------------------------

TEST(GraphStore, AppendAndDiffMatchesTheMaterializedOracle) {
  std::string dir = Scratch("store_stepdiff");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  ViolationEngine engine({FilmRule(store->base())});

  // A stream whose batches add, re-add, and remove violations while the
  // overlay keeps growing (no compaction: every diff composes on base).
  const char* stream[] = {
      "E+\tMusician\tn2\tcreate\n",            // + violation at Musician
      "A\tProducer0\ttype=impostor\n",         // + violation at Producer0
      "A\tn3\ttype=film\n",                    // + violation (Musician->n3)
      "E-\tMusician\tn2\tcreate\n",            // - one Musician violation
      "A\tProducer0\ttype=producer\n",         // - the Producer0 violation
  };
  for (const char* batch : stream) {
    PropertyGraph before = store->MaterializeCurrent();
    std::string error;
    auto diff = AppendAndDiff(*store, engine, batch, {}, nullptr, &error);
    ASSERT_TRUE(diff.has_value()) << error;
    PropertyGraph after = store->MaterializeCurrent();

    auto old_run = engine.Detect(before);
    auto new_run = engine.Detect(after);
    std::vector<Violation> want_added, want_removed;
    std::set_difference(
        new_run.violations.begin(), new_run.violations.end(),
        old_run.violations.begin(), old_run.violations.end(),
        std::back_inserter(want_added));
    std::set_difference(
        old_run.violations.begin(), old_run.violations.end(),
        new_run.violations.begin(), new_run.violations.end(),
        std::back_inserter(want_removed));
    EXPECT_EQ(diff->added, want_added) << "batch: " << batch;
    EXPECT_EQ(diff->removed, want_removed) << "batch: " << batch;
  }
  EXPECT_EQ(store->last_seq(), 5u);
  ExpectRestartIdentical(*store, engine);
}

// --- Running violation count (store.meta) ----------------------------------

// The serving loop's counter: seeded by one full Detect, maintained as
// count += |added| - |removed| per batch, persisted next to the anchor.
// It must survive restart and compaction, track a fresh full Detect at
// every step, and invalidate on appends, rule-set changes, and replays
// that land on a different sequence.
TEST(GraphStore, ViolationCountSurvivesRestartAndCompaction) {
  std::string dir = Scratch("store_count");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  ViolationEngine engine({FilmRule(store->base())});
  const uint64_t fp = 0xabcdu;

  // No count until the loop seeds one with a full scan.
  EXPECT_FALSE(store->violation_count(fp).has_value());
  uint64_t count = engine.Detect(store->view()).violations.size();
  ASSERT_TRUE(store->SetViolationCount(count, fp));
  EXPECT_EQ(store->violation_count(fp), count);
  // A different rule set's fingerprint never sees this count.
  EXPECT_FALSE(store->violation_count(fp + 1).has_value());

  const char* stream[] = {
      "E+\tMusician\tn2\tcreate\n",     // adds a violation
      "A\tProducer0\ttype=impostor\n",  // adds another
      "E-\tMusician\tn2\tcreate\n",     // removes the first again
  };
  for (const char* batch : stream) {
    auto diff = AppendAndDiff(*store, engine, batch);
    ASSERT_TRUE(diff.has_value());
    // The append outdated the count until the diff is folded back in.
    EXPECT_FALSE(store->violation_count(fp).has_value());
    count = count + diff->added.size() - diff->removed.size();
    ASSERT_TRUE(store->SetViolationCount(count, fp));
    EXPECT_EQ(store->violation_count(fp), count);
    EXPECT_EQ(engine.Detect(store->view()).violations.size(), count)
        << "counter drifted from a fresh full Detect after " << batch;
  }
  EXPECT_EQ(count, 1u);  // the impostor violation remains

  // Restart: the count rides store.meta.
  {
    auto reopened = GraphStore::Open(dir);
    ASSERT_TRUE(reopened.has_value());
    EXPECT_EQ(reopened->violation_count(fp), count);
  }
  // Compaction: the meta rewrite carries it through, and so does the
  // restart after the compaction boundary.
  ASSERT_TRUE(store->Compact());
  EXPECT_EQ(store->violation_count(fp), count);
  {
    auto reopened = GraphStore::Open(dir);
    ASSERT_TRUE(reopened.has_value());
    EXPECT_EQ(reopened->violation_count(fp), count);
    EXPECT_EQ(engine.Detect(reopened->view()).violations.size(), count);
  }
}

TEST(GraphStore, ViolationCountInvalidatesWhenReplayDisagrees) {
  std::string dir = Scratch("store_count_stale");
  auto g = BuildWorld();
  ASSERT_TRUE(GraphStore::Init(dir, g));
  {
    auto store = GraphStore::Open(dir);
    ASSERT_TRUE(store.has_value());
    ASSERT_TRUE(store->SetViolationCount(0, 1));
    // An append nobody folded back into the counter: the persisted line
    // now refers to seq 0 while the log reaches seq 1.
    ASSERT_TRUE(store->Append("E+\tMusician\tn2\tcreate\n").has_value());
  }
  auto reopened = GraphStore::Open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->last_seq(), 1u);
  EXPECT_FALSE(reopened->violation_count(1).has_value());
}

}  // namespace
}  // namespace gfd
