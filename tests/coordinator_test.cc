// Distributed incremental detection over true vertex-cut partitioned
// storage: the Coordinator's merged per-fragment diffs must be
// byte-identical to single-node DetectIncremental / AppendAndDiff on the
// unfragmented store -- on fixtures, property-style across random seeds
// x graph scales x fragment counts {1,2,4,8} x batch streams (repeated,
// delete-heavy, and mid-stream rebalanced batches included), and across
// crash-recovery boundaries (torn fragment logs, lost fragment
// directories, missed lockstep compactions, torn rebalances). Both
// backends are driven through the ServingStore interface. On top of the
// oracle, every fragment must equal the resident subgraph of the global
// state (edges exact, resident-node attributes fresh) and the summed
// footprint must be ~replication x |G|, not N x |G|.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "datagen/gfd_gen.h"
#include "datagen/synthetic.h"
#include "detect/engine.h"
#include "graph/graph_view.h"
#include "graph/loader.h"
#include "graph/subgraph.h"
#include "obs/trace.h"
#include "parallel/fragment.h"
#include "serve/coordinator.h"
#include "serve/graph_store.h"
#include "serve/metrics.h"
#include "serve/serving_store.h"
#include "util/rng.h"

namespace gfd {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under gtest's temp root.
std::string Scratch(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gfd_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string GraphBytes(const PropertyGraph& g) {
  std::ostringstream os;
  SaveGraphTsv(g, os);
  return std::move(os).str();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Opens a fresh JSON-lines trace at a scratch path and installs it as
// the process trace. Uninstalls (and closes) on scope exit.
struct ScopedTestTrace {
  std::string path;
  std::unique_ptr<obs::TraceLog> log;

  explicit ScopedTestTrace(const std::string& name)
      : path(::testing::TempDir() + "gfd_" + name + ".jsonl") {
    fs::remove(path);
    log = obs::TraceLog::Open(path);
    obs::SetActiveTrace(log.get());
  }
  ~ScopedTestTrace() { obs::SetActiveTrace(nullptr); }

  std::string Text() const { return FileBytes(path); }
};

std::string DeltaBytes(const PropertyGraph& base, const GraphDelta& d) {
  std::ostringstream os;
  SaveGraphDeltaTsv(base, d, os);
  return std::move(os).str();
}

// Random update batch over the *current* state `g`: inserts with
// label-plausible endpoints, deletes of existing edges, attribute sets
// (some introducing brand-new values). `delete_bias` > 0.3 makes the
// stream delete-heavy.
GraphDelta RandomBatch(const PropertyGraph& g, Rng& rng, size_t ops,
                       double delete_bias = 0.3) {
  GraphDelta d;
  std::vector<bool> gone(g.NumEdges(), false);
  for (size_t i = 0; i < ops; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.4 && g.NumEdges() > 0) {
      EdgeId e = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      NodeId src = rng.Chance(0.5)
                       ? g.EdgeSrc(e)
                       : static_cast<NodeId>(rng.Below(g.NumNodes()));
      NodeId dst = static_cast<NodeId>(rng.Below(g.NumNodes()));
      d.InsertEdge(src, dst, g.EdgeLabel(e));
    } else if (roll < 0.4 + delete_bias && g.NumEdges() > 0) {
      EdgeId e = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      if (gone[e]) continue;  // at most one delete per base edge
      gone[e] = true;
      d.DeleteEdge(g.EdgeSrc(e), g.EdgeDst(e), g.EdgeLabel(e));
    } else {
      NodeId v = static_cast<NodeId>(rng.Below(g.NumNodes()));
      auto attrs = g.NodeAttrs(v);
      AttrId key = attrs.empty()
                       ? d.InternAttr(g, "patched_key")
                       : attrs[rng.Below(attrs.size())].key;
      ValueId val =
          rng.Chance(0.2)
              ? d.InternValue(g, "patched_" + std::to_string(rng.Below(4)))
              : static_cast<ValueId>(rng.Below(g.values().size()));
      d.SetAttr(v, key, val);
    }
  }
  return d;
}

// Edge multiset by (src, dst, label) -- node and label ids are preserved
// across fragments and the master, so keys compare directly.
std::multiset<std::tuple<NodeId, NodeId, LabelId>> EdgeKeys(
    const PropertyGraph& g) {
  std::multiset<std::tuple<NodeId, NodeId, LabelId>> keys;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    keys.insert({g.EdgeSrc(e), g.EdgeDst(e), g.EdgeLabel(e)});
  }
  return keys;
}

std::vector<Attribute> Attrs(const PropertyGraph& g, NodeId v) {
  auto s = g.NodeAttrs(v);
  return {s.begin(), s.end()};
}

// The storage invariant of vertex-cut sharding: every fragment's current
// graph is exactly the resident subgraph of the global state (edge
// multisets equal), and attributes of resident nodes are fresh.
// Attributes of NON-resident nodes may be stale by design (they are
// refreshed when the node re-enters the halo), so they are not compared.
void ExpectFragmentsMatchResidentSubgraphs(const Coordinator& coord) {
  PropertyGraph current = coord.MaterializeCurrent();
  const FragmentResidency& res = coord.residency();
  for (size_t f = 0; f < coord.num_fragments(); ++f) {
    PropertyGraph frag = coord.fragment(f).MaterializeCurrent();
    PropertyGraph want = ExtractSubgraph(current, res[f]);
    EXPECT_EQ(EdgeKeys(frag), EdgeKeys(want)) << "fragment " << f;
    ASSERT_EQ(frag.NumNodes(), current.NumNodes()) << "fragment " << f;
    for (NodeId v = 0; v < current.NumNodes(); ++v) {
      if (!res[f][v]) continue;
      EXPECT_EQ(Attrs(frag, v), Attrs(current, v))
          << "fragment " << f << " node " << v;
    }
  }
}

// --- Fragment-scoped incremental entry point -------------------------------

TEST(DetectIncrementalOwned, FragmentsPartitionTheFullDiff) {
  auto g = MakeSynthetic({.nodes = 200,
                          .edges = 600,
                          .node_labels = 5,
                          .edge_labels = 4,
                          .attrs = 3,
                          .values = 15,
                          .value_correlation = 0.9,
                          .seed = 42});
  auto rules = GenerateGfdSet(g, {.count = 12, .k = 3, .seed = 7});
  ViolationEngine engine(rules);
  Rng rng(99);
  GraphDelta d = RandomBatch(g, rng, 40);
  auto view = *GraphView::Apply(g, d);
  auto full = engine.DetectIncremental(view);

  for (size_t n : {1u, 2u, 4u, 8u}) {
    Fragmentation frag = VertexCutPartition(g, n);
    std::vector<Violation> added, removed;
    size_t owned_total = 0;
    for (uint32_t f = 0; f < n; ++f) {
      auto part =
          engine.DetectIncrementalOwned(view, frag.partition.node_owner, f);
      owned_total += part.stats.affected_nodes;
      // Disjoint by attribution: plain merges reproduce the full diff.
      std::vector<Violation> merged;
      std::merge(added.begin(), added.end(), part.added.begin(),
                 part.added.end(), std::back_inserter(merged));
      added = std::move(merged);
      merged.clear();
      std::merge(removed.begin(), removed.end(), part.removed.begin(),
                 part.removed.end(), std::back_inserter(merged));
      removed = std::move(merged);
    }
    EXPECT_EQ(owned_total, full.stats.affected_nodes) << n << " fragments";
    EXPECT_EQ(added, full.added) << n << " fragments";
    EXPECT_EQ(removed, full.removed) << n << " fragments";
    // No duplicates slipped through the merge.
    EXPECT_TRUE(std::adjacent_find(added.begin(), added.end()) == added.end());
  }
}

TEST(RouteDelta, ShipsOpsToFragmentsWhoseResidentSetCoversThem) {
  auto g = MakeSynthetic({.nodes = 50, .edges = 150, .seed = 5});
  Fragmentation frag = VertexCutPartition(g, 4);
  frag.partition.halo_radius = 1;
  auto resident = ComputeResidency(g, frag.partition);
  GraphDelta d;
  EdgeId e = 0;
  d.InsertEdge(g.EdgeSrc(e), g.EdgeDst(e), g.EdgeLabel(e));
  d.SetAttr(g.EdgeSrc(e), 0, 0);
  auto route = RouteDelta(d, resident);
  uint32_t src_owner = frag.partition.node_owner[g.EdgeSrc(e)];
  uint32_t dst_owner = frag.partition.node_owner[g.EdgeDst(e)];
  // Radius >= 1 makes both endpoints of an existing edge resident at
  // both endpoint owners, so the edge op reaches at least those two; the
  // src owner additionally receives the attribute op.
  EXPECT_GE(route.fragment_ops[src_owner].size(), 2u);
  EXPECT_TRUE(std::binary_search(route.affected_fragments.begin(),
                                 route.affected_fragments.end(), src_owner));
  EXPECT_TRUE(std::binary_search(route.affected_fragments.begin(),
                                 route.affected_fragments.end(), dst_owner));
  // Every shipped op's referenced nodes are resident at the receiver --
  // the storage-completeness contract of residency-based routing.
  for (size_t f = 0; f < resident.size(); ++f) {
    for (size_t i : route.fragment_ops[f]) {
      const GraphDelta::Op& op = d.ops[i];
      EXPECT_TRUE(resident[f][op.src]) << "fragment " << f << " op " << i;
      if (op.kind != GraphDelta::OpKind::kSetAttr) {
        EXPECT_TRUE(resident[f][op.dst]) << "fragment " << f << " op " << i;
      }
    }
  }
}

// --- Coordinator basics ----------------------------------------------------

TEST(Coordinator, InitRejectsBadParamsAndDoubleInit) {
  auto g = MakeSynthetic({.nodes = 20, .edges = 40, .seed = 1});
  std::string dir = Scratch("coord_init");
  std::string error;
  EXPECT_FALSE(Coordinator::Init(dir, g, 0, 3, &error));
  EXPECT_FALSE(Coordinator::Init(dir, g, 2, 0, &error));
  EXPECT_NE(error.find("halo radius"), std::string::npos);
  ASSERT_TRUE(Coordinator::Init(dir, g, 2, 3, &error)) << error;
  EXPECT_FALSE(Coordinator::Init(dir, g, 2, 3, &error));
  EXPECT_NE(error.find("already holds"), std::string::npos);
}

TEST(Coordinator, AppendKeepsFragmentsInLockstepAndResident) {
  auto g = MakeSynthetic({.nodes = 60, .edges = 180, .seed = 2});
  std::string dir = Scratch("coord_lockstep");
  ASSERT_TRUE(Coordinator::Init(dir, g, 3));
  auto coord = Coordinator::Open(dir);
  ASSERT_TRUE(coord.has_value());
  Rng rng(7);
  for (int b = 0; b < 3; ++b) {
    PropertyGraph current = coord->MaterializeCurrent();
    GraphDelta d = RandomBatch(current, rng, 10);
    std::string error;
    auto seq = coord->Append(DeltaBytes(current, d), &error);
    ASSERT_TRUE(seq.has_value()) << error;
    EXPECT_EQ(*seq, static_cast<uint64_t>(b + 1));
  }
  for (size_t f = 0; f < coord->num_fragments(); ++f) {
    EXPECT_EQ(coord->fragment(f).last_seq(), 3u) << "fragment " << f;
  }
  ExpectFragmentsMatchResidentSubgraphs(*coord);
  // An invalid batch is rejected before any log sees it.
  std::string error;
  EXPECT_FALSE(coord->Append("E-\tno_such_node\talso_missing\tx\n", &error));
  EXPECT_EQ(coord->last_seq(), 3u);
  for (size_t f = 0; f < coord->num_fragments(); ++f) {
    EXPECT_EQ(coord->fragment(f).last_seq(), 3u);
  }
}

TEST(Coordinator, PartitionedFootprintIsReplicationTimesGNotNTimesG) {
  // Sparse graph + tight halo: the regime partitioned storage exists
  // for. Whole-graph replication would store fragments x |E| edges.
  auto g = MakeSynthetic({.nodes = 600, .edges = 900, .seed = 11});
  const size_t fragments = 8;
  std::string dir = Scratch("coord_footprint");
  ASSERT_TRUE(Coordinator::Init(dir, g, fragments, /*halo_radius=*/1));
  auto coord = Coordinator::Open(dir);
  ASSERT_TRUE(coord.has_value());
  uint64_t sum = 0;
  for (size_t f = 0; f < fragments; ++f) {
    uint64_t resident = coord->resident_edges(f);
    // The footprint counter equals what the fragment store actually holds.
    EXPECT_EQ(resident, coord->fragment(f).MaterializeCurrent().NumEdges())
        << "fragment " << f;
    sum += resident;
  }
  // Every edge is stored at least once (storage completeness)...
  EXPECT_GE(sum, g.NumEdges());
  // ...and the total is a small replication multiple of |G|, far below
  // the N x |G| of whole-graph replication.
  EXPECT_LT(sum, fragments * g.NumEdges() / 2);
}

// --- The oracle property suite ---------------------------------------------
//
// Coordinator::AppendAndDiff over vertex-cut partitioned fragments must
// equal single-node AppendAndDiff over one unfragmented store, batch for
// batch, byte for byte -- across seeds, graph scales, fragment counts
// {1,2,4,8}, and stream shapes (a repeated batch, a delete-heavy batch,
// and -- for multi-fragment runs -- a mid-stream ownership rebalance ride
// in every stream). Both backends are driven through the ServingStore
// interface, the way gfdtool drives them.
class CoordinatorOracle : public ::testing::TestWithParam<int> {};

TEST_P(CoordinatorOracle, MergedDiffEqualsSingleNodeIncremental) {
  const int seed = GetParam();
  const size_t fragments = size_t{1} << (seed % 4);  // 1, 2, 4, 8
  Rng rng(seed * 7919 + 13);
  auto g = MakeSynthetic({.nodes = 120 + static_cast<size_t>(seed) * 9,
                          .edges = 350 + static_cast<size_t>(seed) * 13,
                          .node_labels = 5,
                          .edge_labels = 4,
                          .attrs = 3,
                          .values = 15,
                          .value_correlation = 0.9,
                          .seed = static_cast<uint64_t>(seed) + 500});
  auto rules = GenerateGfdSet(
      g, {.count = 10, .k = 3, .redundancy = 0.4,
          .seed = static_cast<uint64_t>(seed) + 31});
  ViolationEngine engine(rules);

  std::string coord_dir = Scratch("coord_oracle_" + std::to_string(seed));
  std::string single_dir = Scratch("coord_oracle_ref_" + std::to_string(seed));
  ASSERT_TRUE(Coordinator::Init(coord_dir, g, fragments));
  ASSERT_TRUE(GraphStore::Init(single_dir, g));
  auto coord = Coordinator::Open(coord_dir);
  auto single = GraphStore::Open(single_dir);
  ASSERT_TRUE(coord.has_value());
  ASSERT_TRUE(single.has_value());
  ServingStore& dist = *coord;
  ServingStore& ref = *single;

  // 4 batches: random, repeated (delete-free, so it re-validates),
  // delete-heavy, random -- in one sequenced stream.
  std::vector<std::string> payloads;
  {
    PropertyGraph current = g;
    GraphDelta b0 = RandomBatch(current, rng, 8 + rng.Below(10));
    payloads.push_back(DeltaBytes(current, b0));
    current = GraphView::Apply(current, b0)->Materialize();
    GraphDelta b1 = RandomBatch(current, rng, 6, /*delete_bias=*/0.0);
    payloads.push_back(DeltaBytes(current, b1));
    payloads.push_back(payloads.back());  // repeated batch
    // Two applications of b1 later; deletes against that state.
    current = GraphView::Apply(current, b1)->Materialize();
    current = GraphView::Apply(current, b1)->Materialize();
    GraphDelta b2 = RandomBatch(current, rng, 8 + rng.Below(8),
                                /*delete_bias=*/0.55);
    payloads.push_back(DeltaBytes(current, b2));
  }

  for (size_t b = 0; b < payloads.size(); ++b) {
    std::string cerror, serror;
    uint64_t cseq = 0, sseq = 0;
    auto merged = dist.AppendAndDiff(engine, payloads[b], {}, &cseq, &cerror);
    auto refd = ref.AppendAndDiff(engine, payloads[b], {}, &sseq, &serror);
    ASSERT_TRUE(merged.has_value())
        << "seed " << seed << " batch " << b << ": " << cerror;
    ASSERT_TRUE(refd.has_value())
        << "seed " << seed << " batch " << b << ": " << serror;
    EXPECT_EQ(cseq, sseq);
    EXPECT_EQ(merged->added, refd->added)
        << "seed " << seed << " batch " << b << " (" << fragments
        << " fragments)";
    EXPECT_EQ(merged->removed, refd->removed)
        << "seed " << seed << " batch " << b << " (" << fragments
        << " fragments)";

    // Mid-stream rebalance: move ownership of one node to the last
    // fragment. The graph is unchanged, so the reference consumes the
    // same sequence number with an empty batch, and both sides compact
    // (Rebalance forces lockstep compaction) to stay at the same anchor.
    if (b == 1 && fragments > 1) {
      std::span<const uint32_t> owner = coord->node_owner();
      uint32_t target = static_cast<uint32_t>(fragments - 1);
      NodeId node = 0;
      while (node < owner.size() && owner[node] == target) ++node;
      ASSERT_LT(node, owner.size());
      std::string rerror;
      auto rseq = coord->Rebalance(node, target, &rerror);
      ASSERT_TRUE(rseq.has_value()) << "seed " << seed << ": " << rerror;
      EXPECT_EQ(coord->node_owner()[node], target);
      ASSERT_TRUE(ref.Append("").has_value());
      ASSERT_TRUE(ref.Compact());
      ExpectFragmentsMatchResidentSubgraphs(*coord);
    }
  }
  EXPECT_EQ(GraphBytes(coord->MaterializeCurrent()),
            GraphBytes(single->MaterializeCurrent()));
  ExpectFragmentsMatchResidentSubgraphs(*coord);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatorOracle, ::testing::Range(0, 25));

// --- Restart and crash recovery --------------------------------------------

TEST(Coordinator, RestartReplaysEveryFragmentToTheSameGlobalState) {
  auto g = MakeSynthetic({.nodes = 80, .edges = 240, .seed = 3});
  auto rules = GenerateGfdSet(g, {.count = 8, .k = 3, .seed = 17});
  ViolationEngine engine(rules);
  std::string dir = Scratch("coord_restart");
  ASSERT_TRUE(Coordinator::Init(dir, g, 4));
  std::string expect;
  Rng rng(23);
  {
    auto coord = Coordinator::Open(dir);
    ASSERT_TRUE(coord.has_value());
    for (int b = 0; b < 3; ++b) {
      PropertyGraph current = coord->MaterializeCurrent();
      GraphDelta d = RandomBatch(current, rng, 12);
      auto diff = coord->AppendAndDiff(engine, DeltaBytes(current, d));
      ASSERT_TRUE(diff.has_value());
    }
    expect = GraphBytes(coord->MaterializeCurrent());
  }
  auto reopened = Coordinator::Open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->last_seq(), 3u);
  EXPECT_EQ(reopened->stats().lagging_fragments, 0u);
  EXPECT_EQ(GraphBytes(reopened->MaterializeCurrent()), expect);
  ExpectFragmentsMatchResidentSubgraphs(*reopened);
}

// Kill one fragment mid-append (truncate its local log tail), reopen:
// the fragment must be re-shipped its routed sub-batches from the
// routing journal, and the next batch must produce the same merged diff
// as an uninterrupted run.
TEST(Coordinator, TornFragmentLogCatchesUpAndNextDiffMatchesUninterrupted) {
  auto g = MakeSynthetic({.nodes = 100,
                          .edges = 300,
                          .value_correlation = 0.9,
                          .seed = 4});
  auto rules = GenerateGfdSet(g, {.count = 10, .k = 3, .seed = 19});
  ViolationEngine engine(rules);

  std::string dir = Scratch("coord_torn");
  std::string ref_dir = Scratch("coord_torn_ref");
  ASSERT_TRUE(Coordinator::Init(dir, g, 3));
  ASSERT_TRUE(GraphStore::Init(ref_dir, g));

  Rng rng(31);
  std::vector<std::string> payloads;
  {
    PropertyGraph current = g;
    for (int b = 0; b < 3; ++b) {
      GraphDelta d = RandomBatch(current, rng, 10);
      payloads.push_back(DeltaBytes(current, d));
      current = GraphView::Apply(current, d)->Materialize();
    }
  }

  {
    auto coord = Coordinator::Open(dir);
    ASSERT_TRUE(coord.has_value());
    for (int b = 0; b < 2; ++b) {
      ASSERT_TRUE(coord->AppendAndDiff(engine, payloads[b]).has_value());
    }
  }
  // The uninterrupted reference applies the same stream to one store.
  auto single = GraphStore::Open(ref_dir);
  ASSERT_TRUE(single.has_value());
  for (int b = 0; b < 2; ++b) {
    ASSERT_TRUE(AppendAndDiff(*single, engine, payloads[b]).has_value());
  }

  // Crash: tear the tail off fragment 1's log -- as a kill between write
  // and ack would. Its last record (batch 2) becomes unrecoverable.
  std::string frag_log = dir + "/frag-1/deltas.log";
  auto size = fs::file_size(frag_log);
  fs::resize_file(frag_log, size - 7);

  // Catch-up must be visible through the metrics/trace channel too.
  uint64_t catchup_frags_before = CatchupFragmentsTotal().Value();
  uint64_t catchup_recs_before = CatchupRecordsTotal().Value();
  std::optional<Coordinator> reopened;
  {
    ScopedTestTrace trace("coord_torn_trace");
    reopened = Coordinator::Open(dir);
    ASSERT_TRUE(reopened.has_value());
    std::string text = trace.Text();
    EXPECT_NE(text.find("\"stage\":\"catchup\""), std::string::npos);
    EXPECT_NE(text.find("\"stage\":\"torn_tail\""), std::string::npos);
  }
  auto stats = reopened->stats();
  EXPECT_EQ(stats.lagging_fragments, 1u);
  EXPECT_GE(stats.catchup_records, 1u);
  EXPECT_EQ(CatchupFragmentsTotal().Value(), catchup_frags_before + 1);
  EXPECT_EQ(CatchupRecordsTotal().Value() - catchup_recs_before,
            stats.catchup_records);
  EXPECT_EQ(reopened->last_seq(), 2u);
  for (size_t f = 0; f < reopened->num_fragments(); ++f) {
    EXPECT_EQ(reopened->fragment(f).last_seq(), 2u) << "fragment " << f;
  }
  ExpectFragmentsMatchResidentSubgraphs(*reopened);

  // The next batch: merged diff == uninterrupted single-node diff.
  uint64_t seq = 0;
  auto merged = reopened->AppendAndDiff(engine, payloads[2], {}, &seq);
  auto ref = AppendAndDiff(*single, engine, payloads[2]);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(seq, 3u);
  EXPECT_EQ(merged->added, ref->added);
  EXPECT_EQ(merged->removed, ref->removed);
  EXPECT_EQ(GraphBytes(reopened->MaterializeCurrent()),
            GraphBytes(single->MaterializeCurrent()));
}

// A fragment that compacted while its peers did not (a crash between the
// per-fragment Compact calls of a lockstep round, simulated by compacting
// one store directly): Open must re-unify the anchors, and diffs must
// still match the single-node reference afterwards.
TEST(Coordinator, UnilateralFragmentCompactionIsReunifiedOnOpen) {
  auto g = MakeSynthetic({.nodes = 90,
                          .edges = 270,
                          .value_correlation = 0.9,
                          .seed = 6});
  auto rules = GenerateGfdSet(g, {.count = 8, .k = 3, .seed = 23});
  ViolationEngine engine(rules);

  std::string dir = Scratch("coord_unilateral");
  std::string ref_dir = Scratch("coord_unilateral_ref");
  ASSERT_TRUE(Coordinator::Init(dir, g, 3));
  ASSERT_TRUE(GraphStore::Init(ref_dir, g));
  auto single = GraphStore::Open(ref_dir);
  ASSERT_TRUE(single.has_value());

  Rng rng(37);
  std::vector<std::string> payloads;
  {
    PropertyGraph current = g;
    for (int b = 0; b < 3; ++b) {
      GraphDelta d = RandomBatch(current, rng, 10);
      payloads.push_back(DeltaBytes(current, d));
      current = GraphView::Apply(current, d)->Materialize();
    }
  }
  {
    auto coord = Coordinator::Open(dir);
    ASSERT_TRUE(coord.has_value());
    for (int b = 0; b < 2; ++b) {
      ASSERT_TRUE(coord->AppendAndDiff(engine, payloads[b]).has_value());
      ASSERT_TRUE(AppendAndDiff(*single, engine, payloads[b]).has_value());
    }
  }
  {
    // Half-done lockstep round: only fragment 2 compacted.
    auto frag = GraphStore::Open(dir + "/frag-2");
    ASSERT_TRUE(frag.has_value());
    std::string error;
    ASSERT_TRUE(frag->Compact(&error)) << error;
    ASSERT_EQ(frag->stats().anchor_seq, 2u);
  }

  auto reopened = Coordinator::Open(dir);
  ASSERT_TRUE(reopened.has_value());
  uint64_t anchor = reopened->fragment(0).stats().anchor_seq;
  for (size_t f = 0; f < reopened->num_fragments(); ++f) {
    EXPECT_EQ(reopened->fragment(f).stats().anchor_seq, anchor)
        << "fragment " << f;
  }
  auto merged = reopened->AppendAndDiff(engine, payloads[2]);
  auto ref = AppendAndDiff(*single, engine, payloads[2]);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(merged->added, ref->added);
  EXPECT_EQ(merged->removed, ref->removed);
}

// A fragment that loses its entire directory is rebuilt from the global
// state as a partition-scoped snapshot transfer: it receives exactly its
// resident subgraph at the global sequence, not the whole graph.
TEST(Coordinator, LostFragmentDirectoryIsRebuiltFromItsResidentSubgraph) {
  auto g = MakeSynthetic({.nodes = 70, .edges = 200, .seed = 8});
  std::string dir = Scratch("coord_snapxfer");
  ASSERT_TRUE(Coordinator::Init(dir, g, 2));
  Rng rng(41);
  std::string expect;
  {
    auto coord = Coordinator::Open(dir);
    ASSERT_TRUE(coord.has_value());
    for (int b = 0; b < 2; ++b) {
      PropertyGraph current = coord->MaterializeCurrent();
      GraphDelta d = RandomBatch(current, rng, 8);
      auto seq = coord->Append(DeltaBytes(current, d));
      ASSERT_TRUE(seq.has_value());
    }
    expect = GraphBytes(coord->MaterializeCurrent());
  }
  // Fragment 1's whole directory is lost (disk gone)...
  fs::remove_all(dir + "/frag-1");
  // ...while fragment 0 compacts, dropping the records from its log too.
  {
    auto frag = GraphStore::Open(dir + "/frag-0");
    ASSERT_TRUE(frag.has_value());
    ASSERT_TRUE(frag->Compact());
  }
  // The rebuild is a snapshot transfer: counted, and traced as one.
  uint64_t transfers_before = SnapshotTransfersTotal().Value();
  std::optional<Coordinator> reopened;
  {
    ScopedTestTrace trace("coord_snapxfer_trace");
    reopened = Coordinator::Open(dir);
    ASSERT_TRUE(reopened.has_value());
    std::string text = trace.Text();
    EXPECT_NE(text.find("\"stage\":\"snapshot_transfer\""),
              std::string::npos);
    EXPECT_NE(text.find("\"fragment\":1"), std::string::npos);
  }
  EXPECT_EQ(SnapshotTransfersTotal().Value(), transfers_before + 1);
  EXPECT_EQ(reopened->stats().catchup_snapshots, 1u);
  EXPECT_EQ(reopened->last_seq(), 2u);
  EXPECT_EQ(reopened->fragment(1).last_seq(), 2u);
  EXPECT_EQ(GraphBytes(reopened->MaterializeCurrent()), expect);
  ExpectFragmentsMatchResidentSubgraphs(*reopened);
}

// A rebalance that crashed right after persisting its intent (meta
// carries owners_seq beyond every fragment anchor) must trigger a full
// partition-scoped resync on open, after which serving continues and
// diffs still match the single-node reference.
TEST(Coordinator, TornRebalanceIsRepairedByFullResyncOnOpen) {
  auto g = MakeSynthetic({.nodes = 80,
                          .edges = 240,
                          .value_correlation = 0.9,
                          .seed = 12});
  auto rules = GenerateGfdSet(g, {.count = 8, .k = 3, .seed = 27});
  ViolationEngine engine(rules);
  std::string dir = Scratch("coord_torn_rebalance");
  std::string ref_dir = Scratch("coord_torn_rebalance_ref");
  ASSERT_TRUE(Coordinator::Init(dir, g, 2));
  ASSERT_TRUE(GraphStore::Init(ref_dir, g));
  auto single = GraphStore::Open(ref_dir);
  ASSERT_TRUE(single.has_value());

  Rng rng(53);
  std::vector<std::string> payloads;
  {
    PropertyGraph current = g;
    for (int b = 0; b < 3; ++b) {
      GraphDelta d = RandomBatch(current, rng, 10);
      payloads.push_back(DeltaBytes(current, d));
      current = GraphView::Apply(current, d)->Materialize();
    }
  }
  {
    auto coord = Coordinator::Open(dir);
    ASSERT_TRUE(coord.has_value());
    for (int b = 0; b < 2; ++b) {
      ASSERT_TRUE(coord->AppendAndDiff(engine, payloads[b]).has_value());
      ASSERT_TRUE(AppendAndDiff(*single, engine, payloads[b]).has_value());
    }
  }
  // Simulate the crash window: bump owners_seq in the meta past every
  // fragment anchor, exactly what Rebalance persists before shipping.
  {
    std::ifstream in(dir + "/coordinator.meta");
    std::stringstream buf;
    buf << in.rdbuf();
    std::string meta = buf.str();
    size_t pos = meta.find("owners_seq 0");
    ASSERT_NE(pos, std::string::npos);
    meta.replace(pos, 12, "owners_seq 2");
    std::ofstream out(dir + "/coordinator.meta", std::ios::trunc);
    out << meta;
  }

  uint64_t transfers_before = SnapshotTransfersTotal().Value();
  auto reopened = Coordinator::Open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->stats().catchup_snapshots, reopened->num_fragments());
  EXPECT_EQ(SnapshotTransfersTotal().Value() - transfers_before,
            reopened->num_fragments());
  EXPECT_EQ(reopened->last_seq(), 2u);
  ExpectFragmentsMatchResidentSubgraphs(*reopened);

  auto merged = reopened->AppendAndDiff(engine, payloads[2]);
  auto ref = AppendAndDiff(*single, engine, payloads[2]);
  ASSERT_TRUE(merged.has_value());
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(merged->added, ref->added);
  EXPECT_EQ(merged->removed, ref->removed);
}

// --- Halo-radius guard -----------------------------------------------------

TEST(Coordinator, RejectsRulesWiderThanTheHaloRadius) {
  auto g = MakeSynthetic({.nodes = 60,
                          .edges = 180,
                          .value_correlation = 0.9,
                          .seed = 14});
  auto rules = GenerateGfdSet(g, {.count = 10, .k = 4, .seed = 33});
  ViolationEngine engine(rules);
  if (engine.MaxPatternRadius() <= 1) {
    GTEST_SKIP() << "generated patterns too narrow to exercise the guard";
  }
  std::string dir = Scratch("coord_radius_guard");
  ASSERT_TRUE(Coordinator::Init(dir, g, 2, /*halo_radius=*/1));
  auto coord = Coordinator::Open(dir);
  ASSERT_TRUE(coord.has_value());
  std::string error;
  EXPECT_FALSE(coord->AppendAndDiff(engine, "", {}, nullptr, &error));
  EXPECT_NE(error.find("halo radius"), std::string::npos);
  // Plain appends (no detection) are still fine at any radius >= 1.
  EXPECT_TRUE(coord->Append("").has_value());
}

// --- Running violation count on the coordinator ----------------------------

TEST(Coordinator, ViolationCountPersistsAndInvalidates) {
  auto g = MakeSynthetic({.nodes = 60,
                          .edges = 180,
                          .value_correlation = 0.9,
                          .seed = 9});
  auto rules = GenerateGfdSet(g, {.count = 8, .k = 3, .seed = 29});
  ViolationEngine engine(rules);
  const uint64_t fp = 0xfeedu;

  std::string dir = Scratch("coord_count");
  ASSERT_TRUE(Coordinator::Init(dir, g, 2));
  auto coord = Coordinator::Open(dir);
  ASSERT_TRUE(coord.has_value());
  EXPECT_FALSE(coord->violation_count(fp).has_value());

  uint64_t count = engine.Detect(coord->MaterializeCurrent()).violations.size();
  ASSERT_TRUE(coord->SetViolationCount(count, fp));
  EXPECT_EQ(coord->violation_count(fp), count);
  EXPECT_FALSE(coord->violation_count(fp + 1).has_value());  // wrong rules

  Rng rng(43);
  PropertyGraph current = coord->MaterializeCurrent();
  GraphDelta d = RandomBatch(current, rng, 10);
  auto diff = coord->AppendAndDiff(engine, DeltaBytes(current, d));
  ASSERT_TRUE(diff.has_value());
  EXPECT_FALSE(coord->violation_count(fp).has_value());  // outdated
  count = count + diff->added.size() - diff->removed.size();
  ASSERT_TRUE(coord->SetViolationCount(count, fp));

  auto reopened = Coordinator::Open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->violation_count(fp), count);
  EXPECT_EQ(
      engine.Detect(reopened->MaterializeCurrent()).violations.size(), count);
}

}  // namespace
}  // namespace gfd
