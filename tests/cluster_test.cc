#include <gtest/gtest.h>

#include <atomic>

#include "core/config.h"
#include "core/generation_tree.h"
#include "datagen/kb.h"
#include "graph/stats.h"
#include "parallel/cluster.h"
#include "util/timer.h"

namespace gfd {
namespace {

TEST(Cluster, RunStepVisitsEveryWorkerOnce) {
  Cluster c(6);
  std::vector<int> hits(6, 0);
  c.RunStep([&](size_t w) { ++hits[w]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(c.num_workers(), 6u);
}

TEST(Cluster, ShipmentAccounting) {
  Cluster c(4);
  EXPECT_EQ(c.messages(), 0u);
  EXPECT_EQ(c.bytes(), 0u);
  c.CountShipment(100, 8);
  EXPECT_EQ(c.messages(), 1u);
  EXPECT_EQ(c.bytes(), 800u);
  c.CountBroadcast(10, 4);
  EXPECT_EQ(c.messages(), 5u);         // 1 + 4 workers
  EXPECT_EQ(c.bytes(), 800u + 160u);   // + 4 * 10 * 4
}

TEST(Cluster, ConcurrentAccountingIsAtomic) {
  Cluster c(8);
  c.RunStep([&](size_t) {
    for (int i = 0; i < 1000; ++i) c.CountShipment(1, 1);
  });
  EXPECT_EQ(c.messages(), 8000u);
  EXPECT_EQ(c.bytes(), 8000u);
}

TEST(WallTimerTest, MeasuresElapsedAndResets) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink + i * 0.5;
  double first = t.Seconds();
  EXPECT_GT(first, 0.0);
  double a = t.Millis();
  double b = t.Millis();
  EXPECT_LE(a, b);  // monotone clock
  t.Reset();
  EXPECT_LE(t.Seconds(), first + 1.0);
}

// Path-pattern-only VSpawn (the GCFD restriction).
TEST(PathOnlySpawn, GrowsChainsFromTheTailOnly) {
  auto g = MakeYago2Like({.scale = 150, .seed = 3});
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 8;
  cfg.k = 3;
  cfg.path_patterns_only = true;
  cfg.wildcard_upgrades = false;
  DiscoveryStats ds;
  GenerationTree tree;
  auto l0 = InitTree(tree, stats, cfg, ds);
  for (int id : l0) {
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto triples = stats.FrequentTriples(cfg.support_threshold);
  auto l1 = VSpawn(tree, 1, triples, {}, cfg, ds);
  for (int id : l1) {
    const auto& p = tree.node(id).pattern;
    ASSERT_EQ(p.NumEdges(), 1u);
    EXPECT_EQ(p.edges()[0].src, 0u);
    EXPECT_EQ(p.edges()[0].dst, 1u);
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto l2 = VSpawn(tree, 2, triples, {}, cfg, ds);
  ASSERT_FALSE(l2.empty());
  for (int id : l2) {
    const auto& p = tree.node(id).pattern;
    ASSERT_EQ(p.NumEdges(), 2u);
    // Second edge extends the tail variable (1 -> 2), never closes back.
    EXPECT_EQ(p.edges()[1].src, 1u);
    EXPECT_EQ(p.edges()[1].dst, 2u);
  }
}

TEST(DbpediaMarriages, SpousesShareFamilyName) {
  auto g = MakeDbpediaLike({.scale = 200, .seed = 11});
  auto married = g.FindLabel("isMarriedTo");
  ASSERT_TRUE(married.has_value());
  AttrId fam = *g.FindAttr("familyname");
  size_t checked = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (g.EdgeLabel(e) != *married) continue;
    auto f1 = g.GetAttr(g.EdgeSrc(e), fam);
    auto f2 = g.GetAttr(g.EdgeDst(e), fam);
    ASSERT_TRUE(f1 && f2);
    EXPECT_EQ(*f1, *f2);
    // Symmetric edges present.
    EXPECT_TRUE(g.HasEdge(g.EdgeDst(e), g.EdgeSrc(e), *married));
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(DbpediaMarriages, FamilyInvariantStillHolds) {
  auto g = MakeDbpediaLike({.scale = 200, .seed = 11});
  AttrId fam = *g.FindAttr("familyname");
  LabelId child = *g.FindLabel("hasChild");
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (g.EdgeLabel(e) != child) continue;
    auto f1 = g.GetAttr(g.EdgeSrc(e), fam);
    auto f2 = g.GetAttr(g.EdgeDst(e), fam);
    ASSERT_TRUE(f1 && f2);
    EXPECT_EQ(*f1, *f2) << "marriage pool leaked into family pool";
  }
}

}  // namespace
}  // namespace gfd
