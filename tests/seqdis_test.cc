#include <gtest/gtest.h>

#include <algorithm>

#include "core/cover.h"
#include "core/seqdis.h"
#include "datagen/kb.h"
#include "gfd/problems.h"
#include "gfd/validation.h"
#include "testlib.h"

namespace gfd {
namespace {

// Shared discovery run on the YAGO2-like graph (scale kept small so the
// suite runs in seconds).
class SeqDisYago : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    KbConfig kcfg;
    kcfg.scale = 200;
    graph_ = new PropertyGraph(MakeYago2Like(kcfg));
    DiscoveryConfig cfg;
    cfg.k = 3;
    cfg.support_threshold = 8;
    cfg.max_lhs_size = 2;
    result_ = new DiscoveryResult(SeqDis(*graph_, cfg));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete graph_;
    result_ = nullptr;
    graph_ = nullptr;
  }

  static PropertyGraph* graph_;
  static DiscoveryResult* result_;
};

PropertyGraph* SeqDisYago::graph_ = nullptr;
DiscoveryResult* SeqDisYago::result_ = nullptr;

TEST_F(SeqDisYago, FindsPositivesAndNegatives) {
  EXPECT_GT(result_->positives.size(), 10u);
  EXPECT_GT(result_->negatives.size(), 0u);
  EXPECT_EQ(result_->positives.size(), result_->positive_supports.size());
  EXPECT_EQ(result_->negatives.size(), result_->negative_supports.size());
}

TEST_F(SeqDisYago, AllDiscoveredGfdsAreSatisfied) {
  // Every discovered GFD must hold on the graph (validation is embedded
  // in discovery). Check a deterministic sample to keep runtime sane.
  size_t checked = 0;
  for (size_t i = 0; i < result_->positives.size() && checked < 40;
       i += 7, ++checked) {
    EXPECT_TRUE(SatisfiesGfd(*graph_, result_->positives[i]))
        << result_->positives[i].ToString(*graph_);
  }
  checked = 0;
  for (size_t i = 0; i < result_->negatives.size() && checked < 40;
       i += 11, ++checked) {
    EXPECT_TRUE(SatisfiesGfd(*graph_, result_->negatives[i]))
        << result_->negatives[i].ToString(*graph_);
  }
}

TEST_F(SeqDisYago, SupportsMeetThreshold) {
  for (uint64_t s : result_->positive_supports) EXPECT_GE(s, 8u);
  for (uint64_t s : result_->negative_supports) EXPECT_GE(s, 8u);
}

TEST_F(SeqDisYago, NoTrivialGfds) {
  for (const auto& phi : result_->positives) {
    EXPECT_FALSE(IsTrivialGfd(phi)) << phi.ToString(*graph_);
  }
  for (const auto& phi : result_->negatives) {
    EXPECT_FALSE(IsTrivialGfd(phi)) << phi.ToString(*graph_);
  }
}

TEST_F(SeqDisYago, PositivesAreReduced) {
  // No discovered positive reduces another (sampled pairs; the full
  // quadratic check is done on a smaller run below).
  const auto& pos = result_->positives;
  for (size_t i = 0; i < pos.size(); i += 13) {
    for (size_t j = 0; j < pos.size(); j += 7) {
      if (i == j) continue;
      EXPECT_FALSE(GfdReduces(pos[i], pos[j]))
          << pos[i].ToString(*graph_) << "  <<  " << pos[j].ToString(*graph_);
    }
  }
}

TEST_F(SeqDisYago, FindsPlantedTypeRules) {
  // Single-node rules: producer => type='producer', etc.
  AttrId type = *graph_->FindAttr("type");
  ValueId producer = *graph_->FindValue("producer");
  bool found = false;
  for (const auto& phi : result_->positives) {
    if (phi.pattern.NumNodes() == 1 && phi.lhs.empty() &&
        phi.rhs == Literal::Const(0, type, producer)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "missing producer type rule";
}

TEST_F(SeqDisYago, FindsPlantedFamilyNameRuleWithWildcard) {
  // GFD1 of Fig. 8: _ -hasChild-> _ implies equal familyname.
  AttrId fam = *graph_->FindAttr("familyname");
  LabelId has_child = *graph_->FindLabel("hasChild");
  bool found = false;
  for (const auto& phi : result_->positives) {
    if (phi.pattern.NumNodes() != 2 || phi.pattern.NumEdges() != 1) continue;
    const auto& e = phi.pattern.edges()[0];
    if (e.label != has_child) continue;
    if (phi.pattern.NodeLabel(0) != kWildcardLabel ||
        phi.pattern.NodeLabel(1) != kWildcardLabel) {
      continue;
    }
    if (phi.lhs.empty() && phi.rhs == Literal::Vars(0, fam, 1, fam)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "missing wildcard familyname rule";
}

TEST_F(SeqDisYago, FindsPlantedCitizenshipNegative) {
  // GFD3 of Fig. 8 flavor: citizenship of US and Norway cannot combine.
  // Depending on scale it surfaces as the 3-variable named form
  // {y.name='US', z.name='Norway'} or the 2-variable passport form
  // {x.passport='no', y.name='US'} -- both encode the exclusivity.
  ValueId us = *graph_->FindValue("US");
  ValueId norway = *graph_->FindValue("Norway");
  ValueId no_passport = *graph_->FindValue("no");
  bool found = false;
  for (const auto& phi : result_->negatives) {
    bool has_us = false, has_no = false;
    for (const auto& l : phi.lhs) {
      if (l.kind != LiteralKind::kVarConst) continue;
      if (l.c == us) has_us = true;
      if (l.c == norway || l.c == no_passport) has_no = true;
    }
    if (has_us && has_no) found = true;
  }
  EXPECT_TRUE(found) << "missing US/Norway exclusivity negative";
}

TEST_F(SeqDisYago, FindsMutualParentNegative) {
  // phi3 of Example 1: x -hasChild-> y -hasChild-> x is an illegal
  // structure (families are acyclic by construction).
  LabelId has_child = *graph_->FindLabel("hasChild");
  bool found = false;
  for (const auto& phi : result_->negatives) {
    if (!phi.lhs.empty() || phi.pattern.NumNodes() != 2 ||
        phi.pattern.NumEdges() != 2) {
      continue;
    }
    int fwd = 0, bwd = 0;
    for (const auto& e : phi.pattern.edges()) {
      if (e.label != has_child && e.label != kWildcardLabel) continue;
      if (e.src == 0 && e.dst == 1) ++fwd;
      if (e.src == 1 && e.dst == 0) ++bwd;
    }
    if (fwd >= 1 && bwd >= 1) found = true;
  }
  EXPECT_TRUE(found) << "missing mutual hasChild negative";
}

TEST_F(SeqDisYago, StatsAreCoherent) {
  const auto& st = result_->stats;
  EXPECT_GT(st.patterns_spawned, 0u);
  EXPECT_GT(st.patterns_frequent, 0u);
  EXPECT_GE(st.candidates_generated, st.candidates_validated);
  EXPECT_EQ(st.positives_found, result_->positives.size());
  EXPECT_EQ(st.negatives_found, result_->negatives.size());
  EXPECT_FALSE(st.budget_exceeded);
}

// --- Anti-monotonicity of support (Theorem 3) -------------------------------

TEST(AntiMonotonicity, LhsExtensionNeverGainsSupport) {
  KbConfig kcfg;
  kcfg.scale = 120;
  auto g = MakeYago2Like(kcfg);
  AttrId type = *g.FindAttr("type");
  AttrId gender = *g.FindAttr("gender");
  LabelId cit = *g.FindLabel("citizenOf");
  Pattern q;
  VarId x = q.AddNode(kWildcardLabel);
  VarId y = q.AddNode(kWildcardLabel);
  q.AddEdge(x, y, cit);
  q.set_pivot(x);
  CompiledPattern cq(q);

  ValueId country = *g.FindValue("country");
  Gfd base(q, {}, Literal::Const(1, type, country));
  Gfd ext(q, {Literal::Const(0, gender, *g.FindValue("male"))},
          Literal::Const(1, type, country));
  auto r_base = EvaluateGfd(g, cq, base);
  auto r_ext = EvaluateGfd(g, cq, ext);
  EXPECT_TRUE(GfdReduces(base, ext));
  EXPECT_GE(r_base.gfd_support, r_ext.gfd_support);
}

TEST(AntiMonotonicity, PatternExtensionNeverGainsSupport) {
  KbConfig kcfg;
  kcfg.scale = 120;
  auto g = MakeYago2Like(kcfg);
  AttrId fam = *g.FindAttr("familyname");
  LabelId has_child = *g.FindLabel("hasChild");

  Pattern small;
  VarId x = small.AddNode(kWildcardLabel);
  VarId y = small.AddNode(kWildcardLabel);
  small.AddEdge(x, y, has_child);
  small.set_pivot(x);

  Pattern big = small;
  VarId z = big.AddNode(kWildcardLabel);
  big.AddEdge(y, z, has_child);

  Gfd phi_small(small, {}, Literal::Vars(0, fam, 1, fam));
  Gfd phi_big(big, {}, Literal::Vars(0, fam, 1, fam));
  ASSERT_TRUE(GfdReduces(phi_small, phi_big));

  auto r_small = EvaluateGfd(g, CompiledPattern(small), phi_small);
  auto r_big = EvaluateGfd(g, CompiledPattern(big), phi_big);
  EXPECT_GE(r_small.gfd_support, r_big.gfd_support);
  EXPECT_GE(r_small.pattern_support, r_big.pattern_support);
}

// --- Pruning ablation (the ParGFDn baseline behavior) -----------------------

TEST(PruningAblation, NoPruneExplodesAndTripsBudget) {
  KbConfig kcfg;
  kcfg.scale = 120;
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = 8;
  auto pruned = SeqDis(g, cfg);
  cfg.prune = false;
  cfg.candidate_budget = pruned.stats.candidates_generated * 2;
  auto unpruned = SeqDis(g, cfg);
  EXPECT_TRUE(unpruned.stats.budget_exceeded)
      << "un-pruned search should blow past twice the pruned budget";
}

TEST(PruningAblation, PrunedFindsPlantedRulesAnyway) {
  KbConfig kcfg;
  kcfg.scale = 120;
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 8;
  auto res = SeqDis(g, cfg);
  EXPECT_GT(res.positives.size(), 5u);
}

// --- Cover computation -------------------------------------------------------

TEST(CoverTest, CoverIsSubsetAndEquivalent) {
  KbConfig kcfg;
  kcfg.scale = 120;
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 8;
  auto res = SeqDis(g, cfg);
  auto sigma = res.AllGfds();
  CoverStats stats;
  auto cover = SeqCover(sigma, &stats);
  EXPECT_LE(cover.size(), sigma.size());
  EXPECT_EQ(stats.implication_tests, sigma.size());
  // Equivalence: every removed GFD is implied by the cover.
  for (const auto& phi : sigma) {
    bool in_cover =
        std::find(cover.begin(), cover.end(), phi) != cover.end();
    if (!in_cover) {
      EXPECT_TRUE(Implies(cover, phi)) << phi.ToString(g);
    }
  }
}

TEST(CoverTest, CoverIsMinimal) {
  KbConfig kcfg;
  kcfg.scale = 100;
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 10;
  auto res = SeqDis(g, cfg);
  auto cover = SeqCover(res.AllGfds());
  // No member of the cover is implied by the others.
  for (size_t i = 0; i < cover.size(); ++i) {
    std::vector<Gfd> others;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) others.push_back(cover[j]);
    }
    EXPECT_FALSE(Implies(others, cover[i])) << cover[i].ToString(g);
  }
}

TEST(CoverTest, RemovesExactDuplicates) {
  auto g = gfd::testing::BuildG1();
  AttrId type = *g.FindAttr("type");
  Gfd phi(gfd::testing::BuildQ1(g),
          {Literal::Const(1, type, *g.FindValue("film"))},
          Literal::Const(0, type, *g.FindValue("producer")));
  CoverStats stats;
  auto cover = SeqCover({phi, phi, phi}, &stats);
  EXPECT_EQ(cover.size(), 1u);
}

TEST(CoverTest, RemovesSpecializations) {
  auto g = gfd::testing::BuildG1();
  AttrId type = *g.FindAttr("type");
  ValueId film = *g.FindValue("film");
  ValueId producer = *g.FindValue("producer");
  Gfd general(gfd::testing::BuildQ1(g), {},
              Literal::Const(0, type, producer));
  Gfd special(gfd::testing::BuildQ1(g), {Literal::Const(1, type, film)},
              Literal::Const(0, type, producer));
  auto cover = SeqCover({general, special});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], general);
}

TEST(CoverTest, EmptyInput) {
  EXPECT_TRUE(SeqCover({}).empty());
}

}  // namespace
}  // namespace gfd
