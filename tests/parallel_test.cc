#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cover.h"
#include "core/seqdis.h"
#include "datagen/gfd_gen.h"
#include "datagen/kb.h"
#include "gfd/problems.h"
#include "parallel/fragment.h"
#include "parallel/parcover.h"
#include "parallel/pardis.h"

namespace gfd {
namespace {

// Canonical sortable rendering of a GFD set for set-equality assertions.
std::multiset<std::string> Render(const std::vector<Gfd>& gfds,
                                  const PropertyGraph& g) {
  std::multiset<std::string> out;
  for (const auto& phi : gfds) out.insert(phi.ToString(g));
  return out;
}

TEST(Fragmentation, EdgesPartitionedEvenly) {
  KbConfig cfg{.scale = 150, .seed = 3};
  auto g = MakeYago2Like(cfg);
  for (size_t n : {1u, 2u, 4u, 8u}) {
    auto frag = VertexCutPartition(g, n);
    ASSERT_EQ(frag.fragment_edges.size(), n);
    size_t total = 0, max_sz = 0, min_sz = SIZE_MAX;
    for (const auto& fe : frag.fragment_edges) {
      total += fe.size();
      max_sz = std::max(max_sz, fe.size());
      min_sz = std::min(min_sz, fe.size());
    }
    EXPECT_EQ(total, g.NumEdges());
    EXPECT_LE(max_sz - min_sz, g.NumEdges() / n / 4 + 2)
        << "imbalanced at n=" << n;
  }
}

TEST(Fragmentation, EveryEdgeAssignedOnce) {
  KbConfig cfg{.scale = 100, .seed = 3};
  auto g = MakeYago2Like(cfg);
  auto frag = VertexCutPartition(g, 4);
  std::vector<int> seen(g.NumEdges(), 0);
  for (size_t f = 0; f < 4; ++f) {
    for (EdgeId e : frag.fragment_edges[f]) {
      EXPECT_EQ(frag.edge_fragment[e], f);
      ++seen[e];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Fragmentation, ReplicationBounded) {
  KbConfig cfg{.scale = 150, .seed = 3};
  auto g = MakeYago2Like(cfg);
  auto frag = VertexCutPartition(g, 8);
  EXPECT_GE(frag.partition.replication, 1.0);
  EXPECT_LE(frag.partition.replication, 8.0);
  // The greedy endpoint-affine placement should do much better than
  // random (which would approach min(degree, n)).
  EXPECT_LT(frag.partition.replication, 4.0);
}

TEST(Fragmentation, NodeOwnersValid) {
  KbConfig cfg{.scale = 100, .seed = 3};
  auto g = MakeYago2Like(cfg);
  auto frag = VertexCutPartition(g, 4);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LT(frag.partition.node_owner[v], 4u);
  }
}

TEST(Fragmentation, SingleFragmentDegenerate) {
  KbConfig cfg{.scale = 100, .seed = 3};
  auto g = MakeYago2Like(cfg);
  auto frag = VertexCutPartition(g, 1);
  EXPECT_EQ(frag.fragment_edges[0].size(), g.NumEdges());
  EXPECT_DOUBLE_EQ(frag.partition.replication, 1.0);
}

// --- ParDis == SeqDis --------------------------------------------------------

class ParDisEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(ParDisEquivalence, MatchesSequentialOutput) {
  KbConfig kcfg{.scale = 150, .seed = 3};
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = 8;
  auto seq = SeqDis(g, cfg);

  ParallelRunConfig pcfg;
  pcfg.workers = GetParam();
  ClusterStats cs;
  auto par = ParDis(g, cfg, pcfg, &cs);

  EXPECT_EQ(Render(par.positives, g), Render(seq.positives, g));
  EXPECT_EQ(Render(par.negatives, g), Render(seq.negatives, g));
  // Supports must agree GFD by GFD.
  auto support_map = [&](const DiscoveryResult& r) {
    std::map<std::string, uint64_t> m;
    for (size_t i = 0; i < r.positives.size(); ++i) {
      m[r.positives[i].ToString(g)] = r.positive_supports[i];
    }
    return m;
  };
  EXPECT_EQ(support_map(par), support_map(seq));
  if (pcfg.workers > 1) {
    EXPECT_GT(cs.messages, 0u);
    EXPECT_GT(cs.bytes_shipped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParDisEquivalence,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParDisNoBalance, MatchesSequentialOutputToo) {
  KbConfig kcfg{.scale = 120, .seed = 5};
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = 8;
  auto seq = SeqDis(g, cfg);
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  pcfg.load_balance = false;
  ClusterStats cs;
  auto par = ParDis(g, cfg, pcfg, &cs);
  EXPECT_EQ(Render(par.positives, g), Render(seq.positives, g));
  EXPECT_EQ(Render(par.negatives, g), Render(seq.negatives, g));
}

TEST(ParDisNoBalance, ShipsMoreThanBalanced) {
  KbConfig kcfg{.scale = 150, .seed = 3};
  auto g = MakeYago2Like(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 8;
  ParallelRunConfig balanced{.workers = 4, .load_balance = true};
  ParallelRunConfig unbalanced{.workers = 4, .load_balance = false};
  ClusterStats cs_b, cs_u;
  ParDis(g, cfg, balanced, &cs_b);
  ParDis(g, cfg, unbalanced, &cs_u);
  // Without pivot alignment the master merges shipped pivot sets per
  // candidate: strictly more communication.
  EXPECT_GT(cs_u.bytes_shipped, cs_b.bytes_shipped);
}

TEST(ParDisImdb, WorksAcrossGenerators) {
  KbConfig kcfg{.scale = 120, .seed = 9};
  auto g = MakeImdbLike(kcfg);
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 8;
  auto seq = SeqDis(g, cfg);
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  auto par = ParDis(g, cfg, pcfg);
  EXPECT_EQ(Render(par.positives, g), Render(seq.positives, g));
  EXPECT_EQ(Render(par.negatives, g), Render(seq.negatives, g));
}

// --- ParCover ---------------------------------------------------------------

TEST(ParCoverTest, EquivalentToSeqCover) {
  KbConfig kcfg{.scale = 150, .seed = 3};
  auto g = MakeYago2Like(kcfg);
  GfdGenConfig gcfg;
  gcfg.count = 400;
  auto sigma = GenerateGfdSet(g, gcfg);

  auto seq_cover = SeqCover(sigma);
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  CoverStats pstats;
  auto par_cover = ParCover(sigma, pcfg, &pstats);

  // Mutual implication: both covers are equivalent to Sigma, hence to
  // each other.
  for (const auto& phi : seq_cover) {
    EXPECT_TRUE(Implies(par_cover, phi)) << phi.ToString(g);
  }
  for (const auto& phi : par_cover) {
    EXPECT_TRUE(Implies(seq_cover, phi)) << phi.ToString(g);
  }
  EXPECT_GT(pstats.removed, 0u);
}

TEST(ParCoverTest, CoverIsMinimal) {
  KbConfig kcfg{.scale = 120, .seed = 7};
  auto g = MakeYago2Like(kcfg);
  GfdGenConfig gcfg;
  gcfg.count = 200;
  auto sigma = GenerateGfdSet(g, gcfg);
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  auto cover = ParCover(sigma, pcfg);
  for (size_t i = 0; i < cover.size(); ++i) {
    std::vector<Gfd> others;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) others.push_back(cover[j]);
    }
    EXPECT_FALSE(Implies(others, cover[i])) << cover[i].ToString(g);
  }
}

TEST(ParCoverTest, NoGroupingSameResultMoreTests) {
  KbConfig kcfg{.scale = 120, .seed = 7};
  auto g = MakeYago2Like(kcfg);
  GfdGenConfig gcfg;
  gcfg.count = 200;
  auto sigma = GenerateGfdSet(g, gcfg);
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  CoverStats grouped, ungrouped;
  auto c1 = ParCover(sigma, pcfg, &grouped);
  auto c2 = ParCoverNoGrouping(sigma, pcfg, &ungrouped);
  // Equivalent covers.
  for (const auto& phi : c1) EXPECT_TRUE(Implies(c2, phi));
  for (const auto& phi : c2) EXPECT_TRUE(Implies(c1, phi));
}

TEST(ParCoverTest, WorkerCountInvariant) {
  KbConfig kcfg{.scale = 100, .seed = 11};
  auto g = MakeYago2Like(kcfg);
  GfdGenConfig gcfg;
  gcfg.count = 150;
  auto sigma = GenerateGfdSet(g, gcfg);
  std::vector<Gfd> prev;
  for (size_t w : {1u, 2u, 8u}) {
    ParallelRunConfig pcfg;
    pcfg.workers = w;
    auto cover = ParCover(sigma, pcfg);
    if (!prev.empty()) {
      auto render = [&](const std::vector<Gfd>& v) {
        std::multiset<std::string> s;
        for (const auto& phi : v) s.insert(phi.ToString(g));
        return s;
      };
      EXPECT_EQ(render(cover), render(prev)) << "workers=" << w;
    }
    prev = cover;
  }
}

TEST(ParCoverTest, EmptyAndSingleton) {
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  EXPECT_TRUE(ParCover({}, pcfg).empty());

  PropertyGraph::Builder b;
  NodeId v = b.AddNode("n");
  b.SetAttr(v, "a", "1");
  auto g = std::move(b).Build();
  Gfd phi(SingleNodePattern(*g.FindLabel("n")), {},
          Literal::Const(0, *g.FindAttr("a"), *g.FindValue("1")));
  auto cover = ParCover({phi}, pcfg);
  ASSERT_EQ(cover.size(), 1u);
}

}  // namespace
}  // namespace gfd
