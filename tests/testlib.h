// Shared fixtures for the test suites: the graphs and GFDs of Example 1 /
// Figure 1 of the paper, plus small helpers for building graphs and
// patterns in tests.
#ifndef GFD_TESTS_TESTLIB_H_
#define GFD_TESTS_TESTLIB_H_

#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "pattern/pattern.h"

namespace gfd::testing {

/// G1 (Fig. 1): person JohnWinter -create-> product SellingOut, where the
/// product has type "film" but the person's type is "high_jumper" (the
/// YAGO3 error). Extra vocabulary interned: value "producer" (used by phi1).
inline PropertyGraph BuildG1() {
  PropertyGraph::Builder b;
  b.InternValue("producer");  // phi1's consequence constant
  NodeId john = b.AddNode("person");
  b.SetName(john, "JohnWinter");
  b.SetAttr(john, "type", "high_jumper");
  NodeId film = b.AddNode("product");
  b.SetName(film, "SellingOut");
  b.SetAttr(film, "type", "film");
  b.AddEdge(john, film, "create");
  return std::move(b).Build();
}

/// G2 (Fig. 1): city SaintPetersburg located in both country Russia and
/// city Florida (the YAGO3 error).
inline PropertyGraph BuildG2() {
  PropertyGraph::Builder b;
  NodeId sp = b.AddNode("city");
  b.SetName(sp, "SaintPetersburg");
  b.SetAttr(sp, "name", "Saint Petersburg");
  NodeId ru = b.AddNode("country");
  b.SetName(ru, "Russia");
  b.SetAttr(ru, "name", "Russia");
  NodeId fl = b.AddNode("city");
  b.SetName(fl, "Florida");
  b.SetAttr(fl, "name", "Florida");
  b.AddEdge(sp, ru, "located");
  b.AddEdge(sp, fl, "located");
  return std::move(b).Build();
}

/// G3 (Fig. 1): John Brown and Owen Brown are each other's parent (the
/// DBpedia error).
inline PropertyGraph BuildG3() {
  PropertyGraph::Builder b;
  NodeId john = b.AddNode("person");
  b.SetName(john, "JohnBrown");
  b.SetAttr(john, "name", "John Brown");
  NodeId owen = b.AddNode("person");
  b.SetName(owen, "OwenBrown");
  b.SetAttr(owen, "name", "Owen Brown");
  b.AddEdge(john, owen, "parent");
  b.AddEdge(owen, john, "parent");
  return std::move(b).Build();
}

/// Q1 (Fig. 1): person x -create-> product y, pivot x. Labels resolved
/// against `g`'s interner; g must contain the labels.
inline Pattern BuildQ1(const PropertyGraph& g) {
  Pattern q;
  VarId x = q.AddNode(*g.FindLabel("person"));
  VarId y = q.AddNode(*g.FindLabel("product"));
  q.AddEdge(x, y, *g.FindLabel("create"));
  q.set_pivot(x);
  return q;
}

/// Q2 (Fig. 1): city x -located-> y:_ and x -located-> z:_, pivot x.
inline Pattern BuildQ2(const PropertyGraph& g) {
  Pattern q;
  VarId x = q.AddNode(*g.FindLabel("city"));
  VarId y = q.AddNode(kWildcardLabel);
  VarId z = q.AddNode(kWildcardLabel);
  LabelId located = *g.FindLabel("located");
  q.AddEdge(x, y, located);
  q.AddEdge(x, z, located);
  q.set_pivot(x);
  return q;
}

/// Q3 (Fig. 1): person x -parent-> person y and y -parent-> x, pivot x.
inline Pattern BuildQ3(const PropertyGraph& g) {
  Pattern q;
  VarId x = q.AddNode(*g.FindLabel("person"));
  VarId y = q.AddNode(*g.FindLabel("person"));
  LabelId parent = *g.FindLabel("parent");
  q.AddEdge(x, y, parent);
  q.AddEdge(y, x, parent);
  q.set_pivot(x);
  return q;
}

}  // namespace gfd::testing

#endif  // GFD_TESTS_TESTLIB_H_
