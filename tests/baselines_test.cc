#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/amie.h"
#include "baselines/arab.h"
#include "baselines/gcfd.h"
#include "core/seqdis.h"
#include "datagen/kb.h"
#include "gfd/validation.h"

namespace gfd {
namespace {

PropertyGraph SmallKb() {
  KbConfig cfg{.scale = 150, .seed = 3};
  return MakeYago2Like(cfg);
}

// --- AMIE -------------------------------------------------------------------

TEST(Amie, MinesRulesWithQualityMeasures) {
  auto g = SmallKb();
  AmieConfig cfg;
  cfg.min_support = 8;
  auto rules = MineAmieRules(g, cfg);
  ASSERT_FALSE(rules.empty());
  for (const auto& r : rules) {
    EXPECT_GE(r.support, cfg.min_support);
    EXPECT_GT(r.head_coverage, 0.0);
    EXPECT_LE(r.head_coverage, 1.0 + 1e-9);
    EXPECT_GE(r.pca_confidence, 0.0);
    EXPECT_LE(r.pca_confidence, 1.0 + 1e-9);
    EXPECT_FALSE(r.body.empty());
  }
}

TEST(Amie, RulesAreClosed) {
  auto g = SmallKb();
  AmieConfig cfg;
  cfg.min_support = 8;
  for (const auto& r : MineAmieRules(g, cfg)) {
    std::vector<int> occ(8, 0);
    ++occ[r.head.var_s];
    ++occ[r.head.var_d];
    uint32_t max_var = std::max(r.head.var_s, r.head.var_d);
    for (const auto& a : r.body) {
      ++occ[a.var_s];
      ++occ[a.var_d];
      max_var = std::max({max_var, a.var_s, a.var_d});
    }
    for (uint32_t v = 0; v <= max_var; ++v) {
      EXPECT_GE(occ[v], 2) << r.ToString(g);
    }
  }
}

TEST(Amie, FindsMarriageSymmetryRule) {
  // isMarriedTo is symmetric in the generator: the rule
  // isMarriedTo(y, x) => isMarriedTo(x, y) must surface with pca ~ 1.
  auto g = SmallKb();
  AmieConfig cfg;
  cfg.min_support = 8;
  auto rules = MineAmieRules(g, cfg);
  LabelId married = *g.FindLabel("isMarriedTo");
  bool found = false;
  for (const auto& r : rules) {
    if (r.head.rel != married || r.body.size() != 1) continue;
    const auto& b = r.body[0];
    if (b.rel == married && b.var_s == 1 && b.var_d == 0) {
      found = true;
      EXPECT_GT(r.pca_confidence, 0.95) << r.ToString(g);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Amie, SupportAntiMonotoneInBodyLength) {
  auto g = SmallKb();
  AmieConfig cfg;
  cfg.min_support = 5;
  auto rules = MineAmieRules(g, cfg);
  // For any 2-atom rule, some 1-atom sub-rule... not directly indexed;
  // instead check global invariant: max support of 2-atom rules never
  // exceeds max support of 1-atom rules with the same head.
  std::map<LabelId, uint64_t> best1, best2;
  for (const auto& r : rules) {
    auto& slot = (r.body.size() == 1 ? best1 : best2)[r.head.rel];
    slot = std::max(slot, r.support);
  }
  for (const auto& [head, s2] : best2) {
    if (best1.count(head)) {
      EXPECT_LE(s2, best1[head]) << g.LabelName(head);
    }
  }
}

TEST(Amie, ViolationNodesDetectMissingEdges) {
  auto g = SmallKb();
  AmieConfig cfg;
  cfg.min_support = 8;
  auto rules = MineAmieRules(g, cfg);
  auto nodes = AmieViolationNodes(g, rules, 0.5);
  for (NodeId v : nodes) EXPECT_LT(v, g.NumNodes());
  // Sorted unique.
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1], nodes[i]);
  }
}

TEST(Amie, ToStringRendersRule) {
  auto g = SmallKb();
  AmieRule r;
  r.head = {*g.FindLabel("isMarriedTo"), 0, 1};
  r.body = {{*g.FindLabel("hasChild"), 0, 1}};
  std::string s = r.ToString(g);
  EXPECT_NE(s.find("hasChild(?0, ?1)"), std::string::npos);
  EXPECT_NE(s.find("=> isMarriedTo(?0, ?1)"), std::string::npos);
}

// --- GCFD -------------------------------------------------------------------

TEST(Gcfd, MinesOnlyPathPatterns) {
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = 8;
  auto res = MineGcfds(g, cfg);
  EXPECT_GT(res.positives.size(), 0u);
  auto is_path = [](const Pattern& p) {
    // Chain x0 -> x1 -> ... with edge i from var i to var i+1.
    if (p.NumEdges() + 1 != p.NumNodes() && p.NumNodes() != 1) return false;
    for (size_t i = 0; i < p.NumEdges(); ++i) {
      if (p.edges()[i].src != i || p.edges()[i].dst != i + 1) return false;
    }
    return true;
  };
  for (const auto& phi : res.positives) {
    EXPECT_TRUE(is_path(phi.pattern)) << phi.ToString(g);
  }
  for (const auto& phi : res.negatives) {
    EXPECT_TRUE(is_path(phi.pattern)) << phi.ToString(g);
  }
}

TEST(Gcfd, SubsetOfGfdExpressiveness) {
  // GFD discovery on the same graph finds at least as many positives as
  // the path-restricted miner (GCFDs are a special case).
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = 8;
  auto gcfds = MineGcfds(g, cfg);
  auto gfds = SeqDis(g, cfg);
  EXPECT_GE(gfds.positives.size() + gfds.negatives.size(),
            gcfds.positives.size() + gcfds.negatives.size());
}

TEST(Gcfd, ParallelMatchesSequential) {
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 8;
  auto seq = MineGcfds(g, cfg);
  ParallelRunConfig pcfg;
  pcfg.workers = 4;
  auto par = ParMineGcfds(g, cfg, pcfg);
  auto render = [&](const std::vector<Gfd>& v) {
    std::multiset<std::string> s;
    for (const auto& phi : v) s.insert(phi.ToString(g));
    return s;
  };
  EXPECT_EQ(render(par.positives), render(seq.positives));
  EXPECT_EQ(render(par.negatives), render(seq.negatives));
}

// --- ParArab ----------------------------------------------------------------

TEST(Arab, SucceedsWithGenerousBudget) {
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 10;
  ArabConfig acfg;
  acfg.max_total_matches = 100'000'000;
  auto res = ParArab(g, cfg, acfg);
  EXPECT_FALSE(res.failed);
  EXPECT_GT(res.patterns_mined, 0u);
  EXPECT_GT(res.discovery.positives.size(), 0u);
}

TEST(Arab, FailsUnderMaterializationBudget) {
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 3;
  cfg.support_threshold = 8;
  ArabConfig acfg;
  acfg.max_total_matches = 1000;  // Arabesque-style store blows past this
  auto res = ParArab(g, cfg, acfg);
  EXPECT_TRUE(res.failed);
}

TEST(Arab, MaterializesMoreThanIntegratedMinerValidates) {
  // The split pipeline stores every frequent pattern's matches; the
  // integrated miner prunes patterns whose GFDs cannot be frequent. On
  // identical configs, Arab's stored matches >= SeqDis's profiled ones.
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 10;
  ArabConfig acfg;
  acfg.max_total_matches = 100'000'000;
  auto arab = ParArab(g, cfg, acfg);
  auto seq = SeqDis(g, cfg);
  EXPECT_GE(arab.matches_materialized, seq.stats.profile_matches / 2);
}

TEST(Arab, DiscoveredGfdsHoldOnGraph) {
  auto g = SmallKb();
  DiscoveryConfig cfg;
  cfg.k = 2;
  cfg.support_threshold = 10;
  ArabConfig acfg;
  acfg.max_total_matches = 100'000'000;
  auto res = ParArab(g, cfg, acfg);
  size_t checked = 0;
  for (size_t i = 0; i < res.discovery.positives.size() && checked < 20;
       i += 5, ++checked) {
    EXPECT_TRUE(SatisfiesGfd(g, res.discovery.positives[i]));
  }
}

}  // namespace
}  // namespace gfd
