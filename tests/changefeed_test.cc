// Violation changefeed server: HTTP/1.1 parser table tests (truncated,
// oversized, bad chunking), the per-client token bucket under a manual
// clock, durable cursor semantics -- a reconnecting subscriber's replay
// must equal the uninterrupted live stream, both matching the diffs
// AppendAndDiff reports directly -- slow-consumer eviction, concurrent
// ingest+subscribe, and a socket-level end-to-end pass over every
// endpoint of the FeedService.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/gfd_gen.h"
#include "datagen/synthetic.h"
#include "detect/engine.h"
#include "graph/loader.h"
#include "net/feed_service.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/rate_limiter.h"
#include "serve/changefeed.h"
#include "serve/graph_store.h"
#include "util/rng.h"

namespace gfd {
namespace {

namespace fs = std::filesystem;
using net::HttpLimits;
using net::HttpParser;
using net::HttpRequest;
using net::ParseStatus;

std::string Scratch(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gfd_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string DeltaBytes(const PropertyGraph& base, const GraphDelta& d) {
  std::ostringstream os;
  SaveGraphDeltaTsv(base, d, os);
  return std::move(os).str();
}

// Same shape as coordinator_test's random batches: inserts, deletes of
// existing edges, attribute sets introducing fresh values.
GraphDelta RandomBatch(const PropertyGraph& g, Rng& rng, size_t ops) {
  GraphDelta d;
  std::vector<bool> gone(g.NumEdges(), false);
  for (size_t i = 0; i < ops; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.4 && g.NumEdges() > 0) {
      EdgeId e = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      NodeId dst = static_cast<NodeId>(rng.Below(g.NumNodes()));
      d.InsertEdge(g.EdgeSrc(e), dst, g.EdgeLabel(e));
    } else if (roll < 0.7 && g.NumEdges() > 0) {
      EdgeId e = static_cast<EdgeId>(rng.Below(g.NumEdges()));
      if (gone[e]) continue;
      gone[e] = true;
      d.DeleteEdge(g.EdgeSrc(e), g.EdgeDst(e), g.EdgeLabel(e));
    } else {
      NodeId v = static_cast<NodeId>(rng.Below(g.NumNodes()));
      auto attrs = g.NodeAttrs(v);
      AttrId key = attrs.empty()
                       ? d.InternAttr(g, "patched_key")
                       : attrs[rng.Below(attrs.size())].key;
      ValueId val =
          rng.Chance(0.3)
              ? d.InternValue(g, "patched_" + std::to_string(rng.Below(4)))
              : static_cast<ValueId>(rng.Below(g.values().size()));
      d.SetAttr(v, key, val);
    }
  }
  return d;
}

// --- HTTP parser -----------------------------------------------------------

TEST(HttpParser, SimpleGetRequest) {
  HttpParser p{HttpLimits{}};
  ASSERT_EQ(p.Consume("GET /status HTTP/1.1\r\nHost: x\r\n\r\n"),
            ParseStatus::kOk);
  HttpRequest req = p.TakeRequest();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/status");
  EXPECT_TRUE(req.keep_alive);
  ASSERT_NE(req.Header("host"), nullptr);
  EXPECT_EQ(*req.Header("host"), "x");
}

TEST(HttpParser, QueryStringAndPercentDecoding) {
  HttpParser p{HttpLimits{}};
  ASSERT_EQ(
      p.Consume("GET /feed?cursor=7&label=a%20b+c&flag HTTP/1.1\r\n\r\n"),
      ParseStatus::kOk);
  HttpRequest req = p.TakeRequest();
  EXPECT_EQ(req.path, "/feed");
  ASSERT_NE(req.QueryParam("cursor"), nullptr);
  EXPECT_EQ(*req.QueryParam("cursor"), "7");
  ASSERT_NE(req.QueryParam("label"), nullptr);
  EXPECT_EQ(*req.QueryParam("label"), "a b c");
  ASSERT_NE(req.QueryParam("flag"), nullptr);
  EXPECT_EQ(*req.QueryParam("flag"), "");
  EXPECT_EQ(req.QueryParam("missing"), nullptr);
}

TEST(HttpParser, BodyArrivingByteByByte) {
  HttpParser p{HttpLimits{}};
  std::string raw =
      "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  ParseStatus st = ParseStatus::kIncomplete;
  for (char c : raw) st = p.Consume(std::string_view(&c, 1));
  ASSERT_EQ(st, ParseStatus::kOk);
  EXPECT_EQ(p.TakeRequest().body, "hello");
}

TEST(HttpParser, ChunkedBody) {
  HttpParser p{HttpLimits{}};
  ASSERT_EQ(p.Consume("POST /ingest HTTP/1.1\r\n"
                      "Transfer-Encoding: chunked\r\n\r\n"
                      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"),
            ParseStatus::kOk);
  EXPECT_EQ(p.TakeRequest().body, "Wikipedia");
}

TEST(HttpParser, PipelinedRequestsCompleteInTurn) {
  HttpParser p{HttpLimits{}};
  ASSERT_EQ(p.Consume("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            ParseStatus::kOk);
  EXPECT_EQ(p.TakeRequest().path, "/a");
  ASSERT_EQ(p.Consume({}), ParseStatus::kOk);
  EXPECT_EQ(p.TakeRequest().path, "/b");
  EXPECT_EQ(p.Consume({}), ParseStatus::kIncomplete);
}

TEST(HttpParser, KeepAliveNegotiation) {
  struct Case {
    const char* raw;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpParser p{HttpLimits{}};
    ASSERT_EQ(p.Consume(c.raw), ParseStatus::kOk) << c.raw;
    EXPECT_EQ(p.TakeRequest().keep_alive, c.keep_alive) << c.raw;
  }
}

TEST(HttpParser, EveryTruncationStaysIncomplete) {
  // No prefix of a valid request may be rejected: a slow client is not
  // a protocol error.
  const std::string raw =
      "POST /ingest?cursor=3 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  for (size_t cut = 0; cut < raw.size(); ++cut) {
    HttpParser p{HttpLimits{}};
    EXPECT_EQ(p.Consume(raw.substr(0, cut)), ParseStatus::kIncomplete)
        << "prefix of " << cut << " bytes";
  }
  HttpParser p{HttpLimits{}};
  EXPECT_EQ(p.Consume(raw), ParseStatus::kOk);
}

TEST(HttpParser, MalformedRequestsAreBad) {
  const char* cases[] = {
      "GARBAGE\r\n\r\n",
      "GET /x SPDY/3\r\n\r\n",
      "GET  HTTP/1.1\r\n\r\n",
      "GET /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
      "GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
  };
  for (const char* raw : cases) {
    HttpParser p{HttpLimits{}};
    EXPECT_EQ(p.Consume(raw), ParseStatus::kBad) << raw;
    EXPECT_FALSE(p.error().empty()) << raw;
  }
}

TEST(HttpParser, OversizedHeaderAndBodyAreTooLarge) {
  HttpLimits tight;
  tight.max_header_bytes = 64;
  tight.max_body_bytes = 8;
  {
    HttpParser p(tight);
    std::string raw = "GET /x HTTP/1.1\r\nPadding: " +
                      std::string(200, 'a') + "\r\n\r\n";
    EXPECT_EQ(p.Consume(raw), ParseStatus::kTooLarge);
  }
  {
    HttpParser p(tight);
    EXPECT_EQ(p.Consume("POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
              ParseStatus::kTooLarge);
  }
  {
    HttpParser p(tight);
    EXPECT_EQ(p.Consume("POST /x HTTP/1.1\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"
                        "9\r\nwwwwwwwww\r\n"),
              ParseStatus::kTooLarge);
  }
}

// --- Token bucket ----------------------------------------------------------

TEST(TokenBucketLimiter, BurstRefillAndPerKeyIsolation) {
  uint64_t now = 0;
  net::TokenBucketLimiter limiter({.rate_per_sec = 1, .burst = 2},
                                  [&now] { return now; });
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_FALSE(limiter.Admit("a"));  // burst spent
  EXPECT_TRUE(limiter.Admit("b"));   // other clients unaffected
  now += 1'000'000'000;              // +1s -> one token back
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_FALSE(limiter.Admit("a"));
  now += 10'000'000'000ull;  // refill caps at burst, not 10 tokens
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_FALSE(limiter.Admit("a"));
}

TEST(TokenBucketLimiter, ZeroRateDisablesLimiting) {
  net::TokenBucketLimiter limiter({.rate_per_sec = 0, .burst = 1});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.Admit("a"));
}

// --- Feed payload serialization --------------------------------------------

TEST(Changefeed, PayloadLinesRoundTripThroughParse) {
  auto g = MakeSynthetic({.nodes = 60,
                          .edges = 180,
                          .node_labels = 4,
                          .edge_labels = 3,
                          .attrs = 3,
                          .values = 8,
                          .value_correlation = 0.9,
                          .seed = 5});
  auto rules = GenerateGfdSet(g, {.count = 8, .k = 2, .seed = 3});
  ViolationEngine engine(rules);
  Rng rng(17);
  GraphDelta no_delta;

  // Find a batch that actually changes violations.
  std::string dir = Scratch("feed_roundtrip");
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  for (int attempt = 0; attempt < 20; ++attempt) {
    PropertyGraph cur = store->MaterializeCurrent();
    GraphDelta d = RandomBatch(cur, rng, 6);
    auto diff = store->AppendAndDiff(engine, DeltaBytes(cur, d));
    ASSERT_TRUE(diff.has_value());
    if (diff->added.empty() && diff->removed.empty()) continue;
    PropertyGraph after = store->MaterializeCurrent();
    auto view = GraphView::Apply(after, no_delta);
    std::string payload =
        SerializeDiffPayload(*view, engine.rules(), *diff);
    size_t lines = 0;
    std::istringstream in(payload);
    std::string line;
    while (std::getline(in, line)) {
      auto parsed = ParseFeedLine(line);
      ASSERT_TRUE(parsed.has_value()) << line;
      const auto& all = parsed->added ? diff->added : diff->removed;
      ASSERT_LT(lines, diff->added.size() + diff->removed.size());
      bool found = false;
      for (const Violation& v : all) {
        if (v.gfd_index == parsed->rule && v.pivot == parsed->pivot) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << line;
      EXPECT_EQ(parsed->pivot_name, after.NodeName(parsed->pivot));
      EXPECT_FALSE(parsed->description.empty());
      ++lines;
    }
    EXPECT_EQ(lines, diff->added.size() + diff->removed.size());
    return;
  }
  FAIL() << "no batch changed any violation in 20 attempts";
}

TEST(Changefeed, ParseFeedLineRejectsGarbage) {
  EXPECT_FALSE(ParseFeedLine("").has_value());
  EXPECT_FALSE(ParseFeedLine("X\t1\t2\tn\tl\td").has_value());
  EXPECT_FALSE(ParseFeedLine("A\tnotanumber\t2\tn\tl\td").has_value());
  EXPECT_FALSE(ParseFeedLine("A\t1\t2").has_value());
  EXPECT_TRUE(ParseFeedLine("A\t1\t2\tn\tl\td").has_value());
  EXPECT_TRUE(ParseFeedLine("R\t0\t0\t\t\t").has_value());
}

// --- Changefeed: durable cursors -------------------------------------------

// The tentpole oracle: a subscriber that reconnects with its last-seen
// cursor must observe exactly the events an uninterrupted subscriber
// observed, and both must equal the diffs AppendAndDiff reported.
TEST(Changefeed, CursorReplayEqualsUninterruptedStream) {
  auto g = MakeSynthetic({.nodes = 80,
                          .edges = 240,
                          .node_labels = 4,
                          .edge_labels = 3,
                          .attrs = 3,
                          .values = 10,
                          .value_correlation = 0.9,
                          .seed = 11});
  auto rules = GenerateGfdSet(g, {.count = 10, .k = 2, .seed = 4});
  ViolationEngine engine(rules);
  std::string dir = Scratch("feed_cursor");
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  auto feed = ViolationChangefeed::Open(dir, store->last_seq());
  ASSERT_NE(feed, nullptr);

  // The uninterrupted subscriber, connected before anything happened.
  std::vector<FeedEvent> live_replay;
  auto live = feed->Subscribe(0, 64, &live_replay);
  ASSERT_TRUE(live_replay.empty());

  constexpr size_t kBatches = 12;
  constexpr size_t kReconnectAt = 5;
  Rng rng(23);
  GraphDelta no_delta;
  std::vector<FeedEvent> expected;
  std::shared_ptr<FeedSubscription> late;
  std::vector<FeedEvent> late_events;
  for (size_t b = 0; b < kBatches; ++b) {
    if (b == kReconnectAt) {
      // "Reconnect": a subscriber that saw the first kReconnectAt
      // batches before disappearing comes back with that cursor.
      std::vector<FeedEvent> replay;
      late = feed->Subscribe(expected.back().seq, 64, &replay);
      late_events = std::move(replay);
    }
    PropertyGraph cur = store->MaterializeCurrent();
    GraphDelta d = RandomBatch(cur, rng, 5);
    uint64_t seq = 0;
    auto diff =
        store->AppendAndDiff(engine, DeltaBytes(cur, d), {}, &seq);
    ASSERT_TRUE(diff.has_value());
    PropertyGraph after = store->MaterializeCurrent();
    auto view = GraphView::Apply(after, no_delta);
    std::string payload =
        SerializeDiffPayload(*view, engine.rules(), *diff);
    expected.push_back({seq, payload});
    ASSERT_TRUE(feed->Publish(seq, payload));
  }

  // Drain both live subscriptions.
  std::vector<FeedEvent> live_events = std::move(live_replay);
  FeedEvent ev;
  while (live->Next(&ev, 0) == FeedSubscription::Wait::kEvent) {
    live_events.push_back(ev);
  }
  while (late->Next(&ev, 0) == FeedSubscription::Wait::kEvent) {
    late_events.push_back(ev);
  }
  EXPECT_EQ(live_events, expected);
  EXPECT_EQ(late_events,
            std::vector<FeedEvent>(expected.begin() + kReconnectAt,
                                   expected.end()));

  // A cold subscriber replaying from 0 -- and one from mid-stream --
  // see the same events purely from durable state.
  std::vector<FeedEvent> cold;
  feed->Subscribe(0, 1, &cold);
  EXPECT_EQ(cold, expected);
  std::vector<FeedEvent> mid;
  feed->Subscribe(expected[7].seq, 1, &mid);
  EXPECT_EQ(mid, std::vector<FeedEvent>(expected.begin() + 8,
                                        expected.end()));

  // ... and still after a process restart (fresh feed over the same
  // directory).
  feed->Shutdown();
  feed.reset();
  auto reopened = ViolationChangefeed::Open(dir, store->last_seq());
  ASSERT_NE(reopened, nullptr);
  EXPECT_FALSE(reopened->reset_on_open());
  EXPECT_EQ(reopened->last_seq(), expected.back().seq);
  std::vector<FeedEvent> recovered;
  reopened->Subscribe(0, 1, &recovered);
  EXPECT_EQ(recovered, expected);
}

TEST(Changefeed, PublishOutOfSequenceIsRejected) {
  std::string dir = Scratch("feed_seq");
  fs::create_directories(dir);
  auto feed = ViolationChangefeed::Open(dir, 0);
  ASSERT_NE(feed, nullptr);
  std::string error;
  EXPECT_FALSE(feed->Publish(2, "skip", &error));
  EXPECT_NE(error.find("out of sequence"), std::string::npos);
  EXPECT_TRUE(feed->Publish(1, "ok"));
  EXPECT_FALSE(feed->Publish(1, "dup", &error));
  EXPECT_EQ(feed->last_seq(), 1u);
}

TEST(Changefeed, FeedBehindStoreIsResetNotMisnumbered) {
  std::string dir = Scratch("feed_reset");
  fs::create_directories(dir);
  {
    auto feed = ViolationChangefeed::Open(dir, 0);
    ASSERT_NE(feed, nullptr);
    ASSERT_TRUE(feed->Publish(1, "one"));
  }
  // The store advanced to seq 5 while the feed was not recording; those
  // diffs are unrecoverable, so the feed must restart at 6, not hand
  // out stale numbering.
  auto feed = ViolationChangefeed::Open(dir, 5);
  ASSERT_NE(feed, nullptr);
  EXPECT_TRUE(feed->reset_on_open());
  EXPECT_EQ(feed->last_seq(), 5u);
  std::vector<FeedEvent> replay;
  feed->Subscribe(0, 1, &replay);
  EXPECT_TRUE(replay.empty());
  EXPECT_TRUE(feed->Publish(6, "six"));
}

TEST(Changefeed, SlowConsumerIsEvicted) {
  std::string dir = Scratch("feed_evict");
  fs::create_directories(dir);
  auto feed = ViolationChangefeed::Open(dir, 0);
  ASSERT_NE(feed, nullptr);
  std::vector<FeedEvent> replay;
  auto sub = feed->Subscribe(0, /*queue_cap=*/2, &replay);
  for (uint64_t s = 1; s <= 4; ++s) {
    ASSERT_TRUE(feed->Publish(s, "payload"));
  }
  EXPECT_EQ(feed->subscriber_count(), 0u);  // dropped at overflow
  EXPECT_EQ(feed->evictions(), 1u);
  // The queued prefix still drains, then the eviction is reported.
  FeedEvent ev;
  EXPECT_EQ(sub->Next(&ev, 0), FeedSubscription::Wait::kEvent);
  EXPECT_EQ(ev.seq, 1u);
  EXPECT_EQ(sub->Next(&ev, 0), FeedSubscription::Wait::kEvent);
  EXPECT_EQ(ev.seq, 2u);
  EXPECT_EQ(sub->Next(&ev, 0), FeedSubscription::Wait::kEvicted);
  // Reconnecting with the last seen cursor recovers the dropped tail.
  std::vector<FeedEvent> tail;
  feed->Subscribe(2, 8, &tail);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 3u);
  EXPECT_EQ(tail[1].seq, 4u);
}

TEST(Changefeed, ShutdownWakesBlockedSubscribers) {
  std::string dir = Scratch("feed_shutdown");
  fs::create_directories(dir);
  auto feed = ViolationChangefeed::Open(dir, 0);
  ASSERT_NE(feed, nullptr);
  std::vector<FeedEvent> replay;
  auto sub = feed->Subscribe(0, 8, &replay);
  std::atomic<int> result{-1};
  std::thread waiter([&] {
    FeedEvent ev;
    result = static_cast<int>(sub->Next(&ev, 10'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  feed->Shutdown();
  waiter.join();
  EXPECT_EQ(result.load(),
            static_cast<int>(FeedSubscription::Wait::kClosed));
  std::string error;
  EXPECT_FALSE(feed->Publish(1, "after shutdown", &error));
}

// TSan-friendly: one ingest thread publishing through the store mutex,
// several subscriber threads connecting at random cursors mid-stream;
// every subscriber must end with a gap-free suffix of the stream.
TEST(Changefeed, ConcurrentIngestAndSubscribe) {
  auto g = MakeSynthetic({.nodes = 60,
                          .edges = 160,
                          .node_labels = 4,
                          .edge_labels = 3,
                          .attrs = 2,
                          .values = 8,
                          .value_correlation = 0.9,
                          .seed = 31});
  auto rules = GenerateGfdSet(g, {.count = 6, .k = 2, .seed = 9});
  ViolationEngine engine(rules);
  std::string dir = Scratch("feed_concurrent");
  ASSERT_TRUE(GraphStore::Init(dir, g));
  auto store = GraphStore::Open(dir);
  ASSERT_TRUE(store.has_value());
  auto feed = ViolationChangefeed::Open(dir, 0);
  ASSERT_NE(feed, nullptr);

  constexpr size_t kBatches = 16;
  std::mutex store_mu;
  std::map<uint64_t, std::string> published;  // oracle, guarded by store_mu

  std::thread ingest([&] {
    Rng rng(47);
    GraphDelta no_delta;
    for (size_t b = 0; b < kBatches; ++b) {
      std::lock_guard lock(store_mu);
      PropertyGraph cur = store->MaterializeCurrent();
      GraphDelta d = RandomBatch(cur, rng, 4);
      uint64_t seq = 0;
      auto diff = store->AppendAndDiff(engine, DeltaBytes(cur, d), {}, &seq);
      ASSERT_TRUE(diff.has_value());
      PropertyGraph after = store->MaterializeCurrent();
      auto view = GraphView::Apply(after, no_delta);
      std::string payload =
          SerializeDiffPayload(*view, engine.rules(), *diff);
      published[seq] = payload;
      ASSERT_TRUE(feed->Publish(seq, payload));
    }
  });

  std::vector<std::thread> readers;
  std::vector<std::vector<FeedEvent>> seen(3);
  for (size_t r = 0; r < seen.size(); ++r) {
    readers.emplace_back([&, r] {
      uint64_t cursor = 2 * r;  // stagger the entry points
      std::vector<FeedEvent> replay;
      auto sub = feed->Subscribe(cursor, kBatches + 1, &replay);
      seen[r] = std::move(replay);
      FeedEvent ev;
      while (seen[r].empty() || seen[r].back().seq < kBatches) {
        auto st = sub->Next(&ev, 5'000);
        if (st != FeedSubscription::Wait::kEvent) break;
        seen[r].push_back(ev);
        if (ev.seq >= kBatches) break;
      }
      feed->Unsubscribe(sub);
    });
  }
  ingest.join();
  for (auto& t : readers) t.join();

  std::lock_guard lock(store_mu);
  ASSERT_EQ(published.size(), kBatches);
  for (size_t r = 0; r < seen.size(); ++r) {
    ASSERT_FALSE(seen[r].empty()) << "reader " << r;
    // Contiguous, gap-free, and every payload matches the oracle.
    for (size_t i = 1; i < seen[r].size(); ++i) {
      EXPECT_EQ(seen[r][i].seq, seen[r][i - 1].seq + 1)
          << "reader " << r << " position " << i;
    }
    EXPECT_EQ(seen[r].back().seq, kBatches) << "reader " << r;
    for (const FeedEvent& got : seen[r]) {
      auto it = published.find(got.seq);
      ASSERT_NE(it, published.end());
      EXPECT_EQ(got.payload, it->second) << "seq " << got.seq;
    }
    // A reader entering at cursor C sees C+1 first (replay is durable,
    // so nothing between its cursor and the live stream is lost).
    EXPECT_EQ(seen[r].front().seq, 2 * r + 1) << "reader " << r;
  }
}

// --- Socket-level end-to-end -----------------------------------------------

// Minimal blocking HTTP client: one request, read to EOF.
std::string RawRequest(uint16_t port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string Get(uint16_t port, const std::string& target) {
  return RawRequest(port, "GET " + target +
                              " HTTP/1.1\r\nConnection: close\r\n\r\n");
}

std::string Post(uint16_t port, const std::string& target,
                 const std::string& body) {
  return RawRequest(port, "POST " + target +
                              " HTTP/1.1\r\nConnection: close\r\n"
                              "Content-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" +
                              body);
}

struct E2eServer {
  std::optional<GraphStore> store;
  std::unique_ptr<ViolationEngine> engine;
  std::unique_ptr<ViolationChangefeed> feed;
  std::unique_ptr<net::FeedService> service;
  std::unique_ptr<net::HttpServer> server;
  PropertyGraph base;

  explicit E2eServer(const std::string& name, double ingest_rps = 0) {
    base = MakeSynthetic({.nodes = 60,
                          .edges = 180,
                          .node_labels = 4,
                          .edge_labels = 3,
                          .attrs = 3,
                          .values = 8,
                          .value_correlation = 0.9,
                          .seed = 13});
    auto rules = GenerateGfdSet(base, {.count = 8, .k = 2, .seed = 6});
    engine = std::make_unique<ViolationEngine>(rules);
    std::string dir = Scratch(name);
    EXPECT_TRUE(GraphStore::Init(dir, base));
    store = GraphStore::Open(dir);
    EXPECT_TRUE(store.has_value());
    feed = ViolationChangefeed::Open(dir, store->last_seq());
    EXPECT_NE(feed, nullptr);
    net::FeedServiceOptions fopts;
    fopts.heartbeat_ms = 100;
    fopts.ingest_rate_per_sec = ingest_rps;
    fopts.ingest_burst = 1;
    service = std::make_unique<net::FeedService>(*store, *engine, *feed,
                                                 fopts);
    service->Prime();
    net::HttpServerOptions hopts;
    hopts.port = 0;  // ephemeral
    hopts.poll_interval_ms = 50;
    std::string error;
    server = net::HttpServer::Start(
        hopts,
        [this](const net::HttpRequest& req, net::ResponseWriter& w) {
          service->Handle(req, w);
        },
        &error);
    EXPECT_NE(server, nullptr) << error;
  }

  ~E2eServer() {
    feed->Shutdown();
    server->Stop();
  }

  uint16_t port() const { return server->port(); }

  std::string ValidBatch() {
    PropertyGraph cur = store->MaterializeCurrent();
    Rng rng(71);
    return DeltaBytes(cur, RandomBatch(cur, rng, 3));
  }
};

TEST(FeedServiceE2e, EveryEndpointAnswersOverSockets) {
  E2eServer s("e2e_endpoints");
  ASSERT_NE(s.server, nullptr);

  std::string status = Get(s.port(), "/status");
  EXPECT_NE(status.find("200 OK"), std::string::npos);
  EXPECT_NE(status.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(status.find("\"backend\":\"single\""), std::string::npos);

  // Invalid batch: 4xx and nothing reached the log.
  std::string bad = Post(s.port(), "/ingest", "E-\tn0\tn1\tnope\n");
  EXPECT_NE(bad.find("422"), std::string::npos);
  EXPECT_EQ(s.store->last_seq(), 0u);

  std::string ok = Post(s.port(), "/ingest", s.ValidBatch());
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("\"seq\":1"), std::string::npos);
  EXPECT_EQ(s.store->last_seq(), 1u);

  // Method and route errors.
  EXPECT_NE(Get(s.port(), "/ingest").find("405"), std::string::npos);
  EXPECT_NE(Get(s.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(RawRequest(s.port(), "POST /status HTTP/1.1\r\nConnection: "
                                 "close\r\nContent-Length: 0\r\n\r\n")
                .find("405"),
            std::string::npos);

  // Live metrics include the HTTP families and serving gauges.
  std::string metrics = Get(s.port(), "/metrics");
  EXPECT_NE(metrics.find("gfd_http_requests_total{endpoint=\"/ingest\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("gfd_serving_last_seq 1"), std::string::npos);

  // The feed replays the one batch; a reconnect with the same cursor is
  // byte-identical.
  std::string feed1 = Get(s.port(), "/feed?cursor=0&max_events=1");
  EXPECT_NE(feed1.find("text/event-stream"), std::string::npos);
  EXPECT_NE(feed1.find("id: 1"), std::string::npos);
  std::string feed2 = Get(s.port(), "/feed?cursor=0&max_events=1");
  EXPECT_EQ(feed1, feed2);
  EXPECT_NE(Get(s.port(), "/feed?cursor=x").find("400"), std::string::npos);
  // max_events=0 would be a stream that can never deliver anything and
  // never ends: rejected up front like any other unusable parameter,
  // while the positive value above streams and closes normally.
  EXPECT_NE(Get(s.port(), "/feed?cursor=0&max_events=0").find("400"),
            std::string::npos);
}

TEST(FeedServiceE2e, IngestIsRateLimitedPerClient) {
  E2eServer s("e2e_ratelimit", /*ingest_rps=*/1e-9);  // burst 1, no refill
  ASSERT_NE(s.server, nullptr);
  std::string batch = s.ValidBatch();
  std::string first = Post(s.port(), "/ingest", batch);
  EXPECT_NE(first.find("200 OK"), std::string::npos);
  std::string second = Post(s.port(), "/ingest", batch);
  EXPECT_NE(second.find("429"), std::string::npos);
  EXPECT_EQ(s.store->last_seq(), 1u);
  std::string metrics = Get(s.port(), "/metrics");
  EXPECT_NE(metrics.find("gfd_ingest_rate_limited_total 1"),
            std::string::npos);
}

TEST(FeedServiceE2e, LiveSubscriberSeesBatchesAsTheyArrive) {
  E2eServer s("e2e_live");
  ASSERT_NE(s.server, nullptr);

  // Subscribe first, then ingest two batches; the stream must deliver
  // both live (max_events closes it afterwards).
  std::string stream;
  std::thread subscriber([&] {
    stream = Get(s.port(), "/feed?cursor=0&max_events=2");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_NE(Post(s.port(), "/ingest", s.ValidBatch()).find("200"),
            std::string::npos);
  EXPECT_NE(Post(s.port(), "/ingest", s.ValidBatch()).find("200"),
            std::string::npos);
  subscriber.join();
  EXPECT_NE(stream.find("id: 1"), std::string::npos);
  EXPECT_NE(stream.find("id: 2"), std::string::npos);

  // And a reconnecting cursor catches up to the identical events. The
  // live stream may contain heartbeat comments between events (SSE
  // comments carry no data); the event bytes themselves must be equal.
  auto events_only = [](const std::string& response) {
    size_t body_at = response.find("\r\n\r\n");
    EXPECT_NE(body_at, std::string::npos);
    std::string out;
    std::istringstream in(response.substr(body_at + 4));
    std::string line;
    while (std::getline(in, line)) {
      // Drop SSE comments (heartbeats) and the blank frame separators.
      if (line.empty() || line.starts_with(":")) continue;
      out += line + "\n";
    }
    return out;
  };
  std::string replay = Get(s.port(), "/feed?cursor=0&max_events=2");
  EXPECT_EQ(events_only(stream), events_only(replay));
}

}  // namespace
}  // namespace gfd
