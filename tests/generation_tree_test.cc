#include <gtest/gtest.h>

#include "core/generation_tree.h"
#include "pattern/canonical.h"
#include "testlib.h"

namespace gfd {
namespace {

PropertyGraph TriGraph() {
  // persons knowing each other + cities; enough structure for spawning.
  PropertyGraph::Builder b;
  std::vector<NodeId> people, cities;
  for (int i = 0; i < 20; ++i) people.push_back(b.AddNode("person"));
  for (int i = 0; i < 10; ++i) cities.push_back(b.AddNode("city"));
  for (int i = 0; i < 19; ++i) b.AddEdge(people[i], people[i + 1], "knows");
  for (int i = 0; i < 20; ++i) b.AddEdge(people[i], cities[i % 10], "lives");
  return std::move(b).Build();
}

TEST(GenerationTree, AddPatternDeduplicatesIsomorphs) {
  GenerationTree tree;
  DeltaEdge d{kNoVar, kNoVar, kWildcardLabel, kNoVar, kWildcardLabel};
  Pattern a = SingleEdgePattern(1, 2, 3);
  bool created = false;
  int id1 = tree.AddPattern(a, 1, -1, d, &created);
  EXPECT_TRUE(created);
  // Isomorphic copy with node order swapped.
  Pattern b;
  VarId y = b.AddNode(3);
  VarId x = b.AddNode(1);
  b.AddEdge(x, y, 2);
  b.set_pivot(x);
  int id2 = tree.AddPattern(b, 1, 7, d, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(id1, id2);
  // Parent 7 merged into P(Q).
  EXPECT_EQ(tree.node(id1).parents.size(), 1u);
  EXPECT_EQ(tree.node(id1).parents[0], 7);
}

TEST(GenerationTree, LevelsTrackNodes) {
  GenerationTree tree;
  DeltaEdge d{kNoVar, kNoVar, kWildcardLabel, kNoVar, kWildcardLabel};
  tree.AddPattern(SingleNodePattern(1), 0, -1, d);
  tree.AddPattern(SingleEdgePattern(1, 2, 3), 1, 0, d);
  EXPECT_EQ(tree.level(0).size(), 1u);
  EXPECT_EQ(tree.level(1).size(), 1u);
  EXPECT_TRUE(tree.level(5).empty());
  EXPECT_EQ(tree.size(), 2u);
}

TEST(InitTreeTest, SeedsFrequentLabelsAndWildcard) {
  auto g = TriGraph();
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 10;
  DiscoveryStats ds;
  GenerationTree tree;
  auto ids = InitTree(tree, stats, cfg, ds);
  // person(20) and city(10) qualify; wildcard node added on top.
  EXPECT_EQ(ids.size(), 3u);
  cfg.wildcard_upgrades = false;
  GenerationTree tree2;
  DiscoveryStats ds2;
  EXPECT_EQ(InitTree(tree2, stats, cfg, ds2).size(), 2u);
  cfg.support_threshold = 15;
  GenerationTree tree3;
  DiscoveryStats ds3;
  EXPECT_EQ(InitTree(tree3, stats, cfg, ds3).size(), 1u);  // person only
}

TEST(WildcardEdgeLabelsTest, RequiresDiversePairs) {
  auto g = gfd::testing::BuildG2();  // located: city->country, city->city
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.wildcard_min_pairs = 2;
  auto labels = WildcardEdgeLabels(stats, cfg);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], *g.FindLabel("located"));
  cfg.wildcard_min_pairs = 3;
  EXPECT_TRUE(WildcardEdgeLabels(stats, cfg).empty());
}

TEST(VSpawnTest, ExtendsFrequentPatternsOnly) {
  auto g = TriGraph();
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 5;
  cfg.wildcard_upgrades = false;
  DiscoveryStats ds;
  GenerationTree tree;
  auto l0 = InitTree(tree, stats, cfg, ds);
  ASSERT_EQ(l0.size(), 2u);
  // Mark only 'person' frequent.
  for (int id : l0) {
    auto& n = tree.node(id);
    n.verified = true;
    n.frequent = (n.pattern.NodeLabel(0) == *g.FindLabel("person"));
  }
  auto triples = stats.FrequentTriples(1);
  auto spawned = VSpawn(tree, 1, triples, {}, cfg, ds);
  ASSERT_FALSE(spawned.empty());
  for (int id : spawned) {
    const auto& n = tree.node(id);
    EXPECT_EQ(n.level, 1);
    EXPECT_EQ(n.pattern.NumEdges(), 1u);
    EXPECT_TRUE(n.pattern.IsConnected());
    // All extensions touch the person variable (the only frequent seed).
    EXPECT_EQ(n.pattern.NodeLabel(n.pattern.pivot()),
              *g.FindLabel("person"));
  }
}

TEST(VSpawnTest, SpawnedPatternsKeepPivotVariableZero) {
  auto g = TriGraph();
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 5;
  DiscoveryStats ds;
  GenerationTree tree;
  auto l0 = InitTree(tree, stats, cfg, ds);
  for (int id : l0) {
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto spawned = VSpawn(tree, 1, stats.FrequentTriples(1),
                        WildcardEdgeLabels(stats, cfg), cfg, ds);
  for (int id : spawned) {
    EXPECT_EQ(tree.node(id).pattern.pivot(), 0u);
  }
}

TEST(VSpawnTest, ClosingEdgeAtLevelTwo) {
  // A graph with a 2-cycle so that closing-edge spawning applies.
  PropertyGraph::Builder b;
  std::vector<NodeId> ps;
  for (int i = 0; i < 12; ++i) ps.push_back(b.AddNode("p"));
  for (int i = 0; i + 1 < 12; i += 2) {
    b.AddEdge(ps[i], ps[i + 1], "r");
    b.AddEdge(ps[i + 1], ps[i], "r");
  }
  auto g = std::move(b).Build();
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 3;
  cfg.wildcard_upgrades = false;
  cfg.k = 2;  // closing edges only at level 2
  DiscoveryStats ds;
  GenerationTree tree;
  auto l0 = InitTree(tree, stats, cfg, ds);
  for (int id : l0) {
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto triples = stats.FrequentTriples(1);
  auto l1 = VSpawn(tree, 1, triples, {}, cfg, ds);
  ASSERT_FALSE(l1.empty());
  for (int id : l1) {
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto l2 = VSpawn(tree, 2, triples, {}, cfg, ds);
  // k=2 forbids new nodes, so level 2 must be exactly the mutual-edge
  // pattern (p -r-> p, p <-r- p).
  ASSERT_EQ(l2.size(), 1u);
  EXPECT_EQ(tree.node(l2[0]).pattern.NumNodes(), 2u);
  EXPECT_EQ(tree.node(l2[0]).pattern.NumEdges(), 2u);
}

TEST(VSpawnTest, RespectsLevelCap) {
  auto g = TriGraph();
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 1;
  cfg.max_patterns_per_level = 2;
  DiscoveryStats ds;
  GenerationTree tree;
  auto l0 = InitTree(tree, stats, cfg, ds);
  for (int id : l0) {
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto spawned = VSpawn(tree, 1, stats.FrequentTriples(1),
                        WildcardEdgeLabels(stats, cfg), cfg, ds);
  EXPECT_LE(spawned.size(), 2u);
  EXPECT_TRUE(ds.level_cap_hit);
}

TEST(VSpawnTest, DeltaEdgeDescribesExtension) {
  auto g = TriGraph();
  GraphStats stats(g);
  DiscoveryConfig cfg;
  cfg.support_threshold = 5;
  cfg.wildcard_upgrades = false;
  DiscoveryStats ds;
  GenerationTree tree;
  auto l0 = InitTree(tree, stats, cfg, ds);
  for (int id : l0) {
    tree.node(id).verified = true;
    tree.node(id).frequent = true;
  }
  auto spawned = VSpawn(tree, 1, stats.FrequentTriples(1), {}, cfg, ds);
  for (int id : spawned) {
    const auto& n = tree.node(id);
    ASSERT_NE(n.delta.fresh_var, kNoVar);  // level-1 spawns add a node
    EXPECT_EQ(n.delta.fresh_var, 1u);
    // The delta edge is the pattern's only edge.
    ASSERT_EQ(n.pattern.NumEdges(), 1u);
    EXPECT_EQ(n.pattern.edges()[0].src, n.delta.src);
    EXPECT_EQ(n.pattern.edges()[0].dst, n.delta.dst);
    EXPECT_EQ(n.pattern.edges()[0].label, n.delta.label);
  }
}

}  // namespace
}  // namespace gfd
